# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check vet build test race deprecated-check serve-smoke chaos corrupt-smoke fuzz-smoke trace-smoke bench bench-kernels bench-json bench-smoke bench-compare bench-compare-smoke experiments

check: vet build deprecated-check test race serve-smoke chaos corrupt-smoke fuzz-smoke trace-smoke bench-smoke bench-compare-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The two distributed engines run real goroutines; keep them race-clean,
# along with the kernel worker pool and the sketch engines that fan out
# across both platforms.
race:
	$(GO) test -race ./internal/rdd ./internal/mapred ./internal/parallel ./internal/rsvd ./internal/serve

# Vet-style grep gate: cmd/, examples/, and internal/ must use the Config
# forms, not the deprecated positional wrappers (which survive only for the
# root package's compatibility tests). The regex requires the call paren so
# FitMissingConfig/FitStreamFileConfig don't match.
deprecated-check:
	@! grep -rn --include='*.go' -E 'spca\.(FitMissing|FitStreamFile)\(' cmd examples internal \
		|| { echo "deprecated-check: migrate the calls above to the Config forms"; exit 1; }
	@echo "deprecated-check: no deprecated wrapper calls outside the root package"

# Serving-layer smoke: registry round-trip, both wire protocols, the
# zero-allocation gate on the binary hot path, and the graceful drain.
serve-smoke:
	$(GO) test -count=1 ./internal/serve

# Fault-injection suite under the race detector: once with the fixed default
# seed, then with a randomized seed, logged so any failure is replayable via
# SPCA_CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' .
	@seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
	echo "chaos: randomized seed $$seed (replay with SPCA_CHAOS_SEED=$$seed)"; \
	SPCA_CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestChaos' .

# Data-integrity suite: payload-corruption and checkpoint-corruption
# injection, multi-generation recovery, quarantine, and the clean-run
# snapshot golden. Same fixed-then-randomized seed discipline as chaos.
corrupt-smoke:
	$(GO) test -race -count=1 -run 'TestCorrupt' .
	@seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
	echo "corrupt: randomized seed $$seed (replay with SPCA_CHAOS_SEED=$$seed)"; \
	SPCA_CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestCorrupt' .

# Short randomized pass over the matrix-reader fuzzers (the seed corpus
# always runs; this adds a few seconds of real mutation). Part of `make
# check` so the parsers stay panic-free on hostile input.
fuzz-smoke:
	$(GO) test ./internal/matrix -run '^$$' -fuzz FuzzReadSparse$$ -fuzztime 5s
	$(GO) test ./internal/matrix -run '^$$' -fuzz FuzzReadSparseBinary$$ -fuzztime 5s
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz FuzzReadSnapshot$$ -fuzztime 5s

# End-to-end observability gate: fit with a JSONL observer, re-parse the
# stream, and require the reconstructed trace to fingerprint identically to
# the in-memory collector's; then validate the Chrome trace_event export.
trace-smoke:
	$(GO) test -count=1 -run 'TestTraceSmoke' .

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test ./internal/matrix -run '^$$' -bench BenchmarkKernels
	$(GO) test . -run '^$$' -bench BenchmarkParallelSpeedup

# Machine-readable benchmark baseline: in-place kernels, steady-state mapper
# allocations, the pooled-vs-legacy end-to-end fit A/B pairs, and the sketch
# engines' fit paths, written to $(BENCH_JSON) for committing and diffing
# against earlier BENCH_*.json files.
BENCH_JSON ?= BENCH_10.json
bench-json:
	{ $(GO) test ./internal/matrix -run '^$$' -bench BenchmarkKernelsInPlace -benchmem -benchtime 20x; \
	  $(GO) test ./internal/ppca -run '^$$' -bench 'BenchmarkSteady|Pooled|Legacy|BenchmarkFitStream' -benchmem -benchtime 10x; \
	  $(GO) test ./internal/rsvd -run '^$$' -bench 'BenchmarkFitRSVD' -benchmem -benchtime 10x; \
	  $(GO) test ./internal/ssvd -run '^$$' -bench 'BenchmarkFitSSVD' -benchmem -benchtime 10x; \
	  $(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe' -benchmem -benchtime 50x; } \
	| $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# Diff two committed baselines: >10% ns/op growth or any allocs/op increase
# on a common benchmark exits 1. `make bench-compare` checks the two most
# recent baselines; override with BENCH_OLD/BENCH_NEW. ns/op is wall-clock
# and baselines are recorded at different times, so cross-baseline ns diffs
# are only meaningful under comparable machine conditions (allocs/op is
# load-independent); to validate a PR under ambient drift, regenerate both
# sides in one sitting (`git stash` the change for the old side) or raise
# -ns-tol via `go run ./cmd/benchjson -compare -ns-tol 0.5 old new`.
BENCH_OLD ?= BENCH_8.json
BENCH_NEW ?= BENCH_10.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_OLD) $(BENCH_NEW)

# Fixture-based smoke of the compare gate (no benchmarks re-run); part of
# `make check` so the comparator itself cannot rot.
bench-compare-smoke:
	@$(GO) run ./cmd/benchjson -compare cmd/benchjson/testdata/old.json cmd/benchjson/testdata/new.json >/dev/null
	@! $(GO) run ./cmd/benchjson -compare cmd/benchjson/testdata/old.json cmd/benchjson/testdata/regressed.json >/dev/null 2>&1
	@echo "bench-compare-smoke: comparator gates fixtures correctly"

# One-iteration smoke of the bench harness and the JSON converter; part of
# `make check` so the pipeline cannot rot. The throwaway output stays out of
# the committed baselines.
bench-smoke:
	@$(GO) test ./internal/ppca -run '^$$' -bench BenchmarkSteady -benchmem -benchtime 1x \
	| $(GO) run ./cmd/benchjson -out .bench-smoke.json
	@rm -f .bench-smoke.json

experiments:
	$(GO) run ./cmd/experiments -exp all -profile quick
