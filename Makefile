# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check vet build test race chaos bench bench-kernels experiments

check: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The two distributed engines run real goroutines; keep them race-clean.
race:
	$(GO) test -race ./internal/rdd ./internal/mapred ./internal/parallel

# Fault-injection suite under the race detector: once with the fixed default
# seed, then with a randomized seed, logged so any failure is replayable via
# SPCA_CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' .
	@seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
	echo "chaos: randomized seed $$seed (replay with SPCA_CHAOS_SEED=$$seed)"; \
	SPCA_CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestChaos' .

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test ./internal/matrix -run '^$$' -bench BenchmarkKernels
	$(GO) test . -run '^$$' -bench BenchmarkParallelSpeedup

experiments:
	$(GO) run ./cmd/experiments -exp all -profile quick
