# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check vet build test race bench bench-kernels experiments

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The two distributed engines run real goroutines; keep them race-clean.
race:
	$(GO) test -race ./internal/rdd ./internal/mapred ./internal/parallel

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test ./internal/matrix -run '^$$' -bench BenchmarkKernels
	$(GO) test . -run '^$$' -bench BenchmarkParallelSpeedup

experiments:
	$(GO) run ./cmd/experiments -exp all -profile quick
