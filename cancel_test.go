package spca

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// cancelAtIter is an Observer that cancels a context the moment iteration
// (or sketch round) n completes — landing the cancellation exactly on the
// guarded loops' deterministic boundary poll.
type cancelAtIter struct {
	n      int
	cancel context.CancelFunc
}

func (c *cancelAtIter) SpanStart(Span)   {}
func (c *cancelAtIter) SpanEnd(Span)     {}
func (c *cancelAtIter) Event(TraceEvent) {}
func (c *cancelAtIter) IterationDone(it TraceIteration) {
	if it.Iter == c.n {
		c.cancel()
	}
}

// TestChaosCancelEveryBoundary is the cancellation half of the durability
// contract: for an EM engine and a sketch engine, cancel the run at EVERY
// iteration boundary (including before the first), assert the typed resumable
// abort, then Fit again with Resume and require the finished model and
// simulated clock to be bit-identical to a never-interrupted run.
func TestChaosCancelEveryBoundary(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 60, Seed: 9})
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 4, MaxIter: 4, Tol: -1,
				Checkpoint: CheckpointSpec{Interval: 2, Dir: t.TempDir()}}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			cleanFP := modelFingerprint(clean)

			for b := 0; b <= base.MaxIter; b++ {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				cfg := base
				cfg.Checkpoint.Dir = dir
				cfg.Context = ctx
				cfg.Observer = &cancelAtIter{n: b, cancel: cancel}
				if b == 0 {
					cancel() // canceled before any iteration runs
				}
				_, err := Fit(y, cfg)
				cancel()
				var ab *AbortError
				if !errors.As(err, &ab) {
					t.Fatalf("boundary %d: want *AbortError, got %v", b, err)
				}
				if ab.Iter != b {
					t.Errorf("boundary %d: AbortError.Iter = %d", b, ab.Iter)
				}
				if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
					t.Errorf("boundary %d: error matches neither sentinel family: %v", b, err)
				}
				if want := b > 0; ab.Checkpointed != want {
					t.Errorf("boundary %d: Checkpointed = %v, want %v", b, ab.Checkpointed, want)
				}

				// Resume into the same checkpoint directory. At boundary 0
				// nothing was written, so this is a fresh full run — either
				// way the final model must be bit-identical to the clean fit.
				resumed := base
				resumed.Checkpoint.Dir = dir
				resumed.Resume = true
				got, err := Fit(y, resumed)
				if err != nil {
					t.Fatalf("boundary %d: resume: %v", b, err)
				}
				if fp := modelFingerprint(got); fp != cleanFP {
					t.Errorf("boundary %d: resumed fingerprint %s != clean %s", b, fp, cleanFP)
				}
				if got.Metrics.SimSeconds != clean.Metrics.SimSeconds {
					t.Errorf("boundary %d: resumed SimSeconds %v != clean %v",
						b, got.Metrics.SimSeconds, clean.Metrics.SimSeconds)
				}
			}
		})
	}
}

// TestChaosCancelWithTaskFaults layers boundary cancellation on top of the
// full task-fault chaos plan: the resumed run must replay the exact same
// fault draws and land on the clean run's model and clock.
func TestChaosCancelWithTaskFaults(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 60, Seed: 9})
	seed := chaosSeed(t)
	base := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 4, Tol: -1,
		Faults:     chaosPlan(seed),
		Checkpoint: CheckpointSpec{Interval: 2, Dir: t.TempDir()}}
	clean, err := Fit(y, base)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cfg.Checkpoint.Dir = dir
	cfg.Faults = chaosPlan(seed)
	cfg.Context = ctx
	cfg.Observer = &cancelAtIter{n: 3, cancel: cancel}
	if _, err := Fit(y, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	resumed := base
	resumed.Checkpoint.Dir = dir
	resumed.Faults = chaosPlan(seed)
	resumed.Resume = true
	got, err := Fit(y, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if modelFingerprint(got) != modelFingerprint(clean) {
		t.Error("cancel+resume under task faults: model not bit-identical")
	}
	if got.Metrics.FailedAttempts != clean.Metrics.FailedAttempts {
		t.Errorf("fault draws diverged across cancel+resume: %d failed attempts vs %d",
			got.Metrics.FailedAttempts, clean.Metrics.FailedAttempts)
	}
}

// TestFitDeadlineExceeded pins the deadline flavor end to end: an expired
// context surfaces as a typed, resumable abort matching both the facade
// sentinel and the stdlib's, before any simulated work is charged.
func TestFitDeadlineExceeded(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 200, Cols: 40, Seed: 9})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := Config{Algorithm: SPCAMapReduce, Components: 3, MaxIter: 3, Context: ctx}
	_, err := Fit(y, cfg)
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded wrapping context.DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("deadline misreported as cancel: %v", err)
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if ab.Iter != 0 || ab.Checkpointed {
		t.Fatalf("pre-run deadline abort malformed: %+v", ab)
	}
}

// stallObserver sleeps past the stall budget once, at iteration n's boundary,
// simulating a driver whose process stops advancing.
type stallObserver struct {
	n     int
	sleep time.Duration
}

func (s *stallObserver) SpanStart(Span)   {}
func (s *stallObserver) SpanEnd(Span)     {}
func (s *stallObserver) Event(TraceEvent) {}
func (s *stallObserver) IterationDone(it TraceIteration) {
	if it.Iter == s.n {
		time.Sleep(s.sleep)
	}
}

// TestFitStallWatchdog arms Config.StallTimeout and wedges the run at an
// iteration boundary; the watchdog must abort with ErrStalled and attach the
// phase-summary diagnostic dump.
func TestFitStallWatchdog(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 200, Cols: 40, Seed: 9})
	cfg := Config{Algorithm: SPCAMapReduce, Components: 3, MaxIter: 4, Tol: -1,
		StallTimeout: 300 * time.Millisecond,
		Observer:     &stallObserver{n: 2, sleep: 1500 * time.Millisecond}}
	_, err := Fit(y, cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if ab.Iter != 2 {
		t.Errorf("stall observed at iteration %d, want 2", ab.Iter)
	}
	if !strings.Contains(ab.Diagnostic, "phase summary at stall") {
		t.Errorf("stall abort missing phase-summary diagnostic: %q", ab.Diagnostic)
	}
}

// TestAbortWithoutCheckpointNotResumable: cancelling a run with no checkpoint
// config yields the typed abort with Checkpointed=false — the caller learns
// there is nothing on disk to resume from.
func TestAbortWithoutCheckpointNotResumable(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 200, Cols: 40, Seed: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Algorithm: SPCAMapReduce, Components: 3, MaxIter: 4, Tol: -1,
		Context: ctx, Observer: &cancelAtIter{n: 2, cancel: cancel}}
	_, err := Fit(y, cfg)
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if ab.Iter != 2 || ab.Checkpointed {
		t.Fatalf("abort without checkpointing malformed: %+v", ab)
	}
}

// TestResumeRequiresCheckpoint pins the config guard: Resume without a
// checkpoint directory is a configuration error, not a silent fresh run.
func TestResumeRequiresCheckpoint(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 50, Cols: 20, Seed: 9})
	_, err := Fit(y, Config{Algorithm: SPCAMapReduce, Components: 2, MaxIter: 2, Resume: true})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

// TestLiveContextPreservesGoldenClock: threading a live, never-canceled
// context (and stall watchdog) through a fit must not change the simulated
// clock or the model by a single bit relative to a context-free fit.
func TestLiveContextPreservesGoldenClock(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 300, Cols: 50, Seed: 9})
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce} {
		base := Config{Algorithm: alg, Components: 4, MaxIter: 3, Tol: -1}
		plain, err := Fit(y, base)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		withCtx := base
		withCtx.Context = ctx
		withCtx.StallTimeout = time.Hour
		live, err := Fit(y, withCtx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if modelFingerprint(plain) != modelFingerprint(live) {
			t.Errorf("%s: live context perturbed the model", alg)
		}
		if plain.Metrics != live.Metrics {
			t.Errorf("%s: live context perturbed metrics:\n%+v\n%+v", alg, plain.Metrics, live.Metrics)
		}
	}
}
