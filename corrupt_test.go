package spca

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// corruptPlan arms payload corruption alone: every shuffle payload, cached
// partition, and broadcast block has a 20% chance per transfer of arriving
// corrupt. MaxAttempts 12 makes an unrecoverable payload unreachable in
// practice (0.2^12 per transfer), so any seed from the randomized Makefile
// run is safe.
func corruptPlan(seed uint64) *FaultPlan {
	return &FaultPlan{Seed: seed, CorruptionRate: 0.2, MaxAttempts: 12}
}

// TestCorruptModelsBitIdentical is the data-integrity core assertion: with
// payload corruption injected, every detected corruption is re-fetched and
// charged — the fitted model stays bit-identical to the corruption-free fit
// while the new counters prove corruption actually fired and was paid for.
func TestCorruptModelsBitIdentical(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 600, Cols: 80, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 4}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			if m := clean.Metrics; m.CorruptPayloads != 0 || m.ReverifySeconds != 0 {
				t.Fatalf("corruption-free fit charged corruption metrics: %v", m)
			}

			cfg := base
			cfg.Faults = corruptPlan(seed)
			faulty, err := Fit(y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
				t.Fatal("components not bit-identical under injected corruption")
			}
			if clean.Err != faulty.Err || clean.Iterations != faulty.Iterations {
				t.Fatalf("fit trajectory diverged under corruption: err %v vs %v, iters %d vs %d",
					clean.Err, faulty.Err, clean.Iterations, faulty.Iterations)
			}
			m := faulty.Metrics
			if m.CorruptPayloads == 0 {
				t.Fatalf("corruption plan injected no corruption: %v", m)
			}
			if m.ReverifySeconds <= 0 {
				t.Fatalf("re-transfer cost not charged: %v", m)
			}
			if m.SimSeconds <= clean.Metrics.SimSeconds {
				t.Fatalf("corrupted run not slower: %.3fs vs clean %.3fs",
					m.SimSeconds, clean.Metrics.SimSeconds)
			}
		})
	}
}

// TestCorruptWithTaskFaultsBitIdentical layers payload corruption on top of
// the full task-fault chaos plan: the two fault families draw from
// independent streams, recover through the same retry machinery, and must
// still leave the model untouched.
func TestCorruptWithTaskFaultsBitIdentical(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 500, Cols: 70, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 3}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Faults = chaosPlan(seed)
			cfg.Faults.CorruptionRate = 0.1
			faulty, err := Fit(y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
				t.Fatal("components not bit-identical under combined faults+corruption")
			}
			m := faulty.Metrics
			if m.CorruptPayloads == 0 || m.FailedAttempts == 0 {
				t.Fatalf("combined plan did not fire both fault families: %v", m)
			}
		})
	}
}

// TestCorruptCombinedPlanResume is the full-stack scenario: payload
// corruption + task faults + an injected driver crash with checkpointing.
// The resumed incarnation must draw the same corruption the uninterrupted
// run would, keeping model, clock, and corruption accounting bit-identical.
func TestCorruptCombinedPlanResume(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 500, Cols: 70, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			plan := func() *FaultPlan {
				p := chaosPlan(seed)
				p.CorruptionRate = 0.1
				return p
			}
			base := Config{Algorithm: alg, Components: 5, MaxIter: 4, Tol: -1,
				Faults:     plan(),
				Checkpoint: CheckpointSpec{Interval: 1, Dir: t.TempDir()}}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			crashed := base
			crashed.Checkpoint.Dir = t.TempDir()
			crashed.Faults = plan()
			crashed.Faults.DriverCrashIters = []int{2}
			res, err := Fit(y, crashed)
			if err != nil {
				t.Fatal(err)
			}
			if modelFingerprint(res) != modelFingerprint(clean) {
				t.Error("corruption+faults+crash: model not bit-identical to no-crash run")
			}
			if res.Metrics.SimSeconds != clean.Metrics.SimSeconds {
				t.Errorf("SimSeconds %v != %v", res.Metrics.SimSeconds, clean.Metrics.SimSeconds)
			}
			if res.Metrics.CorruptPayloads != clean.Metrics.CorruptPayloads {
				t.Errorf("corruption draws diverged after resume: %d corrupt payloads vs %d",
					res.Metrics.CorruptPayloads, clean.Metrics.CorruptPayloads)
			}
			if res.Metrics.FailedAttempts != clean.Metrics.FailedAttempts {
				t.Errorf("task-fault draws diverged after resume: %d failed attempts vs %d",
					res.Metrics.FailedAttempts, clean.Metrics.FailedAttempts)
			}
			if res.Metrics.DriverRestarts != 1 {
				t.Errorf("DriverRestarts = %d, want 1", res.Metrics.DriverRestarts)
			}
		})
	}
}

// TestCorruptNewestSnapshotResume drives multi-generation recovery: the
// snapshot the crash would resume from is corrupted on disk, so the resume
// must quarantine it and fall back to the previous generation — and still
// land on a model bit-identical to the uninterrupted run on the same
// simulated clock, with the quarantine surfaced in CorruptPayloads.
func TestCorruptNewestSnapshotResume(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 500, Cols: 70, Seed: 9})
	// Find a plan seed whose checkpoint-corruption draws damage exactly the
	// newest pre-crash generation (iteration 4) and spare the older one
	// (iteration 2). The draws are pure functions of the seed, so the search
	// is deterministic and the scenario is pinned, not probabilistic.
	var seed uint64
	for s := uint64(1); ; s++ {
		p := &FaultPlan{Seed: s, CheckpointCorruptionRate: 0.5}
		if p.SnapshotCorrupt(4) && !p.SnapshotCorrupt(2) {
			seed = s
			break
		}
	}
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 6, Tol: -1,
				Checkpoint: CheckpointSpec{Interval: 2, Dir: t.TempDir()}}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Checkpoint.Dir = t.TempDir()
			cfg.Faults = &FaultPlan{Seed: seed, CheckpointCorruptionRate: 0.5, DriverCrashIters: []int{5}}
			res, err := Fit(y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if modelFingerprint(res) != modelFingerprint(clean) {
				t.Error("resume over corrupt newest snapshot: model not bit-identical to uninterrupted run")
			}
			if res.Metrics.SimSeconds != clean.Metrics.SimSeconds {
				t.Errorf("SimSeconds %v != %v", res.Metrics.SimSeconds, clean.Metrics.SimSeconds)
			}
			if res.Metrics.DriverRestarts != 1 {
				t.Errorf("DriverRestarts = %d, want 1", res.Metrics.DriverRestarts)
			}
			if res.Metrics.CorruptPayloads != 1 {
				t.Errorf("CorruptPayloads = %d, want 1 (the quarantined generation)", res.Metrics.CorruptPayloads)
			}
			if _, err := os.Stat(filepath.Join(cfg.Checkpoint.Dir, "ckpt-000004.spck.quarantined")); err != nil {
				t.Errorf("corrupt generation not quarantined on disk: %v", err)
			}
		})
	}
}

// TestCorruptAllSnapshotsScratchRestart: when every retained generation is
// corrupt, the resume quarantines them all and restarts from scratch — still
// bit-identical, with the whole crashed incarnation charged as recovery.
func TestCorruptAllSnapshotsScratchRestart(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 60, Seed: 9})
	base := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 4, Tol: -1,
		Checkpoint: CheckpointSpec{Interval: 1, Dir: t.TempDir()}}
	clean, err := Fit(y, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Checkpoint.Dir = t.TempDir()
	cfg.Faults = &FaultPlan{Seed: 1, CheckpointCorruptionRate: 1, DriverCrashIters: []int{3}}
	res, err := Fit(y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if modelFingerprint(res) != modelFingerprint(clean) {
		t.Error("scratch restart after total snapshot loss: model not bit-identical")
	}
	if res.Metrics.SimSeconds != clean.Metrics.SimSeconds {
		t.Errorf("SimSeconds %v != %v", res.Metrics.SimSeconds, clean.Metrics.SimSeconds)
	}
	// All three pre-crash generations (Keep defaults to 3) were quarantined.
	if res.Metrics.CorruptPayloads != 3 {
		t.Errorf("CorruptPayloads = %d, want 3 quarantined generations", res.Metrics.CorruptPayloads)
	}
	if res.Metrics.RecoverySeconds <= 0 {
		t.Errorf("scratch restart charged no recovery: %v", res.Metrics.RecoverySeconds)
	}
}

// TestCorruptUnrecoverablePayloadFatal pins the failure mode: when every
// re-fetch of a payload is corrupt (rate 1) the retry budget exhausts and the
// fit fails with the typed sentinel instead of looping or returning a
// poisoned model.
func TestCorruptUnrecoverablePayloadFatal(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 300, Cols: 50, Seed: 9})
	cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 3,
		Faults: &FaultPlan{Seed: 1, CorruptionRate: 1}}
	_, err := Fit(y, cfg)
	if !errors.Is(err, ErrCorruptPayload) {
		t.Fatalf("want ErrCorruptPayload, got %v", err)
	}
}

// TestCorruptSnapshotRetention checks the save-path retention policy: a long
// checkpointed run keeps only the newest generations (default 3), and a
// negative Keep disables pruning.
func TestCorruptSnapshotRetention(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 300, Cols: 50, Seed: 9})
	count := func(dir string) int {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".spck" {
				n++
			}
		}
		return n
	}
	cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 5, Tol: -1,
		Checkpoint: CheckpointSpec{Interval: 1, Dir: t.TempDir()}}
	if _, err := Fit(y, cfg); err != nil {
		t.Fatal(err)
	}
	if got := count(cfg.Checkpoint.Dir); got != 3 {
		t.Errorf("default retention kept %d generations, want 3", got)
	}
	unlimited := cfg
	unlimited.Checkpoint.Dir = t.TempDir()
	unlimited.Checkpoint.Keep = -1
	if _, err := Fit(y, unlimited); err != nil {
		t.Fatal(err)
	}
	if got := count(unlimited.Checkpoint.Dir); got != 5 {
		t.Errorf("Keep=-1 kept %d generations, want all 5", got)
	}
}

// TestCorruptCleanRunSnapshotGolden pins the corruption-free baseline: zero
// corruption counters, and the simulated checkpoint charge still follows the
// shape-only cost model the v1 format used — the v2 checksum trailer is free
// on the simulated clock, so every pre-existing golden SimSeconds holds.
func TestCorruptCleanRunSnapshotGolden(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 300, Cols: 50, Seed: 9})
	cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 4, Tol: -1,
		Checkpoint: CheckpointSpec{Interval: 2, Dir: t.TempDir()}}
	res, err := Fit(y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CorruptPayloads != 0 || res.Metrics.ReverifySeconds != 0 {
		t.Fatalf("clean run charged corruption metrics: %v", res.Metrics)
	}
	// Snapshots at iterations 2 and 4: 256 fixed + mean (cols) + components
	// (cols x d) at 8 bytes a float, + 64 per history entry (2 then 4).
	perSnap := int64(256 + 50*8 + 50*4*8)
	want := 2*perSnap + (2+4)*64
	if res.Metrics.CheckpointBytes != want {
		t.Errorf("CheckpointBytes = %d, want shape-model golden %d", res.Metrics.CheckpointBytes, want)
	}
}
