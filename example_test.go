package spca_test

import (
	"fmt"
	"math"

	"spca"
)

// ExampleFit extracts principal components from a synthetic sparse dataset
// with sPCA on the simulated Spark engine.
func ExampleFit() {
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Tweets, Rows: 2000, Cols: 300, Seed: 1,
	})
	res, err := spca.Fit(y, spca.Config{
		Algorithm:  spca.SPCASpark,
		Components: 10,
		MaxIter:    3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("components: %d x %d\n", res.Components.R, res.Components.C)
	fmt.Printf("iterations: %d\n", res.Iterations)
	fmt.Printf("intermediate data under 1 MiB: %v\n", res.Metrics.MaterializedBytes < 1<<20)
	// Output:
	// components: 300 x 10
	// iterations: 3
	// intermediate data under 1 MiB: true
}

// ExampleResult_Transform reduces the dimensionality of a dataset with the
// fitted components.
func ExampleResult_Transform() {
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Diabetes, Rows: 100, Cols: 50, Rank: 3, Seed: 2,
	})
	res, err := spca.Fit(y, spca.Config{Algorithm: spca.LocalPPCA, Components: 3, MaxIter: 20})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	x, err := res.Transform(y)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("reduced: %d x %d\n", x.R, x.C)
	// Output:
	// reduced: 100 x 3
}

// ExampleFitMissingConfig fits PPCA on data with NaN-marked missing entries
// and imputes them.
func ExampleFitMissingConfig() {
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Diabetes, Rows: 80, Cols: 30, Rank: 3, Seed: 3,
	}).Dense()
	y.Set(5, 7, math.NaN()) // a missing measurement
	y.Set(40, 2, math.NaN())

	res, err := spca.FitMissingConfig(y, spca.Config{Components: 3, MaxIter: 30, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	imputed := res.Impute(y)
	fmt.Printf("holes filled: %v\n",
		!math.IsNaN(imputed.At(5, 7)) && !math.IsNaN(imputed.At(40, 2)))
	// Output:
	// holes filled: true
}

// ExampleFit_mllibFailure shows the driver-memory failure mode the paper
// reports for MLlib-PCA on wide matrices.
func ExampleFit_mllibFailure() {
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Tweets, Rows: 500, Cols: 800, Seed: 4,
	})
	_, err := spca.Fit(y, spca.Config{
		Algorithm:  spca.MLlibPCA,
		Components: 10,
		// A driver too small for the 800x800 covariance.
		Cluster: spca.ClusterConfig{DriverMemoryGB: 0.005},
	})
	fmt.Println("failed:", err != nil)
	// Output:
	// failed: true
}
