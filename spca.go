// Package spca is a Go reproduction of "sPCA: Scalable Principal Component
// Analysis for Big Data on Distributed Platforms" (SIGMOD 2015). It provides
// the paper's scalable probabilistic PCA (sPCA) on two simulated distributed
// platforms — a Hadoop-like MapReduce engine and a Spark-like RDD engine —
// together with the baselines the paper analyzes (Mahout-PCA, i.e.
// stochastic SVD on MapReduce; MLlib-PCA, i.e. covariance +
// eigendecomposition on Spark; and the §2.2 SVD-Bidiag pipeline), synthetic
// generators for the paper's four dataset families, and a benchmark harness
// regenerating every table and figure of the evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	y := spca.GenerateDataset(spca.DatasetSpec{
//		Kind: spca.Tweets, Rows: 10000, Cols: 1000, Seed: 1,
//	})
//	res, err := spca.Fit(y, spca.Config{Algorithm: spca.SPCASpark, Components: 50})
//	// res.Components: D x 50 principal directions
//	// res.Metrics:    simulated running time, shuffle bytes, ...
package spca

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/covpca"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/ppca"
	"spca/internal/rdd"
	"spca/internal/rsvd"
	"spca/internal/ssvd"
	"spca/internal/svdbidiag"
	"spca/internal/trace"
)

// Typed errors returned by Fit and FitStreamFile input validation, matchable
// with errors.Is.
var (
	// ErrEmptyInput rejects a nil or zero-sized input matrix.
	ErrEmptyInput = errors.New("spca: empty input matrix")
	// ErrNonFiniteInput rejects NaN/Inf values in the input. This is distinct
	// from FitMissing, which interprets NaN in a *dense* matrix as a
	// missing-entry marker; the sparse fit paths require finite data.
	ErrNonFiniteInput = errors.New("spca: input contains non-finite values")
	// ErrBadConfig rejects out-of-range Config fields.
	ErrBadConfig = errors.New("spca: invalid configuration")
	// ErrNumericalBreakdown surfaces a numerical-guard failure inside the EM
	// loop: non-finite model state or an unrecoverably singular solve.
	ErrNumericalBreakdown = ppca.ErrNumericalBreakdown
	// ErrDriverCrash is the sentinel under every injected driver crash. Fit
	// only returns it when checkpointing is disabled — with a Checkpoint
	// configured the driver auto-resumes instead.
	ErrDriverCrash = cluster.ErrDriverCrash
	// ErrCorruptPayload is the sentinel under an unrecoverable data-plane
	// corruption: a payload whose checksum failed on every re-fetch the
	// retry budget allowed, or a real producer/consumer digest mismatch.
	// Recoverable corruption (the normal case under FaultPlan.CorruptionRate)
	// never surfaces as an error — it is retried and charged to
	// Metrics.CorruptPayloads/ReverifySeconds.
	ErrCorruptPayload = cluster.ErrCorruptPayload
	// ErrCanceled is the sentinel under a run stopped by Config.Context
	// cancellation. It wraps context.Canceled, so errors.Is matches either.
	ErrCanceled = cluster.ErrCanceled
	// ErrDeadlineExceeded is the sentinel under a run stopped by a
	// Config.Context deadline. It wraps context.DeadlineExceeded.
	ErrDeadlineExceeded = cluster.ErrDeadlineExceeded
	// ErrStalled is the sentinel under a run aborted by the stall watchdog
	// (Config.StallTimeout): no iteration or phase progress within budget.
	ErrStalled = cluster.ErrStalled
	// ErrTaskFailed is the sentinel under a distributed job whose task
	// exhausted its attempt budget (only reachable with Faults armed).
	ErrTaskFailed = mapred.ErrTaskFailed
	// ErrBadSnapshot is the sentinel under every checkpoint-integrity failure:
	// truncated, bit-flipped, or version-mismatched snapshot files.
	ErrBadSnapshot = checkpoint.ErrBadSnapshot
	// ErrDriverOOM is the sentinel under a simulated driver-memory exhaustion
	// (the MLlib-PCA wide-matrix failure mode).
	ErrDriverOOM = cluster.ErrDriverOOM
)

// AbortError reports a cooperative abort: a fit stopped by Config.Context
// cancellation, a context deadline, or the stall watchdog. Iter is the last
// completed iteration/round, Checkpointed says whether a snapshot covering it
// is on durable storage (resume by re-running Fit with Config.Resume set),
// and the error unwraps to ErrCanceled / ErrDeadlineExceeded / ErrStalled.
type AbortError = cluster.AbortError

// ErrMalformedMatrix re-exports the typed parse error of the matrix readers
// (bad headers, out-of-range indices, non-finite values in files).
var ErrMalformedMatrix = matrix.ErrMalformedMatrix

// Matrix and vector types used throughout the public API.
type (
	// Dense is a row-major dense matrix.
	Dense = matrix.Dense
	// Sparse is a compressed-sparse-row matrix.
	Sparse = matrix.Sparse
	// SparseVector is one sparse row.
	SparseVector = matrix.SparseVector
)

// Algorithm selects which PCA implementation Fit runs.
type Algorithm string

// The four algorithms compared in the paper's evaluation, plus the
// single-machine PPCA reference.
const (
	// SPCAMapReduce is sPCA on the Hadoop-like engine (Algorithm 4).
	SPCAMapReduce Algorithm = "spca-mapreduce"
	// SPCASpark is sPCA on the Spark-like engine (Algorithm 5).
	SPCASpark Algorithm = "spca-spark"
	// MahoutPCA is the stochastic-SVD baseline on MapReduce (§2.3).
	MahoutPCA Algorithm = "mahout-pca"
	// MLlibPCA is the covariance-eigendecomposition baseline on Spark (§2.1).
	MLlibPCA Algorithm = "mllib-pca"
	// SVDBidiag is the dense QR + bidiagonal-SVD pipeline on MapReduce
	// (§2.2, the method RScaLAPACK exposes), with a distributed TSQR step.
	SVDBidiag Algorithm = "svd-bidiag"
	// LocalPPCA is the single-machine PPCA reference (Algorithm 1).
	LocalPPCA Algorithm = "ppca-local"
	// RSVDMapReduce is distributed randomized SVD on the Hadoop-like engine:
	// a seeded Gaussian range finder with QR re-orthonormalized power
	// iterations and a small driver-side SVD. The modern sketch competitor
	// to the iterative EM algorithms.
	RSVDMapReduce Algorithm = "rsvd-mapreduce"
	// RSVDSpark is the communication-optimal distributed sketch (Balcan et
	// al.) on the Spark-like engine: each partition computes a complete
	// local sketch and ships only a k x D block; the driver merges the
	// stacked blocks with one small SVD.
	RSVDSpark Algorithm = "rsvd-spark"
)

// Dataset kinds, mirroring the paper's four evaluation datasets.
const (
	Tweets   = dataset.KindTweets
	BioText  = dataset.KindBioText
	Diabetes = dataset.KindDiabetes
	Images   = dataset.KindImages
)

// DatasetSpec describes a synthetic dataset to generate.
type DatasetSpec = dataset.Spec

// DatasetKind names one of the paper's dataset families.
type DatasetKind = dataset.Kind

// GenerateDataset builds a synthetic dataset with the statistical skeleton
// of the requested paper dataset (see internal/dataset). It panics on an
// invalid spec; use NewDataset to receive the error instead.
func GenerateDataset(spec DatasetSpec) *Sparse { return dataset.MustGenerate(spec) }

// NewDataset is GenerateDataset returning spec errors instead of panicking.
func NewDataset(spec DatasetSpec) (*Sparse, error) { return dataset.Generate(spec) }

// ClusterConfig describes the simulated cluster a fit runs on.
type ClusterConfig struct {
	// Nodes and CoresPerNode shape the worker pool (default 8 x 8, the
	// paper's testbed).
	Nodes        int
	CoresPerNode int
	// NodeMemoryGB and DriverMemoryGB set the simulated memory limits
	// (default 32 GB each). DriverMemoryGB is what makes MLlib-PCA fail on
	// wide matrices.
	NodeMemoryGB   float64
	DriverMemoryGB float64
	// Cost-model overrides (zero keeps the default rates). The experiment
	// harness lowers the bandwidths and raises RecordCostSec to restore the
	// paper's cost balance on scaled-down datasets; see DESIGN.md.
	NetworkMBps   float64 // aggregate shuffle bandwidth, MB/s
	DiskMBps      float64 // aggregate disk bandwidth, MB/s
	RecordCostSec float64 // seconds per scanned record, shared across cores
}

// Metrics re-exports the simulated-cluster accounting.
type Metrics = cluster.Metrics

// FaultPlan re-exports the deterministic fault-injection plan. Armed via
// Config.Faults it subjects a fit to task-attempt failures, node losses and
// stragglers; the engines recover (retries on MapReduce, lineage
// recomputation on Spark), the recovery cost lands in the Metrics fault
// fields, and the fitted model stays bit-identical to a fault-free run.
type FaultPlan = cluster.FaultPlan

// CheckpointSpec configures periodic durable driver snapshots; see
// Config.Checkpoint.
type CheckpointSpec = ppca.CheckpointSpec

// DriverCrashError reports an injected driver crash: the EM iteration the
// driver completed before dying, the incarnation that crashed, and the
// simulated clock at the moment of death. Unwraps to ErrDriverCrash.
type DriverCrashError = cluster.DriverCrashError

// Tracing and observability types, re-exported from the deterministic trace
// subsystem (see the Observability section of DESIGN.md). All timestamps are
// simulated-cluster seconds; with a fixed Config the span stream is
// bit-reproducible across runs and platforms.
type (
	// Observer receives spans, events, and iteration stats as a fit runs.
	// Implementations must be cheap: callbacks fire synchronously on the
	// driver's goroutine in deterministic order.
	Observer = trace.Observer
	// Trace is the in-memory span tree collected by Config.CollectTrace.
	Trace = trace.Trace
	// Span is one traced operation (fit, iteration, job, action, phase).
	Span = trace.Span
	// TraceEvent is an instantaneous marker (recovery, driver-crash, ...).
	TraceEvent = trace.Event
	// TraceAttr is one typed key/value attribute on a span or event.
	TraceAttr = trace.Attr
	// TraceIteration is the per-EM-iteration observer payload.
	TraceIteration = trace.Iteration
	// SpanKind classifies a span's layer.
	SpanKind = trace.Kind
	// JSONLTraceWriter streams completed spans as JSON lines.
	JSONLTraceWriter = trace.JSONLWriter
	// PhaseSummary is one row of Result.Summary: the aggregate cost of all
	// cluster phases sharing a name.
	PhaseSummary = cluster.PhaseSummary
)

// Span kinds, from outermost to innermost layer.
const (
	KindFit       = trace.KindFit
	KindIteration = trace.KindIteration
	KindJob       = trace.KindJob
	KindAction    = trace.KindAction
	KindPhase     = trace.KindPhase
	KindDriver    = trace.KindDriver
)

// NewJSONLTraceWriter returns an Observer that writes one JSON line per
// completed span, event, and iteration to w. Call Flush before reading the
// output. The format round-trips exactly: ReadJSONLTrace reconstructs a
// Trace with the same Fingerprint.
func NewJSONLTraceWriter(w io.Writer) *JSONLTraceWriter { return trace.NewJSONLWriter(w) }

// ReadJSONLTrace parses a stream written by NewJSONLTraceWriter.
func ReadJSONLTrace(r io.Reader) (*Trace, error) { return trace.ReadJSONL(r) }

// WriteChromeTrace exports t in Chrome trace_event format, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Span timestamps are
// simulated seconds rendered as microseconds.
func WriteChromeTrace(w io.Writer, t *Trace) error { return trace.WriteChrome(w, t) }

// IterationStat mirrors ppca.IterationStat for the unified result.
type IterationStat struct {
	Iter       int
	Err        float64
	Accuracy   float64
	SimSeconds float64
	// Ridge is the total ridge regularization added to this iteration's
	// M-step solve (zero in a healthy run); RidgeRetries counts singular-solve
	// retries; Rollback marks an iteration the divergence guard rolled back.
	Ridge        float64
	RidgeRetries int
	Rollback     bool
}

// Config configures Fit. Zero values select paper defaults.
type Config struct {
	// Algorithm defaults to SPCASpark.
	Algorithm Algorithm
	// Components is d (default 50, the paper's setting, clamped to D).
	Components int
	// MaxIter caps refinement rounds (default 10, per §5.1).
	MaxIter int
	// TargetAccuracy stops at this fraction of ideal accuracy (e.g. 0.95).
	// When set, Fit computes the ideal error with an exact rank-d PCA first.
	TargetAccuracy float64
	// Seed drives all randomness (default 42).
	Seed uint64
	// Cluster overrides the simulated cluster (default: paper testbed).
	Cluster ClusterConfig
	// Faults arms deterministic fault injection for the distributed
	// algorithms (nil, the default, runs fault-free). See FaultPlan.
	Faults *FaultPlan
	// MaxAttempts bounds task attempts per MapReduce phase: the retry budget
	// injected task failures and corrupt payloads are recovered within
	// before the job fails. Zero keeps the engine default (4, like Hadoop);
	// negative values are rejected. A FaultPlan's own MaxAttempts takes
	// precedence when set.
	MaxAttempts int
	// BadRecordBudget allows up to this many malformed input records to be
	// skipped (dropped) per pass by the streaming fit's file reader instead
	// of failing the run, with the count reported on Result.SkippedRecords.
	// Zero, the default, keeps every reader strict. Only FitStreamFileConfig
	// consumes it; in-memory fits validate their input up front.
	BadRecordBudget int
	// Tol is the convergence tolerance for the PPCA-family algorithms: the
	// fit stops early once the relative reconstruction-error improvement
	// drops below it. Zero keeps the paper default (1e-3); a negative value
	// disables early stopping entirely.
	Tol float64
	// DivergeWindow arms the EM divergence guard: after this many consecutive
	// iterations of rising error the driver rolls back to the best model seen
	// and applies an escalating ridge to later solves. Zero disables it.
	DivergeWindow int
	// Observer, when non-nil, receives every span, event, and EM-iteration
	// stat the fit produces, synchronously and in deterministic order on the
	// simulated clock. The nil default disables tracing with zero overhead.
	Observer Observer
	// CollectTrace attaches an in-memory sink and returns the full span tree
	// on Result.Trace. It composes with Observer (both see the same stream).
	CollectTrace bool
	// Checkpoint enables periodic durable snapshots of the EM driver state
	// for the PPCA-family algorithms. With an Interval and Dir set, the fit
	// survives injected driver crashes (FaultPlan.DriverCrashIters): Fit
	// auto-resumes from the latest snapshot and the final model is
	// bit-identical to an uninterrupted run, with the recovery cost reported
	// in Metrics (RecoverySeconds, DriverRestarts). The zero value disables
	// checkpointing at zero cost.
	Checkpoint CheckpointSpec
	// Context, when non-nil, makes the fit cooperatively cancelable: cancel
	// it (or let its deadline expire) and the run unwinds at the next
	// iteration/phase boundary with an *AbortError whose cause matches
	// ErrCanceled or ErrDeadlineExceeded (and the stdlib context sentinels).
	// With Checkpoint configured, the driver writes a final snapshot at the
	// abort boundary so a later Fit with Resume set continues bit-identically.
	// Polling a live context is allocation-free and charges nothing to the
	// simulated clock. Nil (the default) runs uninterruptible.
	Context context.Context
	// StallTimeout arms a real-time stall watchdog: if no iteration or phase
	// progress is observed for this long, the run aborts with an *AbortError
	// wrapping ErrStalled whose Diagnostic carries a phase-summary dump.
	// Zero disables the watchdog. The budget is wall-clock time (a stalled
	// process), not simulated seconds.
	StallTimeout time.Duration
	// Resume makes Fit start from the latest valid snapshot in
	// Checkpoint.Dir instead of from scratch — the continuation step after
	// an aborted (canceled / deadline-exceeded / stalled / killed) run.
	// Requires Checkpoint to be configured; an empty or checkpoint-less
	// directory falls back to a fresh run. The resumed fit's model, history,
	// and final simulated clock are bit-identical to an uninterrupted run.
	Resume bool

	// Optimization switches for sPCA ablations. DisableX turns an
	// optimization OFF (the zero value keeps full sPCA behaviour).
	DisableMeanPropagation      bool
	DisableMinimizeIntermediate bool
	DisableEfficientFrobenius   bool
	DisableStatefulCombiner     bool // §4.1 in-mapper combining (MapReduce)
	DisableAssociativeSS3       bool // §4.1 Eq. 3 multiplication order
	// SmartGuess enables sPCA-SG initialization (§5.2).
	SmartGuess bool

	// Oversample adds extra random projections beyond Components for the
	// sketch algorithms (RSVDMapReduce, RSVDSpark, MahoutPCA). Zero keeps
	// each engine's default.
	Oversample int
	// PowerIterations sets q for the sketch algorithms. Zero keeps each
	// engine's default; a negative value selects zero power iterations
	// (Mahout's stock configuration).
	PowerIterations int
}

// Result is the unified output of Fit. It embeds the fitted Model — the
// projection surface shared with the model files and the serving registry —
// and adds the run-scoped outputs: error history, cluster metrics, and the
// collected trace. Transform, Reconstruct, ExplainedVariance, and Save are
// the embedded Model's methods.
type Result struct {
	Model
	// Err is the final sampled relative 1-norm reconstruction error.
	Err float64
	// Iterations counts refinement rounds.
	Iterations int
	// History traces error/accuracy per round (empty for MLlibPCA, which is
	// a fixed sequence of matrix operations).
	History []IterationStat
	// Metrics is the simulated-cluster accounting of the run.
	Metrics Metrics
	// SkippedRecords counts malformed input records dropped under
	// Config.BadRecordBudget by the streaming fit (per pass — the file does
	// not change between passes, so every pass skips the same records).
	// Always zero without a budget.
	SkippedRecords int64
	// Trace is the collected span tree when Config.CollectTrace was set
	// (nil otherwise). Spans appear in completion order — children before
	// parents — with timestamps on the simulated clock.
	Trace *Trace

	// phases is the final incarnation's phase-log summary, the Summary
	// fallback when no trace was collected.
	phases []cluster.PhaseSummary
}

// Summary returns the per-phase cost breakdown of the run: for every distinct
// phase name, the aggregate simulated seconds, shuffle/disk bytes, compute
// ops, and attempt counts. When a trace was collected the breakdown is
// derived from its phase spans and covers every driver incarnation; otherwise
// it comes from the final incarnation's phase log.
func (r *Result) Summary() []PhaseSummary {
	if r.Trace != nil {
		pm := r.Trace.Breakdown()
		out := make([]PhaseSummary, len(pm))
		for i, p := range pm {
			out[i] = PhaseSummary{
				Name:            p.Name,
				Count:           p.Count,
				Seconds:         p.Seconds,
				RecoverySeconds: p.RecoverySeconds,
				ComputeOps:      p.ComputeOps + p.RecomputedOps,
				ShuffleBytes:    p.ShuffleBytes,
				DiskBytes:       p.DiskBytes + p.RecoveryDiskBytes,
				Tasks:           p.Tasks,
				Records:         p.Records,
				FailedAttempts:  p.FailedAttempts,
			}
		}
		return out
	}
	return r.phases
}

func (c ClusterConfig) build(alg Algorithm) cluster.Config {
	cfg := cluster.DefaultConfig()
	if c.Nodes > 0 {
		cfg.Nodes = c.Nodes
	}
	if c.CoresPerNode > 0 {
		cfg.CoresPerNode = c.CoresPerNode
	}
	if c.NodeMemoryGB > 0 {
		cfg.NodeMemory = int64(c.NodeMemoryGB * float64(1<<30))
	}
	if c.DriverMemoryGB > 0 {
		cfg.DriverMemory = int64(c.DriverMemoryGB * float64(1<<30))
	}
	if c.NetworkMBps > 0 {
		cfg.NetworkBps = c.NetworkMBps * 1e6
	}
	if c.DiskMBps > 0 {
		cfg.DiskBps = c.DiskMBps * 1e6
	}
	if c.RecordCostSec > 0 {
		cfg.RecordCost = c.RecordCostSec
	}
	// Spark-style engines schedule tasks far more cheaply than Hadoop's
	// JVM-per-task model.
	if alg == SPCASpark || alg == MLlibPCA || alg == RSVDSpark {
		cfg = cfg.WithTaskOverhead(0.05)
	}
	return cfg
}

func (c Config) normalize(dims int) Config {
	if c.Algorithm == "" {
		c.Algorithm = SPCASpark
	}
	if c.Components <= 0 {
		c.Components = 50
	}
	if c.Components > dims {
		c.Components = dims
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// validateInput performs the typed input checks shared by the fit entry
// points: a usable shape and finite data.
func validateInput(y *Sparse) error {
	if y == nil || y.R == 0 || y.C == 0 {
		return ErrEmptyInput
	}
	for _, v := range y.Vals {
		if v != v || math.IsInf(v, 0) {
			return fmt.Errorf("%w (found %v; FitMissing accepts NaN-marked dense matrices)", ErrNonFiniteInput, v)
		}
	}
	return nil
}

// check validates the user-facing Config ranges before normalize fills in
// defaults.
func (c Config) check() error {
	if c.TargetAccuracy < 0 || c.TargetAccuracy > 1 {
		return fmt.Errorf("%w: TargetAccuracy %v outside (0, 1]", ErrBadConfig, c.TargetAccuracy)
	}
	if c.Checkpoint.Interval < 0 {
		return fmt.Errorf("%w: negative Checkpoint.Interval %d", ErrBadConfig, c.Checkpoint.Interval)
	}
	if c.Checkpoint.Interval > 0 && c.Checkpoint.Dir == "" {
		return fmt.Errorf("%w: Checkpoint.Interval set without Checkpoint.Dir", ErrBadConfig)
	}
	if c.DivergeWindow < 0 {
		return fmt.Errorf("%w: negative DivergeWindow %d", ErrBadConfig, c.DivergeWindow)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("%w: MaxAttempts %d below 1 (0 selects the engine default)", ErrBadConfig, c.MaxAttempts)
	}
	if c.BadRecordBudget < 0 {
		return fmt.Errorf("%w: negative BadRecordBudget %d", ErrBadConfig, c.BadRecordBudget)
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("%w: negative StallTimeout %v", ErrBadConfig, c.StallTimeout)
	}
	if c.Resume && !c.Checkpoint.Enabled() {
		return fmt.Errorf("%w: Resume requires a configured Checkpoint", ErrBadConfig)
	}
	return nil
}

// Fit computes the principal components of y with the configured algorithm
// on a fresh simulated cluster, returning the components together with the
// run's accuracy history and cluster metrics.
func Fit(y *Sparse, cfg Config) (*Result, error) {
	if err := validateInput(y); err != nil {
		return nil, err
	}
	if err := cfg.check(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize(y.C)
	rows := dataset.Rows(y)
	tr, col := cfg.tracer()
	intr := cluster.NewInterrupt(cfg.Context, cfg.StallTimeout)

	switch cfg.Algorithm {
	case LocalPPCA:
		opt := cfg.ppcaOptions(y)
		opt.Tracer = tr
		opt.Interrupt = intr
		res, err := cfg.runWithResume(opt, func(opt ppca.Options) (*ppca.Result, error) {
			return ppca.FitLocal(y, opt)
		})
		if err != nil {
			return nil, err
		}
		return attachTrace(fromPPCA(cfg.Algorithm, cfg.Seed, res), col), nil

	case SPCAMapReduce:
		opt := cfg.ppcaOptions(y)
		opt.Tracer = tr
		opt.Interrupt = intr
		res, err := cfg.runWithResume(opt, func(opt ppca.Options) (*ppca.Result, error) {
			cl, err := cfg.newCluster(intr)
			if err != nil {
				return nil, err
			}
			return ppca.FitMapReduce(cfg.mapredEngine(cl), rows, y.C, opt)
		})
		if err != nil {
			return nil, err
		}
		return attachTrace(fromPPCA(cfg.Algorithm, cfg.Seed, res), col), nil

	case SPCASpark:
		opt := cfg.ppcaOptions(y)
		opt.Tracer = tr
		opt.Interrupt = intr
		res, err := cfg.runWithResume(opt, func(opt ppca.Options) (*ppca.Result, error) {
			cl, err := cfg.newCluster(intr)
			if err != nil {
				return nil, err
			}
			return ppca.FitSpark(cfg.rddContext(cl), rows, y.C, opt)
		})
		if err != nil {
			return nil, err
		}
		return attachTrace(fromPPCA(cfg.Algorithm, cfg.Seed, res), col), nil

	case RSVDMapReduce:
		opt := cfg.rsvdOptions(y)
		opt.Tracer = tr
		opt.Interrupt = intr
		res, err := cfg.runSketchWithResume(opt, func(opt rsvd.Options) (*rsvd.Result, error) {
			cl, err := cfg.newCluster(intr)
			if err != nil {
				return nil, err
			}
			return rsvd.FitMapReduce(cfg.mapredEngine(cl), rows, y.C, opt)
		})
		if err != nil {
			return nil, err
		}
		return attachTrace(fromRSVD(cfg.Algorithm, cfg.Seed, res), col), nil

	case RSVDSpark:
		opt := cfg.rsvdOptions(y)
		opt.Tracer = tr
		opt.Interrupt = intr
		res, err := cfg.runSketchWithResume(opt, func(opt rsvd.Options) (*rsvd.Result, error) {
			cl, err := cfg.newCluster(intr)
			if err != nil {
				return nil, err
			}
			return rsvd.FitSpark(cfg.sketchRDDContext(cl), rows, y.C, opt)
		})
		if err != nil {
			return nil, err
		}
		return attachTrace(fromRSVD(cfg.Algorithm, cfg.Seed, res), col), nil

	case MahoutPCA:
		cl, err := cfg.newCluster(intr)
		if err != nil {
			return nil, err
		}
		opt := ssvd.DefaultOptions(cfg.Components)
		opt.Seed = cfg.Seed
		opt.MaxRounds = cfg.MaxIter
		if cfg.Oversample > 0 {
			opt.Oversample = cfg.Oversample
		}
		if cfg.PowerIterations != 0 {
			opt.PowerIterations = max(cfg.PowerIterations, 0)
		}
		if cfg.TargetAccuracy > 0 {
			opt.TargetAccuracy = cfg.TargetAccuracy
			opt.IdealError = ppca.IdealError(y, cfg.Components, cfg.ppcaBaseOptions())
		}
		opt.Tracer = tr
		res, err := ssvd.FitMapReduce(cfg.mapredEngine(cl), rows, y.C, opt)
		if err != nil {
			return nil, normalizeInterrupt(err)
		}
		out := &Result{
			Model: Model{
				Algorithm:      cfg.Algorithm,
				Components:     res.Components,
				Mean:           y.ColMeans(),
				SingularValues: res.Singular,
				Seed:           cfg.Seed,
				orthonormal:    true,
			},
			Iterations: res.Iterations,
			Metrics:    res.Metrics,
			phases:     res.Phases,
		}
		for _, h := range res.History {
			out.History = append(out.History, IterationStat{
				Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SimSeconds: h.SimSeconds,
			})
		}
		if len(out.History) > 0 {
			out.Err = out.History[len(out.History)-1].Err
		}
		return attachTrace(out, col), nil

	case MLlibPCA:
		cl, err := cfg.newCluster(intr)
		if err != nil {
			return nil, err
		}
		opt := covpca.DefaultOptions(cfg.Components)
		opt.Seed = cfg.Seed
		opt.Tracer = tr
		res, err := covpca.FitSpark(cfg.rddContext(cl), rows, y.C, opt)
		if err != nil {
			return nil, normalizeInterrupt(err)
		}
		return attachTrace(&Result{
			Model: Model{
				Algorithm:   cfg.Algorithm,
				Components:  res.Components,
				Mean:        y.ColMeans(),
				Seed:        cfg.Seed,
				orthonormal: true,
			},
			Err:        res.Err,
			Iterations: 1,
			History: []IterationStat{{
				Iter: 1, Err: res.Err, SimSeconds: res.Metrics.SimSeconds,
			}},
			Metrics: res.Metrics,
			phases:  res.Phases,
		}, col), nil

	case SVDBidiag:
		cl, err := cfg.newCluster(intr)
		if err != nil {
			return nil, err
		}
		opt := svdbidiag.DefaultOptions(cfg.Components)
		opt.Seed = cfg.Seed
		opt.Tracer = tr
		res, err := svdbidiag.FitMapReduce(cfg.mapredEngine(cl), rows, y.C, opt)
		if err != nil {
			return nil, normalizeInterrupt(err)
		}
		return attachTrace(&Result{
			Model: Model{
				Algorithm:   cfg.Algorithm,
				Components:  res.Components,
				Mean:        y.ColMeans(),
				Seed:        cfg.Seed,
				orthonormal: true,
			},
			Err:        res.Err,
			Iterations: 1,
			History: []IterationStat{{
				Iter: 1, Err: res.Err, SimSeconds: res.Metrics.SimSeconds,
			}},
			Metrics: res.Metrics,
			phases:  res.Phases,
		}, col), nil

	default:
		return nil, fmt.Errorf("spca: unknown algorithm %q", cfg.Algorithm)
	}
}

// tracer builds the run's Tracer from the observer-related Config fields. It
// returns (nil, nil) — tracing fully disabled, zero overhead on every call
// site — unless an Observer is set or CollectTrace is requested.
func (c Config) tracer() (*trace.Tracer, *trace.Collector) {
	if c.Observer == nil && !c.CollectTrace {
		return nil, nil
	}
	tr := trace.New()
	if c.Observer != nil {
		tr.AddObserver(c.Observer)
	}
	var col *trace.Collector
	if c.CollectTrace {
		col = trace.NewCollector()
		tr.AddObserver(col)
	}
	return tr, col
}

// attachTrace moves the collected span tree (if any) onto the result.
func attachTrace(r *Result, col *trace.Collector) *Result {
	if col != nil {
		r.Trace = col.Trace()
	}
	return r
}

// newCluster builds the simulated cluster for one fit attempt and attaches
// the run's interrupt handle, so every engine layered on the cluster (mapred
// jobs, rdd actions, the baselines' round loops) polls the same context and
// stall watchdog the guarded EM/sketch loops do.
func (c Config) newCluster(intr *cluster.Interrupt) (*cluster.Cluster, error) {
	cl, err := cluster.New(c.Cluster.build(c.Algorithm))
	if err != nil {
		return nil, err
	}
	cl.SetInterrupt(intr)
	return cl, nil
}

// mapredEngine builds the Hadoop-like engine for a fit, arming fault
// injection when the config carries a plan.
func (c Config) mapredEngine(cl *cluster.Cluster) *mapred.Engine {
	eng := mapred.NewEngine(cl)
	eng.Faults = c.Faults
	if c.MaxAttempts > 0 {
		eng.MaxAttempts = c.MaxAttempts
	}
	return eng
}

// rddContext builds the Spark-like context for a fit, arming fault injection
// when the config carries a plan.
func (c Config) rddContext(cl *cluster.Cluster) *rdd.Context {
	ctx := rdd.NewContext(cl)
	ctx.SetFaultPlan(c.Faults)
	return ctx
}

// sketchRDDContext gives the communication-optimal sketch engine one
// partition per node — the granularity Balcan et al.'s merge protocol
// assumes, and what keeps its shuffle volume at s·k·D instead of scaling
// with the task count.
func (c Config) sketchRDDContext(cl *cluster.Cluster) *rdd.Context {
	ctx := rdd.NewContext(cl).WithPartitions(cl.Config().Nodes)
	ctx.SetFaultPlan(c.Faults)
	return ctx
}

// runWithResume executes one PPCA fit attempt per driver incarnation,
// restarting after injected driver crashes. With checkpointing enabled the
// next incarnation resumes from the latest snapshot (or from scratch when the
// crash predates the first write); the wasted simulated time between the
// snapshot and the crash is charged to the new incarnation's recovery
// metrics. Without checkpointing a driver crash is fatal, as it is for a
// stock Hadoop/Spark driver.
func (c Config) runWithResume(opt ppca.Options, run func(ppca.Options) (*ppca.Result, error)) (*ppca.Result, error) {
	// A deterministic plan crashes at most once per scheduled incarnation,
	// so this bound is never hit by a plan Fit can survive; it only guards
	// against a runaway loop.
	const maxRestarts = 64
	var quarantined int64
	if c.Resume && opt.Checkpoint.Enabled() {
		// Explicit continuation of an earlier aborted run: start attempt 0
		// from the latest valid snapshot. An empty directory (nothing was
		// ever checkpointed) falls back to a fresh run.
		snap, report, lerr := checkpoint.LatestReport(opt.Checkpoint.Dir)
		quarantined += noteQuarantined(opt.Tracer, report)
		switch {
		case lerr == nil:
			opt.Resume = snap
		case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
		default:
			return nil, fmt.Errorf("spca: resuming from checkpoint: %w", lerr)
		}
	}
	for attempt := 0; ; attempt++ {
		opt.Incarnation = attempt
		// Spans from a resumed incarnation land on their own lane so crashed
		// and resumed work stay distinguishable in exported traces.
		opt.Tracer.SetLane(attempt)
		res, err := run(opt)
		err = normalizeInterrupt(err)
		var crash *cluster.DriverCrashError
		if err == nil || !errors.As(err, &crash) {
			if err == nil {
				// Snapshot generations quarantined during resume scans are
				// detected corruptions: they join the data-plane counter,
				// out of band of the simulated clock (exactly like
				// DriverRestarts), so the model and SimSeconds stay
				// bit-identical to an uninterrupted run.
				res.Metrics.CorruptPayloads += quarantined
			}
			return res, err
		}
		if !opt.Checkpoint.Enabled() {
			return nil, err
		}
		if attempt >= maxRestarts {
			return nil, fmt.Errorf("spca: driver crashed %d times, giving up: %w", attempt+1, err)
		}
		opt.Resume = nil
		opt.RecoveredSeconds = crash.SimSeconds // scratch restart wastes the whole incarnation
		snap, report, lerr := checkpoint.LatestReport(opt.Checkpoint.Dir)
		quarantined += noteQuarantined(opt.Tracer, report)
		switch {
		case lerr == nil:
			opt.Resume = snap
			opt.RecoveredSeconds = 0
			if waste := crash.SimSeconds - snap.Metrics.SimSeconds; waste > 0 {
				opt.RecoveredSeconds = waste
			}
		case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
			// Crash before the first snapshot: restart from scratch.
		default:
			return nil, fmt.Errorf("spca: resuming after driver crash: %w", lerr)
		}
	}
}

// normalizeInterrupt gives every interrupt observed by a fit the same shape.
// Interrupts caught inside the guarded iteration loops already arrive as a
// resumable *AbortError; one caught by a setup-phase job or action (mean,
// Frobenius norm, data distribution) unwinds as a plainly wrapped sentinel,
// so it is folded into an *AbortError with zero completed iterations here.
// Non-interrupt errors pass through untouched.
func normalizeInterrupt(err error) error {
	if err == nil || !cluster.IsInterrupt(err) {
		return err
	}
	var ab *cluster.AbortError
	if errors.As(err, &ab) {
		return err
	}
	return &cluster.AbortError{Iter: 0, Cause: err}
}

// noteQuarantined emits one trace event per snapshot generation a resume
// scan quarantined and returns how many there were, so the resume loops can
// fold the count into the final Metrics.
func noteQuarantined(tr *trace.Tracer, report *checkpoint.ScanReport) int64 {
	for _, q := range report.Quarantined {
		var iter int64
		fmt.Sscanf(q.Name, "ckpt-%d.spck", &iter)
		tr.Event("snapshot-quarantined", trace.I("iter", iter), trace.I("bytes", q.Bytes))
	}
	return int64(len(report.Quarantined))
}

// runSketchWithResume is runWithResume for the randomized-sketch family:
// one rsvd fit attempt per driver incarnation, resuming from the latest
// round-granularity snapshot after an injected driver crash.
func (c Config) runSketchWithResume(opt rsvd.Options, run func(rsvd.Options) (*rsvd.Result, error)) (*rsvd.Result, error) {
	const maxRestarts = 64
	var quarantined int64
	if c.Resume && opt.Checkpoint.Enabled() {
		// Explicit continuation of an earlier aborted run (see runWithResume).
		snap, report, lerr := checkpoint.LatestReport(opt.Checkpoint.Dir)
		quarantined += noteQuarantined(opt.Tracer, report)
		switch {
		case lerr == nil:
			opt.Resume = snap
		case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
		default:
			return nil, fmt.Errorf("spca: resuming from checkpoint: %w", lerr)
		}
	}
	for attempt := 0; ; attempt++ {
		opt.Incarnation = attempt
		opt.Tracer.SetLane(attempt)
		res, err := run(opt)
		err = normalizeInterrupt(err)
		var crash *cluster.DriverCrashError
		if err == nil || !errors.As(err, &crash) {
			if err == nil {
				res.Metrics.CorruptPayloads += quarantined
			}
			return res, err
		}
		if !opt.Checkpoint.Enabled() {
			return nil, err
		}
		if attempt >= maxRestarts {
			return nil, fmt.Errorf("spca: driver crashed %d times, giving up: %w", attempt+1, err)
		}
		opt.Resume = nil
		opt.RecoveredSeconds = crash.SimSeconds // scratch restart wastes the whole incarnation
		snap, report, lerr := checkpoint.LatestReport(opt.Checkpoint.Dir)
		quarantined += noteQuarantined(opt.Tracer, report)
		switch {
		case lerr == nil:
			opt.Resume = snap
			opt.RecoveredSeconds = 0
			if waste := crash.SimSeconds - snap.Metrics.SimSeconds; waste > 0 {
				opt.RecoveredSeconds = waste
			}
		case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
			// Crash before the first snapshot: restart from scratch.
		default:
			return nil, fmt.Errorf("spca: resuming after driver crash: %w", lerr)
		}
	}
}

// rsvdOptions maps the user-facing Config onto the sketch-engine options.
func (c Config) rsvdOptions(y *Sparse) rsvd.Options {
	opt := rsvd.DefaultOptions(c.Components)
	opt.Seed = c.Seed
	opt.MaxRounds = c.MaxIter
	if c.Oversample > 0 {
		opt.Oversample = c.Oversample
	}
	if c.PowerIterations != 0 {
		opt.PowerIterations = max(c.PowerIterations, 0)
	}
	if c.TargetAccuracy > 0 {
		opt.TargetAccuracy = c.TargetAccuracy
		opt.IdealError = ppca.IdealError(y, c.Components, c.ppcaBaseOptions())
	}
	opt.Checkpoint = rsvd.CheckpointSpec{Interval: c.Checkpoint.Interval, Dir: c.Checkpoint.Dir, Keep: c.Checkpoint.Keep}
	opt.Faults = c.Faults
	return opt
}

func fromRSVD(alg Algorithm, seed uint64, res *rsvd.Result) *Result {
	out := &Result{
		Model: Model{
			Algorithm:      alg,
			Components:     res.Components,
			Mean:           res.Mean,
			SingularValues: res.Singular,
			Seed:           seed,
			orthonormal:    true,
		},
		Iterations: res.Iterations,
		Metrics:    res.Metrics,
		phases:     res.Phases,
	}
	for _, h := range res.History {
		out.History = append(out.History, IterationStat{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SimSeconds: h.SimSeconds,
		})
	}
	if len(out.History) > 0 {
		out.Err = out.History[len(out.History)-1].Err
	}
	return out
}

func (c Config) ppcaBaseOptions() ppca.Options {
	opt := ppca.DefaultOptions(c.Components)
	opt.MaxIter = c.MaxIter
	opt.Seed = c.Seed
	opt.MeanPropagation = !c.DisableMeanPropagation
	opt.MinimizeIntermediate = !c.DisableMinimizeIntermediate
	opt.EfficientFrobenius = !c.DisableEfficientFrobenius
	opt.StatefulCombiner = !c.DisableStatefulCombiner
	opt.AssociativeSS3 = !c.DisableAssociativeSS3
	opt.SmartGuess = c.SmartGuess
	switch {
	case c.Tol > 0:
		opt.Tol = c.Tol
	case c.Tol < 0:
		opt.Tol = 0
	}
	opt.DivergeWindow = c.DivergeWindow
	opt.Checkpoint = c.Checkpoint
	opt.Faults = c.Faults
	return opt
}

func (c Config) ppcaOptions(y *Sparse) ppca.Options {
	opt := c.ppcaBaseOptions()
	if c.TargetAccuracy > 0 {
		opt.TargetAccuracy = c.TargetAccuracy
		opt.IdealError = ppca.IdealError(y, c.Components, opt)
	}
	return opt
}

func fromPPCA(alg Algorithm, seed uint64, res *ppca.Result) *Result {
	out := &Result{
		Model: Model{
			Algorithm:     alg,
			Components:    res.Components,
			Mean:          res.Mean,
			NoiseVariance: res.SS,
			Seed:          seed,
		},
		Iterations: res.Iterations,
		Metrics:    res.Metrics,
		phases:     res.Phases,
	}
	for _, h := range res.History {
		out.History = append(out.History, IterationStat{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SimSeconds: h.SimSeconds,
			Ridge: h.Ridge, RidgeRetries: h.RidgeRetries, Rollback: h.Rollback,
		})
	}
	if len(out.History) > 0 {
		out.Err = out.History[len(out.History)-1].Err
	}
	return out
}

// MissingResult is the output of FitMissing.
type MissingResult = ppca.MissingResult

// validateDenseInput performs the typed input checks for the dense
// missing-data path: a usable shape and no infinities. NaN is allowed — it is
// the missing-entry marker.
func validateDenseInput(y *Dense) error {
	if y == nil || y.R == 0 || y.C == 0 {
		return ErrEmptyInput
	}
	for i := 0; i < y.R; i++ {
		for _, v := range y.Row(i) {
			if math.IsInf(v, 0) {
				return fmt.Errorf("%w (found %v; NaN marks a missing entry, Inf is rejected)", ErrNonFiniteInput, v)
			}
		}
	}
	return nil
}

// FitMissingConfig runs PPCA EM on a dense matrix whose missing entries are
// marked with NaN — the §2.4 property that PPCA "can be obtained even when
// some data values are missing". It accepts the same Config as Fit and
// applies the same validation and defaulting; algorithm- and cluster-related
// fields are ignored (the missing-data fit is single-machine). See the
// examples/missingdata program.
func FitMissingConfig(y *Dense, cfg Config) (*MissingResult, error) {
	if err := validateDenseInput(y); err != nil {
		return nil, err
	}
	if err := cfg.check(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize(y.C)
	return ppca.FitMissing(y, cfg.ppcaBaseOptions())
}

// FitMissing is the positional-argument form of FitMissingConfig.
//
// Deprecated: use FitMissingConfig, which accepts the full Config.
func FitMissing(y *Dense, components, maxIter int, seed uint64) (*MissingResult, error) {
	return FitMissingConfig(y, Config{Components: components, MaxIter: maxIter, Seed: seed})
}

// FitStreamFileConfig fits PPCA over a disk-resident spmx matrix without
// loading it into memory: every EM pass streams the file row by row, so the
// input may be far larger than RAM. It accepts the same Config as Fit —
// including Observer, CollectTrace, and Checkpoint — and applies the same
// validation and defaulting. Stopping is by tolerance and MaxIter
// (TargetAccuracy needs an in-memory ideal-error solve; use Fit for that).
func FitStreamFileConfig(path string, cfg Config) (*Result, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	src, err := matrix.OpenFileRowSource(path)
	if err != nil {
		return nil, err
	}
	src.SetBadRecordBudget(cfg.BadRecordBudget)
	n, dims := src.Dims()
	if n == 0 || dims == 0 {
		return nil, fmt.Errorf("%w: %s is %d x %d", ErrEmptyInput, path, n, dims)
	}
	cfg = cfg.normalize(dims)
	tr, col := cfg.tracer()
	opt := cfg.ppcaBaseOptions()
	// Passed through so ppca.FitStream reports its "accuracy targets need
	// Fit" error instead of silently ignoring the field.
	opt.TargetAccuracy = cfg.TargetAccuracy
	opt.Tracer = tr
	opt.Interrupt = cluster.NewInterrupt(cfg.Context, cfg.StallTimeout)
	res, err := cfg.runWithResume(opt, func(opt ppca.Options) (*ppca.Result, error) {
		return ppca.FitStream(src, opt)
	})
	if err != nil {
		return nil, err
	}
	out := attachTrace(fromPPCA(LocalPPCA, cfg.Seed, res), col)
	out.SkippedRecords = src.Skipped()
	return out, nil
}

// FitStreamFile is the positional-argument form of FitStreamFileConfig.
//
// Deprecated: use FitStreamFileConfig, which accepts the full Config.
func FitStreamFile(path string, components, maxIter int, seed uint64) (*Result, error) {
	return FitStreamFileConfig(path, Config{Components: components, MaxIter: maxIter, Seed: seed})
}

// MixtureResult is the output of FitMixture.
type MixtureResult = ppca.MixtureResult

// MixtureOptions configures FitMixture.
type MixtureOptions = ppca.MixtureOptions

// DefaultMixtureOptions returns defaults for m local PPCA models of d
// components each.
func DefaultMixtureOptions(m, d int) MixtureOptions { return ppca.DefaultMixtureOptions(m, d) }

// FitMixture fits a mixture of PPCA models (§2.4's second desirable
// property: "multiple PPCA models can be combined as a probabilistic
// mixture for better accuracy and to express complex models").
func FitMixture(y *Dense, opt MixtureOptions) (*MixtureResult, error) {
	return ppca.FitMixture(y, opt)
}

// IdealError computes the reconstruction error of an exact rank-d PCA on a
// sampled subset of y's rows — the baseline for "percentage of ideal
// accuracy" in the paper's figures.
func IdealError(y *Sparse, d int, seed uint64) float64 {
	opt := ppca.DefaultOptions(d)
	if seed != 0 {
		opt.Seed = seed
	}
	return ppca.IdealError(y, d, opt)
}
