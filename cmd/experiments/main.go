// Command experiments regenerates the paper's evaluation tables and figures
// on the simulated cluster. Each experiment prints its table or its figure's
// data series; EXPERIMENTS.md records a full run next to the paper's
// numbers.
//
// Usage:
//
//	experiments -exp all              # every table and figure, full scale
//	experiments -exp table2           # just the running-time table
//	experiments -exp fig7 -profile quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spca/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.IDs(), ", ")+", or all")
		profile = flag.String("profile", "full", "scale profile: full | quick")
		format  = flag.String("format", "text", "output format: text | csv")
		outPath = flag.String("out", "", "write results to this file instead of stdout")
	)
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "full":
		p = experiments.Full
	case "quick":
		p = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown profile %q (want full or quick)\n", *profile)
		os.Exit(1)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if *format == "text" {
		fmt.Fprintf(out, "profile: %s (d=%d, MLlib fails past D=%d)\n\n", p.Name, p.Components, p.FailD)
	}
	if err := (experiments.Runner{Profile: p, Format: *format}).Run(*exp, out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
