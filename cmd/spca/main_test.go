package main

import (
	"path/filepath"
	"testing"

	"spca"
)

func TestLoadInputValidation(t *testing.T) {
	if _, err := loadInput("", "", 0, 0, 0, 1, 0); err == nil {
		t.Fatal("expected error with neither -in nor -dataset")
	}
	if _, err := loadInput("x", "tweets", 10, 10, 0, 1, 0); err == nil {
		t.Fatal("expected error with both -in and -dataset")
	}
	if _, err := loadInput("", "bogus-kind", 10, 10, 0, 1, 0); err == nil {
		t.Fatal("expected error for unknown dataset kind")
	}
	if _, err := loadInput(filepath.Join(t.TempDir(), "missing"), "", 0, 0, 0, 1, 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadInputGenerate(t *testing.T) {
	y, err := loadInput("", "tweets", 50, 30, 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if y.R != 50 || y.C != 30 {
		t.Fatalf("dims %dx%d", y.R, y.C)
	}
}

func TestLoadInputFile(t *testing.T) {
	y := spca.GenerateDataset(spca.DatasetSpec{Kind: spca.Tweets, Rows: 20, Cols: 15, Seed: 3})
	path := filepath.Join(t.TempDir(), "m.spmx")
	if err := spca.SaveSparseFile(path, y, false); err != nil {
		t.Fatal(err)
	}
	got, err := loadInput(path, "", 0, 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != y.NNZ() {
		t.Fatal("file round trip mismatch")
	}
}
