// Command spca runs one of the reproduced PCA algorithms on a matrix file or
// a generated dataset, printing the principal components and the simulated
// cluster metrics.
//
// Usage:
//
//	spca -algo spca-spark -in matrix.spmx -d 50 -out components.dmx
//	spca -algo mahout-pca -dataset tweets -rows 10000 -cols 1000 -d 20
//	spca -list
//
// Input matrices use the spmx text format ("spmx R C NNZ" header followed by
// "row col value" triplets) or the SPMB binary container; components are
// written in the dmx dense text format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"spca"
	"spca/internal/parallel"
)

func main() {
	var (
		algo      = flag.String("algo", string(spca.SPCASpark), "algorithm: spca-spark | spca-mapreduce | mahout-pca | mllib-pca | svd-bidiag | rsvd-mapreduce | rsvd-spark | ppca-local")
		in        = flag.String("in", "", "input matrix file (spmx text or SPMB binary)")
		out       = flag.String("out", "", "write components to this file (dmx text); default: summary only")
		dsKind    = flag.String("dataset", "", "generate a dataset instead of reading one: tweets | biotext | diabetes | images")
		rows      = flag.Int("rows", 10000, "rows for -dataset")
		cols      = flag.Int("cols", 1000, "columns for -dataset")
		rank      = flag.Int("rank", 0, "planted rank for -dataset (0 = family default)")
		d         = flag.Int("d", 50, "number of principal components")
		iters     = flag.Int("iters", 10, "maximum refinement iterations/rounds")
		target    = flag.Float64("target", 0, "stop at this fraction of ideal accuracy, e.g. 0.95 (0 = run to the cap)")
		seed      = flag.Uint64("seed", 42, "random seed")
		nodes     = flag.Int("nodes", 0, "simulated cluster nodes (0 = paper default of 8)")
		driver    = flag.Float64("driver-gb", 0, "simulated driver memory in GB (0 = 32)")
		smart     = flag.Bool("smart-guess", false, "enable sPCA-SG initialization")
		oversamp  = flag.Int("oversample", 0, "extra sketch columns for rsvd-* / mahout-pca (0 = engine default)")
		power     = flag.Int("power", 0, "power iterations for rsvd-* / mahout-pca (0 = engine default, negative = none)")
		listAlg   = flag.Bool("list", false, "list algorithms and exit")
		stream    = flag.Bool("stream", false, "stream the -in file row by row (out-of-core PPCA; ignores -algo/-target)")
		ckptDir   = flag.String("checkpoint-dir", "", "write driver checkpoints to this directory, resume from its latest snapshot, and auto-resume after a crash")
		timeout   = flag.Duration("timeout", 0, "abort the fit after this much wall-clock time (graceful: final checkpoint with -checkpoint-dir, resumable)")
		stallTime = flag.Duration("stall-timeout", 0, "abort if no iteration/phase progress for this long (stall watchdog; dumps a phase summary)")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint every K iterations (with -checkpoint-dir)")
		ckptKeep  = flag.Int("keep-snapshots", 0, "checkpoint generations to retain (0 = default 3, negative = unlimited)")
		maxAtt    = flag.Int("max-attempts", 0, "task attempts per MapReduce phase before the job fails (0 = engine default 4)")
		corrupt   = flag.Float64("corrupt-rate", 0, "inject payload corruption: probability a task's shuffle/cache/broadcast payload arrives corrupt (detected by checksum, recovered by retry)")
		ckptCorr  = flag.Float64("ckpt-corrupt-rate", 0, "inject checkpoint corruption: probability a written snapshot is torn or bit-flipped on disk (recovered from an older generation on resume)")
		badBudget = flag.Int("bad-record-budget", 0, "malformed input records to skip per pass instead of failing (text inputs; 0 = strict)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file of the run (open in Perfetto)")
		saveModel = flag.String("save-model", "", "save the fitted model to this file")
		loadModel = flag.String("load-model", "", "skip fitting; load a model saved with -save-model")
		transform = flag.String("transform", "", "write the input's latent representation (N x d, dmx) to this file")
	)
	flag.Parse()

	if *listAlg {
		fmt.Println("spca-spark      sPCA on the Spark-like engine (Algorithm 5)")
		fmt.Println("spca-mapreduce  sPCA on the Hadoop-like engine (Algorithm 4)")
		fmt.Println("mahout-pca      stochastic SVD baseline on MapReduce")
		fmt.Println("mllib-pca       covariance + eigendecomposition baseline on Spark")
		fmt.Println("svd-bidiag      dense QR + bidiagonal-SVD pipeline on MapReduce (RScaLAPACK-style)")
		fmt.Println("rsvd-mapreduce  distributed randomized SVD (seeded range finder + power iterations) on MapReduce")
		fmt.Println("rsvd-spark      communication-optimal randomized SVD (one sketch per node, driver merge) on Spark")
		fmt.Println("ppca-local      single-machine PPCA reference (Algorithm 1)")
		return
	}

	cfg := spca.Config{
		Algorithm:       spca.Algorithm(*algo),
		Components:      *d,
		MaxIter:         *iters,
		TargetAccuracy:  *target,
		Seed:            *seed,
		SmartGuess:      *smart,
		Oversample:      *oversamp,
		PowerIterations: *power,
		CollectTrace:    *traceOut != "",
		Cluster: spca.ClusterConfig{
			Nodes:          *nodes,
			DriverMemoryGB: *driver,
		},
	}
	cfg.MaxAttempts = *maxAtt
	cfg.BadRecordBudget = *badBudget
	if *ckptDir != "" {
		cfg.Checkpoint = spca.CheckpointSpec{Interval: *ckptEvery, Dir: *ckptDir, Keep: *ckptKeep}
		// A populated checkpoint directory means an earlier run was aborted
		// or killed: continue it. An empty directory starts fresh.
		cfg.Resume = true
	}
	cfg.StallTimeout = *stallTime

	// Cooperative cancellation: ctrl-C / SIGTERM (and -timeout) cancel the
	// fit's context; the driver finishes the current boundary, writes a final
	// checkpoint when -checkpoint-dir is set, and unwinds with a resumable
	// error. A second signal hard-stops the worker pools and exits.
	ctx := context.Background()
	if *timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, *timeout)
		defer cancelT()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx
	go func() {
		<-ctx.Done()
		if errors.Is(ctx.Err(), context.Canceled) {
			fmt.Fprintln(os.Stderr, "spca: interrupted, finishing the current iteration (press ctrl-C again to hard-stop)")
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		var hard atomic.Bool
		hard.Store(true)
		parallel.SetAbort(&hard) // stop in-flight kernels from claiming more work
		fmt.Fprintln(os.Stderr, "spca: second signal, hard stop")
		os.Exit(130)
	}()
	if *corrupt > 0 || *ckptCorr > 0 {
		cfg.Faults = &spca.FaultPlan{
			Seed:                     *seed,
			CorruptionRate:           *corrupt,
			CheckpointCorruptionRate: *ckptCorr,
		}
	}

	if *stream {
		// Out-of-core mode: the matrix is never loaded; every EM pass
		// streams the file. Only load it if a -transform was requested.
		if *in == "" {
			fatal(fmt.Errorf("-stream requires -in <file>"))
		}
		streamCfg := cfg
		streamCfg.Algorithm = ""     // streaming is always local PPCA
		streamCfg.TargetAccuracy = 0 // accuracy targets need an in-memory fit
		res, err := spca.FitStreamFileConfig(*in, streamCfg)
		if err != nil {
			abortExit(err, *ckptDir)
		}
		fmt.Printf("streamed fit: %d x %d components, %d iterations, final error %.6f\n",
			res.Components.R, res.Components.C, res.Iterations, res.Err)
		if res.SkippedRecords > 0 {
			fmt.Printf("skipped %d malformed records per pass (budget %d)\n", res.SkippedRecords, *badBudget)
		}
		writeTrace(res, *traceOut)
		var y *spca.Sparse
		if *transform != "" {
			if y, err = spca.LoadSparseFile(*in); err != nil {
				fatal(err)
			}
		}
		finish(&res.Model, y, *out, *saveModel, *transform)
		return
	}

	y, err := loadInput(*in, *dsKind, *rows, *cols, *rank, *seed, *badBudget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: %d x %d, %d non-zeros (density %.4f)\n", y.R, y.C, y.NNZ(),
		float64(y.NNZ())/(float64(y.R)*float64(y.C)))

	if *loadModel != "" {
		mdl, err := spca.LoadModelFile(*loadModel)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model loaded from %s (%s, %d x %d components)\n",
			*loadModel, mdl.Algorithm, mdl.Components.R, mdl.Components.C)
		finish(mdl, y, *out, *saveModel, *transform)
		return
	}

	res, err := spca.Fit(y, cfg)
	if err != nil {
		abortExit(err, *ckptDir)
	}

	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("components:  %d x %d\n", res.Components.R, res.Components.C)
	fmt.Printf("iterations:  %d\n", res.Iterations)
	fmt.Printf("final error: %.6f\n", res.Err)
	if res.NoiseVariance > 0 {
		fmt.Printf("noise var:   %.6g\n", res.NoiseVariance)
	}
	fmt.Printf("cluster:     %s\n", res.Metrics.String())
	for _, h := range res.History {
		fmt.Printf("  iter %2d: err=%.6f", h.Iter, h.Err)
		if h.Accuracy > 0 {
			fmt.Printf(" accuracy=%.1f%%", h.Accuracy*100)
		}
		fmt.Printf(" t=%.1fs\n", h.SimSeconds)
	}
	if sum := res.Summary(); len(sum) > 0 {
		fmt.Printf("phases:\n")
		for _, p := range sum {
			fmt.Printf("  %-28s x%-5d %9.1fs  shuffle %8.1f MB  disk %8.1f MB\n",
				p.Name, p.Count, p.Seconds,
				float64(p.ShuffleBytes)/1e6, float64(p.DiskBytes)/1e6)
		}
	}
	writeTrace(res, *traceOut)

	finish(&res.Model, y, *out, *saveModel, *transform)
}

// writeTrace exports the collected trace in Chrome trace_event format.
func writeTrace(res *spca.Result, path string) {
	if path == "" || res.Trace == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := spca.WriteChromeTrace(f, res.Trace); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", path)
}

// finish handles the output options shared by the fit and load paths. It
// takes the Model — the projection surface — because that is all saving,
// transforming, or exporting components needs.
func finish(m *spca.Model, y *spca.Sparse, out, saveModel, transform string) {
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := spca.WriteDense(f, m.Components); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("components written to %s\n", out)
	}
	if saveModel != "" {
		if err := m.SaveFile(saveModel); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", saveModel)
	}
	if transform != "" {
		x, err := m.Transform(y)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(transform)
		if err != nil {
			fatal(err)
		}
		if err := spca.WriteDense(f, x); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("latent representation (%d x %d) written to %s\n", x.R, x.C, transform)
	}
}

func loadInput(in, dsKind string, rows, cols, rank int, seed uint64, badBudget int) (*spca.Sparse, error) {
	switch {
	case in != "" && dsKind != "":
		return nil, fmt.Errorf("use either -in or -dataset, not both")
	case in != "":
		m, skipped, err := spca.LoadSparseFileBudget(in, badBudget)
		if skipped > 0 {
			fmt.Printf("skipped %d malformed records in %s (budget %d)\n", skipped, in, badBudget)
		}
		return m, err
	case dsKind != "":
		return spca.NewDataset(spca.DatasetSpec{
			Kind: spca.DatasetKind(dsKind), Rows: rows, Cols: cols, Rank: rank, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("provide -in <file> or -dataset <kind> (see -h)")
	}
}

// abortExit reports a fit error and exits. Cooperative aborts get their
// diagnostics, a resume hint when a checkpoint landed, and conventional exit
// codes: 124 for a deadline (timeout(1)'s code), 125 for a stall-watchdog
// abort, 130 for SIGINT-style cancellation. Everything else is a plain fatal.
func abortExit(err error, ckptDir string) {
	var ab *spca.AbortError
	if !errors.As(err, &ab) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "spca:", err)
	if ab.Diagnostic != "" {
		fmt.Fprintln(os.Stderr, ab.Diagnostic)
	}
	if ab.Checkpointed && ckptDir != "" {
		// ab.Iter counts completed iterations; the newest snapshot covers it
		// or — after a mid-iteration abort — an earlier boundary, so point at
		// the directory rather than naming an iteration.
		fmt.Fprintf(os.Stderr, "resume with -checkpoint-dir %s (aborted after iteration %d, snapshot on disk)\n", ckptDir, ab.Iter)
	}
	switch {
	case errors.Is(err, spca.ErrDeadlineExceeded):
		os.Exit(124)
	case errors.Is(err, spca.ErrStalled):
		os.Exit(125)
	default:
		os.Exit(130)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spca:", err)
	os.Exit(1)
}
