// Command datagen generates synthetic datasets with the statistical skeleton
// of the paper's four evaluation datasets and writes them to disk.
//
// Usage:
//
//	datagen -kind tweets -rows 100000 -cols 5000 -out tweets.spmx
//	datagen -kind diabetes -rows 353 -cols 65669 -binary -out diabetes.spmb
package main

import (
	"flag"
	"fmt"
	"os"

	"spca"
)

func main() {
	var (
		kind   = flag.String("kind", "tweets", "dataset family: tweets | biotext | diabetes | images")
		rows   = flag.Int("rows", 10000, "number of rows")
		cols   = flag.Int("cols", 1000, "number of columns")
		rank   = flag.Int("rank", 0, "planted rank (0 = family default)")
		seed   = flag.Uint64("seed", 42, "random seed")
		out    = flag.String("out", "", "output file (required)")
		binary = flag.Bool("binary", false, "write the compact SPMB binary container instead of spmx text")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(1)
	}
	y, err := spca.NewDataset(spca.DatasetSpec{
		Kind: spca.DatasetKind(*kind), Rows: *rows, Cols: *cols, Rank: *rank, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := spca.SaveSparseFile(*out, y, *binary); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d x %d, %d non-zeros (density %.5f)\n",
		*out, y.R, y.C, y.NNZ(), float64(y.NNZ())/(float64(y.R)*float64(y.C)))
}
