package main

// Compare mode: `benchjson -compare old.json new.json` diffs two committed
// benchmark baselines and exits non-zero on regressions, so `make check` can
// gate on the benchmark history without re-running the benchmarks.
//
// Rules: a common benchmark regresses if its ns/op grew by more than -ns-tol
// (default 10%, wall-clock is noisy) or its allocs/op increased at all
// (allocation counts are deterministic, so any increase is a real change).
// Benchmarks present in only one file are reported but never fail the gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// procSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so baselines recorded on machines with different core counts still
// line up.
var procSuffix = regexp.MustCompile(`-\d+$`)

func benchKey(b Benchmark) string {
	return b.Pkg + " " + procSuffix.ReplaceAllString(b.Name, "")
}

func loadDoc(path string) (Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var d Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return Document{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return Document{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

// compareDocs writes a regression report to w and returns the number of
// regressions found among benchmarks common to both documents.
func compareDocs(oldDoc, newDoc Document, nsTol float64, w io.Writer) int {
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	var regressions, compared int
	var newOnly []string
	for _, nb := range newDoc.Benchmarks {
		key := benchKey(nb)
		ob, ok := oldBy[key]
		if !ok {
			newOnly = append(newOnly, key)
			continue
		}
		delete(oldBy, key)
		compared++
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+nsTol) {
			regressions++
			fmt.Fprintf(w, "REGRESSION %s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)\n",
				key, ob.NsPerOp, nb.NsPerOp, 100*(nb.NsPerOp/ob.NsPerOp-1), 100*nsTol)
		}
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil && *nb.AllocsPerOp > *ob.AllocsPerOp {
			regressions++
			fmt.Fprintf(w, "REGRESSION %s: allocs/op %.0f -> %.0f (any increase flagged)\n",
				key, *ob.AllocsPerOp, *nb.AllocsPerOp)
		}
	}
	var oldOnly []string
	for key := range oldBy {
		oldOnly = append(oldOnly, key)
	}
	sort.Strings(oldOnly)
	for _, key := range oldOnly {
		fmt.Fprintf(w, "note: %s only in old baseline\n", key)
	}
	sort.Strings(newOnly)
	for _, key := range newOnly {
		fmt.Fprintf(w, "note: %s only in new baseline\n", key)
	}
	fmt.Fprintf(w, "benchjson: compared %d common benchmarks (%d only-old, %d only-new): %d regression(s)\n",
		compared, len(oldOnly), len(newOnly), regressions)
	return regressions
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(oldPath, newPath string, nsTol float64, w io.Writer) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if compareDocs(oldDoc, newDoc, nsTol, w) > 0 {
		return 1
	}
	return 0
}
