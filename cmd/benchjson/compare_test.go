package main

import (
	"bytes"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func bench(pkg, name string, ns float64, allocs *float64) Benchmark {
	return Benchmark{Name: name, Pkg: pkg, Iterations: 10, NsPerOp: ns, AllocsPerOp: allocs}
}

func doc(bs ...Benchmark) Document { return Document{Benchmarks: bs} }

func TestCompareFlagsNsRegression(t *testing.T) {
	oldDoc := doc(bench("p", "BenchmarkA", 1000, nil))
	newDoc := doc(bench("p", "BenchmarkA", 1200, nil))
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION p BenchmarkA: ns/op 1000 -> 1200") {
		t.Errorf("missing ns regression line:\n%s", buf.String())
	}
}

func TestCompareToleratesNsWithinTolerance(t *testing.T) {
	oldDoc := doc(bench("p", "BenchmarkA", 1000, nil))
	newDoc := doc(bench("p", "BenchmarkA", 1099, nil))
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", got, buf.String())
	}
}

func TestCompareFlagsAnyAllocIncrease(t *testing.T) {
	// allocs/op is deterministic, so even +1 alloc is a regression — and an
	// alloc increase is flagged independently of a (tolerated) ns change.
	oldDoc := doc(bench("p", "BenchmarkA", 1000, fp(0)))
	newDoc := doc(bench("p", "BenchmarkA", 1005, fp(1)))
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "allocs/op 0 -> 1") {
		t.Errorf("missing alloc regression line:\n%s", buf.String())
	}
}

func TestCompareAllocDecreaseAndNsImprovementPass(t *testing.T) {
	oldDoc := doc(
		bench("p", "BenchmarkA", 1000, fp(50)),
		bench("p", "BenchmarkB", 2000, fp(8)),
	)
	newDoc := doc(
		bench("p", "BenchmarkA", 400, fp(3)),
		bench("p", "BenchmarkB", 2100, fp(8)),
	)
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", got, buf.String())
	}
}

func TestCompareSkipsNonCommonBenchmarks(t *testing.T) {
	// A benchmark only present in one file is informational, never a failure
	// — new baselines grow benchmarks and that must not break the gate.
	oldDoc := doc(bench("p", "BenchmarkGone", 1, nil), bench("p", "BenchmarkA", 100, nil))
	newDoc := doc(bench("p", "BenchmarkA", 100, nil), bench("p", "BenchmarkNew", 1e9, fp(1e6)))
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", got, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "p BenchmarkGone only in old") || !strings.Contains(out, "p BenchmarkNew only in new") {
		t.Errorf("missing only-in notes:\n%s", out)
	}
	if !strings.Contains(out, "compared 1 common benchmarks (1 only-old, 1 only-new): 0 regression(s)") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestCompareNormalizesProcSuffix(t *testing.T) {
	// The -GOMAXPROCS suffix varies across machines; names must still match.
	oldDoc := doc(bench("p", "BenchmarkA-8", 1000, nil))
	newDoc := doc(bench("p", "BenchmarkA-32", 5000, nil))
	var buf bytes.Buffer
	if got := compareDocs(oldDoc, newDoc, 0.10, &buf); got != 1 {
		t.Fatalf("regressions = %d, want 1 (suffix-normalized match)\n%s", got, buf.String())
	}
}

func TestCompareFixturesClean(t *testing.T) {
	// The committed fixtures are the `make check` smoke gate: old -> new is
	// an improvement plus one added benchmark, so the compare must pass.
	var buf bytes.Buffer
	if code := runCompare("testdata/old.json", "testdata/new.json", 0.10, &buf); code != 0 {
		t.Fatalf("runCompare(fixtures) = %d, want 0\n%s", code, buf.String())
	}
}

func TestCompareFixtureRegression(t *testing.T) {
	var buf bytes.Buffer
	if code := runCompare("testdata/old.json", "testdata/regressed.json", 0.10, &buf); code != 1 {
		t.Fatalf("runCompare(regressed fixture) = %d, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "ns/op") || !strings.Contains(out, "allocs/op") {
		t.Errorf("expected both ns and alloc regressions:\n%s", out)
	}
}

func TestCompareBadFile(t *testing.T) {
	var buf bytes.Buffer
	if code := runCompare("testdata/old.json", "testdata/nope.json", 0.10, &buf); code != 2 {
		t.Fatalf("runCompare(missing file) = %d, want 2", code)
	}
}
