// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a machine-readable JSON document, so benchmark baselines can be committed
// (BENCH_*.json) and diffed across changes:
//
//	go test ./... -run '^$' -bench . -benchmem | go run ./cmd/benchjson -out BENCH_3.json
//
// Standard per-op metrics (ns/op, B/op, allocs/op) get dedicated fields; any
// extra `value unit` pairs a benchmark reports land in the "extra" map.
//
// With -compare, the tool instead diffs two previously written files:
//
//	go run ./cmd/benchjson -compare BENCH_7.json BENCH_8.json
//
// and exits 1 if any common benchmark got >10% slower (tunable via -ns-tol)
// or allocates more per op (any increase).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	GeneratedAt string      `json:"generated_at"`
	GoOS        string      `json:"goos,omitempty"`
	GoArch      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two baseline files (old.json new.json); exit 1 on regression")
	nsTol := flag.Float64("ns-tol", 0.10, "fractional ns/op growth tolerated by -compare")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two arguments: old.json new.json")
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *nsTol, os.Stdout))
	}

	doc := Document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fatalf("no benchmark result lines found on stdin (did the bench run fail?)")
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseBenchLine parses a result line of the form
//
//	BenchmarkName-8  	 1000	 1234 ns/op	 56 B/op	 7 allocs/op	 3.2 extra/metric
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		v := val
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, sawNs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
