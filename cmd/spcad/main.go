// Command spcad is the model-serving daemon: it hosts a versioned registry
// of fitted PCA models and serves transform / reconstruct / explained-
// variance requests over HTTP/JSON and a compact length-prefixed binary
// protocol (see internal/serve for both wire formats).
//
// The registry directory persists every published model in the checksummed
// exact-float model format, so restarting the daemon reloads the same
// models bit for bit. An empty registry can be seeded three ways: import an
// existing model file (-model), fit a matrix file (-in), or fit a generated
// dataset (-dataset). With -refit-every, the daemon re-fits the data source
// in the background on a fresh seed and atomically publishes each new
// generation; in-flight requests keep the version they resolved, new
// requests see the new one.
//
// Usage:
//
//	spcad -dir models/ -in matrix.spmx -d 20 -http :8080 -bin :8081
//	spcad -dir models/ -model fitted.spcm
//	spcad -dir models/ -dataset tweets -rows 5000 -cols 500 -refit-every 10m
//
// SIGINT/SIGTERM drain gracefully: listeners stop accepting, queued
// requests complete, a running background re-fit is cancelled through the
// fit's cooperative-interrupt machinery, and the daemon exits 0. A second
// signal hard-stops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"spca"
	"spca/internal/parallel"
	"spca/internal/serve"
)

func main() {
	var (
		dir        = flag.String("dir", "", "registry directory (required; created if missing)")
		httpAddr   = flag.String("http", ":8080", "HTTP/JSON listen address (empty = disabled)")
		binAddr    = flag.String("bin", "", "binary-protocol listen address (empty = disabled)")
		modelFile  = flag.String("model", "", "seed the registry by importing this model file")
		in         = flag.String("in", "", "fit this matrix file (spmx text or SPMB binary) to seed/refresh the registry")
		dsKind     = flag.String("dataset", "", "fit a generated dataset instead of a file: tweets | biotext | diabetes | images")
		rows       = flag.Int("rows", 10000, "rows for -dataset")
		cols       = flag.Int("cols", 1000, "columns for -dataset")
		rank       = flag.Int("rank", 0, "planted rank for -dataset (0 = family default)")
		algo       = flag.String("algo", string(spca.LocalPPCA), "fit algorithm (see spca -list)")
		d          = flag.Int("d", 50, "number of principal components for fits")
		iters      = flag.Int("iters", 10, "maximum fit iterations")
		seed       = flag.Uint64("seed", 42, "base random seed; re-fits add the generation number")
		refitEvery = flag.Duration("refit-every", 0, "re-fit the data source in the background at this interval and publish the result (0 = never)")
		drainWait  = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	)
	flag.Parse()

	if *dir == "" {
		fatal(fmt.Errorf("spcad: -dir is required"))
	}
	reg, err := serve.NewRegistry(*dir)
	if err != nil {
		fatal(err)
	}
	if n := len(reg.List()); n > 0 {
		live := reg.Latest()
		fmt.Printf("spcad: loaded %d model(s) from %s, serving v%d (%s)\n",
			n, *dir, live.Version, live.Model.Algorithm)
	}

	// Daemon-wide cancellation: SIGINT/SIGTERM begin the drain; a second
	// signal hard-stops worker pools and exits — the same two-stage pattern
	// the fit CLI uses.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		var hard atomic.Bool
		hard.Store(true)
		parallel.SetAbort(&hard)
		fmt.Fprintln(os.Stderr, "spcad: second signal, hard stop")
		os.Exit(130)
	}()

	// Seed the registry. -model imports as-is; -in/-dataset fit now (and
	// later, with -refit-every). An already-populated registry skips the
	// initial fit unless data was explicitly given.
	fitCfg := spca.Config{
		Algorithm:  spca.Algorithm(*algo),
		Components: *d,
		MaxIter:    *iters,
		Context:    ctx,
	}
	loadData := func() (*spca.Sparse, error) {
		switch {
		case *in != "" && *dsKind != "":
			return nil, fmt.Errorf("spcad: use either -in or -dataset, not both")
		case *in != "":
			return spca.LoadSparseFile(*in)
		case *dsKind != "":
			return spca.NewDataset(spca.DatasetSpec{
				Kind: spca.DatasetKind(*dsKind), Rows: *rows, Cols: *cols, Rank: *rank, Seed: *seed,
			})
		default:
			return nil, nil
		}
	}
	y, err := loadData()
	if err != nil {
		fatal(err)
	}

	switch {
	case *modelFile != "":
		m, err := spca.LoadModelFile(*modelFile)
		if err != nil {
			fatal(err)
		}
		e, err := reg.Publish(m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spcad: imported %s as v%d\n", *modelFile, e.Version)
	case y != nil:
		e, err := fitAndPublish(reg, y, fitCfg, *seed, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spcad: fitted %s (%d x %d) as v%d\n", fitCfg.Algorithm, y.R, y.C, e.Version)
	}
	if reg.Latest() == nil {
		fatal(fmt.Errorf("spcad: registry is empty; seed it with -model, -in, or -dataset"))
	}

	srv := serve.NewServer(reg, nil)

	// Background re-fit loop: every interval, fit on a perturbed seed and
	// atomically publish. The fit threads the daemon context through the
	// cooperative-interrupt machinery, so a drain cancels it at the next
	// iteration boundary instead of blocking shutdown.
	if *refitEvery > 0 {
		if y == nil {
			fatal(fmt.Errorf("spcad: -refit-every needs a data source (-in or -dataset)"))
		}
		go func() {
			tick := time.NewTicker(*refitEvery)
			defer tick.Stop()
			for gen := uint64(1); ; gen++ {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				e, err := fitAndPublish(reg, y, fitCfg, *seed, gen)
				if err != nil {
					if errors.As(err, new(*spca.AbortError)) || ctx.Err() != nil {
						return // drain cancelled the fit
					}
					fmt.Fprintf(os.Stderr, "spcad: background re-fit failed: %v\n", err)
					continue
				}
				fmt.Printf("spcad: published re-fit v%d (seed %d)\n", e.Version, *seed+gen)
			}
		}()
	}

	// Listeners. Both protocols run until the context cancels.
	var httpSrv *http.Server
	errCh := make(chan error, 2)
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
		fmt.Printf("spcad: HTTP/JSON on %s\n", *httpAddr)
	}
	var binLn net.Listener
	if *binAddr != "" {
		binLn, err = net.Listen("tcp", *binAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := srv.ServeBinary(binLn); err != nil {
				errCh <- err
			}
		}()
		fmt.Printf("spcad: binary protocol on %s\n", binLn.Addr())
	}

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "spcad: draining (press ctrl-C again to hard-stop)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if httpSrv != nil {
		httpSrv.Shutdown(drainCtx)
	}
	if binLn != nil {
		binLn.Close()
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "spcad: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "spcad: drained cleanly")
}

// fitAndPublish runs one fit and publishes the resulting model. Generation
// numbers perturb the seed so every re-fit is a fresh, reproducible draw.
func fitAndPublish(reg *serve.Registry, y *spca.Sparse, cfg spca.Config, seed, gen uint64) (*serve.Entry, error) {
	cfg.Seed = seed + gen
	res, err := spca.Fit(y, cfg)
	if err != nil {
		return nil, err
	}
	return reg.Publish(&res.Model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
