package spca

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spca/internal/matrix"
)

// Model persistence: a fitted PCA model (components, mean, noise variance)
// saved as a small self-describing text file, so a model trained once can
// be reused for Transform/Reconstruct without re-fitting. The format is
//
//	spcamodel 1
//	algorithm <name>
//	orthonormal <bool>
//	noise <float>
//	mean <D space-separated floats>
//	components            (followed by a dmx dense matrix)
//	dmx D d
//	...

const modelMagic = "spcamodel 1"

// SaveModel writes the fitted model to w.
func (r *Result) SaveModel(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, modelMagic)
	fmt.Fprintf(bw, "algorithm %s\n", r.Algorithm)
	fmt.Fprintf(bw, "orthonormal %v\n", r.orthonormal)
	fmt.Fprintf(bw, "noise %s\n", strconv.FormatFloat(r.NoiseVariance, 'g', -1, 64))
	fmt.Fprint(bw, "mean")
	for _, v := range r.Mean {
		fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64))
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "components")
	if err := bw.Flush(); err != nil {
		return err
	}
	return matrix.WriteDense(w, r.Components)
}

// SaveModelFile writes the fitted model to path.
func (r *Result) SaveModelFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.SaveModel(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModel reads a model previously written with SaveModel. The returned
// Result supports Transform, Reconstruct and ExplainedVariance; its History
// and Metrics are empty (they belong to the fitting run, not the model).
func LoadModel(r io.Reader) (*Result, error) {
	br := bufio.NewReader(r)
	line := func() (string, error) {
		s, err := br.ReadString('\n')
		if err != nil && s == "" {
			return "", err
		}
		return strings.TrimRight(s, "\n"), nil
	}
	header, err := line()
	if err != nil || header != modelMagic {
		return nil, fmt.Errorf("spca: not a model file (header %q)", header)
	}
	res := &Result{}
	for {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("spca: truncated model: %w", err)
		}
		switch {
		case strings.HasPrefix(l, "algorithm "):
			res.Algorithm = Algorithm(strings.TrimPrefix(l, "algorithm "))
		case strings.HasPrefix(l, "orthonormal "):
			res.orthonormal = strings.TrimPrefix(l, "orthonormal ") == "true"
		case strings.HasPrefix(l, "noise "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(l, "noise "), 64)
			if err != nil {
				return nil, fmt.Errorf("spca: bad noise line: %w", err)
			}
			res.NoiseVariance = v
		case strings.HasPrefix(l, "mean"):
			fields := strings.Fields(strings.TrimPrefix(l, "mean"))
			res.Mean = make([]float64, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("spca: bad mean entry: %w", err)
				}
				res.Mean[i] = v
			}
		case l == "components":
			comps, err := matrix.ReadDense(br)
			if err != nil {
				return nil, fmt.Errorf("spca: bad components: %w", err)
			}
			res.Components = comps
			if len(res.Mean) != comps.R {
				return nil, fmt.Errorf("spca: model mean length %d != components rows %d",
					len(res.Mean), comps.R)
			}
			return res, nil
		default:
			return nil, fmt.Errorf("spca: unexpected model line %q", l)
		}
	}
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
