package spca

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"spca/internal/checkpoint"
	"spca/internal/matrix"
)

// ErrDimMismatch is the typed sentinel under every projection-shape error:
// Transform/Reconstruct/ExplainedVariance inputs whose dimensions do not
// match the model's. Matchable with errors.Is.
var ErrDimMismatch = errors.New("spca: input dimensions do not match the model")

// Model is a fitted PCA model — the projection surface every consumer
// (Result, the model files, the serving registry, spcad) shares. It holds
// exactly the state projection needs: the principal directions, the
// centering mean, PPCA's noise variance, the spectrum when the algorithm
// computed one, and the seed the fit ran with (so a background re-fit can
// reproduce or perturb the original draw).
//
// A Model is immutable once in use: Transform caches the projection operator
// on first call, and concurrent Transforms after that are safe and
// allocation-free (the serving layer depends on both properties). Mutate the
// exported fields only before the first projection.
type Model struct {
	// Algorithm that produced this model.
	Algorithm Algorithm
	// Components holds the d principal directions as columns (D x d).
	Components *Dense
	// Mean is the column-mean vector the model centers with (length D).
	Mean []float64
	// NoiseVariance is PPCA's fitted ss (zero for the baselines). It selects
	// the projection: zero (or an orthonormal basis) projects orthogonally,
	// non-zero applies the PPCA posterior map C·(CᵀC + ss·I)⁻¹.
	NoiseVariance float64
	// SingularValues holds the estimated singular values of the centered
	// data for the SVD-flavoured algorithms (RSVD family, MahoutPCA); nil
	// for the EM family, which does not compute a spectrum.
	SingularValues []float64
	// Seed is the RNG seed of the fit that produced the model (zero for
	// models loaded from version-1 files, which predate the field).
	Seed uint64

	orthonormal bool // baselines produce orthonormal components

	// proj caches the projection operator (and the mean's image under it)
	// after the first Transform. Computed at most once per distinct winner of
	// the CAS; losers discard their copy, so every reader sees one coherent
	// pair and steady-state projection allocates nothing.
	proj atomic.Pointer[projection]
}

// projection is the cached linear map a Transform applies: p is C for
// orthogonal models or C·M⁻¹ for PPCA posterior-mean models, and meanP is
// meanᵀ·p, the row subtracted to center via mean propagation.
type projection struct {
	p     *Dense
	meanP []float64
}

// Dims returns the model's data dimensionality D and latent rank d.
func (m *Model) Dims() (dims, d int) { return m.Components.R, m.Components.C }

// projection returns the cached projection operator, computing it on first
// use. The computation replicates ppca's latentMap operations exactly, so
// projecting through the cache is bit-identical to the historical
// Result.Transform path.
func (m *Model) projection() (*projection, error) {
	if pr := m.proj.Load(); pr != nil {
		return pr, nil
	}
	p := m.Components
	if !m.orthonormal && m.NoiseVariance != 0 {
		mm := m.Components.MulT(m.Components).AddScaledIdentity(m.NoiseVariance)
		minv, err := matrix.Inverse(mm)
		if err != nil {
			return nil, fmt.Errorf("spca: M = CᵀC+ss·I singular: %w", err)
		}
		p = m.Components.Mul(minv)
	}
	pr := &projection{p: p, meanP: matrix.MeanMulInto(m.Mean, p, make([]float64, p.C))}
	m.proj.CompareAndSwap(nil, pr)
	return m.proj.Load(), nil
}

// Transform projects rows of y onto the fitted components. For PPCA-family
// models this is the posterior-mean latent position; for the baselines it is
// the orthogonal projection (Y - mean) * C. It allocates the output and
// delegates to TransformInto.
func (m *Model) Transform(y *Sparse) (*Dense, error) {
	if y.C != m.Components.R {
		return nil, fmt.Errorf("%w: Transform input has %d columns, model expects %d", ErrDimMismatch, y.C, m.Components.R)
	}
	return m.transformInto(matrix.NewDense(y.R, m.Components.C), y)
}

// TransformInto projects rows of y into dst (dims y.R x d), overwriting it.
// After the first call on a model the projection operator is cached and the
// call performs no allocation — the form the serving hot path batches into.
func (m *Model) TransformInto(dst *Dense, y *Sparse) (*Dense, error) {
	if y.C != m.Components.R {
		return nil, fmt.Errorf("%w: Transform input has %d columns, model expects %d", ErrDimMismatch, y.C, m.Components.R)
	}
	if dst.R != y.R || dst.C != m.Components.C {
		return nil, fmt.Errorf("%w: Transform dst is %dx%d, want %dx%d", ErrDimMismatch, dst.R, dst.C, y.R, m.Components.C)
	}
	return m.transformInto(dst, y)
}

func (m *Model) transformInto(dst *Dense, y *Sparse) (*Dense, error) {
	pr, err := m.projection()
	if err != nil {
		return nil, err
	}
	return y.CenteredMulDenseInto(pr.p, dst, pr.meanP), nil
}

// TransformDense is Transform for a dense input matrix.
func (m *Model) TransformDense(y *Dense) (*Dense, error) {
	if y.C != m.Components.R {
		return nil, fmt.Errorf("%w: Transform input has %d columns, model expects %d", ErrDimMismatch, y.C, m.Components.R)
	}
	return m.TransformDenseInto(matrix.NewDense(y.R, m.Components.C), y)
}

// TransformDenseInto is TransformInto for a dense input matrix: one MulInto
// plus a demeaning pass, allocation-free after the projection cache warms.
// The serving batcher coalesces whole micro-batches into single calls here.
func (m *Model) TransformDenseInto(dst, y *Dense) (*Dense, error) {
	if y.C != m.Components.R {
		return nil, fmt.Errorf("%w: Transform input has %d columns, model expects %d", ErrDimMismatch, y.C, m.Components.R)
	}
	if dst.R != y.R || dst.C != m.Components.C {
		return nil, fmt.Errorf("%w: Transform dst is %dx%d, want %dx%d", ErrDimMismatch, dst.R, dst.C, y.R, m.Components.C)
	}
	pr, err := m.projection()
	if err != nil {
		return nil, err
	}
	return y.CenteredMulInto(pr.p, dst, pr.meanP), nil
}

// Reconstruct maps latent positions back to data space: X*Cᵀ + mean. It
// allocates the output and delegates to ReconstructInto.
func (m *Model) Reconstruct(x *Dense) (*Dense, error) {
	if x.C != m.Components.C {
		return nil, fmt.Errorf("%w: Reconstruct input has %d columns, model has %d components", ErrDimMismatch, x.C, m.Components.C)
	}
	return m.ReconstructInto(matrix.NewDense(x.R, m.Components.R), x)
}

// ReconstructInto maps latent positions back to data space into dst (dims
// x.R x D), overwriting it. Allocation-free.
func (m *Model) ReconstructInto(dst, x *Dense) (*Dense, error) {
	if x.C != m.Components.C {
		return nil, fmt.Errorf("%w: Reconstruct input has %d columns, model has %d components", ErrDimMismatch, x.C, m.Components.C)
	}
	if dst.R != x.R || dst.C != m.Components.R {
		return nil, fmt.Errorf("%w: Reconstruct dst is %dx%d, want %dx%d", ErrDimMismatch, dst.R, dst.C, x.R, m.Components.R)
	}
	return x.MulBTAddRowInto(m.Components, dst, m.Mean), nil
}

// ExplainedVariance returns, for each component, the fraction of the total
// centered variance of y that projecting onto the fitted components
// explains (cumulative over components, ending at the fraction the whole
// rank-d model captures).
func (m *Model) ExplainedVariance(y *Sparse) ([]float64, error) {
	if y.C != m.Components.R {
		return nil, fmt.Errorf("%w: ExplainedVariance input has %d columns, model expects %d", ErrDimMismatch, y.C, m.Components.R)
	}
	total := y.CenteredFrobeniusSq(m.Mean)
	if total == 0 {
		return make([]float64, m.Components.C), nil
	}
	// Orthonormalize so per-component energies are well defined.
	q := m.Components.Clone()
	matrix.GramSchmidt(q)
	// Energy along component k: ‖Yc·q_k‖².
	out := make([]float64, q.C)
	proj := y.CenteredMulDense(m.Mean, q)
	var cum float64
	for k := 0; k < q.C; k++ {
		var e float64
		for i := 0; i < proj.R; i++ {
			v := proj.At(i, k)
			e += v * v
		}
		cum += e / total
		out[k] = cum
	}
	return out, nil
}

// Model persistence: a fitted model saved as a small self-describing text
// file, so a model trained once can be served or reused without re-fitting.
// Version 2 follows the internal/checkpoint snapshot discipline — every
// float rendered with strconv.FormatFloat(v, 'g', -1, 64), which round-trips
// every float64 exactly, and an FNV-64a "checksum" trailer verified before
// any field is parsed — so Save/LoadModel round-trips are bit-identical and
// a torn write or flipped bit is detected up front. The format is
//
//	spcamodel 2
//	algorithm <name>
//	orthonormal <bool>
//	seed <uint64>
//	noise <float>
//	mean <D space-separated floats>
//	singular <floats>     (only when the model has a spectrum)
//	components            (followed by a dmx dense matrix)
//	dmx D d
//	...
//	checksum <16 hex digits>
//
// Version-1 files (no seed, no singular section, no trailer) remain
// readable.
const (
	modelMagic   = "spcamodel"
	modelVersion = 2
)

// Save writes the model to w. The output is byte-deterministic for equal
// models, the property the registry's golden fingerprints pin.
func (m *Model) Save(w io.Writer) error {
	tw := checkpoint.NewTrailerWriter(w)
	bw := bufio.NewWriter(tw)
	fmt.Fprintf(bw, "%s %d\n", modelMagic, modelVersion)
	fmt.Fprintf(bw, "algorithm %s\n", m.Algorithm)
	fmt.Fprintf(bw, "orthonormal %v\n", m.orthonormal)
	fmt.Fprintf(bw, "seed %d\n", m.Seed)
	fmt.Fprintf(bw, "noise %s\n", strconv.FormatFloat(m.NoiseVariance, 'g', -1, 64))
	fmt.Fprint(bw, "mean")
	for _, v := range m.Mean {
		fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64))
	}
	fmt.Fprintln(bw)
	if len(m.SingularValues) > 0 {
		fmt.Fprint(bw, "singular")
		for _, v := range m.SingularValues {
			fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "components")
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := matrix.WriteDense(tw, m.Components); err != nil {
		return err
	}
	return tw.WriteTrailer()
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// SaveModel writes the fitted model to w.
//
// Deprecated: use Model.Save (promoted through Result).
func (m *Model) SaveModel(w io.Writer) error { return m.Save(w) }

// SaveModelFile writes the fitted model to path.
//
// Deprecated: use Model.SaveFile (promoted through Result).
func (m *Model) SaveModelFile(path string) error { return m.SaveFile(path) }

// LoadModel reads a model previously written with Save. The returned Model
// supports Transform, Reconstruct and ExplainedVariance; fit history and
// metrics belong to the fitting run's Result, not the model.
func LoadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spca: reading model: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("spca: not a model file (no header)")
	}
	var ver int
	if _, err := fmt.Sscanf(string(data[:nl]), modelMagic+" %d", &ver); err != nil {
		return nil, fmt.Errorf("spca: not a model file (header %q)", string(data[:nl]))
	}
	if ver < 1 || ver > modelVersion {
		return nil, fmt.Errorf("spca: unsupported model version %d (have %d)", ver, modelVersion)
	}
	body := data
	if ver >= 2 {
		if body, err = checkpoint.VerifyTrailer(data); err != nil {
			return nil, fmt.Errorf("spca: corrupt model file: %w", err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(body))
	line := func() (string, error) {
		s, err := br.ReadString('\n')
		if err != nil && s == "" {
			return "", err
		}
		return strings.TrimRight(s, "\n"), nil
	}
	if _, err := line(); err != nil { // header, already parsed
		return nil, fmt.Errorf("spca: truncated model: %w", err)
	}
	m := &Model{}
	for {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("spca: truncated model: %w", err)
		}
		switch {
		case strings.HasPrefix(l, "algorithm "):
			m.Algorithm = Algorithm(strings.TrimPrefix(l, "algorithm "))
		case strings.HasPrefix(l, "orthonormal "):
			m.orthonormal = strings.TrimPrefix(l, "orthonormal ") == "true"
		case strings.HasPrefix(l, "seed "):
			v, err := strconv.ParseUint(strings.TrimPrefix(l, "seed "), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("spca: bad seed line: %w", err)
			}
			m.Seed = v
		case strings.HasPrefix(l, "noise "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(l, "noise "), 64)
			if err != nil {
				return nil, fmt.Errorf("spca: bad noise line: %w", err)
			}
			m.NoiseVariance = v
		case strings.HasPrefix(l, "singular"):
			fields := strings.Fields(strings.TrimPrefix(l, "singular"))
			m.SingularValues = make([]float64, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("spca: bad singular entry: %w", err)
				}
				m.SingularValues[i] = v
			}
		case strings.HasPrefix(l, "mean"):
			fields := strings.Fields(strings.TrimPrefix(l, "mean"))
			m.Mean = make([]float64, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("spca: bad mean entry: %w", err)
				}
				m.Mean[i] = v
			}
		case l == "components":
			comps, err := matrix.ReadDense(br)
			if err != nil {
				return nil, fmt.Errorf("spca: bad components: %w", err)
			}
			m.Components = comps
			if len(m.Mean) != comps.R {
				return nil, fmt.Errorf("spca: model mean length %d != components rows %d",
					len(m.Mean), comps.R)
			}
			return m, nil
		default:
			return nil, fmt.Errorf("spca: unexpected model line %q", l)
		}
	}
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
