package spca

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/ppca"
)

// TestSentinelReexportsAliasInternals pins that every public sentinel is the
// same value as the internal one it re-exports, so a caller's errors.Is works
// no matter which layer produced the error.
func TestSentinelReexportsAliasInternals(t *testing.T) {
	pairs := []struct {
		name             string
		public, internal error
	}{
		{"ErrCanceled", ErrCanceled, cluster.ErrCanceled},
		{"ErrDeadlineExceeded", ErrDeadlineExceeded, cluster.ErrDeadlineExceeded},
		{"ErrStalled", ErrStalled, cluster.ErrStalled},
		{"ErrTaskFailed", ErrTaskFailed, mapred.ErrTaskFailed},
		{"ErrBadSnapshot", ErrBadSnapshot, checkpoint.ErrBadSnapshot},
		{"ErrDriverOOM", ErrDriverOOM, cluster.ErrDriverOOM},
		{"ErrDriverCrash", ErrDriverCrash, cluster.ErrDriverCrash},
		{"ErrCorruptPayload", ErrCorruptPayload, cluster.ErrCorruptPayload},
		{"ErrNumericalBreakdown", ErrNumericalBreakdown, ppca.ErrNumericalBreakdown},
	}
	for _, p := range pairs {
		if p.public != p.internal { //nolint:errorlint // identity is the contract
			t.Errorf("%s is not the internal sentinel value", p.name)
		}
		if !errors.Is(fmt.Errorf("wrapped: %w", p.internal), p.public) {
			t.Errorf("errors.Is(%s) fails through a %%w wrap", p.name)
		}
	}
}

// TestInterruptSentinelsWrapStdlib pins the dual-matching contract: the
// cancellation sentinels wrap the stdlib context sentinels, so both
// errors.Is(err, spca.ErrCanceled) and errors.Is(err, context.Canceled) hold.
func TestInterruptSentinelsWrapStdlib(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled does not wrap context.Canceled")
	}
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded does not wrap context.DeadlineExceeded")
	}
	if errors.Is(ErrCanceled, context.DeadlineExceeded) || errors.Is(ErrDeadlineExceeded, context.Canceled) {
		t.Error("cancel/deadline sentinels cross-match")
	}
	if errors.Is(ErrStalled, context.Canceled) || errors.Is(ErrStalled, context.DeadlineExceeded) {
		t.Error("ErrStalled must not match a context sentinel")
	}
}

// TestAbortErrorUnwrapChain pins errors.As/Is through a fully wrapped
// AbortError the way callers receive one from Fit.
func TestAbortErrorUnwrapChain(t *testing.T) {
	ab := &AbortError{Iter: 3, Cause: ErrCanceled, Checkpointed: true}
	wrapped := fmt.Errorf("spca: fit: %w", ab)
	var got *AbortError
	if !errors.As(wrapped, &got) || got.Iter != 3 || !got.Checkpointed {
		t.Fatalf("errors.As lost the AbortError: %v", wrapped)
	}
	if !errors.Is(wrapped, ErrCanceled) || !errors.Is(wrapped, context.Canceled) {
		t.Fatalf("AbortError does not unwrap to its cause: %v", wrapped)
	}
	var crash *DriverCrashError
	if errors.As(wrapped, &crash) {
		t.Fatal("AbortError must not satisfy errors.As for DriverCrashError (aborts are not retried)")
	}
}
