package spca

import (
	"os"
	"strconv"
	"testing"
)

// chaosSeed is the FaultPlan seed for the chaos suite: fixed by default for
// reproducible CI, overridable via SPCA_CHAOS_SEED (the Makefile chaos target
// runs the suite a second time with a randomized-but-logged seed).
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("SPCA_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("SPCA_CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from SPCA_CHAOS_SEED)", v)
		return v
	}
	return 20150604 // fixed default (the paper's SIGMOD publication date)
}

// chaosPlan is the suite's fault schedule: the acceptance envelope (failure
// rates <= 0.2) with every fault kind armed. MaxAttempts 12 makes terminal
// failure unreachable in practice (0.2^12 per task), so any seed drawn by the
// randomized Makefile run is safe.
func chaosPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		Seed:                 seed,
		TaskFailureRate:      0.2,
		NodeLossRate:         0.1,
		StragglerRate:        0.1,
		SpeculativeExecution: true,
		MaxAttempts:          12,
	}
}

// TestChaosModelsBitIdentical is the chaos suite's core assertion: for every
// distributed algorithm, the fitted model under injected faults is
// bit-identical to the fault-free fit — fault tolerance is pure recovery,
// never a numerical perturbation — while the recovery metrics prove faults
// actually fired.
func TestChaosModelsBitIdentical(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 600, Cols: 80, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, MahoutPCA, MLlibPCA, SVDBidiag} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 4}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			if m := clean.Metrics; m.FailedAttempts != 0 || m.RecomputedOps != 0 ||
				m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 {
				t.Fatalf("fault-free fit charged recovery metrics: %v", m)
			}

			chaotic := base
			chaotic.Faults = chaosPlan(seed)
			faulty, err := Fit(y, chaotic)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
				t.Fatal("components not bit-identical under injected faults")
			}
			if clean.Err != faulty.Err || clean.Iterations != faulty.Iterations {
				t.Fatalf("fit trajectory diverged under faults: err %v vs %v, iters %d vs %d",
					clean.Err, faulty.Err, clean.Iterations, faulty.Iterations)
			}
			m := faulty.Metrics
			if m.FailedAttempts == 0 {
				t.Fatalf("chaos plan injected no failures: %v", m)
			}
			if m.RecoverySeconds <= 0 {
				t.Fatalf("recovery cost not charged: %v", m)
			}
			if m.SimSeconds <= clean.Metrics.SimSeconds {
				t.Fatalf("faulty run not slower: %.3fs vs clean %.3fs",
					m.SimSeconds, clean.Metrics.SimSeconds)
			}
		})
	}
}

// TestChaosDeterministicAcrossRuns: the same chaos seed must reproduce the
// exact same recovery accounting, run after run (the FaultPlan contract).
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 60, Seed: 9})
	seed := chaosSeed(t)
	run := func() Metrics {
		cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 3, Faults: chaosPlan(seed)}
		res, err := Fit(y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same chaos seed, different metrics:\n%+v\n%+v", a, b)
	}
}
