package spca

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strconv"
	"testing"
)

// chaosSeed is the FaultPlan seed for the chaos suite: fixed by default for
// reproducible CI, overridable via SPCA_CHAOS_SEED (the Makefile chaos target
// runs the suite a second time with a randomized-but-logged seed).
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("SPCA_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("SPCA_CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from SPCA_CHAOS_SEED)", v)
		return v
	}
	return 20150604 // fixed default (the paper's SIGMOD publication date)
}

// chaosPlan is the suite's fault schedule: the acceptance envelope (failure
// rates <= 0.2) with every fault kind armed. MaxAttempts 12 makes terminal
// failure unreachable in practice (0.2^12 per task), so any seed drawn by the
// randomized Makefile run is safe.
func chaosPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		Seed:                 seed,
		TaskFailureRate:      0.2,
		NodeLossRate:         0.1,
		StragglerRate:        0.1,
		SpeculativeExecution: true,
		MaxAttempts:          12,
	}
}

// TestChaosModelsBitIdentical is the chaos suite's core assertion: for every
// distributed algorithm, the fitted model under injected faults is
// bit-identical to the fault-free fit — fault tolerance is pure recovery,
// never a numerical perturbation — while the recovery metrics prove faults
// actually fired.
func TestChaosModelsBitIdentical(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 600, Cols: 80, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, MahoutPCA, MLlibPCA, SVDBidiag, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 4}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			if m := clean.Metrics; m.FailedAttempts != 0 || m.RecomputedOps != 0 ||
				m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 ||
				m.CorruptPayloads != 0 || m.ReverifySeconds != 0 {
				t.Fatalf("fault-free fit charged recovery metrics: %v", m)
			}

			chaotic := base
			chaotic.Faults = chaosPlan(seed)
			faulty, err := Fit(y, chaotic)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
				t.Fatal("components not bit-identical under injected faults")
			}
			if clean.Err != faulty.Err || clean.Iterations != faulty.Iterations {
				t.Fatalf("fit trajectory diverged under faults: err %v vs %v, iters %d vs %d",
					clean.Err, faulty.Err, clean.Iterations, faulty.Iterations)
			}
			m := faulty.Metrics
			if m.FailedAttempts == 0 {
				t.Fatalf("chaos plan injected no failures: %v", m)
			}
			if m.RecoverySeconds <= 0 {
				t.Fatalf("recovery cost not charged: %v", m)
			}
			if m.SimSeconds <= clean.Metrics.SimSeconds {
				t.Fatalf("faulty run not slower: %.3fs vs clean %.3fs",
					m.SimSeconds, clean.Metrics.SimSeconds)
			}
		})
	}
}

// modelFingerprint is the FNV-64 hash of a fitted model's exact float64 bit
// patterns — components, mean, variance, and the per-iteration history with
// its simulated clock — so the driver-crash suites can assert bit-identity,
// not mere closeness.
func modelFingerprint(res *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range res.Components.Data {
		put(v)
	}
	for _, v := range res.Mean {
		put(v)
	}
	put(res.NoiseVariance)
	put(float64(res.Iterations))
	for _, st := range res.History {
		put(float64(st.Iter))
		put(st.Err)
		put(st.SimSeconds)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestChaosDriverCrashResume is the durability suite's core assertion: with
// checkpointing enabled, a run whose driver crashes (at any scheduled
// iteration, even several incarnations in a row) auto-resumes and produces a
// model bit-identical to the uninterrupted run on the same simulated clock,
// with the recovery cost reported out-of-band.
func TestChaosDriverCrashResume(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 500, Cols: 70, Seed: 9})
	schedules := map[string][]int{
		"mid-run":        {3},
		"at-checkpoint":  {2},
		"before-first":   {1},
		"last-iteration": {5},
		"three-crashes":  {1, 3, 4},
	}
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, LocalPPCA, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 5, Tol: -1,
				Checkpoint: CheckpointSpec{Interval: 2, Dir: t.TempDir()}}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			cleanFP := modelFingerprint(clean)
			for name, crashes := range schedules {
				cfg := base
				cfg.Checkpoint.Dir = t.TempDir()
				cfg.Faults = &FaultPlan{DriverCrashIters: crashes}
				res, err := Fit(y, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if fp := modelFingerprint(res); fp != cleanFP {
					t.Errorf("%s: resumed model fingerprint %s != uninterrupted %s", name, fp, cleanFP)
				}
				if res.Metrics.SimSeconds != clean.Metrics.SimSeconds {
					t.Errorf("%s: resumed SimSeconds %v != uninterrupted %v",
						name, res.Metrics.SimSeconds, clean.Metrics.SimSeconds)
				}
				if got, want := res.Metrics.DriverRestarts, int64(len(crashes)); got != want {
					t.Errorf("%s: DriverRestarts = %d, want %d", name, got, want)
				}
				if alg != LocalPPCA && res.Metrics.RecoverySeconds <= 0 {
					t.Errorf("%s: recovery cost not charged: %v", name, res.Metrics.RecoverySeconds)
				}
			}
		})
	}
}

// TestChaosCombinedTaskAndDriverFaults layers a driver crash on top of the
// full task-fault chaos plan. The resumed incarnation must draw the exact
// same task faults the uninterrupted run would (the checkpoint carries the
// engines' fault-decision cursor), keeping the model and clock bit-identical.
func TestChaosCombinedTaskAndDriverFaults(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 500, Cols: 70, Seed: 9})
	seed := chaosSeed(t)
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, RSVDMapReduce, RSVDSpark} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			base := Config{Algorithm: alg, Components: 5, MaxIter: 4, Tol: -1,
				Faults:     chaosPlan(seed),
				Checkpoint: CheckpointSpec{Interval: 1, Dir: t.TempDir()}}
			clean, err := Fit(y, base)
			if err != nil {
				t.Fatal(err)
			}
			crashed := base
			crashed.Checkpoint.Dir = t.TempDir()
			crashed.Faults = chaosPlan(seed)
			crashed.Faults.DriverCrashIters = []int{2}
			res, err := Fit(y, crashed)
			if err != nil {
				t.Fatal(err)
			}
			if modelFingerprint(res) != modelFingerprint(clean) {
				t.Error("combined task+driver faults: model not bit-identical to task-faults-only run")
			}
			if res.Metrics.SimSeconds != clean.Metrics.SimSeconds {
				t.Errorf("combined task+driver faults: SimSeconds %v != %v",
					res.Metrics.SimSeconds, clean.Metrics.SimSeconds)
			}
			if res.Metrics.FailedAttempts != clean.Metrics.FailedAttempts {
				t.Errorf("task-fault draws diverged after resume: %d failed attempts vs %d",
					res.Metrics.FailedAttempts, clean.Metrics.FailedAttempts)
			}
			if res.Metrics.DriverRestarts != 1 {
				t.Errorf("DriverRestarts = %d, want 1", res.Metrics.DriverRestarts)
			}
		})
	}
}

// TestChaosDriverCrashWithoutCheckpointFatal pins the other half of the
// contract: without a checkpoint config a driver crash is a typed, fatal
// error, exactly like a stock Hadoop/Spark driver loss.
func TestChaosDriverCrashWithoutCheckpointFatal(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 300, Cols: 50, Seed: 9})
	cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 3,
		Faults: &FaultPlan{DriverCrashIters: []int{2}}}
	_, err := Fit(y, cfg)
	if !errors.Is(err, ErrDriverCrash) {
		t.Fatalf("want ErrDriverCrash, got %v", err)
	}
	var crash *DriverCrashError
	if !errors.As(err, &crash) || crash.Iter != 2 {
		t.Fatalf("want DriverCrashError at iteration 2, got %v", err)
	}
}

// TestChaosDeterministicAcrossRuns: the same chaos seed must reproduce the
// exact same recovery accounting, run after run (the FaultPlan contract).
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 60, Seed: 9})
	seed := chaosSeed(t)
	run := func() Metrics {
		cfg := Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 3, Faults: chaosPlan(seed)}
		res, err := Fit(y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same chaos seed, different metrics:\n%+v\n%+v", a, b)
	}
}
