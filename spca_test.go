package spca

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

func smallDataset(t *testing.T) *Sparse {
	t.Helper()
	return GenerateDataset(DatasetSpec{Kind: Diabetes, Rows: 120, Cols: 40, Rank: 3, Seed: 5})
}

func TestFitAllAlgorithmsProduceComponents(t *testing.T) {
	y := smallDataset(t)
	for _, alg := range []Algorithm{LocalPPCA, SPCAMapReduce, SPCASpark, MahoutPCA, MLlibPCA} {
		res, err := Fit(y, Config{Algorithm: alg, Components: 3, MaxIter: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Components.R != 40 || res.Components.C != 3 {
			t.Fatalf("%s: components %dx%d", alg, res.Components.R, res.Components.C)
		}
		if len(res.Mean) != 40 {
			t.Fatalf("%s: mean len %d", alg, len(res.Mean))
		}
		if res.Algorithm != alg {
			t.Fatalf("%s: result tagged %s", alg, res.Algorithm)
		}
	}
}

func TestFitAlgorithmsAgreeOnSubspace(t *testing.T) {
	y := smallDataset(t)
	gap := func(a, b *Dense) float64 {
		qa, qb := a.Clone(), b.Clone()
		matrix.GramSchmidt(qa)
		matrix.GramSchmidt(qb)
		_, s, _ := matrix.SVD(qa.MulT(qb))
		min := 1.0
		for _, v := range s {
			if v < min {
				min = v
			}
		}
		return 1 - min
	}
	exact, err := Fit(y, Config{Algorithm: MLlibPCA, Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{SPCAMapReduce, SPCASpark, MahoutPCA} {
		res, err := Fit(y, Config{Algorithm: alg, Components: 3, MaxIter: 30})
		if err != nil {
			t.Fatal(err)
		}
		if g := gap(res.Components, exact.Components); g > 0.05 {
			t.Fatalf("%s disagrees with exact PCA: gap %v", alg, g)
		}
	}
}

func TestFitDefaultsApplied(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Components default 50 clamps to D=40.
	if res.Components.C != 40 {
		t.Fatalf("default components = %d", res.Components.C)
	}
	if res.Algorithm != SPCASpark {
		t.Fatalf("default algorithm = %s", res.Algorithm)
	}
}

func TestFitUnknownAlgorithm(t *testing.T) {
	y := smallDataset(t)
	if _, err := Fit(y, Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMLlibOOMSurfacesThroughFacade(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 100, Cols: 600, Seed: 6})
	_, err := Fit(y, Config{
		Algorithm:  MLlibPCA,
		Components: 5,
		Cluster:    ClusterConfig{DriverMemoryGB: 600 * 600 * 8 * 1.5 / float64(1<<30)},
	})
	if !errors.Is(err, cluster.ErrDriverOOM) {
		t.Fatalf("expected driver OOM, got %v", err)
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 10, TargetAccuracy: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if last.Accuracy < 0.9 {
		t.Fatalf("accuracy %v below target", last.Accuracy)
	}
}

func TestTransformAndReconstruct(t *testing.T) {
	y := smallDataset(t)
	for _, alg := range []Algorithm{SPCASpark, MLlibPCA} {
		res, err := Fit(y, Config{Algorithm: alg, Components: 3, MaxIter: 20})
		if err != nil {
			t.Fatal(err)
		}
		x, err := res.Transform(y)
		if err != nil {
			t.Fatal(err)
		}
		if x.R != y.R || x.C != 3 {
			t.Fatalf("%s: latent %dx%d", alg, x.R, x.C)
		}
		recon, err := res.Reconstruct(x)
		if err != nil {
			t.Fatal(err)
		}
		rel := recon.Sub(y.Dense()).Norm1() / y.Dense().Norm1()
		if rel > 0.3 {
			t.Fatalf("%s: reconstruction error %v", alg, rel)
		}
		if _, err := res.Transform(matrix.NewSparse(3, 7)); err == nil {
			t.Fatal("expected dims error")
		}
	}
}

func TestSmartGuessConfig(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 800, Cols: 120, Seed: 7})
	plain, err := Fit(y, Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Fit(y, Config{Algorithm: SPCAMapReduce, Components: 4, MaxIter: 1, SmartGuess: true})
	if err != nil {
		t.Fatal(err)
	}
	if smart.History[0].Err >= plain.History[0].Err {
		t.Fatalf("smart guess did not help: %v vs %v", smart.History[0].Err, plain.History[0].Err)
	}
}

func TestHeadlineComparison(t *testing.T) {
	// The paper's core claims on sparse data: sPCA beats both baselines in
	// simulated running time, and — the 3,511x intermediate-data result —
	// sPCA's shuffle volume is bounded by O(D·d) per task while Mahout's
	// grows linearly with N.
	fitAt := func(alg Algorithm, n int) *Result {
		y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: n, Cols: 200, Seed: 8})
		res, err := Fit(y, Config{Algorithm: alg, Components: 10, MaxIter: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	spark := fitAt(SPCASpark, 24000)
	mr := fitAt(SPCAMapReduce, 24000)
	mahout := fitAt(MahoutPCA, 24000)

	if mr.Metrics.SimSeconds >= mahout.Metrics.SimSeconds {
		t.Fatalf("sPCA-MapReduce (%.0fs) should beat Mahout-PCA (%.0fs)",
			mr.Metrics.SimSeconds, mahout.Metrics.SimSeconds)
	}
	if spark.Metrics.SimSeconds >= mr.Metrics.SimSeconds {
		t.Fatalf("sPCA-Spark (%.0fs) should beat sPCA-MapReduce (%.0fs)",
			spark.Metrics.SimSeconds, mr.Metrics.SimSeconds)
	}

	// Scaling shape: quadruple N and compare intermediate-data growth.
	mrSmall := fitAt(SPCAMapReduce, 6000)
	mahoutSmall := fitAt(MahoutPCA, 6000)
	mrGrowth := float64(mr.Metrics.ShuffleBytes) / float64(mrSmall.Metrics.ShuffleBytes)
	mahoutGrowth := float64(mahout.Metrics.ShuffleBytes) / float64(mahoutSmall.Metrics.ShuffleBytes)
	if mrGrowth > 2 {
		t.Fatalf("sPCA shuffle should be ~flat in N, grew %.1fx", mrGrowth)
	}
	if mahoutGrowth < 2.5 {
		t.Fatalf("Mahout shuffle should grow ~linearly in N, grew %.1fx", mahoutGrowth)
	}
	if mr.Metrics.ShuffleBytes >= mahout.Metrics.ShuffleBytes {
		t.Fatalf("sPCA shuffle (%d) should be below Mahout's (%d)",
			mr.Metrics.ShuffleBytes, mahout.Metrics.ShuffleBytes)
	}
}

func TestIdealErrorExported(t *testing.T) {
	y := smallDataset(t)
	e := IdealError(y, 3, 0)
	if e <= 0 || e >= 1 {
		t.Fatalf("ideal error %v", e)
	}
}

func TestSparseFileRoundTrip(t *testing.T) {
	y := smallDataset(t)
	dir := t.TempDir()
	for _, binary := range []bool{false, true} {
		path := filepath.Join(dir, "m.spmx")
		if err := SaveSparseFile(path, y, binary); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSparseFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dense().MaxAbsDiff(y.Dense()) != 0 {
			t.Fatalf("round trip (binary=%v) corrupted data", binary)
		}
	}
	if _, err := LoadSparseFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSVDBidiagFacade(t *testing.T) {
	y := smallDataset(t) // 120 x 40
	res, err := Fit(y, Config{Algorithm: SVDBidiag, Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components.R != 40 || res.Components.C != 3 {
		t.Fatalf("components %dx%d", res.Components.R, res.Components.C)
	}
	// Deterministic pipeline: must match MLlib's exact PCA subspace.
	exact, err := Fit(y, Config{Algorithm: MLlibPCA, Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	qa, qb := res.Components.Clone(), exact.Components.Clone()
	matrix.GramSchmidt(qa)
	matrix.GramSchmidt(qb)
	_, s, _ := matrix.SVD(qa.MulT(qb))
	if s[len(s)-1] < 1-1e-6 {
		t.Fatalf("SVD-Bidiag disagrees with exact PCA: %v", s)
	}
}

func TestExplainedVariance(t *testing.T) {
	y := smallDataset(t) // planted rank 3
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := res.ExplainedVariance(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 3 {
		t.Fatalf("len = %d", len(ev))
	}
	// Cumulative, in (0, 1], and rank-3 data is mostly explained by 3 PCs.
	prev := 0.0
	for _, v := range ev {
		if v < prev || v > 1+1e-9 {
			t.Fatalf("not a cumulative fraction: %v", ev)
		}
		prev = v
	}
	if ev[2] < 0.9 {
		t.Fatalf("rank-3 data should be >90%% explained by 3 PCs: %v", ev)
	}
	if _, err := res.ExplainedVariance(matrix.NewSparse(2, 5)); err == nil {
		t.Fatal("expected dims error")
	}
}

func TestFitStreamFileFacade(t *testing.T) {
	y := smallDataset(t)
	path := filepath.Join(t.TempDir(), "y.spmx")
	if err := SaveSparseFile(path, y, false); err != nil {
		t.Fatal(err)
	}
	res, err := FitStreamFile(path, 3, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components.R != 40 || res.Components.C != 3 {
		t.Fatalf("components %dx%d", res.Components.R, res.Components.C)
	}
	// Must agree with the in-memory fit bit for bit (same seed, same math).
	ref, err := Fit(y, Config{Algorithm: LocalPPCA, Components: 3, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components.MaxAbsDiff(ref.Components) != 0 {
		t.Fatal("streamed fit differs from in-memory fit")
	}
	if _, err := FitStreamFile(filepath.Join(t.TempDir(), "missing"), 3, 5, 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// TestDeprecatedWrappersMatchConfigForms pins the compatibility contract of
// the deprecated positional wrappers: FitMissing and FitStreamFile must be
// pure argument adapters — bit-identical results and identical errors to
// their Config counterparts, never a divergent code path.
func TestDeprecatedWrappersMatchConfigForms(t *testing.T) {
	y := smallDataset(t)

	// Dense matrix with deterministically planted missing entries.
	dense := y.Dense()
	for i := 0; i < dense.R; i += 7 {
		dense.Row(i)[(i*3)%dense.C] = math.NaN()
	}
	wrap, err := FitMissing(dense, 3, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfgRes, err := FitMissingConfig(dense, Config{Components: 3, MaxIter: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if wrap.Components.MaxAbsDiff(cfgRes.Components) != 0 ||
		wrap.Latent.MaxAbsDiff(cfgRes.Latent) != 0 {
		t.Fatal("FitMissing model not bit-identical to FitMissingConfig")
	}
	if wrap.SS != cfgRes.SS || wrap.Iterations != cfgRes.Iterations {
		t.Fatalf("FitMissing trajectory diverged: ss %v vs %v, iters %d vs %d",
			wrap.SS, cfgRes.SS, wrap.Iterations, cfgRes.Iterations)
	}
	for i, v := range wrap.LogLikeTrace {
		if v != cfgRes.LogLikeTrace[i] {
			t.Fatalf("LogLikeTrace[%d] = %v vs %v", i, v, cfgRes.LogLikeTrace[i])
		}
	}

	path := filepath.Join(t.TempDir(), "y.spmx")
	if err := SaveSparseFile(path, y, false); err != nil {
		t.Fatal(err)
	}
	sWrap, err := FitStreamFile(path, 3, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	sCfg, err := FitStreamFileConfig(path, Config{Components: 3, MaxIter: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sWrap.Components.MaxAbsDiff(sCfg.Components) != 0 {
		t.Fatal("FitStreamFile components not bit-identical to FitStreamFileConfig")
	}
	if sWrap.Err != sCfg.Err || sWrap.Iterations != sCfg.Iterations ||
		len(sWrap.History) != len(sCfg.History) {
		t.Fatalf("FitStreamFile trajectory diverged: err %v vs %v, iters %d vs %d",
			sWrap.Err, sCfg.Err, sWrap.Iterations, sCfg.Iterations)
	}

	// Errors must match too, case by case.
	wantErr := func(name string, a, b error) {
		t.Helper()
		if a == nil || b == nil {
			t.Fatalf("%s: wrapper err %v, config err %v — both must fail", name, a, b)
		}
		if a.Error() != b.Error() {
			t.Fatalf("%s: wrapper err %q != config err %q", name, a, b)
		}
	}
	_, aErr := FitMissing(nil, 3, 5, 1)
	_, bErr := FitMissingConfig(nil, Config{Components: 3, MaxIter: 5, Seed: 1})
	wantErr("FitMissing(nil)", aErr, bErr)
	if !errors.Is(aErr, ErrEmptyInput) {
		t.Fatalf("FitMissing(nil) = %v, want ErrEmptyInput", aErr)
	}
	inf := dense.Clone()
	inf.Row(1)[2] = math.Inf(1)
	_, aErr = FitMissing(inf, 3, 5, 1)
	_, bErr = FitMissingConfig(inf, Config{Components: 3, MaxIter: 5, Seed: 1})
	wantErr("FitMissing(Inf)", aErr, bErr)
	if !errors.Is(aErr, ErrNonFiniteInput) {
		t.Fatalf("FitMissing(Inf) = %v, want ErrNonFiniteInput", aErr)
	}

	missing := filepath.Join(t.TempDir(), "nope.spmx")
	_, aErr = FitStreamFile(missing, 3, 5, 1)
	_, bErr = FitStreamFileConfig(missing, Config{Components: 3, MaxIter: 5, Seed: 1})
	wantErr("FitStreamFile(missing)", aErr, bErr)
	corrupt := filepath.Join(t.TempDir(), "bad.spmx")
	if err := os.WriteFile(corrupt, []byte("not a matrix\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, aErr = FitStreamFile(corrupt, 3, 5, 1)
	_, bErr = FitStreamFileConfig(corrupt, Config{Components: 3, MaxIter: 5, Seed: 1})
	wantErr("FitStreamFile(corrupt)", aErr, bErr)
}

func TestFitInputValidation(t *testing.T) {
	y := smallDataset(t)
	cfg := Config{Algorithm: LocalPPCA, Components: 3, MaxIter: 3}

	if _, err := Fit(nil, cfg); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("Fit(nil) = %v, want ErrEmptyInput", err)
	}
	if _, err := Fit(matrix.NewSparse(0, 10), cfg); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("Fit(0 rows) = %v, want ErrEmptyInput", err)
	}
	if _, err := Fit(matrix.NewSparse(10, 0), cfg); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("Fit(0 cols) = %v, want ErrEmptyInput", err)
	}

	b := matrix.NewSparseBuilder(4)
	b.AddRow([]int{0, 2}, []float64{1, nan()})
	bad := b.Build()
	if _, err := Fit(bad, cfg); !errors.Is(err, ErrNonFiniteInput) {
		t.Fatalf("Fit(NaN value) = %v, want ErrNonFiniteInput", err)
	}

	for name, broken := range map[string]Config{
		"accuracy too high":    {Algorithm: LocalPPCA, Components: 3, TargetAccuracy: 1.5},
		"accuracy negative":    {Algorithm: LocalPPCA, Components: 3, TargetAccuracy: -0.1},
		"negative interval":    {Algorithm: LocalPPCA, Components: 3, Checkpoint: CheckpointSpec{Interval: -1, Dir: "x"}},
		"interval without dir": {Algorithm: LocalPPCA, Components: 3, Checkpoint: CheckpointSpec{Interval: 2}},
		"negative window":      {Algorithm: LocalPPCA, Components: 3, DivergeWindow: -1},
	} {
		if _, err := Fit(y, broken); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Fit = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestTolConfig(t *testing.T) {
	y := smallDataset(t)
	// Tol < 0 disables early stop: the fit must run all MaxIter rounds.
	res, err := Fit(y, Config{Algorithm: LocalPPCA, Components: 3, MaxIter: 8, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 8 {
		t.Fatalf("Tol<0 stopped early at %d iterations", res.Iterations)
	}
	// A very loose Tol stops well before MaxIter.
	res, err = Fit(y, Config{Algorithm: LocalPPCA, Components: 3, MaxIter: 50, Tol: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 50 {
		t.Fatalf("loose Tol did not stop early (%d iterations)", res.Iterations)
	}
}

func nan() float64 { return math.NaN() }
