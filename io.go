package spca

import (
	"fmt"
	"io"
	"os"

	"spca/internal/matrix"
)

// ReadSparse parses a sparse matrix in the spmx text format
// ("spmx R C NNZ" header followed by "row col value" triplets).
func ReadSparse(r io.Reader) (*Sparse, error) { return matrix.ReadSparse(r) }

// WriteSparse writes a sparse matrix in the spmx text format.
func WriteSparse(w io.Writer, m *Sparse) error { return matrix.WriteSparse(w, m) }

// ReadDense parses a dense matrix in the dmx text format.
func ReadDense(r io.Reader) (*Dense, error) { return matrix.ReadDense(r) }

// WriteDense writes a dense matrix in the dmx text format.
func WriteDense(w io.Writer, m *Dense) error { return matrix.WriteDense(w, m) }

// LoadSparseFile reads a sparse matrix from path, auto-detecting the text
// (spmx) or binary (SPMB) container.
func LoadSparseFile(path string) (*Sparse, error) {
	m, _, err := LoadSparseFileBudget(path, 0)
	return m, err
}

// LoadSparseFileBudget is LoadSparseFile with an opt-in bad-record budget:
// up to budget malformed triplet lines in a text (spmx) file are skipped
// instead of failing the load, and the skipped count is returned. The binary
// (SPMB) container has no record-level structure to skip past, so it is
// always parsed strictly.
func LoadSparseFileBudget(path string, budget int) (*Sparse, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	magic := make([]byte, 4)
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, 0, fmt.Errorf("spca: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	if string(magic) == "SPMB" {
		m, err := matrix.ReadSparseBinary(f)
		return m, 0, err
	}
	return matrix.ReadSparseBudget(f, budget)
}

// SaveSparseFile writes a sparse matrix to path; binary selects the compact
// SPMB container instead of the spmx text format.
func SaveSparseFile(path string, m *Sparse, binary bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if binary {
		if err := matrix.WriteSparseBinary(f, m); err != nil {
			return err
		}
	} else if err := matrix.WriteSparse(f, m); err != nil {
		return err
	}
	return f.Close()
}
