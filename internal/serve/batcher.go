package serve

import (
	"errors"
	"sync"

	"spca/internal/matrix"
	"spca/internal/parallel"
)

// op selects the projection a request wants. The values double as the binary
// protocol's opcode byte.
type op byte

const (
	opTransform   op = 1 // rows in data space -> latent positions
	opReconstruct op = 2 // latent positions -> data space
)

// ErrClosed is returned for requests submitted after the batcher drained.
var ErrClosed = errors.New("serve: server is shutting down")

// request is one unit of batched work. Callers own a request for the
// duration of a connection and reuse it frame after frame (the binary
// sessions pool them), so the steady-state serving path allocates nothing.
// in/out are row-major float slices; the batcher fills out and outCols.
type request struct {
	entry *Entry
	op    op
	rows  int
	cols  int
	in    []float64 // rows*cols, caller-owned
	out   []float64 // rows*outCols, caller-provided backing (grown by grow())
	// outCols is the served row width: d for transform, D for reconstruct.
	outCols int
	err     error
	done    chan struct{} // cap 1, strictly alternating submit/wait
}

// newRequest returns a request with its completion channel wired.
func newRequest() *request { return &request{done: make(chan struct{}, 1)} }

// grow returns s resized to n, reusing capacity.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// batcher coalesces concurrent projection requests into single matrix calls.
// Submitters append to a double-buffered queue and kick the loop goroutine;
// the loop drains the whole queue, groups adjacent requests that share a
// (model entry, op, width) key, copies each group into one scratch matrix,
// runs ONE TransformDenseInto/ReconstructInto over it, and scatters the rows
// back with parallel.ForWorker. Scratch matrices grow to the peak batch size
// and are reused, so a warm batcher performs no allocation per request.
type batcher struct {
	mu     sync.Mutex
	queue  []*request
	free   []*request // spare backing array for the queue swap
	kick   chan struct{}
	stop   chan struct{}
	closed bool
	wg     sync.WaitGroup

	// loop-goroutine scratch: batch input/output matrices, reused.
	inScratch  matrix.Dense
	outScratch matrix.Dense
}

func newBatcher() *batcher {
	b := &batcher{kick: make(chan struct{}, 1), stop: make(chan struct{})}
	b.wg.Add(1)
	go b.loop()
	return b
}

// do submits req and blocks until the batch containing it completes.
func (b *batcher) do(req *request) error {
	req.err = nil
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.queue = append(b.queue, req)
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	<-req.done
	return req.err
}

// close drains pending requests and stops the loop. Requests submitted after
// close fail with ErrClosed; requests already queued complete normally — the
// graceful-shutdown contract.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
}

func (b *batcher) loop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.kick:
		case <-b.stop:
			// Final drain: the queue is sealed (closed=true), so one more
			// sweep completes everything in flight.
			b.sweep()
			return
		}
		b.sweep()
	}
}

// sweep drains the queue once and processes it group by group.
func (b *batcher) sweep() {
	b.mu.Lock()
	batch := b.queue
	b.queue = b.free[:0]
	b.mu.Unlock()
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && sameGroup(batch[i], batch[j]) {
			j++
		}
		b.run(batch[i:j])
		i = j
	}
	for i := range batch {
		batch[i] = nil // drop request refs before reusing the backing array
	}
	b.mu.Lock()
	b.free = batch[:0]
	b.mu.Unlock()
}

// sameGroup reports whether two requests can share one matrix call.
func sameGroup(a, c *request) bool {
	return a.entry == c.entry && a.op == c.op && a.cols == c.cols
}

// run executes one coalesced group: gather rows, one projection, scatter.
func (b *batcher) run(group []*request) {
	total := 0
	for _, r := range group {
		total += r.rows
	}
	m := group[0].entry.Model
	dims, d := m.Dims()
	cols := group[0].cols
	outCols := d
	if group[0].op == opReconstruct {
		outCols = dims
	}

	b.inScratch.Data = grow(b.inScratch.Data, total*cols)
	b.inScratch.R, b.inScratch.C = total, cols
	b.outScratch.Data = grow(b.outScratch.Data, total*outCols)
	b.outScratch.R, b.outScratch.C = total, outCols

	// Gather: each request's rows land in a contiguous slab of the batch.
	offs := 0
	for _, r := range group {
		copy(b.inScratch.Data[offs*cols:], r.in[:r.rows*cols])
		r.outCols = outCols
		r.out = grow(r.out, r.rows*outCols)
		offs += r.rows
	}

	var err error
	if group[0].op == opTransform {
		_, err = m.TransformDenseInto(&b.outScratch, &b.inScratch)
	} else {
		_, err = m.ReconstructInto(&b.outScratch, &b.inScratch)
	}

	if err == nil {
		scatter(group, b.outScratch.Data, outCols)
	}
	for _, r := range group {
		r.err = err
		r.done <- struct{}{}
	}
}

// scatterBody is scatter's chunk loop with its captures as fields, pooled so
// the steady-state serving path performs no closure allocation (the same
// discipline as the matrix Mul kernels — see parallel.Runner).
type scatterBody struct {
	group   []*request
	data    []float64
	outCols int
}

var scatterBodies = parallel.NewPool(func() *scatterBody { return new(scatterBody) })

func (t *scatterBody) Run(lo, hi int) {
	// Prefix offsets are implicit: request k's slab starts at the sum of the
	// previous requests' rows. Recompute per chunk to keep chunks
	// independent (no shared cursor).
	offs := 0
	for _, r := range t.group[:lo] {
		offs += r.rows
	}
	for _, r := range t.group[lo:hi] {
		n := r.rows * t.outCols
		copy(r.out[:n], t.data[offs*t.outCols:offs*t.outCols+n])
		offs += r.rows
	}
}

// scatter copies each request's slab of the batch output into its own out
// buffer, fanning across workers when the group is wide.
func scatter(group []*request, data []float64, outCols int) {
	body := scatterBodies.Get()
	body.group, body.data, body.outCols = group, data, outCols
	parallel.ForRunner(len(group), 4, body)
	*body = scatterBody{}
	scatterBodies.Put(body)
}
