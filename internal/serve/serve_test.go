package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spca"
	"spca/internal/matrix"
)

// testModel builds a deterministic PPCA-shaped model without running a fit:
// Gaussian components, a Gaussian mean, and a non-zero noise variance so the
// posterior-projection path (the interesting one) is exercised.
func testModel(dims, d int, seed uint64) *spca.Model {
	rng := matrix.NewRNG(seed)
	c := matrix.NewDense(dims, d)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	mean := make([]float64, dims)
	for i := range mean {
		mean[i] = rng.NormFloat64()
	}
	return &spca.Model{
		Algorithm:     spca.LocalPPCA,
		Components:    c,
		Mean:          mean,
		NoiseVariance: 0.25,
		Seed:          seed,
	}
}

func testRows(rows, cols int, seed uint64) []float64 {
	rng := matrix.NewRNG(seed)
	out := make([]float64, rows*cols)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestRegistryPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Latest() != nil {
		t.Fatal("fresh registry should be empty")
	}
	m1 := testModel(20, 4, 1)
	m2 := testModel(20, 4, 2)
	e1, err := reg.Publish(m1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Publish(m2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Fatalf("versions %d, %d; want 1, 2", e1.Version, e2.Version)
	}
	if got := reg.Latest(); got.Version != 2 {
		t.Fatalf("latest is v%d, want v2", got.Version)
	}
	if got := reg.Version(1); got == nil || got.Model != m1 {
		t.Fatal("pinning version 1 should return the first model")
	}

	// Reopen: both generations reload, the persisted bytes round-trip the
	// model bit for bit, and the highest version is live again.
	reg2, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Latest(); got == nil || got.Version != 2 {
		t.Fatalf("reopened latest = %+v, want v2", got)
	}
	if len(reg2.List()) != 2 {
		t.Fatalf("reopened registry has %d entries, want 2", len(reg2.List()))
	}
	var orig, reread bytes.Buffer
	if err := m2.Save(&orig); err != nil {
		t.Fatal(err)
	}
	if err := reg2.Latest().Model.Save(&reread); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), reread.Bytes()) {
		t.Fatal("reloaded model does not re-serialize bit-identically")
	}

	// A corrupt generation is quarantined on open, not served.
	if err := os.WriteFile(filepath.Join(dir, entryFile(3)), []byte("spcamodel 2\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg3, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg3.Latest(); got == nil || got.Version != 2 {
		t.Fatalf("corrupt v3 should be skipped; latest = %+v", got)
	}
}

// TestRegistrySwapUnderReaders hammers Latest/Version/List from many readers
// while a writer publishes generations, verifying no reader ever observes a
// torn view (an entry whose version and model disagree). Run under -race.
func TestRegistrySwapUnderReaders(t *testing.T) {
	reg, err := NewRegistry("") // in-memory: the race is in the swap, not the disk
	if err != nil {
		t.Fatal(err)
	}
	const generations = 40
	// Each published model encodes its version in Seed, so readers can check
	// entry coherence without extra synchronization.
	models := make([]*spca.Model, generations+1)
	for v := uint64(1); v <= generations; v++ {
		models[v] = testModel(8, 2, v)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e := reg.Latest(); e != nil {
					if e.Model.Seed != e.Version {
						t.Errorf("torn read: entry v%d holds model seeded %d", e.Version, e.Model.Seed)
						return
					}
				}
				if e := reg.Version(3); e != nil && e.Model.Seed != 3 {
					t.Errorf("pinned v3 holds model seeded %d", e.Model.Seed)
					return
				}
				list := reg.List()
				for i, e := range list {
					if e.Version != uint64(i+1) {
						t.Errorf("list[%d] is v%d", i, e.Version)
						return
					}
				}
			}
		}()
	}
	for v := uint64(1); v <= generations; v++ {
		if _, err := reg.Publish(models[v]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := reg.Latest(); got.Version != generations {
		t.Fatalf("final latest v%d, want v%d", got.Version, generations)
	}
}

func newTestServer(t *testing.T, m *spca.Model) (*Server, *Entry) {
	t.Helper()
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, e
}

func TestHTTPTransformMatchesModel(t *testing.T) {
	m := testModel(12, 3, 7)
	srv, e := newTestServer(t, m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const rows = 5
	flat := testRows(rows, 12, 99)
	y := &matrix.Dense{R: rows, C: 12, Data: flat}
	want, err := m.TransformDense(y)
	if err != nil {
		t.Fatal(err)
	}

	body := map[string]any{"rows": toRows(flat, 12)}
	var resp projectResponse
	postJSON(t, ts.URL+"/v1/transform", body, &resp)
	if resp.Version != e.Version {
		t.Fatalf("served v%d, want v%d", resp.Version, e.Version)
	}
	if len(resp.Rows) != rows || len(resp.Rows[0]) != 3 {
		t.Fatalf("result %dx%d, want %dx3", len(resp.Rows), len(resp.Rows[0]), rows)
	}
	for i, row := range resp.Rows {
		for j, v := range row {
			if v != want.At(i, j) {
				t.Fatalf("transform[%d][%d] = %v, model says %v", i, j, v, want.At(i, j))
			}
		}
	}

	// Round trip: reconstruct the latent rows and check dimensions.
	var rec projectResponse
	postJSON(t, ts.URL+"/v1/reconstruct", map[string]any{"rows": resp.Rows}, &rec)
	if len(rec.Rows) != rows || len(rec.Rows[0]) != 12 {
		t.Fatalf("reconstruct %dx%d, want %dx12", len(rec.Rows), len(rec.Rows[0]), rows)
	}

	// Explained variance: cumulative, in (0, 1].
	var ev varianceResponse
	postJSON(t, ts.URL+"/v1/explained-variance", body, &ev)
	if len(ev.Explained) != 3 {
		t.Fatalf("explained has %d entries, want 3", len(ev.Explained))
	}
	for k := 1; k < len(ev.Explained); k++ {
		if ev.Explained[k] < ev.Explained[k-1] {
			t.Fatalf("explained variance not cumulative: %v", ev.Explained)
		}
	}

	// Wrong width is a client error mentioning the model's expectation.
	r, err := ts.Client().Post(ts.URL+"/v1/transform", "application/json",
		strings.NewReader(`{"rows": [[1, 2, 3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != 400 {
		t.Fatalf("bad-width transform returned %d, want 400", r.StatusCode)
	}

	// Introspection endpoints respond.
	for _, path := range []string{"/v1/models", "/v1/stats", "/v1/healthz"} {
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("GET %s returned %d", path, r.StatusCode)
		}
	}
	if st := srv.Stats(); st["http/transform"].Requests == 0 {
		t.Fatal("transform counter did not advance")
	}
}

func toRows(flat []float64, cols int) [][]float64 {
	out := make([][]float64, len(flat)/cols)
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols]
	}
	return out
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryProtocolRoundTrip(t *testing.T) {
	m := testModel(10, 3, 11)
	srv, e := newTestServer(t, m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const rows = 4
	flat := testRows(rows, 10, 5)
	want, err := m.TransformDense(&matrix.Dense{R: rows, C: 10, Data: flat})
	if err != nil {
		t.Fatal(err)
	}

	frame, err := EncodeRequest(nil, byte(opTransform), 0, rows, 10, flat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	version, gotRows, gotCols, data, err := readResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if version != e.Version || gotRows != rows || gotCols != 3 {
		t.Fatalf("response v%d %dx%d, want v%d %dx3", version, gotRows, gotCols, e.Version, rows)
	}
	for i, v := range data {
		if v != want.Data[i] {
			t.Fatalf("binary transform[%d] = %v, model says %v", i, v, want.Data[i])
		}
	}

	// Pinning an unknown version fails without killing the connection.
	frame, err = EncodeRequest(frame[:0], byte(opTransform), 999, rows, 10, flat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := readResponse(conn); err == nil || !strings.Contains(err.Error(), "unknown model version") {
		t.Fatalf("unknown version error = %v", err)
	}

	// The connection still serves after the error.
	frame, err = EncodeRequest(frame[:0], byte(opTransform), e.Version, rows, 10, flat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := readResponse(conn); err != nil {
		t.Fatal(err)
	}
}

// readResponse reads one length-prefixed response frame from the connection.
func readResponse(conn net.Conn) (version uint64, rows, cols int, data []float64, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	payload := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return DecodeResponse(payload)
}

// TestServeTransformAllocs pins the binary hot path at zero allocations per
// request: a warm session serving a steady stream of transform frames must
// not allocate in handle, the batcher, or the matrix kernels underneath.
func TestServeTransformAllocs(t *testing.T) {
	m := testModel(32, 4, 13)
	srv, _ := newTestServer(t, m)
	sn := newBinSession(srv)
	const rows = 8
	frame, err := EncodeRequest(nil, byte(opTransform), 0, rows, 32, testRows(rows, 32, 3))
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	// Warm up: grow session buffers, batcher scratch, projection cache.
	for i := 0; i < 8; i++ {
		if resp := sn.handle(payload); resp[0] != binStatusOK {
			t.Fatalf("warm-up response status %d: %s", resp[0], resp[binHeaderLen:])
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if resp := sn.handle(payload); resp[0] != binStatusOK {
			t.Fatal("serve failed mid-measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("binary transform path allocates %.1f times per request, want 0", avg)
	}
}

// TestBatcherCoalesces checks that concurrent same-shape requests produce
// the same results as direct model calls (the batch is bit-identical to the
// per-request math because it IS the same kernel over stacked rows).
func TestBatcherCoalesces(t *testing.T) {
	m := testModel(16, 3, 17)
	srv, e := newTestServer(t, m)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows := 1 + c%3
			flat := testRows(rows, 16, uint64(100+c))
			want, err := m.TransformDense(&matrix.Dense{R: rows, C: 16, Data: flat})
			if err != nil {
				errs[c] = err
				return
			}
			req := newRequest()
			req.entry = e
			req.op = opTransform
			req.rows, req.cols = rows, 16
			req.in = flat
			for iter := 0; iter < 50; iter++ {
				if err := srv.bat.do(req); err != nil {
					errs[c] = err
					return
				}
				for i := 0; i < rows*3; i++ {
					if req.out[i] != want.Data[i] {
						errs[c] = fmt.Errorf("client %d iter %d: out[%d] = %v, want %v",
							c, iter, i, req.out[i], want.Data[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGracefulShutdown verifies the drain contract: queued requests finish,
// later submissions are refused.
func TestGracefulShutdown(t *testing.T) {
	m := testModel(8, 2, 19)
	reg, _ := NewRegistry("")
	e, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, nil)
	req := newRequest()
	req.entry = e
	req.op = opTransform
	req.rows, req.cols = 1, 8
	req.in = testRows(1, 8, 1)
	if err := srv.bat.do(req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.bat.do(req); err != ErrClosed {
		t.Fatalf("post-shutdown submit = %v, want ErrClosed", err)
	}
}

// BenchmarkServeTransform measures the single-session binary hot path.
func BenchmarkServeTransform(b *testing.B) {
	m := testModel(64, 8, 23)
	reg, _ := NewRegistry("")
	if _, err := reg.Publish(m); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(reg, nil)
	defer srv.Shutdown(context.Background())
	sn := newBinSession(srv)
	const rows = 16
	frame, err := EncodeRequest(nil, byte(opTransform), 0, rows, 64, testRows(rows, 64, 3))
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[4:]
	for i := 0; i < 4; i++ {
		sn.handle(payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := sn.handle(payload); resp[0] != binStatusOK {
			b.Fatal("serve failed")
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkServeLoad is the load generator: concurrent binary-protocol
// clients over real TCP, reporting throughput and tail latency.
func BenchmarkServeLoad(b *testing.B) {
	m := testModel(64, 8, 29)
	reg, _ := NewRegistry("")
	if _, err := reg.Publish(m); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(reg, nil)
	defer srv.Shutdown(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeBinary(ln)

	const clients = 8
	const rows = 16
	perClient := b.N/clients + 1
	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			frame, err := EncodeRequest(nil, byte(opTransform), 0, rows, 64, testRows(rows, 64, uint64(c)))
			if err != nil {
				b.Error(err)
				return
			}
			lat[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if _, err := conn.Write(frame); err != nil {
					b.Error(err)
					return
				}
				if _, _, _, _, err := readResponse(conn); err != nil {
					b.Error(err)
					return
				}
				lat[c] = append(lat[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		b.Fatal("no requests completed")
	}
	sortDurations(all)
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "req/sec")
	b.ReportMetric(float64(all[len(all)/2].Microseconds())/1e3, "p50-ms")
	b.ReportMetric(float64(all[(len(all)*99)/100].Microseconds())/1e3, "p99-ms")
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
