package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"spca/internal/matrix"
)

// HTTP/JSON protocol: the debuggable front end. Projection endpoints accept
//
//	POST /v1/transform            {"version": 0, "rows": [[...], ...]}
//	POST /v1/reconstruct          {"version": 0, "rows": [[...], ...]}
//	POST /v1/explained-variance   {"version": 0, "rows": [[...], ...]}
//
// where version 0 (or omitted) means the live model, and introspection is
//
//	GET /v1/models    registry listing, ascending versions
//	GET /v1/stats     per-endpoint counters and latency percentiles
//	GET /v1/healthz   200 once a model is live, 503 before
//
// Transform and reconstruct share the batcher with the binary protocol, so
// mixed-protocol load still coalesces into single matrix calls.

// projectRequest is the JSON body of the three projection endpoints.
type projectRequest struct {
	Version uint64      `json:"version"`
	Rows    [][]float64 `json:"rows"`
}

// projectResponse answers transform/reconstruct.
type projectResponse struct {
	Version uint64      `json:"version"`
	Rows    [][]float64 `json:"rows"`
}

// varianceResponse answers explained-variance: cumulative fractions.
type varianceResponse struct {
	Version   uint64    `json:"version"`
	Explained []float64 `json:"explained"`
}

// modelInfo is one registry entry in the /v1/models listing.
type modelInfo struct {
	Version    uint64 `json:"version"`
	Algorithm  string `json:"algorithm"`
	Dims       int    `json:"dims"`
	Components int    `json:"components"`
	Seed       uint64 `json:"seed"`
	Path       string `json:"path,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	Live       bool   `json:"live"`
}

// Handler returns the HTTP API. Mount it on any mux or serve it directly.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/transform", func(w http.ResponseWriter, r *http.Request) {
		s.project(w, r, opTransform, epHTTPTransform)
	})
	mux.HandleFunc("/v1/reconstruct", func(w http.ResponseWriter, r *http.Request) {
		s.project(w, r, opReconstruct, epHTTPReconstruct)
	})
	mux.HandleFunc("/v1/explained-variance", s.explainedVariance)
	mux.HandleFunc("/v1/models", s.models)
	mux.HandleFunc("/v1/stats", s.statsHandler)
	mux.HandleFunc("/v1/healthz", s.healthz)
	return mux
}

// decodeRows validates a projection body into a dense row-major batch.
func decodeRows(r *http.Request) (*projectRequest, []float64, int, error) {
	if r.Method != http.MethodPost {
		return nil, nil, 0, fmt.Errorf("POST only")
	}
	var req projectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, nil, 0, fmt.Errorf("bad JSON: %v", err)
	}
	if len(req.Rows) == 0 {
		return nil, nil, 0, fmt.Errorf("empty rows")
	}
	cols := len(req.Rows[0])
	if cols == 0 {
		return nil, nil, 0, fmt.Errorf("empty rows")
	}
	flat := make([]float64, 0, len(req.Rows)*cols)
	for i, row := range req.Rows {
		if len(row) != cols {
			return nil, nil, 0, fmt.Errorf("ragged rows: row %d has %d values, row 0 has %d", i, len(row), cols)
		}
		flat = append(flat, row...)
	}
	return &req, flat, cols, nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// project serves transform and reconstruct through the shared batcher.
func (s *Server) project(w http.ResponseWriter, r *http.Request, o op, ep endpoint) {
	req, flat, cols, err := decodeRows(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, err := s.resolve(req.Version)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	dims, d := entry.Model.Dims()
	want := dims
	if o == opReconstruct {
		want = d
	}
	if cols != want {
		httpError(w, http.StatusBadRequest,
			"input width %d does not match the model (want %d)", cols, want)
		return
	}
	breq := newRequest()
	breq.entry = entry
	breq.op = o
	breq.rows, breq.cols = len(req.Rows), cols
	breq.in = flat
	start := time.Now()
	err = s.bat.do(breq)
	s.stats[ep].observe(time.Since(start), err)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	out := make([][]float64, breq.rows)
	for i := range out {
		out[i] = breq.out[i*breq.outCols : (i+1)*breq.outCols]
	}
	writeJSON(w, projectResponse{Version: entry.Version, Rows: out})
}

// explainedVariance serves cumulative explained-variance fractions for a
// batch of data rows. Not batched: it is a whole-matrix statistic, not a
// per-row projection.
func (s *Server) explainedVariance(w http.ResponseWriter, r *http.Request) {
	req, flat, cols, err := decodeRows(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, err := s.resolve(req.Version)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	start := time.Now()
	y := matrix.FromDense(&matrix.Dense{R: len(req.Rows), C: cols, Data: flat})
	ev, err := entry.Model.ExplainedVariance(y)
	s.stats[epHTTPExplained].observe(time.Since(start), err)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, varianceResponse{Version: entry.Version, Explained: ev})
}

// models lists the registry.
func (s *Server) models(w http.ResponseWriter, r *http.Request) {
	live := s.reg.Latest()
	entries := s.reg.List()
	out := make([]modelInfo, 0, len(entries))
	for _, e := range entries {
		dims, d := e.Model.Dims()
		out = append(out, modelInfo{
			Version:    e.Version,
			Algorithm:  string(e.Model.Algorithm),
			Dims:       dims,
			Components: d,
			Seed:       e.Model.Seed,
			Path:       e.Path,
			Bytes:      e.Bytes,
			Live:       live != nil && e.Version == live.Version,
		})
	}
	writeJSON(w, out)
}

func (s *Server) statsHandler(w http.ResponseWriter, r *http.Request) {
	type statsResponse struct {
		LiveVersion uint64                  `json:"live_version"`
		Endpoints   map[string]StatSnapshot `json:"endpoints"`
	}
	resp := statsResponse{Endpoints: s.Stats()}
	if live := s.reg.Latest(); live != nil {
		resp.LiveVersion = live.Version
	}
	writeJSON(w, resp)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.reg.Latest() == nil {
		httpError(w, http.StatusServiceUnavailable, "no model published yet")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}
