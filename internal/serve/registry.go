// Package serve is the model-serving layer: a versioned registry of fitted
// spca.Model snapshots plus a daemon front end (HTTP/JSON and a compact
// binary protocol) that projects client rows through the live model. The
// registry persists every published model with the exact-float, checksummed
// container discipline of internal/checkpoint, so a served model reloads
// bit-identically after a restart and a torn write is detected before it can
// be served.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"spca"
	"spca/internal/matrix"
)

// Entry is one immutable registry generation: a model, its version, and the
// file it persists in. Entries are shared between the registry and every
// in-flight request; nothing in an Entry is mutated after Publish.
type Entry struct {
	// Version is the registry generation, 1-based and strictly increasing.
	Version uint64
	// Model is the fitted model. Its projection cache is warmed at publish
	// time so the serving hot path never pays the first-call allocation.
	Model *spca.Model
	// Path is the model file backing this entry ("" for unpersisted entries
	// in in-memory registries).
	Path string
	// Bytes is the persisted file size including the checksum trailer.
	Bytes int64
}

// entryFile names version v's model file. The fixed-width decimal keeps
// lexical directory order equal to version order.
func entryFile(v uint64) string { return fmt.Sprintf("model-%08d.spcm", v) }

// state is the registry's atomically-swapped view: the live entry and the
// version index. Readers load one pointer and see a coherent pair — the
// entry a concurrent Publish installs is never observable with a stale map.
type state struct {
	live    *Entry
	byVer   map[uint64]*Entry
	ordered []*Entry // ascending version
}

// Registry is a versioned model store. Reads (Latest, Version, List) are
// lock-free pointer loads, safe from any goroutine and allocation-free;
// writes (Publish) serialize on a mutex, persist the model, then swap the
// whole view in one atomic store. A reader therefore never observes a torn
// generation: it either gets the old view or the new one.
type Registry struct {
	dir string // "" = in-memory only

	mu    sync.Mutex // serializes writers
	next  uint64     // next version to assign (guarded by mu)
	state atomic.Pointer[state]
}

// NewRegistry returns an empty registry. If dir is non-empty, published
// models persist there and existing model files are loaded, with the highest
// version becoming live (the daemon's warm-restart path).
func NewRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	r.state.Store(&state{byVer: map[uint64]*Entry{}})
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "model-*.spcm"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	st := &state{byVer: map[uint64]*Entry{}}
	for _, path := range names {
		var v uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "model-%d.spcm", &v); err != nil || v == 0 {
			continue
		}
		m, err := spca.LoadModelFile(path)
		if err != nil {
			// A corrupt generation is quarantined, not fatal: the daemon
			// keeps serving older generations, mirroring checkpoint recovery.
			continue
		}
		fi, _ := os.Stat(path)
		e := &Entry{Version: v, Model: m, Path: path}
		if fi != nil {
			e.Bytes = fi.Size()
		}
		warm(m)
		st.byVer[v] = e
		if st.live == nil || v > st.live.Version {
			st.live = e
		}
		if v >= r.next {
			r.next = v
		}
	}
	st.ordered = orderedEntries(st.byVer)
	r.state.Store(st)
	return r, nil
}

// warm forces the model's projection cache so the first served request is
// already on the allocation-free path. A singular model surfaces its error
// on the first real Transform instead.
func warm(m *spca.Model) {
	dims, d := m.Dims()
	_, _ = m.TransformDenseInto(matrix.NewDense(1, d), matrix.NewDense(1, dims))
}

// Publish assigns the next version to m, persists it (atomic tmp+rename,
// like checkpoint.Save), and swaps it in as the live model. Concurrent
// readers keep whatever entry they already hold; new Latest calls see the
// new generation.
func (r *Registry) Publish(m *spca.Model) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.next + 1
	e := &Entry{Version: v, Model: m}
	if r.dir != "" {
		path := filepath.Join(r.dir, entryFile(v))
		tmp := path + ".tmp"
		if err := m.SaveFile(tmp); err != nil {
			os.Remove(tmp)
			return nil, fmt.Errorf("serve: persisting model v%d: %w", v, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return nil, fmt.Errorf("serve: persisting model v%d: %w", v, err)
		}
		if fi, err := os.Stat(path); err == nil {
			e.Bytes = fi.Size()
		}
		e.Path = path
	}
	warm(m)
	old := r.state.Load()
	st := &state{live: e, byVer: make(map[uint64]*Entry, len(old.byVer)+1)}
	for k, ov := range old.byVer {
		st.byVer[k] = ov
	}
	st.byVer[v] = e
	st.ordered = orderedEntries(st.byVer)
	r.next = v
	r.state.Store(st)
	return e, nil
}

// Latest returns the live entry, or nil for an empty registry.
func (r *Registry) Latest() *Entry { return r.state.Load().live }

// Version returns the entry pinned to version v (nil if unknown). Version 0
// means "latest" — the convention both wire protocols use.
func (r *Registry) Version(v uint64) *Entry {
	st := r.state.Load()
	if v == 0 {
		return st.live
	}
	return st.byVer[v]
}

// List returns all entries in ascending version order. The slice is shared
// and must not be mutated.
func (r *Registry) List() []*Entry { return r.state.Load().ordered }

func orderedEntries(byVer map[uint64]*Entry) []*Entry {
	out := make([]*Entry, 0, len(byVer))
	for _, e := range byVer {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}
