package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// statsRing is the per-endpoint latency window. Power of two so the write
// cursor wraps with a mask; 4096 samples is a few seconds of history at the
// throughputs the daemon targets — enough for stable p99 estimates.
const statsRing = 4096

// opStats is one endpoint's counters: totals via atomics, latencies in a
// lock-free ring. Writers never block each other or readers; percentile
// computation copies the ring on demand.
type opStats struct {
	count atomic.Int64
	errs  atomic.Int64
	pos   atomic.Uint64
	ring  [statsRing]atomic.Int64 // latency samples, nanoseconds; 0 = empty
}

// observe records one completed request.
func (s *opStats) observe(d time.Duration, err error) {
	s.count.Add(1)
	if err != nil {
		s.errs.Add(1)
	}
	ns := int64(d)
	if ns <= 0 {
		ns = 1 // keep the slot distinguishable from "never written"
	}
	i := (s.pos.Add(1) - 1) & (statsRing - 1)
	s.ring[i].Store(ns)
}

// StatSnapshot is the externally visible view of one endpoint's counters.
type StatSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// snapshot computes the current counters and latency percentiles.
func (s *opStats) snapshot(scratch []int64) StatSnapshot {
	out := StatSnapshot{Requests: s.count.Load(), Errors: s.errs.Load()}
	scratch = scratch[:0]
	for i := range s.ring {
		if v := s.ring[i].Load(); v != 0 {
			scratch = append(scratch, v)
		}
	}
	if len(scratch) == 0 {
		return out
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	out.P50ms = float64(scratch[len(scratch)/2]) / 1e6
	out.P99ms = float64(scratch[(len(scratch)*99)/100]) / 1e6
	return out
}
