package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Binary protocol: the allocation-free wire format for high-rate clients.
// Every frame is a little-endian uint32 byte length followed by that many
// payload bytes. Request payloads are
//
//	offset size  field
//	0      1     op        1 = transform, 2 = reconstruct
//	1      1     flags     reserved, must be 0
//	2      2     reserved
//	4      8     version   model version to pin, 0 = latest
//	12     4     rows
//	16     4     cols
//	20     8*rows*cols     row-major float64 data
//
// and responses mirror the header:
//
//	0      1     status    0 = ok, 1 = error
//	1      3     reserved
//	4      8     version   version actually served
//	12     4     rows
//	16     4     cols      (rows/cols of the result; 0 for errors)
//	20     ...             result data, or the error message for status 1
//
// A session's buffers and its batcher request are reused across frames, so a
// warm connection serves each frame with zero heap allocations — the
// property TestServeTransformAllocs pins.
const (
	binHeaderLen = 20
	// maxFrame bounds a request frame so a corrupt length prefix cannot make
	// the server allocate unbounded memory: 64 MiB ≈ an 8M-element batch.
	maxFrame = 64 << 20

	binStatusOK  = 0
	binStatusErr = 1
)

// binSession is one binary-protocol connection's state. All buffers grow to
// the connection's peak frame size and are then stable.
type binSession struct {
	srv  *Server
	req  *request
	buf  []byte // request payload buffer
	resp []byte // response payload buffer
}

func newBinSession(s *Server) *binSession {
	return &binSession{srv: s, req: newRequest()}
}

// growBytes returns s resized to n, reusing capacity.
func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// fail encodes an error response into sn.resp.
func (sn *binSession) fail(version uint64, msg string) []byte {
	sn.resp = growBytes(sn.resp, binHeaderLen+len(msg))
	for i := 0; i < binHeaderLen; i++ {
		sn.resp[i] = 0
	}
	sn.resp[0] = binStatusErr
	binary.LittleEndian.PutUint64(sn.resp[4:], version)
	copy(sn.resp[binHeaderLen:], msg)
	return sn.resp
}

// handle serves one request frame and returns the response payload. This is
// the unit the allocation gate and the serving benchmark drive.
func (sn *binSession) handle(frame []byte) []byte {
	if len(frame) < binHeaderLen {
		return sn.fail(0, "short frame")
	}
	o := op(frame[0])
	if o != opTransform && o != opReconstruct {
		return sn.fail(0, "unknown op")
	}
	version := binary.LittleEndian.Uint64(frame[4:])
	rows := int(binary.LittleEndian.Uint32(frame[12:]))
	cols := int(binary.LittleEndian.Uint32(frame[16:]))
	if rows <= 0 || cols <= 0 || len(frame) != binHeaderLen+8*rows*cols {
		return sn.fail(version, "frame size does not match rows x cols")
	}
	entry, err := sn.srv.resolve(version)
	if err != nil {
		return sn.fail(version, err.Error())
	}
	dims, d := entry.Model.Dims()
	want := dims
	ep := epBinTransform
	if o == opReconstruct {
		want = d
		ep = epBinReconstruct
	}
	if cols != want {
		return sn.fail(entry.Version, "input width does not match the model")
	}

	req := sn.req
	req.entry = entry
	req.op = o
	req.rows, req.cols = rows, cols
	req.in = grow(req.in, rows*cols)
	for i := range req.in {
		req.in[i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[binHeaderLen+8*i:]))
	}

	start := time.Now()
	err = sn.srv.bat.do(req)
	sn.srv.stats[ep].observe(time.Since(start), err)
	if err != nil {
		return sn.fail(entry.Version, err.Error())
	}

	n := req.rows * req.outCols
	sn.resp = growBytes(sn.resp, binHeaderLen+8*n)
	sn.resp[0] = binStatusOK
	sn.resp[1], sn.resp[2], sn.resp[3] = 0, 0, 0
	binary.LittleEndian.PutUint64(sn.resp[4:], entry.Version)
	binary.LittleEndian.PutUint32(sn.resp[12:], uint32(req.rows))
	binary.LittleEndian.PutUint32(sn.resp[16:], uint32(req.outCols))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(sn.resp[binHeaderLen+8*i:], math.Float64bits(req.out[i]))
	}
	return sn.resp
}

// ServeBinary accepts binary-protocol connections on ln until the listener
// closes (Shutdown closes tracked connections too).
func (s *Server) ServeBinary(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinaryConn(c)
	}
}

// serveBinaryConn runs one connection's frame loop.
func (s *Server) serveBinaryConn(c net.Conn) {
	defer c.Close()
	if !s.track(c) {
		return
	}
	defer s.untrack(c)
	sn := newBinSession(s)
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return // EOF, peer gone, or read deadline from Shutdown
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxFrame {
			return
		}
		sn.buf = growBytes(sn.buf, int(n))
		if _, err := io.ReadFull(br, sn.buf); err != nil {
			return
		}
		resp := sn.handle(sn.buf)
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(resp)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return
		}
		if _, err := bw.Write(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// EncodeRequest appends a binary-protocol request frame (length prefix
// included) to dst and returns the extended slice — the client-side encoder
// the load generator and tests share.
func EncodeRequest(dst []byte, o byte, version uint64, rows, cols int, data []float64) ([]byte, error) {
	if len(data) != rows*cols {
		return dst, fmt.Errorf("serve: EncodeRequest data length %d != %d x %d", len(data), rows, cols)
	}
	payload := binHeaderLen + 8*len(data)
	off := len(dst)
	dst = append(dst, make([]byte, 4+payload)...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(payload))
	b := dst[off+4:]
	for i := 0; i < binHeaderLen; i++ {
		b[i] = 0
	}
	b[0] = o
	binary.LittleEndian.PutUint64(b[4:], version)
	binary.LittleEndian.PutUint32(b[12:], uint32(rows))
	binary.LittleEndian.PutUint32(b[16:], uint32(cols))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[binHeaderLen+8*i:], math.Float64bits(v))
	}
	return dst, nil
}

// DecodeResponse parses a response payload (without the length prefix). It
// returns the served version and the row-major result, or the error the
// server reported.
func DecodeResponse(payload []byte) (version uint64, rows, cols int, data []float64, err error) {
	if len(payload) < binHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("serve: short response (%d bytes)", len(payload))
	}
	version = binary.LittleEndian.Uint64(payload[4:])
	if payload[0] != binStatusOK {
		return version, 0, 0, nil, fmt.Errorf("serve: %s", string(payload[binHeaderLen:]))
	}
	rows = int(binary.LittleEndian.Uint32(payload[12:]))
	cols = int(binary.LittleEndian.Uint32(payload[16:]))
	if len(payload) != binHeaderLen+8*rows*cols {
		return version, 0, 0, nil, fmt.Errorf("serve: response size does not match %d x %d", rows, cols)
	}
	data = make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[binHeaderLen+8*i:]))
	}
	return version, rows, cols, data, nil
}
