package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"spca/internal/trace"
)

// endpoint indexes the per-endpoint counters. Fixed at compile time so the
// hot paths index an array instead of hashing a map.
type endpoint int

const (
	epHTTPTransform endpoint = iota
	epHTTPReconstruct
	epHTTPExplained
	epBinTransform
	epBinReconstruct
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"http/transform",
	"http/reconstruct",
	"http/explained-variance",
	"bin/transform",
	"bin/reconstruct",
}

// Server fronts a Registry with the two wire protocols. One batcher feeds
// every protocol, so concurrent clients coalesce into shared matrix calls
// regardless of how they connected.
type Server struct {
	reg    *Registry
	bat    *batcher
	stats  [numEndpoints]opStats
	tracer *trace.Registry // optional; receives gauges on Shutdown

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
}

// NewServer returns a server over reg. tr may be nil; when set, Shutdown
// publishes final per-endpoint request/latency gauges into it.
func NewServer(reg *Registry, tr *trace.Registry) *Server {
	return &Server{
		reg:    reg,
		bat:    newBatcher(),
		tracer: tr,
		conns:  map[net.Conn]struct{}{},
	}
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.reg }

// resolve maps a wire version (0 = latest) to a registry entry.
func (s *Server) resolve(version uint64) (*Entry, error) {
	e := s.reg.Version(version)
	if e == nil {
		if version == 0 {
			return nil, fmt.Errorf("serve: no model published yet")
		}
		return nil, fmt.Errorf("serve: unknown model version %d", version)
	}
	return e, nil
}

// track registers a live binary connection for forced close on Shutdown.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains gracefully: new work is refused, queued requests finish,
// and binary connections are closed once idle (forced when ctx expires).
// Callers shut the HTTP listener down separately (http.Server.Shutdown) and
// then call this to drain the shared batcher.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Unblock connection readers parked in ReadFull so their sessions
	// observe draining and exit between frames.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.bat.close() // completes every queued request first
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.publishGauges()
	return err
}

// publishGauges exports final counters into the trace registry, the same
// surface the fit pipeline reports through.
func (s *Server) publishGauges() {
	if s.tracer == nil {
		return
	}
	scratch := make([]int64, 0, statsRing)
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		snap := s.stats[ep].snapshot(scratch)
		if snap.Requests == 0 {
			continue
		}
		s.tracer.SetGauge("serve_"+endpointNames[ep]+"_requests", float64(snap.Requests))
		s.tracer.SetGauge("serve_"+endpointNames[ep]+"_errors", float64(snap.Errors))
		s.tracer.SetGauge("serve_"+endpointNames[ep]+"_p50_ms", snap.P50ms)
		s.tracer.SetGauge("serve_"+endpointNames[ep]+"_p99_ms", snap.P99ms)
	}
}

// Stats returns a snapshot of every endpoint's counters, keyed by endpoint
// name, plus the registry's live version under "live_version".
func (s *Server) Stats() map[string]StatSnapshot {
	out := make(map[string]StatSnapshot, numEndpoints)
	scratch := make([]int64, 0, statsRing)
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		out[endpointNames[ep]] = s.stats[ep].snapshot(scratch)
	}
	return out
}
