// Package trace is the deterministic observability layer of the simulated
// cluster stack. Spans and events are timestamped with the *simulated* clock
// (cluster.Metrics.SimSeconds) — never time.Now() — so the trace of a fit is
// bit-reproducible across runs, with the same guarantee as the golden
// model-fingerprint tests: identical inputs produce an identical span tree,
// down to the float64 bit patterns of every timestamp and attribute.
//
// The layering mirrors the engines themselves:
//
//	fit            one span per driver incarnation (FitSpark, FitMapReduce, ...)
//	iteration      one span per EM iteration / refinement round
//	job / action   one span per MapReduce job or RDD action
//	phase          one span per cluster.RunPhase charge (the cost-model leaf)
//	driver         driver-side compute and checkpoint charges
//
// Phase and driver spans carry the full cost-model accounting as attributes
// (ops, shuffle/disk bytes, task attempts, recovery seconds), so summing the
// leaf spans of a trace reproduces the run's end-of-run Metrics exactly.
//
// A nil *Tracer is a valid no-op: every method is nil-receiver safe, and the
// engines only build attributes after a nil check, so untraced runs stay on
// the zero-allocation steady-state paths.
package trace

import "sync"

// Kind classifies a span within the engine stack.
type Kind string

// Span kinds, outermost to innermost.
const (
	KindFit       Kind = "fit"       // one driver incarnation of a fit
	KindIteration Kind = "iteration" // one EM iteration / refinement round
	KindJob       Kind = "job"       // one MapReduce job (map+shuffle+reduce)
	KindAction    Kind = "action"    // one RDD action
	KindPhase     Kind = "phase"     // one cluster.RunPhase charge
	KindDriver    Kind = "driver"    // driver-side compute or checkpoint charge
)

// Attr is one typed key/value attribute on a span or event. Exactly one of
// Int/Float is meaningful, selected by IsFloat; keeping the two domains
// separate preserves exact int64 byte counts and exact float64 bit patterns
// through serialization round trips.
type Attr struct {
	Key     string
	Int     int64
	Float   float64
	IsFloat bool
}

// I builds an integer attribute (byte counts, ops, task counts).
func I(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// F builds a float attribute (simulated seconds, errors).
func F(key string, v float64) Attr { return Attr{Key: key, Float: v, IsFloat: true} }

// Span is one timed region of a run. Start/End are simulated seconds. Parent
// is the ID of the enclosing span (0 for a root); Lane is the driver
// incarnation that produced the span (0 before any crash/restart).
type Span struct {
	ID     int
	Parent int
	Lane   int
	Name   string
	Kind   Kind
	Start  float64
	End    float64
	Attrs  []Attr
}

// AttrInt returns the named integer attribute, or 0 when absent.
func (s *Span) AttrInt(key string) int64 {
	for _, a := range s.Attrs {
		if a.Key == key && !a.IsFloat {
			return a.Int
		}
	}
	return 0
}

// AttrFloat returns the named float attribute, or 0 when absent.
func (s *Span) AttrFloat(key string) float64 {
	for _, a := range s.Attrs {
		if a.Key == key && a.IsFloat {
			return a.Float
		}
	}
	return 0
}

// Event is an instantaneous annotation (fault recovery, driver crash,
// checkpoint write on a cluster-less engine) tied to the span that was open
// when it fired (Span 0 = no enclosing span).
type Event struct {
	Span  int
	Lane  int
	Name  string
	Time  float64
	Attrs []Attr
}

// Iteration is the per-iteration progress callback payload, mirroring the
// engines' IterationStat.
type Iteration struct {
	Iter         int
	Err          float64
	Accuracy     float64
	SS           float64
	SimSeconds   float64
	Ridge        float64
	RidgeRetries int
	Rollback     bool
}

// Observer receives trace callbacks. Implementations must be safe for calls
// from the driver goroutine of a fit; callbacks are serialized by the Tracer.
// SpanStart fires when a span opens (End still zero); SpanEnd fires with the
// completed span. Leaf charge spans (phase/driver) are emitted atomically:
// SpanStart and SpanEnd fire back to back.
type Observer interface {
	SpanStart(s Span)
	SpanEnd(s Span)
	Event(e Event)
	IterationDone(it Iteration)
}

// Tracer stamps spans with the simulated clock and fans them out to
// observers, maintaining the open-span stack of one driver. Driver code is
// sequential, so the stack needs no per-fit coordination; the mutex only
// protects against engine-internal concurrency. A nil *Tracer is a no-op.
type Tracer struct {
	mu     sync.Mutex
	clock  func() float64
	obs    []Observer
	reg    *Registry
	nextID int
	lane   int
	stack  []*Span
}

// New returns a tracer reporting to the given observers.
func New(obs ...Observer) *Tracer {
	return &Tracer{obs: obs, reg: NewRegistry()}
}

// AddObserver attaches another observer.
func (t *Tracer) AddObserver(o Observer) {
	if t == nil || o == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obs = append(t.obs, o)
}

// SetClock installs the simulated-clock source (typically the cluster's
// SimSeconds). A nil clock keeps all timestamps at zero, which is what the
// single-machine engines use: their spans carry structure, not time.
func (t *Tracer) SetClock(fn func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = fn
}

// SetLane tags subsequent spans and events with a driver incarnation. The
// resume loop bumps it after every injected crash so the overlapping clocks
// of successive incarnations land on separate timelines in exporters.
func (t *Tracer) SetLane(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lane = n
}

// Registry returns the tracer's per-run metrics registry.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// now reads the simulated clock. Called without t.mu held: the clock closure
// typically takes the cluster's metrics lock, and the cluster emits spans
// while holding no locks, so the two mutexes never nest in both orders.
func (t *Tracer) now() float64 {
	t.mu.Lock()
	fn := t.clock
	t.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Begin opens a span at the current simulated clock, parented to the
// innermost open span.
func (t *Tracer) Begin(name string, kind Kind, attrs ...Attr) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	t.nextID++
	s := &Span{ID: t.nextID, Lane: t.lane, Name: name, Kind: kind, Start: now, Attrs: attrs}
	if n := len(t.stack); n > 0 {
		s.Parent = t.stack[n-1].ID
	}
	t.stack = append(t.stack, s)
	obs := t.obs
	sv := *s
	t.mu.Unlock()
	for _, o := range obs {
		o.SpanStart(sv)
	}
}

// End closes the innermost open span at the current simulated clock,
// appending attrs to the ones given at Begin.
func (t *Tracer) End(attrs ...Attr) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	n := len(t.stack)
	if n == 0 {
		t.mu.Unlock()
		return
	}
	s := t.stack[n-1]
	t.stack = t.stack[:n-1]
	s.End = now
	s.Attrs = append(s.Attrs, attrs...)
	t.reg.observe(s)
	obs := t.obs
	sv := *s
	t.mu.Unlock()
	for _, o := range obs {
		o.SpanEnd(sv)
	}
}

// Emit records a complete leaf span with explicit timestamps — the form the
// cluster uses for phase and driver charges, whose start/end clocks are known
// exactly at charge time. It returns the span's ID so follow-up events can
// reference it.
func (t *Tracer) Emit(name string, kind Kind, start, end float64, attrs ...Attr) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{ID: t.nextID, Lane: t.lane, Name: name, Kind: kind, Start: start, End: end, Attrs: attrs}
	if n := len(t.stack); n > 0 {
		s.Parent = t.stack[n-1].ID
	}
	t.reg.observe(s)
	obs := t.obs
	sv := *s
	t.mu.Unlock()
	for _, o := range obs {
		o.SpanStart(sv)
		o.SpanEnd(sv)
	}
	return s.ID
}

// Event records an instantaneous event at the current simulated clock, tied
// to the innermost open span.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.EventAt(name, t.now(), -1, attrs...)
}

// EventAt records an event with an explicit timestamp. span names the
// associated span ID; pass -1 to attach to the innermost open span.
func (t *Tracer) EventAt(name string, at float64, span int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if span < 0 {
		span = 0
		if n := len(t.stack); n > 0 {
			span = t.stack[n-1].ID
		}
	}
	e := Event{Span: span, Lane: t.lane, Name: name, Time: at, Attrs: attrs}
	obs := t.obs
	t.mu.Unlock()
	for _, o := range obs {
		o.Event(e)
	}
}

// IterationDone reports one completed EM iteration / refinement round.
func (t *Tracer) IterationDone(it Iteration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	obs := t.obs
	t.mu.Unlock()
	for _, o := range obs {
		o.IterationDone(it)
	}
}
