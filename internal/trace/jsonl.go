package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// jsonAttr is the wire form of an Attr. Int and float values are kept in
// separate fields so the round trip is lossless: encoding/json emits the
// shortest decimal that parses back to the identical float64, and int64s
// never pass through a float.
type jsonAttr struct {
	K string   `json:"k"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
}

func toJSONAttrs(as []Attr) []jsonAttr {
	if len(as) == 0 {
		return nil
	}
	out := make([]jsonAttr, len(as))
	for i, a := range as {
		out[i].K = a.Key
		if a.IsFloat {
			f := a.Float
			out[i].F = &f
		} else {
			v := a.Int
			out[i].I = &v
		}
	}
	return out
}

func fromJSONAttrs(as []jsonAttr) []Attr {
	if len(as) == 0 {
		return nil
	}
	out := make([]Attr, len(as))
	for i, a := range as {
		out[i].Key = a.K
		if a.F != nil {
			out[i].Float = *a.F
			out[i].IsFloat = true
		} else if a.I != nil {
			out[i].Int = *a.I
		}
	}
	return out
}

// jsonLine is one JSONL record; T discriminates span/event/iter.
type jsonLine struct {
	T      string     `json:"t"`
	ID     int        `json:"id,omitempty"`
	Parent int        `json:"parent,omitempty"`
	Span   int        `json:"span,omitempty"`
	Lane   int        `json:"lane,omitempty"`
	Name   string     `json:"name,omitempty"`
	Kind   string     `json:"kind,omitempty"`
	Start  *float64   `json:"start,omitempty"`
	End    *float64   `json:"end,omitempty"`
	Time   *float64   `json:"time,omitempty"`
	Attrs  []jsonAttr `json:"attrs,omitempty"`
	Iter   *Iteration `json:"iter,omitempty"`
}

// JSONLWriter is the streaming sink: one JSON object per line for each
// completed span, event, and iteration, in emission order. A trace written
// to JSONL and re-read with ReadJSONL fingerprints identically to the
// in-memory Collector's trace.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a sink writing to w. Call Flush when the run ends.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

func (j *JSONLWriter) write(l jsonLine) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(l)
}

// SpanStart implements Observer; only completed spans are written.
func (j *JSONLWriter) SpanStart(Span) {}

// SpanEnd implements Observer.
func (j *JSONLWriter) SpanEnd(s Span) {
	start, end := s.Start, s.End
	j.write(jsonLine{T: "span", ID: s.ID, Parent: s.Parent, Lane: s.Lane,
		Name: s.Name, Kind: string(s.Kind), Start: &start, End: &end, Attrs: toJSONAttrs(s.Attrs)})
}

// Event implements Observer.
func (j *JSONLWriter) Event(e Event) {
	at := e.Time
	j.write(jsonLine{T: "event", Span: e.Span, Lane: e.Lane, Name: e.Name, Time: &at, Attrs: toJSONAttrs(e.Attrs)})
}

// IterationDone implements Observer.
func (j *JSONLWriter) IterationDone(it Iteration) {
	j.write(jsonLine{T: "iter", Iter: &it})
}

// Flush drains the buffer and reports the first write error, if any.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// ReadJSONL parses a JSONL trace stream back into a Trace equivalent to the
// one the in-memory Collector would have produced for the same run.
func ReadJSONL(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l jsonLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("trace jsonl line %d: %w", lineNo, err)
		}
		switch l.T {
		case "span":
			s := Span{ID: l.ID, Parent: l.Parent, Lane: l.Lane, Name: l.Name, Kind: Kind(l.Kind), Attrs: fromJSONAttrs(l.Attrs)}
			if l.Start != nil {
				s.Start = *l.Start
			}
			if l.End != nil {
				s.End = *l.End
			}
			tr.Spans = append(tr.Spans, s)
		case "event":
			e := Event{Span: l.Span, Lane: l.Lane, Name: l.Name, Attrs: fromJSONAttrs(l.Attrs)}
			if l.Time != nil {
				e.Time = *l.Time
			}
			tr.Events = append(tr.Events, e)
		case "iter":
			if l.Iter == nil {
				return nil, fmt.Errorf("trace jsonl line %d: iter record without payload", lineNo)
			}
			tr.Iterations = append(tr.Iterations, *l.Iter)
		default:
			return nil, fmt.Errorf("trace jsonl line %d: unknown record type %q", lineNo, l.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
