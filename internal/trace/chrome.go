package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON format, the subset
// understood by chrome://tracing and Perfetto: "X" complete events with
// microsecond timestamps, "i" instants, and "M" metadata records naming the
// process and per-incarnation threads.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func chromeArgs(as []Attr) map[string]any {
	if len(as) == 0 {
		return nil
	}
	out := make(map[string]any, len(as))
	for _, a := range as {
		if a.IsFloat {
			out[a.Key] = a.Float
		} else {
			out[a.Key] = a.Int
		}
	}
	return out
}

// WriteChrome exports the trace in Chrome trace_event format. Simulated
// seconds map to trace microseconds; each driver incarnation gets its own
// thread lane (tid = lane+1) so the rewound clocks of successive
// incarnations after a crash/restore don't overlap on one track.
func WriteChrome(w io.Writer, t *Trace) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "spca simulated cluster"}},
	}}
	lanes := map[int]bool{}
	seeLane := func(lane int) {
		if lanes[lane] {
			return
		}
		lanes[lane] = true
		name := "driver"
		if lane > 0 {
			name = "driver (resume)"
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane + 1,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range t.Spans {
		seeLane(s.Lane)
		dur := (s.End - s.Start) * 1e6
		if dur < 0 {
			dur = 0
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Name, Cat: string(s.Kind), Ph: "X",
			Ts: s.Start * 1e6, Dur: &dur, Pid: 1, Tid: s.Lane + 1,
			Args: chromeArgs(s.Attrs),
		})
	}
	for _, e := range t.Events {
		seeLane(e.Lane)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: e.Name, Cat: "event", Ph: "i",
			Ts: e.Time * 1e6, Pid: 1, Tid: e.Lane + 1, Scope: "t",
			Args: chromeArgs(e.Attrs),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
