package trace

import "sync"

// PhaseMetrics is the per-phase-name aggregate the registry maintains: counts
// and sums over every charge span with that name. Seconds sums the spans'
// exact "seconds" attributes (the cost-model charge), not End-Start
// subtractions, so the totals reproduce the cluster's float accumulation.
type PhaseMetrics struct {
	Name              string
	Count             int64
	Seconds           float64
	RecoverySeconds   float64
	ComputeOps        int64
	ShuffleBytes      int64
	DiskBytes         int64
	MaterializedBytes int64
	Tasks             int64
	Records           int64
	FailedAttempts    int64
	RecomputedOps     int64
	RecoveryDiskBytes int64
	SpeculativeTasks  int64
	StragglerOps      int64
}

// Registry aggregates charge spans per phase name and holds named gauges for
// end-of-run scalars. Aggregation happens inside the Tracer as spans close;
// Snapshot returns phases in first-seen order, which for a deterministic
// trace is itself deterministic.
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*PhaseMetrics
	gOrder []string
	gauges map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*PhaseMetrics{}, gauges: map[string]float64{}}
}

// observe folds one completed charge span (phase/driver kinds) into the
// per-name aggregates. Other kinds are structural and skipped.
func (r *Registry) observe(s *Span) {
	if r == nil || (s.Kind != KindPhase && s.Kind != KindDriver) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[s.Name]
	if m == nil {
		m = &PhaseMetrics{Name: s.Name}
		r.byName[s.Name] = m
		r.order = append(r.order, s.Name)
	}
	m.Count++
	for _, a := range s.Attrs {
		switch a.Key {
		case "seconds":
			m.Seconds += a.Float
		case "recovery_seconds":
			m.RecoverySeconds += a.Float
		case "compute_ops":
			m.ComputeOps += a.Int
		case "shuffle_bytes":
			m.ShuffleBytes += a.Int
		case "disk_bytes":
			m.DiskBytes += a.Int
		case "materialized_bytes":
			m.MaterializedBytes += a.Int
		case "tasks":
			m.Tasks += a.Int
		case "records":
			m.Records += a.Int
		case "failed_attempts":
			m.FailedAttempts += a.Int
		case "recomputed_ops":
			m.RecomputedOps += a.Int
		case "recovery_disk_bytes":
			m.RecoveryDiskBytes += a.Int
		case "speculative_tasks":
			m.SpeculativeTasks += a.Int
		case "straggler_ops":
			m.StragglerOps += a.Int
		}
	}
}

// SetGauge records a named end-of-run scalar (final error, iterations, ...).
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; !ok {
		r.gOrder = append(r.gOrder, name)
	}
	r.gauges[name] = v
}

// Gauge returns a named gauge and whether it was set.
func (r *Registry) Gauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Gauges returns all gauges in first-set order.
func (r *Registry) Gauges() []struct {
	Name  string
	Value float64
} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]struct {
		Name  string
		Value float64
	}, 0, len(r.gOrder))
	for _, n := range r.gOrder {
		out = append(out, struct {
			Name  string
			Value float64
		}{n, r.gauges[n]})
	}
	return out
}

// Snapshot returns the per-phase aggregates in first-seen order.
func (r *Registry) Snapshot() []PhaseMetrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseMetrics, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, *r.byName[n])
	}
	return out
}
