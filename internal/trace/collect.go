package trace

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// Trace is the in-memory record of one run: completed spans in completion
// order (children before parents, charges in emission order — summing charge
// attributes in slice order reproduces the cluster's float accumulation
// bit-for-bit), plus events and iteration stats in arrival order.
type Trace struct {
	Spans      []Span
	Events     []Event
	Iterations []Iteration
}

// Collector is the built-in in-memory sink: an Observer accumulating a Trace.
type Collector struct {
	mu sync.Mutex
	tr Trace
}

// NewCollector returns an empty in-memory sink.
func NewCollector() *Collector { return &Collector{} }

// SpanStart implements Observer; open spans are recorded only at SpanEnd.
func (c *Collector) SpanStart(Span) {}

// SpanEnd implements Observer.
func (c *Collector) SpanEnd(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr.Spans = append(c.tr.Spans, s)
}

// Event implements Observer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr.Events = append(c.tr.Events, e)
}

// IterationDone implements Observer.
func (c *Collector) IterationDone(it Iteration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr.Iterations = append(c.tr.Iterations, it)
}

// Trace returns the collected trace.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.tr
	return &out
}

// Node is a span with its children resolved, for tree walks.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree resolves parent links into a forest, children ordered by span ID.
func (t *Trace) Tree() []*Node {
	nodes := make(map[int]*Node, len(t.Spans))
	for _, s := range t.Spans {
		nodes[s.ID] = &Node{Span: s}
	}
	var roots []*Node
	for _, s := range t.Spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.ID < ns[j].Span.ID })
	}
	order(roots)
	for _, n := range nodes {
		order(n.Children)
	}
	return roots
}

// Walk visits every span of the forest in depth-first span-ID order.
func (t *Trace) Walk(fn func(s Span, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fn(n.Span, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Tree() {
		rec(r, 0)
	}
}

// Find returns all spans with the given name, in completion order.
func (t *Trace) Find(name string) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// FindKind returns all spans of the given kind, in completion order.
func (t *Trace) FindKind(kind Kind) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// FindEvents returns all events with the given name, in arrival order.
func (t *Trace) FindEvents(name string) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Breakdown aggregates the trace's charge spans (the given kinds; defaults to
// KindPhase alone) into per-name totals, first-seen order — the same shape
// the cluster derives from its phase log.
func (t *Trace) Breakdown(kinds ...Kind) []PhaseMetrics {
	if len(kinds) == 0 {
		kinds = []Kind{KindPhase}
	}
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	reg := NewRegistry()
	for i := range t.Spans {
		if want[t.Spans[i].Kind] {
			reg.observe(&t.Spans[i])
		}
	}
	return reg.Snapshot()
}

// Fingerprint returns an FNV-64a hash over the canonical serialization of
// the trace: the span forest in depth-first order (IDs, lanes, names, kinds,
// exact timestamp and attribute bit patterns), then events, then iteration
// stats. Two runs with identical inputs produce identical fingerprints; this
// is the determinism contract the golden trace tests pin.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	attrs := func(as []Attr) {
		u64(uint64(len(as)))
		for _, a := range as {
			str(a.Key)
			if a.IsFloat {
				u64(1)
				f64(a.Float)
			} else {
				u64(0)
				u64(uint64(a.Int))
			}
		}
	}
	t.Walk(func(s Span, depth int) {
		str("span")
		u64(uint64(s.ID))
		u64(uint64(s.Parent))
		u64(uint64(s.Lane))
		u64(uint64(depth))
		str(s.Name)
		str(string(s.Kind))
		f64(s.Start)
		f64(s.End)
		attrs(s.Attrs)
	})
	for _, e := range t.Events {
		str("event")
		u64(uint64(e.Span))
		u64(uint64(e.Lane))
		str(e.Name)
		f64(e.Time)
		attrs(e.Attrs)
	}
	for _, it := range t.Iterations {
		str("iter")
		u64(uint64(it.Iter))
		f64(it.Err)
		f64(it.Accuracy)
		f64(it.SS)
		f64(it.SimSeconds)
		f64(it.Ridge)
		u64(uint64(it.RidgeRetries))
		if it.Rollback {
			u64(1)
		} else {
			u64(0)
		}
	}
	return h.Sum64()
}

// String renders the span forest as an indented outline (debug aid).
func (t *Trace) String() string {
	out := ""
	t.Walk(func(s Span, depth int) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += fmt.Sprintf("%s [%s] %.6g..%.6gs\n", s.Name, s.Kind, s.Start, s.End)
	})
	return out
}
