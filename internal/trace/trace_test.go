package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestNilTracerIsNoOp: every method must be safe on a nil receiver — that is
// the zero-overhead contract all call sites rely on.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.AddObserver(NewCollector())
	tr.SetClock(func() float64 { return 1 })
	tr.SetLane(3)
	tr.Begin("a", KindFit)
	tr.End()
	tr.Emit("b", KindPhase, 0, 1)
	tr.Event("c")
	tr.EventAt("d", 1, -1)
	tr.IterationDone(Iteration{Iter: 1})
	if tr.Registry() != nil {
		t.Fatal("nil tracer returned a registry")
	}
}

func TestSpanNestingAndClock(t *testing.T) {
	clock := 0.0
	col := NewCollector()
	tr := New(col)
	tr.SetClock(func() float64 { return clock })

	tr.Begin("fit", KindFit, I("rows", 10))
	clock = 1
	tr.Begin("iter", KindIteration)
	clock = 2
	tr.Emit("phase", KindPhase, 1.5, 2, F("seconds", 0.5))
	tr.End(F("err", 0.25))
	clock = 3
	tr.End()

	tc := col.Trace()
	if len(tc.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(tc.Spans))
	}
	// Completion order: leaf first, root last.
	if tc.Spans[0].Name != "phase" || tc.Spans[1].Name != "iter" || tc.Spans[2].Name != "fit" {
		t.Fatalf("bad completion order: %s, %s, %s", tc.Spans[0].Name, tc.Spans[1].Name, tc.Spans[2].Name)
	}
	fit, iter, phase := tc.Spans[2], tc.Spans[1], tc.Spans[0]
	if fit.Parent != 0 || iter.Parent != fit.ID || phase.Parent != iter.ID {
		t.Fatalf("bad parentage: fit=%d iter=%d<-%d phase=%d<-%d",
			fit.Parent, iter.ID, iter.Parent, phase.ID, phase.Parent)
	}
	if fit.Start != 0 || fit.End != 3 || iter.Start != 1 || iter.End != 2 {
		t.Fatalf("bad clocks: fit [%v,%v], iter [%v,%v]", fit.Start, fit.End, iter.Start, iter.End)
	}
	if fit.AttrInt("rows") != 10 || iter.AttrFloat("err") != 0.25 {
		t.Fatal("attrs lost")
	}
	tree := tc.Tree()
	if len(tree) != 1 || tree[0].Span.Name != "fit" || len(tree[0].Children) != 1 {
		t.Fatal("Tree() did not rebuild the hierarchy")
	}
}

func TestRegistryAggregation(t *testing.T) {
	tr := New()
	reg := tr.Registry()
	tr.Emit("job/map", KindPhase, 0, 1, F("seconds", 1), I("shuffle_bytes", 100), I("tasks", 4))
	tr.Emit("job/map", KindPhase, 1, 2, F("seconds", 2), I("shuffle_bytes", 50), I("tasks", 4),
		F("recovery_seconds", 0.5), I("failed_attempts", 1))
	tr.Emit("other", KindPhase, 2, 3, F("seconds", 7))
	// Non-phase spans must not pollute the per-phase registry.
	tr.Begin("fit", KindFit)
	tr.End()

	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("%d phase entries, want 2", len(snap))
	}
	m := snap[0]
	if m.Name != "job/map" || m.Count != 2 || m.Seconds != 3 || m.ShuffleBytes != 150 ||
		m.Tasks != 8 || m.RecoverySeconds != 0.5 || m.FailedAttempts != 1 {
		t.Fatalf("bad aggregate: %+v", m)
	}
	if snap[1].Name != "other" || snap[1].Seconds != 7 {
		t.Fatalf("bad second entry: %+v", snap[1])
	}

	reg.SetGauge("final_err", 0.125)
	if v, ok := reg.Gauge("final_err"); !ok || v != 0.125 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
}

func buildSampleTrace() *Trace {
	col := NewCollector()
	tr := New(col)
	clock := 0.0
	tr.SetClock(func() float64 { return clock })
	tr.Begin("fit", KindFit, I("rows", 4))
	tr.Emit("phase-a", KindPhase, 0, 0.5, F("seconds", 0.5), I("tasks", 2))
	tr.EventAt("recovery", 0.5, -1, I("failed_attempts", 1))
	tr.IterationDone(Iteration{Iter: 1, Err: 0.5, SimSeconds: 0.5})
	clock = 1
	tr.SetLane(1)
	tr.Emit("phase-b", KindPhase, 0.5, 1, F("seconds", 0.5))
	tr.SetLane(0)
	tr.End()
	return col.Trace()
}

func TestJSONLRoundTripPreservesFingerprint(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	col := NewCollector()
	tr := New(w, col)
	clock := 0.0
	tr.SetClock(func() float64 { return clock })
	tr.Begin("fit", KindFit)
	tr.Emit("phase", KindPhase, 0, 0.25, F("seconds", 0.25), I("tasks", 1))
	tr.Event("marker", F("recovery_seconds", 0.125))
	tr.IterationDone(Iteration{Iter: 1, Err: 1.0 / 3.0, SimSeconds: 0.25})
	clock = 0.25
	tr.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := col.Trace()
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("round trip changed fingerprint: %#x -> %#x\nwant:\n%s\ngot:\n%s",
			want.Fingerprint(), got.Fingerprint(), want, got)
	}
}

func TestChromeExport(t *testing.T) {
	tc := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tc); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	var out struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var complete, instant, meta int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Name == "phase-a" && (e.Ts != 0 || e.Dur != 0.5e6) {
				t.Errorf("phase-a ts/dur = %v/%v, want 0/5e5 microseconds", e.Ts, e.Dur)
			}
			if e.Name == "phase-b" && e.Tid != 2 {
				t.Errorf("lane-1 span on tid %d, want 2", e.Tid)
			}
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 3 || instant != 1 || meta == 0 {
		t.Fatalf("events: %d complete, %d instant, %d metadata", complete, instant, meta)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := buildSampleTrace().Fingerprint()
	if base != buildSampleTrace().Fingerprint() {
		t.Fatal("identical traces fingerprint differently")
	}
	tc := buildSampleTrace()
	tc.Spans[0].Attrs[0].Float += 1e-15
	if tc.Fingerprint() == base {
		t.Fatal("fingerprint ignored a one-ulp attribute change")
	}
	tc2 := buildSampleTrace()
	tc2.Spans[0].Name = "phase-A"
	if tc2.Fingerprint() == base {
		t.Fatal("fingerprint ignored a span rename")
	}
}

func TestBreakdownFiltersKinds(t *testing.T) {
	col := NewCollector()
	tr := New(col)
	tr.Emit("p", KindPhase, 0, 1, F("seconds", 1))
	tr.Emit("d", KindDriver, 1, 2, F("seconds", 2))
	tc := col.Trace()
	if got := tc.Breakdown(); len(got) != 1 || got[0].Name != "p" {
		t.Fatalf("default Breakdown = %+v, want phases only", got)
	}
	if got := tc.Breakdown(KindPhase, KindDriver); len(got) != 2 {
		t.Fatalf("Breakdown(phase, driver) = %+v, want both", got)
	}
}

func TestFindHelpers(t *testing.T) {
	tc := buildSampleTrace()
	if len(tc.Find("phase-a")) != 1 || len(tc.FindKind(KindPhase)) != 2 {
		t.Fatal("Find/FindKind miscounted")
	}
	if evs := tc.FindEvents("recovery"); len(evs) != 1 || evs[0].Attrs[0].Int != 1 {
		t.Fatal("FindEvents lost the event or its attrs")
	}
}
