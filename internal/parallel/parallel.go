// Package parallel provides the shared goroutine pool used by the dense and
// sparse matrix kernels and the driver-side steps of the PCA algorithms.
//
// The design constraint is bit-reproducibility: every caller partitions its
// index space into contiguous chunks whose results are independent of chunk
// boundaries and scheduling order (each chunk writes only state it owns, and
// per-element floating-point reduction order never crosses a chunk
// boundary). Under that contract a run with the pool enabled is bit-identical
// to a sequential run, which keeps every simulated experiment reproduction
// stable while the real wall-clock drops on multi-core machines.
//
// Real-time parallelism here is orthogonal to the simulated cluster: the
// cost model charges exactly the same operations either way.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker oversubscribes the chunk count for load balancing: slow
// chunks (e.g. the triangular loops of tridiagonalization) do not leave the
// other workers idle.
const chunksPerWorker = 4

var (
	sequential      atomic.Bool
	workersOverride atomic.Int32
)

// SetSequential forces For to run its body inline on the calling goroutine.
// Tests use it to compare parallel runs against a sequential reference; the
// contract is that results are bit-identical either way.
func SetSequential(on bool) { sequential.Store(on) }

// Sequential reports whether the pool is forced sequential.
func Sequential() bool { return sequential.Load() }

// SetWorkers overrides the worker count (0 restores the GOMAXPROCS default).
// Tests use it to exercise chunked execution even on single-core machines.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workersOverride.Store(int32(n))
}

// Workers returns the degree of parallelism For uses.
func Workers() int {
	if n := workersOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Runner is the interface form of For's chunk body. A closure literal passed
// to For escapes to the heap on every call — escape analysis sees it flow
// into the worker goroutines even when execution stays inline — which costs
// the hot kernels one allocation per invocation. Converting a pointer to an
// interface allocates nothing, so kernels that must be allocation-free in
// steady state implement Run on a pooled struct (carrying the would-be
// captures as fields) and dispatch through ForRunner instead.
type Runner interface {
	Run(lo, hi int)
}

// ForRunner is For with the chunk body passed as a Runner instead of a
// closure. Chunking, scheduling, and the bit-reproducibility contract are
// identical to For; the only difference is that the inline fast path performs
// no allocation at the call site.
func ForRunner(n, grain int, r Runner) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	if sequential.Load() || workers == 1 || n <= grain {
		r.Run(0, n)
		return
	}
	chunk := (n + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		r.Run(0, n)
		return
	}
	if chunks < workers {
		workers = chunks
	}
	var next atomic.Int64
	run := func() {
		for {
			if aborted() {
				return
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			r.Run(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// For splits [0, n) into contiguous chunks of at least grain indices and runs
// fn(lo, hi) once per chunk, possibly concurrently. fn must only write state
// owned by its chunk, and the value it computes for an index must not depend
// on the chunk boundaries — then the result is bit-identical to fn(0, n).
//
// Small inputs (n <= grain), a single available worker, or the sequential
// knob all collapse to one inline fn(0, n) call with no goroutine overhead.
// Pick grain so a chunk amortizes scheduling: tens of microseconds of work.
// Note the closure itself still escapes (see Runner); allocation-sensitive
// callers use ForRunner.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	if sequential.Load() || workers == 1 || n <= grain {
		fn(0, n)
		return
	}
	chunk := (n + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		fn(0, n)
		return
	}
	if chunks < workers {
		workers = chunks
	}
	var next atomic.Int64
	run := func() {
		for {
			if aborted() {
				return
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}
