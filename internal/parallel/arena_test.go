package parallel

import (
	"sync"
	"testing"
)

func TestArenaReusesSlices(t *testing.T) {
	var a Arena
	s := a.Floats(64)
	if len(s) != 64 {
		t.Fatalf("len = %d, want 64", len(s))
	}
	s[0] = 42
	a.PutFloats(s)
	r := a.Floats(32)
	if cap(r) < 64 {
		t.Fatalf("expected recycled slice, got cap %d", cap(r))
	}
	z := a.FloatsZeroed(32)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("FloatsZeroed[%d] = %v, want 0", i, v)
		}
	}
	i1 := a.Ints(16)
	a.PutInts(i1)
	i2 := a.Ints(8)
	if cap(i2) < 16 {
		t.Fatalf("expected recycled int slice, got cap %d", cap(i2))
	}
	if n := testing.AllocsPerRun(100, func() {
		f := a.Floats(64)
		a.PutFloats(f)
		k := a.Ints(16)
		a.PutInts(k)
	}); n != 0 {
		t.Fatalf("warm arena allocated %v per run, want 0", n)
	}
}

func TestPoolNeverDropsAndIsConcurrencySafe(t *testing.T) {
	made := 0
	p := NewPool(func() *[]float64 {
		made++
		s := make([]float64, 8)
		return &s
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v := p.Get()
				p.Put(v)
			}
		}()
	}
	wg.Wait()
	// Drain and refill: at most 8 concurrent holders ever existed, and the
	// pool must hand those same values back without making new ones.
	before := made
	var held []*[]float64
	for i := 0; i < before; i++ {
		held = append(held, p.Get())
	}
	if made != before {
		t.Fatalf("draining the pool made %d new values", made-before)
	}
	for _, v := range held {
		p.Put(v)
	}
}

func TestForWorkerMatchesForAndBoundsWorkerIndex(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 3} {
		SetWorkers(workers)
		n := 1000
		got := make([]int, n)
		ForWorker(n, 10, func(w, lo, hi int) {
			if w < 0 || w >= workers {
				t.Errorf("worker index %d out of [0,%d)", w, workers)
			}
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range got {
			if got[i] != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], i*i)
			}
		}
	}
}
