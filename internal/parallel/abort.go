package parallel

import "sync/atomic"

// Hard abort for the worker pool. This is deliberately NOT the cooperative
// cancellation path: the engines poll cluster.Interrupted at phase and
// iteration boundaries and unwind with typed errors, leaving every kernel
// result they keep fully computed. The abort flag below is a last-resort
// stop for a process that is exiting anyway (cmd/spca on a second signal):
// once tripped, For/ForRunner/ForWorker stop claiming chunks, so a large
// kernel returns promptly with its output INCOMPLETE. Callers must not use
// partial results — the only sane follow-up is to unwind and exit.
//
// The flag is process-global, which is why the library never trips it on
// behalf of a context: two concurrent fits share the pool, and a flag
// tripped for one would silently corrupt the other. Only an owner of the
// whole process (a main function) may install one.

var abortFlag atomic.Pointer[atomic.Bool]

// SetAbort installs the process-wide abort flag consulted by the chunk-claim
// loops. Pass nil to remove it. The flag's owner trips it with Store(true);
// clearing it (Store(false)) makes the pool fully reusable — no pool state
// survives an aborted run.
func SetAbort(flag *atomic.Bool) { abortFlag.Store(flag) }

// aborted reports whether the installed abort flag is tripped. Two atomic
// loads, no allocation — cheap enough for every chunk claim.
func aborted() bool {
	f := abortFlag.Load()
	return f != nil && f.Load()
}

// Aborted reports whether the pool is currently refusing work. Exposed for
// callers that want to skip setup when an abort is already in flight.
func Aborted() bool { return aborted() }
