package parallel

import (
	"sync/atomic"
	"testing"
)

// countRunner counts processed indices and trips the abort flag from inside
// the first chunk it runs, like a worker observing a dying process.
type countRunner struct {
	processed *atomic.Int64
	flag      *atomic.Bool
}

func (r *countRunner) Run(lo, hi int) {
	r.processed.Add(int64(hi - lo))
	r.flag.Store(true)
}

// TestAbortStopsChunkedRunsPromptly proves a tripped abort flag makes a
// large chunked run exit early (no further chunks are claimed) and that the
// pool is fully reusable once the flag clears: the follow-up run covers
// every index exactly once.
func TestAbortStopsChunkedRunsPromptly(t *testing.T) {
	SetWorkers(4)
	t.Cleanup(func() { SetWorkers(0); SetAbort(nil) })

	var flag atomic.Bool
	SetAbort(&flag)
	const n = 1 << 20

	// Each worker trips the flag inside its first chunk, so at most one
	// chunk per worker runs — far fewer than the full chunk count.
	var processed atomic.Int64
	For(n, 1, func(lo, hi int) {
		processed.Add(int64(hi - lo))
		flag.Store(true)
	})
	if got := processed.Load(); got >= n {
		t.Fatalf("aborted For processed all %d indices; want an early exit", got)
	}

	flag.Store(false)
	var full atomic.Int64
	For(n, 1, func(lo, hi int) { full.Add(int64(hi - lo)) })
	if got := full.Load(); got != int64(n) {
		t.Fatalf("post-abort For processed %d of %d indices; pool not reusable", got, n)
	}
}

func TestAbortStopsForRunnerAndForWorker(t *testing.T) {
	SetWorkers(4)
	t.Cleanup(func() { SetWorkers(0); SetAbort(nil) })

	var flag atomic.Bool
	SetAbort(&flag)
	const n = 1 << 20

	var processed atomic.Int64
	ForRunner(n, 1, &countRunner{processed: &processed, flag: &flag})
	if got := processed.Load(); got >= n {
		t.Fatalf("aborted ForRunner processed all %d indices", got)
	}

	flag.Store(false)
	processed.Store(0)
	ForWorker(n, 1, func(w, lo, hi int) {
		processed.Add(int64(hi - lo))
		flag.Store(true)
	})
	if got := processed.Load(); got >= n {
		t.Fatalf("aborted ForWorker processed all %d indices", got)
	}

	flag.Store(false)
	processed.Store(0)
	ForWorker(n, 1, func(w, lo, hi int) { processed.Add(int64(hi - lo)) })
	if got := processed.Load(); got != int64(n) {
		t.Fatalf("post-abort ForWorker processed %d of %d indices; pool not reusable", got, n)
	}
}
