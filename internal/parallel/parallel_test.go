package parallel

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4) // force chunked execution even on one core
	f := func(n uint16, grain uint8) bool {
		size := int(n % 5000)
		seen := make([]int32, size)
		var mu sync.Mutex
		For(size, int(grain), func(lo, hi int) {
			if lo < 0 || hi > size || lo >= hi {
				t.Errorf("bad chunk [%d,%d) of %d", lo, hi, size)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Errorf("index %d visited %d times", i, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For called fn for empty range")
	}
}

func TestSequentialKnobRunsInline(t *testing.T) {
	SetSequential(true)
	defer SetSequential(false)
	SetWorkers(8)
	defer SetWorkers(0)
	calls := 0
	For(10000, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10000 {
			t.Fatalf("sequential mode chunked: [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential mode made %d calls", calls)
	}
	if !Sequential() {
		t.Fatal("Sequential() should report true")
	}
}

func TestGrainBoundsChunkSize(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	For(1000, 300, func(lo, hi int) {
		if hi-lo < 300 && hi != 1000 {
			t.Fatalf("chunk [%d,%d) smaller than grain", lo, hi)
		}
	})
}

func TestWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d with override cleared", Workers())
	}
}
