package parallel

import (
	"sync"
	"sync/atomic"
)

// This file is the scratch-arena layer: deterministic, reusable scratch
// memory for the hot per-row/per-task loops of the EM algorithms. Unlike
// sync.Pool, nothing here is ever dropped by the runtime and there is no
// per-P magic, so steady-state allocation counts are exactly zero and reuse
// behaves identically run to run. Scratch contents are UNSPECIFIED on Get;
// callers must fully initialize what they read, which is also what keeps
// reuse bit-compatible with freshly allocated (zeroed) memory.

// Arena hands out reusable []float64 and []int scratch slices, bucketed by
// capacity. It is NOT safe for concurrent use; give each worker (or each
// task) its own Arena, or guard it externally. The intended lifecycle is:
// Get at the start of a unit of work, Put when the slice is dead, reuse
// across rows and across EM iterations for the lifetime of a fit.
type Arena struct {
	floats [][]float64
	ints   [][]int
}

// Floats returns a length-n slice with unspecified contents.
func (a *Arena) Floats(n int) []float64 {
	for i := len(a.floats) - 1; i >= 0; i-- {
		if s := a.floats[i]; cap(s) >= n {
			a.floats[i] = a.floats[len(a.floats)-1]
			a.floats = a.floats[:len(a.floats)-1]
			return s[:n]
		}
	}
	return make([]float64, n)
}

// FloatsZeroed returns a length-n zeroed slice.
func (a *Arena) FloatsZeroed(n int) []float64 {
	s := a.Floats(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutFloats returns a slice obtained from Floats to the arena.
func (a *Arena) PutFloats(s []float64) {
	if cap(s) > 0 {
		a.floats = append(a.floats, s)
	}
}

// Ints returns a length-n slice with unspecified contents.
func (a *Arena) Ints(n int) []int {
	for i := len(a.ints) - 1; i >= 0; i-- {
		if s := a.ints[i]; cap(s) >= n {
			a.ints[i] = a.ints[len(a.ints)-1]
			a.ints = a.ints[:len(a.ints)-1]
			return s[:n]
		}
	}
	return make([]int, n)
}

// PutInts returns a slice obtained from Ints to the arena.
func (a *Arena) PutInts(s []int) {
	if cap(s) > 0 {
		a.ints = append(a.ints, s)
	}
}

// Pool is a mutex-guarded free list of scratch values, used to recycle
// per-task mapper/partition scratch across EM iterations. Get never returns
// a value to two callers at once and Put never discards, so after the first
// iteration warms the pool, a fit's steady state performs no pool-related
// allocation. Values come back with whatever state their last user left;
// users must re-initialize before reading.
type Pool[T any] struct {
	mu   sync.Mutex
	mk   func() T
	free []T
}

// NewPool returns a pool whose Get falls back to mk when empty.
func NewPool[T any](mk func() T) *Pool[T] { return &Pool[T]{mk: mk} }

// Get pops a free value or makes a new one.
func (p *Pool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return p.mk()
}

// Put returns a value to the pool.
func (p *Pool[T]) Put(v T) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// ForWorker is For with the executing worker's index (0 <= w < Workers())
// passed to fn, so fn can index per-worker scratch without synchronization.
// The same bit-reproducibility contract as For applies; in particular the
// values fn computes must not depend on which worker ran the chunk, which
// holds whenever per-worker scratch is fully initialized before it is read.
func ForWorker(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	if sequential.Load() || workers == 1 || n <= grain {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	if chunks < workers {
		workers = chunks
	}
	var next atomic.Int64
	run := func(w int) {
		for {
			if aborted() {
				return
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(w, lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(i)
	}
	run(0)
	wg.Wait()
}
