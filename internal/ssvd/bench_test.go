package ssvd

// Real-CPU benchmark of the Mahout-PCA baseline's fit path, mirroring the
// ppca and rsvd fit benchmarks: one sketch round, no power iterations
// (Mahout's default), on a Tweets-like sparse matrix. Feeds the committed
// BENCH_*.json baseline via `make bench-json` so regressions in the
// baseline engine are caught alongside the sPCA paths.

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
)

func BenchmarkFitSSVD(b *testing.B) {
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindTweets, Rows: 2000, Cols: 500, Seed: 1,
	})
	rows := dataset.Rows(y)
	opt := DefaultOptions(10)
	opt.MaxRounds = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
		if _, err := FitMapReduce(eng, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}
