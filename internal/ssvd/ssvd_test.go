package ssvd

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
)

func testEngine() *mapred.Engine {
	return mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
}

func plantedData(n, dims, rank int, seed uint64) (*matrix.Sparse, []matrix.SparseVector) {
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: n, Cols: dims, Rank: rank, Seed: seed,
	})
	return y, dataset.Rows(y)
}

func TestSSVDRecoversPlantedSubspace(t *testing.T) {
	y, rows := plantedData(200, 50, 4, 31)
	opt := DefaultOptions(4)
	opt.PowerIterations = 3
	opt.MaxRounds = 1
	res, err := FitMapReduce(testEngine(), rows, 50, opt)
	if err != nil {
		t.Fatal(err)
	}
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 4)
	if gap := matrix.SubspaceGap(res.Components, v); gap > 0.01 {
		t.Fatalf("SSVD subspace gap %v", gap)
	}
	// Singular values sorted descending.
	for i := 1; i < len(res.Singular); i++ {
		if res.Singular[i] > res.Singular[i-1] {
			t.Fatalf("singular values unsorted: %v", res.Singular)
		}
	}
}

func TestSSVDValidation(t *testing.T) {
	_, rows := plantedData(20, 10, 2, 32)
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(11)); err == nil {
		t.Fatal("expected error for d > D")
	}
	if _, err := FitMapReduce(testEngine(), nil, 10, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSSVDPowerIterationsImproveAccuracy(t *testing.T) {
	// Noisy data where the sketch alone is rough: a run with power
	// iterations must beat the plain q=0 run.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 500, Cols: 200, Seed: 33})
	rows := dataset.Rows(y)
	_ = y
	base := DefaultOptions(5)
	base.Oversample = 2 // tight sketch so refinement matters
	base.MaxRounds = 1
	plain, err := FitMapReduce(testEngine(), rows, 200, base)
	if err != nil {
		t.Fatal(err)
	}
	refined := base
	refined.PowerIterations = 4
	power, err := FitMapReduce(testEngine(), rows, 200, refined)
	if err != nil {
		t.Fatal(err)
	}
	if power.History[0].Err > plain.History[0].Err+1e-9 {
		t.Fatalf("power iterations made the error worse: %v vs %v",
			power.History[0].Err, plain.History[0].Err)
	}
}

func TestSSVDRoundsNeverWorsenError(t *testing.T) {
	// Best-of-rounds: the recorded error is non-increasing across rounds.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 400, Cols: 150, Seed: 38})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxRounds = 5
	res, err := FitMapReduce(testEngine(), rows, 150, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 5 {
		t.Fatalf("expected 5 rounds, got %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Err > res.History[i-1].Err+1e-12 {
			t.Fatalf("best-of-rounds error increased: %v", res.History)
		}
	}
}

func TestSSVDTargetAccuracyStops(t *testing.T) {
	y, rows := plantedData(150, 40, 3, 34)
	opt := DefaultOptions(3)
	opt.PowerIterations = 8
	opt.MaxRounds = 8
	opt.IdealError = idealErrorFor(y, 3)
	opt.TargetAccuracy = 0.95
	res, err := FitMapReduce(testEngine(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("easy planted data should converge fast, took %d rounds", res.Iterations)
	}
	if res.History[len(res.History)-1].Accuracy < 0.95 {
		t.Fatalf("final accuracy %v", res.History[len(res.History)-1].Accuracy)
	}
}

// idealErrorFor computes the exact rank-d PCA error with the same sampled
// metric the fit uses.
func idealErrorFor(y *matrix.Sparse, d int) float64 {
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), d)
	return newReconScratch(y.C, d).reconstructionError(y, mean, v, sampleIdx(y.R, 256, 42))
}

func TestSSVDGeneratesMoreShuffleThanItsInput(t *testing.T) {
	// The defining property of Mahout-PCA in the paper: intermediate data
	// far exceeds the input size.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 800, Cols: 300, Seed: 35})
	rows := dataset.Rows(y)
	eng := testEngine()
	opt := DefaultOptions(10)
	opt.PowerIterations = 2
	opt.MaxRounds = 1
	if _, err := FitMapReduce(eng, rows, 300, opt); err != nil {
		t.Fatal(err)
	}
	inputBytes := mapred.BytesOfSparse(y)
	if sh := eng.Cluster.Metrics().ShuffleBytes; sh < 5*inputBytes {
		t.Fatalf("Mahout-style SSVD should shuffle >> input: %d vs input %d", sh, inputBytes)
	}
}

func TestSSVDDeterministic(t *testing.T) {
	_, rows := plantedData(100, 30, 3, 36)
	opt := DefaultOptions(3)
	opt.PowerIterations = 1
	opt.MaxRounds = 2
	a, err := FitMapReduce(testEngine(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitMapReduce(testEngine(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Components.MaxAbsDiff(b.Components) != 0 {
		t.Fatal("SSVD not deterministic")
	}
}

func TestSSVDOversampleClamped(t *testing.T) {
	// k = d + oversample must clamp to dims and n without failing.
	_, rows := plantedData(20, 8, 2, 37)
	opt := DefaultOptions(2)
	opt.Oversample = 100
	opt.PowerIterations = 1
	opt.MaxRounds = 1
	res, err := FitMapReduce(testEngine(), rows, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components.C != 2 || res.Components.R != 8 {
		t.Fatalf("components dims %dx%d", res.Components.R, res.Components.C)
	}
}
