// Package ssvd implements the Mahout-PCA baseline: stochastic SVD (Halko's
// randomized method, §2.3) with Mahout's "PCA option" — the mean is stored
// separately from the sparse input and propagated through the matrix
// operations. The pipeline runs as MapReduce jobs on internal/mapred with
// Mahout's communication pattern: the projected matrix Y·Ω and the
// orthonormal basis Q are fully materialized between jobs, and the Bt job's
// mappers emit one partial block per input row with no in-mapper combining —
// exactly the behaviour that made Mahout-PCA's mappers produce terabytes of
// intermediate data in the paper's measurements (§5.2).
package ssvd

import (
	"errors"
	"fmt"
	"math"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// Options configures a Mahout-PCA-style stochastic SVD run.
type Options struct {
	// Components is d, the number of principal components.
	Components int
	// Oversample adds extra random projections for accuracy (Halko's p).
	// Default 15 (Mahout's default ballpark).
	Oversample int
	// PowerIterations is the number of power-iteration refinements per
	// round (Mahout's -q flag). Mahout defaults to zero, which is why its
	// accuracy plateaus in the paper's Figures 4-5.
	PowerIterations int
	// MaxRounds bounds how many times the randomized sketch is re-run.
	// §2.3: "accuracy can be improved through running the randomization
	// step multiple times" — each round redraws Ω, runs the full pipeline,
	// and keeps the best components seen so far.
	MaxRounds int
	// TargetAccuracy stops re-running once this fraction of ideal accuracy
	// is reached (requires IdealError).
	TargetAccuracy float64
	// IdealError is the exact rank-d PCA error on the sampled rows.
	IdealError float64
	// SampleRows bounds the error-metric sample (default 256).
	SampleRows int
	// Seed drives the random test matrices Ω.
	Seed uint64
	// Tracer, when non-nil, receives deterministic spans for the fit, each
	// refinement round, and every job/phase charge. Nil disables tracing.
	Tracer *trace.Tracer
}

// DefaultOptions mirrors the paper's Mahout-PCA configuration: Mahout's
// default of zero power iterations, refined by re-running the sketch.
func DefaultOptions(d int) Options {
	return Options{
		Components:      d,
		Oversample:      15,
		PowerIterations: 0,
		MaxRounds:       10,
		SampleRows:      256,
		Seed:            42,
	}
}

// IterationStat records accuracy after each refinement round.
type IterationStat struct {
	Iter       int
	Err        float64
	Accuracy   float64
	SimSeconds float64
}

// Result is the output of a stochastic-SVD PCA run.
type Result struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Singular holds the corresponding singular values of the centered data.
	Singular []float64
	// Iterations counts refinement rounds (initial pass = 1).
	Iterations int
	History    []IterationStat
	Metrics    cluster.Metrics
	// Phases is the per-phase cost breakdown aggregated from the phase log.
	Phases []cluster.PhaseSummary
}

// FitMapReduce runs the SSVD-PCA pipeline on the MapReduce engine.
func FitMapReduce(eng *mapred.Engine, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if opt.Components <= 0 {
		return nil, errors.New("ssvd: Components must be positive")
	}
	if len(rows) == 0 {
		return nil, errors.New("ssvd: empty input")
	}
	if opt.Components > dims {
		return nil, fmt.Errorf("ssvd: Components %d exceeds dimensionality %d", opt.Components, dims)
	}
	cl := eng.Cluster
	tr := opt.Tracer
	if tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitSSVD", trace.KindFit,
			trace.I("rows", int64(len(rows))), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)))
		defer tr.End()
	}
	n := len(rows)
	k := opt.Components + opt.Oversample
	if k > dims {
		k = dims
	}
	if k > n {
		k = n
	}

	// Mahout's PCA option: compute the mean but keep it separate.
	mean, err := meanPass(eng, rows, dims)
	if err != nil {
		return nil, err
	}

	sample := sampleIdx(n, opt.sampleRows(), opt.Seed)
	y := sparseFromRows(rows, dims)
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1
	}
	// The indexed-row input and the error-metric buffers are built once per
	// fit and reused by every projection/Bt job and every round's metric —
	// the per-round jobs themselves keep Mahout's allocating emission pattern
	// on purpose (that cost model is what the baseline measures).
	indexed := make([]indexedRow, len(rows))
	for i, r := range rows {
		indexed[i] = indexedRow{idx: i, row: r}
	}
	recon := newReconScratch(dims, opt.Components)

	res := &Result{}
	bestErr := math.Inf(1)
	for round := 1; round <= maxRounds; round++ {
		// Round-boundary poll: the jobs inside the round poll on their own
		// (via mapred.Run), but a cancel landing between rounds should not
		// start the next sketch.
		if cause := cl.Interrupted(); cause != nil {
			return nil, fmt.Errorf("ssvd: round %d: %w", round, cause)
		}
		// The round body runs in a closure so the round span closes on every
		// exit path (job error or normal completion).
		stop, err := func() (bool, error) {
			if tr != nil {
				tr.Begin("round", trace.KindIteration, trace.I("round", int64(round)))
				defer tr.End()
			}
			// Ω: a fresh D x k Gaussian test matrix per round, broadcast to all
			// mappers. (Mahout cannot use sPCA's smart-guess trick — its random
			// matrix would need as many rows as the input, §5.2.)
			omega := matrix.NormRnd(matrix.NewRNG(matrix.DeriveSeed(opt.Seed, "ssvd/omega", uint64(round))), dims, k)
			broadcastBytes(cl, "ssvd/omega", mapred.BytesOfDense(omega))

			// Q job: project and orthonormalize. The projected matrix (N x k)
			// is materialized to HDFS, then QR'd blockwise (one charged phase).
			proj, err := projectJob(eng, "QJob", indexed, mean, omega)
			if err != nil {
				return false, err
			}
			q := qrPhase(cl, proj)

			// Optional power iterations (Mahout -q): Q ← QR(Yc·(YcᵀQ)).
			var bt *matrix.Dense
			for p := 0; p < opt.PowerIterations; p++ {
				bt, err = btJob(eng, indexed, dims, mean, q)
				if err != nil {
					return false, err
				}
				broadcastBytes(cl, "ssvd/bt", mapred.BytesOfDense(bt))
				proj, err = projectJob(eng, fmt.Sprintf("PowerJob-%d", p), indexed, mean, bt)
				if err != nil {
					return false, err
				}
				q = qrPhase(cl, proj)
			}

			// Bt job: Bt = Ycᵀ·Q (D x k), Mahout-style per-row emission.
			bt, err = btJob(eng, indexed, dims, mean, q)
			if err != nil {
				return false, err
			}
			// Small SVD of Bt on the driver: PCs are Bt's left singular vectors.
			w, s, _ := matrix.TopSVD(bt, opt.Components)
			cl.AddDriverCompute(int64(dims) * int64(k) * int64(k))

			// Keep the best-of-rounds components (§2.3's accuracy/compute trade).
			e := recon.reconstructionError(y, mean, w, sample)
			if e < bestErr {
				bestErr = e
				res.Components = w
				res.Singular = s
			}
			acc := accuracyOf(opt, bestErr)
			stat := IterationStat{
				Iter: round, Err: bestErr, Accuracy: acc, SimSeconds: cl.Metrics().SimSeconds,
			}
			res.History = append(res.History, stat)
			if tr != nil {
				tr.IterationDone(trace.Iteration{
					Iter: stat.Iter, Err: stat.Err, Accuracy: stat.Accuracy, SimSeconds: stat.SimSeconds,
				})
			}
			return opt.TargetAccuracy > 0 && acc >= opt.TargetAccuracy, nil
		}()
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}
	res.Iterations = len(res.History)
	res.Metrics = cl.Metrics()
	res.Phases = cluster.Summarize(cl.PhaseLog(), cl.Config())
	return res, nil
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return 256
	}
	return o.SampleRows
}

// accuracyOf converts an error into a fraction of ideal accuracy
// (IdealError/err, matching the sPCA metric so traces are comparable).
func accuracyOf(o Options, err float64) float64 {
	if o.IdealError <= 0 {
		return 0
	}
	if err <= o.IdealError {
		return 1
	}
	return o.IdealError / err
}

func broadcastBytes(cl *cluster.Cluster, name string, bytes int64) {
	cl.RunPhase(cluster.PhaseStats{
		Name:         name,
		ShuffleBytes: bytes * int64(cl.Config().Nodes),
	})
}

// meanPass computes column means with a small job (same shape as sPCA's).
func meanPass(eng *mapred.Engine, rows []matrix.SparseVector, dims int) ([]float64, error) {
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "ssvd-mean",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &meanMapper{partial: map[int]float64{}}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return nil, err
	}
	count := out[-1]
	if count == 0 {
		return nil, errors.New("ssvd: mean job saw no rows")
	}
	mean := make([]float64, dims)
	for j, v := range out {
		if j >= 0 {
			mean[j] = v / count
		}
	}
	return mean, nil
}

type meanMapper struct {
	partial map[int]float64
	count   float64
}

func (m *meanMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	for k, j := range row.Indices {
		m.partial[j] += row.Values[k]
	}
	m.count++
	out.AddOps(int64(row.NNZ()))
}

func (m *meanMapper) Cleanup(out mapred.Emitter[int, float64]) {
	for j, v := range m.partial {
		out.Emit(j, v)
	}
	out.Emit(-1, m.count)
}

// projectJob computes P = Yc·B for an in-memory D x k matrix B with mean
// propagation, materializing the full N x k result as job output — the
// intermediate-data pattern of Mahout's Q job.
func projectJob(eng *mapred.Engine, name string, indexed []indexedRow, mean []float64, b *matrix.Dense) (*matrix.Dense, error) {
	k := b.C
	// Ym·B, subtracted from every projected row (mean propagation).
	mb := make([]float64, k)
	for j, mj := range mean {
		if mj != 0 {
			matrix.AXPY(mj, b.Row(j), mb)
		}
	}
	job := mapred.Job[indexedRow, int, []float64, []float64]{
		Name: name,
		NewMapper: func(int) mapred.Mapper[indexedRow, int, []float64] {
			return mapred.MapperFunc[indexedRow, int, []float64](
				func(rec indexedRow, out mapred.Emitter[int, []float64]) {
					p := make([]float64, k)
					for t, j := range rec.row.Indices {
						matrix.AXPY(rec.row.Values[t], b.Row(j), p)
					}
					matrix.AXPY(-1, mb, p)
					out.Emit(rec.idx, p)
					out.AddOps(int64(rec.row.NNZ()*k + k))
				})
		},
		Reduce:      func(_ int, vs [][]float64, _ mapred.Ops) []float64 { return vs[0] },
		InputBytes:  func(r indexedRow) int64 { return mapred.BytesOfSparseVec(r.row) },
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	out, err := mapred.Run(eng, job, indexed)
	if err != nil {
		return nil, err
	}
	p := matrix.NewDense(len(indexed), k)
	for i := 0; i < len(indexed); i++ {
		v, ok := out[i]
		if !ok {
			return nil, fmt.Errorf("ssvd: %s lost row %d", name, i)
		}
		copy(p.Row(i), v)
	}
	return p, nil
}

type indexedRow struct {
	idx int
	row matrix.SparseVector
}

// qrPhase orthonormalizes the materialized projection. Mahout performs a
// distributed blockwise QR; we run the real QR on the driver's copy and
// charge the distributed cost: O(N·k²) compute plus a full write+read of Q.
func qrPhase(cl *cluster.Cluster, p *matrix.Dense) *matrix.Dense {
	q, _ := matrix.QR(p)
	nk := int64(p.R) * int64(p.C) * 8
	cl.RunPhase(cluster.PhaseStats{
		Name:              "ssvd/qr",
		ComputeOps:        int64(p.R) * int64(p.C) * int64(p.C) * 2,
		DiskBytes:         2 * nk, // write Q, read it back in the next job
		MaterializedBytes: nk,     // the N x k Q matrix — Mahout's big intermediate
		Tasks:             int64(cl.TotalCores()),
	})
	return q
}

// btJob computes Bt = Ycᵀ·Q (D x k). Faithful to Mahout's Bt job, each
// mapper emits one k-vector per non-zero of every row with NO in-mapper
// combining — the combiners downstream drown in mapper output, which is the
// scalability cliff the paper measured (4 TB of mapper output on Tweets).
func btJob(eng *mapred.Engine, indexed []indexedRow, dims int, mean []float64, q *matrix.Dense) (*matrix.Dense, error) {
	k := q.C
	job := mapred.Job[indexedRow, int, []float64, []float64]{
		Name: "BtJob",
		NewMapper: func(int) mapred.Mapper[indexedRow, int, []float64] {
			return mapred.MapperFunc[indexedRow, int, []float64](
				func(rec indexedRow, out mapred.Emitter[int, []float64]) {
					qi := q.Row(rec.idx)
					for t, j := range rec.row.Indices {
						part := make([]float64, k)
						matrix.AXPY(rec.row.Values[t], qi, part)
						out.Emit(j, part)
					}
					out.AddOps(int64(rec.row.NNZ() * k))
				})
		},
		Reduce: func(_ int, vs [][]float64, o mapred.Ops) []float64 {
			sum := make([]float64, k)
			for _, v := range vs {
				matrix.AXPY(1, v, sum)
				o.AddOps(int64(k))
			}
			return sum
		},
		InputBytes: func(r indexedRow) int64 {
			return mapred.BytesOfSparseVec(r.row) + int64(k)*8 // reads Y and Q
		},
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	out, err := mapred.Run(eng, job, indexed)
	if err != nil {
		return nil, err
	}
	// Mean propagation: Bt = Yᵀ·Q - Ym ⊗ colSum(Q).
	colSum := make([]float64, k)
	for i := 0; i < q.R; i++ {
		matrix.AXPY(1, q.Row(i), colSum)
	}
	bt := matrix.NewDense(dims, k)
	for j, v := range out {
		copy(bt.Row(j), v)
	}
	for j, mj := range mean {
		if mj != 0 {
			matrix.AXPY(-mj, colSum, bt.Row(j))
		}
	}
	eng.Cluster.AddDriverCompute(int64(dims) * int64(k))
	return bt, nil
}

// reconScratch holds the error-metric buffers, allocated once per fit and
// reused by every round's reconstructionError call.
type reconScratch struct {
	xi, wm, tNum, tDen []float64
}

func newReconScratch(dims, d int) *reconScratch {
	return &reconScratch{
		xi:   make([]float64, d),
		wm:   make([]float64, d),
		tNum: make([]float64, dims),
		tDen: make([]float64, dims),
	}
}

// reconstructionError mirrors the sPCA metric: sampled relative 1-norm of
// Y - ((Yc·W)·Wᵀ + Ym) for orthonormal W.
func (rs *reconScratch) reconstructionError(y *matrix.Sparse, mean []float64, w *matrix.Dense, rows []int) float64 {
	var num, den float64
	xi := rs.xi[:w.C]
	wm := w.MulVecTInto(mean, rs.wm[:w.C])
	tNum, tDen := rs.tNum, rs.tDen
	for _, i := range rows {
		row := y.Row(i)
		for t := range xi {
			xi[t] = -wm[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], w.Row(j), xi)
		}
		matrix.ReconTerms(row, mean, w, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func sampleIdx(n, want int, seed uint64) []int {
	if want >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	perm := matrix.NewRNG(matrix.DeriveSeed(seed, "sample", 0)).Perm(n)
	idx := perm[:want]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sparseFromRows(rows []matrix.SparseVector, dims int) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for _, r := range rows {
		b.AddRow(r.Indices, r.Values)
	}
	return b.Build()
}
