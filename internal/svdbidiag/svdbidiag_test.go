package svdbidiag

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
)

func testEngine() *mapred.Engine {
	return mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
}

func plantedData(n, dims, rank int, seed uint64) (*matrix.Sparse, []matrix.SparseVector) {
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: n, Cols: dims, Rank: rank, Seed: seed,
	})
	return y, dataset.Rows(y)
}

func TestSVDBidiagMatchesExactPCA(t *testing.T) {
	y, rows := plantedData(300, 40, 4, 51)
	res, err := FitMapReduce(testEngine(), rows, 40, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	mean := y.ColMeans()
	u, s, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 4)
	_ = u
	if gap := matrix.SubspaceGap(res.Components, v); gap > 1e-8 {
		t.Fatalf("SVD-Bidiag subspace gap %v", gap)
	}
	// TSQR must preserve singular values exactly (R'R = Yc'Yc).
	for i := range res.Singular {
		if d := res.Singular[i] - s[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("singular value %d: %v vs exact %v", i, res.Singular[i], s[i])
		}
	}
	if res.Err <= 0 || res.Err > 1 {
		t.Fatalf("err %v out of range", res.Err)
	}
}

func TestSVDBidiagValidation(t *testing.T) {
	_, rows := plantedData(50, 10, 2, 52)
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(11)); err == nil {
		t.Fatal("expected error for d > D")
	}
	if _, err := FitMapReduce(testEngine(), nil, 10, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// rows < cols is rejected (thin QR undefined).
	_, wide := plantedData(5, 10, 2, 53)
	if _, err := FitMapReduce(testEngine(), wide, 10, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for rows < cols")
	}
}

func TestSVDBidiagIntermediateQuadraticInD(t *testing.T) {
	// The paper's complexity: step-2/3 intermediate data is O(D²), so the
	// total intermediate grows superlinearly in D at fixed N.
	inter := map[int]int64{}
	for _, dims := range []int{30, 60} {
		_, rows := plantedData(200, dims, 4, 54)
		eng := testEngine()
		if _, err := FitMapReduce(eng, rows, dims, DefaultOptions(4)); err != nil {
			t.Fatal(err)
		}
		inter[dims] = eng.Cluster.Metrics().MaterializedBytes
	}
	if ratio := float64(inter[60]) / float64(inter[30]); ratio < 2.2 {
		t.Fatalf("intermediate data should grow superlinearly with D: %v", inter)
	}
}

func TestSVDBidiagComputeQuadraticInD(t *testing.T) {
	// Time complexity O(ND² + D³): doubling D should ~quadruple map-side ops.
	ops := map[int]int64{}
	for _, dims := range []int{30, 60} {
		_, rows := plantedData(300, dims, 4, 55)
		eng := testEngine()
		if _, err := FitMapReduce(eng, rows, dims, DefaultOptions(4)); err != nil {
			t.Fatal(err)
		}
		ops[dims] = eng.Cluster.Metrics().ComputeOps
	}
	if ratio := float64(ops[60]) / float64(ops[30]); ratio < 3 {
		t.Fatalf("ops should grow ~quadratically with D: %v (ratio %.2f)", ops, ratio)
	}
}

func TestSVDBidiagDeterministic(t *testing.T) {
	_, rows := plantedData(150, 25, 3, 56)
	a, err := FitMapReduce(testEngine(), rows, 25, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitMapReduce(testEngine(), rows, 25, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Components.MaxAbsDiff(b.Components) != 0 {
		t.Fatal("not deterministic")
	}
}

func TestSVDBidiagWithFewSplits(t *testing.T) {
	// Blocks shorter than D exercise the zero-padding path.
	_, rows := plantedData(130, 60, 3, 57)
	eng := testEngine()
	eng.Splits = 64 // ~2 rows per block << 60 columns
	res, err := FitMapReduce(eng, rows, 60, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	y, _ := plantedData(130, 60, 3, 57)
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 3)
	if gap := matrix.SubspaceGap(res.Components, v); gap > 1e-8 {
		t.Fatalf("padded-block TSQR wrong: gap %v", gap)
	}
}
