// Package svdbidiag implements the dense SVD pipeline of §2.2 (Demmel &
// Kahan's improvement of Golub–Kahan, the method RScaLAPACK exposes): QR
// decomposition of the mean-centered input, bidiagonalization of R, and SVD
// of the bidiagonal matrix. The QR step runs distributed as a TSQR
// (tall-skinny QR) MapReduce job — each task factors its block and the
// reduction tree stacks and re-factors the R blocks — while the remaining
// dense steps run on the driver, exactly as the paper's communication
// analysis assumes.
//
// The pipeline has no sparsity story: the mean-centered matrix is dense, so
// every block is densified before factoring. That, plus the O(ND² + D³)
// arithmetic and the O(max((N+D)d, D²)) intermediate data, is why the paper
// rules this method out for large D — behaviour this implementation
// reproduces measurably.
package svdbidiag

import (
	"errors"
	"fmt"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// Options configures a run.
type Options struct {
	// Components is d, the number of principal components to keep.
	Components int
	// SampleRows bounds the error-metric sample (default 256).
	SampleRows int
	// Seed drives the error-metric row sample.
	Seed uint64
	// Tracer, when non-nil, receives fit/job/phase spans for the run.
	// The nil default disables tracing with zero overhead.
	Tracer *trace.Tracer
}

// DefaultOptions returns the standard configuration.
func DefaultOptions(d int) Options {
	return Options{Components: d, SampleRows: 256, Seed: 42}
}

// Result is the output of FitMapReduce.
type Result struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Singular holds the singular values of the centered input.
	Singular []float64
	// Err is the sampled relative 1-norm reconstruction error.
	Err     float64
	Metrics cluster.Metrics
	// Phases is the per-phase cost breakdown derived from the cluster's
	// phase log.
	Phases []cluster.PhaseSummary
}

// FitMapReduce runs the SVD-Bidiag PCA pipeline on the MapReduce engine.
func FitMapReduce(eng *mapred.Engine, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if opt.Components <= 0 {
		return nil, errors.New("svdbidiag: Components must be positive")
	}
	if len(rows) == 0 {
		return nil, errors.New("svdbidiag: empty input")
	}
	if opt.Components > dims {
		return nil, fmt.Errorf("svdbidiag: Components %d exceeds dimensionality %d", opt.Components, dims)
	}
	if len(rows) < dims {
		return nil, fmt.Errorf("svdbidiag: QR needs rows (%d) >= columns (%d)", len(rows), dims)
	}
	cl := eng.Cluster
	n := len(rows)

	if tr := opt.Tracer; tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitSVDBidiag", trace.KindFit,
			trace.I("rows", int64(n)),
			trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)))
		defer tr.End()
	}

	// Column means, one light job (the pipeline centers explicitly).
	mean, err := meanJob(eng, rows, dims)
	if err != nil {
		return nil, err
	}

	// Distributed TSQR over the densified, centered blocks.
	r, err := tsqrJob(eng, rows, dims, mean)
	if err != nil {
		return nil, err
	}
	// The paper's analysis counts the N x d thin-Q factor as step-1
	// intermediate data; charge its materialization.
	qBytes := int64(n) * int64(opt.Components) * 8
	cl.RunPhase(cluster.PhaseStats{
		Name:              "svdbidiag/q-materialize",
		DiskBytes:         qBytes,
		ShuffleBytes:      qBytes,
		MaterializedBytes: qBytes,
		Tasks:             int64(cl.TotalCores()),
	})

	// Stage-boundary poll before the driver-side dense work: the jobs above
	// poll via mapred.Run, but the D³ bidiagonalization below does not.
	if cause := cl.Interrupted(); cause != nil {
		return nil, fmt.Errorf("svdbidiag: bidiag-svd stage: %w", cause)
	}

	// Driver: bidiagonalize R and SVD it (steps ii-iii). Our dense SVD
	// performs Householder bidiagonalization + implicit-shift QR
	// internally — exactly the Demmel-Kahan pipeline.
	_, s, v := matrix.SVD(r)
	d3 := int64(dims) * int64(dims) * int64(dims)
	cl.AddDriverCompute(2 * d3)
	cl.RunPhase(cluster.PhaseStats{
		Name:              "svdbidiag/bidiag-svd",
		ShuffleBytes:      2 * int64(dims) * int64(dims) * 8,
		MaterializedBytes: 2 * int64(dims) * int64(dims) * 8,
	})

	d := opt.Components
	comps := matrix.NewDense(dims, d)
	for i := 0; i < dims; i++ {
		copy(comps.Row(i), v.Row(i)[:d])
	}

	y := sparseFromRows(rows, dims)
	res := &Result{
		Components: comps,
		Singular:   s[:d],
		Err:        reconstructionError(y, mean, comps, sampleIdx(n, opt.sampleRows(), opt.Seed)),
	}
	res.Metrics = cl.Metrics()
	res.Phases = cluster.Summarize(cl.PhaseLog(), cl.Config())
	if tr := opt.Tracer; tr != nil {
		// Single-pass pipeline; report one logical iteration so observers see
		// the same shape as the iterative algorithms.
		tr.IterationDone(trace.Iteration{Iter: 1, Err: res.Err, SimSeconds: res.Metrics.SimSeconds})
	}
	return res, nil
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return 256
	}
	return o.SampleRows
}

// meanJob computes column means (same job shape as the other algorithms).
func meanJob(eng *mapred.Engine, rows []matrix.SparseVector, dims int) ([]float64, error) {
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "svdbidiag-mean",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &meanMapper{partial: map[int]float64{}}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return nil, err
	}
	count := out[-1]
	if count == 0 {
		return nil, errors.New("svdbidiag: mean job saw no rows")
	}
	mean := make([]float64, dims)
	for j, v := range out {
		if j >= 0 {
			mean[j] = v / count
		}
	}
	return mean, nil
}

type meanMapper struct {
	partial map[int]float64
	count   float64
}

func (m *meanMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	for k, j := range row.Indices {
		m.partial[j] += row.Values[k]
	}
	m.count++
	out.AddOps(int64(row.NNZ()))
}

func (m *meanMapper) Cleanup(out mapred.Emitter[int, float64]) {
	for j, v := range m.partial {
		out.Emit(j, v)
	}
	out.Emit(-1, m.count)
}

// tsqrJob runs the tall-skinny QR: each map task densifies and centers its
// block, factors it locally, and emits the D x D R factor; the reducer
// stacks all R factors and re-factors, yielding the global R.
func tsqrJob(eng *mapred.Engine, rows []matrix.SparseVector, dims int, mean []float64) (*matrix.Dense, error) {
	job := mapred.Job[matrix.SparseVector, int, *matrix.Dense, *matrix.Dense]{
		Name: "svdbidiag-tsqr",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, *matrix.Dense] {
			return &tsqrMapper{dims: dims, mean: mean}
		},
		// Combiner: stack two R factors and re-factor (associative).
		Combine: func(a, b *matrix.Dense) *matrix.Dense { return stackQR(a, b) },
		Reduce: func(_ int, vs []*matrix.Dense, o mapred.Ops) *matrix.Dense {
			// Stack every task's R factor once and re-factor in one shot —
			// cheaper than pairwise reduction and numerically identical.
			var total int
			for _, v := range vs {
				total += v.R
			}
			stacked := matrix.NewDense(total, vs[0].C)
			at := 0
			for _, v := range vs {
				for i := 0; i < v.R; i++ {
					copy(stacked.Row(at), v.Row(i))
					at++
				}
			}
			o.AddOps(2 * int64(total) * int64(stacked.C) * int64(stacked.C))
			return matrix.QRR(stacked)
		},
		InputBytes:  mapred.BytesOfSparseVec,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfDense,
		ResultBytes: mapred.BytesOfDense,
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return nil, err
	}
	r, ok := out[0]
	if !ok {
		return nil, errors.New("svdbidiag: TSQR produced no R factor")
	}
	return r, nil
}

type tsqrMapper struct {
	dims  int
	mean  []float64
	block [][]float64
}

func (m *tsqrMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, *matrix.Dense]) {
	dense := make([]float64, m.dims)
	for j := range dense {
		dense[j] = -m.mean[j]
	}
	for k, j := range row.Indices {
		dense[j] += row.Values[k]
	}
	m.block = append(m.block, dense)
	// Densification costs O(D) per row; the QR itself is charged in Cleanup.
	out.AddOps(int64(m.dims))
}

func (m *tsqrMapper) Cleanup(out mapred.Emitter[int, *matrix.Dense]) {
	if len(m.block) == 0 {
		return
	}
	block := matrix.NewDenseFromRows(m.block)
	var r *matrix.Dense
	if block.R >= block.C {
		r = matrix.QRR(block) // only R travels in a TSQR
	} else {
		// A block shorter than D: pad with zero rows so QR is defined.
		padded := matrix.NewDense(block.C, block.C)
		for i := 0; i < block.R; i++ {
			copy(padded.Row(i), block.Row(i))
		}
		r = matrix.QRR(padded)
	}
	out.Emit(0, r)
	out.AddOps(2 * int64(block.R) * int64(block.C) * int64(block.C))
}

// stackQR stacks two upper-triangular factors and re-factors them (used by
// the combiner when the engine merges two partials inside one task).
func stackQR(a, b *matrix.Dense) *matrix.Dense {
	stacked := matrix.NewDense(a.R+b.R, a.C)
	for i := 0; i < a.R; i++ {
		copy(stacked.Row(i), a.Row(i))
	}
	for i := 0; i < b.R; i++ {
		copy(stacked.Row(a.R+i), b.Row(i))
	}
	return matrix.QRR(stacked)
}

// reconstructionError matches the metric of the other algorithm packages.
func reconstructionError(y *matrix.Sparse, mean []float64, w *matrix.Dense, rows []int) float64 {
	var num, den float64
	k := w.C
	xi := make([]float64, k)
	wm := w.MulVecT(mean)
	tNum := make([]float64, y.C)
	tDen := make([]float64, y.C)
	for _, i := range rows {
		row := y.Row(i)
		for t := range xi {
			xi[t] = -wm[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], w.Row(j), xi)
		}
		matrix.ReconTerms(row, mean, w, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func sampleIdx(n, want int, seed uint64) []int {
	if want >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	perm := matrix.NewRNG(seed + 0xACC).Perm(n)
	idx := perm[:want]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sparseFromRows(rows []matrix.SparseVector, dims int) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for _, r := range rows {
		b.AddRow(r.Indices, r.Values)
	}
	return b.Build()
}
