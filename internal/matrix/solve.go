package matrix

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a solve or inverse encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ for a
// symmetric positive-definite matrix. It returns ErrSingular if a is not
// positive definite.
// It allocates the factor and delegates to CholeskyInto.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Cholesky on non-square %dx%d", n, c))
	}
	l := NewDense(n, n)
	if err := CholeskyInto(a, l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskySolve solves a*x = b for SPD a given its Cholesky factor l.
// It allocates the output and delegates to CholeskySolveInto.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.R
	if len(b) != n {
		panic("matrix: CholeskySolve length mismatch")
	}
	return CholeskySolveInto(l, b, make([]float64, n), make([]float64, n))
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
// It is intended for the small d-by-d matrices of PPCA (e.g. M = CᵀC + ss·I).
// It allocates its output and scratch and delegates to InverseInto.
func Inverse(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Inverse on non-square %dx%d", n, c))
	}
	out := NewDense(n, n)
	if err := InverseInto(a, out, NewDense(n, 2*n)); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveSPD solves a*X = b columnwise for SPD a and dense right-hand side b,
// used by the PPCA M-step C = YtX / XtX (i.e. C = YtX * XtX⁻¹, solved as
// XtXᵀ * Cᵀ = YtXᵀ without forming the inverse explicitly).
// It allocates its output and workspace and delegates to SolveSPDInto.
func SolveSPD(a *Dense, b *Dense) (*Dense, error) {
	if a.R != a.C || a.C != b.C {
		panic(fmt.Sprintf("matrix: SolveSPD dims a %dx%d, b %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewDense(b.R, b.C)
	if err := SolveSPDInto(a, b, out, &SPDWorkspace{}); err != nil {
		return nil, err
	}
	return out, nil
}
