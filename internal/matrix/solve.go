package matrix

import (
	"errors"
	"fmt"
	"math"

	"spca/internal/parallel"
)

// ErrSingular is returned when a solve or inverse encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ for a
// symmetric positive-definite matrix. It returns ErrSingular if a is not
// positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Cholesky on non-square %dx%d", n, c))
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a*x = b for SPD a given its Cholesky factor l.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.R
	if len(b) != n {
		panic("matrix: CholeskySolve length mismatch")
	}
	// Forward substitution L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
// It is intended for the small d-by-d matrices of PPCA (e.g. M = CᵀC + ss·I).
func Inverse(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Inverse on non-square %dx%d", n, c))
	}
	// Gauss–Jordan with partial pivoting on [A | I].
	w := NewDense(n, 2*n)
	for i := 0; i < n; i++ {
		copy(w.Row(i)[:n], a.Row(i))
		w.Set(i, n+i, 1)
	}
	for k := 0; k < n; k++ {
		p := k
		mx := math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(w.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rp, rk := w.Row(p), w.Row(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
		}
		pivInv := 1 / w.At(k, k)
		rk := w.Row(k)
		for j := range rk {
			rk[j] *= pivInv
		}
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			f := w.At(i, k)
			if f == 0 {
				continue
			}
			ri := w.Row(i)
			for j := range ri {
				ri[j] -= f * rk[j]
			}
		}
	}
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), w.Row(i)[n:])
	}
	return out, nil
}

// SolveSPD solves a*X = b columnwise for SPD a and dense right-hand side b,
// used by the PPCA M-step C = YtX / XtX (i.e. C = YtX * XtX⁻¹, solved as
// XtXᵀ * Cᵀ = YtXᵀ without forming the inverse explicitly).
func SolveSPD(a *Dense, b *Dense) (*Dense, error) {
	if a.R != a.C || a.C != b.C {
		panic(fmt.Sprintf("matrix: SolveSPD dims a %dx%d, b %dx%d", a.R, a.C, b.R, b.C))
	}
	l, err := Cholesky(a)
	if err != nil {
		// Fall back to a general inverse for nearly-singular XtX.
		inv, ierr := Inverse(a)
		if ierr != nil {
			return nil, err
		}
		return b.Mul(inv), nil
	}
	out := NewDense(b.R, b.C)
	// Each right-hand-side row solves independently against the shared
	// (read-only) factor, so rows parallelize bit-identically.
	parallel.For(b.R, flopGrain(2*b.C*b.C), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), CholeskySolve(l, b.Row(i)))
		}
	})
	return out, nil
}
