package matrix

import (
	"testing"

	"spca/internal/parallel"
)

// withForcedParallel runs f twice — once with the pool forced sequential and
// once with chunked execution forced (4 workers, even on a single-core
// machine) — and returns both results for bit-exact comparison.
func withForcedParallel(f func() *Dense) (seq, par *Dense) {
	parallel.SetSequential(true)
	seq = f()
	parallel.SetSequential(false)
	parallel.SetWorkers(4)
	par = f()
	parallel.SetWorkers(0)
	return seq, par
}

func requireBitIdentical(t *testing.T, name string, seq, par *Dense) {
	t.Helper()
	if seq.R != par.R || seq.C != par.C {
		t.Fatalf("%s: dims %dx%d vs %dx%d", name, seq.R, seq.C, par.R, par.C)
	}
	for i, v := range seq.Data {
		if v != par.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, v, par.Data[i])
		}
	}
}

func requireBitIdenticalVec(t *testing.T, name string, seq, par []float64) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: len %d vs %d", name, len(seq), len(par))
	}
	for i, v := range seq {
		if v != par[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, v, par[i])
		}
	}
}

// TestKernelsBitIdenticalUnderParallelism is the contract the whole PR rests
// on: chunked parallel execution must produce bit-for-bit the same floats as
// the sequential kernels, because the experiment reproductions assert exact
// simulated metrics.
func TestKernelsBitIdenticalUnderParallelism(t *testing.T) {
	rng := NewRNG(7)
	a := NormRnd(rng, 67, 53)
	b := NormRnd(rng, 53, 41)
	c := NormRnd(rng, 67, 41)

	seq, par := withForcedParallel(func() *Dense { return a.Mul(b) })
	requireBitIdentical(t, "Mul", seq, par)

	seq, par = withForcedParallel(func() *Dense { return a.MulT(c) })
	requireBitIdentical(t, "MulT", seq, par)

	seq, par = withForcedParallel(func() *Dense { return b.MulBT(b) })
	requireBitIdentical(t, "MulBT", seq, par)

	// Sparse kernels, with a low grain so chunking actually engages.
	sb := NewSparseBuilder(97)
	for i := 0; i < 80; i++ {
		var idx []int
		var vals []float64
		for j := i % 3; j < 97; j += 3 + i%5 {
			idx = append(idx, j)
			vals = append(vals, rng.NormFloat64())
		}
		sb.AddRow(idx, vals)
	}
	sp := sb.Build()
	dense := NormRnd(rng, 97, 13)
	mean := make([]float64, 97)
	for j := range mean {
		mean[j] = rng.NormFloat64()
	}

	seq, par = withForcedParallel(func() *Dense { return sp.MulDense(dense) })
	requireBitIdentical(t, "Sparse.MulDense", seq, par)

	seq, par = withForcedParallel(func() *Dense { return sp.CenteredMulDense(mean, dense) })
	requireBitIdentical(t, "Sparse.CenteredMulDense", seq, par)

	x := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	parallel.SetSequential(true)
	vseq := sp.MulVecT(x)
	parallel.SetSequential(false)
	parallel.SetWorkers(4)
	vpar := sp.MulVecT(x)
	parallel.SetWorkers(0)
	requireBitIdenticalVec(t, "Sparse.MulVecT", vseq, vpar)
}

func TestQRBitIdenticalUnderParallelism(t *testing.T) {
	rng := NewRNG(11)
	a := NormRnd(rng, 90, 24)

	parallel.SetSequential(true)
	qSeq, rSeq := QR(a)
	parallel.SetSequential(false)
	parallel.SetWorkers(4)
	qPar, rPar := QR(a)
	parallel.SetWorkers(0)
	requireBitIdentical(t, "QR.Q", qSeq, qPar)
	requireBitIdentical(t, "QR.R", rSeq, rPar)

	seq, par := withForcedParallel(func() *Dense { return QRR(a) })
	requireBitIdentical(t, "QRR", seq, par)
}

func TestSymEigenBitIdenticalUnderParallelism(t *testing.T) {
	rng := NewRNG(13)
	g := NormRnd(rng, 40, 40)
	sym := g.MulT(g) // SPD, symmetric

	parallel.SetSequential(true)
	valsSeq, vecsSeq := SymEigen(sym)
	parallel.SetSequential(false)
	parallel.SetWorkers(4)
	valsPar, vecsPar := SymEigen(sym)
	parallel.SetWorkers(0)
	requireBitIdenticalVec(t, "SymEigen.vals", valsSeq, valsPar)
	requireBitIdentical(t, "SymEigen.vecs", vecsSeq, vecsPar)
}

func TestSolveSPDBitIdenticalUnderParallelism(t *testing.T) {
	rng := NewRNG(17)
	g := NormRnd(rng, 30, 12)
	spd := g.MulT(g).AddScaledIdentity(0.5)
	rhs := NormRnd(rng, 64, 12)

	parallel.SetSequential(true)
	seq, err1 := SolveSPD(spd, rhs)
	parallel.SetSequential(false)
	parallel.SetWorkers(4)
	par, err2 := SolveSPD(spd, rhs)
	parallel.SetWorkers(0)
	if err1 != nil || err2 != nil {
		t.Fatalf("solve errors: %v, %v", err1, err2)
	}
	requireBitIdentical(t, "SolveSPD", seq, par)
}

func TestReconTermsMatchesSequentialLoop(t *testing.T) {
	rng := NewRNG(19)
	w := NormRnd(rng, 83, 9)
	mean := make([]float64, 83)
	for j := range mean {
		mean[j] = rng.NormFloat64()
	}
	var idx []int
	var vals []float64
	for j := 1; j < 83; j += 4 {
		idx = append(idx, j)
		vals = append(vals, rng.NormFloat64())
	}
	row := SparseVector{Len: 83, Indices: idx, Values: vals}
	xi := make([]float64, 9)
	for k := range xi {
		xi[k] = rng.NormFloat64()
	}

	num := make([]float64, 83)
	den := make([]float64, 83)
	parallel.SetWorkers(4)
	ReconTerms(row, mean, w, xi, num, den)
	parallel.SetWorkers(0)

	nz := 0
	for j := 0; j < 83; j++ {
		recon := mean[j] + Dot(xi, w.Row(j))
		var yv float64
		if nz < row.NNZ() && row.Indices[nz] == j {
			yv = row.Values[nz]
			nz++
		}
		wantNum := yv - recon
		if wantNum < 0 {
			wantNum = -wantNum
		}
		wantDen := yv
		if wantDen < 0 {
			wantDen = -wantDen
		}
		if num[j] != wantNum || den[j] != wantDen {
			t.Fatalf("column %d: got (%v,%v) want (%v,%v)", j, num[j], den[j], wantNum, wantDen)
		}
	}
}
