package matrix

import (
	"fmt"
	"math"

	"spca/internal/parallel"
)

// This file holds the in-place (`*Into`) variants of the hot kernels. The
// rule — enforced by construction — is that every allocating kernel is a
// thin wrapper that allocates its output and delegates here, so the in-place
// and allocating paths cannot drift apart numerically: results are
// bit-identical by sharing the exact same loops. Outputs must not alias
// inputs unless a kernel documents otherwise.

// The hot Mul kernels dispatch their chunk loops through parallel.ForRunner
// with pooled body structs rather than closures: a closure capturing the
// operands escapes to the heap on every call, which showed up as the lone
// steady-state allocation in the EM inner loop (BenchmarkKernelsInPlace). The
// pools are mutex-guarded, so concurrent kernels (e.g. simulated map tasks)
// each get a private body; fields are cleared before Put so pooled bodies
// never pin operand matrices live.

// mulBody is MulInto's chunk loop with its captures as fields.
type mulBody struct {
	m, b, out *Dense
	kBlock    int
	cfg       TileConfig // enabled => cache-blocked 4x4 register kernel
}

var mulBodies = parallel.NewPool(func() *mulBody { return new(mulBody) })

func (t *mulBody) Run(lo, hi int) {
	if t.cfg.enabled() {
		t.runTiled(lo, hi)
		return
	}
	m, b, out, kBlock := t.m, t.b, t.out, t.kBlock
	for k0 := 0; k0 < m.C; k0 += kBlock {
		k1 := k0 + kBlock
		if k1 > m.C {
			k1 = m.C
		}
		for i := lo; i < hi; i++ {
			arow := m.Row(i)
			orow := out.Row(i)
			for k := k0; k < k1; k++ {
				a := arow[k]
				if a == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	}
}

// MulInto computes out = m*b, overwriting out (dims m.R x b.C).
func (m *Dense) MulInto(b, out *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("matrix: Mul dims %dx%d * %dx%d", m.R, m.C, b.R, b.C))
	}
	if out.R != m.R || out.C != b.C {
		panic(fmt.Sprintf("matrix: MulInto out dims %dx%d, want %dx%d", out.R, out.C, m.R, b.C))
	}
	out.Zero()
	// Row-panel parallel: each chunk owns a disjoint band of output rows.
	// Within a chunk the k loop is blocked so a panel of b stays cache-hot
	// across the chunk's rows; blocks are visited in ascending k, so every
	// out[i][j] accumulates in exactly the sequential order (bit-identical).
	kBlock := minParallelFlops / (2 * (b.C + 1))
	if kBlock < 8 {
		kBlock = 8
	}
	// Tiling only pays off when a full j-sweep of b and out no longer sits in
	// cache; small-d EM products stay on the legacy loops. The config is
	// resolved here, before ForRunner, so the one-shot probe never runs
	// inside a parallel chunk.
	var cfg TileConfig
	if b.C >= 16 && m.C >= 64 {
		cfg = mulTiling()
	}
	body := mulBodies.Get()
	body.m, body.b, body.out, body.kBlock, body.cfg = m, b, out, kBlock, cfg
	parallel.ForRunner(m.R, flopGrain(2*m.C*b.C), body)
	*body = mulBody{}
	mulBodies.Put(body)
	return out
}

// MulTInto computes out = mᵀ*b, overwriting out (dims m.C x b.C).
func (m *Dense) MulTInto(b, out *Dense) *Dense {
	if m.R != b.R {
		panic(fmt.Sprintf("matrix: MulT dims %dx%d ᵀ* %dx%d", m.R, m.C, b.R, b.C))
	}
	if out.R != m.C || out.C != b.C {
		panic(fmt.Sprintf("matrix: MulTInto out dims %dx%d, want %dx%d", out.R, out.C, m.C, b.C))
	}
	out.Zero()
	// Parallel over bands of output rows (columns of m): chunk [lo,hi) only
	// touches out rows lo..hi-1, and each out[k][j] still accumulates over i
	// in ascending order, so the sum is bit-identical to the sequential
	// row-streaming loop.
	// Same eligibility logic as MulInto: the accumulation axis (m.R here)
	// must be long enough to block, and b wide enough for register tiles.
	var cfg TileConfig
	if m.R >= 64 && b.C >= 16 {
		cfg = mulTiling()
	}
	body := mulTBodies.Get()
	body.m, body.b, body.out, body.cfg = m, b, out, cfg
	parallel.ForRunner(m.C, flopGrain(2*m.R*b.C), body)
	*body = mulTBody{}
	mulTBodies.Put(body)
	return out
}

// mulTBody is MulTInto's chunk loop with its captures as fields.
type mulTBody struct {
	m, b, out *Dense
	cfg       TileConfig // enabled => cache-blocked 4x4 register kernel
}

var mulTBodies = parallel.NewPool(func() *mulTBody { return new(mulTBody) })

func (t *mulTBody) Run(lo, hi int) {
	if t.cfg.enabled() {
		t.runTiled(lo, hi)
		return
	}
	m, b, out := t.m, t.b, t.out
	for i := 0; i < m.R; i++ {
		arow := m.Row(i)
		brow := b.Row(i)
		for k := lo; k < hi; k++ {
			a := arow[k]
			if a == 0 {
				continue
			}
			orow := out.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
}

// MulBTInto computes out = m*bᵀ, overwriting out (dims m.R x b.R).
func (m *Dense) MulBTInto(b, out *Dense) *Dense {
	if m.C != b.C {
		panic(fmt.Sprintf("matrix: MulBT dims %dx%d * %dx%dᵀ", m.R, m.C, b.R, b.C))
	}
	if out.R != m.R || out.C != b.R {
		panic(fmt.Sprintf("matrix: MulBTInto out dims %dx%d, want %dx%d", out.R, out.C, m.R, b.R))
	}
	// Row-parallel with j-tiling: a tile of b's rows stays cache-hot across
	// the chunk's rows. Each out[i][j] is one dot product, computed exactly
	// as in the sequential kernel. Every entry is assigned, so no Zero.
	jTile := minParallelFlops / (2 * (m.C + 1))
	if jTile < 8 {
		jTile = 8
	}
	body := mulBTBodies.Get()
	body.m, body.b, body.out, body.jTile = m, b, out, jTile
	parallel.ForRunner(m.R, flopGrain(2*m.C*b.R), body)
	*body = mulBTBody{}
	mulBTBodies.Put(body)
	return out
}

// mulBTBody is MulBTInto's chunk loop with its captures as fields.
type mulBTBody struct {
	m, b, out *Dense
	jTile     int
}

var mulBTBodies = parallel.NewPool(func() *mulBTBody { return new(mulBTBody) })

func (t *mulBTBody) Run(lo, hi int) {
	m, b, out, jTile := t.m, t.b, t.out, t.jTile
	for j0 := 0; j0 < b.R; j0 += jTile {
		j1 := j0 + jTile
		if j1 > b.R {
			j1 = b.R
		}
		for i := lo; i < hi; i++ {
			arow := m.Row(i)
			orow := out.Row(i)
			for j := j0; j < j1; j++ {
				orow[j] = dot(arow, b.Row(j))
			}
		}
	}
}

// MulVecTInto computes out = mᵀ*x, overwriting out (length m.C).
func (m *Dense) MulVecTInto(x, out []float64) []float64 {
	if m.R != len(x) {
		panic(fmt.Sprintf("matrix: MulVecT dims %dx%dᵀ * %d", m.R, m.C, len(x)))
	}
	if len(out) != m.C {
		panic(fmt.Sprintf("matrix: MulVecTInto out len %d, want %d", len(out), m.C))
	}
	for j := range out {
		out[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// AddScaledInto computes out = a + s*b elementwise. All three matrices must
// share dimensions; out may alias a or b. The scaled term is rounded before
// the add (two statements, so no FMA contraction), matching the allocating
// a.Add(b.Scale(s)) composition bit for bit.
func AddScaledInto(out, a *Dense, s float64, b *Dense) *Dense {
	checkSameDims("AddScaledInto", a, b)
	checkSameDims("AddScaledInto", a, out)
	for i, bv := range b.Data {
		t := s * bv
		out.Data[i] = a.Data[i] + t
	}
	return out
}

// TraceMul returns trace(a*b) without materializing the product. a must be
// p x q and b q x p. The diagonal entries accumulate over k in ascending
// order with the same zero-skip as Mul, and the trace sums in ascending row
// order, so the result equals a.Mul(b).Trace() bit for bit.
func TraceMul(a, b *Dense) float64 {
	if a.C != b.R || a.R != b.C {
		panic(fmt.Sprintf("matrix: TraceMul dims %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	var t float64
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		var ti float64
		for k, av := range arow {
			if av == 0 {
				continue
			}
			ti += av * b.Data[k*b.C+i]
		}
		t += ti
	}
	return t
}

// CholeskyInto factors SPD a into l (lower triangular, a = l*lᵀ), writing
// only l's lower triangle; entries above the diagonal are left untouched and
// must not be read by callers. Returns ErrSingular if a is not positive
// definite (l's contents are then unspecified).
func CholeskyInto(a, l *Dense) error {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Cholesky on non-square %dx%d", n, c))
	}
	if l.R != n || l.C != n {
		panic(fmt.Sprintf("matrix: CholeskyInto out dims %dx%d, want %dx%d", l.R, l.C, n, n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return nil
}

// CholeskySolveInto solves a*x = b given the Cholesky factor l, using y as
// forward-substitution scratch and writing the solution into x (both length
// n, fully overwritten).
func CholeskySolveInto(l *Dense, b, y, x []float64) []float64 {
	n := l.R
	if len(b) != n || len(y) != n || len(x) != n {
		panic("matrix: CholeskySolveInto length mismatch")
	}
	// Forward substitution L*y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// InverseInto inverts square a into out using w (n x 2n) as Gauss–Jordan
// scratch; both are fully overwritten.
func InverseInto(a, out, w *Dense) error {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Inverse on non-square %dx%d", n, c))
	}
	if out.R != n || out.C != n || w.R != n || w.C != 2*n {
		panic("matrix: InverseInto scratch dims mismatch")
	}
	// Gauss–Jordan with partial pivoting on [A | I].
	for i := 0; i < n; i++ {
		row := w.Row(i)
		copy(row[:n], a.Row(i))
		for j := n; j < 2*n; j++ {
			row[j] = 0
		}
		row[n+i] = 1
	}
	for k := 0; k < n; k++ {
		p := k
		mx := math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(w.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx < 1e-300 {
			return ErrSingular
		}
		if p != k {
			rp, rk := w.Row(p), w.Row(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
		}
		pivInv := 1 / w.At(k, k)
		rk := w.Row(k)
		for j := range rk {
			rk[j] *= pivInv
		}
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			f := w.At(i, k)
			if f == 0 {
				continue
			}
			ri := w.Row(i)
			for j := range ri {
				ri[j] -= f * rk[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		copy(out.Row(i), w.Row(i)[n:])
	}
	return nil
}

// SPDWorkspace holds the reusable scratch of SolveSPDInto: the Cholesky
// factor plus per-worker substitution buffers. The zero value is ready to
// use; buffers grow on demand and are retained across calls, so a steady
// state of same-sized solves allocates nothing.
type SPDWorkspace struct {
	l    *Dense
	subs [][]float64 // per worker: y then x, each length n
	// run is built once and reused so the ForWorker closure does not escape
	// (and allocate) on every solve; b/out/n carry the per-call arguments.
	run    func(w, lo, hi int)
	b, out *Dense
	n      int
}

func (ws *SPDWorkspace) ensure(n int) {
	if ws.l == nil || ws.l.R != n {
		ws.l = NewDense(n, n)
	}
	workers := parallel.Workers()
	for len(ws.subs) < workers {
		ws.subs = append(ws.subs, nil)
	}
	for w := 0; w < workers; w++ {
		if len(ws.subs[w]) < 2*n {
			ws.subs[w] = make([]float64, 2*n)
		}
	}
	if ws.run == nil {
		ws.run = func(w, lo, hi int) {
			l, b, out, n := ws.l, ws.b, ws.out, ws.n
			sub := ws.subs[w]
			y, x := sub[:n], sub[n:2*n]
			for i := lo; i < hi; i++ {
				CholeskySolveInto(l, b.Row(i), y, x)
				copy(out.Row(i), x)
			}
		}
	}
}

// SolveSPDInto solves a*X = b columnwise into out (dims b.R x b.C) using ws
// for all intermediate storage. The rare non-positive-definite fallback path
// (general inverse) still allocates.
func SolveSPDInto(a, b, out *Dense, ws *SPDWorkspace) error {
	if a.R != a.C || a.C != b.C {
		panic(fmt.Sprintf("matrix: SolveSPD dims a %dx%d, b %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != b.R || out.C != b.C {
		panic(fmt.Sprintf("matrix: SolveSPDInto out dims %dx%d, want %dx%d", out.R, out.C, b.R, b.C))
	}
	n := a.R
	ws.ensure(n)
	if err := CholeskyInto(a, ws.l); err != nil {
		// Fall back to a general inverse for nearly-singular XtX.
		inv, ierr := Inverse(a)
		if ierr != nil {
			return err
		}
		b.MulInto(inv, out)
		return nil
	}
	// Each right-hand-side row solves independently against the shared
	// (read-only) factor, so rows parallelize bit-identically; the worker
	// index selects private substitution scratch.
	ws.b, ws.out, ws.n = b, out, n
	parallel.ForWorker(b.R, flopGrain(2*b.C*b.C), ws.run)
	ws.b, ws.out = nil, nil
	return nil
}

// sparseMulBody is Sparse.MulDenseInto's chunk loop with its captures as
// fields, pooled so the projection-serving hot path performs no per-call
// closure allocation (same discipline as mulBody).
type sparseMulBody struct {
	m      *Sparse
	b, out *Dense
}

var sparseMulBodies = parallel.NewPool(func() *sparseMulBody { return new(sparseMulBody) })

func (t *sparseMulBody) Run(lo, hi int) {
	m, b, out := t.m, t.b, t.out
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for k, j := range row.Indices {
			AXPY(row.Values[k], b.Row(j), orow)
		}
	}
}

// MulDenseInto computes out = m*b for sparse m and dense b, overwriting out
// (dims m.R x b.C).
func (m *Sparse) MulDenseInto(b, out *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("matrix: Sparse.MulDense dims %dx%d * %dx%d", m.R, m.C, b.R, b.C))
	}
	if out.R != m.R || out.C != b.C {
		panic(fmt.Sprintf("matrix: Sparse.MulDenseInto out dims %dx%d, want %dx%d", out.R, out.C, m.R, b.C))
	}
	out.Zero()
	// Row-parallel: every output row depends only on its own sparse row, so
	// chunks are disjoint and each row's AXPY sequence is unchanged.
	perRow := 2 * b.C
	if m.R > 0 {
		perRow = 2 * (m.NNZ()/m.R + 1) * b.C
	}
	body := sparseMulBodies.Get()
	body.m, body.b, body.out = m, b, out
	parallel.ForRunner(m.R, flopGrain(perRow), body)
	*body = sparseMulBody{}
	sparseMulBodies.Put(body)
	return out
}

// subRowBody subtracts a row vector from every row of a band; the demeaning
// step of the centered products, pooled for the same zero-allocation reason
// as the mul bodies.
type subRowBody struct {
	out *Dense
	row []float64
}

var subRowBodies = parallel.NewPool(func() *subRowBody { return new(subRowBody) })

func (t *subRowBody) Run(lo, hi int) {
	out, sub := t.out, t.row
	for i := lo; i < hi; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= sub[j]
		}
	}
}

// MeanMulInto computes out = meanᵀ*b (a 1 x b.C row vector), overwriting out.
// It skips zero mean entries and accumulates in ascending j with AXPY —
// exactly the loop CenteredMulDense historically ran per call — so callers
// that precompute the mean's image stay bit-identical to the allocating path.
func MeanMulInto(mean []float64, b *Dense, out []float64) []float64 {
	if len(mean) != b.R {
		panic(fmt.Sprintf("matrix: MeanMulInto mean len %d, matrix %dx%d", len(mean), b.R, b.C))
	}
	if len(out) != b.C {
		panic(fmt.Sprintf("matrix: MeanMulInto out len %d, want %d", len(out), b.C))
	}
	for j := range out {
		out[j] = 0
	}
	for j, mj := range mean {
		if mj == 0 {
			continue
		}
		AXPY(mj, b.Row(j), out)
	}
	return out
}

// CenteredMulDenseInto computes out = (Y - 1·meanᵀ)·b via mean propagation
// with the mean's image meanB = meanᵀ·b already computed (see MeanMulInto):
// out = Y·b, then meanB subtracted from every row. Allocation-free, and
// bit-identical to CenteredMulDense, which delegates here.
func (m *Sparse) CenteredMulDenseInto(b, out *Dense, meanB []float64) *Dense {
	if len(meanB) != b.C {
		panic(fmt.Sprintf("matrix: CenteredMulDenseInto meanB len %d, want %d", len(meanB), b.C))
	}
	m.MulDenseInto(b, out)
	body := subRowBodies.Get()
	body.out, body.row = out, meanB
	parallel.ForRunner(out.R, flopGrain(out.C), body)
	*body = subRowBody{}
	subRowBodies.Put(body)
	return out
}

// CenteredMulInto is the dense-input counterpart of CenteredMulDenseInto:
// out = (Y - 1·meanᵀ)·b for dense Y, with meanB = meanᵀ·b precomputed.
func (m *Dense) CenteredMulInto(b, out *Dense, meanB []float64) *Dense {
	if len(meanB) != b.C {
		panic(fmt.Sprintf("matrix: CenteredMulInto meanB len %d, want %d", len(meanB), b.C))
	}
	m.MulInto(b, out)
	body := subRowBodies.Get()
	body.out, body.row = out, meanB
	parallel.ForRunner(out.R, flopGrain(out.C), body)
	*body = subRowBody{}
	subRowBodies.Put(body)
	return out
}

// MulBTAddRowInto computes out = x·bᵀ + 1·addRow: the reconstruction map
// (latent positions back through the components, plus the mean), overwriting
// out (dims x.R x b.R). The product accumulates first and the row add is a
// separate pass, matching the allocating MulBT-then-add composition bit for
// bit. Allocation-free.
func (x *Dense) MulBTAddRowInto(b, out *Dense, addRow []float64) *Dense {
	if len(addRow) != b.R {
		panic(fmt.Sprintf("matrix: MulBTAddRowInto addRow len %d, want %d", len(addRow), b.R))
	}
	x.MulBTInto(b, out)
	body := addRowBodies.Get()
	body.out, body.row = out, addRow
	parallel.ForRunner(out.R, flopGrain(out.C), body)
	*body = addRowBody{}
	addRowBodies.Put(body)
	return out
}

// addRowBody adds a row vector to every row of a band (see subRowBody).
type addRowBody struct {
	out *Dense
	row []float64
}

var addRowBodies = parallel.NewPool(func() *addRowBody { return new(addRowBody) })

func (t *addRowBody) Run(lo, hi int) {
	out, add := t.out, t.row
	for i := lo; i < hi; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += add[j]
		}
	}
}

// DensifyCenteredInto materializes row - mean as a fully dense "sparse"
// vector using caller-provided scratch (idx, vals, both length row.Len,
// fully overwritten) — the in-place form of the densify step that the
// mean-propagation optimization exists to avoid.
func DensifyCenteredInto(row SparseVector, mean []float64, idx []int, vals []float64) SparseVector {
	if len(idx) != row.Len || len(vals) != row.Len {
		panic("matrix: DensifyCenteredInto scratch length mismatch")
	}
	for j := range idx {
		idx[j] = j
		vals[j] = -mean[j]
	}
	for k, j := range row.Indices {
		vals[j] += row.Values[k]
	}
	return SparseVector{Len: row.Len, Indices: idx, Values: vals}
}
