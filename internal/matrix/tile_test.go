package matrix

import (
	"math"
	"testing"
)

// tileTestMat builds a deterministic r×c matrix with zeros sprinkled in (to
// exercise the zero-skip) and optional NaN/Inf entries (to prove the skip is
// semantic, not just a speed hack: a zero row element must keep masking a
// non-finite b row on every path).
func tileTestMat(rng *RNG, r, c int, zeroFrac float64, withNonFinite bool) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			continue // stays exactly 0
		}
		m.Data[i] = rng.NormFloat64()
	}
	if withNonFinite && r > 2 && c > 2 {
		m.Set(1, 1, math.Inf(1))
		m.Set(2, 0, math.NaN())
	}
	return m
}

var tileTestConfigs = []TileConfig{
	{KC: 64, JC: 64},
	{KC: 128, JC: 128},
	{KC: 256, JC: 64},
	{KC: 8, JC: 8},
	{KC: 3, JC: 5}, // deliberately awkward: exercises every remainder path
}

// TestTiledMulIntoBitIdentical pins the tiled MulInto against the legacy
// loop order, bit for bit, across shapes with ragged remainders and operands
// containing zeros, NaN, and Inf.
func TestTiledMulIntoBitIdentical(t *testing.T) {
	defer ResetMulTiling()
	shapes := []struct{ m, k, n int }{
		{64, 64, 64},
		{193, 61, 53},
		{97, 128, 17},
		{66, 65, 19},
		{160, 160, 160},
	}
	rng := NewRNG(11)
	for _, sh := range shapes {
		a := tileTestMat(rng, sh.m, sh.k, 0.3, false)
		b := tileTestMat(rng, sh.k, sh.n, 0.1, true)
		// Make sure some zero a-entries line up with b's non-finite rows, so
		// a broken zero-skip would surface as a spurious NaN.
		for i := 0; i < sh.m; i += 3 {
			a.Set(i, 1, 0)
		}
		SetMulTiling(TileConfig{})
		want := a.Mul(b)
		for _, cfg := range tileTestConfigs {
			SetMulTiling(cfg)
			got := NewDense(sh.m, sh.n)
			a.MulInto(b, got)
			bitsEqual(t, "MulInto "+cfg.String(), want, got)
		}
	}
}

// TestTiledMulTIntoBitIdentical is the same pin for MulTInto (out = mᵀ*b).
func TestTiledMulTIntoBitIdentical(t *testing.T) {
	defer ResetMulTiling()
	shapes := []struct{ r, c, n int }{
		{64, 64, 64},
		{193, 61, 53},
		{128, 97, 17},
		{65, 66, 19},
		{160, 160, 160},
	}
	rng := NewRNG(23)
	for _, sh := range shapes {
		a := tileTestMat(rng, sh.r, sh.c, 0.3, false)
		b := tileTestMat(rng, sh.r, sh.n, 0.1, true)
		for i := 0; i < sh.r; i += 3 {
			a.Set(i, 1, 0)
		}
		SetMulTiling(TileConfig{})
		want := a.MulT(b)
		for _, cfg := range tileTestConfigs {
			SetMulTiling(cfg)
			got := NewDense(sh.c, sh.n)
			a.MulTInto(b, got)
			bitsEqual(t, "MulTInto "+cfg.String(), want, got)
		}
	}
}

// TestTiledSequentialMatchesParallel pins that chunk boundaries (which are
// not multiples of the 4-row micro-tile) cannot change results.
func TestTiledSequentialMatchesParallel(t *testing.T) {
	defer ResetMulTiling()
	SetMulTiling(TileConfig{KC: 64, JC: 64})
	rng := NewRNG(31)
	a := tileTestMat(rng, 150, 150, 0.2, false)
	b := tileTestMat(rng, 150, 150, 0.2, false)

	par := NewDense(150, 150)
	a.MulInto(b, par)
	parT := NewDense(150, 150)
	a.MulTInto(b, parT)

	seqBody := mulBody{m: a, b: b, out: NewDense(150, 150), kBlock: 8, cfg: TileConfig{KC: 64, JC: 64}}
	seqBody.Run(0, a.R)
	bitsEqual(t, "MulInto parallel vs sequential", seqBody.out, par)

	seqTBody := mulTBody{m: a, b: b, out: NewDense(150, 150), cfg: TileConfig{KC: 64, JC: 64}}
	seqTBody.Run(0, a.C)
	bitsEqual(t, "MulTInto parallel vs sequential", seqTBody.out, parT)
}

// TestTilingEnvOverride pins the SPCA_MUL_TILING parse rules.
func TestTilingEnvOverride(t *testing.T) {
	defer ResetMulTiling()
	cases := []struct {
		v    string
		want TileConfig
		ok   bool
	}{
		{"legacy", TileConfig{}, true},
		{"off", TileConfig{}, true},
		{"128x64", TileConfig{KC: 128, JC: 64}, true},
		{"64X64", TileConfig{}, false}, // capital X is not the separator
		{"probe", TileConfig{}, false},
		{"", TileConfig{}, false},
		{"0x64", TileConfig{}, false},
		{"axb", TileConfig{}, false},
	}
	for _, c := range cases {
		t.Setenv("SPCA_MUL_TILING", c.v)
		got, ok := tilingFromEnv()
		if got != c.want || ok != c.ok {
			t.Errorf("tilingFromEnv(%q) = %v,%v; want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

// TestProbeResolvesOnce pins that the probe result is cached process-wide.
func TestProbeResolvesOnce(t *testing.T) {
	defer ResetMulTiling()
	ResetMulTiling()
	t.Setenv("SPCA_MUL_TILING", "96x48")
	first := mulTiling()
	if (first != TileConfig{KC: 96, JC: 48}) {
		t.Fatalf("mulTiling() = %v, want 96x48", first)
	}
	t.Setenv("SPCA_MUL_TILING", "legacy")
	if again := mulTiling(); again != first {
		t.Fatalf("mulTiling() re-resolved to %v after %v", again, first)
	}
}
