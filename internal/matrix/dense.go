// Package matrix implements the dense and sparse linear algebra used by the
// sPCA reproduction: row-major dense matrices, compressed sparse row (CSR)
// matrices, deterministic Gaussian random sources, QR and eigendecomposition,
// Golub–Reinsch SVD, Lanczos bidiagonalization for sparse SVD, and small
// linear solvers. It is written against the standard library only.
package matrix

import (
	"fmt"
	"math"
)

// minParallelFlops is roughly how much arithmetic one parallel chunk should
// amortize before goroutine hand-off pays for itself. Kernels derive their
// parallel.For grain from it so small matrices stay on the inline fast path.
const minParallelFlops = 1 << 15

// flopGrain converts per-index work (in flops) into a parallel.For grain.
func flopGrain(perItem int) int {
	if perItem <= 0 {
		perItem = 1
	}
	g := minParallelFlops / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// Dense is a row-major dense matrix with R rows and C columns.
// The zero value is an empty 0x0 matrix.
type Dense struct {
	R, C int
	Data []float64 // len R*C, row-major
}

// NewDense returns a zeroed r-by-c dense matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// NewDenseFromRows builds a dense matrix from row slices. All rows must have
// equal length. The data is copied.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.R, m.C }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.R != src.R || m.C != src.C {
		panic(fmt.Sprintf("matrix: CopyFrom dims %dx%d != %dx%d", m.R, m.C, src.R, src.C))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.C, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.R+i] = v
		}
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) *Dense {
	checkSameDims("Add", m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace sets m = m + b.
func (m *Dense) AddInPlace(b *Dense) {
	checkSameDims("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	checkSameDims("Sub", m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace sets m = s*m.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaledIdentity returns m + s*I for square m.
func (m *Dense) AddScaledIdentity(s float64) *Dense {
	if m.R != m.C {
		panic("matrix: AddScaledIdentity on non-square matrix")
	}
	out := m.Clone()
	for i := 0; i < m.R; i++ {
		out.Data[i*m.C+i] += s
	}
	return out
}

// Mul returns m*b as a new matrix (inner dimensions must agree).
// It allocates the output and delegates to MulInto.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("matrix: Mul dims %dx%d * %dx%d", m.R, m.C, b.R, b.C))
	}
	return m.MulInto(b, NewDense(m.R, b.C))
}

// MulT returns mᵀ*b as a new matrix. m and b must have the same row count.
// This is the row-streaming product of Equation (2) in the paper:
// (Aᵀ*B) = Σ_i (A_i)ᵀ * B_i.
// It allocates the output and delegates to MulTInto.
func (m *Dense) MulT(b *Dense) *Dense {
	if m.R != b.R {
		panic(fmt.Sprintf("matrix: MulT dims %dx%d ᵀ* %dx%d", m.R, m.C, b.R, b.C))
	}
	return m.MulTInto(b, NewDense(m.C, b.C))
}

// MulBT returns m*bᵀ as a new matrix. m and b must have the same column
// count. It allocates the output and delegates to MulBTInto.
func (m *Dense) MulBT(b *Dense) *Dense {
	if m.C != b.C {
		panic(fmt.Sprintf("matrix: MulBT dims %dx%d * %dx%dᵀ", m.R, m.C, b.R, b.C))
	}
	return m.MulBTInto(b, NewDense(m.R, b.R))
}

// MulVec returns m*x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.C != len(x) {
		panic(fmt.Sprintf("matrix: MulVec dims %dx%d * %d", m.R, m.C, len(x)))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ*x as a new vector. It allocates the output and
// delegates to MulVecTInto.
func (m *Dense) MulVecT(x []float64) []float64 {
	return m.MulVecTInto(x, make([]float64, m.C))
}

// Trace returns the sum of the diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.R != m.C {
		panic("matrix: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.R; i++ {
		t += m.Data[i*m.C+i]
	}
	return t
}

// FrobeniusSq returns the squared Frobenius norm of m.
func (m *Dense) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// Frobenius returns the Frobenius norm of m.
func (m *Dense) Frobenius() float64 { return math.Sqrt(m.FrobeniusSq()) }

// Norm1 returns the entrywise 1-norm (sum of absolute values) of m. The paper
// uses the entrywise 1-norm of the reconstruction error as its accuracy metric.
func (m *Dense) Norm1() float64 {
	var s float64
	for _, v := range m.Data {
		s += math.Abs(v)
	}
	return s
}

// MaxAbsDiff returns max |m_ij - b_ij|; useful in tests.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	checkSameDims("MaxAbsDiff", m, b)
	var mx float64
	for i, v := range m.Data {
		if d := math.Abs(v - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// ColMeans returns the vector of per-column means of m.
func (m *Dense) ColMeans() []float64 {
	out := make([]float64, m.C)
	if m.R == 0 {
		return out
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1.0 / float64(m.R)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// SubRowVec returns m with v subtracted from every row (mean-centering).
func (m *Dense) SubRowVec(v []float64) *Dense {
	if m.C != len(v) {
		panic(fmt.Sprintf("matrix: SubRowVec dims %dx%d - %d", m.R, m.C, len(v)))
	}
	out := m.Clone()
	for i := 0; i < m.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= v[j]
		}
	}
	return out
}

// Col returns column j as a new slice.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*m.C+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.R {
		panic("matrix: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.Data[i*m.C+j] = v[i]
	}
}

// SliceRows returns a view-copy of rows [lo, hi).
func (m *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi > m.R || lo > hi {
		panic(fmt.Sprintf("matrix: SliceRows [%d,%d) of %d rows", lo, hi, m.R))
	}
	out := NewDense(hi-lo, m.C)
	copy(out.Data, m.Data[lo*m.C:hi*m.C])
	return out
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense %dx%d", m.R, m.C)
	if m.R*m.C <= 64 {
		s += " ["
		for i := 0; i < m.R; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
			if i < m.R-1 {
				s += "; "
			}
		}
		s += "]"
	}
	return s
}

func checkSameDims(op string, a, b *Dense) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("matrix: %s dims %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Dot returns the dot product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: Dot length mismatch")
	}
	return dot(a, b)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecNorm1 returns the 1-norm of x.
func VecNorm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// VecScale scales x in place by a.
func VecScale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// VecSub returns a-b as a new vector.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("matrix: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// OuterAdd accumulates out += a*bᵀ where out is len(a) x len(b).
func OuterAdd(out *Dense, a, b []float64) {
	if out.R != len(a) || out.C != len(b) {
		panic("matrix: OuterAdd dims mismatch")
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := out.Row(i)
		for j, bv := range b {
			row[j] += av * bv
		}
	}
}

// SubspaceGap measures how far apart the column spans of a and b are:
// 1 - the smallest principal cosine between the subspaces, so 0 means the
// spans coincide and 1 means some direction of one span is orthogonal to
// the other. Inputs are copied and orthonormalized internally.
func SubspaceGap(a, b *Dense) float64 {
	qa, qb := a.Clone(), b.Clone()
	GramSchmidt(qa)
	GramSchmidt(qb)
	_, s, _ := SVD(qa.MulT(qb))
	min := 1.0
	for _, v := range s {
		if v < min {
			min = v
		}
	}
	return 1 - min
}
