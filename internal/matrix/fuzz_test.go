package matrix

import (
	"bytes"
	"math"
	"testing"
)

// fuzzSeedSparse builds a small valid matrix to seed both fuzzers with
// well-formed corpora alongside hand-written corruptions.
func fuzzSeedSparse() *Sparse {
	b := NewSparseBuilder(5)
	b.AddRow([]int{0, 3}, []float64{1.5, -2.25})
	b.AddRow(nil, nil)
	b.AddRow([]int{1, 2, 4}, []float64{0.5, 3, 1e-9})
	return b.Build()
}

// checkParsedSparse asserts the CSR invariants every successful parse must
// deliver — the contract the rest of the codebase indexes by without checks.
func checkParsedSparse(t *testing.T, m *Sparse) {
	t.Helper()
	if m.R < 0 || m.C < 0 {
		t.Fatalf("negative dims %d x %d", m.R, m.C)
	}
	if len(m.RowPtr) != m.R+1 {
		t.Fatalf("rowptr length %d for %d rows", len(m.RowPtr), m.R)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.R] != len(m.Cols) || len(m.Cols) != len(m.Vals) {
		t.Fatalf("inconsistent CSR arrays: ptr0=%d ptrN=%d cols=%d vals=%d",
			m.RowPtr[0], m.RowPtr[m.R], len(m.Cols), len(m.Vals))
	}
	for i := 0; i < m.R; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatalf("rowptr decreases at %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] < 0 || m.Cols[k] >= m.C {
				t.Fatalf("column %d out of range in row %d", m.Cols[k], i)
			}
			if k > m.RowPtr[i] && m.Cols[k] <= m.Cols[k-1] {
				t.Fatalf("columns out of order in row %d", i)
			}
		}
	}
	for _, v := range m.Vals {
		if v != v || math.IsInf(v, 0) {
			t.Fatalf("non-finite value survived parsing: %v", v)
		}
	}
}

func FuzzReadSparse(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteSparse(&buf, fuzzSeedSparse()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("spmx 2 2 1\n0 1 3.5\n"))
	f.Add([]byte("spmx 2 2 1\n0 9 3.5\n"))      // column out of range
	f.Add([]byte("spmx 2 2 1\n5 1 3.5\n"))      // row out of range
	f.Add([]byte("spmx 2 2 9\n0 1 3.5\n"))      // nnz mismatch
	f.Add([]byte("spmx 2 2 1\n0 1 NaN\n"))      // non-finite
	f.Add([]byte("spmx -1 2 1\n"))              // negative dims
	f.Add([]byte("spmx 1 99999999999999 0\n"))  // implausible header
	f.Add([]byte("spmx 2 3 2\n0 2 1\n0 1 2\n")) // columns out of order
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadSparse(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		checkParsedSparse(t, m)
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if err := WriteSparse(&out, m); err != nil {
			t.Fatalf("re-serializing accepted matrix: %v", err)
		}
		m2, err := ReadSparse(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		if m2.R != m.R || m2.C != m.C || m2.NNZ() != m.NNZ() {
			t.Fatalf("round-trip changed shape: %dx%d/%d -> %dx%d/%d",
				m.R, m.C, m.NNZ(), m2.R, m2.C, m2.NNZ())
		}
	})
}

func FuzzReadSparseBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteSparseBinary(&buf, fuzzSeedSparse()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // truncated values
	f.Add(valid[:20])                     // truncated header
	f.Add([]byte("SPMB"))                 // magic only
	f.Add([]byte("NOPE.............."))   // wrong magic
	f.Add(bytes.Repeat([]byte{0xff}, 40)) // implausible header
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadSparseBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkParsedSparse(t, m)
		var out bytes.Buffer
		if err := WriteSparseBinary(&out, m); err != nil {
			t.Fatalf("re-serializing accepted matrix: %v", err)
		}
		m2, err := ReadSparseBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		if m2.R != m.R || m2.C != m.C || m2.NNZ() != m.NNZ() {
			t.Fatalf("round-trip changed shape")
		}
	})
}
