package matrix

// Cache-blocked tiling for the dense Mul kernels. The legacy loop orders in
// inplace.go stream full rows of b and out for every k, which falls off a
// cliff once a row of out no longer fits in L1/L2. The tiled path blocks k
// (MulInto) or i (MulTInto) and j, and computes 4x4 register tiles of out in
// the inner loop, cutting out-row traffic by 4x.
//
// Bit-identity is a hard constraint (the golden fingerprint suites hash every
// float bit): per output element, contributions still accumulate in exactly
// the legacy order — ascending k for MulInto, ascending i for MulTInto — and
// the a == 0 zero-skip is preserved contribution-for-contribution (it guards
// 0*Inf = NaN, not just speed). Go never contracts x*y+z into an FMA on its
// own, so `acc += a*b` in the micro-kernel rounds exactly like the legacy
// `orow[j] += a*bv`. Tiling only reorders work across *distinct* output
// elements, which addition order cannot observe.
//
// The tile shape is resolved once per process: an explicit SetMulTiling wins,
// then the SPCA_MUL_TILING environment variable ("legacy", "probe", or
// "KCxJC" e.g. "128x64"), then a one-shot micro-probe that times each
// candidate on a synthetic workload and keeps the fastest. Small operands
// (narrow b or short k) stay on the legacy path: the register kernel only
// pays off when a full sweep no longer fits in cache.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TileConfig selects the cache-block sizes of the tiled Mul kernels. KC is
// the k-block (i-block for MulTInto) and JC the j-block, both in elements.
// The zero value means "legacy loop order, no tiling".
type TileConfig struct {
	KC, JC int
}

func (c TileConfig) enabled() bool { return c.KC > 0 && c.JC > 0 }

func (c TileConfig) String() string {
	if !c.enabled() {
		return "legacy"
	}
	return fmt.Sprintf("%dx%d", c.KC, c.JC)
}

// tileState guards the once-per-process tiling resolution.
var tileState struct {
	mu       sync.Mutex
	resolved bool
	cfg      TileConfig
}

// SetMulTiling pins the tile configuration, overriding the environment and
// the probe. Pass the zero TileConfig to force the legacy loop order. Only
// call it from tests or setup code, never mid-kernel.
func SetMulTiling(cfg TileConfig) {
	tileState.mu.Lock()
	tileState.cfg = cfg
	tileState.resolved = true
	tileState.mu.Unlock()
}

// ResetMulTiling clears any pinned or probed configuration; the next eligible
// Mul call re-resolves (environment, then probe).
func ResetMulTiling() {
	tileState.mu.Lock()
	tileState.resolved = false
	tileState.cfg = TileConfig{}
	tileState.mu.Unlock()
}

// mulTiling returns the process-wide tile configuration, resolving it on
// first use. Callers resolve before entering parallel chunk loops, so the
// probe never runs inside a worker.
func mulTiling() TileConfig {
	tileState.mu.Lock()
	defer tileState.mu.Unlock()
	if tileState.resolved {
		return tileState.cfg
	}
	cfg, ok := tilingFromEnv()
	if !ok {
		cfg = probeTiling()
	}
	tileState.cfg = cfg
	tileState.resolved = true
	return cfg
}

// tilingFromEnv parses SPCA_MUL_TILING: "legacy" pins the untiled loops,
// "KCxJC" (e.g. "128x64") pins explicit block sizes, "probe"/"auto"/unset
// defer to the micro-probe. Malformed values fall back to the probe.
func tilingFromEnv() (TileConfig, bool) {
	v := strings.TrimSpace(os.Getenv("SPCA_MUL_TILING"))
	switch strings.ToLower(v) {
	case "":
		return TileConfig{}, false
	case "legacy", "off":
		return TileConfig{}, true
	case "probe", "auto":
		return TileConfig{}, false
	}
	kc, jc, ok := strings.Cut(v, "x")
	if !ok {
		return TileConfig{}, false
	}
	k, err1 := strconv.Atoi(kc)
	j, err2 := strconv.Atoi(jc)
	if err1 != nil || err2 != nil || k <= 0 || j <= 0 {
		return TileConfig{}, false
	}
	return TileConfig{KC: k, JC: j}, true
}

// tileCandidates are the probed block shapes. {0,0} is the legacy loop
// order, kept as a candidate so a machine where tiling loses (tiny caches,
// odd prefetchers) keeps its old performance.
var tileCandidates = []TileConfig{
	{},
	{KC: 64, JC: 64},
	{KC: 128, JC: 128},
	{KC: 256, JC: 64},
}

// probeTiling times each candidate on a deterministic n×n workload (direct
// sequential body runs — no pools, no parallel machinery) and returns the
// fastest, by minimum of five runs. A tiled candidate must beat the legacy
// loop by more than 10% to be selected: on a noisy or throttled host a
// lucky sample must not flip the whole process onto a slower kernel, so
// ties and noise stay legacy. Runs once per process; ~tens of milliseconds.
func probeTiling() TileConfig {
	const n = 160
	m := NewDense(n, n)
	b := NewDense(n, n)
	out := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = float64(i%13)*0.375 - 2
		b.Data[i] = float64(i%7)*0.625 - 1.5
	}
	kBlock := minParallelFlops / (2 * (b.C + 1))
	if kBlock < 8 {
		kBlock = 8
	}
	timeCand := func(cand TileConfig) time.Duration {
		body := mulBody{m: m, b: b, out: out, kBlock: kBlock, cfg: cand}
		minT := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			out.Zero()
			start := time.Now()
			body.Run(0, n)
			if d := time.Since(start); d < minT {
				minT = d
			}
		}
		return minT
	}
	legacyT := timeCand(TileConfig{})
	best := TileConfig{}
	bestT := legacyT
	margin := legacyT - legacyT/10
	for _, cand := range tileCandidates {
		if !cand.enabled() {
			continue // legacy already timed
		}
		if minT := timeCand(cand); minT < margin && minT < bestT {
			bestT = minT
			best = cand
		}
	}
	return best
}

// --- MulInto micro-kernel -------------------------------------------------

// runTiled is mulBody's cache-blocked loop: k blocked in ascending order
// (preserving every output element's accumulation order), j blocked so a
// panel of b stays resident, 4x4 register tiles innermost.
func (t *mulBody) runTiled(lo, hi int) {
	m, b := t.m, t.b
	kc, jc := t.cfg.KC, t.cfg.JC
	for k0 := 0; k0 < m.C; k0 += kc {
		k1 := min(k0+kc, m.C)
		for j0 := 0; j0 < b.C; j0 += jc {
			j1 := min(j0+jc, b.C)
			i := lo
			for ; i+4 <= hi; i += 4 {
				t.mulTile4(i, j0, j1, k0, k1)
			}
			// Remainder rows: the legacy row loop restricted to this block.
			for ; i < hi; i++ {
				arow := m.Row(i)
				orow := t.out.Row(i)
				for k := k0; k < k1; k++ {
					a := arow[k]
					if a == 0 {
						continue
					}
					brow := b.Row(k)
					for j := j0; j < j1; j++ {
						orow[j] += a * brow[j]
					}
				}
			}
		}
	}
}

// mulTile4 accumulates the 4-row output band [i,i+4) over columns [j0,j1)
// and the k-block [k0,k1) in 4x4 register tiles. Accumulators load the
// current out values and store once per tile, so each element's addition
// chain is exactly the legacy one. The a-rows are re-sliced to a shared
// length and the 4-wide loads go through array pointers so the bounds
// checker stays out of the inner loop.
func (t *mulBody) mulTile4(i, j0, j1, k0, k1 int) {
	m, b, out := t.m, t.b, t.out
	a0 := m.Row(i)[k0:k1]
	a1 := m.Row(i + 1)[k0:k1][:len(a0)]
	a2 := m.Row(i + 2)[k0:k1][:len(a0)]
	a3 := m.Row(i + 3)[k0:k1][:len(a0)]
	o0, o1, o2, o3 := out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3)
	bData, bStride := b.Data, b.C
	j := j0
	for ; j+4 <= j1; j += 4 {
		p0 := (*[4]float64)(o0[j:])
		p1 := (*[4]float64)(o1[j:])
		p2 := (*[4]float64)(o2[j:])
		p3 := (*[4]float64)(o3[j:])
		c00, c01, c02, c03 := p0[0], p0[1], p0[2], p0[3]
		c10, c11, c12, c13 := p1[0], p1[1], p1[2], p1[3]
		c20, c21, c22, c23 := p2[0], p2[1], p2[2], p2[3]
		c30, c31, c32, c33 := p3[0], p3[1], p3[2], p3[3]
		boff := k0*bStride + j
		for k := 0; k < len(a0); k++ {
			bq := (*[4]float64)(bData[boff:])
			boff += bStride
			b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
			if av := a0[k]; av != 0 {
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
			}
			if av := a1[k]; av != 0 {
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
			}
			if av := a2[k]; av != 0 {
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
			}
			if av := a3[k]; av != 0 {
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
			}
		}
		p0[0], p0[1], p0[2], p0[3] = c00, c01, c02, c03
		p1[0], p1[1], p1[2], p1[3] = c10, c11, c12, c13
		p2[0], p2[1], p2[2], p2[3] = c20, c21, c22, c23
		p3[0], p3[1], p3[2], p3[3] = c30, c31, c32, c33
	}
	// Remainder columns, still 4 rows per pass.
	for ; j < j1; j++ {
		c0, c1, c2, c3 := o0[j], o1[j], o2[j], o3[j]
		boff := k0*bStride + j
		for k := 0; k < len(a0); k++ {
			bv := bData[boff]
			boff += bStride
			if av := a0[k]; av != 0 {
				c0 += av * bv
			}
			if av := a1[k]; av != 0 {
				c1 += av * bv
			}
			if av := a2[k]; av != 0 {
				c2 += av * bv
			}
			if av := a3[k]; av != 0 {
				c3 += av * bv
			}
		}
		o0[j], o1[j], o2[j], o3[j] = c0, c1, c2, c3
	}
}

// --- MulTInto micro-kernel ------------------------------------------------

// runTiled is mulTBody's cache-blocked loop: i blocked in ascending order
// (the accumulation axis of out = mᵀ*b), j blocked, 4x4 register tiles over
// (k, j) innermost. The chunk owns output rows [lo,hi).
func (t *mulTBody) runTiled(lo, hi int) {
	m, b := t.m, t.b
	ic, jc := t.cfg.KC, t.cfg.JC
	for i0 := 0; i0 < m.R; i0 += ic {
		i1 := min(i0+ic, m.R)
		for j0 := 0; j0 < b.C; j0 += jc {
			j1 := min(j0+jc, b.C)
			k := lo
			for ; k+4 <= hi; k += 4 {
				t.mulTTile4(k, j0, j1, i0, i1)
			}
			// Remainder output rows: legacy order restricted to this block.
			for i := i0; i < i1; i++ {
				arow := m.Row(i)
				brow := b.Row(i)
				for kk := k; kk < hi; kk++ {
					a := arow[kk]
					if a == 0 {
						continue
					}
					orow := t.out.Row(kk)
					for j := j0; j < j1; j++ {
						orow[j] += a * brow[j]
					}
				}
			}
		}
	}
}

// mulTTile4 accumulates the 4 output rows [k,k+4) of out = mᵀ*b over columns
// [j0,j1) and the i-block [i0,i1), keeping a 4x4 tile in registers. The four
// a-values per i are contiguous (m.Row(i)[k:k+4]) so both operand loads go
// through array pointers — one bounds check per 16 multiply-adds.
func (t *mulTBody) mulTTile4(k, j0, j1, i0, i1 int) {
	m, b, out := t.m, t.b, t.out
	o0, o1, o2, o3 := out.Row(k), out.Row(k+1), out.Row(k+2), out.Row(k+3)
	mData, mStride := m.Data, m.C
	bData, bStride := b.Data, b.C
	j := j0
	for ; j+4 <= j1; j += 4 {
		p0 := (*[4]float64)(o0[j:])
		p1 := (*[4]float64)(o1[j:])
		p2 := (*[4]float64)(o2[j:])
		p3 := (*[4]float64)(o3[j:])
		c00, c01, c02, c03 := p0[0], p0[1], p0[2], p0[3]
		c10, c11, c12, c13 := p1[0], p1[1], p1[2], p1[3]
		c20, c21, c22, c23 := p2[0], p2[1], p2[2], p2[3]
		c30, c31, c32, c33 := p3[0], p3[1], p3[2], p3[3]
		moff := i0*mStride + k
		boff := i0*bStride + j
		for i := i0; i < i1; i++ {
			aq := (*[4]float64)(mData[moff:])
			bq := (*[4]float64)(bData[boff:])
			moff += mStride
			boff += bStride
			b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
			if av := aq[0]; av != 0 {
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
			}
			if av := aq[1]; av != 0 {
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
			}
			if av := aq[2]; av != 0 {
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
			}
			if av := aq[3]; av != 0 {
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
			}
		}
		p0[0], p0[1], p0[2], p0[3] = c00, c01, c02, c03
		p1[0], p1[1], p1[2], p1[3] = c10, c11, c12, c13
		p2[0], p2[1], p2[2], p2[3] = c20, c21, c22, c23
		p3[0], p3[1], p3[2], p3[3] = c30, c31, c32, c33
	}
	for ; j < j1; j++ {
		c0, c1, c2, c3 := o0[j], o1[j], o2[j], o3[j]
		moff := i0*mStride + k
		boff := i0*bStride + j
		for i := i0; i < i1; i++ {
			aq := (*[4]float64)(mData[moff:])
			bv := bData[boff]
			moff += mStride
			boff += bStride
			if av := aq[0]; av != 0 {
				c0 += av * bv
			}
			if av := aq[1]; av != 0 {
				c1 += av * bv
			}
			if av := aq[2]; av != 0 {
				c2 += av * bv
			}
			if av := aq[3]; av != 0 {
				c3 += av * bv
			}
		}
		o0[j], o1[j], o2[j], o3[j] = c0, c1, c2, c3
	}
}
