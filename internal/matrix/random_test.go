package matrix

import (
	"fmt"
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d count %d far from uniform", b, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestDeriveSeedUnique enumerates every (stream, round) pair the engines
// actually use — plus adversarial prefix/suffix pairs — across several base
// seeds and asserts all derived seeds are distinct. This is the regression
// gate for the old ad-hoc "base + constant" offsets, where two streams were
// one subtraction apart from colliding.
func TestDeriveSeedUnique(t *testing.T) {
	streams := []string{
		// every named stream in the tree
		"ssvd/omega", "sample",
		"rsvd/omega", "rsvd/local-omega",
		"ppca/init-c", "ppca/init-ss", "ppca/smart-guess", "ppca/ideal",
		// adversarial: common prefixes and concatenation ambiguity
		"a", "ab", "b", "a/b", "ab/", "",
	}
	bases := []uint64{0, 1, 42, 31, 0xACC, 0x55D, math.MaxUint64}
	seen := map[uint64]string{}
	for _, base := range bases {
		for _, s := range streams {
			for round := uint64(0); round < 64; round++ {
				d := DeriveSeed(base, s, round)
				id := fmt.Sprintf("base=%d stream=%q round=%d", base, s, round)
				if prev, dup := seen[d]; dup {
					t.Fatalf("derived seed collision: %s and %s both map to %#x", prev, id, d)
				}
				seen[d] = id
			}
		}
	}
	// Derivation must differ from the base itself and be stable.
	if DeriveSeed(42, "ssvd/omega", 1) != DeriveSeed(42, "ssvd/omega", 1) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, "ssvd/omega", 1) == 42 {
		t.Fatal("DeriveSeed returned its base unchanged")
	}
}

func TestNormRndDims(t *testing.T) {
	m := NormRnd(NewRNG(1), 3, 4)
	if m.R != 3 || m.C != 4 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	var nonzero int
	for _, v := range m.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 12 {
		t.Fatalf("expected all 12 entries nonzero w.h.p., got %d", nonzero)
	}
}
