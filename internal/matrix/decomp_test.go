package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func isOrthonormalCols(m *Dense, tol float64) bool {
	g := m.MulT(m) // mᵀm should be I
	for i := 0; i < g.R; i++ {
		for j := 0; j < g.C; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

func TestQRReconstruction(t *testing.T) {
	rng := NewRNG(21)
	a := NormRnd(rng, 8, 5)
	q, r := QR(a)
	if q.R != 8 || q.C != 5 || r.R != 5 || r.C != 5 {
		t.Fatalf("dims Q %dx%d R %dx%d", q.R, q.C, r.R, r.C)
	}
	denseAlmostEq(t, q.Mul(r), a, 1e-10)
	if !isOrthonormalCols(q, 1e-10) {
		t.Fatal("Q columns not orthonormal")
	}
	// R upper triangular.
	for i := 1; i < r.R; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(r.At(i, j)) > 1e-12 {
				t.Fatalf("R[%d,%d] = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSquare(t *testing.T) {
	rng := NewRNG(22)
	a := NormRnd(rng, 6, 6)
	q, r := QR(a)
	denseAlmostEq(t, q.Mul(r), a, 1e-10)
	if !isOrthonormalCols(q, 1e-10) {
		t.Fatal("Q not orthonormal")
	}
}

func TestQRProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 100)
		n := 1 + int(seed)%5
		m := n + int(seed)%6
		a := NormRnd(rng, m, n)
		q, r := QR(a)
		return q.Mul(r).MaxAbsDiff(a) < 1e-9 && isOrthonormalCols(q, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGramSchmidt(t *testing.T) {
	rng := NewRNG(23)
	a := NormRnd(rng, 7, 4)
	rank := GramSchmidt(a)
	if rank != 4 {
		t.Fatalf("rank = %d", rank)
	}
	if !isOrthonormalCols(a, 1e-10) {
		t.Fatal("not orthonormal after Gram-Schmidt")
	}
}

func TestGramSchmidtDependentColumns(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // col1 = 2*col0
	rank := GramSchmidt(a)
	if rank != 1 {
		t.Fatalf("rank = %d want 1", rank)
	}
}

func TestSymEigenSmall(t *testing.T) {
	// Known: [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDenseFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := SymEigen(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	// A*v = lambda*v.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av := a.MulVec(v)
		for i := range av {
			if !almostEq(av[i], vals[k]*v[i], 1e-10) {
				t.Fatalf("eigenpair %d violated: %v vs %v", k, av, vals[k])
			}
		}
	}
}

func TestSymEigenRandom(t *testing.T) {
	rng := NewRNG(31)
	b := NormRnd(rng, 9, 9)
	a := b.MulT(b) // symmetric PSD
	vals, vecs := SymEigen(a)
	if !isOrthonormalCols(vecs, 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
	// Descending order, nonnegative for PSD.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Reconstruction A = V diag(vals) Vᵀ.
	recon := vecs.Mul(Diag(vals)).MulBT(vecs)
	denseAlmostEq(t, recon, a, 1e-8)
}

func TestSymEigenTraceSumProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 500)
		n := 2 + int(seed)%7
		b := NormRnd(rng, n, n)
		a := b.Add(b.T()) // symmetric
		a.ScaleInPlace(0.5)
		vals, _ := SymEigen(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEq(sum, a.Trace(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopEigen(t *testing.T) {
	a := Diag([]float64{5, 1, 9, 3})
	vals, vecs := TopEigen(a, 2)
	if len(vals) != 2 || !almostEq(vals[0], 9, 1e-10) || !almostEq(vals[1], 5, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	if vecs.C != 2 || vecs.R != 4 {
		t.Fatalf("vecs dims %dx%d", vecs.R, vecs.C)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := NewRNG(41)
	a := NormRnd(rng, 8, 5)
	u, s, v := SVD(a)
	if u.R != 8 || u.C != 5 || v.R != 5 || v.C != 5 || len(s) != 5 {
		t.Fatalf("dims U %dx%d S %d V %dx%d", u.R, u.C, len(s), v.R, v.C)
	}
	denseAlmostEq(t, Reconstruct(u, s, v), a, 1e-9)
	if !isOrthonormalCols(u, 1e-9) || !isOrthonormalCols(v, 1e-9) {
		t.Fatal("U or V not orthonormal")
	}
	for i := range s {
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
		if i > 0 && s[i] > s[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := NewRNG(42)
	a := NormRnd(rng, 4, 9)
	u, s, v := SVD(a)
	denseAlmostEq(t, Reconstruct(u, s, v), a, 1e-9)
}

func TestSVDKnownRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewDense(4, 3)
	OuterAdd(a, []float64{1, 2, 3, 4}, []float64{1, 1, 2})
	_, s, _ := SVD(a)
	if s[0] < 1 {
		t.Fatalf("leading singular value too small: %v", s)
	}
	for _, v := range s[1:] {
		if v > 1e-10 {
			t.Fatalf("rank-1 matrix has extra singular values: %v", s)
		}
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// Singular values of A are sqrt of eigenvalues of AᵀA.
	rng := NewRNG(43)
	a := NormRnd(rng, 10, 6)
	_, s, _ := SVD(a)
	vals, _ := SymEigen(a.MulT(a))
	for i := range s {
		if !almostEq(s[i]*s[i], vals[i], 1e-8) {
			t.Fatalf("s[%d]² = %v, eig = %v", i, s[i]*s[i], vals[i])
		}
	}
}

func TestSVDProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 900)
		m := 1 + int(seed)%8
		n := 1 + int(seed)%8
		a := NormRnd(rng, m, n)
		u, s, v := SVD(a)
		return Reconstruct(u, s, v).MaxAbsDiff(a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopSVD(t *testing.T) {
	rng := NewRNG(44)
	a := NormRnd(rng, 7, 5)
	u, s, v := TopSVD(a, 2)
	if u.C != 2 || v.C != 2 || len(s) != 2 {
		t.Fatal("TopSVD dims")
	}
	_, sFull, _ := SVD(a)
	if !almostEq(s[0], sFull[0], 1e-10) || !almostEq(s[1], sFull[1], 1e-10) {
		t.Fatalf("TopSVD values %v vs %v", s, sFull[:2])
	}
}

func TestLanczosSVDMatchesDenseSVD(t *testing.T) {
	rng := NewRNG(51)
	s := randomSparse(rng, 30, 12, 0.3)
	u, sv, v := LanczosSVD(SparseOp{M: s}, 4, 12, NewRNG(1))
	_, want, _ := SVD(s.Dense())
	for i := 0; i < 4; i++ {
		if !almostEq(sv[i], want[i], 1e-6) {
			t.Fatalf("lanczos s[%d] = %v want %v (all %v)", i, sv[i], want[i], sv)
		}
	}
	if !isOrthonormalCols(u, 1e-8) || !isOrthonormalCols(v, 1e-8) {
		t.Fatal("Lanczos U/V not orthonormal")
	}
	// Check singular triplets: A*v_i ≈ s_i*u_i.
	for i := 0; i < 4; i++ {
		av := s.MulVec(v.Col(i))
		ui := u.Col(i)
		for r := range av {
			if !almostEq(av[r], sv[i]*ui[r], 1e-6) {
				t.Fatalf("triplet %d violated at row %d", i, r)
			}
		}
	}
}

func TestLanczosCenteredOpMatchesCenteredSVD(t *testing.T) {
	rng := NewRNG(52)
	s := randomSparse(rng, 25, 10, 0.4)
	mean := s.ColMeans()
	op := CenteredOp{M: s, Mean: mean}
	_, sv, _ := LanczosSVD(op, 3, 10, NewRNG(2))
	_, want, _ := SVD(s.Dense().SubRowVec(mean))
	for i := 0; i < 3; i++ {
		if !almostEq(sv[i], want[i], 1e-6) {
			t.Fatalf("centered lanczos s[%d] = %v want %v", i, sv[i], want[i])
		}
	}
}

func TestCenteredOpMatchesDense(t *testing.T) {
	rng := NewRNG(53)
	s := randomSparse(rng, 8, 5, 0.5)
	mean := s.ColMeans()
	op := CenteredOp{M: s, Mean: mean}
	dc := s.Dense().SubRowVec(mean)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := op.Apply(x)
	want := dc.MulVec(x)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10) {
			t.Fatalf("Apply[%d] = %v want %v", i, got[i], want[i])
		}
	}
	y := make([]float64, 8)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	gotT := op.ApplyT(y)
	wantT := dc.MulVecT(y)
	for i := range wantT {
		if !almostEq(gotT[i], wantT[i], 1e-10) {
			t.Fatalf("ApplyT[%d] = %v want %v", i, gotT[i], wantT[i])
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := NewRNG(61)
	b := NormRnd(rng, 6, 6)
	a := b.MulT(b).AddScaledIdentity(1) // SPD
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, l.MulBT(l), a, 1e-9)
	rhs := []float64{1, 2, 3, 4, 5, 6}
	x := CholeskySolve(l, rhs)
	got := a.MulVec(x)
	for i := range rhs {
		if !almostEq(got[i], rhs[i], 1e-8) {
			t.Fatalf("solve residual at %d: %v vs %v", i, got[i], rhs[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestInverse(t *testing.T) {
	rng := NewRNG(62)
	a := NormRnd(rng, 5, 5).AddScaledIdentity(3)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, a.Mul(inv), Identity(5), 1e-9)
	denseAlmostEq(t, inv.Mul(a), Identity(5), 1e-9)
}

func TestInverseSingular(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := NewRNG(63)
	b := NormRnd(rng, 4, 4)
	a := b.MulT(b).AddScaledIdentity(0.5)
	rhs := NormRnd(rng, 3, 4) // solve rows: X*a = rhs
	x, err := SolveSPD(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, x.Mul(a), rhs, 1e-8)
}

func TestInverseIdentityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 7777)
		n := 1 + int(seed)%6
		a := NormRnd(rng, n, n).AddScaledIdentity(float64(n) + 2)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).MaxAbsDiff(Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRMatchesQR(t *testing.T) {
	rng := NewRNG(81)
	a := NormRnd(rng, 12, 7)
	_, r1 := QR(a)
	r2 := QRR(a)
	denseAlmostEq(t, r1, r2, 0)
	// RᵀR == AᵀA (the invariant TSQR relies on).
	denseAlmostEq(t, r2.MulT(r2), a.MulT(a), 1e-9)
}
