package matrix

import (
	"fmt"
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition A = U * diag(S) * Vᵀ of
// an m-by-n matrix with m >= n, using the Golub–Reinsch algorithm: Householder
// bidiagonalization followed by implicit-shift QR on the bidiagonal matrix
// (the SVD-Bidiag method of §2.2). U is m-by-n with orthonormal columns, V is
// n-by-n orthogonal, and singular values are returned in descending order.
//
// Hot loops run as row-major sweeps over the raw Data slices; the
// column-walking textbook formulation is several times slower on matrices
// beyond a few hundred columns.
func SVD(a *Dense) (u *Dense, s []float64, v *Dense) {
	m, n := a.Dims()
	if m < n {
		// Decompose the transpose and swap factors.
		ut, st, vt := SVD(a.T())
		return vt, st, ut
	}
	u = a.Clone()
	v = NewDense(n, n)
	s = make([]float64, n)
	rv1 := make([]float64, n)
	sbuf := make([]float64, n)
	ud := u.Data
	vd := v.Data
	var g, scale, anorm float64

	// Householder bidiagonalization.
	for i := 0; i < n; i++ {
		l := i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(ud[k*n+i])
			}
			if scale != 0 {
				var ss float64
				for k := i; k < m; k++ {
					ud[k*n+i] /= scale
					ss += ud[k*n+i] * ud[k*n+i]
				}
				f := ud[i*n+i]
				g = -withSign(math.Sqrt(ss), f)
				h := f*g - ss
				ud[i*n+i] = f - g
				if l < n {
					// Left transform on trailing columns: two row-major
					// sweeps via sbuf[j] = (Σ_k u[k,i]·u[k,j]) / h.
					for j := l; j < n; j++ {
						sbuf[j] = 0
					}
					for k := i; k < m; k++ {
						uki := ud[k*n+i]
						if uki == 0 {
							continue
						}
						row := ud[k*n+l : k*n+n]
						for t, rv := range row {
							sbuf[l+t] += uki * rv
						}
					}
					for j := l; j < n; j++ {
						sbuf[j] /= h
					}
					for k := i; k < m; k++ {
						uki := ud[k*n+i]
						if uki == 0 {
							continue
						}
						row := ud[k*n+l : k*n+n]
						for t := range row {
							row[t] += sbuf[l+t] * uki
						}
					}
				}
				for k := i; k < m; k++ {
					ud[k*n+i] *= scale
				}
			}
		}
		s[i] = scale * g
		g, scale = 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(ud[i*n+k])
			}
			if scale != 0 {
				var ss float64
				for k := l; k < n; k++ {
					ud[i*n+k] /= scale
					ss += ud[i*n+k] * ud[i*n+k]
				}
				f := ud[i*n+l]
				g = -withSign(math.Sqrt(ss), f)
				h := f*g - ss
				ud[i*n+l] = f - g
				for k := l; k < n; k++ {
					rv1[k] = ud[i*n+k] / h
				}
				// Right transform on trailing rows (already row-major).
				rowi := ud[i*n+l : i*n+n]
				rv1p := rv1[l:n]
				for j := l; j < m; j++ {
					rowj := ud[j*n+l : j*n+n]
					var sum float64
					for t, rv := range rowj {
						sum += rv * rowi[t]
					}
					for t := range rowj {
						rowj[t] += sum * rv1p[t]
					}
				}
				for k := l; k < n; k++ {
					ud[i*n+k] *= scale
				}
			}
		}
		if t := math.Abs(s[i]) + math.Abs(rv1[i]); t > anorm {
			anorm = t
		}
	}

	// Accumulate right-hand transformations.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		if i < n-1 {
			if g != 0 {
				uil := ud[i*n+l]
				for j := l; j < n; j++ {
					vd[j*n+i] = (ud[i*n+j] / uil) / g
				}
				// sbuf[j] = Σ_k u[i,k]·v[k,j], then v[k,j] += sbuf[j]·v[k,i].
				for j := l; j < n; j++ {
					sbuf[j] = 0
				}
				for k := l; k < n; k++ {
					uik := ud[i*n+k]
					if uik == 0 {
						continue
					}
					row := vd[k*n+l : k*n+n]
					for t, rv := range row {
						sbuf[l+t] += uik * rv
					}
				}
				for k := l; k < n; k++ {
					vki := vd[k*n+i]
					if vki == 0 {
						continue
					}
					row := vd[k*n+l : k*n+n]
					for t := range row {
						row[t] += sbuf[l+t] * vki
					}
				}
			}
			for j := l; j < n; j++ {
				vd[i*n+j] = 0
				vd[j*n+i] = 0
			}
		}
		vd[i*n+i] = 1
		g = rv1[i]
	}

	// Accumulate left-hand transformations.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		g = s[i]
		for j := l; j < n; j++ {
			ud[i*n+j] = 0
		}
		if g != 0 {
			g = 1 / g
			if l < n {
				// sbuf[j] = Σ_{k=l..m} u[k,i]·u[k,j]; f_j = (sbuf[j]/u[i,i])·g;
				// then u[k,j] += f_j·u[k,i] for k = i..m.
				for j := l; j < n; j++ {
					sbuf[j] = 0
				}
				for k := l; k < m; k++ {
					uki := ud[k*n+i]
					if uki == 0 {
						continue
					}
					row := ud[k*n+l : k*n+n]
					for t, rv := range row {
						sbuf[l+t] += uki * rv
					}
				}
				uii := ud[i*n+i]
				for j := l; j < n; j++ {
					sbuf[j] = (sbuf[j] / uii) * g
				}
				for k := i; k < m; k++ {
					uki := ud[k*n+i]
					row := ud[k*n+l : k*n+n]
					for t := range row {
						row[t] += sbuf[l+t] * uki
					}
				}
			}
			for j := i; j < m; j++ {
				ud[j*n+i] *= g
			}
		} else {
			for j := i; j < m; j++ {
				ud[j*n+i] = 0
			}
		}
		ud[i*n+i]++
	}

	// Diagonalize the bidiagonal form: implicit-shift QR.
	for k := n - 1; k >= 0; k-- {
		for its := 0; its < 60; its++ {
			flag := true
			var l, nm int
			for l = k; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm {
					flag = false
					break
				}
				if math.Abs(s[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				c, ss := 0.0, 1.0
				for i := l; i <= k; i++ {
					f := ss * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g = s[i]
					h := math.Hypot(f, g)
					s[i] = h
					h = 1 / h
					c = g * h
					ss = -f * h
					for j := 0; j < m; j++ {
						base := j * n
						y := ud[base+nm]
						z := ud[base+i]
						ud[base+nm] = y*c + z*ss
						ud[base+i] = z*c - y*ss
					}
				}
			}
			z := s[k]
			if l == k {
				if z < 0 {
					s[k] = -z
					for j := 0; j < n; j++ {
						vd[j*n+k] = -vd[j*n+k]
					}
				}
				break
			}
			if its == 59 {
				panic("matrix: SVD failed to converge in 60 iterations")
			}
			x := s[l]
			nm = k - 1
			y := s[nm]
			g = rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = math.Hypot(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+withSign(g, f)))-h)) / x
			c, ss := 1.0, 1.0
			for j := l; j <= nm; j++ {
				i := j + 1
				g = rv1[i]
				y = s[i]
				h = ss * g
				g = c * g
				zz := math.Hypot(f, h)
				rv1[j] = zz
				c = f / zz
				ss = h / zz
				f = x*c + g*ss
				g = g*c - x*ss
				h = y * ss
				y *= c
				for jj := 0; jj < n; jj++ {
					base := jj * n
					xx := vd[base+j]
					zzv := vd[base+i]
					vd[base+j] = xx*c + zzv*ss
					vd[base+i] = zzv*c - xx*ss
				}
				zz = math.Hypot(f, h)
				s[j] = zz
				if zz != 0 {
					zz = 1 / zz
					c = f * zz
					ss = h * zz
				}
				f = c*g + ss*y
				x = c*y - ss*g
				for jj := 0; jj < m; jj++ {
					base := jj * n
					yy := ud[base+j]
					zzu := ud[base+i]
					ud[base+j] = yy*c + zzu*ss
					ud[base+i] = zzu*c - yy*ss
				}
			}
			rv1[l] = 0
			rv1[k] = f
			s[k] = x
		}
	}

	// Sort singular values in descending order, permuting U and V columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	sorted := true
	for i, id := range idx {
		if id != i {
			sorted = false
			break
		}
	}
	if sorted {
		return u, s, v
	}
	us := NewDense(m, n)
	vs := NewDense(n, n)
	ssorted := make([]float64, n)
	for out, in := range idx {
		ssorted[out] = s[in]
		for r := 0; r < m; r++ {
			us.Data[r*n+out] = ud[r*n+in]
		}
		for r := 0; r < n; r++ {
			vs.Data[r*n+out] = vd[r*n+in]
		}
	}
	return us, ssorted, vs
}

// TopSVD returns the leading k singular triplets of a.
func TopSVD(a *Dense, k int) (u *Dense, s []float64, v *Dense) {
	uf, sf, vf := SVD(a)
	n := len(sf)
	if k > n {
		k = n
	}
	u = NewDense(uf.R, k)
	v = NewDense(vf.R, k)
	for i := 0; i < uf.R; i++ {
		copy(u.Row(i), uf.Row(i)[:k])
	}
	for i := 0; i < vf.R; i++ {
		copy(v.Row(i), vf.Row(i)[:k])
	}
	return u, sf[:k], v
}

// Reconstruct returns U * diag(S) * Vᵀ for a thin SVD.
func Reconstruct(u *Dense, s []float64, v *Dense) *Dense {
	if u.C != len(s) || v.C != len(s) {
		panic(fmt.Sprintf("matrix: Reconstruct dims U %dx%d, S %d, V %dx%d", u.R, u.C, len(s), v.R, v.C))
	}
	us := u.Clone()
	for i := 0; i < us.R; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
	return us.MulBT(v)
}
