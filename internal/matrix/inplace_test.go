package matrix

import (
	"math"
	"testing"

	"spca/internal/parallel"
)

func randDense(r, c int, seed uint64) *Dense {
	rng := NewRNG(seed)
	return NormRnd(rng, r, c)
}

func bitsEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: dims %dx%d vs %dx%d", name, got.R, got.C, want.R, want.C)
	}
	for i, v := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got.Data[i], v)
		}
	}
}

func TestIntoVariantsMatchAllocatingKernels(t *testing.T) {
	a := randDense(37, 23, 1)
	b := randDense(23, 19, 2)
	out := NewDense(37, 19)
	// Dirty the output to prove Into fully overwrites.
	for i := range out.Data {
		out.Data[i] = math.NaN()
	}
	bitsEqual(t, "MulInto", a.MulInto(b, out), a.Mul(b))

	c := randDense(37, 19, 3)
	outT := NewDense(23, 19)
	outT.Data[0] = math.NaN()
	bitsEqual(t, "MulTInto", a.MulTInto(c, outT), a.MulT(c))

	d := randDense(41, 23, 4)
	outBT := NewDense(37, 41)
	outBT.Data[0] = math.NaN()
	bitsEqual(t, "MulBTInto", a.MulBTInto(d, outBT), a.MulBT(d))

	x := randDense(1, 37, 5).Row(0)
	vt := make([]float64, 23)
	vt[0] = math.NaN()
	got := a.MulVecTInto(x, vt)
	want := a.MulVecT(x)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("MulVecTInto element %d differs", i)
		}
	}
}

func TestAddScaledIntoMatchesScaleThenAdd(t *testing.T) {
	a := randDense(9, 9, 6)
	b := randDense(9, 9, 7)
	want := a.Add(b.Scale(0.37))
	out := NewDense(9, 9)
	bitsEqual(t, "AddScaledInto", AddScaledInto(out, a, 0.37, b), want)
	// Aliasing out with a must give the same result.
	aCopy := a.Clone()
	bitsEqual(t, "AddScaledInto-aliased", AddScaledInto(aCopy, aCopy, 0.37, b), want)
}

func TestTraceMulMatchesMulTrace(t *testing.T) {
	a := randDense(8, 13, 8)
	b := randDense(13, 8, 9)
	got := TraceMul(a, b)
	want := a.Mul(b).Trace()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("TraceMul = %v, Mul().Trace() = %v", got, want)
	}
}

func TestSolveSPDIntoMatchesSolveSPDAndReusesScratch(t *testing.T) {
	g := randDense(6, 6, 10)
	spd := g.MulT(g).AddScaledIdentity(1.5) // SPD by construction
	rhs := randDense(30, 6, 11)
	want, err := SolveSPD(spd, rhs)
	if err != nil {
		t.Fatal(err)
	}
	var ws SPDWorkspace
	out := NewDense(30, 6)
	if err := SolveSPDInto(spd, rhs, out, &ws); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "SolveSPDInto", out, want)

	// Warm workspace: repeated same-size solves must not allocate. Force the
	// pool sequential so goroutine scheduling doesn't count against us.
	parallel.SetSequential(true)
	defer parallel.SetSequential(false)
	if n := testing.AllocsPerRun(20, func() {
		if err := SolveSPDInto(spd, rhs, out, &ws); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm SolveSPDInto allocated %v per run, want 0", n)
	}
}

func TestInverseIntoReusedScratchIsClean(t *testing.T) {
	a := randDense(5, 5, 12)
	spd := a.MulT(a).AddScaledIdentity(2)
	want, err := Inverse(spd)
	if err != nil {
		t.Fatal(err)
	}
	out := NewDense(5, 5)
	w := NewDense(5, 10)
	// Poison the scratch: InverseInto must fully re-initialize it.
	for i := range w.Data {
		w.Data[i] = math.NaN()
	}
	if err := InverseInto(spd, out, w); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "InverseInto", out, want)
}

func TestSparseMulDenseIntoMatches(t *testing.T) {
	bld := NewSparseBuilder(12)
	rng := NewRNG(13)
	for i := 0; i < 20; i++ {
		var idx []int
		var vals []float64
		for j := 0; j < 12; j++ {
			if rng.Float64() < 0.3 {
				idx = append(idx, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		bld.AddRow(idx, vals)
	}
	s := bld.Build()
	b := randDense(12, 7, 14)
	out := NewDense(20, 7)
	out.Data[0] = math.NaN()
	bitsEqual(t, "MulDenseInto", s.MulDenseInto(b, out), s.MulDense(b))
}

func TestDensifyCenteredInto(t *testing.T) {
	row := SparseVector{Len: 6, Indices: []int{1, 4}, Values: []float64{2, -3}}
	mean := []float64{0.5, 1, 0, 0.25, 2, 0}
	idx := make([]int, 6)
	vals := make([]float64, 6)
	vals[2] = math.NaN() // must be overwritten
	got := DensifyCenteredInto(row, mean, idx, vals)
	want := []float64{-0.5, 1, 0, -0.25, -5, 0}
	for j := 0; j < 6; j++ {
		if got.Indices[j] != j {
			t.Fatalf("index %d = %d", j, got.Indices[j])
		}
		if got.Values[j] != want[j] {
			t.Fatalf("value %d = %v, want %v", j, got.Values[j], want[j])
		}
	}
}
