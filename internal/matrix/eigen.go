package matrix

import (
	"fmt"
	"math"
	"sort"

	"spca/internal/parallel"
)

// SymEigen computes the eigendecomposition of a symmetric matrix a,
// returning eigenvalues in descending order and the corresponding
// eigenvectors as the columns of vecs. a is not modified.
//
// The implementation is the classic two-stage dense path: Householder
// tridiagonalization followed by the implicit-shift QL iteration. This is the
// kernel MLlib-PCA-style algorithms run on the D-by-D covariance matrix.
func SymEigen(a *Dense) (vals []float64, vecs *Dense) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: SymEigen on non-square %dx%d", n, c))
	}
	if n == 0 {
		return nil, NewDense(0, 0)
	}
	z := a.Clone()
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // off-diagonal
	tred2(z, d, e)
	if !tqli(d, e, z) {
		panic("matrix: SymEigen failed to converge")
	}
	// Sort descending by eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] > d[idx[j]] })
	vals = make([]float64, n)
	vecs = NewDense(n, n)
	for out, in := range idx {
		vals[out] = d[in]
		for r := 0; r < n; r++ {
			vecs.Set(r, out, z.At(r, in))
		}
	}
	return vals, vecs
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form with
// diagonal d and off-diagonal e (e[0] unused), accumulating the orthogonal
// transformation in z.
func tred2(z *Dense, d, e []float64) {
	n := z.R
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					z.Set(i, k, z.At(i, k)/scale)
					h += z.At(i, k) * z.At(i, k)
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				// e[j] = (A·v)_j / h: each j reads only row/column data
				// untouched by other j's (writes go to column i, which no
				// inner sum reads), so the loop parallelizes with every g
				// accumulated in its original k order.
				parallel.For(l+1, flopGrain(2*(l+1)), func(lo, hi int) {
					for j := lo; j < hi; j++ {
						z.Set(j, i, z.At(i, j)/h)
						var g float64
						for k := 0; k <= j; k++ {
							g += z.At(j, k) * z.At(i, k)
						}
						for k := j + 1; k <= l; k++ {
							g += z.At(k, j) * z.At(i, k)
						}
						e[j] = g / h
					}
				})
				f = 0
				for j := 0; j <= l; j++ {
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				// Finish the e update first (the sequential loop interleaved
				// it, but row sweep j only reads e[k] for k <= j, which are
				// final by then — the values are identical), then apply the
				// symmetric rank-2 update with each chunk owning its rows.
				for j := 0; j <= l; j++ {
					e[j] -= hh * z.At(i, j)
				}
				parallel.For(l+1, flopGrain(2*(l+1)), func(lo, hi int) {
					for j := lo; j < hi; j++ {
						fj := z.At(i, j)
						gj := e[j]
						for k := 0; k <= j; k++ {
							z.Set(j, k, z.At(j, k)-fj*e[k]-gj*z.At(i, k))
						}
					}
				})
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			// Transformation accumulation: column j of z is read and written
			// only by its own iteration (rows i and columns i are read but
			// never written here since j <= l < i), so columns parallelize.
			parallel.For(l+1, flopGrain(4*(l+1)), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					var g float64
					for k := 0; k <= l; k++ {
						g += z.At(i, k) * z.At(k, j)
					}
					for k := 0; k <= l; k++ {
						z.Set(k, j, z.At(k, j)-g*z.At(k, i))
					}
				}
			})
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tqli runs the implicit-shift QL iteration on the tridiagonal matrix (d, e),
// accumulating eigenvectors into z. Returns false if it fails to converge.
func tqli(d, e []float64, z *Dense) bool {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return false
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+withSign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < len(d); k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return true
}

func withSign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// TopEigen returns the k largest eigenvalues and eigenvectors of symmetric a.
func TopEigen(a *Dense, k int) (vals []float64, vecs *Dense) {
	allVals, allVecs := SymEigen(a)
	if k > len(allVals) {
		k = len(allVals)
	}
	vals = allVals[:k]
	vecs = NewDense(allVecs.R, k)
	for i := 0; i < allVecs.R; i++ {
		copy(vecs.Row(i), allVecs.Row(i)[:k])
	}
	return vals, vecs
}
