package matrix

// LinOp is an abstract linear operator y = A*x / y = Aᵀ*x used by the Lanczos
// solver, so that a mean-centered sparse matrix can be applied without ever
// densifying it (mean propagation, §3.1 of the paper).
type LinOp interface {
	Dims() (r, c int)
	Apply(x []float64) []float64  // A * x, len(x) == c
	ApplyT(x []float64) []float64 // Aᵀ * x, len(x) == r
}

// SparseOp wraps a Sparse matrix as a LinOp.
type SparseOp struct{ M *Sparse }

// Dims implements LinOp.
func (o SparseOp) Dims() (int, int) { return o.M.R, o.M.C }

// Apply implements LinOp.
func (o SparseOp) Apply(x []float64) []float64 { return o.M.MulVec(x) }

// ApplyT implements LinOp.
func (o SparseOp) ApplyT(x []float64) []float64 { return o.M.MulVecT(x) }

// CenteredOp applies (Y - 1·meanᵀ) without materializing the centered matrix:
// (Y-1mᵀ)x = Yx - (mᵀx)·1 and (Y-1mᵀ)ᵀx = Yᵀx - (Σx)·m.
type CenteredOp struct {
	M    *Sparse
	Mean []float64
}

// Dims implements LinOp.
func (o CenteredOp) Dims() (int, int) { return o.M.R, o.M.C }

// Apply implements LinOp.
func (o CenteredOp) Apply(x []float64) []float64 {
	y := o.M.MulVec(x)
	mx := dot(o.Mean, x)
	for i := range y {
		y[i] -= mx
	}
	return y
}

// ApplyT implements LinOp.
func (o CenteredOp) ApplyT(x []float64) []float64 {
	y := o.M.MulVecT(x)
	var sx float64
	for _, v := range x {
		sx += v
	}
	for j := range y {
		y[j] -= sx * o.Mean[j]
	}
	return y
}

// DenseOp wraps a Dense matrix as a LinOp.
type DenseOp struct{ M *Dense }

// Dims implements LinOp.
func (o DenseOp) Dims() (int, int) { return o.M.R, o.M.C }

// Apply implements LinOp.
func (o DenseOp) Apply(x []float64) []float64 { return o.M.MulVec(x) }

// ApplyT implements LinOp.
func (o DenseOp) ApplyT(x []float64) []float64 { return o.M.MulVecT(x) }

// LanczosSVD computes the top-k singular triplets of the operator a using
// Golub–Kahan–Lanczos bidiagonalization with full reorthogonalization
// (the SVD-Lanczos method of §2.2, as implemented by Mahout/GraphLab).
// steps controls the Krylov subspace size; it must be >= k and is clamped to
// min(r, c). rng seeds the start vector.
func LanczosSVD(a LinOp, k, steps int, rng *RNG) (u *Dense, s []float64, v *Dense) {
	r, c := a.Dims()
	if k <= 0 {
		panic("matrix: LanczosSVD k must be positive")
	}
	minDim := r
	if c < minDim {
		minDim = c
	}
	if k > minDim {
		k = minDim
	}
	if steps < k {
		steps = k
	}
	if steps > minDim {
		steps = minDim
	}

	// Bidiagonalization: A*Vl = Ul*B, Aᵀ*Ul = Vl*Bᵀ with B (steps x steps)
	// upper bidiagonal holding alphas on the diagonal and betas above it.
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps) // beta[i] couples column i and i+1
	vcols := make([][]float64, 0, steps)
	ucols := make([][]float64, 0, steps)

	p := make([]float64, c)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	VecScale(1/VecNorm2(p), p)
	vcols = append(vcols, p)

	var beta float64
	for j := 0; j < steps; j++ {
		// u_j = A v_j - beta_{j-1} u_{j-1}
		uj := a.Apply(vcols[j])
		if j > 0 {
			AXPY(-beta, ucols[j-1], uj)
		}
		reorth(uj, ucols)
		alpha := VecNorm2(uj)
		if alpha < 1e-14 {
			break
		}
		VecScale(1/alpha, uj)
		ucols = append(ucols, uj)
		alphas = append(alphas, alpha)

		// v_{j+1} = Aᵀ u_j - alpha v_j
		vn := a.ApplyT(uj)
		AXPY(-alpha, vcols[j], vn)
		reorth(vn, vcols)
		beta = VecNorm2(vn)
		if j == steps-1 || beta < 1e-14 {
			break
		}
		VecScale(1/beta, vn)
		vcols = append(vcols, vn)
		betas = append(betas, beta)
	}

	m := len(alphas)
	if m == 0 {
		return NewDense(r, 0), nil, NewDense(c, 0)
	}
	// Small dense SVD of the m x m bidiagonal B.
	b := NewDense(m, m)
	for i := 0; i < m; i++ {
		b.Set(i, i, alphas[i])
		if i < len(betas) && i+1 < m {
			b.Set(i, i+1, betas[i])
		}
	}
	ub, sb, vb := SVD(b)
	if k > m {
		k = m
	}

	// U = Ul * ub[:, :k], V = Vl * vb[:, :k].
	u = NewDense(r, k)
	v = NewDense(c, k)
	ucol := make([]float64, r)
	vcol := make([]float64, c)
	for col := 0; col < k; col++ {
		for i := range ucol {
			ucol[i] = 0
		}
		for i := range vcol {
			vcol[i] = 0
		}
		for i := 0; i < m; i++ {
			if w := ub.At(i, col); w != 0 {
				AXPY(w, ucols[i], ucol)
			}
		}
		for i := 0; i < m && i < len(vcols); i++ {
			if w := vb.At(i, col); w != 0 {
				AXPY(w, vcols[i], vcol)
			}
		}
		u.SetCol(col, ucol)
		v.SetCol(col, vcol)
	}
	return u, sb[:k], v
}

// reorth removes from x its projections on all previously computed basis
// vectors (full reorthogonalization; cheap at the scales this repo runs).
func reorth(x []float64, basis [][]float64) {
	for _, q := range basis {
		proj := dot(x, q)
		if proj != 0 {
			AXPY(-proj, q, x)
		}
	}
}
