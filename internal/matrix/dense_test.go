package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func denseAlmostEq(t *testing.T, got, want *Dense, tol float64) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("dims %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	if d := got.MaxAbsDiff(want); d > tol {
		t.Fatalf("max abs diff %g > %g\ngot  %v\nwant %v", d, tol, got, want)
	}
}

func TestNewDenseFromRows(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.R != 3 || m.C != 2 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestNewDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewDenseFromRows([][]float64{{1, 2}, {3}})
}

func TestDenseAddSubScale(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFromRows([][]float64{{10, 20}, {30, 40}})
	denseAlmostEq(t, a.Add(b), NewDenseFromRows([][]float64{{11, 22}, {33, 44}}), 0)
	denseAlmostEq(t, b.Sub(a), NewDenseFromRows([][]float64{{9, 18}, {27, 36}}), 0)
	denseAlmostEq(t, a.Scale(2), NewDenseFromRows([][]float64{{2, 4}, {6, 8}}), 0)
	c := a.Clone()
	c.AddInPlace(b)
	denseAlmostEq(t, c, a.Add(b), 0)
	c = a.Clone()
	c.ScaleInPlace(-1)
	denseAlmostEq(t, c, a.Scale(-1), 0)
}

func TestDenseMul(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewDenseFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	want := NewDenseFromRows([][]float64{{58, 64}, {139, 154}})
	denseAlmostEq(t, a.Mul(b), want, 1e-12)
}

func TestDenseMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestDenseMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(1)
	a := NormRnd(rng, 7, 4)
	b := NormRnd(rng, 7, 5)
	denseAlmostEq(t, a.MulT(b), a.T().Mul(b), 1e-12)
}

func TestDenseMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := NormRnd(rng, 6, 4)
	b := NormRnd(rng, 5, 4)
	denseAlmostEq(t, a.MulBT(b), a.Mul(b.T()), 1e-12)
}

func TestDenseTranspose(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.R != 3 || at.C != 2 {
		t.Fatalf("dims %dx%d", at.R, at.C)
	}
	denseAlmostEq(t, at.T(), a, 0)
}

func TestDenseMulVec(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, -1})
	if got[0] != -1 || got[1] != -1 {
		t.Fatalf("MulVec = %v", got)
	}
	gt := a.MulVecT([]float64{1, -1})
	if gt[0] != -2 || gt[1] != -2 {
		t.Fatalf("MulVecT = %v", gt)
	}
}

func TestTraceAndIdentity(t *testing.T) {
	if got := Identity(4).Trace(); got != 4 {
		t.Fatalf("trace(I4) = %v", got)
	}
	d := Diag([]float64{1, 2, 3})
	if got := d.Trace(); got != 6 {
		t.Fatalf("trace(diag(1,2,3)) = %v", got)
	}
}

func TestAddScaledIdentity(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.AddScaledIdentity(10)
	want := NewDenseFromRows([][]float64{{11, 2}, {3, 14}})
	denseAlmostEq(t, got, want, 0)
	// Original untouched.
	if a.At(0, 0) != 1 {
		t.Fatal("AddScaledIdentity mutated receiver")
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseFromRows([][]float64{{3, -4}})
	if !almostEq(a.Frobenius(), 5, 1e-12) {
		t.Fatalf("frobenius = %v", a.Frobenius())
	}
	if !almostEq(a.FrobeniusSq(), 25, 1e-12) {
		t.Fatalf("frobeniusSq = %v", a.FrobeniusSq())
	}
	if !almostEq(a.Norm1(), 7, 1e-12) {
		t.Fatalf("norm1 = %v", a.Norm1())
	}
}

func TestColMeansAndSubRowVec(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 10}, {3, 20}})
	means := a.ColMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("col means = %v", means)
	}
	c := a.SubRowVec(means)
	cm := c.ColMeans()
	if !almostEq(cm[0], 0, 1e-15) || !almostEq(cm[1], 0, 1e-15) {
		t.Fatalf("centered col means = %v", cm)
	}
}

func TestColSetColSliceRows(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	col := a.Col(1)
	if col[0] != 2 || col[2] != 6 {
		t.Fatalf("col = %v", col)
	}
	a.SetCol(0, []float64{9, 9, 9})
	if a.At(1, 0) != 9 {
		t.Fatal("SetCol failed")
	}
	s := a.SliceRows(1, 3)
	if s.R != 2 || s.At(0, 1) != 4 {
		t.Fatalf("SliceRows got %v", s)
	}
}

func TestOuterAdd(t *testing.T) {
	out := NewDense(2, 3)
	OuterAdd(out, []float64{1, 2}, []float64{3, 4, 5})
	want := NewDenseFromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	denseAlmostEq(t, out, want, 0)
	OuterAdd(out, []float64{1, 0}, []float64{1, 1, 1})
	if out.At(0, 0) != 4 || out.At(1, 0) != 6 {
		t.Fatal("OuterAdd accumulate failed")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
	if !almostEq(VecNorm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("VecNorm2")
	}
	if VecNorm1([]float64{-3, 4}) != 7 {
		t.Fatal("VecNorm1")
	}
	v := VecSub([]float64{5, 5}, []float64{2, 3})
	if v[0] != 3 || v[1] != 2 {
		t.Fatal("VecSub")
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := NewRNG(99)
	f := func(seed uint8) bool {
		r := NewRNG(uint64(seed) + rng.Uint64()%1000)
		a := NormRnd(r, 3+int(seed)%4, 2+int(seed)%3)
		b := NormRnd(r, a.C, 2+int(seed)%5)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace(A*B) == trace(B*A).
func TestTraceCyclicProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed))
		n := 2 + int(seed)%5
		m := 2 + int(seed)%4
		a := NormRnd(r, n, m)
		b := NormRnd(r, m, n)
		return almostEq(a.Mul(b).Trace(), b.Mul(a).Trace(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius² is invariant under transposition.
func TestFrobeniusTransposeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed) * 7)
		a := NormRnd(r, 1+int(seed)%6, 1+int(seed)%7)
		return almostEq(a.FrobeniusSq(), a.T().FrobeniusSq(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
