package matrix

import "math"

// RNG is a small deterministic random number generator (splitmix64 core with
// a Box–Muller Gaussian transform). It is self-contained so experiment output
// is bit-reproducible across Go releases, unlike math/rand whose stream is
// only guaranteed per major version.
type RNG struct {
	state uint64
	// cached second Gaussian from Box–Muller
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("matrix: RNG.Intn non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// DeriveSeed expands one base seed into an independent sub-seed for a named
// random stream and round. It is the single seed-derivation scheme shared by
// every engine (ssvd Ω draws, rsvd sketch rounds, error-sample index draws):
// the FNV-1a hash of (base, stream, round) — with an 0xFF separator after the
// stream so distinct (stream, round) pairs can never produce the same byte
// sequence — pushed through a splitmix64 finalizer so structured inputs
// (consecutive rounds, common prefixes) still land far apart in seed space.
// Ad-hoc "base + constant" offsets are banned: two offset streams are only
// one subtraction away from colliding, whereas distinct DeriveSeed streams
// are independent by construction.
func DeriveSeed(base uint64, stream string, round uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(base)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	mix(round)
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// NormRnd returns an r-by-c matrix of standard normal deviates, matching the
// paper's normrnd(r, c) pseudo-code helper.
func NormRnd(rng *RNG, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
