package matrix

import (
	"fmt"
	"math"

	"spca/internal/parallel"
)

// QR computes the thin QR decomposition of an r-by-c matrix with r >= c using
// Householder reflections: A = Q*R with Q r-by-c having orthonormal columns
// and R c-by-c upper triangular.
func QR(a *Dense) (q, r *Dense) {
	w := a.Clone()
	betas := householder(w)
	r = extractR(w)
	q = formThinQ(w, betas)
	return q, r
}

// QRR computes only the R factor of the thin QR decomposition — half the
// work of QR when Q is not needed, e.g. in TSQR reductions where only the
// triangular factors travel.
func QRR(a *Dense) *Dense {
	w := a.Clone()
	householder(w)
	return extractR(w)
}

// householder reduces w in place: R on and above the diagonal, the scaled
// Householder vectors below it. Returns the beta coefficients.
//
// The reflection is applied with two row-major sweeps over the trailing
// submatrix (accumulate s = vᵀA, then A -= v·sᵀ), which keeps memory access
// sequential — the column-walking formulation is an order of magnitude
// slower on large matrices.
func householder(w *Dense) []float64 {
	m, n := w.Dims()
	if m < n {
		panic(fmt.Sprintf("matrix: QR requires rows >= cols, got %dx%d", m, n))
	}
	betas := make([]float64, n)
	s := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			v := w.Data[i*n+k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.Data[k*n+k]
		if alpha > 0 {
			norm = -norm
		}
		v0 := alpha - norm
		w.Data[k*n+k] = norm // R diagonal
		inv := 1 / v0
		for i := k + 1; i < m; i++ {
			w.Data[i*n+k] *= inv
		}
		beta := -v0 / norm
		betas[k] = beta

		// s = beta · (vᵀ · A[k:m, k+1:n]) with v_k = 1, row-major sweep.
		// Parallel over trailing columns: each chunk owns tail[lo:hi) and
		// accumulates its columns over i in ascending order, bit-identical
		// to the sequential sweep.
		tail := s[k+1 : n]
		for t := range tail {
			tail[t] = 0
		}
		parallel.For(len(tail), flopGrain(2*(m-k)), func(lo, hi int) {
			for i := k; i < m; i++ {
				vi := 1.0
				if i > k {
					vi = w.Data[i*n+k]
				}
				row := w.Data[i*n+k+1+lo : i*n+k+1+hi]
				for t, rv := range row {
					tail[lo+t] += vi * rv
				}
			}
		})
		for t := range tail {
			tail[t] *= beta
		}
		// A -= v · sᵀ, second row-major sweep; rows are independent, so this
		// one parallelizes over row bands.
		parallel.For(m-k, flopGrain(2*(n-k-1)), func(lo, hi int) {
			for i := k + lo; i < k+hi; i++ {
				vi := 1.0
				if i > k {
					vi = w.Data[i*n+k]
				}
				row := w.Data[i*n+k+1 : i*n+n]
				for t := range row {
					row[t] -= vi * tail[t]
				}
			}
		})
	}
	return betas
}

func extractR(w *Dense) *Dense {
	n := w.C
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(r.Row(i)[i:], w.Row(i)[i:])
	}
	return r
}

// formThinQ applies the stored reflections to the first n columns of I.
func formThinQ(w *Dense, betas []float64) *Dense {
	m, n := w.Dims()
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Data[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		if betas[k] == 0 {
			continue
		}
		// Each column j of Q is updated independently by reflection k, so
		// chunks over j are disjoint and values match the sequential loop.
		parallel.For(n, flopGrain(4*(m-k)), func(jlo, jhi int) {
			for j := jlo; j < jhi; j++ {
				s := q.Data[k*n+j]
				for i := k + 1; i < m; i++ {
					s += w.Data[i*n+k] * q.Data[i*n+j]
				}
				s *= betas[k]
				q.Data[k*n+j] -= s
				for i := k + 1; i < m; i++ {
					q.Data[i*n+j] -= s * w.Data[i*n+k]
				}
			}
		})
	}
	return q
}

// GramSchmidt orthonormalizes the columns of a in place using modified
// Gram–Schmidt, returning the number of numerically independent columns.
// Dependent columns are replaced with zeros.
func GramSchmidt(a *Dense) int {
	m, n := a.Dims()
	rank := 0
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for k := 0; k < j; k++ {
			prev := a.Col(k)
			proj := dot(col, prev)
			for i := 0; i < m; i++ {
				col[i] -= proj * prev[i]
			}
		}
		norm := VecNorm2(col)
		if norm < 1e-12 {
			for i := range col {
				col[i] = 0
			}
		} else {
			VecScale(1/norm, col)
			rank++
		}
		a.SetCol(j, col)
	}
	return rank
}
