package matrix

import (
	"fmt"
	"testing"

	"spca/internal/parallel"
)

// benchSeqPar runs the kernel once per iteration under both pool modes so
// per-kernel speedup can be read straight off the seq/par sub-benchmark pair.
func benchSeqPar(b *testing.B, fn func()) {
	b.Run("seq", func(b *testing.B) {
		parallel.SetSequential(true)
		defer parallel.SetSequential(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	b.Run("par", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
}

func BenchmarkKernelsMul(b *testing.B) {
	rng := NewRNG(1)
	for _, n := range []int{128, 384} {
		a := NormRnd(rng, n, n)
		c := NormRnd(rng, n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSeqPar(b, func() { a.Mul(c) })
		})
	}
}

func BenchmarkKernelsMulT(b *testing.B) {
	rng := NewRNG(2)
	a := NormRnd(rng, 2048, 64)
	c := NormRnd(rng, 2048, 64)
	benchSeqPar(b, func() { a.MulT(c) })
}

func BenchmarkKernelsMulBT(b *testing.B) {
	rng := NewRNG(3)
	a := NormRnd(rng, 1024, 64)
	c := NormRnd(rng, 1024, 64)
	benchSeqPar(b, func() { a.MulBT(c) })
}

func BenchmarkKernelsSparseMulDense(b *testing.B) {
	rng := NewRNG(4)
	const d, n, k = 4096, 2048, 32
	sb := NewSparseBuilder(d)
	for i := 0; i < n; i++ {
		var idx []int
		var vals []float64
		for j := i % 7; j < d; j += 29 {
			idx = append(idx, j)
			vals = append(vals, rng.NormFloat64())
		}
		sb.AddRow(idx, vals)
	}
	sp := sb.Build()
	dense := NormRnd(rng, d, k)
	benchSeqPar(b, func() { sp.MulDense(dense) })
}

func BenchmarkKernelsQRR(b *testing.B) {
	rng := NewRNG(5)
	a := NormRnd(rng, 1024, 48)
	benchSeqPar(b, func() { QRR(a) })
}

func BenchmarkKernelsSymEigen(b *testing.B) {
	rng := NewRNG(6)
	g := NormRnd(rng, 96, 96)
	sym := g.MulT(g)
	benchSeqPar(b, func() { SymEigen(sym) })
}

// BenchmarkKernelsInPlace measures the *Into kernel variants on warm
// workspaces: steady-state allocs/op must be exactly 0 (that is the contract
// the pooled EM and sketch paths are built on). The Mul kernels dispatch via
// pooled parallel.Runner bodies and SolveSPDInto caches its ForWorker closure
// in the workspace, so none of them allocate once warm; the AllocsPerRun gate
// in inplace_alloc_test.go pins this.
func BenchmarkKernelsInPlace(b *testing.B) {
	rng := NewRNG(7)
	const n = 192
	a := NormRnd(rng, n, n)
	c := NormRnd(rng, n, n)
	out := NewDense(n, n)
	b.Run("MulInto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.MulInto(c, out)
		}
	})
	b.Run("MulTInto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.MulTInto(c, out)
		}
	})
	b.Run("SolveSPDInto", func(b *testing.B) {
		spd := a.MulT(a)
		spd.AddScaledIdentity(float64(n))
		rhs := NormRnd(rng, 64, n)
		sol := NewDense(64, n)
		var ws SPDWorkspace
		if err := SolveSPDInto(spd, rhs, sol, &ws); err != nil { // warm the workspace
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := SolveSPDInto(spd, rhs, sol, &ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}
