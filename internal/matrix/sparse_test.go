package matrix

import (
	"testing"
	"testing/quick"
)

func buildTestSparse() *Sparse {
	// [ 1 0 2 ]
	// [ 0 0 0 ]
	// [ 0 3 0 ]
	b := NewSparseBuilder(3)
	b.AddRow([]int{0, 2}, []float64{1, 2})
	b.AddRow(nil, nil)
	b.AddRow([]int{1}, []float64{3})
	return b.Build()
}

func randomSparse(rng *RNG, r, c int, density float64) *Sparse {
	b := NewSparseBuilder(c)
	for i := 0; i < r; i++ {
		var idx []int
		var vals []float64
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				idx = append(idx, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		b.AddRow(idx, vals)
	}
	return b.Build()
}

func TestSparseBasics(t *testing.T) {
	m := buildTestSparse()
	if m.R != 3 || m.C != 3 || m.NNZ() != 3 {
		t.Fatalf("dims %dx%d nnz %d", m.R, m.C, m.NNZ())
	}
	if m.At(0, 2) != 2 || m.At(0, 1) != 0 || m.At(2, 1) != 3 {
		t.Fatal("At values wrong")
	}
	row := m.Row(0)
	if row.NNZ() != 2 || row.At(0) != 1 {
		t.Fatal("Row(0) wrong")
	}
	if row.Sum() != 3 || row.NormSq() != 5 {
		t.Fatalf("Sum/NormSq = %v/%v", row.Sum(), row.NormSq())
	}
	d := m.Dense()
	if d.At(0, 2) != 2 || d.At(1, 1) != 0 {
		t.Fatal("Dense expansion wrong")
	}
	if m.Density() != 3.0/9.0 {
		t.Fatalf("density = %v", m.Density())
	}
}

func TestSparseBuilderValidation(t *testing.T) {
	b := NewSparseBuilder(3)
	for _, bad := range [][]int{{2, 1}, {0, 0}, {3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for indices %v", bad)
				}
			}()
			vals := make([]float64, len(bad))
			b.AddRow(bad, vals)
		}()
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := NewRNG(3)
	d := NormRnd(rng, 5, 4)
	d.Set(1, 2, 0)
	d.Set(3, 0, 0)
	s := FromDense(d)
	denseAlmostEq(t, s.Dense(), d, 0)
	if s.NNZ() != 18 {
		t.Fatalf("nnz = %d", s.NNZ())
	}
}

func TestSparseColMeans(t *testing.T) {
	m := buildTestSparse()
	means := m.ColMeans()
	want := []float64{1.0 / 3, 1, 2.0 / 3}
	for j := range want {
		if !almostEq(means[j], want[j], 1e-15) {
			t.Fatalf("means = %v", means)
		}
	}
}

func TestSparseMulDenseMatchesDense(t *testing.T) {
	rng := NewRNG(7)
	s := randomSparse(rng, 10, 8, 0.3)
	b := NormRnd(rng, 8, 4)
	denseAlmostEq(t, s.MulDense(b), s.Dense().Mul(b), 1e-12)
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := NewRNG(8)
	s := randomSparse(rng, 9, 6, 0.4)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := s.MulVec(x)
	want := s.Dense().MulVec(x)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %v want %v", i, got[i], want[i])
		}
	}
	y := make([]float64, 9)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	gotT := s.MulVecT(y)
	wantT := s.Dense().MulVecT(y)
	for i := range wantT {
		if !almostEq(gotT[i], wantT[i], 1e-12) {
			t.Fatalf("MulVecT[%d] = %v want %v", i, gotT[i], wantT[i])
		}
	}
}

func TestCenteredFrobeniusMatchesDense(t *testing.T) {
	rng := NewRNG(11)
	s := randomSparse(rng, 12, 7, 0.35)
	mean := s.ColMeans()
	want := s.Dense().SubRowVec(mean).FrobeniusSq()
	simple := s.CenteredFrobeniusSqSimple(mean)
	fast := s.CenteredFrobeniusSq(mean)
	if !almostEq(simple, want, 1e-9) {
		t.Fatalf("simple = %v want %v", simple, want)
	}
	if !almostEq(fast, want, 1e-9) {
		t.Fatalf("fast = %v want %v", fast, want)
	}
}

// Property: the two Frobenius implementations agree on random matrices and means.
func TestCenteredFrobeniusProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 5)
		s := randomSparse(rng, 1+int(seed)%15, 1+int(seed)%10, 0.1+0.5*rng.Float64())
		mean := make([]float64, s.C)
		for j := range mean {
			mean[j] = rng.NormFloat64()
		}
		return almostEq(s.CenteredFrobeniusSq(mean), s.CenteredFrobeniusSqSimple(mean), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCenteredMulDenseMatchesExplicitCentering(t *testing.T) {
	rng := NewRNG(13)
	s := randomSparse(rng, 10, 6, 0.4)
	mean := s.ColMeans()
	c := NormRnd(rng, 6, 3)
	got := s.CenteredMulDense(mean, c)
	want := s.Dense().SubRowVec(mean).Mul(c)
	denseAlmostEq(t, got, want, 1e-12)
}

// Property: mean propagation identity Yc*C = Y*C - 1*(mᵀC) holds for any mean.
func TestMeanPropagationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*3 + 1)
		r := 1 + int(seed)%12
		c := 1 + int(seed)%9
		k := 1 + int(seed)%4
		s := randomSparse(rng, r, c, 0.5)
		mean := make([]float64, c)
		for j := range mean {
			mean[j] = rng.NormFloat64()
		}
		b := NormRnd(rng, c, k)
		got := s.CenteredMulDense(mean, b)
		want := s.Dense().SubRowVec(mean).Mul(b)
		return got.MaxAbsDiff(want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseSizeBytesAndMaxAbs(t *testing.T) {
	m := buildTestSparse()
	if m.SizeBytes() != int64(4*8+3*8+3*8) {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestSparseVectorDot(t *testing.T) {
	v := SparseVector{Len: 4, Indices: []int{1, 3}, Values: []float64{2, -1}}
	if got := v.Dot([]float64{5, 6, 7, 8}); got != 4 {
		t.Fatalf("Dot = %v", got)
	}
	d := v.Dense()
	if d[0] != 0 || d[1] != 2 || d[3] != -1 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestEmptySparse(t *testing.T) {
	m := NewSparse(0, 5)
	if m.NNZ() != 0 {
		t.Fatal("empty NNZ")
	}
	means := m.ColMeans()
	for _, v := range means {
		if v != 0 {
			t.Fatal("empty ColMeans should be zero")
		}
	}
	if m.Density() != 0 {
		t.Fatal("empty density")
	}
}
