package matrix

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// RowSource provides repeated sequential scans over the rows of a (possibly
// disk-resident) sparse matrix — the access pattern EM needs: a handful of
// full passes, never random access, never the whole matrix in memory.
type RowSource interface {
	// Dims returns the row and column counts.
	Dims() (n, d int)
	// Scan calls fn for every row in order. The SparseVector passed to fn
	// is only valid during the call. Scan may be called repeatedly.
	Scan(fn func(i int, row SparseVector) error) error
}

// SparseSource adapts an in-memory CSR matrix to RowSource.
type SparseSource struct{ M *Sparse }

// Dims implements RowSource.
func (s SparseSource) Dims() (int, int) { return s.M.R, s.M.C }

// Scan implements RowSource.
func (s SparseSource) Scan(fn func(int, SparseVector) error) error {
	for i := 0; i < s.M.R; i++ {
		if err := fn(i, s.M.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// FileRowSource streams rows from an spmx text file, opening the file fresh
// for every scan. Memory use is one row at a time, independent of N.
type FileRowSource struct {
	path string
	rows int
	cols int
	// budget is the per-scan bad-record allowance (0 = strict); skipped
	// counts the records the most recent scan dropped against it. Because
	// the file does not change between EM passes, every scan skips the same
	// records and the accounting is deterministic.
	budget  int
	skipped int64
}

// SetBadRecordBudget allows up to n malformed triplet lines per scan to be
// skipped (dropped) instead of failing the scan. n <= 0 restores the strict
// default.
func (s *FileRowSource) SetBadRecordBudget(n int) { s.budget = n }

// Skipped reports how many malformed records the most recent scan dropped.
func (s *FileRowSource) Skipped() int64 { return s.skipped }

// OpenFileRowSource validates the file header and returns a source.
func OpenFileRowSource(path string) (*FileRowSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows, cols, nnz int
	header, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("matrix: reading %s header: %w", path, err)
	}
	if _, err := fmt.Sscanf(header, "spmx %d %d %d", &rows, &cols, &nnz); err != nil {
		return nil, malformed("bad spmx header %q in %s", strings.TrimSpace(header), path)
	}
	if err := checkSparseHeader(int64(rows), int64(cols), int64(nnz)); err != nil {
		return nil, err
	}
	return &FileRowSource{path: path, rows: rows, cols: cols}, nil
}

// Dims implements RowSource.
func (s *FileRowSource) Dims() (int, int) { return s.rows, s.cols }

// Scan implements RowSource.
func (s *FileRowSource) Scan(fn func(int, SparseVector) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("matrix: empty file %s: %w", s.path, sc.Err())
	}

	cur := 0
	prevCol := -1
	s.skipped = 0
	var idx []int
	var vals []float64
	emitTo := func(row int) error {
		for cur < row {
			if err := fn(cur, SparseVector{Len: s.cols, Indices: idx, Values: vals}); err != nil {
				return err
			}
			idx, vals = idx[:0], vals[:0]
			cur++
			prevCol = -1
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ri, ci, v, perr := parseTriplet(line, s.rows, s.cols, cur, prevCol)
		if perr != nil {
			if s.skipped < int64(s.budget) {
				s.skipped++
				continue
			}
			return fmt.Errorf("%w (in %s)", perr, s.path)
		}
		if err := emitTo(ri); err != nil {
			return err
		}
		prevCol = ci
		idx = append(idx, ci)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return emitTo(s.rows)
}
