package matrix

import (
	"fmt"
	"math"
	"sort"

	"spca/internal/parallel"
)

// ReconTerms fills the per-column reconstruction-error terms of one sparse
// row against the rank-k model (mean, w): for every column j,
//
//	num[j] = |y_j - (mean[j] + xi · w_j)|   and   den[j] = |y_j|,
//
// where w_j is row j of the D-by-k loading matrix w and xi is the row's
// k-dimensional latent representation. Every algorithm package shares this
// inner loop for its sampled relative 1-norm error metric.
//
// Column chunks are independent (each chunk enters the row's index list by
// binary search and writes only its own num/den range), so the fill runs on
// the parallel pool; callers then accumulate num and den in ascending j,
// which keeps the final sums bit-identical to the historical sequential
// evaluation.
func ReconTerms(row SparseVector, mean []float64, w *Dense, xi, num, den []float64) {
	d := w.R
	if len(mean) != d || row.Len != d || len(num) < d || len(den) < d {
		panic(fmt.Sprintf("matrix: ReconTerms dims w %dx%d, mean %d, row %d, num %d, den %d",
			w.R, w.C, len(mean), row.Len, len(num), len(den)))
	}
	if len(xi) != w.C {
		panic(fmt.Sprintf("matrix: ReconTerms latent length %d, want %d", len(xi), w.C))
	}
	parallel.For(d, flopGrain(2*w.C), func(lo, hi int) {
		nz := sort.SearchInts(row.Indices, lo)
		for j := lo; j < hi; j++ {
			recon := mean[j] + dot(xi, w.Row(j))
			var yv float64
			if nz < row.NNZ() && row.Indices[nz] == j {
				yv = row.Values[nz]
				nz++
			}
			num[j] = math.Abs(yv - recon)
			den[j] = math.Abs(yv)
		}
	})
}
