package matrix

import (
	"testing"

	"spca/internal/parallel"
)

// TestInPlaceKernelsZeroAllocs is the allocation gate for the hot in-place
// kernels: on warm workspaces MulInto, MulTInto, MulBTInto, and SolveSPDInto
// must perform zero allocations per call. The gate measures the dispatch
// path, so it forces sequential mode: the truly-parallel path inevitably
// allocates for its worker goroutines (on every kernel, including
// SolveSPDInto), but the per-call closure escape this gate guards against
// happened on the inline path too — it is the caller-side allocation the
// pooled Runner bodies exist to eliminate.
func TestInPlaceKernelsZeroAllocs(t *testing.T) {
	parallel.SetSequential(true)
	defer parallel.SetSequential(false)

	rng := NewRNG(11)
	const n = 64
	a := NormRnd(rng, n, n)
	b := NormRnd(rng, n, n)
	out := NewDense(n, n)
	spd := a.MulT(a)
	spd.AddScaledIdentity(float64(n))
	rhs := NormRnd(rng, 16, n)
	sol := NewDense(16, n)
	var ws SPDWorkspace

	cases := []struct {
		name string
		fn   func()
	}{
		{"MulInto", func() { a.MulInto(b, out) }},
		{"MulTInto", func() { a.MulTInto(b, out) }},
		{"MulBTInto", func() { a.MulBTInto(b, out) }},
		{"SolveSPDInto", func() {
			if err := SolveSPDInto(spd, rhs, sol, &ws); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		c.fn() // warm pools and workspaces outside the measured runs
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// TestForRunnerMatchesFor checks the Runner dispatch path chunks identically
// to the closure path, including under forced multi-worker chunking.
func TestForRunnerMatchesFor(t *testing.T) {
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(0)
	rng := NewRNG(12)
	a := NormRnd(rng, 97, 53)
	b := NormRnd(rng, 53, 41)
	want := a.Mul(b)
	got := NewDense(97, 41)
	a.MulInto(b, got)
	if want.MaxAbsDiff(got) != 0 {
		t.Fatal("pooled Runner dispatch not bit-identical to allocating path")
	}
	gotT := NewDense(53, 53)
	wantT := a.MulT(a)
	a.MulTInto(a, gotT)
	if wantT.MaxAbsDiff(gotT) != 0 {
		t.Fatal("MulTInto Runner dispatch not bit-identical")
	}
}
