package matrix

import (
	"fmt"
	"math"
	"sort"

	"spca/internal/parallel"
)

// SparseVector is a sparse row: parallel slices of column indices (strictly
// increasing) and values. Len is the logical dimensionality D.
type SparseVector struct {
	Len     int
	Indices []int
	Values  []float64
}

// NNZ returns the number of stored (non-zero) entries.
func (v SparseVector) NNZ() int { return len(v.Indices) }

// At returns element j (zero if not stored).
func (v SparseVector) At(j int) float64 {
	k := sort.SearchInts(v.Indices, j)
	if k < len(v.Indices) && v.Indices[k] == j {
		return v.Values[k]
	}
	return 0
}

// Dot returns the dot product of v with the dense vector x (len must be v.Len).
func (v SparseVector) Dot(x []float64) float64 {
	if len(x) != v.Len {
		panic(fmt.Sprintf("matrix: SparseVector.Dot dims %d vs %d", v.Len, len(x)))
	}
	var s float64
	for k, j := range v.Indices {
		s += v.Values[k] * x[j]
	}
	return s
}

// Dense returns the dense expansion of v.
func (v SparseVector) Dense() []float64 {
	out := make([]float64, v.Len)
	for k, j := range v.Indices {
		out[j] = v.Values[k]
	}
	return out
}

// Sum returns the sum of the stored values.
func (v SparseVector) Sum() float64 {
	var s float64
	for _, x := range v.Values {
		s += x
	}
	return s
}

// NormSq returns the squared Euclidean norm of v.
func (v SparseVector) NormSq() float64 {
	var s float64
	for _, x := range v.Values {
		s += x * x
	}
	return s
}

// Sparse is a compressed-sparse-row (CSR) matrix with R rows and C columns.
type Sparse struct {
	R, C   int
	RowPtr []int // len R+1
	Cols   []int
	Vals   []float64
}

// NewSparse returns an empty CSR matrix with r rows and c columns.
func NewSparse(r, c int) *Sparse {
	return &Sparse{R: r, C: c, RowPtr: make([]int, r+1)}
}

// SparseBuilder incrementally assembles a CSR matrix row by row.
type SparseBuilder struct {
	c      int
	rowPtr []int
	cols   []int
	vals   []float64
}

// NewSparseBuilder returns a builder for matrices with c columns.
func NewSparseBuilder(c int) *SparseBuilder {
	return &SparseBuilder{c: c, rowPtr: []int{0}}
}

// AddRow appends a row given parallel index/value slices. Indices must be
// strictly increasing and < c. The slices are copied.
func (b *SparseBuilder) AddRow(indices []int, values []float64) {
	if len(indices) != len(values) {
		panic("matrix: SparseBuilder.AddRow length mismatch")
	}
	prev := -1
	for _, j := range indices {
		if j <= prev || j >= b.c {
			panic(fmt.Sprintf("matrix: SparseBuilder.AddRow bad index %d (prev %d, cols %d)", j, prev, b.c))
		}
		prev = j
	}
	b.cols = append(b.cols, indices...)
	b.vals = append(b.vals, values...)
	b.rowPtr = append(b.rowPtr, len(b.cols))
}

// AddDenseRow appends a dense row, storing only non-zero entries.
func (b *SparseBuilder) AddDenseRow(row []float64) {
	if len(row) != b.c {
		panic("matrix: SparseBuilder.AddDenseRow length mismatch")
	}
	for j, v := range row {
		if v != 0 {
			b.cols = append(b.cols, j)
			b.vals = append(b.vals, v)
		}
	}
	b.rowPtr = append(b.rowPtr, len(b.cols))
}

// Build finalizes the matrix. The builder must not be reused afterwards.
func (b *SparseBuilder) Build() *Sparse {
	return &Sparse{R: len(b.rowPtr) - 1, C: b.c, RowPtr: b.rowPtr, Cols: b.cols, Vals: b.vals}
}

// Dims returns the number of rows and columns.
func (m *Sparse) Dims() (r, c int) { return m.R, m.C }

// NNZ returns the total number of stored entries.
func (m *Sparse) NNZ() int { return len(m.Cols) }

// Row returns row i as a SparseVector whose slices alias the matrix storage.
func (m *Sparse) Row(i int) SparseVector {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return SparseVector{Len: m.C, Indices: m.Cols[lo:hi], Values: m.Vals[lo:hi]}
}

// At returns element (i, j).
func (m *Sparse) At(i, j int) float64 { return m.Row(i).At(j) }

// Dense returns the dense expansion of m.
func (m *Sparse) Dense() *Dense {
	out := NewDense(m.R, m.C)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for k, j := range row.Indices {
			orow[j] = row.Values[k]
		}
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *Dense) *Sparse {
	b := NewSparseBuilder(d.C)
	for i := 0; i < d.R; i++ {
		b.AddDenseRow(d.Row(i))
	}
	return b.Build()
}

// ColMeans returns the per-column means of m.
func (m *Sparse) ColMeans() []float64 {
	out := make([]float64, m.C)
	if m.R == 0 {
		return out
	}
	for k, j := range m.Cols {
		out[j] += m.Vals[k]
	}
	inv := 1.0 / float64(m.R)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// MulDense returns m*b for dense b (sizes C x K), exploiting sparsity:
// each output row is the combination of b's rows selected by the sparse row.
// It allocates the output and delegates to MulDenseInto.
func (m *Sparse) MulDense(b *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("matrix: Sparse.MulDense dims %dx%d * %dx%d", m.R, m.C, b.R, b.C))
	}
	return m.MulDenseInto(b, NewDense(m.R, b.C))
}

// MulVec returns m*x.
func (m *Sparse) MulVec(x []float64) []float64 {
	if m.C != len(x) {
		panic("matrix: Sparse.MulVec dims mismatch")
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Row(i).Dot(x)
	}
	return out
}

// MulVecT returns mᵀ*x.
func (m *Sparse) MulVecT(x []float64) []float64 {
	if m.R != len(x) {
		panic("matrix: Sparse.MulVecT dims mismatch")
	}
	out := make([]float64, m.C)
	// Column-range parallel: chunk [lo,hi) owns out[lo:hi) and scans every
	// row in ascending i, entering each row's index list by binary search.
	// Per column the accumulation order over i is therefore exactly the
	// sequential order. The per-row search overhead only pays off when the
	// matrix carries real work, so small or ultra-sparse inputs stay inline.
	grain := m.C
	if nnz := m.NNZ(); nnz >= minParallelFlops && nnz >= 4*m.R && m.C > 1 {
		grain = flopGrain(2*nnz/m.C + 1)
	}
	parallel.For(m.C, grain, func(lo, hi int) {
		full := lo == 0 && hi == m.C
		for i, xi := range x {
			if xi == 0 {
				continue
			}
			row := m.Row(i)
			k := 0
			if !full {
				k = sort.SearchInts(row.Indices, lo)
			}
			for ; k < len(row.Indices); k++ {
				j := row.Indices[k]
				if j >= hi {
					break
				}
				out[j] += xi * row.Values[k]
			}
		}
	})
	return out
}

// FrobeniusSq returns the squared Frobenius norm of m (not mean-centered).
func (m *Sparse) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.Vals {
		s += v * v
	}
	return s
}

// CenteredFrobeniusSqSimple computes ||Y - Ym||_F² by densifying one row at a
// time (Algorithm 2 in the paper). It is the slow baseline for the Frobenius
// optimization ablation.
func (m *Sparse) CenteredFrobeniusSqSimple(mean []float64) float64 {
	if len(mean) != m.C {
		panic("matrix: CenteredFrobeniusSqSimple mean length mismatch")
	}
	var sum float64
	dense := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		for j := range dense {
			dense[j] = -mean[j]
		}
		row := m.Row(i)
		for k, j := range row.Indices {
			dense[j] += row.Values[k]
		}
		for _, v := range dense {
			sum += v * v
		}
	}
	return sum
}

// CenteredFrobeniusSq computes ||Y - Ym||_F² touching only non-zero entries
// (Algorithm 3 in the paper): start from the all-zero-row norm Σ mean²,
// then for each stored entry replace mean² with (v-mean)².
func (m *Sparse) CenteredFrobeniusSq(mean []float64) float64 {
	if len(mean) != m.C {
		panic("matrix: CenteredFrobeniusSq mean length mismatch")
	}
	var msum float64
	for _, mv := range mean {
		msum += mv * mv
	}
	sum := msum * float64(m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for k, j := range row.Indices {
			v := row.Values[k]
			d := v - mean[j]
			sum += d*d - mean[j]*mean[j]
		}
	}
	return sum
}

// CenteredMulDense returns (Y - Ym)*b without densifying Y, via mean
// propagation: Yc*B = Y*B - Ym*B (the paper's §3.1 identity). It allocates
// the output and the mean's image and delegates to CenteredMulDenseInto.
func (m *Sparse) CenteredMulDense(mean []float64, b *Dense) *Dense {
	mb := MeanMulInto(mean, b, make([]float64, b.C)) // mean' * B, a 1 x K row
	return m.CenteredMulDenseInto(b, NewDense(m.R, b.C), mb)
}

// SizeBytes estimates the in-memory footprint of the CSR storage.
func (m *Sparse) SizeBytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.Cols))*8 + int64(len(m.Vals))*8
}

// Density returns NNZ / (R*C).
func (m *Sparse) Density() float64 {
	if m.R == 0 || m.C == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.R) * float64(m.C))
}

// MaxAbs returns the largest absolute stored value (0 for an empty matrix).
func (m *Sparse) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Vals {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
