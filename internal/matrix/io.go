package matrix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format for sparse matrices ("spmx"):
//
//	spmx <rows> <cols> <nnz>
//	<row> <col> <value>      (one triplet per line, rows grouped and ordered)
//
// Text format for dense matrices ("dmx"):
//
//	dmx <rows> <cols>
//	<v0> <v1> ... <v_{c-1}>  (one row per line)

// ErrMalformedMatrix is the sentinel wrapped by every parse failure in this
// package's readers — bad headers, out-of-range or unordered indices,
// count mismatches, and non-finite values. Readers never panic on untrusted
// input; they return an error that errors.Is-matches this sentinel.
var ErrMalformedMatrix = errors.New("matrix: malformed input")

// malformed builds a parse error wrapping ErrMalformedMatrix.
func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformedMatrix, fmt.Sprintf(format, args...))
}

// Plausibility bounds on untrusted headers, so a corrupt or hostile file
// cannot make a reader allocate unbounded memory before the first data
// byte is validated.
const (
	maxReadDim   = 1 << 32 // rows/cols/nnz ceiling for sparse inputs
	maxDenseRead = 1 << 27 // element ceiling for dense inputs (1 GiB)
)

// checkSparseHeader validates an untrusted spmx/SPMB header.
func checkSparseHeader(rows, cols, nnz int64) error {
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxReadDim || cols > maxReadDim || nnz > maxReadDim {
		return malformed("implausible sparse header %d x %d nnz %d", rows, cols, nnz)
	}
	return nil
}

// parseFiniteFloat parses a float64 and rejects NaN/±Inf — model inputs must
// be finite or every downstream sum is poisoned.
func parseFiniteFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, malformed("bad float %q", s)
	}
	if v != v || math.IsInf(v, 0) {
		return 0, malformed("non-finite value %q", s)
	}
	return v, nil
}

// WriteSparse writes m in the spmx text format.
func WriteSparse(w io.Writer, m *Sparse) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "spmx %d %d %d\n", m.R, m.C, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for k, j := range row.Indices {
			if _, err := fmt.Fprintf(bw, "%d %d %s\n", i, j, formatFloat(row.Values[k])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// parseTriplet validates one spmx data line against the header shape and the
// running (curRow, prevCol) order cursor. Any failure wraps
// ErrMalformedMatrix; the caller decides whether to fail the parse or spend
// a bad-record budget on it.
func parseTriplet(line string, rows, cols, curRow, prevCol int) (ri, ci int, v float64, err error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return 0, 0, 0, malformed("bad spmx triplet %q", line)
	}
	if ri, err = strconv.Atoi(fields[0]); err != nil {
		return 0, 0, 0, malformed("bad spmx row index %q", fields[0])
	}
	if ci, err = strconv.Atoi(fields[1]); err != nil {
		return 0, 0, 0, malformed("bad spmx column index %q", fields[1])
	}
	if v, err = parseFiniteFloat(fields[2]); err != nil {
		return 0, 0, 0, err
	}
	switch {
	case ri < curRow:
		return 0, 0, 0, malformed("spmx rows out of order at row %d", ri)
	case ri >= rows:
		return 0, 0, 0, malformed("spmx row index %d out of range (rows %d)", ri, rows)
	case ci < 0 || ci >= cols:
		return 0, 0, 0, malformed("spmx column index %d out of range (cols %d)", ci, cols)
	case ri == curRow && ci <= prevCol:
		return 0, 0, 0, malformed("spmx columns out of order in row %d (%d after %d)", ri, ci, prevCol)
	}
	return ri, ci, v, nil
}

// ReadSparse parses the spmx text format. Untrusted input is fully
// validated — indices out of range or out of order, header mismatches, and
// non-finite values all return errors wrapping ErrMalformedMatrix.
func ReadSparse(r io.Reader) (*Sparse, error) {
	m, _, err := ReadSparseBudget(r, 0)
	return m, err
}

// ReadSparseBudget is ReadSparse with an opt-in bad-record budget: up to
// budget malformed triplet lines are skipped (dropped from the matrix)
// instead of failing the parse, and the number skipped is returned. The
// header nnz check loosens by exactly the skipped count, so a file that lost
// records to corruption still parses deterministically while anything worse
// still fails. budget <= 0 is the strict ReadSparse behaviour.
func ReadSparseBudget(r io.Reader, budget int) (*Sparse, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, 0, malformed("empty sparse input")
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscanf(sc.Text(), "spmx %d %d %d", &rows, &cols, &nnz); err != nil {
		return nil, 0, malformed("bad spmx header %q", sc.Text())
	}
	if err := checkSparseHeader(int64(rows), int64(cols), int64(nnz)); err != nil {
		return nil, 0, err
	}
	b := NewSparseBuilder(cols)
	curRow := 0
	prevCol := -1
	var skipped int64
	var idx []int
	var vals []float64
	flushTo := func(row int) {
		for curRow < row {
			b.AddRow(idx, vals)
			idx, vals = idx[:0], vals[:0]
			curRow++
			prevCol = -1
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ri, ci, v, err := parseTriplet(line, rows, cols, curRow, prevCol)
		if err != nil {
			if skipped < int64(budget) {
				skipped++
				continue
			}
			return nil, skipped, err
		}
		flushTo(ri)
		prevCol = ci
		idx = append(idx, ci)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("matrix: reading spmx: %w", err)
	}
	flushTo(rows) // flush the final buffered row and any trailing empty rows
	m := b.Build()
	if got := int64(m.NNZ()); got != int64(nnz) && (got > int64(nnz) || int64(nnz)-got > skipped) {
		return nil, skipped, malformed("spmx nnz mismatch: header %d, parsed %d (%d skipped)", nnz, m.NNZ(), skipped)
	}
	return m, skipped, nil
}

// WriteDense writes m in the dmx text format.
func WriteDense(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "dmx %d %d\n", m.R, m.C); err != nil {
		return err
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(formatFloat(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDense parses the dmx text format, rejecting implausible headers,
// ragged rows, and non-finite values with errors wrapping ErrMalformedMatrix.
func ReadDense(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, malformed("empty dense input")
	}
	var rows, cols int
	if _, err := fmt.Sscanf(sc.Text(), "dmx %d %d", &rows, &cols); err != nil {
		return nil, malformed("bad dmx header %q", sc.Text())
	}
	if rows < 0 || cols < 0 || (cols > 0 && rows > maxDenseRead/cols) {
		return nil, malformed("implausible dmx header %d x %d", rows, cols)
	}
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		if !sc.Scan() {
			return nil, malformed("dmx truncated at row %d", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != cols {
			return nil, malformed("dmx row %d has %d values, want %d", i, len(fields), cols)
		}
		row := m.Row(i)
		for j, f := range fields {
			v, err := parseFiniteFloat(f)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
	}
	return m, nil
}

// WriteSparseBinary writes m in a compact little-endian binary layout:
// magic "SPMB", rows, cols, nnz (uint64), then RowPtr, Cols (uint64 each)
// and Vals (float64 bits).
func WriteSparseBinary(w io.Writer, m *Sparse) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("SPMB"); err != nil {
		return err
	}
	hdr := []uint64{uint64(m.R), uint64(m.C), uint64(m.NNZ())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, p := range m.RowPtr {
		if err := binary.Write(bw, binary.LittleEndian, uint64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.Cols {
		if err := binary.Write(bw, binary.LittleEndian, uint64(c)); err != nil {
			return err
		}
	}
	for _, v := range m.Vals {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSparseBinary parses the SPMB binary layout. The full CSR invariant is
// validated — a non-decreasing row-pointer array ending at nnz, in-range and
// strictly increasing column indices within each row, finite values — so a
// corrupt file can never produce a matrix that panics downstream. Buffers
// grow incrementally, bounded by the bytes actually present, so a hostile
// header cannot trigger a huge up-front allocation.
func ReadSparseBinary(r io.Reader) (*Sparse, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, malformed("short binary magic: %v", err)
	}
	if string(magic) != "SPMB" {
		return nil, malformed("bad binary magic %q", magic)
	}
	var rows, cols, nnz uint64
	for _, p := range []*uint64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, malformed("short binary header: %v", err)
		}
	}
	if err := checkSparseHeader(int64(rows), int64(cols), int64(nnz)); err != nil {
		return nil, err
	}
	// Cap speculative allocation: slices start at a modest capacity and grow
	// as data is actually read, so "nnz = 2^32" with a 50-byte file fails on
	// the read, not in make().
	capFor := func(n uint64) int {
		if n > 1<<16 {
			return 1 << 16
		}
		return int(n)
	}
	m := &Sparse{
		R: int(rows), C: int(cols),
		RowPtr: make([]int, 0, capFor(rows+1)),
		Cols:   make([]int, 0, capFor(nnz)),
		Vals:   make([]float64, 0, capFor(nnz)),
	}
	var u uint64
	prev := uint64(0)
	for i := uint64(0); i <= rows; i++ {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, malformed("binary rowptr truncated at %d: %v", i, err)
		}
		if u > nnz || u < prev {
			return nil, malformed("binary rowptr not monotone at %d: %d (prev %d, nnz %d)", i, u, prev, nnz)
		}
		prev = u
		m.RowPtr = append(m.RowPtr, int(u))
	}
	if m.RowPtr[0] != 0 {
		return nil, malformed("binary rowptr must start at 0, got %d", m.RowPtr[0])
	}
	if m.RowPtr[rows] != int(nnz) {
		return nil, malformed("binary rowptr/nnz mismatch: %d vs %d", m.RowPtr[rows], nnz)
	}
	for i := uint64(0); i < nnz; i++ {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, malformed("binary column indices truncated at %d: %v", i, err)
		}
		if u >= cols {
			return nil, malformed("binary column index %d out of range (cols %d)", u, cols)
		}
		m.Cols = append(m.Cols, int(u))
	}
	for i := uint64(0); i < nnz; i++ {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, malformed("binary values truncated at %d: %v", i, err)
		}
		v := math.Float64frombits(u)
		if v != v || math.IsInf(v, 0) {
			return nil, malformed("non-finite binary value at %d", i)
		}
		m.Vals = append(m.Vals, v)
	}
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] <= m.Cols[k-1] {
				return nil, malformed("binary columns out of order in row %d (%d after %d)", i, m.Cols[k], m.Cols[k-1])
			}
		}
	}
	return m, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
