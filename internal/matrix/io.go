package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format for sparse matrices ("spmx"):
//
//	spmx <rows> <cols> <nnz>
//	<row> <col> <value>      (one triplet per line, rows grouped and ordered)
//
// Text format for dense matrices ("dmx"):
//
//	dmx <rows> <cols>
//	<v0> <v1> ... <v_{c-1}>  (one row per line)

// WriteSparse writes m in the spmx text format.
func WriteSparse(w io.Writer, m *Sparse) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "spmx %d %d %d\n", m.R, m.C, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for k, j := range row.Indices {
			if _, err := fmt.Fprintf(bw, "%d %d %s\n", i, j, formatFloat(row.Values[k])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSparse parses the spmx text format.
func ReadSparse(r io.Reader) (*Sparse, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty sparse input: %w", sc.Err())
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscanf(sc.Text(), "spmx %d %d %d", &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("matrix: bad spmx header %q: %w", sc.Text(), err)
	}
	b := NewSparseBuilder(cols)
	curRow := 0
	var idx []int
	var vals []float64
	flushTo := func(row int) {
		for curRow < row {
			b.AddRow(idx, vals)
			idx, vals = idx[:0], vals[:0]
			curRow++
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("matrix: bad spmx triplet %q", line)
		}
		ri, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		ci, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, err
		}
		if ri < curRow {
			return nil, fmt.Errorf("matrix: spmx rows out of order at row %d", ri)
		}
		flushTo(ri)
		idx = append(idx, ci)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flushTo(rows) // flush the final buffered row and any trailing empty rows
	m := b.Build()
	if m.NNZ() != nnz {
		return nil, fmt.Errorf("matrix: spmx nnz mismatch: header %d, parsed %d", nnz, m.NNZ())
	}
	return m, nil
}

// WriteDense writes m in the dmx text format.
func WriteDense(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "dmx %d %d\n", m.R, m.C); err != nil {
		return err
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(formatFloat(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDense parses the dmx text format.
func ReadDense(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty dense input: %w", sc.Err())
	}
	var rows, cols int
	if _, err := fmt.Sscanf(sc.Text(), "dmx %d %d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("matrix: bad dmx header %q: %w", sc.Text(), err)
	}
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("matrix: dmx truncated at row %d: %w", i, sc.Err())
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != cols {
			return nil, fmt.Errorf("matrix: dmx row %d has %d values, want %d", i, len(fields), cols)
		}
		row := m.Row(i)
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
	}
	return m, nil
}

// WriteSparseBinary writes m in a compact little-endian binary layout:
// magic "SPMB", rows, cols, nnz (uint64), then RowPtr, Cols (uint64 each)
// and Vals (float64 bits).
func WriteSparseBinary(w io.Writer, m *Sparse) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("SPMB"); err != nil {
		return err
	}
	hdr := []uint64{uint64(m.R), uint64(m.C), uint64(m.NNZ())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, p := range m.RowPtr {
		if err := binary.Write(bw, binary.LittleEndian, uint64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.Cols {
		if err := binary.Write(bw, binary.LittleEndian, uint64(c)); err != nil {
			return err
		}
	}
	for _, v := range m.Vals {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSparseBinary parses the SPMB binary layout.
func ReadSparseBinary(r io.Reader) (*Sparse, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != "SPMB" {
		return nil, fmt.Errorf("matrix: bad binary magic %q", magic)
	}
	var rows, cols, nnz uint64
	for _, p := range []*uint64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxDim = 1 << 40
	if rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("matrix: implausible binary header %d x %d nnz %d", rows, cols, nnz)
	}
	m := &Sparse{
		R: int(rows), C: int(cols),
		RowPtr: make([]int, rows+1),
		Cols:   make([]int, nnz),
		Vals:   make([]float64, nnz),
	}
	var u uint64
	for i := range m.RowPtr {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, err
		}
		m.RowPtr[i] = int(u)
	}
	for i := range m.Cols {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, err
		}
		m.Cols[i] = int(u)
	}
	for i := range m.Vals {
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, err
		}
		m.Vals[i] = math.Float64frombits(u)
	}
	if m.RowPtr[len(m.RowPtr)-1] != int(nnz) {
		return nil, fmt.Errorf("matrix: binary rowptr/nnz mismatch")
	}
	return m, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
