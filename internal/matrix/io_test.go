package matrix

import (
	"bytes"
	"strings"
	"testing"
)

func TestSparseTextRoundTrip(t *testing.T) {
	rng := NewRNG(71)
	m := randomSparse(rng, 12, 9, 0.3)
	var buf bytes.Buffer
	if err := WriteSparse(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got.Dense(), m.Dense(), 0)
}

func TestSparseTextTrailingEmptyRows(t *testing.T) {
	b := NewSparseBuilder(4)
	b.AddRow([]int{1}, []float64{2})
	b.AddRow(nil, nil)
	b.AddRow(nil, nil)
	m := b.Build()
	var buf bytes.Buffer
	if err := WriteSparse(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != 3 || got.NNZ() != 1 {
		t.Fatalf("got %dx%d nnz %d", got.R, got.C, got.NNZ())
	}
}

func TestReadSparseErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header",
		"spmx 2 2 1\nnot a triplet line here",
		"spmx 2 2 5\n0 0 1\n",        // nnz mismatch
		"spmx 2 2 2\n1 0 1\n0 1 2\n", // rows out of order
	}
	for _, c := range cases {
		if _, err := ReadSparse(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for input %q", c)
		}
	}
}

func TestDenseTextRoundTrip(t *testing.T) {
	rng := NewRNG(72)
	m := NormRnd(rng, 6, 4)
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got, m, 0)
}

func TestReadDenseErrors(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"dmx 2 3\n1 2 3\n",   // truncated
		"dmx 1 3\n1 2\n",     // short row
		"dmx 1 2\nfoo bar\n", // non-numeric
	}
	for _, c := range cases {
		if _, err := ReadDense(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for input %q", c)
		}
	}
}

func TestSparseBinaryRoundTrip(t *testing.T) {
	rng := NewRNG(73)
	m := randomSparse(rng, 20, 15, 0.2)
	var buf bytes.Buffer
	if err := WriteSparseBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparseBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got.Dense(), m.Dense(), 0)
}

func TestReadSparseBinaryBadMagic(t *testing.T) {
	if _, err := ReadSparseBinary(strings.NewReader("XXXXgarbage")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadSparseBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestFormatFloatPreservesPrecision(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1.0 / 3.0, 1e-17, -2.5e100}})
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data {
		if got.Data[i] != v {
			t.Fatalf("value %d not exactly preserved: %v vs %v", i, got.Data[i], v)
		}
	}
}
