package matrix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSparseTextRoundTrip(t *testing.T) {
	rng := NewRNG(71)
	m := randomSparse(rng, 12, 9, 0.3)
	var buf bytes.Buffer
	if err := WriteSparse(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got.Dense(), m.Dense(), 0)
}

func TestSparseTextTrailingEmptyRows(t *testing.T) {
	b := NewSparseBuilder(4)
	b.AddRow([]int{1}, []float64{2})
	b.AddRow(nil, nil)
	b.AddRow(nil, nil)
	m := b.Build()
	var buf bytes.Buffer
	if err := WriteSparse(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != 3 || got.NNZ() != 1 {
		t.Fatalf("got %dx%d nnz %d", got.R, got.C, got.NNZ())
	}
}

func TestReadSparseErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header",
		"spmx 2 2 1\nnot a triplet line here",
		"spmx 2 2 5\n0 0 1\n",             // nnz mismatch
		"spmx 2 2 2\n1 0 1\n0 1 2\n",      // rows out of order
		"spmx 2 2 1\n0 5 1\n",             // column out of range
		"spmx 2 2 1\n0 -1 1\n",            // negative column
		"spmx 2 2 1\n7 0 1\n",             // row out of range
		"spmx 2 3 2\n0 2 1\n0 1 2\n",      // columns out of order in a row
		"spmx 2 3 2\n0 1 1\n0 1 2\n",      // duplicate column in a row
		"spmx 2 2 1\n0 1 NaN\n",           // non-finite value
		"spmx 2 2 1\n0 1 +Inf\n",          // non-finite value
		"spmx -3 2 0\n",                   // negative rows
		"spmx 2 99999999999999999999 0\n", // implausible header
		"spmx 2 2 -1\n",                   // negative nnz
	}
	for _, c := range cases {
		_, err := ReadSparse(strings.NewReader(c))
		if err == nil {
			t.Fatalf("expected error for input %q", c)
		}
		if !errors.Is(err, ErrMalformedMatrix) {
			t.Fatalf("error for %q does not wrap ErrMalformedMatrix: %v", c, err)
		}
	}
}

func TestDenseTextRoundTrip(t *testing.T) {
	rng := NewRNG(72)
	m := NormRnd(rng, 6, 4)
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got, m, 0)
}

func TestReadDenseErrors(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"dmx 2 3\n1 2 3\n",           // truncated
		"dmx 1 3\n1 2\n",             // short row
		"dmx 1 2\nfoo bar\n",         // non-numeric
		"dmx 1 2\n1 Inf\n",           // non-finite value
		"dmx 1 2\nNaN 0\n",           // non-finite value
		"dmx -1 2\n",                 // negative rows
		"dmx 99999999 99999999\n1\n", // implausible header
	}
	for _, c := range cases {
		_, err := ReadDense(strings.NewReader(c))
		if err == nil {
			t.Fatalf("expected error for input %q", c)
		}
		if !errors.Is(err, ErrMalformedMatrix) {
			t.Fatalf("error for %q does not wrap ErrMalformedMatrix: %v", c, err)
		}
	}
}

func TestSparseBinaryRoundTrip(t *testing.T) {
	rng := NewRNG(73)
	m := randomSparse(rng, 20, 15, 0.2)
	var buf bytes.Buffer
	if err := WriteSparseBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparseBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	denseAlmostEq(t, got.Dense(), m.Dense(), 0)
}

func TestReadSparseBinaryBadMagic(t *testing.T) {
	if _, err := ReadSparseBinary(strings.NewReader("XXXXgarbage")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadSparseBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// binBlob serializes a hand-built SPMB file so each CSR invariant can be
// violated independently.
func binBlob(rows, cols, nnz uint64, rowPtr, colIdx []uint64, vals []float64) []byte {
	var buf bytes.Buffer
	buf.WriteString("SPMB")
	words := append([]uint64{rows, cols, nnz}, rowPtr...)
	words = append(words, colIdx...)
	for _, w := range words {
		binary.Write(&buf, binary.LittleEndian, w)
	}
	for _, v := range vals {
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(v))
	}
	return buf.Bytes()
}

func TestReadSparseBinaryRejectsCorruptCSR(t *testing.T) {
	cases := map[string][]byte{
		"rowptr decreasing":    binBlob(2, 3, 2, []uint64{0, 2, 1}, []uint64{0, 1}, []float64{1, 2}),
		"rowptr over nnz":      binBlob(2, 3, 2, []uint64{0, 5, 2}, []uint64{0, 1}, []float64{1, 2}),
		"rowptr short of nnz":  binBlob(2, 3, 2, []uint64{0, 1, 1}, []uint64{0, 1}, []float64{1, 2}),
		"column out of range":  binBlob(2, 3, 2, []uint64{0, 1, 2}, []uint64{0, 9}, []float64{1, 2}),
		"columns out of order": binBlob(1, 3, 2, []uint64{0, 2}, []uint64{2, 1}, []float64{1, 2}),
		"duplicate column":     binBlob(1, 3, 2, []uint64{0, 2}, []uint64{1, 1}, []float64{1, 2}),
		"non-finite value":     binBlob(1, 3, 1, []uint64{0, 1}, []uint64{0}, []float64{math.NaN()}),
		"truncated values":     binBlob(1, 3, 2, []uint64{0, 2}, []uint64{0, 1}, []float64{1}),
		"huge nnz small file":  binBlob(1, 3, 1<<31, []uint64{0, 1}, []uint64{0}, []float64{1}),
	}
	for name, blob := range cases {
		_, err := ReadSparseBinary(bytes.NewReader(blob))
		if err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if !errors.Is(err, ErrMalformedMatrix) {
			t.Fatalf("%s: error does not wrap ErrMalformedMatrix: %v", name, err)
		}
	}
}

func TestFormatFloatPreservesPrecision(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1.0 / 3.0, 1e-17, -2.5e100}})
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data {
		if got.Data[i] != v {
			t.Fatalf("value %d not exactly preserved: %v vs %v", i, got.Data[i], v)
		}
	}
}
