package rsvd

import (
	"fmt"
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/parallel"
	"spca/internal/rdd"
)

func testEngine() *mapred.Engine {
	return mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
}

func testCtx() *rdd.Context {
	return rdd.NewContext(cluster.MustNew(cluster.DefaultConfig()))
}

func plantedData(n, dims, rank int, seed uint64) (*matrix.Sparse, []matrix.SparseVector) {
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: n, Cols: dims, Rank: rank, Seed: seed,
	})
	return y, dataset.Rows(y)
}

// fitBoth runs the same options through both engines.
func fitBoth(t *testing.T, rows []matrix.SparseVector, dims int, opt Options) (mr, sp *Result) {
	t.Helper()
	mr, err := FitMapReduce(testEngine(), rows, dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	sp, err = FitSpark(testCtx(), rows, dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	return mr, sp
}

func TestRSVDRecoversPlantedSubspace(t *testing.T) {
	y, rows := plantedData(200, 50, 4, 31)
	opt := DefaultOptions(4)
	opt.PowerIterations = 3
	mr, sp := fitBoth(t, rows, 50, opt)
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 4)
	if gap := matrix.SubspaceGap(mr.Components, v); gap > 0.01 {
		t.Fatalf("mapreduce subspace gap %v", gap)
	}
	if gap := matrix.SubspaceGap(sp.Components, v); gap > 0.01 {
		t.Fatalf("spark subspace gap %v", gap)
	}
	for _, res := range []*Result{mr, sp} {
		for i := 1; i < len(res.Singular); i++ {
			if res.Singular[i] > res.Singular[i-1] {
				t.Fatalf("singular values unsorted: %v", res.Singular)
			}
		}
		if len(res.Mean) != 50 {
			t.Fatalf("mean length %d", len(res.Mean))
		}
	}
}

// TestRSVDHalkoBound is the property test: across oversample/power-iteration
// settings, the sketch's sampled reconstruction error stays within a
// Halko-style multiplicative factor of the exact rank-d error — loose for a
// bare sketch, tight once power iterations sharpen the range.
func TestRSVDHalkoBound(t *testing.T) {
	const d = 5
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 400, Cols: 120, Seed: 71})
	rows := dataset.Rows(y)
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), d)
	exact := newReconScratch(y.C, d).reconstructionError(y, mean, v, sampleIdx(y.R, 256, 42))
	if exact <= 0 {
		t.Fatalf("degenerate exact error %v", exact)
	}
	cases := []struct {
		oversample, power int
		factor            float64 // err must be <= factor * exact
	}{
		{2, 0, 2.0},
		{10, 0, 1.75},
		{2, 2, 1.25},
		{10, 2, 1.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("p%d_q%d", tc.oversample, tc.power), func(t *testing.T) {
			opt := DefaultOptions(d)
			opt.Oversample = tc.oversample
			opt.PowerIterations = tc.power
			mr, sp := fitBoth(t, rows, y.C, opt)
			for name, res := range map[string]*Result{"mapreduce": mr, "spark": sp} {
				err := res.History[len(res.History)-1].Err
				if err > tc.factor*exact {
					t.Errorf("%s: err %v exceeds %v x exact %v", name, err, tc.factor, exact)
				}
			}
		})
	}
}

func TestRSVDValidation(t *testing.T) {
	_, rows := plantedData(20, 10, 2, 32)
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitMapReduce(testEngine(), rows, 10, DefaultOptions(11)); err == nil {
		t.Fatal("expected error for d > D")
	}
	if _, err := FitMapReduce(testEngine(), nil, 10, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := FitSpark(testCtx(), rows, 10, DefaultOptions(0)); err == nil {
		t.Fatal("spark: expected error for zero components")
	}
	if _, err := FitSpark(testCtx(), nil, 10, DefaultOptions(2)); err == nil {
		t.Fatal("spark: expected error for empty input")
	}
	bad := DefaultOptions(2)
	bad.PowerIterations = -1
	if _, err := FitMapReduce(testEngine(), rows, 10, bad); err == nil {
		t.Fatal("expected error for negative power iterations")
	}
}

func TestRSVDDeterministic(t *testing.T) {
	_, rows := plantedData(100, 30, 3, 36)
	opt := DefaultOptions(3)
	opt.MaxRounds = 2
	a1, s1 := fitBoth(t, rows, 30, opt)
	a2, s2 := fitBoth(t, rows, 30, opt)
	if a1.Components.MaxAbsDiff(a2.Components) != 0 {
		t.Fatal("mapreduce fit not deterministic")
	}
	if s1.Components.MaxAbsDiff(s2.Components) != 0 {
		t.Fatal("spark fit not deterministic")
	}
}

// TestRSVDSequentialParallelIdentical pins the house invariant that the
// fitted model is bit-identical whether the shared kernels run inline or
// across worker goroutines.
func TestRSVDSequentialParallelIdentical(t *testing.T) {
	_, rows := plantedData(120, 40, 3, 39)
	opt := DefaultOptions(3)
	opt.PowerIterations = 1
	parallel.SetSequential(true)
	seqMR, seqSP := fitBoth(t, rows, 40, opt)
	parallel.SetSequential(false)
	defer parallel.SetSequential(false)
	parMR, parSP := fitBoth(t, rows, 40, opt)
	if seqMR.Components.MaxAbsDiff(parMR.Components) != 0 {
		t.Fatal("mapreduce: sequential vs parallel differ")
	}
	if seqSP.Components.MaxAbsDiff(parSP.Components) != 0 {
		t.Fatal("spark: sequential vs parallel differ")
	}
}

// TestRSVDFaultsDoNotChangeModel pins the other half of the determinism
// invariant: an active task-level fault plan changes costs, never bits.
func TestRSVDFaultsDoNotChangeModel(t *testing.T) {
	_, rows := plantedData(150, 40, 3, 41)
	opt := DefaultOptions(3)
	opt.MaxRounds = 2

	clean, err := FitMapReduce(testEngine(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine()
	eng.Faults = &cluster.FaultPlan{Seed: 7, TaskFailureRate: 0.2, StragglerRate: 0.1, NodeLossRate: 0.05}
	eng.MaxAttempts = 12
	faulty, err := FitMapReduce(eng, rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
		t.Fatal("mapreduce: faults changed the fitted model")
	}
	if faulty.Metrics.SimSeconds <= clean.Metrics.SimSeconds {
		t.Fatal("mapreduce: faults should cost simulated time")
	}

	cleanSP, err := FitSpark(testCtx(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx()
	ctx.SetFaultPlan(&cluster.FaultPlan{Seed: 7, TaskFailureRate: 0.2, StragglerRate: 0.1, NodeLossRate: 0.05})
	faultySP, err := FitSpark(ctx, rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cleanSP.Components.MaxAbsDiff(faultySP.Components) != 0 {
		t.Fatal("spark: faults changed the fitted model")
	}
	if faultySP.Metrics.SimSeconds <= cleanSP.Metrics.SimSeconds {
		t.Fatal("spark: faults should cost simulated time")
	}
}

// TestRSVDSparkCommunicationOptimal pins the Balcan variant's defining
// property: its shuffle volume is a small multiple of s·k·D, far below the
// MapReduce pipeline's N-proportional materialization.
func TestRSVDSparkCommunicationOptimal(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 800, Cols: 100, Seed: 44})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.PowerIterations = 1

	engMR := testEngine()
	if _, err := FitMapReduce(engMR, rows, 100, opt); err != nil {
		t.Fatal(err)
	}
	// One local sketch per node — the granularity Balcan et al. assume.
	cl := cluster.MustNew(cluster.DefaultConfig())
	ctx := rdd.NewContext(cl).WithPartitions(cl.Config().Nodes)
	if _, err := FitSpark(ctx, rows, 100, opt); err != nil {
		t.Fatal(err)
	}
	mrShuffle := engMR.Cluster.Metrics().ShuffleBytes
	spShuffle := ctx.Cluster().Metrics().ShuffleBytes
	if spShuffle*2 >= mrShuffle {
		t.Fatalf("spark sketch should shuffle far less than mapreduce: %d vs %d", spShuffle, mrShuffle)
	}
	mrMat := engMR.Cluster.Metrics().MaterializedBytes
	spMat := ctx.Cluster().Metrics().MaterializedBytes
	if spMat >= mrMat {
		t.Fatalf("spark sketch should materialize less: %d vs %d", spMat, mrMat)
	}
}

func TestRSVDBestOfRoundsMonotone(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 300, Cols: 80, Seed: 52})
	rows := dataset.Rows(y)
	opt := DefaultOptions(4)
	opt.MaxRounds = 4
	mr, sp := fitBoth(t, rows, 80, opt)
	for name, res := range map[string]*Result{"mapreduce": mr, "spark": sp} {
		if len(res.History) != 4 {
			t.Fatalf("%s: expected 4 rounds, got %d", name, len(res.History))
		}
		for i := 1; i < len(res.History); i++ {
			if res.History[i].Err > res.History[i-1].Err+1e-12 {
				t.Fatalf("%s: best-of-rounds error increased: %v", name, res.History)
			}
		}
	}
}

func TestRSVDTargetAccuracyStops(t *testing.T) {
	y, rows := plantedData(150, 40, 3, 34)
	opt := DefaultOptions(3)
	opt.PowerIterations = 4
	opt.MaxRounds = 8
	opt.IdealError = idealErrorFor(y, 3)
	opt.TargetAccuracy = 0.95
	mr, sp := fitBoth(t, rows, 40, opt)
	for name, res := range map[string]*Result{"mapreduce": mr, "spark": sp} {
		if res.Iterations > 3 {
			t.Fatalf("%s: easy planted data should converge fast, took %d rounds", name, res.Iterations)
		}
		if res.History[len(res.History)-1].Accuracy < 0.95 {
			t.Fatalf("%s: final accuracy %v", name, res.History[len(res.History)-1].Accuracy)
		}
	}
}

// idealErrorFor computes the exact rank-d PCA error with the same sampled
// metric the fit uses.
func idealErrorFor(y *matrix.Sparse, d int) float64 {
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), d)
	return newReconScratch(y.C, d).reconstructionError(y, mean, v, sampleIdx(y.R, 256, 42))
}

func TestRSVDOversampleClamped(t *testing.T) {
	_, rows := plantedData(20, 8, 2, 37)
	opt := DefaultOptions(2)
	opt.Oversample = 100
	opt.PowerIterations = 1
	mr, sp := fitBoth(t, rows, 8, opt)
	for name, res := range map[string]*Result{"mapreduce": mr, "spark": sp} {
		if res.Components.C != 2 || res.Components.R != 8 {
			t.Fatalf("%s: components dims %dx%d", name, res.Components.R, res.Components.C)
		}
	}
}
