package rsvd

// Real-CPU benchmarks of the two sketch engines' fit paths, mirroring the
// ppca fit benchmarks: one round of range finder + power iteration on a
// Tweets-like sparse matrix. These feed the committed BENCH_*.json baseline
// via `make bench-json`.

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
)

func benchData(b *testing.B, n, dims int) []matrix.SparseVector {
	b.Helper()
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindTweets, Rows: n, Cols: dims, Seed: 1,
	})
	return dataset.Rows(y)
}

func benchOptions() Options {
	opt := DefaultOptions(10)
	opt.MaxRounds = 1
	opt.PowerIterations = 1
	return opt
}

func BenchmarkFitRSVDMapReduce(b *testing.B) {
	rows := benchData(b, 2000, 500)
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
		if _, err := FitMapReduce(eng, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitRSVDSpark(b *testing.B) {
	rows := benchData(b, 2000, 500)
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := cluster.MustNew(cluster.DefaultConfig().WithTaskOverhead(0.05))
		ctx := rdd.NewContext(cl).WithPartitions(cl.Config().Nodes)
		if _, err := FitSpark(ctx, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}
