package rsvd

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// fingerprint hashes the exact float64 bits of a fitted model plus its
// history, so future refactors must prove bit-identity to this tree.
func fingerprint(res *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range res.Components.Data {
		put(v)
	}
	for _, v := range res.Singular {
		put(v)
	}
	for _, v := range res.Mean {
		put(v)
	}
	put(float64(res.Iterations))
	for _, st := range res.History {
		put(float64(st.Iter))
		put(st.Err)
		put(st.SimSeconds)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Pinned fingerprints; a missing entry makes the test print the observed
// hash so it can be pinned.
var goldenHashes = map[string]string{
	"mapreduce": "d0071af6473269d5",
	"spark":     "abbc94bfee4c5de3",
}

func TestGoldenFitsBitIdentical(t *testing.T) {
	fits := map[string]func() (*Result, error){
		"mapreduce": func() (*Result, error) {
			_, rows := plantedData(150, 40, 3, 31)
			opt := DefaultOptions(3)
			opt.MaxRounds = 2
			opt.PowerIterations = 1
			return FitMapReduce(testEngine(), rows, 40, opt)
		},
		"spark": func() (*Result, error) {
			_, rows := plantedData(150, 40, 3, 31)
			opt := DefaultOptions(3)
			opt.MaxRounds = 2
			opt.PowerIterations = 1
			return FitSpark(testCtx(), rows, 40, opt)
		},
	}
	for name, fit := range fits {
		t.Run(name, func(t *testing.T) {
			res, err := fit()
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(res)
			want, ok := goldenHashes[name]
			if !ok {
				t.Fatalf("no golden hash for %q; captured %s", name, got)
			}
			if got != want {
				t.Fatalf("fit %q changed: fingerprint %s, golden %s", name, got, want)
			}
		})
	}
}
