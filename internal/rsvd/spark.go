package rsvd

import (
	"fmt"

	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
	"spca/internal/trace"
)

// FitSpark runs the communication-optimal distributed sketch (Balcan et
// al.): every partition computes a complete local randomized sketch — range
// finding, local power iterations, and the k x D projection B_p = Q_pᵀ·Y_pc
// — entirely without communication, then ships only its B_p block to the
// driver, which stacks the blocks and takes one small SVD. Total shuffle is
// s·k·D·8 bytes for s partitions regardless of N, versus the N-proportional
// materialization of the MapReduce pipeline.
func FitSpark(ctx *rdd.Context, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if err := opt.validate(len(rows), dims); err != nil {
		return nil, err
	}
	cl := ctx.Cluster()
	if tr := opt.Tracer; tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitRSVD", trace.KindFit,
			trace.I("rows", int64(len(rows))), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}

	y := rdd.Parallelize(ctx, "Y", rows, mapred.BytesOfSparseVec)
	y.Persist()
	defer y.Unpersist()

	res := &Result{}
	dr := newDriver(cl, opt, rows, dims)
	if snap := opt.Resume; snap != nil {
		// Resume: the RDD setup above had to be redone by this incarnation,
		// so its cost moves to RecoverySeconds when the clock is rewound to
		// the snapshot's value; the mean job is restored, not re-run.
		if err := snap.Validate(len(rows), dims, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		setup := cl.Metrics().SimSeconds
		cl.RestoreMetrics(snap.Metrics)
		cl.ChargeDriverRestore(snap.CostBytes(), opt.RecoveredSeconds+setup)
		ctx.SetEpoch(snap.FaultEpoch)
		dr.restore(snap, res)
	} else {
		mean, err := sparkMean(ctx, y, dims)
		if err != nil {
			return nil, err
		}
		dr.mean = mean
		if opt.Incarnation > 0 {
			cl.ChargeDriverRestore(0, opt.RecoveredSeconds)
		}
	}

	se := &sparkEngine{
		ctx: ctx, y: y, dims: dims, opt: opt, mean: dr.mean,
		parts: make([]*localSketch, y.NumPartitions()),
	}
	if err := dr.run(se, res); err != nil {
		return nil, err
	}
	return res, nil
}

// sparkEngine implements one sketch round as a single RDD action plus an
// accumulator read. Per-partition scratch (parts) and the driver-side stack
// are allocated on the first round and reused afterwards.
type sparkEngine struct {
	ctx     *rdd.Context
	y       *rdd.RDD[matrix.SparseVector]
	dims    int
	opt     Options
	mean    []float64
	parts   []*localSketch
	mb      []float64     // driver-side ΩᵀYm, reused per round
	stacked *matrix.Dense // (blocks·k) x D merge target, reused per round
}

func (e *sparkEngine) faultEpoch() int64 { return e.ctx.Epoch() }

func (e *sparkEngine) round(round, k int) (*matrix.Dense, []float64, error) {
	cl := e.ctx.Cluster()
	// One Ω per round, shared by every partition (the local sketches must
	// project onto a common test matrix for their ranges to be mergeable).
	omega := matrix.NormRnd(matrix.NewRNG(matrix.DeriveSeed(e.opt.Seed, "rsvd/local-omega", uint64(round))), e.dims, k)
	rdd.Broadcast(e.ctx, "rsvd/omega", mapred.BytesOfDense(omega))
	// mb = ΩᵀYm (k-vector), computed once on the driver and shipped with Ω
	// so mean propagation costs each partition O(nnz·k), not O(D·k).
	if cap(e.mb) < k {
		e.mb = make([]float64, k)
	}
	mb := e.mb[:k]
	for i := range mb {
		mb[i] = 0
	}
	for j, mj := range e.mean {
		if mj != 0 {
			matrix.AXPY(mj, omega.Row(j), mb)
		}
	}
	cl.AddDriverCompute(int64(e.dims) * int64(k))

	acc := rdd.NewAccumulator(e.ctx, "rsvd/sketch",
		&sketchStack{},
		func(into, from *sketchStack) *sketchStack {
			into.blocks = append(into.blocks, from.blocks...)
			return into
		},
		func(s *sketchStack) int64 { return s.bytes() },
	)
	power := e.opt.PowerIterations
	err := e.y.ForeachPartition("rsvd/localSketch", func(task int, part []matrix.SparseVector, ops *rdd.TaskOps) {
		if len(part) == 0 {
			return
		}
		ls := e.sketch(task, len(part), k)
		ls.run(part, omega, mb, e.mean, power, ops)
		// The payload wrapper is pooled with the rest of the scratch; the
		// accumulator only holds it until the driver's Value() below.
		ls.stack.blocks = append(ls.stack.blocks[:0], ls.b)
		acc.Merge(task, &ls.stack)
	})
	if err != nil {
		return nil, nil, err
	}
	stack := acc.Value()
	if len(stack.blocks) == 0 {
		return nil, nil, fmt.Errorf("rsvd: sketch action produced no blocks")
	}

	// Driver merge: stack the k x D blocks (ascending task order — the
	// accumulator already folded them that way) and take one small SVD. The
	// principal directions are the stack's RIGHT singular vectors, and its
	// singular values estimate Yc's because StackᵀStack = Σ B_pᵀB_p ≈ YcᵀYc.
	rows := len(stack.blocks) * k
	if e.stacked == nil || e.stacked.R != rows || e.stacked.C != e.dims {
		e.stacked = matrix.NewDense(rows, e.dims)
	}
	for bi, b := range stack.blocks {
		for r := 0; r < k; r++ {
			copy(e.stacked.Row(bi*k+r), b.Row(r))
		}
	}
	_, s, v := matrix.TopSVD(e.stacked, e.opt.Components)
	cl.AddDriverCompute(int64(rows) * int64(e.dims) * int64(k))
	return v, s, nil
}

func (e *sparkEngine) sketch(task, n, k int) *localSketch {
	ls := e.parts[task]
	if ls == nil || ls.k != k || ls.p.R != n {
		ls = newLocalSketch(n, e.dims, k)
		e.parts[task] = ls
	}
	return ls
}

// sketchStack is the accumulator payload: k x D blocks in task order.
type sketchStack struct {
	blocks []*matrix.Dense
}

func (s *sketchStack) bytes() int64 {
	var b int64
	for _, m := range s.blocks {
		b += int64(m.R) * int64(m.C) * 8
	}
	return b
}

// localSketch is one partition's scratch, allocated on the first round
// (partition sizes are fixed by the persisted RDD) and reused afterwards.
type localSketch struct {
	k      int
	p      *matrix.Dense // n_p x k projection / basis (orthonormalized in place)
	t      *matrix.Dense // D x k   T = Y_pcᵀ·Q_p for the power iterations
	b      *matrix.Dense // k x D   the shipped block B_p = Q_pᵀ·Y_pc
	colSum []float64     // column sums of Q_p (mean propagation)
	mbt    []float64     // TᵀYm for the local power-iteration projection
	stack  sketchStack   // pooled accumulator payload wrapping b
}

func newLocalSketch(n, dims, k int) *localSketch {
	return &localSketch{
		k:      k,
		p:      matrix.NewDense(n, k),
		t:      matrix.NewDense(dims, k),
		b:      matrix.NewDense(k, dims),
		colSum: make([]float64, k),
		mbt:    make([]float64, k),
	}
}

// run computes the partition's complete local sketch. Every step is local
// real compute charged through ops; nothing leaves the node until the caller
// merges ls.b.
func (ls *localSketch) run(part []matrix.SparseVector, omega *matrix.Dense, mb, mean []float64, power int, ops *rdd.TaskOps) {
	k := ls.k
	dims := omega.R
	// Range finding: P = Y_pc·Ω.
	ls.project(part, omega, mb, ops)
	ops.AddOps(orthoOps(len(part), k))
	matrix.GramSchmidt(ls.p)

	// Local power iterations: Q ← orth(Y_pc·(Y_pcᵀ·Q)), no communication.
	for pi := 0; pi < power; pi++ {
		ls.transposeMul(part, mean, ops)
		// mbt = TᵀYm, the mean-propagation vector for the next projection.
		for i := range ls.mbt {
			ls.mbt[i] = 0
		}
		for j, mj := range mean {
			if mj != 0 {
				matrix.AXPY(mj, ls.t.Row(j), ls.mbt)
			}
		}
		ops.AddOps(int64(dims) * int64(k))
		ls.project(part, ls.t, ls.mbt, ops)
		ops.AddOps(orthoOps(len(part), k))
		matrix.GramSchmidt(ls.p)
	}

	// B_p = Q_pᵀ·Y_pc (k x D) with mean propagation via colSum(Q_p).
	ls.b.Zero()
	for i := range ls.colSum {
		ls.colSum[i] = 0
	}
	var nnz int64
	for i, row := range part {
		qi := ls.p.Row(i)
		matrix.AXPY(1, qi, ls.colSum)
		for t, j := range row.Indices {
			v := row.Values[t]
			for r := 0; r < k; r++ {
				ls.b.Row(r)[j] += qi[r] * v
			}
		}
		nnz += int64(row.NNZ())
	}
	for j, mj := range mean {
		if mj != 0 {
			for r := 0; r < k; r++ {
				ls.b.Row(r)[j] -= ls.colSum[r] * mj
			}
		}
	}
	ops.AddOps(nnz*int64(k) + int64(len(part))*int64(k) + int64(dims)*int64(k))
}

// project fills P = Y_pc·B for a D x k matrix B, where mb = BᵀYm.
func (ls *localSketch) project(part []matrix.SparseVector, b *matrix.Dense, mb []float64, ops *rdd.TaskOps) {
	k := ls.k
	for i, row := range part {
		pi := ls.p.Row(i)
		for t := range pi {
			pi[t] = -mb[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], b.Row(j), pi)
		}
		ops.AddOps(int64(row.NNZ()*k + k))
	}
}

// transposeMul fills T = Y_pcᵀ·Q_p (D x k) with mean propagation.
func (ls *localSketch) transposeMul(part []matrix.SparseVector, mean []float64, ops *rdd.TaskOps) {
	k := ls.k
	ls.t.Zero()
	for i := range ls.colSum {
		ls.colSum[i] = 0
	}
	var nnz int64
	for i, row := range part {
		qi := ls.p.Row(i)
		matrix.AXPY(1, qi, ls.colSum)
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], qi, ls.t.Row(j))
		}
		nnz += int64(row.NNZ())
	}
	for j, mj := range mean {
		if mj != 0 {
			matrix.AXPY(-mj, ls.colSum, ls.t.Row(j))
		}
	}
	ops.AddOps(nnz*int64(k) + int64(len(part))*int64(k) + int64(ls.t.R)*int64(k))
}

// orthoOps is the modified Gram–Schmidt flop count for an n x k basis.
func orthoOps(n, k int) int64 { return int64(n) * int64(k) * int64(k) * 2 }

// sparkMeanPartial is the per-partition state of the mean computation.
type sparkMeanPartial struct {
	sums  map[int]float64
	count float64
}

func sparkMeanPartialBytes(p *sparkMeanPartial) int64 {
	if p == nil {
		return 8
	}
	return 16 + int64(len(p.sums))*16
}

func sparkMean(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], dims int) ([]float64, error) {
	agg, err := rdd.Aggregate(y, "rsvd-mean",
		func() *sparkMeanPartial { return &sparkMeanPartial{sums: map[int]float64{}} },
		func(p *sparkMeanPartial, row matrix.SparseVector, ops *rdd.TaskOps) *sparkMeanPartial {
			for k, j := range row.Indices {
				p.sums[j] += row.Values[k]
			}
			p.count++
			ops.AddOps(int64(row.NNZ()))
			return p
		},
		func(a, b *sparkMeanPartial) *sparkMeanPartial {
			for j, v := range b.sums {
				a.sums[j] += v
			}
			a.count += b.count
			return a
		},
		sparkMeanPartialBytes,
	)
	if err != nil {
		return nil, err
	}
	defer ctx.Cluster().FreeDriver(sparkMeanPartialBytes(agg))
	if agg.count == 0 {
		return nil, fmt.Errorf("rsvd: sparkMean saw no rows")
	}
	mean := make([]float64, dims)
	for j, v := range agg.sums {
		mean[j] = v / agg.count
	}
	return mean, nil
}
