// Package rsvd implements the randomized-sketch PCA engine family (§2.3's
// modern competitor to iterative EM): distributed randomized SVD in the
// style of Li/Kluger/Tygert — a seeded Gaussian range finder with QR
// re-orthonormalized power iterations and a small SVD on the driver — on the
// MapReduce engine (FitMapReduce), and the communication-optimal distributed
// variant of Balcan et al. — every partition computes a local sketch and the
// driver merges the stacked projections — on the Spark-like engine
// (FitSpark).
//
// Both engines inherit the house invariants from the shared machinery:
//
//   - Deterministic seeding: every random draw derives from Options.Seed via
//     matrix.DeriveSeed with a named stream ("rsvd/omega" per round,
//     "sample" for the error metric), so no two (stream, round) pairs can
//     collide and the fitted model is bit-identical across sequential,
//     parallel, and fault-injected runs.
//   - Zero steady-state allocations in mappers: per-task scratch is sized by
//     the engine's split/partition count, allocated on the first round, and
//     recycled through freelists afterwards.
//   - Exact tracing: every charged phase flows through the cluster, so leaf
//     trace spans sum to the run Metrics bit for bit.
//   - Checkpoint/resume at sketch-round granularity: with a CheckpointSpec
//     armed, the best-of-rounds state (components, singular values, error)
//     is snapshotted after each round and an injected driver crash resumes
//     to a bit-identical final model.
package rsvd

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// CheckpointSpec configures periodic driver snapshots at sketch-round
// granularity. The zero value disables checkpointing. (This mirrors
// ppca.CheckpointSpec; rsvd sits beside ppca in the import graph, so it
// carries its own copy.)
type CheckpointSpec struct {
	// Interval snapshots after every Interval-th completed round.
	Interval int
	// Dir receives the snapshot files.
	Dir string
	// Keep bounds retained snapshot generations after each write: 0 means
	// checkpoint.DefaultKeep, negative means unlimited.
	Keep int
}

// Enabled reports whether checkpointing is armed.
func (c CheckpointSpec) Enabled() bool { return c.Interval > 0 && c.Dir != "" }

// Options configures a randomized-sketch PCA run.
type Options struct {
	// Components is d, the number of principal components.
	Components int
	// Oversample adds extra random projections beyond d (Halko's p).
	// Default 10.
	Oversample int
	// PowerIterations is q, the number of QR re-orthonormalized power
	// iterations refining the range basis. Default 1 — one refinement is
	// what lets the sketch engines beat Mahout's q=0 accuracy plateau.
	PowerIterations int
	// MaxRounds bounds sketch re-draws; each round redraws Ω and the best
	// model (lowest sampled reconstruction error) is kept. Default 1: a
	// randomized sketch is a one-to-few-pass algorithm.
	MaxRounds int
	// TargetAccuracy stops re-drawing once this fraction of ideal accuracy
	// is reached (requires IdealError).
	TargetAccuracy float64
	// IdealError is the exact rank-d PCA error on the sampled rows.
	IdealError float64
	// SampleRows bounds the error-metric sample (default 256).
	SampleRows int
	// Seed drives every random draw through matrix.DeriveSeed.
	Seed uint64
	// Tracer, when non-nil, receives deterministic spans. Nil disables
	// tracing.
	Tracer *trace.Tracer

	// Checkpoint arms round-granularity snapshots (see CheckpointSpec).
	Checkpoint CheckpointSpec
	// Incarnation is the 0-based driver incarnation (used by the fault
	// plan's driver-crash schedule and the resume accounting).
	Incarnation int
	// RecoveredSeconds charges the simulated time lost to the previous
	// incarnation's crash.
	RecoveredSeconds float64
	// Resume, when non-nil, restores the run from a snapshot instead of
	// starting from scratch.
	Resume *checkpoint.Snapshot
	// Faults injects deterministic driver crashes (task-level faults are
	// armed on the engine / context by the caller).
	Faults *cluster.FaultPlan
	// Interrupt, when non-nil, is polled at every round boundary (and by the
	// engines at phase boundaries via the cluster). On cancel/deadline/stall
	// the round loop stops at the boundary, flushes a final snapshot when
	// checkpointing is armed, and returns a *cluster.AbortError.
	Interrupt *cluster.Interrupt
}

// DefaultOptions returns the paper-flavoured defaults for d components.
func DefaultOptions(d int) Options {
	return Options{
		Components:      d,
		Oversample:      10,
		PowerIterations: 1,
		MaxRounds:       1,
		SampleRows:      256,
		Seed:            42,
	}
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return 256
	}
	return o.SampleRows
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 1
	}
	return o.MaxRounds
}

func (o Options) validate(n, dims int) error {
	if o.Components <= 0 {
		return errors.New("rsvd: Components must be positive")
	}
	if n == 0 {
		return errors.New("rsvd: empty input")
	}
	if o.Components > dims {
		return fmt.Errorf("rsvd: Components %d exceeds dimensionality %d", o.Components, dims)
	}
	if o.PowerIterations < 0 {
		return errors.New("rsvd: negative PowerIterations")
	}
	return nil
}

// sketchWidth is k = d + oversample, clamped to the problem shape.
func (o Options) sketchWidth(n, dims int) int {
	k := o.Components + o.Oversample
	if k > dims {
		k = dims
	}
	if k > n {
		k = n
	}
	return k
}

// IterationStat records accuracy after each sketch round.
type IterationStat struct {
	Iter       int
	Err        float64
	Accuracy   float64
	SimSeconds float64
}

// Result is the output of a randomized-sketch PCA run.
type Result struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Singular holds the corresponding singular values of the centered data.
	Singular []float64
	// Mean is the column-mean vector computed by the fit's first pass.
	Mean []float64
	// Iterations counts sketch rounds (initial pass = 1).
	Iterations int
	History    []IterationStat
	Metrics    cluster.Metrics
	// Phases is the per-phase cost breakdown aggregated from the phase log.
	Phases []cluster.PhaseSummary
}

// roundEngine is the per-platform part of a fit: one full sketch round
// producing candidate components and singular values. faultEpoch reports the
// engine's fault-decision cursor for checkpointing.
type roundEngine interface {
	round(round, k int) (*matrix.Dense, []float64, error)
	faultEpoch() int64
}

// driver owns the platform-independent round loop: best-of-rounds selection,
// the sampled error metric, history/tracing, checkpoint writes, and injected
// driver crashes.
type driver struct {
	cl      *cluster.Cluster
	opt     Options
	n, dims int
	k       int
	mean    []float64
	y       *matrix.Sparse
	sample  []int
	recon   *reconScratch

	bestErr  float64
	bestW    *matrix.Dense
	bestSing []float64
}

func newDriver(cl *cluster.Cluster, opt Options, rows []matrix.SparseVector, dims int) *driver {
	return &driver{
		cl: cl, opt: opt, n: len(rows), dims: dims,
		k:       opt.sketchWidth(len(rows), dims),
		y:       sparseFromRows(rows, dims),
		sample:  sampleIdx(len(rows), opt.sampleRows(), opt.Seed),
		recon:   newReconScratch(dims, opt.Components),
		bestErr: math.Inf(1),
	}
}

// restore loads a validated snapshot: best-of-rounds state, mean, and
// history. The caller restores cluster metrics and the engine fault epoch.
func (dr *driver) restore(snap *checkpoint.Snapshot, res *Result) {
	dr.mean = snap.Mean
	dr.bestErr = snap.SS
	dr.bestW = snap.C
	dr.bestSing = snap.Singular
	res.History = res.History[:0]
	for _, h := range snap.History {
		res.History = append(res.History, IterationStat{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SimSeconds: h.SimSeconds,
		})
	}
}

// run executes sketch rounds until MaxRounds or TargetAccuracy, starting
// after the resumed round when a snapshot was restored.
func (dr *driver) run(eng roundEngine, res *Result) error {
	opt := dr.opt
	start := 1
	if opt.Resume != nil {
		start = opt.Resume.Iter + 1
	}
	for round := start; round <= opt.maxRounds(); round++ {
		// Entry poll: a pre-canceled context (or one canceled between rounds)
		// is observed here, with round-1 rounds completed.
		if cause := opt.Interrupt.Err(); cause != nil {
			return dr.abortRun(round-1, cause, eng, res, true)
		}
		stop, err := dr.runRound(eng, res, round)
		if err != nil {
			if cluster.IsInterrupt(err) {
				// An engine phase unwound mid-round: the round is abandoned
				// (its jobs partly charged, the engine's fault cursor
				// mid-stream), so no fresh snapshot is written — resume
				// redoes the round from the last periodic one.
				return dr.abortRun(round-1, err, eng, res, false)
			}
			return err
		}
		if stop {
			break
		}
		// Boundary poll: the deterministic abort point between rounds.
		if cause := opt.Interrupt.Err(); cause != nil {
			return dr.abortRun(round, cause, eng, res, true)
		}
		opt.Interrupt.Progress()
	}
	res.Components = dr.bestW
	res.Singular = dr.bestSing
	res.Mean = dr.mean
	res.Iterations = len(res.History)
	res.Metrics = dr.cl.Metrics()
	res.Phases = cluster.Summarize(dr.cl.PhaseLog(), dr.cl.Config())
	return nil
}

func (dr *driver) runRound(eng roundEngine, res *Result, round int) (bool, error) {
	opt := dr.opt
	tr := opt.Tracer
	if tr != nil {
		tr.Begin("round", trace.KindIteration, trace.I("round", int64(round)))
		defer tr.End()
	}
	w, sing, err := eng.round(round, dr.k)
	if err != nil {
		return false, err
	}
	// Best-of-rounds on the sampled reconstruction error (§2.3's
	// accuracy/compute trade, shared with the ssvd baseline's metric).
	e := dr.recon.reconstructionError(dr.y, dr.mean, w, dr.sample)
	if e < dr.bestErr {
		dr.bestErr = e
		dr.bestW = w
		dr.bestSing = sing
	}
	acc := accuracyOf(opt, dr.bestErr)
	stat := IterationStat{
		Iter: round, Err: dr.bestErr, Accuracy: acc, SimSeconds: dr.cl.Metrics().SimSeconds,
	}
	res.History = append(res.History, stat)
	if tr != nil {
		tr.IterationDone(trace.Iteration{
			Iter: stat.Iter, Err: stat.Err, Accuracy: stat.Accuracy, SimSeconds: stat.SimSeconds,
		})
	}
	if opt.Checkpoint.Enabled() && round%opt.Checkpoint.Interval == 0 {
		if err := dr.writeCheckpoint(eng, res, round); err != nil {
			return false, err
		}
	}
	if opt.Faults.DriverCrashAt(round, opt.Incarnation) {
		crash := &cluster.DriverCrashError{
			Iter: round, Incarnation: opt.Incarnation, SimSeconds: dr.cl.Metrics().SimSeconds,
		}
		if tr != nil {
			tr.Event("driver-crash",
				trace.I("iter", int64(round)), trace.I("incarnation", int64(opt.Incarnation)))
		}
		return false, crash
	}
	return opt.TargetAccuracy > 0 && acc >= opt.TargetAccuracy, nil
}

// writeCheckpoint charges and writes one round-granularity snapshot. As in
// the EM driver, the checkpoint cost is charged BEFORE metrics are captured,
// so a resumed run's restored clock already includes the write it resumes
// from.
func (dr *driver) writeCheckpoint(eng roundEngine, res *Result, round int) error {
	opt := dr.opt
	snap := dr.buildSnapshot(eng, res, round)
	dr.cl.ChargeCheckpoint(snap.CostBytes()) // emits the checkpoint span itself
	snap.Metrics = dr.cl.Metrics()
	if _, err := checkpoint.Save(opt.Checkpoint.Dir, snap); err != nil {
		return fmt.Errorf("rsvd: writing checkpoint at round %d: %w", round, err)
	}
	// Injected storage corruption damages the file only — driver state and
	// the simulated clock are untouched, so the run continues as if the write
	// succeeded and only a later resume discovers the bad generation.
	if opt.Faults.SnapshotCorrupt(round) {
		torn := opt.Faults.SnapshotTorn(round)
		off := opt.Faults.CorruptOffset("ckpt", round, snap.Bytes)
		kind := int64(0)
		if torn {
			kind = 1
		}
		opt.Tracer.Event("checkpoint-corrupted",
			trace.I("iter", int64(round)), trace.I("torn", kind), trace.I("offset", off))
		if err := checkpoint.Corrupt(filepath.Join(opt.Checkpoint.Dir, checkpoint.FileName(round)), torn, off); err != nil {
			return fmt.Errorf("rsvd: injecting checkpoint fault at round %d: %w", round, err)
		}
	}
	if opt.Checkpoint.Keep >= 0 {
		if err := checkpoint.Prune(opt.Checkpoint.Dir, opt.Checkpoint.Keep); err != nil {
			return fmt.Errorf("rsvd: pruning checkpoints at round %d: %w", round, err)
		}
	}
	return nil
}

// buildSnapshot assembles the best-of-rounds boundary state into a snapshot
// (metrics are filled in by the caller, which decides whether the write is
// charged to the simulated cluster first).
func (dr *driver) buildSnapshot(eng roundEngine, res *Result, round int) *checkpoint.Snapshot {
	opt := dr.opt
	snap := &checkpoint.Snapshot{
		Iter: round,
		N:    dr.n, Dims: dr.dims, D: opt.Components, Seed: opt.Seed,
		FaultEpoch: eng.faultEpoch(),
		SS:         dr.bestErr,
		Mean:       dr.mean,
		C:          dr.bestW,
		Singular:   dr.bestSing,
	}
	snap.History = make([]checkpoint.HistoryEntry, len(res.History))
	for i, h := range res.History {
		snap.History[i] = checkpoint.HistoryEntry{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SimSeconds: h.SimSeconds,
		}
	}
	return snap
}

// abortRun converts an observed interrupt into a resumable *cluster.AbortError.
// Same determinism contract as the EM driver's counterpart (internal/ppca):
// only a boundary abort flushes a fresh snapshot, and the flush charges
// nothing to the simulated cluster.
func (dr *driver) abortRun(last int, cause error, eng roundEngine, res *Result, atBoundary bool) error {
	opt := dr.opt
	ab := &cluster.AbortError{Iter: last, Cause: cause, SimSeconds: dr.cl.Metrics().SimSeconds}
	if errors.Is(cause, cluster.ErrStalled) {
		ab.Diagnostic = dr.cl.StallDiagnostic()
	}
	if opt.Checkpoint.Enabled() {
		switch {
		case last > 0 && last%opt.Checkpoint.Interval == 0:
			ab.Checkpointed = true
		case atBoundary && last > 0:
			if err := dr.writeFinalCheckpoint(eng, res, last); err != nil {
				opt.Tracer.Event("final-checkpoint-failed", trace.I("iter", int64(last)))
			} else {
				ab.Checkpointed = true
			}
		default:
			ab.Checkpointed = last >= opt.Checkpoint.Interval || opt.Resume != nil
		}
	}
	ck := int64(0)
	if ab.Checkpointed {
		ck = 1
	}
	opt.Tracer.Event(cluster.AbortEventName(cause), trace.I("iter", int64(last)), trace.I("checkpointed", ck))
	return ab
}

// Final-snapshot flush retry bounds (real time; the simulated clock is never
// involved in abort handling).
const (
	finalSaveRetries = 3
	finalSaveBackoff = 25 * time.Millisecond
)

// writeFinalCheckpoint flushes an out-of-interval snapshot at an abort
// boundary, charging nothing to the simulated cluster: the snapshot's
// embedded metrics equal the boundary state exactly, so a resume continues
// bit-identically to an uninterrupted run. Real-I/O failures retry with
// exponential backoff.
func (dr *driver) writeFinalCheckpoint(eng roundEngine, res *Result, round int) error {
	opt := dr.opt
	snap := dr.buildSnapshot(eng, res, round)
	snap.Metrics = dr.cl.Metrics()
	var err error
	backoff := finalSaveBackoff
	for attempt := 0; attempt <= finalSaveRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if _, err = checkpoint.Save(opt.Checkpoint.Dir, snap); err == nil {
			opt.Tracer.Event("final-checkpoint",
				trace.I("iter", int64(round)), trace.I("retries", int64(attempt)))
			if opt.Checkpoint.Keep >= 0 {
				if perr := checkpoint.Prune(opt.Checkpoint.Dir, opt.Checkpoint.Keep); perr != nil {
					return fmt.Errorf("rsvd: pruning checkpoints at abort: %w", perr)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("rsvd: final checkpoint at round %d failed after %d retries: %w",
		round, finalSaveRetries, err)
}

// accuracyOf converts an error into a fraction of ideal accuracy
// (IdealError/err, matching the sPCA metric so traces are comparable).
func accuracyOf(o Options, err float64) float64 {
	if o.IdealError <= 0 {
		return 0
	}
	if err <= o.IdealError {
		return 1
	}
	return o.IdealError / err
}

// sampleIdx draws the sorted error-metric row sample. The "sample" stream of
// DeriveSeed matches the ssvd baseline's, so both engines grade themselves
// on the same rows.
func sampleIdx(n, want int, seed uint64) []int {
	if want >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	perm := matrix.NewRNG(matrix.DeriveSeed(seed, "sample", 0)).Perm(n)
	idx := perm[:want]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// reconScratch holds the error-metric buffers, allocated once per fit and
// reused by every round's reconstructionError call.
type reconScratch struct {
	xi, wm, tNum, tDen []float64
}

func newReconScratch(dims, d int) *reconScratch {
	return &reconScratch{
		xi:   make([]float64, d),
		wm:   make([]float64, d),
		tNum: make([]float64, dims),
		tDen: make([]float64, dims),
	}
}

// reconstructionError mirrors the sPCA metric: sampled relative 1-norm of
// Y - ((Yc·W)·Wᵀ + Ym) for orthonormal W.
func (rs *reconScratch) reconstructionError(y *matrix.Sparse, mean []float64, w *matrix.Dense, rows []int) float64 {
	var num, den float64
	xi := rs.xi[:w.C]
	wm := w.MulVecTInto(mean, rs.wm[:w.C])
	tNum, tDen := rs.tNum, rs.tDen
	for _, i := range rows {
		row := y.Row(i)
		for t := range xi {
			xi[t] = -wm[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], w.Row(j), xi)
		}
		matrix.ReconTerms(row, mean, w, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func sparseFromRows(rows []matrix.SparseVector, dims int) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for _, r := range rows {
		b.AddRow(r.Indices, r.Values)
	}
	return b.Build()
}
