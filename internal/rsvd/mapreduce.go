package rsvd

import (
	"fmt"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// FitMapReduce runs distributed randomized SVD on the MapReduce engine:
// broadcast a seeded Gaussian test matrix Ω, project P = Yc·Ω, orthonormalize
// with a charged QR phase, refine with q QR re-orthonormalized power
// iterations (Q ← QR(Yc·(YcᵀQ))), then take the small SVD of B = YcᵀQ on the
// driver. Unlike the Mahout baseline in internal/ssvd, the B job uses
// in-mapper combining (one k-vector per column per task instead of one per
// non-zero), and every mapper runs on per-task pooled scratch with zero
// steady-state allocations.
func FitMapReduce(eng *mapred.Engine, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if err := opt.validate(len(rows), dims); err != nil {
		return nil, err
	}
	cl := eng.Cluster
	tr := opt.Tracer
	if tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitRSVD", trace.KindFit,
			trace.I("rows", int64(len(rows))), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}
	res := &Result{}
	dr := newDriver(cl, opt, rows, dims)

	indexed := make([]indexedRow, len(rows))
	for i, r := range rows {
		indexed[i] = indexedRow{idx: i, row: r}
	}
	me := &mrEngine{
		eng: eng, opt: opt, dims: dims, indexed: indexed,
		scr: newMRScratch(eng.NumSplits(len(rows))),
	}

	if snap := opt.Resume; snap != nil {
		// Resume: the mean job was already paid for by the crashed
		// incarnation and lives in the snapshot; restore its clock wholesale
		// and replay the remaining rounds under the same fault cursor.
		if err := snap.Validate(len(rows), dims, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		cl.RestoreMetrics(snap.Metrics)
		cl.ChargeDriverRestore(snap.CostBytes(), opt.RecoveredSeconds)
		eng.SetJobSeq(snap.FaultEpoch)
		dr.restore(snap, res)
	} else {
		mean, err := meanJob(eng, rows, dims)
		if err != nil {
			return nil, err
		}
		dr.mean = mean
		if opt.Incarnation > 0 {
			// Restarted from scratch after a crash with no usable snapshot:
			// count the restart and the previous incarnation's wasted time.
			cl.ChargeDriverRestore(0, opt.RecoveredSeconds)
		}
	}
	me.mean = dr.mean

	if err := dr.run(me, res); err != nil {
		return nil, err
	}
	return res, nil
}

type indexedRow struct {
	idx int
	row matrix.SparseVector
}

// mrEngine implements one randomized-SVD sketch round as MapReduce jobs. The
// projection matrix P (N x k), the small matrix B (D x k), and all per-task
// mapper scratch are allocated on the first round and reused afterwards.
type mrEngine struct {
	eng     *mapred.Engine
	opt     Options
	dims    int
	mean    []float64
	indexed []indexedRow
	scr     *mrScratch
	p       *matrix.Dense // N x k projection, refilled by every project job
	b       *matrix.Dense // D x k, refilled by every B job
}

func (e *mrEngine) faultEpoch() int64 { return e.eng.JobSeq() }

func (e *mrEngine) round(round, k int) (*matrix.Dense, []float64, error) {
	cl := e.eng.Cluster
	// Ω: a fresh D x k Gaussian test matrix per round, broadcast to all
	// mappers. Independent of ssvd's draws by stream name, not by offset.
	omega := matrix.NormRnd(matrix.NewRNG(matrix.DeriveSeed(e.opt.Seed, "rsvd/omega", uint64(round))), e.dims, k)
	broadcastBytes(cl, "rsvd/omega", mapred.BytesOfDense(omega))

	if err := e.projectJob("rsvd-range", omega); err != nil {
		return nil, nil, err
	}
	q := qrPhase(cl, e.p)

	// Power iterations: Q ← QR(Yc·(YcᵀQ)), re-orthonormalizing after every
	// application so the basis never degenerates (Halko's recommendation).
	for pi := 0; pi < e.opt.PowerIterations; pi++ {
		if err := e.bJob(q); err != nil {
			return nil, nil, err
		}
		broadcastBytes(cl, "rsvd/b", mapred.BytesOfDense(e.b))
		if err := e.projectJob(fmt.Sprintf("rsvd-power-%d", pi), e.b); err != nil {
			return nil, nil, err
		}
		q = qrPhase(cl, e.p)
	}

	// B = YcᵀQ (D x k), then the small SVD on the driver: principal
	// directions are B's left singular vectors.
	if err := e.bJob(q); err != nil {
		return nil, nil, err
	}
	w, s, _ := matrix.TopSVD(e.b, e.opt.Components)
	cl.AddDriverCompute(int64(e.dims) * int64(k) * int64(k))
	return w, s, nil
}

// broadcastBytes charges shipping one driver-side matrix to every node.
func broadcastBytes(cl *cluster.Cluster, name string, bytes int64) {
	cl.RunPhase(cluster.PhaseStats{
		Name:         name,
		ShuffleBytes: bytes * int64(cl.Config().Nodes),
	})
}

// qrPhase orthonormalizes the materialized projection: the real QR runs on
// the driver's copy and the distributed cost is charged — O(N·k²) compute
// plus a full write+read of Q.
func qrPhase(cl *cluster.Cluster, p *matrix.Dense) *matrix.Dense {
	q, _ := matrix.QR(p)
	nk := int64(p.R) * int64(p.C) * 8
	cl.RunPhase(cluster.PhaseStats{
		Name:              "rsvd/qr",
		ComputeOps:        int64(p.R) * int64(p.C) * int64(p.C) * 2,
		DiskBytes:         2 * nk, // write Q, read it back in the next job
		MaterializedBytes: nk,
		Tasks:             int64(cl.TotalCores()),
	})
	return q
}

// projectJob computes P = Yc·B for an in-memory D x k matrix B with mean
// propagation, filling the reused e.p. Each mapper emits one pooled k-vector
// per row — zero allocations once the per-task freelists are warm.
func (e *mrEngine) projectJob(name string, b *matrix.Dense) error {
	k := b.C
	// Ym·B, subtracted from every projected row (mean propagation).
	mb := e.scr.mb(k)
	for j, mj := range e.mean {
		if mj != 0 {
			matrix.AXPY(mj, b.Row(j), mb)
		}
	}
	job := mapred.Job[indexedRow, int, []float64, []float64]{
		Name: name,
		NewMapper: func(task int) mapred.Mapper[indexedRow, int, []float64] {
			m := e.scr.proj[task]
			m.reset(k, b, mb) // reset handles fault replays too
			return m
		},
		Reduce:      func(_ int, vs [][]float64, _ mapred.Ops) []float64 { return vs[0] },
		InputBytes:  func(r indexedRow) int64 { return mapred.BytesOfSparseVec(r.row) },
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
		Dense:       e.scr.denseProj(len(e.indexed), k),
	}
	out, err := mapred.Run(e.eng, job, e.indexed)
	if err != nil {
		return err
	}
	if e.p == nil {
		e.p = matrix.NewDense(len(e.indexed), k)
	}
	for i := range e.indexed {
		v, ok := out[i]
		if !ok {
			return fmt.Errorf("rsvd: %s lost row %d", name, i)
		}
		copy(e.p.Row(i), v)
	}
	return nil
}

// bJob computes B = YcᵀQ (D x k) with in-mapper combining: each task folds
// its rows into a column-keyed accumulator map and emits one k-vector per
// touched column in Cleanup — the combining Mahout's Bt job lacks.
func (e *mrEngine) bJob(q *matrix.Dense) error {
	k := q.C
	job := mapred.Job[indexedRow, int, []float64, []float64]{
		Name: "rsvd-b",
		NewMapper: func(task int) mapred.Mapper[indexedRow, int, []float64] {
			m := e.scr.bt[task]
			m.reset(k, q)
			return m
		},
		Combine: func(a, b []float64) []float64 {
			matrix.AXPY(1, b, a)
			return a
		},
		Reduce: func(_ int, vs [][]float64, o mapred.Ops) []float64 {
			sum := make([]float64, k)
			for _, v := range vs {
				matrix.AXPY(1, v, sum)
				o.AddOps(int64(k))
			}
			return sum
		},
		InputBytes: func(r indexedRow) int64 {
			return mapred.BytesOfSparseVec(r.row) + int64(k)*8 // reads Y and Q
		},
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
		Dense:       e.scr.denseB(e.dims, k),
	}
	out, err := mapred.Run(e.eng, job, e.indexed)
	if err != nil {
		return err
	}
	if e.b == nil {
		e.b = matrix.NewDense(e.dims, k)
	}
	e.b.Zero()
	for j, v := range out {
		copy(e.b.Row(j), v)
	}
	// Mean propagation on the driver: B = YᵀQ - Ym ⊗ colSum(Q).
	colSum := e.scr.mb(k) // reuse of the k-sized driver buffer is safe here
	for i := 0; i < q.R; i++ {
		matrix.AXPY(1, q.Row(i), colSum)
	}
	for j, mj := range e.mean {
		if mj != 0 {
			matrix.AXPY(-mj, colSum, e.b.Row(j))
		}
	}
	e.eng.Cluster.AddDriverCompute(int64(q.R)*int64(k) + int64(e.dims)*int64(k))
	return nil
}

// meanJob computes column means with a small job (same shape as sPCA's).
func meanJob(eng *mapred.Engine, rows []matrix.SparseVector, dims int) ([]float64, error) {
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "rsvd-mean",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &meanMapper{partial: map[int]float64{}}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
		// Keys are the column range plus the -1 row-count slot.
		Dense: &mapred.DenseSpec{MinKey: -1, Keys: dims + 1, Width: 1},
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return nil, err
	}
	count := out[-1]
	if count == 0 {
		return nil, fmt.Errorf("rsvd: mean job saw no rows")
	}
	mean := make([]float64, dims)
	for j, v := range out {
		if j >= 0 {
			mean[j] = v / count
		}
	}
	return mean, nil
}

type meanMapper struct {
	partial map[int]float64
	count   float64
}

func (m *meanMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	for k, j := range row.Indices {
		m.partial[j] += row.Values[k]
	}
	m.count++
	out.AddOps(int64(row.NNZ()))
}

func (m *meanMapper) Cleanup(out mapred.Emitter[int, float64]) {
	for j, v := range m.partial {
		out.Emit(j, v)
	}
	out.Emit(-1, m.count)
}

// mrScratch owns every reused mapper-side buffer, indexed by task.
type mrScratch struct {
	proj  []*projMapper
	bt    []*btMapper
	mbBuf []float64
	// Flat-slab shuffle specs, one stable pointer per job shape so every
	// round reuses the engine's pooled slabs via the cheap same-spec reset.
	projSpec *mapred.DenseSpec
	bSpec    *mapred.DenseSpec
}

// denseProj is the projection job's spec: one k-wide row per input row.
func (s *mrScratch) denseProj(n, k int) *mapred.DenseSpec {
	if s.projSpec == nil || s.projSpec.Keys != n || s.projSpec.Width != k {
		s.projSpec = &mapred.DenseSpec{MinKey: 0, Keys: n, Width: k}
	}
	return s.projSpec
}

// denseB is the Bᵀ job's spec: one k-wide row per touched column.
func (s *mrScratch) denseB(dims, k int) *mapred.DenseSpec {
	if s.bSpec == nil || s.bSpec.Keys != dims || s.bSpec.Width != k {
		s.bSpec = &mapred.DenseSpec{MinKey: 0, Keys: dims, Width: k}
	}
	return s.bSpec
}

func newMRScratch(tasks int) *mrScratch {
	s := &mrScratch{proj: make([]*projMapper, tasks), bt: make([]*btMapper, tasks)}
	for i := range s.proj {
		s.proj[i] = &projMapper{}
		s.bt[i] = &btMapper{}
	}
	return s
}

// mb returns the zeroed driver-side k-vector.
func (s *mrScratch) mb(k int) []float64 {
	if cap(s.mbBuf) < k {
		s.mbBuf = make([]float64, k)
	}
	s.mbBuf = s.mbBuf[:k]
	for i := range s.mbBuf {
		s.mbBuf[i] = 0
	}
	return s.mbBuf
}

// projMapper emits one pooled k-vector per input row. reset reclaims every
// vector handed out by the previous job (or a failed attempt of this one).
type projMapper struct {
	k    int
	b    *matrix.Dense
	mb   []float64
	free [][]float64
	out  [][]float64
}

func (m *projMapper) reset(k int, b *matrix.Dense, mb []float64) {
	if m.k != k {
		m.free, m.out, m.k = nil, nil, k
	}
	m.free = append(m.free, m.out...)
	m.out = m.out[:0]
	m.b, m.mb = b, mb
}

func (m *projMapper) vec() []float64 {
	var v []float64
	if n := len(m.free); n > 0 {
		v = m.free[n-1]
		m.free = m.free[:n-1]
		for i := range v {
			v[i] = 0
		}
	} else {
		v = make([]float64, m.k)
	}
	m.out = append(m.out, v)
	return v
}

func (m *projMapper) Map(rec indexedRow, out mapred.Emitter[int, []float64]) {
	p := m.vec()
	for t, j := range rec.row.Indices {
		matrix.AXPY(rec.row.Values[t], m.b.Row(j), p)
	}
	matrix.AXPY(-1, m.mb, p)
	out.Emit(rec.idx, p)
	out.AddOps(int64(rec.row.NNZ()*m.k + m.k))
}

func (m *projMapper) Cleanup(mapred.Emitter[int, []float64]) {}

// btMapper folds B-contributions into a column-keyed map (in-mapper
// combining) and emits once per touched column in Cleanup. Emission order is
// the map's, which is fine: every column is emitted at most once per task,
// and the reducer's value list is ordered by task, so the fold stays
// deterministic.
type btMapper struct {
	k    int
	q    *matrix.Dense
	bt   map[int][]float64
	free [][]float64
}

func (m *btMapper) reset(k int, q *matrix.Dense) {
	if m.k != k {
		m.bt, m.free, m.k = nil, nil, k
	}
	if m.bt == nil {
		m.bt = map[int][]float64{}
	}
	for j, v := range m.bt {
		m.free = append(m.free, v)
		delete(m.bt, j)
	}
	m.q = q
}

func (m *btMapper) vec() []float64 {
	if n := len(m.free); n > 0 {
		v := m.free[n-1]
		m.free = m.free[:n-1]
		for i := range v {
			v[i] = 0
		}
		return v
	}
	return make([]float64, m.k)
}

func (m *btMapper) Map(rec indexedRow, out mapred.Emitter[int, []float64]) {
	qi := m.q.Row(rec.idx)
	for t, j := range rec.row.Indices {
		v := m.bt[j]
		if v == nil {
			v = m.vec()
			m.bt[j] = v
		}
		matrix.AXPY(rec.row.Values[t], qi, v)
	}
	out.AddOps(int64(rec.row.NNZ() * m.k))
}

func (m *btMapper) Cleanup(out mapred.Emitter[int, []float64]) {
	for j, v := range m.bt {
		out.Emit(j, v)
	}
}
