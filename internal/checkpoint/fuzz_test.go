package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSnapshot hammers the snapshot parser the same way the matrix
// fuzzers hammer the matrix readers: any input may be rejected (with an error
// wrapping ErrBadSnapshot), but none may panic, and any accepted input must
// re-serialize and re-parse to the same state.
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot(7)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-body
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)                         // flipped bit (checksum must catch)
	f.Add([]byte(toV1(f, string(valid))))  // valid v1 (no trailer)
	f.Add(valid[:len(valid)-trailerLen])   // trailer sheared off
	f.Add([]byte("spcackpt 2\n"))          // header only
	f.Add([]byte("spcackpt 99\niter 1\n")) // future version
	f.Add([]byte("nonsense\n"))            // not a snapshot at all
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if s.C == nil || len(s.Mean) != s.Dims || s.C.R != s.Dims || s.C.C != s.D {
			t.Fatalf("accepted snapshot with inconsistent shapes: C=%v mean=%d dims=%d d=%d",
				s.C != nil, len(s.Mean), s.Dims, s.D)
		}
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("re-serializing accepted snapshot: %v", err)
		}
		s2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		if s2.Iter != s.Iter || s2.Seed != s.Seed || s2.Dims != s.Dims || s2.D != s.D {
			t.Fatalf("round-trip changed identity: %+v -> %+v", s, s2)
		}
	})
}

// fuzzSeedV1 guards the toV1 helper against drifting out of sync with the
// writer: its output must actually parse as version 1.
func TestFuzzSeedV1Parses(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader(toV1(t, buf.String()))); err != nil {
		t.Fatalf("v1 seed corpus does not parse: %v", err)
	}
}
