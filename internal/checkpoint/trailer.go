package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// This file is the reusable core of the snapshot container's integrity
// discipline: an FNV-64a digest accumulated over every byte of the body,
// appended as a fixed-width "checksum %016x" trailer line and verified
// before any field of the body is parsed. The checkpoint format itself and
// the model files of the serving registry (spca.Model.Save) share these
// helpers, so a torn write or flipped bit is detected the same way in both.

// TrailerWriter counts and hashes the bytes written through it, so a writer
// can finish a byte-deterministic container with an FNV-64a checksum trailer.
// The trailer line itself is counted in Bytes but never hashed.
type TrailerWriter struct {
	w       io.Writer
	n       int64
	h       uint64
	hashing bool
}

// NewTrailerWriter wraps w; every byte written is hashed until WriteTrailer.
func NewTrailerWriter(w io.Writer) *TrailerWriter {
	return &TrailerWriter{w: w, h: checksumOffset, hashing: true}
}

func (t *TrailerWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	if t.hashing {
		for _, b := range p[:n] {
			t.h ^= uint64(b)
			t.h *= checksumPrime
		}
	}
	t.n += int64(n)
	return n, err
}

// WriteTrailer stops hashing and appends the "checksum %016x" trailer line
// covering everything written so far.
func (t *TrailerWriter) WriteTrailer() error {
	t.hashing = false
	_, err := fmt.Fprintf(t, "checksum %016x\n", t.h)
	return err
}

// Bytes returns the total bytes written, including the trailer.
func (t *TrailerWriter) Bytes() int64 { return t.n }

// VerifyTrailer checks the trailing checksum line of a container written
// through a TrailerWriter and returns the body with the trailer stripped.
// Every failure wraps ErrBadSnapshot, so callers distinguish corruption from
// I/O errors with errors.Is.
func VerifyTrailer(data []byte) ([]byte, error) {
	if len(data) < trailerLen {
		return nil, fmt.Errorf("%w: truncated before checksum trailer", ErrBadSnapshot)
	}
	body := data[:len(data)-trailerLen]
	trailer := data[len(data)-trailerLen:]
	if !bytes.HasPrefix(trailer, []byte("checksum ")) || trailer[trailerLen-1] != '\n' {
		return nil, fmt.Errorf("%w: missing checksum trailer", ErrBadSnapshot)
	}
	want, perr := strconv.ParseUint(string(trailer[len("checksum "):trailerLen-1]), 16, 64)
	if perr != nil {
		return nil, fmt.Errorf("%w: bad checksum trailer %q", ErrBadSnapshot, string(trailer[:trailerLen-1]))
	}
	h := uint64(checksumOffset)
	for _, b := range body {
		h ^= uint64(b)
		h *= checksumPrime
	}
	if h != want {
		return nil, fmt.Errorf("%w: checksum mismatch (trailer says %016x, body hashes to %016x)", ErrBadSnapshot, want, h)
	}
	return body, nil
}
