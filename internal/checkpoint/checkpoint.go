// Package checkpoint implements durable snapshots of the EM driver state, the
// basis of driver crash/resume in spca.Fit. A Snapshot captures everything the
// driver needs to continue an interrupted run and land on a bit-identical
// final model: the current components W/C and variance ss, the data mean and
// centering constant ss1, the iteration index, the RNG seed (the engines
// derive every random draw — initial components, sample-row selection — purely
// from it, so the seed *is* the stream cursor), the accumulated cluster
// Metrics, the per-iteration History, and the numerical-guard state (standing
// ridge level, divergence counter, best-model rollback target).
//
// The on-disk format is a versioned text container: a "spcackpt <version>"
// header, named scalar lines using strconv.FormatFloat(v, 'g', -1, 64) —
// which round-trips every float64 exactly, the property the bit-identical
// resume guarantee rests on — and embedded dmx blocks (the internal/matrix/io
// dense container) for the component matrices. Snapshots are written
// atomically (tmp file + rename), so a crash mid-write never leaves a
// half-readable checkpoint behind.
package checkpoint

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

// Version is the current snapshot format version. Readers reject versions
// they do not understand rather than guessing. Version 2 added the FNV-64a
// checksum trailer and the data-integrity metrics fields; version 1 files
// (no trailer) remain readable.
const Version = 2

// DefaultKeep is the number of snapshot generations Prune retains when the
// caller does not choose one. Three generations means a resume survives the
// newest snapshot being corrupt (torn write, flipped bit) twice over.
const DefaultKeep = 3

// ErrNoCheckpoint is returned by Latest when the directory holds no readable
// snapshot — the resume path treats it as "start from scratch".
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// ErrBadSnapshot is the sentinel wrapped by every parse failure, so callers
// can distinguish a corrupt snapshot from an I/O error with errors.Is.
var ErrBadSnapshot = errors.New("checkpoint: malformed snapshot")

// MismatchError reports a snapshot that parsed fine but belongs to a
// different run (different data shape, rank, or seed). Resuming from it would
// silently produce a model of the wrong problem, so Validate refuses.
type MismatchError struct {
	Field     string
	Want, Got string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: snapshot %s mismatch: snapshot has %s, run has %s", e.Field, e.Got, e.Want)
}

// HistoryEntry mirrors one per-iteration record of the EM history. It is a
// separate type from ppca.IterationStat (checkpoint sits below ppca in the
// import graph); the driver converts losslessly in both directions.
type HistoryEntry struct {
	Iter         int
	Err          float64
	Accuracy     float64
	SS           float64
	SimSeconds   float64
	Ridge        float64
	RidgeRetries int
	Rollback     bool
}

// BestState is the divergence-guard rollback target: the lowest-error model
// seen so far. Present only when the divergence guard is armed and at least
// one iteration has completed.
type BestState struct {
	Iter int
	Err  float64
	SS   float64
	C    *matrix.Dense
}

// Snapshot is the full persistable EM driver state after iteration Iter.
type Snapshot struct {
	Iter int // last completed EM iteration (1-based)

	// Problem identity, checked by Validate before a resume.
	N, Dims, D int
	Seed       uint64

	// FaultEpoch is the engine's fault-decision cursor at snapshot time (the
	// MapReduce job sequence number / Spark action epoch). Restoring it lets
	// a resumed driver draw the exact same task faults an uninterrupted run
	// would for the remaining jobs. Zero for single-machine fits.
	FaultEpoch int64

	// Model state.
	SS   float64
	SS1  float64 // centering constant (Frobenius-norm accumulator)
	Mean []float64
	C    *matrix.Dense

	// Numerical-guard state.
	RidgeLevel int // standing ridge escalation level (0 = none)
	Rising     int // consecutive iterations with rising reconstruction error
	Best       *BestState

	// Singular holds the singular values that accompany C for the sketch
	// engines (rsvd), whose best-of-rounds state includes the small-SVD
	// spectrum; recomputing it on resume would disturb the simulated clock.
	// Empty for EM snapshots, and the section is omitted on disk when empty,
	// so EM snapshot bytes are unchanged.
	Singular []float64

	// Simulated-cluster accounting at snapshot time; restored wholesale on
	// resume so the re-executed iterations replay the same simulated clock.
	Metrics cluster.Metrics

	History []HistoryEntry

	// Bytes is the serialized size, set by Write/Save/Read/Latest. It is
	// derived, not stored, and is what the resume path charges as the
	// snapshot read.
	Bytes int64
}

// CostBytes is the simulation-model size of the snapshot: what writing it to
// durable storage is charged as. It models a compact binary encoding (8 bytes
// per float64 of state plus fixed per-record overheads) and deliberately
// depends only on the state *shapes* — never on the serialized text length or
// the metric values — so the charge at a given iteration is bit-identical
// between an uninterrupted run and a crashed+resumed one, which is what keeps
// their simulated clocks (and hence golden fingerprints) equal.
func (s *Snapshot) CostBytes() int64 {
	b := int64(256) // header, scalars, guard state, metrics block
	b += int64(len(s.Mean)) * 8
	if s.C != nil {
		b += int64(s.C.R) * int64(s.C.C) * 8
	}
	b += int64(len(s.History)) * 64
	if s.Best != nil && s.Best.C != nil {
		b += 32 + int64(s.Best.C.R)*int64(s.Best.C.C)*8
	}
	b += int64(len(s.Singular)) * 8
	return b
}

// Validate checks that the snapshot belongs to the run described by the
// arguments, returning a *MismatchError (or *ErrBadSnapshot-wrapped shape
// error) if not.
func (s *Snapshot) Validate(n, dims, d int, seed uint64) error {
	switch {
	case s.N != n:
		return &MismatchError{Field: "row count", Want: strconv.Itoa(n), Got: strconv.Itoa(s.N)}
	case s.Dims != dims:
		return &MismatchError{Field: "column count", Want: strconv.Itoa(dims), Got: strconv.Itoa(s.Dims)}
	case s.D != d:
		return &MismatchError{Field: "rank", Want: strconv.Itoa(d), Got: strconv.Itoa(s.D)}
	case s.Seed != seed:
		return &MismatchError{Field: "seed", Want: strconv.FormatUint(seed, 10), Got: strconv.FormatUint(s.Seed, 10)}
	}
	if s.C == nil || s.C.R != dims || s.C.C != d || len(s.Mean) != dims {
		cr, cc := 0, 0
		if s.C != nil {
			cr, cc = s.C.R, s.C.C
		}
		return fmt.Errorf("%w: state shapes do not match header (C is %dx%d, mean has %d values; want C %dx%d, mean %d)",
			ErrBadSnapshot, cr, cc, len(s.Mean), dims, d, dims)
	}
	return nil
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write serializes s. The output is byte-deterministic for equal snapshots.
// On success s.Bytes is set to the serialized size.
func Write(w io.Writer, s *Snapshot) error {
	cw := NewTrailerWriter(w)
	bw := bufio.NewWriter(cw)
	fmt.Fprintf(bw, "spcackpt %d\n", Version)
	fmt.Fprintf(bw, "iter %d\n", s.Iter)
	fmt.Fprintf(bw, "shape %d %d %d\n", s.N, s.Dims, s.D)
	fmt.Fprintf(bw, "seed %d\n", s.Seed)
	fmt.Fprintf(bw, "epoch %d\n", s.FaultEpoch)
	fmt.Fprintf(bw, "ss %s %s\n", ff(s.SS), ff(s.SS1))
	fmt.Fprintf(bw, "guard %d %d\n", s.RidgeLevel, s.Rising)
	m := s.Metrics
	fmt.Fprintf(bw, "metrics %d %d %d %d %d %d %s %d %d %d %d %s %d %s %d %d %s\n",
		m.ComputeOps, m.ShuffleBytes, m.DiskBytes, m.MaterializedBytes, m.Tasks, m.Phases,
		ff(m.SimSeconds), m.DriverPeak, m.FailedAttempts, m.RecomputedOps, m.SpeculativeTasks,
		ff(m.RecoverySeconds), m.CheckpointBytes, ff(m.CheckpointSeconds), m.DriverRestarts,
		m.CorruptPayloads, ff(m.ReverifySeconds))
	bw.WriteString("mean")
	for _, v := range s.Mean {
		bw.WriteByte(' ')
		bw.WriteString(ff(v))
	}
	bw.WriteByte('\n')
	fmt.Fprintf(bw, "history %d\n", len(s.History))
	for _, h := range s.History {
		rb := 0
		if h.Rollback {
			rb = 1
		}
		fmt.Fprintf(bw, "%d %s %s %s %s %s %d %d\n",
			h.Iter, ff(h.Err), ff(h.Accuracy), ff(h.SS), ff(h.SimSeconds), ff(h.Ridge), h.RidgeRetries, rb)
	}
	if s.Best != nil {
		fmt.Fprintf(bw, "best %d %s %s\n", s.Best.Iter, ff(s.Best.Err), ff(s.Best.SS))
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := matrix.WriteDense(cw, s.Best.C); err != nil {
			return err
		}
	} else {
		bw.WriteString("best none\n")
	}
	if len(s.Singular) > 0 {
		bw.WriteString("singular")
		for _, v := range s.Singular {
			bw.WriteByte(' ')
			bw.WriteString(ff(v))
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("components\n")
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := matrix.WriteDense(cw, s.C); err != nil {
		return err
	}
	// Checksum trailer: FNV-64a over every byte written so far. The trailer
	// itself is counted in Bytes but not hashed, so the reader verifies
	// data[:len-trailerLen] against the hex digest in the last line.
	if err := cw.WriteTrailer(); err != nil {
		return err
	}
	s.Bytes = cw.Bytes()
	return nil
}

// trailerLen is the byte length of the v2 checksum trailer line:
// "checksum " + 16 hex digits + "\n".
const trailerLen = len("checksum ") + 16 + 1

// checksumOffset/checksumPrime are the FNV-64a parameters for the snapshot
// body checksum.
const (
	checksumOffset = 14695981039346656037
	checksumPrime  = 1099511628211
)

// Read parses a snapshot written by Write, returning errors that wrap
// ErrBadSnapshot for any malformed input. Version-2 files carry a whole-file
// FNV-64a checksum trailer that is verified before any field is parsed, so a
// flipped bit or torn write anywhere in the file is detected up front;
// version-1 files (no trailer) remain readable. s.Bytes is NOT set (the
// reader may not be a file); Save/Latest set it from the file size.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading snapshot: %v", ErrBadSnapshot, err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: truncated before header", ErrBadSnapshot)
	}
	hdr := string(data[:nl])
	var ver int
	if _, err := fmt.Sscanf(hdr, "spcackpt %d", &ver); err != nil {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadSnapshot, hdr)
	}
	if ver < 1 || ver > Version {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrBadSnapshot, ver, Version)
	}
	body := data
	if ver >= 2 {
		if body, err = VerifyTrailer(data); err != nil {
			return nil, err
		}
	}

	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line := func(what string) (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", fmt.Errorf("%w: reading %s: %v", ErrBadSnapshot, what, err)
			}
			return "", fmt.Errorf("%w: truncated before %s", ErrBadSnapshot, what)
		}
		return sc.Text(), nil
	}
	if _, err := line("header"); err != nil {
		return nil, err
	}

	s := &Snapshot{}
	if l, err := line("iter"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "iter %d", &s.Iter); err != nil {
		return nil, fmt.Errorf("%w: bad iter line %q", ErrBadSnapshot, l)
	}
	if l, err := line("shape"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "shape %d %d %d", &s.N, &s.Dims, &s.D); err != nil {
		return nil, fmt.Errorf("%w: bad shape line %q", ErrBadSnapshot, l)
	}
	if s.N < 0 || s.Dims <= 0 || s.D <= 0 || s.Dims > 1<<30 || s.D > 1<<20 {
		return nil, fmt.Errorf("%w: implausible shape %d x %d rank %d", ErrBadSnapshot, s.N, s.Dims, s.D)
	}
	if l, err := line("seed"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "seed %d", &s.Seed); err != nil {
		return nil, fmt.Errorf("%w: bad seed line %q", ErrBadSnapshot, l)
	}
	if l, err := line("epoch"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "epoch %d", &s.FaultEpoch); err != nil {
		return nil, fmt.Errorf("%w: bad epoch line %q", ErrBadSnapshot, l)
	}
	if l, err := line("ss"); err != nil {
		return nil, err
	} else {
		f := strings.Fields(l)
		if len(f) != 3 || f[0] != "ss" {
			return nil, fmt.Errorf("%w: bad ss line %q", ErrBadSnapshot, l)
		}
		if s.SS, err = parseF(f[1]); err != nil {
			return nil, err
		}
		if s.SS1, err = parseF(f[2]); err != nil {
			return nil, err
		}
	}
	if l, err := line("guard"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "guard %d %d", &s.RidgeLevel, &s.Rising); err != nil {
		return nil, fmt.Errorf("%w: bad guard line %q", ErrBadSnapshot, l)
	}

	ml, err := line("metrics")
	if err != nil {
		return nil, err
	}
	mf := strings.Fields(ml)
	wantMetrics := 18 // v2 appended CorruptPayloads and ReverifySeconds
	if ver == 1 {
		wantMetrics = 16
	}
	if len(mf) != wantMetrics || mf[0] != "metrics" {
		return nil, fmt.Errorf("%w: bad metrics line %q", ErrBadSnapshot, ml)
	}
	m := &s.Metrics
	ints := []*int64{&m.ComputeOps, &m.ShuffleBytes, &m.DiskBytes, &m.MaterializedBytes, &m.Tasks, &m.Phases,
		nil, &m.DriverPeak, &m.FailedAttempts, &m.RecomputedOps, &m.SpeculativeTasks,
		nil, &m.CheckpointBytes, nil, &m.DriverRestarts, &m.CorruptPayloads, nil}
	floats := map[int]*float64{6: &m.SimSeconds, 11: &m.RecoverySeconds, 13: &m.CheckpointSeconds, 16: &m.ReverifySeconds}
	for i, field := range mf[1:] {
		if fp, ok := floats[i]; ok {
			if *fp, err = parseF(field); err != nil {
				return nil, err
			}
			continue
		}
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad metrics field %q", ErrBadSnapshot, field)
		}
		*ints[i] = v
	}

	meanLine, err := line("mean")
	if err != nil {
		return nil, err
	}
	meanFields := strings.Fields(meanLine)
	if len(meanFields) == 0 || meanFields[0] != "mean" {
		return nil, fmt.Errorf("%w: bad mean line", ErrBadSnapshot)
	}
	if len(meanFields)-1 != s.Dims {
		return nil, fmt.Errorf("%w: mean has %d values, want %d", ErrBadSnapshot, len(meanFields)-1, s.Dims)
	}
	s.Mean = make([]float64, s.Dims)
	for i, field := range meanFields[1:] {
		if s.Mean[i], err = parseF(field); err != nil {
			return nil, err
		}
	}

	var nh int
	if l, err := line("history"); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(l, "history %d", &nh); err != nil || nh < 0 || nh > 1<<20 {
		return nil, fmt.Errorf("%w: bad history count line %q", ErrBadSnapshot, l)
	}
	s.History = make([]HistoryEntry, nh)
	for i := range s.History {
		l, err := line("history entry")
		if err != nil {
			return nil, err
		}
		f := strings.Fields(l)
		if len(f) != 8 {
			return nil, fmt.Errorf("%w: bad history entry %q", ErrBadSnapshot, l)
		}
		h := &s.History[i]
		var rb int
		if h.Iter, err = strconv.Atoi(f[0]); err == nil {
			if h.Err, err = parseF(f[1]); err == nil {
				if h.Accuracy, err = parseF(f[2]); err == nil {
					if h.SS, err = parseF(f[3]); err == nil {
						if h.SimSeconds, err = parseF(f[4]); err == nil {
							if h.Ridge, err = parseF(f[5]); err == nil {
								if h.RidgeRetries, err = strconv.Atoi(f[6]); err == nil {
									rb, err = strconv.Atoi(f[7])
								}
							}
						}
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("%w: bad history entry %q", ErrBadSnapshot, l)
		}
		h.Rollback = rb != 0
	}

	bestLine, err := line("best")
	if err != nil {
		return nil, err
	}
	switch {
	case bestLine == "best none":
	case strings.HasPrefix(bestLine, "best "):
		b := &BestState{}
		f := strings.Fields(bestLine)
		if len(f) != 4 {
			return nil, fmt.Errorf("%w: bad best line %q", ErrBadSnapshot, bestLine)
		}
		if b.Iter, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("%w: bad best line %q", ErrBadSnapshot, bestLine)
		}
		if b.Err, err = parseF(f[2]); err != nil {
			return nil, err
		}
		if b.SS, err = parseF(f[3]); err != nil {
			return nil, err
		}
		if b.C, err = readDense(sc, s.Dims, s.D); err != nil {
			return nil, err
		}
		s.Best = b
	default:
		return nil, fmt.Errorf("%w: bad best line %q", ErrBadSnapshot, bestLine)
	}

	// Optional singular-value section (sketch-engine snapshots only; EM
	// snapshots omit it, so the reader accepts both layouts).
	marker, err := line("components")
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(marker, "singular ") {
		f := strings.Fields(marker)
		s.Singular = make([]float64, len(f)-1)
		for i, field := range f[1:] {
			if s.Singular[i], err = parseF(field); err != nil {
				return nil, err
			}
		}
		if marker, err = line("components"); err != nil {
			return nil, err
		}
	}
	if marker != "components" {
		return nil, fmt.Errorf("%w: expected components marker, got %q", ErrBadSnapshot, marker)
	}
	if s.C, err = readDense(sc, s.Dims, s.D); err != nil {
		return nil, err
	}
	return s, nil
}

func parseF(field string) (float64, error) {
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad float %q", ErrBadSnapshot, field)
	}
	return v, nil
}

// readDense parses an embedded dmx block (the internal/matrix/io dense
// container) from the snapshot's scanner, enforcing the expected shape. It
// rejects non-finite values: driver state is checked finite before every
// snapshot write, so a non-finite entry here means corruption.
func readDense(sc *bufio.Scanner, wantR, wantC int) (*matrix.Dense, error) {
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: truncated before dmx header", ErrBadSnapshot)
	}
	var r, c int
	if _, err := fmt.Sscanf(sc.Text(), "dmx %d %d", &r, &c); err != nil {
		return nil, fmt.Errorf("%w: bad dmx header %q", ErrBadSnapshot, sc.Text())
	}
	if r != wantR || c != wantC {
		return nil, fmt.Errorf("%w: dmx block is %dx%d, want %dx%d", ErrBadSnapshot, r, c, wantR, wantC)
	}
	m := matrix.NewDense(r, c)
	for i := 0; i < r; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: dmx truncated at row %d", ErrBadSnapshot, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != c {
			return nil, fmt.Errorf("%w: dmx row %d has %d values, want %d", ErrBadSnapshot, i, len(fields), c)
		}
		row := m.Row(i)
		for j, field := range fields {
			v, err := parseF(field)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: non-finite value at dmx row %d col %d", ErrBadSnapshot, i, j)
			}
			row[j] = v
		}
	}
	return m, nil
}

// FileName returns the snapshot file name for an iteration. Zero-padding
// keeps lexicographic order equal to iteration order.
func FileName(iter int) string { return fmt.Sprintf("ckpt-%06d.spck", iter) }

// Save atomically writes s into dir as FileName(s.Iter), creating dir if
// needed, and returns the serialized size in bytes (also stored in s.Bytes).
func Save(dir string, s *Snapshot) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, FileName(s.Iter))); err != nil {
		return 0, err
	}
	return s.Bytes, nil
}

// Corrupt damages the snapshot file at path in place, simulating the two
// storage failure modes the scan path must survive: a torn write (the file
// truncated at offset, as if the machine died mid-flush of a non-atomic
// writer) or a flipped bit (the low bit of the byte at offset XOR-ed, as
// silent media corruption). offset is clamped into the file. It exists for
// fault injection (FaultPlan.SnapshotCorrupt) and tests; production code
// never calls it.
func Corrupt(path string, torn bool, offset int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size()
	if size == 0 {
		return nil
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= size {
		offset = size - 1
	}
	if torn {
		return os.Truncate(path, offset)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offset); err != nil {
		return err
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b, offset)
	return err
}

// QuarantinedSnapshot records one snapshot file that failed verification
// during a Latest/LatestReport scan and was renamed aside.
type QuarantinedSnapshot struct {
	Name  string // original file name (ckpt-NNNNNN.spck)
	Path  string // current path after the quarantine rename
	Err   error  // why it was rejected (wraps ErrBadSnapshot)
	Bytes int64  // on-disk size of the bad file
}

// ScanReport describes what a LatestReport scan found: which snapshot files
// (newest first) failed verification and were quarantined before a verifiable
// generation was reached.
type ScanReport struct {
	Quarantined []QuarantinedSnapshot
}

// quarantineSuffix is appended to a bad snapshot's file name. The renamed
// file no longer matches the ckpt-*.spck filter, so later scans, Prune, and
// resume never look at it again, but the evidence stays on disk for
// inspection instead of being deleted.
const quarantineSuffix = ".quarantined"

// LatestReport loads the newest *verifiable* snapshot in dir, scanning
// generations newest-to-oldest. A generation that fails to parse (torn write,
// flipped bit, bad version) is renamed aside with a ".quarantined" suffix and
// recorded in the report, and the scan falls back to the next-older
// generation — this is what multi-generation retention (Prune/DefaultKeep)
// buys. It returns ErrNoCheckpoint when the directory is missing, holds no
// snapshot files, or every generation was quarantined (the caller starts from
// scratch); the report is non-nil in every case.
func LatestReport(dir string) (*Snapshot, *ScanReport, error) {
	report := &ScanReport{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, report, ErrNoCheckpoint
		}
		return nil, report, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".spck") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, report, ErrNoCheckpoint
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		s, size, rerr := readFile(path)
		if rerr == nil {
			return s, report, nil
		}
		if !errors.Is(rerr, ErrBadSnapshot) {
			// A real I/O error (permissions, disappearing directory) is not
			// corruption; surface it rather than quarantining sound data.
			return nil, report, rerr
		}
		qpath := path + quarantineSuffix
		if err := os.Rename(path, qpath); err != nil {
			return nil, report, fmt.Errorf("quarantining %s: %v (rejected because: %w)", path, err, rerr)
		}
		report.Quarantined = append(report.Quarantined, QuarantinedSnapshot{
			Name:  names[i],
			Path:  qpath,
			Err:   rerr,
			Bytes: size,
		})
	}
	return nil, report, ErrNoCheckpoint
}

// readFile opens and parses one snapshot file, returning its on-disk size
// even when parsing fails (for quarantine reporting).
func readFile(path string) (*Snapshot, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	s, err := Read(f)
	if err != nil {
		return nil, size, fmt.Errorf("reading %s: %w", path, err)
	}
	s.Bytes = size
	return s, size, nil
}

// Latest loads the newest verifiable snapshot in dir, quarantining any newer
// corrupt generations along the way (see LatestReport, which also returns
// what was quarantined). It returns ErrNoCheckpoint when no generation is
// usable.
func Latest(dir string) (*Snapshot, error) {
	s, _, err := LatestReport(dir)
	return s, err
}

// Prune removes the oldest snapshot generations in dir beyond the newest
// keep, so a long run does not accumulate unbounded checkpoint files while
// still retaining enough history for LatestReport to fall back over corrupt
// generations. keep <= 0 means DefaultKeep. Quarantined files are never
// pruned. Missing directories are fine (nothing to prune).
func Prune(dir string, keep int) error {
	if keep <= 0 {
		keep = DefaultKeep
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".spck") {
			names = append(names, n)
		}
	}
	if len(names) <= keep {
		return nil
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-keep] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	return nil
}
