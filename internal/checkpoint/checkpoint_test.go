package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

func sampleSnapshot(iter int) *Snapshot {
	dims, d := 5, 2
	c := matrix.NewDense(dims, d)
	for i := range c.Data {
		// Awkward floats exercise the exact round-trip property.
		c.Data[i] = math.Sqrt(float64(i+1)) * 1e-3
	}
	best := matrix.NewDense(dims, d)
	for i := range best.Data {
		best.Data[i] = 1 / float64(i+3)
	}
	return &Snapshot{
		Iter: iter, N: 40, Dims: dims, D: d, Seed: 42, FaultEpoch: 17,
		SS: 0.1234567890123456789, SS1: 987.654321,
		RidgeLevel: 1, Rising: 2,
		Mean: []float64{0.1, -0.25, math.Pi, 0, 1e-300},
		C:    c,
		Best: &BestState{Iter: iter - 1, Err: 0.5, SS: 0.2, C: best},
		Metrics: cluster.Metrics{
			ComputeOps: 1234, ShuffleBytes: 99, DiskBytes: 1000, Tasks: 7, Phases: 3,
			SimSeconds: 12.34567890123, DriverPeak: 1 << 20,
			FailedAttempts: 1, RecomputedOps: 11, RecoverySeconds: 0.5,
			CheckpointBytes: 100, CheckpointSeconds: 1e-6, DriverRestarts: 1,
			CorruptPayloads: 3, ReverifySeconds: 0.75,
		},
		History: []HistoryEntry{
			{Iter: 1, Err: 2.5, Accuracy: 0.1, SS: 1.5, SimSeconds: 3.25},
			{Iter: 2, Err: 1.25, Accuracy: 0.2, SS: 0.75, SimSeconds: 6.5, Ridge: 1e-8, RidgeRetries: 2, Rollback: true},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot(7)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if s.Bytes != int64(buf.Len()) {
		t.Fatalf("Bytes = %d, want %d", s.Bytes, buf.Len())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got.Bytes = s.Bytes // Read does not set Bytes
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestRoundTripNoBest(t *testing.T) {
	s := sampleSnapshot(3)
	s.Best = nil
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Best != nil {
		t.Fatalf("Best = %+v, want nil", got.Best)
	}
}

// TestRoundTripSingular covers the sketch-engine snapshot shape: singular
// values ride along with the components, and the section adds exactly its
// own float64s to the cost model.
func TestRoundTripSingular(t *testing.T) {
	s := sampleSnapshot(5)
	plainCost := s.CostBytes()
	s.Singular = []float64{12.5, 3.25, 1e-17}
	if got, want := s.CostBytes(), plainCost+3*8; got != want {
		t.Fatalf("CostBytes with Singular = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got.Bytes = s.Bytes
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}

	// An EM snapshot (no singular values) must serialize to the exact same
	// bytes as before the field existed: the section is omitted when empty.
	s.Singular = nil
	var plain bytes.Buffer
	if err := Write(&plain, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if bytes.Contains(plain.Bytes(), []byte("singular")) {
		t.Fatal("empty Singular must be omitted from the encoding")
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, sampleSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sampleSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same snapshot differ")
	}
}

func TestSaveLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest(empty) = %v, want ErrNoCheckpoint", err)
	}
	for _, iter := range []int{2, 10, 4} {
		if _, err := Save(dir, sampleSnapshot(iter)); err != nil {
			t.Fatalf("Save(%d): %v", iter, err)
		}
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got.Iter != 10 {
		t.Fatalf("Latest picked iter %d, want 10", got.Iter)
	}
	if got.Bytes <= 0 {
		t.Fatalf("Latest did not set Bytes: %d", got.Bytes)
	}
	if _, err := Latest(filepath.Join(dir, "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest(missing dir) = %v, want ErrNoCheckpoint", err)
	}
}

// toV1 rewrites a serialized v2 snapshot into the v1 layout: version-1
// header, no checksum trailer, and the 15-value metrics line (the two
// data-integrity values did not exist yet). Used to exercise back-compat and
// the structural parse errors the v2 checksum would otherwise mask.
func toV1(t testing.TB, text string) string {
	t.Helper()
	if len(text) < trailerLen || !strings.HasPrefix(text[len(text)-trailerLen:], "checksum ") {
		t.Fatal("serialized snapshot has no checksum trailer")
	}
	body := text[:len(text)-trailerLen]
	lines := strings.Split(body, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "metrics ") {
			f := strings.Fields(l)
			lines[i] = strings.Join(f[:len(f)-2], " ")
		}
	}
	return strings.Replace(strings.Join(lines, "\n"), "spcackpt 2", "spcackpt 1", 1)
}

// TestReadV1 locks in back-compat: a version-1 file (no trailer, shorter
// metrics line) still parses, with the new metrics fields zero.
func TestReadV1(t *testing.T) {
	s := sampleSnapshot(7)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(toV1(t, buf.String())))
	if err != nil {
		t.Fatalf("Read(v1): %v", err)
	}
	if got.Metrics.CorruptPayloads != 0 || got.Metrics.ReverifySeconds != 0 {
		t.Fatalf("v1 snapshot has data-integrity metrics: %d / %g", got.Metrics.CorruptPayloads, got.Metrics.ReverifySeconds)
	}
	s.Metrics.CorruptPayloads, s.Metrics.ReverifySeconds = 0, 0
	got.Bytes = s.Bytes
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("v1 round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	v1 := toV1(t, text)
	flipped := []byte(text)
	flipped[len(flipped)/3] ^= 0x01
	cases := map[string]string{
		"empty":           "",
		"bad header":      "nonsense\n",
		"bad version":     strings.Replace(text, "spcackpt 2", "spcackpt 99", 1),
		"truncated":       text[:len(text)/2],
		"flipped bit":     string(flipped),
		"missing trailer": text[:len(text)-trailerLen],
		// Structural damage to a v1 body (no checksum) exercises the parse
		// errors directly rather than the trailer check.
		"v1 truncated": v1[:len(v1)/2],
		"v1 bad float": strings.Replace(v1, "ss ", "ss x", 1),
		// C.Data[0] serializes as "0.001 "; swap it for NaN.
		"v1 nonfinite C": strings.Replace(v1, "0.001 ", "NaN ", 1),
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: error %v does not wrap ErrBadSnapshot", name, err)
		}
	}
}

// TestCorruptAndQuarantine drives the multi-generation degradation path: the
// newest snapshot gets a flipped bit, the next a torn write, and LatestReport
// must fall back to the oldest intact generation while renaming the bad files
// aside (not deleting them) exactly once.
func TestCorruptAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	for _, iter := range []int{1, 2, 3} {
		if _, err := Save(dir, sampleSnapshot(iter)); err != nil {
			t.Fatalf("Save(%d): %v", iter, err)
		}
	}
	if err := Corrupt(filepath.Join(dir, FileName(3)), false, 40); err != nil {
		t.Fatalf("Corrupt(bit flip): %v", err)
	}
	if err := Corrupt(filepath.Join(dir, FileName(2)), true, 30); err != nil {
		t.Fatalf("Corrupt(torn): %v", err)
	}
	s, report, err := LatestReport(dir)
	if err != nil {
		t.Fatalf("LatestReport: %v", err)
	}
	if s.Iter != 1 {
		t.Fatalf("resumed from iter %d, want 1", s.Iter)
	}
	if len(report.Quarantined) != 2 {
		t.Fatalf("quarantined %d files, want 2: %+v", len(report.Quarantined), report.Quarantined)
	}
	if report.Quarantined[0].Name != FileName(3) || report.Quarantined[1].Name != FileName(2) {
		t.Fatalf("quarantine order wrong: %+v", report.Quarantined)
	}
	for _, q := range report.Quarantined {
		if !errors.Is(q.Err, ErrBadSnapshot) {
			t.Errorf("%s: quarantine error %v does not wrap ErrBadSnapshot", q.Name, q.Err)
		}
		if _, err := os.Stat(q.Path); err != nil {
			t.Errorf("quarantined file %s missing: %v", q.Path, err)
		}
		if _, err := os.Stat(filepath.Join(dir, q.Name)); !os.IsNotExist(err) {
			t.Errorf("original %s still present after quarantine", q.Name)
		}
	}
	// A second scan sees only the intact generation and quarantines nothing.
	s2, report2, err := LatestReport(dir)
	if err != nil {
		t.Fatalf("second LatestReport: %v", err)
	}
	if s2.Iter != 1 || len(report2.Quarantined) != 0 {
		t.Fatalf("second scan: iter %d, %d quarantined; want 1, 0", s2.Iter, len(report2.Quarantined))
	}
}

func TestLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	if err := Corrupt(filepath.Join(dir, FileName(1)), true, 0); err != nil {
		t.Fatal(err)
	}
	_, report, err := LatestReport(dir)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LatestReport(all corrupt) = %v, want ErrNoCheckpoint", err)
	}
	if len(report.Quarantined) != 1 {
		t.Fatalf("quarantined %d files, want 1", len(report.Quarantined))
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for iter := 1; iter <= 5; iter++ {
		if _, err := Save(dir, sampleSnapshot(iter)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after Prune(keep=2): %v", names)
	}
	got, err := Latest(dir)
	if err != nil || got.Iter != 5 {
		t.Fatalf("Latest after prune: iter %d, err %v; want 5, nil", got.Iter, err)
	}
	// keep <= 0 means DefaultKeep; with 2 files left it is a no-op.
	if err := Prune(dir, 0); err != nil {
		t.Fatalf("Prune(0): %v", err)
	}
	if got, _ := Latest(dir); got == nil || got.Iter != 5 {
		t.Fatal("Prune(0) removed files it should have kept")
	}
	if err := Prune(filepath.Join(dir, "missing"), 3); err != nil {
		t.Fatalf("Prune(missing dir): %v", err)
	}
}

func TestValidate(t *testing.T) {
	s := sampleSnapshot(7)
	if err := s.Validate(40, 5, 2, 42); err != nil {
		t.Fatalf("Validate(matching) = %v", err)
	}
	var mm *MismatchError
	if err := s.Validate(41, 5, 2, 42); !errors.As(err, &mm) {
		t.Fatalf("Validate(wrong n) = %v, want MismatchError", err)
	}
	if err := s.Validate(40, 5, 2, 43); !errors.As(err, &mm) {
		t.Fatalf("Validate(wrong seed) = %v, want MismatchError", err)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, sampleSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
