package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.NodeMemory = 0 },
		func(c *Config) { c.DriverMemory = 0 },
		func(c *Config) { c.NetworkBps = 0 },
		func(c *Config) { c.DiskBps = -5 },
		func(c *Config) { c.FlopsPerCore = 0 },
		func(c *Config) { c.TaskOverhead = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTotalCores(t *testing.T) {
	c := DefaultConfig()
	if c.TotalCores() != 64 {
		t.Fatalf("total cores = %d", c.TotalCores())
	}
}

func TestRunPhaseCostModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlopsPerCore = 100 // 64 cores -> 6400 ops/sec
	cfg.NetworkBps = 1000
	cfg.DiskBps = 500
	cfg.TaskOverhead = 2
	cl := MustNew(cfg)
	cl.RunPhase(PhaseStats{
		Name:         "test",
		ComputeOps:   6400, // 1 second
		ShuffleBytes: 2000, // 2 seconds
		DiskBytes:    1000, // 2 seconds
		Tasks:        65,   // 2 waves x 2s = 4 seconds
	})
	m := cl.Metrics()
	if m.SimSeconds != 1+2+2+4 {
		t.Fatalf("sim seconds = %v, want 9", m.SimSeconds)
	}
	if m.Phases != 1 || m.Tasks != 65 || m.ShuffleBytes != 2000 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDriverMemoryAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DriverMemory = 1000
	cl := MustNew(cfg)
	if err := cl.AllocDriver(600); err != nil {
		t.Fatal(err)
	}
	if err := cl.AllocDriver(500); !errors.Is(err, ErrDriverOOM) {
		t.Fatalf("expected ErrDriverOOM, got %v", err)
	}
	if err := cl.AllocDriver(400); err != nil {
		t.Fatal(err)
	}
	if cl.DriverUsed() != 1000 {
		t.Fatalf("used = %d", cl.DriverUsed())
	}
	cl.FreeDriver(600)
	if cl.DriverUsed() != 400 {
		t.Fatalf("used after free = %d", cl.DriverUsed())
	}
	if cl.Metrics().DriverPeak != 1000 {
		t.Fatalf("peak = %d", cl.Metrics().DriverPeak)
	}
}

func TestFreeDriverClampsAtZero(t *testing.T) {
	cl := MustNew(DefaultConfig())
	cl.FreeDriver(1 << 40)
	if cl.DriverUsed() != 0 {
		t.Fatal("driver used went negative")
	}
}

func TestAllocDriverNegativePanics(t *testing.T) {
	cl := MustNew(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = cl.AllocDriver(-1)
}

func TestConcurrentPhases(t *testing.T) {
	cl := MustNew(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.RunPhase(PhaseStats{ComputeOps: 10, ShuffleBytes: 5, Tasks: 1})
		}()
	}
	wg.Wait()
	m := cl.Metrics()
	if m.ComputeOps != 500 || m.ShuffleBytes != 250 || m.Phases != 50 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestResetClearsState(t *testing.T) {
	cl := MustNew(DefaultConfig())
	cl.RunPhase(PhaseStats{ComputeOps: 10})
	_ = cl.AllocDriver(100)
	cl.Reset()
	m := cl.Metrics()
	if m.ComputeOps != 0 || m.SimSeconds != 0 || cl.DriverUsed() != 0 {
		t.Fatalf("reset did not clear: %+v", m)
	}
	if len(cl.PhaseLog()) != 0 {
		t.Fatal("phase log not cleared")
	}
}

func TestPhaseLog(t *testing.T) {
	cl := MustNew(DefaultConfig())
	cl.RunPhase(PhaseStats{Name: "a"})
	cl.RunPhase(PhaseStats{Name: "b"})
	log := cl.PhaseLog()
	if len(log) != 2 || log[0].Name != "a" || log[1].Name != "b" {
		t.Fatalf("log = %+v", log)
	}
}

func TestAddDriverCompute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlopsPerCore = 10
	cl := MustNew(cfg)
	cl.AddDriverCompute(100)
	if got := cl.Metrics().SimSeconds; got != 10 {
		t.Fatalf("driver compute time = %v", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		12:      "12 B",
		2048:    "2.0 KiB",
		5 << 20: "5.0 MiB",
		3 << 30: "3.0 GiB",
		7 << 40: "7.0 TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q want %q", in, got, want)
		}
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{SimSeconds: 1.5, ShuffleBytes: 2048}
	s := m.String()
	if !strings.Contains(s, "sim=1.5s") || !strings.Contains(s, "2.0 KiB") {
		t.Fatalf("String() = %q", s)
	}
}

func TestWithTaskOverhead(t *testing.T) {
	c := DefaultConfig().WithTaskOverhead(0.05)
	if c.TaskOverhead != 0.05 {
		t.Fatal("WithTaskOverhead did not apply")
	}
}

func TestRecordCostCharged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordCost = 0.64 // 64 cores -> 0.01 s/record
	cl := MustNew(cfg)
	cl.RunPhase(PhaseStats{Records: 100})
	if got := cl.Metrics().SimSeconds; got != 1.0 {
		t.Fatalf("record time = %v, want 1.0", got)
	}
}

func TestNegativeRecordCostRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordCost = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}
