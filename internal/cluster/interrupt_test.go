package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestInterruptPollZeroAlloc is the tentpole's allocation gate: polling a
// live (non-expired) interrupt — cancelable context, pending deadline, armed
// stall watchdog, and the cluster-level Interrupted wrapper — must allocate
// nothing, or threading a context through a fit would perturb the 0 allocs/op
// steady-state gates.
func TestInterruptPollZeroAlloc(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dctx, dcancel := context.WithTimeout(context.Background(), time.Hour)
	defer dcancel()
	cl := MustNew(DefaultConfig())

	cases := []struct {
		name string
		in   *Interrupt
	}{
		{"cancelable", NewInterrupt(cctx, 0)},
		{"deadline", NewInterrupt(dctx, 0)},
		{"stall-armed", NewInterrupt(cctx, time.Hour)},
		{"nil-handle", nil},
	}
	for _, c := range cases {
		cl.SetInterrupt(c.in)
		if allocs := testing.AllocsPerRun(100, func() {
			if c.in.Err() != nil {
				t.Fatal("live interrupt reported an error")
			}
			c.in.Progress()
			if cl.Interrupted() != nil {
				t.Fatal("live cluster reported interrupted")
			}
		}); allocs != 0 {
			t.Errorf("%s: interrupt poll allocated %v times, want 0", c.name, allocs)
		}
	}
}

// TestInterruptErrKinds pins the sentinel each interruption kind maps to and
// that Progress feeds the stall watchdog.
func TestInterruptErrKinds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := NewInterrupt(ctx, 0)
	if in.Err() != nil {
		t.Fatal("live context reported an error")
	}
	cancel()
	if err := in.Err(); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel: got %v", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	din := NewInterrupt(dctx, 0)
	if err := din.Err(); !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: got %v", err)
	}

	sin := NewInterrupt(nil, 10*time.Millisecond)
	sin.Progress()
	if sin.Err() != nil {
		t.Fatal("fresh watchdog reported stalled")
	}
	time.Sleep(25 * time.Millisecond)
	if err := sin.Err(); !errors.Is(err, ErrStalled) {
		t.Fatalf("stall: got %v", err)
	}
	sin.Progress() // a progress beacon un-wedges the watchdog
	if sin.Err() != nil {
		t.Fatal("watchdog did not reset on progress")
	}
}

// TestNewInterruptNilWhenUnarmed: no context and no stall budget collapse to
// the nil handle, keeping the default path branch-predictable and free.
func TestNewInterruptNilWhenUnarmed(t *testing.T) {
	if NewInterrupt(nil, 0) != nil {
		t.Fatal("unarmed NewInterrupt must return nil")
	}
	var in *Interrupt
	if in.Err() != nil || in.Stall() != 0 {
		t.Fatal("nil handle must be inert")
	}
	in.Progress() // must not panic
	var cl *Cluster
	if cl.Interrupted() != nil {
		t.Fatal("nil cluster must report uninterrupted")
	}
	if cl.StallDiagnostic() == "" {
		t.Fatal("nil cluster must still render a diagnostic")
	}
}

// TestAbortEventNames pins the trace-event names carrying the abort cause
// (trace attributes are numeric-only, so the cause rides in the name).
func TestAbortEventNames(t *testing.T) {
	if got := AbortEventName(ErrCanceled); got != "abort-canceled" {
		t.Errorf("canceled: %q", got)
	}
	if got := AbortEventName(ErrDeadlineExceeded); got != "abort-deadline" {
		t.Errorf("deadline: %q", got)
	}
	if got := AbortEventName(ErrStalled); got != "abort-stalled" {
		t.Errorf("stalled: %q", got)
	}
}
