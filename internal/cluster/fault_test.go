package cluster

import (
	"math"
	"strings"
	"testing"
)

// TestFaultPlanPureFunctionOfSeed: the same (seed, phase, task, attempt)
// tuple must always yield the same decision — no hidden state, no
// order-dependence.
func TestFaultPlanPureFunctionOfSeed(t *testing.T) {
	p := &FaultPlan{Seed: 42, TaskFailureRate: 0.5, NodeLossRate: 0.5, StragglerRate: 0.5}
	type key struct {
		phase     string
		task, att int
	}
	fails := map[key]bool{}
	for _, phase := range []string{"a#1/map", "a#1/reduce", "b#2/map"} {
		for task := 0; task < 16; task++ {
			for att := 1; att <= 4; att++ {
				fails[key{phase, task, att}] = p.AttemptFails(phase, task, att)
			}
		}
	}
	// Re-query in a different order (reverse) and from a distinct but equal
	// plan value: every answer must match.
	q := &FaultPlan{Seed: 42, TaskFailureRate: 0.5, NodeLossRate: 0.5, StragglerRate: 0.5}
	for k, want := range fails {
		if q.AttemptFails(k.phase, k.task, k.att) != want {
			t.Fatalf("decision for %+v changed across plan values", k)
		}
	}
	// A different seed must flip at least one decision.
	r := &FaultPlan{Seed: 43, TaskFailureRate: 0.5}
	diff := false
	for k, want := range fails {
		if r.AttemptFails(k.phase, k.task, k.att) != want {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical decisions everywhere")
	}
}

// TestFaultPlanRateBounds: rate 0 never fires, rate 1 always fires, and an
// intermediate rate fires roughly that often.
func TestFaultPlanRateBounds(t *testing.T) {
	off := &FaultPlan{Seed: 7}
	if off.Enabled() {
		t.Fatal("zero rates reported enabled")
	}
	var nilPlan *FaultPlan
	if nilPlan.Enabled() || nilPlan.AttemptFails("p", 0, 1) || nilPlan.NodeLost("p", 0) || nilPlan.Straggles("p", 0, 1) {
		t.Fatal("nil plan injected a fault")
	}

	always := &FaultPlan{Seed: 7, TaskFailureRate: 1, NodeLossRate: 1, StragglerRate: 1}
	never := &FaultPlan{Seed: 7}
	mid := &FaultPlan{Seed: 7, TaskFailureRate: 0.2}
	var hits int
	const n = 4000
	for i := 0; i < n; i++ {
		if !always.AttemptFails("p", i, 1) || !always.NodeLost("p", i) || !always.Straggles("p", i, 1) {
			t.Fatal("rate 1 did not fire")
		}
		if never.AttemptFails("p", i, 1) {
			t.Fatal("rate 0 fired")
		}
		if mid.AttemptFails("p", i, 1) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.2) > 0.03 {
		t.Fatalf("empirical rate %.3f, want ~0.2", got)
	}
}

func TestFaultPlanDefaults(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Attempts(0) != 4 {
		t.Fatalf("default attempts = %d, want Hadoop's 4", nilPlan.Attempts(0))
	}
	if nilPlan.Attempts(7) != 7 {
		t.Fatal("engine default not honoured")
	}
	p := &FaultPlan{MaxAttempts: 2}
	if p.Attempts(7) != 2 {
		t.Fatal("plan MaxAttempts not honoured")
	}
	if nilPlan.SlowFactor() != 4 || (&FaultPlan{StragglerFactor: 6}).SlowFactor() != 6 {
		t.Fatal("SlowFactor defaults wrong")
	}
}

// TestRunPhaseRecoveryPricing checks the recovery cost math: recovery time
// is priced with the same rates as useful work and isolated in
// RecoverySeconds, and the aggregate metrics fold recovery into the totals.
func TestRunPhaseRecoveryPricing(t *testing.T) {
	cfg := DefaultConfig()
	cores := float64(cfg.TotalCores())

	clean := MustNew(cfg)
	clean.RunPhase(PhaseStats{Name: "p", ComputeOps: 1 << 20, DiskBytes: 1 << 20, Tasks: 10})
	base := clean.Metrics()
	if base.FailedAttempts != 0 || base.RecomputedOps != 0 || base.SpeculativeTasks != 0 || base.RecoverySeconds != 0 {
		t.Fatalf("fault-free phase charged recovery: %+v", base)
	}

	faulty := MustNew(cfg)
	p := PhaseStats{
		Name: "p", ComputeOps: 1 << 20, DiskBytes: 1 << 20, Tasks: 10,
		FailedAttempts: 3, RecomputedOps: 1 << 21, RecoveryDiskBytes: 1 << 19,
		SpeculativeTasks: 2, StragglerOps: 1 << 10,
	}
	faulty.RunPhase(p)
	m := faulty.Metrics()

	wantRec := float64(p.RecomputedOps)/(cores*cfg.FlopsPerCore) +
		float64(p.RecoveryDiskBytes)/cfg.DiskBps +
		float64(p.StragglerOps)/cfg.FlopsPerCore +
		1*cfg.TaskOverhead // 5 retry/backup attempts fit one wave on 64 cores
	if math.Abs(m.RecoverySeconds-wantRec) > 1e-12 {
		t.Fatalf("RecoverySeconds = %v, want %v", m.RecoverySeconds, wantRec)
	}
	if math.Abs((m.SimSeconds-base.SimSeconds)-wantRec) > 1e-12 {
		t.Fatalf("recovery not added on top of base time: Δ=%v want %v",
			m.SimSeconds-base.SimSeconds, wantRec)
	}
	if m.ComputeOps != p.ComputeOps+p.RecomputedOps {
		t.Fatalf("ComputeOps = %d, want useful+recomputed", m.ComputeOps)
	}
	if m.DiskBytes != p.DiskBytes+p.RecoveryDiskBytes {
		t.Fatalf("DiskBytes = %d, want useful+recovery", m.DiskBytes)
	}
	if m.Tasks != 10 || m.FailedAttempts != 3 || m.SpeculativeTasks != 2 || m.RecomputedOps != p.RecomputedOps {
		t.Fatalf("attempt accounting wrong: %+v", m)
	}
}

// TestMetricsStringReportsRecovery: the satellite requires the recovery
// metrics to be visible in the headline String output.
func TestMetricsStringReportsRecovery(t *testing.T) {
	m := Metrics{FailedAttempts: 5, RecomputedOps: 9, SpeculativeTasks: 2, RecoverySeconds: 1.5}
	s := m.String()
	for _, want := range []string{"failed=5", "recomputed=9", "spec=2", "recovery=1.5s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Metrics.String() = %q missing %q", s, want)
		}
	}
}
