// Payload checksums for the simulated data plane. The engines checksum every
// payload they hand across a simulated machine boundary — map outputs entering
// the shuffle, reduce results, cached RDD partitions, broadcast blocks — and
// re-verify the digest at consume time, so injected corruption (FaultPlan
// CorruptionRate) is detected and converted into a re-execution instead of
// silently poisoning the model.
//
// The digest covers the *accounting* identity of a payload: the modeled wire
// sizes of its entries plus the producing task/attempt coordinates. That is
// the right granularity for the simulation layer (the real float data is
// never corrupted in-process — corruption is charged, like every other fault,
// so models stay bit-identical), and it keeps the steady-state emit/commit
// paths allocation-free.
package cluster

import "errors"

// ErrCorruptPayload is the typed error surfaced when a payload fails
// checksum verification at consume time. The engines convert a bounded
// number of detected corruptions into re-executions of the producing
// attempt; an unrecoverable payload (every re-fetch corrupted, or a real
// in-memory mismatch between producer and consumer digests) unwraps to this
// sentinel so callers can match it with errors.Is.
var ErrCorruptPayload = errors.New("cluster: payload failed checksum verification")

// checksumOffset/checksumPrime are the FNV-64a parameters, shared with
// FaultPlan.draw.
const (
	checksumOffset = 14695981039346656037
	checksumPrime  = 1099511628211
)

// ChecksumEntry hashes one payload entry (its modeled key and value wire
// sizes) into a 64-bit word, finished with a splitmix64-style avalanche so
// near-identical entries land far apart.
func ChecksumEntry(keyBytes, valueBytes int64) uint64 {
	h := uint64(checksumOffset)
	for i := 0; i < 8; i++ {
		h ^= (uint64(keyBytes) >> (8 * i)) & 0xFF
		h *= checksumPrime
	}
	for i := 0; i < 8; i++ {
		h ^= (uint64(valueBytes) >> (8 * i)) & 0xFF
		h *= checksumPrime
	}
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// PayloadDigest accumulates entry hashes into an order-independent payload
// digest. Entries are combined by wrapping addition — not XOR, which would
// let duplicate entries cancel — so the digest is identical no matter what
// order a map-iteration visits the entries in, which is what makes the
// verification deterministic under Go's randomized map order. The zero value
// is ready to use.
type PayloadDigest struct {
	sum uint64
	n   int64
}

// Add folds one entry into the digest.
func (d *PayloadDigest) Add(keyBytes, valueBytes int64) {
	d.sum += ChecksumEntry(keyBytes, valueBytes)
	d.n++
}

// Sum returns the digest over everything added so far, bound to the entry
// count so an empty payload and a dropped payload are distinguishable.
func (d *PayloadDigest) Sum() uint64 {
	h := d.sum
	for i := 0; i < 8; i++ {
		h ^= (uint64(d.n) >> (8 * i)) & 0xFF
		h *= checksumPrime
	}
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// Reset clears the digest for reuse across attempts.
func (d *PayloadDigest) Reset() { d.sum, d.n = 0, 0 }
