// Package cluster provides the deterministic simulated-cluster substrate the
// engines (internal/mapred, internal/rdd) run on. It stands in for the
// paper's 8-node Amazon EC2 cluster: it schedules tasks on simulated cores,
// enforces per-node and driver memory limits, and converts computation and
// data movement into simulated wall-clock seconds via an analytic cost model.
//
// Real computation still happens (the matrix math is executed for real, in
// parallel); the simulation layer is about *accounting*: every byte of
// intermediate data and every arithmetic operation is charged to a metric,
// and the cost model turns those charges into the running-time numbers the
// experiments report. This reproduces the paper's comparisons — which are
// driven by intermediate-data volume and O(·) compute — without the testbed.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"spca/internal/trace"
)

// Config describes a simulated cluster. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Nodes        int   // number of worker nodes
	CoresPerNode int   // cores per node
	NodeMemory   int64 // bytes of memory per worker node
	DriverMemory int64 // bytes of memory for the driver/master process

	// Cost model rates.
	NetworkBps   float64 // aggregate shuffle bandwidth, bytes/second
	DiskBps      float64 // aggregate disk bandwidth, bytes/second
	FlopsPerCore float64 // arithmetic ops/second per core
	TaskOverhead float64 // seconds of fixed overhead per scheduled task
	// RecordCost charges seconds per input record scanned, shared across
	// all cores. It models the per-record engine overhead (deserialization,
	// virtual dispatch) that dominates full-data scans at production scale;
	// the experiments raise it to restore the paper's cost balance on
	// scaled-down datasets (see DESIGN.md). Zero disables it.
	RecordCost float64
}

// DefaultConfig models the paper's testbed: 8 nodes x 8 cores x 32 GB,
// a 1 Gb/s interconnect and commodity disks. TaskOverhead defaults to the
// Hadoop-like value; Spark-style engines override it via WithTaskOverhead.
func DefaultConfig() Config {
	return Config{
		Nodes:        8,
		CoresPerNode: 8,
		NodeMemory:   32 << 30,
		DriverMemory: 32 << 30,
		NetworkBps:   125e6, // 1 Gb/s
		DiskBps:      200e6,
		FlopsPerCore: 1e9,
		TaskOverhead: 1.0, // Hadoop JVM-per-task launch cost
	}
}

// WithTaskOverhead returns a copy of c with the per-task overhead replaced.
func (c Config) WithTaskOverhead(sec float64) Config {
	c.TaskOverhead = sec
	return c
}

// TotalCores returns Nodes * CoresPerNode.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return errors.New("cluster: Nodes must be positive")
	case c.CoresPerNode <= 0:
		return errors.New("cluster: CoresPerNode must be positive")
	case c.NodeMemory <= 0 || c.DriverMemory <= 0:
		return errors.New("cluster: memory sizes must be positive")
	case c.NetworkBps <= 0 || c.DiskBps <= 0 || c.FlopsPerCore <= 0:
		return errors.New("cluster: cost-model rates must be positive")
	case c.TaskOverhead < 0:
		return errors.New("cluster: TaskOverhead must be non-negative")
	case c.RecordCost < 0:
		return errors.New("cluster: RecordCost must be non-negative")
	}
	return nil
}

// ErrDriverOOM is returned when a driver-side allocation exceeds the
// configured driver memory — the failure mode of MLlib-PCA on wide matrices.
var ErrDriverOOM = errors.New("cluster: driver out of memory")

// ErrWorkerOOM is returned when per-node working memory is exhausted.
var ErrWorkerOOM = errors.New("cluster: worker out of memory")

// PhaseStats is the accounting record for one synchronous phase of a
// distributed computation (e.g. the map stage of a job, or a Spark action).
// Phases run one after another; within a phase, compute parallelizes over
// all cores while shuffle and disk traffic share the cluster bisection.
type PhaseStats struct {
	Name         string
	ComputeOps   int64 // total arithmetic ops across all tasks
	ShuffleBytes int64 // bytes exchanged between nodes
	DiskBytes    int64 // bytes written to / read from distributed storage
	Tasks        int64 // number of scheduled tasks
	Records      int64 // input records scanned (engine per-record overhead)
	// MaterializedBytes is the subset of DiskBytes that is inter-job
	// intermediate data written out for a later phase to consume — the
	// quantity the paper reports as "intermediate data" (e.g. Mahout-PCA's
	// 961 GB materialized Q matrix vs sPCA's 131 MB of job outputs).
	MaterializedBytes int64

	// Fault-recovery charges. ComputeOps/DiskBytes/Tasks above count only
	// useful (first-success) work; the fields below count work the cluster
	// spent recovering from injected faults, and RunPhase prices them
	// separately so Metrics.RecoverySeconds isolates the cost of failure.
	FailedAttempts    int64 // task attempts that failed or were lost with a node
	RecomputedOps     int64 // arithmetic re-executed for retries, node loss, lineage recovery, speculation
	RecoveryDiskBytes int64 // bytes re-read/re-written purely to recover lost state
	SpeculativeTasks  int64 // backup copies launched against stragglers
	StragglerOps      int64 // extra serial op-time of unmitigated stragglers (one slow core)

	// Data-integrity charges. CorruptPayloads counts payloads whose checksum
	// failed verification at consume time; ReverifyBytes counts the bytes
	// re-transferred to replace them (priced at network rate on top of the
	// producing attempt's re-execution, which lands in RecomputedOps).
	CorruptPayloads int64
	ReverifyBytes   int64
}

// Metrics aggregates the charges of a full algorithm run. ComputeOps and
// DiskBytes are totals (useful work plus recovery re-execution); Tasks counts
// useful tasks only, with failed and speculative attempts reported separately
// so total scheduled attempts = Tasks + FailedAttempts + SpeculativeTasks.
type Metrics struct {
	ComputeOps        int64
	ShuffleBytes      int64
	DiskBytes         int64
	MaterializedBytes int64 // inter-job intermediate data (paper's metric)
	Tasks             int64
	Phases            int64
	SimSeconds        float64 // simulated wall-clock per the cost model
	DriverPeak        int64   // peak driver memory observed

	// Fault-recovery accounting. All four stay exactly zero in a fault-free
	// run — the chaos suite asserts this, guarding the cost model of the
	// paper's tables against drift.
	FailedAttempts   int64   // failed/lost task attempts across all phases
	RecomputedOps    int64   // ops re-executed for retries and lineage recovery
	SpeculativeTasks int64   // backup copies launched against stragglers
	RecoverySeconds  float64 // simulated time attributable to fault recovery

	// Data-integrity accounting. CorruptPayloads counts payloads (shuffle
	// outputs, cached partitions, broadcast blocks, checkpoint generations)
	// that failed checksum verification; ReverifySeconds is the simulated
	// time spent re-transferring and re-verifying them. Both stay exactly
	// zero in a corruption-free run — the chaos suite asserts this.
	CorruptPayloads int64
	ReverifySeconds float64

	// Driver-durability accounting. CheckpointBytes/CheckpointSeconds charge
	// the periodic EM driver snapshots written to durable storage (zero when
	// checkpointing is disabled); DriverRestarts counts crash/resume cycles.
	// Checkpoint writes advance SimSeconds (both the uninterrupted and the
	// resumed run pay them identically), while the cost of a restore lands
	// only in RecoverySeconds: the resumed run's clock is rewound to the
	// snapshot's clock so its iteration trajectory stays bit-identical to an
	// uninterrupted run, and the restore overhead is reported out-of-band.
	CheckpointBytes   int64   // bytes of driver snapshots written
	CheckpointSeconds float64 // simulated time spent writing snapshots
	DriverRestarts    int64   // driver crash/resume cycles
}

// String renders the headline numbers, including the recovery metrics (all
// zero unless a FaultPlan injected failures) and, when checkpointing was
// armed, the driver-durability charges.
func (m Metrics) String() string {
	s := fmt.Sprintf("sim=%.1fs shuffle=%s disk=%s intermediate=%s ops=%d tasks=%d driverPeak=%s failed=%d recomputed=%d spec=%d recovery=%.1fs",
		m.SimSeconds, FormatBytes(m.ShuffleBytes), FormatBytes(m.DiskBytes),
		FormatBytes(m.MaterializedBytes), m.ComputeOps, m.Tasks, FormatBytes(m.DriverPeak),
		m.FailedAttempts, m.RecomputedOps, m.SpeculativeTasks, m.RecoverySeconds)
	if m.CorruptPayloads > 0 {
		s += fmt.Sprintf(" corrupt=%d reverify=%.1fs", m.CorruptPayloads, m.ReverifySeconds)
	}
	if m.CheckpointBytes > 0 || m.DriverRestarts > 0 {
		s += fmt.Sprintf(" ckpt=%s ckptTime=%.1fs restarts=%d",
			FormatBytes(m.CheckpointBytes), m.CheckpointSeconds, m.DriverRestarts)
	}
	return s
}

// Cluster is a live simulated cluster instance. It is safe for concurrent
// use by the worker goroutines of the engines.
type Cluster struct {
	cfg Config

	// tracer, when non-nil, receives a leaf span for every charge (RunPhase,
	// driver compute, checkpoint) stamped with the simulated clock. It is set
	// once by the driver before any work runs and never mutated concurrently;
	// spans are emitted outside c.mu so the tracer may read the clock back.
	tracer *trace.Tracer

	// intr, when non-nil, is the cooperative-interruption handle the engines
	// poll via Interrupted. Same discipline as tracer: set once by the driver
	// before any work runs, then read without synchronization.
	intr *Interrupt

	mu         sync.Mutex
	metrics    Metrics
	phaseLog   []PhaseStats
	driverUsed int64
}

// New returns a cluster with the given configuration.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetTracer attaches a tracer to the cluster and points its simulated clock
// at this cluster's SimSeconds. Must be called from the driver before any
// phases run. A nil tracer disables tracing (the default).
func (c *Cluster) SetTracer(t *trace.Tracer) {
	c.tracer = t
	if t != nil {
		t.SetClock(func() float64 { return c.Metrics().SimSeconds })
	}
}

// Tracer returns the attached tracer, or nil. Engines use it to open
// job/action spans around their phase charges.
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// TotalCores returns the number of simulated cores.
func (c *Cluster) TotalCores() int { return c.cfg.TotalCores() }

// RunPhase charges one synchronous phase to the metrics and advances the
// simulated clock. The phase wall time is
//
//	compute/(cores·flops) + shuffle/net + disk/disk + ceil(tasks/cores)·overhead
//
// reflecting that compute parallelizes over cores while intermediate data
// serializes on the interconnect — the effect at the heart of the paper.
// Recovery charges (re-executed ops, re-read bytes, retry/speculation waves,
// straggler tail latency) are priced on top with the same rates and recorded
// in Metrics.RecoverySeconds, so the cost of failure is isolated from the
// cost of useful work.
func (c *Cluster) RunPhase(p PhaseStats) {
	t, rec := c.cfg.PhaseCost(p)
	t += rec
	// The reverify component of rec, recomputed with the identical float
	// expression PhaseCost uses so the split is bit-exact.
	rev := float64(p.ReverifyBytes) / c.cfg.NetworkBps

	c.mu.Lock()
	start := c.metrics.SimSeconds
	c.metrics.ComputeOps += p.ComputeOps + p.RecomputedOps
	c.metrics.ShuffleBytes += p.ShuffleBytes
	c.metrics.DiskBytes += p.DiskBytes + p.RecoveryDiskBytes
	c.metrics.MaterializedBytes += p.MaterializedBytes
	c.metrics.Tasks += p.Tasks
	c.metrics.FailedAttempts += p.FailedAttempts
	c.metrics.RecomputedOps += p.RecomputedOps
	c.metrics.SpeculativeTasks += p.SpeculativeTasks
	c.metrics.RecoverySeconds += rec
	c.metrics.CorruptPayloads += p.CorruptPayloads
	c.metrics.ReverifySeconds += rev
	c.metrics.Phases++
	c.metrics.SimSeconds += t
	end := c.metrics.SimSeconds
	c.phaseLog = append(c.phaseLog, p)
	c.mu.Unlock()

	// Every charged phase is progress as far as the stall watchdog is
	// concerned: a run that keeps completing phases is slow, not stalled.
	c.intr.Progress()

	if tr := c.tracer; tr != nil {
		// The span's "seconds" attribute carries the exact charge added to
		// SimSeconds (end-start would lose low bits to float subtraction), so
		// summing the leaf spans of a trace reproduces Metrics bit-for-bit.
		attrs := []trace.Attr{
			trace.F("seconds", t),
			trace.I("compute_ops", p.ComputeOps),
			trace.I("shuffle_bytes", p.ShuffleBytes),
			trace.I("disk_bytes", p.DiskBytes),
			trace.I("materialized_bytes", p.MaterializedBytes),
			trace.I("tasks", p.Tasks),
			trace.I("records", p.Records),
		}
		faulted := p.FailedAttempts != 0 || p.RecomputedOps != 0 ||
			p.RecoveryDiskBytes != 0 || p.SpeculativeTasks != 0 || p.StragglerOps != 0 ||
			p.CorruptPayloads != 0 || p.ReverifyBytes != 0
		if faulted || rec != 0 {
			attrs = append(attrs,
				trace.F("recovery_seconds", rec),
				trace.I("failed_attempts", p.FailedAttempts),
				trace.I("recomputed_ops", p.RecomputedOps),
				trace.I("recovery_disk_bytes", p.RecoveryDiskBytes),
				trace.I("speculative_tasks", p.SpeculativeTasks),
				trace.I("straggler_ops", p.StragglerOps),
			)
		}
		if p.CorruptPayloads != 0 || p.ReverifyBytes != 0 {
			attrs = append(attrs,
				trace.I("corrupt_payloads", p.CorruptPayloads),
				trace.I("reverify_bytes", p.ReverifyBytes),
				trace.F("reverify_seconds", rev),
			)
		}
		id := tr.Emit(p.Name, trace.KindPhase, start, end, attrs...)
		if faulted {
			tr.EventAt("recovery", end, id,
				trace.I("failed_attempts", p.FailedAttempts),
				trace.I("speculative_tasks", p.SpeculativeTasks),
				trace.F("recovery_seconds", rec))
		}
		if p.CorruptPayloads != 0 {
			tr.EventAt("corruption-detected", end, id,
				trace.I("corrupt_payloads", p.CorruptPayloads),
				trace.I("reverify_bytes", p.ReverifyBytes))
		}
	}
}

// PhaseCost prices one phase under the cost model, returning the useful-work
// seconds and the fault-recovery seconds separately (RunPhase charges their
// sum to the clock and the recovery part to Metrics.RecoverySeconds).
func (c Config) PhaseCost(p PhaseStats) (useful, recovery float64) {
	cores := float64(c.TotalCores())
	t := float64(p.ComputeOps) / (cores * c.FlopsPerCore)
	t += float64(p.ShuffleBytes) / c.NetworkBps
	t += float64(p.DiskBytes) / c.DiskBps
	t += float64(p.Records) * c.RecordCost / cores
	if p.Tasks > 0 {
		waves := (p.Tasks + int64(cores) - 1) / int64(cores)
		t += float64(waves) * c.TaskOverhead
	}

	// Recovery time: re-executed work parallelizes over cores, re-read state
	// shares the disks, retry/backup attempts cost scheduling waves, and an
	// unmitigated straggler's extra time is serial on its one slow core.
	rec := float64(p.RecomputedOps) / (cores * c.FlopsPerCore)
	rec += float64(p.RecoveryDiskBytes) / c.DiskBps
	rec += float64(p.StragglerOps) / c.FlopsPerCore
	// Corrupted payloads are re-transferred over the interconnect once their
	// producing attempt has been re-executed (the re-execution itself rides
	// in RecomputedOps), and each one costs a retry scheduling wave below.
	rec += float64(p.ReverifyBytes) / c.NetworkBps
	if n := p.FailedAttempts + p.SpeculativeTasks + p.CorruptPayloads; n > 0 {
		waves := (n + int64(cores) - 1) / int64(cores)
		rec += float64(waves) * c.TaskOverhead
	}
	return t, rec
}

// AddDriverCompute charges sequential driver-side computation (single core).
func (c *Cluster) AddDriverCompute(ops int64) {
	t := float64(ops) / c.cfg.FlopsPerCore
	c.mu.Lock()
	start := c.metrics.SimSeconds
	c.metrics.ComputeOps += ops
	c.metrics.SimSeconds += t
	end := c.metrics.SimSeconds
	c.mu.Unlock()
	if tr := c.tracer; tr != nil {
		tr.Emit("driver-compute", trace.KindDriver, start, end,
			trace.F("seconds", t), trace.I("compute_ops", ops))
	}
}

// ChargeCheckpoint charges writing one driver snapshot of the given size to
// simulated durable storage. The write shares the disk bandwidth and advances
// the simulated clock: checkpointing is a real cost the run pays whether or
// not a crash ever happens, which is exactly the interval-vs-recovery
// trade-off the checkpoint experiment sweeps.
func (c *Cluster) ChargeCheckpoint(bytes int64) {
	if bytes < 0 {
		panic("cluster: negative checkpoint size")
	}
	t := float64(bytes) / c.cfg.DiskBps
	c.mu.Lock()
	start := c.metrics.SimSeconds
	c.metrics.CheckpointBytes += bytes
	c.metrics.CheckpointSeconds += t
	c.metrics.DiskBytes += bytes
	c.metrics.SimSeconds += t
	end := c.metrics.SimSeconds
	c.mu.Unlock()
	if tr := c.tracer; tr != nil {
		tr.Emit("checkpoint", trace.KindDriver, start, end,
			trace.F("seconds", t), trace.I("checkpoint_bytes", bytes), trace.I("disk_bytes", bytes))
	}
}

// ChargeDriverRestore charges one driver crash/resume cycle: reading the
// snapshot back from durable storage plus extraSeconds of setup work the new
// driver incarnation had to redo (e.g. re-loading the input RDD). The cost
// lands in RecoverySeconds and DriverRestarts only — NOT in SimSeconds —
// because RestoreMetrics has just rewound the clock to the snapshot's value
// so that the resumed iteration trajectory stays bit-identical to an
// uninterrupted run; the restore overhead is reported out-of-band.
func (c *Cluster) ChargeDriverRestore(bytes int64, extraSeconds float64) {
	if bytes < 0 || extraSeconds < 0 {
		panic("cluster: negative driver-restore charge")
	}
	rec := float64(bytes)/c.cfg.DiskBps + extraSeconds
	c.mu.Lock()
	c.metrics.DriverRestarts++
	c.metrics.RecoverySeconds += rec
	c.mu.Unlock()
	if tr := c.tracer; tr != nil {
		tr.Event("driver-restore",
			trace.F("recovery_seconds", rec), trace.I("snapshot_bytes", bytes))
	}
}

// RestoreMetrics overwrites the accumulated metrics with a snapshot taken by
// an earlier driver incarnation — the resume path of driver checkpointing.
// Everything charged on this cluster before the call (setup the restarted
// driver redid) is discarded; account it via ChargeDriverRestore instead.
func (c *Cluster) RestoreMetrics(m Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// AllocDriver reserves bytes of driver memory, failing with ErrDriverOOM if
// the driver limit would be exceeded.
func (c *Cluster) AllocDriver(bytes int64) error {
	if bytes < 0 {
		panic("cluster: negative driver allocation")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.driverUsed+bytes > c.cfg.DriverMemory {
		return fmt.Errorf("%w: need %s on top of %s, limit %s", ErrDriverOOM,
			FormatBytes(bytes), FormatBytes(c.driverUsed), FormatBytes(c.cfg.DriverMemory))
	}
	c.driverUsed += bytes
	if c.driverUsed > c.metrics.DriverPeak {
		c.metrics.DriverPeak = c.driverUsed
	}
	return nil
}

// FreeDriver releases bytes of driver memory.
func (c *Cluster) FreeDriver(bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.driverUsed -= bytes
	if c.driverUsed < 0 {
		c.driverUsed = 0
	}
}

// DriverUsed returns the current driver memory in use.
func (c *Cluster) DriverUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.driverUsed
}

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// PhaseLog returns a copy of the per-phase accounting records.
func (c *Cluster) PhaseLog() []PhaseStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PhaseStats, len(c.phaseLog))
	copy(out, c.phaseLog)
	return out
}

// Reset clears metrics and driver memory (configuration is kept).
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = Metrics{}
	c.phaseLog = nil
	c.driverUsed = 0
}

// FormatBytes renders a byte count in human units.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
