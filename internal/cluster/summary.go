package cluster

// PhaseSummary is the per-phase-name aggregate of a run's phase log: how many
// times the phase ran and what it cost under the cluster's cost model. It is
// the typed breakdown Result.Summary() exposes on the facade.
type PhaseSummary struct {
	Name            string
	Count           int64
	Seconds         float64 // total clock seconds charged (recovery included)
	RecoverySeconds float64 // the fault-recovery portion of Seconds
	ComputeOps      int64
	ShuffleBytes    int64
	DiskBytes       int64
	Tasks           int64
	Records         int64
	FailedAttempts  int64
}

// Summarize aggregates a phase log per phase name, in first-seen order,
// pricing each entry with cfg's cost model (the same arithmetic RunPhase
// charged, so the summed seconds reproduce the clock's phase contributions
// exactly). Note the log covers one cluster incarnation: after a driver
// crash/resume, phases charged before the crash live in the previous
// incarnation's log.
func Summarize(log []PhaseStats, cfg Config) []PhaseSummary {
	var order []string
	byName := map[string]*PhaseSummary{}
	for _, p := range log {
		s := byName[p.Name]
		if s == nil {
			s = &PhaseSummary{Name: p.Name}
			byName[p.Name] = s
			order = append(order, p.Name)
		}
		t, rec := cfg.PhaseCost(p)
		t += rec // same arithmetic as RunPhase, so the bits match its charge
		s.Count++
		s.Seconds += t
		s.RecoverySeconds += rec
		s.ComputeOps += p.ComputeOps + p.RecomputedOps
		s.ShuffleBytes += p.ShuffleBytes
		s.DiskBytes += p.DiskBytes + p.RecoveryDiskBytes
		s.Tasks += p.Tasks
		s.Records += p.Records
		s.FailedAttempts += p.FailedAttempts
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}
