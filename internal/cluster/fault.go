// Fault injection for the simulated cluster. A FaultPlan makes chaos
// deterministic: every failure decision — does attempt a of task t in phase p
// fail? is node n lost during phase p? does this attempt straggle? — is a
// pure function of (Seed, phase, task, attempt), derived by hashing, never by
// consuming a shared RNG stream. Two runs with the same plan therefore fail
// the exact same attempt set regardless of goroutine scheduling, which is
// what lets the chaos suite assert that fitted models are bit-identical with
// and without injected faults.
package cluster

// FaultPlan describes deterministic fault injection for the engines built on
// the simulated cluster (internal/mapred, internal/rdd). The zero value (and
// a nil plan) injects nothing; all methods are nil-receiver safe.
type FaultPlan struct {
	// Seed drives every decision. Same seed, same faults — always.
	Seed uint64

	// TaskFailureRate is the per-attempt probability that a task attempt
	// fails after doing its work (the work is charged as RecomputedOps; the
	// output is discarded and the task retries).
	TaskFailureRate float64

	// NodeLossRate is the per-(phase, node) probability that a worker node
	// dies during the phase, taking with it state that only lived on that
	// node: completed map outputs (Hadoop re-runs those map tasks) and
	// cached RDD partitions (Spark recomputes them from lineage).
	NodeLossRate float64

	// StragglerRate is the per-task probability that the committing attempt
	// runs StragglerFactor times slower than normal. Without speculative
	// execution the straggler's extra serial time delays the phase; with it,
	// a backup copy is launched and the phase only pays the duplicated work.
	StragglerRate float64

	// StragglerFactor is the straggler slowdown multiple (default 4).
	StragglerFactor float64

	// SpeculativeExecution launches backup copies of stragglers, Hadoop
	// speculative-execution style: the duplicate's work is charged as
	// RecomputedOps and counted in SpeculativeTasks, but the straggler's
	// tail latency is avoided.
	SpeculativeExecution bool

	// MaxAttempts bounds retries per task where the engine enforces a bound
	// (the MapReduce engine; Spark-style lineage recovery retries until it
	// succeeds). Zero defers to the engine's own default.
	MaxAttempts int
}

// Enabled reports whether the plan can inject any fault at all.
func (f *FaultPlan) Enabled() bool {
	return f != nil && (f.TaskFailureRate > 0 || f.NodeLossRate > 0 || f.StragglerRate > 0)
}

// AttemptFails decides whether attempt att (1-based) of task in phase fails.
func (f *FaultPlan) AttemptFails(phase string, task, att int) bool {
	if f == nil || f.TaskFailureRate <= 0 {
		return false
	}
	return f.draw('F', phase, task, att) < f.TaskFailureRate
}

// NodeLost decides whether node dies during phase.
func (f *FaultPlan) NodeLost(phase string, node int) bool {
	if f == nil || f.NodeLossRate <= 0 {
		return false
	}
	return f.draw('N', phase, node, 0) < f.NodeLossRate
}

// Straggles decides whether attempt att of task in phase is a straggler.
func (f *FaultPlan) Straggles(phase string, task, att int) bool {
	if f == nil || f.StragglerRate <= 0 {
		return false
	}
	return f.draw('S', phase, task, att) < f.StragglerRate
}

// SlowFactor returns the straggler slowdown multiple (>= 1).
func (f *FaultPlan) SlowFactor() float64 {
	if f == nil || f.StragglerFactor <= 1 {
		return 4
	}
	return f.StragglerFactor
}

// Attempts returns the retry bound: the plan's MaxAttempts if set, otherwise
// engineDefault if positive, otherwise 4 (Hadoop's mapred.map.max.attempts).
func (f *FaultPlan) Attempts(engineDefault int) int {
	if f != nil && f.MaxAttempts > 0 {
		return f.MaxAttempts
	}
	if engineDefault > 0 {
		return engineDefault
	}
	return 4
}

// draw maps (seed, kind, phase, a, b) to a uniform value in [0, 1) via an
// FNV-1a accumulation finished with a splitmix64-style mix. It is the single
// source of randomness for fault decisions, so decisions are independent of
// evaluation order and of each other (distinct kind bytes keep the failure,
// node-loss and straggler streams decorrelated).
func (f *FaultPlan) draw(kind byte, phase string, a, b int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	mix(f.Seed)
	h ^= uint64(kind)
	h *= prime64
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= prime64
	}
	mix(uint64(a))
	mix(uint64(b))
	// splitmix64 finalizer for avalanche.
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
