// Fault injection for the simulated cluster. A FaultPlan makes chaos
// deterministic: every failure decision — does attempt a of task t in phase p
// fail? is node n lost during phase p? does this attempt straggle? — is a
// pure function of (Seed, phase, task, attempt), derived by hashing, never by
// consuming a shared RNG stream. Two runs with the same plan therefore fail
// the exact same attempt set regardless of goroutine scheduling, which is
// what lets the chaos suite assert that fitted models are bit-identical with
// and without injected faults.
package cluster

import (
	"errors"
	"fmt"
)

// FaultPlan describes deterministic fault injection for the engines built on
// the simulated cluster (internal/mapred, internal/rdd). The zero value (and
// a nil plan) injects nothing; all methods are nil-receiver safe.
type FaultPlan struct {
	// Seed drives every decision. Same seed, same faults — always.
	Seed uint64

	// TaskFailureRate is the per-attempt probability that a task attempt
	// fails after doing its work (the work is charged as RecomputedOps; the
	// output is discarded and the task retries).
	TaskFailureRate float64

	// NodeLossRate is the per-(phase, node) probability that a worker node
	// dies during the phase, taking with it state that only lived on that
	// node: completed map outputs (Hadoop re-runs those map tasks) and
	// cached RDD partitions (Spark recomputes them from lineage).
	NodeLossRate float64

	// StragglerRate is the per-task probability that the committing attempt
	// runs StragglerFactor times slower than normal. Without speculative
	// execution the straggler's extra serial time delays the phase; with it,
	// a backup copy is launched and the phase only pays the duplicated work.
	StragglerRate float64

	// StragglerFactor is the straggler slowdown multiple (default 4).
	StragglerFactor float64

	// SpeculativeExecution launches backup copies of stragglers, Hadoop
	// speculative-execution style: the duplicate's work is charged as
	// RecomputedOps and counted in SpeculativeTasks, but the straggler's
	// tail latency is avoided.
	SpeculativeExecution bool

	// MaxAttempts bounds retries per task where the engine enforces a bound
	// (the MapReduce engine; Spark-style lineage recovery retries until it
	// succeeds). Zero defers to the engine's own default.
	MaxAttempts int

	// CorruptionRate is the per-(phase, task, attempt) probability that a
	// committed payload — a map task's shuffle output, a reduce task's
	// result, a cached RDD partition, or a broadcast block — is silently
	// corrupted in flight (bit flip or truncation). The engines detect the
	// corruption via FNV-64 payload checksums at consume time and convert it
	// into a re-execution of the producing attempt, so fitted models stay
	// bit-identical with corruption on or off; the detection and re-execution
	// cost is charged to CorruptPayloads/ReverifySeconds.
	CorruptionRate float64

	// CheckpointCorruptionRate is the per-generation probability that a
	// driver snapshot file is corrupted after it reaches durable storage
	// (a flipped bit, or a torn partial write — SnapshotTorn decides which).
	// The resume path detects it via the snapshot checksum trailer,
	// quarantines the bad generation, and falls back to the previous one.
	// Like DriverCrashIters this is driver-level injection and deliberately
	// excluded from Enabled().
	CheckpointCorruptionRate float64

	// DriverCrashIters schedules driver crashes: the i-th driver incarnation
	// (0-based) crashes at the end of EM iteration DriverCrashIters[i], after
	// any checkpoint due at that iteration has been written. Incarnation
	// indexing means a resumed driver consults the next entry rather than
	// re-crashing forever at the same iteration; a run with checkpointing
	// disabled surfaces the crash as a terminal *DriverCrashError. Unlike the
	// rate-driven task faults, the schedule is explicit — crash placement
	// relative to the checkpoint interval is exactly the variable the
	// checkpoint experiment sweeps.
	DriverCrashIters []int
}

// Enabled reports whether the plan can inject any task-level fault at all.
// Driver crashes are deliberately excluded: they are handled by the EM driver
// itself, not by the task schedulers that consult Enabled.
func (f *FaultPlan) Enabled() bool {
	return f != nil && (f.TaskFailureRate > 0 || f.NodeLossRate > 0 || f.StragglerRate > 0 ||
		f.CorruptionRate > 0)
}

// DriverCrashAt reports whether the given driver incarnation (0-based) is
// scheduled to crash at the end of EM iteration iter (1-based).
func (f *FaultPlan) DriverCrashAt(iter, incarnation int) bool {
	if f == nil || incarnation < 0 || incarnation >= len(f.DriverCrashIters) {
		return false
	}
	return f.DriverCrashIters[incarnation] == iter
}

// AttemptFails decides whether attempt att (1-based) of task in phase fails.
func (f *FaultPlan) AttemptFails(phase string, task, att int) bool {
	if f == nil || f.TaskFailureRate <= 0 {
		return false
	}
	return f.draw('F', phase, task, att) < f.TaskFailureRate
}

// NodeLost decides whether node dies during phase.
func (f *FaultPlan) NodeLost(phase string, node int) bool {
	if f == nil || f.NodeLossRate <= 0 {
		return false
	}
	return f.draw('N', phase, node, 0) < f.NodeLossRate
}

// Straggles decides whether attempt att of task in phase is a straggler.
func (f *FaultPlan) Straggles(phase string, task, att int) bool {
	if f == nil || f.StragglerRate <= 0 {
		return false
	}
	return f.draw('S', phase, task, att) < f.StragglerRate
}

// PayloadCorrupt decides whether the payload committed by attempt att
// (1-based) of task in phase is corrupted before its consumer reads it. The
// 'C' kind byte keeps the corruption stream decorrelated from the
// failure/node-loss/straggler streams, so arming corruption does not perturb
// any existing fault decision.
func (f *FaultPlan) PayloadCorrupt(phase string, task, att int) bool {
	if f == nil || f.CorruptionRate <= 0 {
		return false
	}
	return f.draw('C', phase, task, att) < f.CorruptionRate
}

// SnapshotCorrupt decides whether the checkpoint generation written at EM
// iteration iter is corrupted on durable storage.
func (f *FaultPlan) SnapshotCorrupt(iter int) bool {
	if f == nil || f.CheckpointCorruptionRate <= 0 {
		return false
	}
	return f.draw('K', "ckpt", iter, 0) < f.CheckpointCorruptionRate
}

// SnapshotTorn decides, for a generation SnapshotCorrupt selected, whether
// the corruption is a torn partial write (file truncated mid-stream) rather
// than a flipped bit. Both are detected identically by the checksum trailer;
// the torn case additionally exercises the truncation paths of the reader.
func (f *FaultPlan) SnapshotTorn(iter int) bool {
	if f == nil {
		return false
	}
	return f.draw('T', "ckpt", iter, 0) < 0.5
}

// CorruptOffset returns a deterministic offset in [0, n) at which to damage a
// payload of n bytes (the flipped bit / truncation point), derived from the
// same seed discipline as every other fault decision.
func (f *FaultPlan) CorruptOffset(phase string, iter int, n int64) int64 {
	if f == nil || n <= 0 {
		return 0
	}
	return int64(f.draw('O', phase, iter, 0) * float64(n))
}

// SlowFactor returns the straggler slowdown multiple (>= 1).
func (f *FaultPlan) SlowFactor() float64 {
	if f == nil || f.StragglerFactor <= 1 {
		return 4
	}
	return f.StragglerFactor
}

// Attempts returns the retry bound: the plan's MaxAttempts if set, otherwise
// engineDefault if positive, otherwise 4 (Hadoop's mapred.map.max.attempts).
func (f *FaultPlan) Attempts(engineDefault int) int {
	if f != nil && f.MaxAttempts > 0 {
		return f.MaxAttempts
	}
	if engineDefault > 0 {
		return engineDefault
	}
	return 4
}

// ErrDriverCrash is the sentinel all driver-crash errors unwrap to; callers
// match it with errors.Is and recover the crash site via errors.As on
// *DriverCrashError.
var ErrDriverCrash = errors.New("cluster: driver crashed")

// DriverCrashError reports an injected driver crash: which incarnation died
// and at the end of which EM iteration. The resume machinery in the facade
// uses it to decide whether a later snapshot exists to restart from.
type DriverCrashError struct {
	Iter        int     // 1-based EM iteration the driver completed before dying
	Incarnation int     // 0-based driver incarnation that crashed
	SimSeconds  float64 // simulated clock at the moment of death
}

func (e *DriverCrashError) Error() string {
	return fmt.Sprintf("cluster: driver incarnation %d crashed after iteration %d", e.Incarnation, e.Iter)
}

func (e *DriverCrashError) Unwrap() error { return ErrDriverCrash }

// draw maps (seed, kind, phase, a, b) to a uniform value in [0, 1) via an
// FNV-1a accumulation finished with a splitmix64-style mix. It is the single
// source of randomness for fault decisions, so decisions are independent of
// evaluation order and of each other (distinct kind bytes keep the failure,
// node-loss and straggler streams decorrelated).
func (f *FaultPlan) draw(kind byte, phase string, a, b int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	mix(f.Seed)
	h ^= uint64(kind)
	h *= prime64
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= prime64
	}
	mix(uint64(a))
	mix(uint64(b))
	// splitmix64 finalizer for avalanche.
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
