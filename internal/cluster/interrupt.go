// Cooperative interruption for the simulated cluster. An Interrupt carries a
// caller-supplied context.Context plus an optional stall watchdog into the
// engines; the engines poll it at phase and iteration boundaries and unwind
// with a typed error when the run should stop. Polling is allocation-free
// (an atomic load on the context plus an atomic clock compare), so a live
// context does not perturb the zero-allocation steady state or the simulated
// cost model: the interrupt layer observes the run but never charges it.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrCanceled is the sentinel for runs stopped by context cancellation
// (explicit cancel, SIGINT/SIGTERM via signal.NotifyContext). It wraps
// context.Canceled, so errors.Is matches both this sentinel and the stdlib's.
var ErrCanceled = fmt.Errorf("cluster: run canceled: %w", context.Canceled)

// ErrDeadlineExceeded is the sentinel for runs stopped by a context deadline.
// It wraps context.DeadlineExceeded, so errors.Is matches both sentinels.
var ErrDeadlineExceeded = fmt.Errorf("cluster: deadline exceeded: %w", context.DeadlineExceeded)

// ErrStalled is the sentinel for runs aborted by the stall watchdog: no
// iteration or phase progress was observed within the configured budget.
var ErrStalled = errors.New("cluster: run stalled: no progress within watchdog budget")

// AbortError reports a cooperative abort of a guarded EM/sketch loop. It
// unwraps to its Cause (ErrCanceled, ErrDeadlineExceeded, or ErrStalled), so
// errors.Is reaches both the cluster sentinels and — for cancel/deadline —
// the stdlib context sentinels they wrap.
type AbortError struct {
	Iter         int     // last completed iteration/round (0 = none finished)
	Cause        error   // typed cause the error unwraps to
	Checkpointed bool    // a resume-usable snapshot is on durable storage (at Iter, or an earlier boundary after a mid-iteration abort)
	SimSeconds   float64 // simulated clock at the abort boundary
	Diagnostic   string  // phase-summary dump (stall-watchdog aborts only)
}

func (e *AbortError) Error() string {
	ck := "no checkpoint"
	if e.Checkpointed {
		ck = "checkpoint written"
	}
	return fmt.Sprintf("cluster: run aborted after iteration %d (%s): %v", e.Iter, ck, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

// IsInterrupt reports whether err (or anything it wraps) is one of the
// cooperative-interruption sentinels — the test the guarded drivers use to
// tell "the engine saw the interrupt mid-phase" apart from real failures.
func IsInterrupt(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrStalled)
}

// AbortEventName names the trace annotation for an abort cause. Trace
// attributes are numeric-only, so the cause rides in the event name.
func AbortEventName(cause error) string {
	switch {
	case errors.Is(cause, ErrDeadlineExceeded):
		return "abort-deadline"
	case errors.Is(cause, ErrStalled):
		return "abort-stalled"
	default:
		return "abort-canceled"
	}
}

// Interrupt is the cooperative-interruption handle threaded from the facade
// down to the engines. All methods are nil-receiver safe: a nil *Interrupt is
// an uninterruptible run, which is the default and costs nothing to poll.
type Interrupt struct {
	ctx   context.Context
	stall time.Duration
	// last holds the real-time nanosecond stamp of the most recent progress
	// beacon. The watchdog runs on real time, never the simulated clock:
	// a stalled run is one whose *process* stopped advancing, regardless of
	// what the cost model would have charged.
	last atomic.Int64
}

// NewInterrupt builds an interrupt handle from a context and a stall budget.
// Returns nil (the uninterruptible handle) when ctx is nil and stall is zero.
// A nil ctx with a positive stall budget arms only the watchdog.
func NewInterrupt(ctx context.Context, stall time.Duration) *Interrupt {
	if ctx == nil && stall <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	in := &Interrupt{ctx: ctx, stall: stall}
	in.last.Store(time.Now().UnixNano())
	return in
}

// Err polls the handle: nil while the run may continue, otherwise the typed
// sentinel naming why it must stop. The poll is allocation-free.
func (in *Interrupt) Err() error {
	if in == nil {
		return nil
	}
	if err := in.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return ErrDeadlineExceeded
		}
		return ErrCanceled
	}
	if in.stall > 0 && time.Now().UnixNano()-in.last.Load() > int64(in.stall) {
		return ErrStalled
	}
	return nil
}

// Progress feeds the stall watchdog. The engines call it from every phase
// charge and iteration boundary; it is an atomic store, nothing more.
func (in *Interrupt) Progress() {
	if in == nil || in.stall <= 0 {
		return
	}
	in.last.Store(time.Now().UnixNano())
}

// Stall returns the watchdog budget (zero = watchdog disabled).
func (in *Interrupt) Stall() time.Duration {
	if in == nil {
		return 0
	}
	return in.stall
}

// SetInterrupt attaches the interrupt handle the engines poll via
// Interrupted. Like SetTracer it must be called from the driver before any
// phases run and is then read without synchronization.
func (c *Cluster) SetInterrupt(in *Interrupt) { c.intr = in }

// Interrupt returns the attached handle, or nil.
func (c *Cluster) Interrupt() *Interrupt { return c.intr }

// Interrupted polls the attached interrupt handle. It returns nil on an
// uninterrupted (or uninterruptible) cluster, otherwise the typed sentinel.
func (c *Cluster) Interrupted() error {
	if c == nil {
		return nil
	}
	return c.intr.Err()
}

// StallDiagnostic renders the phase-summary dump attached to stall-watchdog
// aborts: every phase name the cluster has charged, with counts and costs,
// so the operator can see where the run stopped making progress.
func (c *Cluster) StallDiagnostic() string {
	if c == nil {
		return "no cluster attached (single-machine engine)"
	}
	sums := Summarize(c.PhaseLog(), c.cfg)
	if len(sums) == 0 {
		return "no phases charged yet"
	}
	s := "phase summary at stall:"
	for _, p := range sums {
		s += fmt.Sprintf("\n  %-24s x%-5d %9.2fs ops=%d shuffle=%s tasks=%d",
			p.Name, p.Count, p.Seconds, p.ComputeOps, FormatBytes(p.ShuffleBytes), p.Tasks)
	}
	return s
}
