package experiments

import (
	"errors"
	"fmt"

	"spca"
	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/matrix"
)

// gen builds a dataset for the given family with the profile's seed. The
// text families get a planted topic rank of 4·d: the paper's text matrices
// have spectra far richer than d (71.5K-word vocabularies), so the scaled
// stand-ins must also carry more structure than a single randomized sketch
// (k = d + oversampling) can capture — otherwise Mahout-PCA converges in
// one round, which never happened at paper scale.
func (r Runner) gen(kind dataset.Kind, rows, cols int) *matrix.Sparse {
	spec := dataset.Spec{Kind: kind, Rows: rows, Cols: cols, Seed: r.Profile.Seed}
	if kind == dataset.KindTweets || kind == dataset.KindBioText {
		spec.Rank = 4 * r.Profile.Components
	}
	return dataset.MustGenerate(spec)
}

// clusterConfig is the shared simulated-cluster sizing for all experiments:
// the paper's 8x8 testbed, with driver memory scaled so MLlib-PCA fails past
// Profile.FailD columns, and the cost model recalibrated for the scaled-down
// datasets — data volumes shrank ~10³-10⁵x relative to the paper's inputs,
// so bandwidths are lowered and per-record scan cost raised to keep the
// experiments in the paper's data-dominated regime (see DESIGN.md).
func (r Runner) clusterConfig() spca.ClusterConfig {
	return spca.ClusterConfig{
		DriverMemoryGB: r.Profile.driverMemGB(),
		NetworkMBps:    1,
		DiskMBps:       2,
		RecordCostSec:  0.02,
	}
}

// fit runs one algorithm on y through the public facade with the profile's
// settings. target > 0 requests a stop at that fraction of ideal accuracy.
func (r Runner) fit(alg spca.Algorithm, y *matrix.Sparse, target float64, mutate ...func(*spca.Config)) (*spca.Result, error) {
	cfg := spca.Config{
		Algorithm:      alg,
		Components:     r.Profile.components(y.C),
		MaxIter:        r.Profile.MaxIter,
		TargetAccuracy: target,
		Seed:           r.Profile.Seed,
		Cluster:        r.clusterConfig(),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	res, err := spca.Fit(y, cfg)
	// Guard the cost model of the paper's tables: a fault-free run must
	// never charge recovery metrics (any nonzero value means the fault
	// layer leaked into the baseline accounting).
	if err == nil && cfg.Faults == nil {
		if m := res.Metrics; m.FailedAttempts != 0 || m.RecomputedOps != 0 ||
			m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 || m.DriverRestarts != 0 {
			return nil, fmt.Errorf("experiments: fault-free %s run charged recovery metrics: %v", alg, m)
		}
		// Without a checkpoint config the durability layer must be fully
		// dormant — not a byte or a simulated second charged.
		if m := res.Metrics; !cfg.Checkpoint.Enabled() &&
			(m.CheckpointBytes != 0 || m.CheckpointSeconds != 0) {
			return nil, fmt.Errorf("experiments: %s run without checkpointing charged checkpoint metrics: %v", alg, m)
		}
	}
	return res, err
}

// simSeconds formats a simulated duration the way the paper's tables do.
func simSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.4g", s)
	}
}

// failOrTime renders a running time, or "Fail" for a driver OOM — the
// Table 2 presentation of MLlib-PCA's wide-matrix failures.
func failOrTime(res *spca.Result, err error) (string, error) {
	if errors.Is(err, cluster.ErrDriverOOM) {
		return "Fail", nil
	}
	if err != nil {
		return "", err
	}
	return simSeconds(res.Metrics.SimSeconds), nil
}

// accuracyPct converts an accuracy fraction into the paper's percent scale.
func accuracyPct(a float64) float64 {
	p := a * 100
	if p > 100 {
		p = 100
	}
	return p
}
