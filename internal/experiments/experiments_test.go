package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"spca"
	"spca/internal/dataset"
)

func quickRunner() Runner { return Runner{Profile: Quick} }

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d): %+v", tab.ID, row, col, tab.Rows)
	}
	return tab.Rows[row][col]
}

func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as seconds: %v", s, err)
	}
	return v
}

func TestTable1Shapes(t *testing.T) {
	tab, err := quickRunner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(tab.Rows))
	}
	// sPCA (last row) must have the fewest measured ops of the four methods.
	ops := make([]float64, 4)
	inter := make([]float64, 4)
	for i := range tab.Rows {
		ops[i] = parseSeconds(t, tab.Rows[i][3])
		inter[i] = parseHumanBytes(t, tab.Rows[i][4])
	}
	for i := 0; i < 3; i++ {
		if ops[3] >= ops[i] {
			t.Fatalf("sPCA ops %v not the smallest (row %d has %v)", ops[3], i, ops[i])
		}
		// And by a wide margin (>= 5x) the least intermediate data — the
		// paper's O(Dd) column.
		if 5*inter[3] >= inter[i] {
			t.Fatalf("sPCA intermediate data %v not << row %d's %v", inter[3], i, inter[i])
		}
	}
}

// parseHumanBytes parses cluster.FormatBytes output ("1.5 MiB") into bytes.
func parseHumanBytes(t *testing.T, s string) float64 {
	t.Helper()
	parts := strings.Fields(s)
	if len(parts) != 2 {
		t.Fatalf("cannot parse byte size %q", s)
	}
	v, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		t.Fatalf("cannot parse byte size %q: %v", s, err)
	}
	mult := map[string]float64{
		"B": 1, "KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30, "TiB": 1 << 40,
	}[parts[1]]
	if mult == 0 {
		t.Fatalf("unknown unit in %q", s)
	}
	return v * mult
}

func TestTable2Shapes(t *testing.T) {
	tab, err := quickRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	// 3 tweets + 3 biotext + 3 diabetes + 1 images rows.
	if len(tab.Rows) != 10 {
		t.Fatalf("table2 rows = %d", len(tab.Rows))
	}
	var sawFail, sawImagesWin bool
	for _, row := range tab.Rows {
		ds, mllib := row[0], row[3]
		if mllib == "Fail" {
			sawFail = true
			continue
		}
		if ds == "images" {
			// Paper observation 3: MLlib wins on low-dimensional dense data.
			spark := parseSeconds(t, row[2])
			ml := parseSeconds(t, mllib)
			if ml < spark {
				sawImagesWin = true
			}
		}
	}
	if !sawFail {
		t.Fatal("table2 should contain MLlib Fail entries on wide datasets")
	}
	if !sawImagesWin {
		t.Fatal("MLlib-PCA should win on the low-dimensional dense Images dataset")
	}
	// Paper observation 1: sPCA beats Mahout by wide margins on the big
	// sparse text datasets (the Tweets/Bio-Text families; the paper's
	// Diabetes margin is small — 540 vs 720 s — and can flip at the scaled
	// sizes, so only the headline families are asserted strictly).
	for _, row := range tab.Rows {
		if row[0] != "tweets" && row[0] != "biotext" {
			continue
		}
		mr := parseSeconds(t, row[4])
		mahout := parseSeconds(t, row[5])
		if mr >= mahout {
			t.Fatalf("row %v: sPCA-MapReduce (%v) should beat Mahout-PCA (%v)", row[:2], mr, mahout)
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	fig, err := quickRunner().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig4 series = %d", len(fig.Series))
	}
	spca, mahout := fig.Series[0], fig.Series[1]
	// sPCA reaches high accuracy quickly: its accuracy at the second
	// iteration should already be substantial (the paper shows 93% at
	// iteration 2).
	if len(spca.Y) < 2 || spca.Y[1] < 80 {
		t.Fatalf("sPCA accuracy curve too slow: %v", spca.Y)
	}
	// Mahout's final accuracy must not exceed sPCA's by any margin, and its
	// time axis must stretch far beyond sPCA's.
	spcaEnd := spca.X[len(spca.X)-1]
	mahoutEnd := mahout.X[len(mahout.X)-1]
	if mahoutEnd <= spcaEnd {
		t.Fatalf("Mahout should take longer: %v vs %v", mahoutEnd, spcaEnd)
	}
}

func TestFig5SmartGuessLeads(t *testing.T) {
	fig, err := quickRunner().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig5 series = %d", len(fig.Series))
	}
	sg, plain := fig.Series[0], fig.Series[1]
	if len(sg.Y) == 0 || len(plain.Y) == 0 {
		t.Fatal("empty series")
	}
	// The smart guess starts at a higher accuracy than the random start.
	if sg.Y[0] <= plain.Y[0] {
		t.Fatalf("sPCA-SG first-iteration accuracy %v should beat sPCA %v", sg.Y[0], plain.Y[0])
	}
}

func TestFig6GapWidensWithScale(t *testing.T) {
	fig, err := quickRunner().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	sp, mh := fig.Series[0], fig.Series[1]
	n := len(sp.Y)
	if n < 2 || len(mh.Y) != n {
		t.Fatalf("series lengths %d vs %d", len(sp.Y), len(mh.Y))
	}
	// At the largest scale Mahout must be clearly slower.
	lastRatio := mh.Y[n-1] / sp.Y[n-1]
	if lastRatio < 1.5 {
		t.Fatalf("Mahout/sPCA time ratio at scale = %.2f, want > 1.5", lastRatio)
	}
	// The paper's scaling claim — "the running time of sPCA-MapReduce
	// increases at a much smaller rate as the size of the input dataset
	// increases" — checked with fixed-work runs so varying round counts
	// don't add noise.
	r := quickRunner()
	p := r.Profile
	cols := p.TweetsCols[len(p.TweetsCols)-1]
	fixedTime := func(alg spca.Algorithm, n int) float64 {
		y := dataset.MustGenerate(dataset.Spec{
			Kind: dataset.KindTweets, Rows: n, Cols: cols,
			Rank: 4 * p.Components, Seed: p.Seed,
		})
		res, err := r.fit(alg, y, 0, func(c *spca.Config) { c.MaxIter = 2 })
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.SimSeconds
	}
	nSmall := p.RowSweep[0]
	nBig := p.RowSweep[len(p.RowSweep)-1]
	spGrowth := fixedTime(spca.SPCAMapReduce, nBig) / fixedTime(spca.SPCAMapReduce, nSmall)
	mhGrowth := fixedTime(spca.MahoutPCA, nBig) / fixedTime(spca.MahoutPCA, nSmall)
	if mhGrowth < 1.4*spGrowth {
		t.Fatalf("Mahout should scale worse: sPCA grew %.2fx, Mahout %.2fx", spGrowth, mhGrowth)
	}
}

func TestFig7MLlibFailsPastThreshold(t *testing.T) {
	fig, err := quickRunner().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	sp, ml := fig.Series[0], fig.Series[1]
	var fails int
	for i, ann := range ml.Annotations {
		if strings.Contains(ann, "FAIL") {
			fails++
			if ml.X[i] <= float64(Quick.FailD) {
				t.Fatalf("MLlib failed below the threshold at D=%v", ml.X[i])
			}
		}
	}
	if fails == 0 {
		t.Fatal("fig7 should record MLlib failures past the threshold")
	}
	// sPCA-Spark succeeds everywhere.
	for _, ann := range sp.Annotations {
		if ann != "" {
			t.Fatalf("sPCA-Spark should not fail: %q", ann)
		}
	}
	// Where both run, MLlib is slower at the largest shared D.
	lastShared := -1
	for i := range ml.X {
		if ml.Annotations[i] == "" {
			lastShared = i
		}
	}
	if lastShared < 0 {
		t.Fatal("no shared points")
	}
	if ml.Y[lastShared] <= sp.Y[lastShared] {
		t.Fatalf("at D=%v MLlib (%v) should be slower than sPCA (%v)",
			ml.X[lastShared], ml.Y[lastShared], sp.Y[lastShared])
	}
}

func TestFig8DriverMemoryShapes(t *testing.T) {
	fig, err := quickRunner().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	sp, ml := fig.Series[0], fig.Series[1]
	n := len(sp.Y)
	// sPCA's driver memory stays roughly flat; MLlib's grows superlinearly.
	if sp.Y[n-1] > 6*sp.Y[0]+1 {
		t.Fatalf("sPCA driver memory should stay ~flat: %v", sp.Y)
	}
	if ml.Y[n-1] < 4*ml.Y[0] {
		t.Fatalf("MLlib driver memory should grow quadratically: %v", ml.Y)
	}
	// At every D, MLlib uses more driver memory than sPCA.
	for i := range sp.Y {
		if ml.Y[i] <= sp.Y[i] {
			t.Fatalf("at D=%v MLlib memory %v <= sPCA %v", ml.X[i], ml.Y[i], sp.Y[i])
		}
	}
}

func TestTable3EveryOptimizationHelps(t *testing.T) {
	tab, err := quickRunner().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("table3 rows = %d", len(tab.Rows))
	}
	for col := 1; col <= 3; col++ {
		with := parseSeconds(t, cell(t, tab, 0, col))
		without := parseSeconds(t, cell(t, tab, 1, col))
		if with >= without {
			t.Fatalf("optimization %q: with %v >= without %v",
				tab.Headers[col], with, without)
		}
	}
	// Mean propagation is the biggest win in the paper (§5.4).
	mp := parseSeconds(t, cell(t, tab, 1, 1)) / parseSeconds(t, cell(t, tab, 0, 1))
	fro := parseSeconds(t, cell(t, tab, 1, 3)) / parseSeconds(t, cell(t, tab, 0, 3))
	if mp < 2 {
		t.Fatalf("mean propagation speedup only %.1fx", mp)
	}
	_ = fro
}

func TestTable4NearLinearSpeedup(t *testing.T) {
	tab, err := quickRunner().Table4()
	if err != nil {
		t.Fatal(err)
	}
	s32 := parseSeconds(t, cell(t, tab, 1, 2))
	s64 := parseSeconds(t, cell(t, tab, 1, 3))
	if s32 < 1.3 || s32 > 2.05 {
		t.Fatalf("32-core speedup %.2f out of near-linear band", s32)
	}
	if s64 < 2.0 || s64 > 4.1 {
		t.Fatalf("64-core speedup %.2f out of near-linear band", s64)
	}
	if s64 <= s32 {
		t.Fatalf("speedup should increase with cores: %.2f vs %.2f", s32, s64)
	}
}

// TestFaultsRecoveryComparison: the experiment itself verifies bit-identical
// components and zero fault-free recovery metrics (it errors otherwise);
// here we additionally pin the paper's recovery argument — sPCA's
// consolidated jobs recover cheaper than Mahout-PCA's chained pipeline under
// the identical fault plan.
func TestFaultsRecoveryComparison(t *testing.T) {
	tab, err := quickRunner().Faults()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("faults table has %d rows, want 4 algorithms", len(tab.Rows))
	}
	byAlg := map[string][]string{}
	for _, row := range tab.Rows {
		byAlg[row[0]] = row
	}
	spcaRec := parseSeconds(t, byAlg[string(spca.SPCAMapReduce)][5])
	mahoutRec := parseSeconds(t, byAlg[string(spca.MahoutPCA)][5])
	if spcaRec >= mahoutRec {
		t.Fatalf("sPCA recovery %.2fs not cheaper than Mahout-PCA %.2fs", spcaRec, mahoutRec)
	}
	for alg, row := range byAlg {
		if fa, _ := strconv.ParseInt(row[3], 10, 64); fa == 0 {
			t.Fatalf("%s reported no failed attempts under the plan", alg)
		}
	}
}

func TestCheckpointIntervalSweep(t *testing.T) {
	tab, err := quickRunner().Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("checkpoint table has %d rows, want 4 policies", len(tab.Rows))
	}
	byPolicy := map[string][]string{}
	for _, row := range tab.Rows {
		byPolicy[row[0]] = row
	}
	// Denser checkpoints cost more snapshot bytes...
	every := parseSeconds(t, byPolicy["interval=1"][1])
	sparse := parseSeconds(t, byPolicy["interval=2"][1])
	if every <= sparse {
		t.Fatalf("interval=1 wrote %v KiB, not more than interval=2's %v", every, sparse)
	}
	if restart := parseSeconds(t, byPolicy["full-restart"][1]); restart != 0 {
		t.Fatalf("full-restart baseline wrote %v KiB of checkpoints", restart)
	}
	// ...but lose less work to the crash: the full-restart baseline re-pays
	// every destroyed iteration and must have the most expensive recovery.
	restartRec := parseSeconds(t, byPolicy["full-restart"][4])
	for _, pol := range []string{"interval=1", "interval=2"} {
		rec := parseSeconds(t, byPolicy[pol][4])
		if rec <= 0 {
			t.Fatalf("%s charged no recovery time", pol)
		}
		if rec >= restartRec {
			t.Fatalf("%s recovery %vs not cheaper than full restart %vs", pol, rec, restartRec)
		}
	}
}

func TestRunnerRunAndRender(t *testing.T) {
	var buf bytes.Buffer
	r := quickRunner()
	if err := r.Run("table4", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table4") || !strings.Contains(out, "64 cores") {
		t.Fatalf("rendered output missing content:\n%s", out)
	}
	if err := r.Run("nope", &buf); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "table3", "table4", "intermediate", "frontier", "scaling", "faults", "checkpoint"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s want %s", i, got[i], want[i])
		}
	}
}

func TestProfileDriverMem(t *testing.T) {
	gb := Quick.driverMemGB()
	bytes := gb * float64(1<<30)
	// Must hold one FailD² matrix but not two.
	one := float64(Quick.FailD*Quick.FailD) * 8
	if bytes < one || bytes > 2*one {
		t.Fatalf("driver memory %v bytes vs one matrix %v", bytes, one)
	}
}

func TestCSVRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Headers: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# x: T\na,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("table csv = %q", buf.String())
	}

	fig := &Figure{
		ID: "f", Title: "F", XLabel: "n",
		Series: []Series{
			{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "s2", X: []float64{1, 2}, Y: []float64{5, 0},
				Annotations: []string{"", "FAIL"}},
		},
	}
	buf.Reset()
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n,s1,s2,notes") ||
		!strings.Contains(out, "1,10,5,") ||
		!strings.Contains(out, "2,20,,s2: FAIL") {
		t.Fatalf("figure csv = %q", out)
	}
}

func TestRunnerCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	r := Runner{Profile: Quick, Format: "csv"}
	if err := r.Run("table4", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# table4") || !strings.Contains(buf.String(), ",") {
		t.Fatalf("csv run output = %q", buf.String())
	}
}

func TestIntermediateDataShapes(t *testing.T) {
	tab, err := quickRunner().Intermediate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sp := parseHumanBytes(t, row[3])
		mh := parseHumanBytes(t, row[4])
		// The paper's smallest reported reduction is 35x; require >= 10x at
		// this scale.
		if mh < 10*sp {
			t.Fatalf("%s: Mahout intermediate %v should dwarf sPCA's %v", row[0], mh, sp)
		}
	}
	// The reduction factor should grow with dataset size (tweets row is
	// larger in N than biotext here).
	bio := parseHumanBytes(t, tab.Rows[0][4]) / parseHumanBytes(t, tab.Rows[0][3])
	tw := parseHumanBytes(t, tab.Rows[1][4]) / parseHumanBytes(t, tab.Rows[1][3])
	if tw <= bio {
		t.Fatalf("reduction should grow with scale: biotext %.0fx, tweets %.0fx", bio, tw)
	}
}

// TestFrontierSketchBeatsEM pins the sketch family's reason to exist: in
// the intermediate-data configuration, one sketch round must cost less
// simulated time than the EM engines' three iterations while still landing
// at substantial accuracy, and the communication-optimal Spark variant must
// shuffle less than its MapReduce sibling.
func TestFrontierSketchBeatsEM(t *testing.T) {
	tab, err := quickRunner().Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("frontier rows = %d, want 5", len(tab.Rows))
	}
	byAlg := map[string][]string{}
	for _, row := range tab.Rows {
		byAlg[row[0]] = row
	}
	// Platform-matched pairs: each sketch engine must beat the EM engine on
	// its own runtime (cross-platform comparisons conflate the algorithm with
	// MapReduce's between-job materialization).
	pairs := map[spca.Algorithm]spca.Algorithm{
		spca.RSVDMapReduce: spca.SPCAMapReduce,
		spca.RSVDSpark:     spca.SPCASpark,
	}
	for sketch, em := range pairs {
		sk := parseSeconds(t, byAlg[string(sketch)][3])
		if emT := parseSeconds(t, byAlg[string(em)][3]); sk >= emT {
			t.Fatalf("%s time %v not cheaper than %s's %v", sketch, sk, em, emT)
		}
		acc, err := strconv.ParseFloat(strings.TrimSuffix(byAlg[string(sketch)][6], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 80 {
			t.Fatalf("%s accuracy %.1f%% too low for the frontier's pitch", sketch, acc)
		}
	}
	// The communication-optimal variant must also beat every EM engine
	// outright — its one-round, one-sketch-per-node protocol is the frontier's
	// left edge.
	spT := parseSeconds(t, byAlg[string(spca.RSVDSpark)][3])
	for _, em := range []spca.Algorithm{spca.SPCAMapReduce, spca.SPCASpark} {
		if emT := parseSeconds(t, byAlg[string(em)][3]); spT >= emT {
			t.Fatalf("rsvd-spark time %v not cheaper than %s's %v", spT, em, emT)
		}
	}
	spShuffle := parseHumanBytes(t, byAlg[string(spca.RSVDSpark)][4])
	mrShuffle := parseHumanBytes(t, byAlg[string(spca.RSVDMapReduce)][4])
	if spShuffle >= mrShuffle {
		t.Fatalf("communication-optimal variant shuffled %v, MapReduce %v", spShuffle, mrShuffle)
	}
}

func TestScalingExponents(t *testing.T) {
	tab, err := quickRunner().Scaling()
	if err != nil {
		t.Fatal(err)
	}
	get := func(method, quantity, sweep string) float64 {
		for _, row := range tab.Rows {
			if row[0] == method && row[1] == quantity && strings.HasPrefix(row[2], sweep) {
				return parseSeconds(t, row[4])
			}
		}
		t.Fatalf("row %s/%s/%s not found in %v", method, quantity, sweep, tab.Rows)
		return 0
	}
	within := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Fatalf("%s exponent %.2f outside [%.1f, %.1f]", name, got, lo, hi)
		}
	}
	within("sPCA ops vs N", get("sPCA", "compute ops", "N x4"), 0.8, 1.2)
	within("sPCA intermediate vs N", get("sPCA", "intermediate", "N x4"), -0.2, 0.6)
	within("sPCA ops vs D", get("sPCA", "compute ops", "D x4"), 0.8, 1.4)
	within("sPCA intermediate vs D", get("sPCA", "intermediate", "D x4"), 0.6, 1.3)
	within("Mahout ops vs N", get("Mahout-PCA", "compute ops", "N x4"), 0.8, 1.2)
	within("Mahout intermediate vs N", get("Mahout-PCA", "intermediate", "N x4"), 0.7, 1.2)
	within("MLlib ops vs D", get("MLlib-PCA", "compute ops", "D x4"), 1.7, 3.2)
	within("MLlib intermediate vs D", get("MLlib-PCA", "intermediate", "D x4"), 1.6, 2.3)
	within("SVD-Bidiag ops vs D", get("SVD-Bidiag", "compute ops", "D x4"), 1.7, 3.2)
}
