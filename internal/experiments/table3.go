package experiments

import (
	"fmt"
	"strings"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/ppca"
	"spca/internal/rdd"
)

// Table3 reproduces the per-optimization ablation (Table 3): the simulated
// time of the three distributed operations with and without the
// corresponding optimization, on a Tweets subset (the paper used 100K rows).
// Each row flips exactly one switch; the phase log attributes time to the
// operations the optimization affects.
func (r Runner) Table3() (*Table, error) {
	p := r.Profile
	rows := p.TweetsRows / 2
	cols := p.TweetsCols[1]
	y := r.gen(dataset.KindTweets, rows, cols)
	records := dataset.Rows(y)
	d := p.components(cols)

	// Same recalibrated bandwidths as the other experiments, with compute
	// slowed to the same scale so the operation-level costs this table
	// isolates (row densification, materialized X, Frobenius work) are
	// visible. The per-record scan overhead is identical with and without
	// each optimization, so phaseSeconds excludes it below.
	calibrated := func() cluster.Config {
		cfg := cluster.DefaultConfig().WithTaskOverhead(0.05)
		cfg.NetworkBps = 1e6
		cfg.DiskBps = 2e6
		cfg.FlopsPerCore = 1e6
		return cfg
	}
	runOnce := func(mutate func(*ppca.Options)) ([]cluster.PhaseSummary, error) {
		cl := cluster.MustNew(calibrated())
		opt := ppca.DefaultOptions(d)
		opt.MaxIter = 1
		opt.Seed = p.Seed
		mutate(&opt)
		res, err := ppca.FitSpark(rdd.NewContext(cl), records, cols, opt)
		if err != nil {
			return nil, err
		}
		return res.Phases, nil
	}
	// Attribute time from the per-phase summaries. The record-scan overhead is
	// identical with and without each optimization, so only the ops, shuffle,
	// and disk components count here (not PhaseSummary.Seconds, which includes
	// the scan cost and task overhead).
	phaseSeconds := func(sum []cluster.PhaseSummary, cl cluster.Config, prefixes ...string) float64 {
		cores := float64(cl.TotalCores())
		var total float64
		for _, ph := range sum {
			for _, pre := range prefixes {
				if strings.HasPrefix(ph.Name, pre) {
					total += float64(ph.ComputeOps)/(cores*cl.FlopsPerCore) +
						float64(ph.ShuffleBytes)/cl.NetworkBps +
						float64(ph.DiskBytes)/cl.DiskBps
					break
				}
			}
		}
		return total
	}
	cfg := calibrated()

	base, err := runOnce(func(*ppca.Options) {})
	if err != nil {
		return nil, fmt.Errorf("table3 baseline: %w", err)
	}
	noMean, err := runOnce(func(o *ppca.Options) { o.MeanPropagation = false })
	if err != nil {
		return nil, fmt.Errorf("table3 no-mean-prop: %w", err)
	}
	noMin, err := runOnce(func(o *ppca.Options) { o.MinimizeIntermediate = false })
	if err != nil {
		return nil, fmt.Errorf("table3 no-minimize: %w", err)
	}
	noFro, err := runOnce(func(o *ppca.Options) { o.EfficientFrobenius = false })
	if err != nil {
		return nil, fmt.Errorf("table3 no-frobenius: %w", err)
	}

	// The distributed operations each optimization affects (per §5.4 these
	// are lines 7-8 and 13 of Algorithm 1, plus the Frobenius-norm job).
	iterPhases := []string{"YtXJob", "ss3Job", "XJob", "XtXJob", "YtXJoinJob"}
	withMean := phaseSeconds(base, cfg, iterPhases...)
	woMean := phaseSeconds(noMean, cfg, iterPhases...)
	withMin := phaseSeconds(base, cfg, iterPhases...)
	woMin := phaseSeconds(noMin, cfg, iterPhases...)
	withFro := phaseSeconds(base, cfg, "FnormJob")
	woFro := phaseSeconds(noFro, cfg, "FnormJob")

	return &Table{
		ID:      "table3",
		Title:   fmt.Sprintf("Effect of individual optimizations (Tweets %dx%d, one iteration)", rows, cols),
		Headers: []string{"", "Mean Prop.", "Intermed. Data", "Frobenius"},
		Rows: [][]string{
			{"W/ Opt. (s)", simSeconds(withMean), simSeconds(withMin), simSeconds(withFro)},
			{"W/O Opt. (s)", simSeconds(woMean), simSeconds(woMin), simSeconds(woFro)},
			{"Speedup", ratio(woMean, withMean), ratio(woMin, withMin), ratio(woFro, withFro)},
		},
		Notes: []string{
			"each column flips exactly one optimization off; times cover the distributed operations that optimization affects",
		},
	}, nil
}

func ratio(slow, fast float64) string {
	if fast <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fx", slow/fast)
}
