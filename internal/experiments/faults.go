package experiments

import (
	"fmt"

	"spca"
)

// faultPlan is the shared chaos schedule of the fault-tolerance experiment:
// every algorithm is subjected to the identical deterministic plan, so the
// recovery costs are directly comparable. MaxAttempts 12 keeps terminal
// failure out of reach (0.15^12 per task) — the experiment is about the
// price of recovery, not about aborted jobs.
func (r Runner) faultPlan() *spca.FaultPlan {
	return &spca.FaultPlan{
		Seed:                 r.Profile.Seed,
		TaskFailureRate:      0.15,
		NodeLossRate:         0.05,
		StragglerRate:        0.10,
		SpeculativeExecution: true,
		MaxAttempts:          12,
	}
}

// Faults is the fault-tolerance experiment: the four distributed algorithms
// run twice on the same Tweets matrix — fault-free, and under the identical
// deterministic FaultPlan — and the table reports what recovery cost each.
// This quantifies the paper's §4.2 recovery argument: sPCA's few consolidated
// jobs re-execute far less work per failure than Mahout-PCA's long pipeline
// of chained jobs, the consolidation-vs-lineage tradeoff analyzed in Elgamal
// & Hefeeda (2015). The experiment also verifies the engines' central
// guarantee: the fitted components under faults are bit-identical to the
// fault-free run.
func (r Runner) Faults() (*Table, error) {
	p := r.Profile
	cols := p.TweetsCols[1] // below FailD, so MLlib-PCA participates
	y := r.gen(spca.Tweets, p.TweetsRows, cols)
	plan := r.faultPlan()

	table := &Table{
		ID:    "faults",
		Title: fmt.Sprintf("Recovery cost under an identical fault plan (Tweets %dx%d, seed %d)", p.TweetsRows, cols, plan.Seed),
		Headers: []string{"Algorithm", "CleanTime(s)", "FaultyTime(s)", "FailedAttempts",
			"RecomputedOps", "Recovery(s)", "Overhead%"},
		Notes: []string{
			"same FaultPlan for every algorithm: 15% attempt failures, 5% node loss, 10% stragglers (speculative execution on)",
			"fitted components are verified bit-identical between the clean and faulty runs",
			"sPCA's consolidated jobs lose less work per failure than Mahout-PCA's chained pipeline (§4.2 recovery argument)",
		},
	}

	for _, alg := range []spca.Algorithm{spca.SPCAMapReduce, spca.MahoutPCA, spca.SPCASpark, spca.MLlibPCA} {
		clean, err := r.fit(alg, y, 0)
		if err != nil {
			return nil, fmt.Errorf("faults: %s clean run: %w", alg, err)
		}
		if m := clean.Metrics; m.FailedAttempts != 0 || m.RecomputedOps != 0 ||
			m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 {
			return nil, fmt.Errorf("faults: %s fault-free run charged recovery metrics: %v", alg, m)
		}
		faulty, err := r.fit(alg, y, 0, func(cfg *spca.Config) { cfg.Faults = plan })
		if err != nil {
			return nil, fmt.Errorf("faults: %s faulty run: %w", alg, err)
		}
		if clean.Components.MaxAbsDiff(faulty.Components) != 0 {
			return nil, fmt.Errorf("faults: %s components not bit-identical under faults", alg)
		}
		m := faulty.Metrics
		if m.FailedAttempts == 0 || m.RecoverySeconds <= 0 {
			return nil, fmt.Errorf("faults: %s recorded no recovery under the plan: %v", alg, m)
		}
		overhead := 100 * (m.SimSeconds - clean.Metrics.SimSeconds) / clean.Metrics.SimSeconds
		table.Rows = append(table.Rows, []string{
			string(alg),
			simSeconds(clean.Metrics.SimSeconds),
			simSeconds(m.SimSeconds),
			fmt.Sprintf("%d", m.FailedAttempts),
			fmt.Sprintf("%d", m.RecomputedOps),
			simSeconds(m.RecoverySeconds),
			fmt.Sprintf("%.1f", overhead),
		})
	}
	return table, nil
}
