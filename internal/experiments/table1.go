package experiments

import (
	"fmt"

	"spca"
	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/svdbidiag"
)

// Table1 reproduces the complexity comparison (Table 1): for each of the
// four PCA methods it lists the paper's asymptotic time and communication
// complexity next to the *measured* compute ops and intermediate data of a
// run on a common Tweets-family matrix. "Intermediate data" counts what the
// paper counts: the inter-job outputs a later phase must read back (§2's
// communication complexity), not scratch traffic. The reproduced result is
// the ordering — PPCA's O(Dd) intermediate data is smallest by a wide
// margin, the covariance method's O(D²) partials and SSVD's O(Nd)
// materializations dominate.
func (r Runner) Table1() (*Table, error) {
	rows := r.Profile.TweetsRows
	cols := r.Profile.TweetsCols[1]
	y := r.gen("tweets", rows, cols)
	d := r.Profile.components(cols)

	type measured struct {
		name, time, comm string
		ops, inter       int64
	}
	var out []measured

	// Eigen decomposition of the covariance matrix (MLlib-PCA). Driver
	// memory is unrestricted here: Table 1 measures cost, not failure.
	mllib, err := r.fit(spca.MLlibPCA, y, 0, func(c *spca.Config) {
		c.Cluster.DriverMemoryGB = 64
	})
	if err != nil {
		return nil, err
	}
	out = append(out, measured{
		name: "Eigen decomp. of covariance", time: "O(ND*min(N,D))", comm: "O(D^2)",
		ops: mllib.Metrics.ComputeOps, inter: mllib.Metrics.MaterializedBytes,
	})

	// SVD-Bidiag (RScaLAPACK-style dense SVD pipeline, TSQR-distributed).
	// The dense QR is O(ND²), so it runs on a documented row subsample with
	// its charges scaled back to the full row count.
	ops2, in2, err := r.svdBidiagRun(y, d)
	if err != nil {
		return nil, err
	}
	out = append(out, measured{
		name: "SVD-Bidiag", time: "O(ND^2+D^3)", comm: "O(max((N+D)d,D^2))",
		ops: ops2, inter: in2,
	})

	// Stochastic SVD (Mahout-PCA), one refinement round as in Table 1's
	// single-iteration accounting.
	mahout, err := r.fit(spca.MahoutPCA, y, 0, func(c *spca.Config) { c.MaxIter = 1 })
	if err != nil {
		return nil, err
	}
	out = append(out, measured{
		name: "Stochastic SVD (SSVD)", time: "O(NDd)", comm: "O(max(Nd,d^2))",
		ops: mahout.Metrics.ComputeOps, inter: mahout.Metrics.MaterializedBytes,
	})

	// Probabilistic PCA (sPCA), one iteration.
	sp, err := r.fit(spca.SPCAMapReduce, y, 0, func(c *spca.Config) { c.MaxIter = 1 })
	if err != nil {
		return nil, err
	}
	out = append(out, measured{
		name: "Probabilistic PCA (sPCA)", time: "O(NDd)", comm: "O(Dd)",
		ops: sp.Metrics.ComputeOps, inter: sp.Metrics.MaterializedBytes,
	})

	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("PCA method comparison, measured on tweets %dx%d, d=%d", rows, cols, d),
		Headers: []string{"Method", "Time complexity", "Comm. complexity",
			"Measured ops", "Intermediate data"},
		Notes: []string{
			"complexities are the paper's asymptotic bounds; ops and intermediate data are measured on the simulated cluster (one iteration for iterative methods)",
			"intermediate data counts inter-job outputs (the paper's communication metric), not scratch disk traffic",
		},
	}
	for _, m := range out {
		t.Rows = append(t.Rows, []string{
			m.name, m.time, m.comm,
			fmt.Sprintf("%d", m.ops), cluster.FormatBytes(m.inter),
		})
	}
	return t, nil
}

// svdBidiagRun executes the real distributed SVD-Bidiag pipeline
// (internal/svdbidiag) on a row subsample — the dense TSQR is O(ND²), far
// beyond what the other methods spend — and scales the measured charges
// linearly back to the full row count (only the QR terms depend on N).
func (r Runner) svdBidiagRun(y *matrix.Sparse, d int) (ops, intermediate int64, err error) {
	n := y.R
	sampleN := n
	if sampleN > 1500 {
		sampleN = 1500
	}
	sub := matrix.NewSparseBuilder(y.C)
	rows := make([]matrix.SparseVector, 0, sampleN)
	for i := 0; i < sampleN; i++ {
		row := y.Row(i)
		sub.AddRow(row.Indices, row.Values)
	}
	subM := sub.Build()
	for i := 0; i < subM.R; i++ {
		rows = append(rows, subM.Row(i))
	}

	eng := mapredEngine()
	// Hadoop would schedule few splits for an input this small; few tall
	// blocks also keep the real TSQR arithmetic reasonable.
	eng.Splits = 8
	res, err := svdbidiag.FitMapReduce(eng, rows, y.C, svdbidiag.DefaultOptions(d))
	if err != nil {
		return 0, 0, err
	}
	scale := float64(n) / float64(sampleN)
	m := res.Metrics
	return int64(float64(m.ComputeOps) * scale), int64(float64(m.MaterializedBytes) * scale), nil
}

func mapredEngine() *mapred.Engine {
	return mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
}
