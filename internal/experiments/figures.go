package experiments

import (
	"errors"
	"fmt"

	"spca"
	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/matrix"
)

// accuracyTrace converts a fit history into an accuracy-vs-time series.
func accuracyTrace(name string, res *spca.Result) Series {
	s := Series{Name: name}
	for _, h := range res.History {
		s.X = append(s.X, h.SimSeconds)
		s.Y = append(s.Y, accuracyPct(h.Accuracy))
	}
	return s
}

// tracedFit runs alg with accuracy tracking enabled but no early stop (the
// figures want the full convergence curve).
func (r Runner) tracedFit(alg spca.Algorithm, y *matrix.Sparse) (*spca.Result, error) {
	return r.fit(alg, y, 0.999)
}

// Fig4 reproduces accuracy vs time on Bio-Text: sPCA-MapReduce converges in
// a couple of iterations; Mahout-PCA takes far longer to approach the same
// accuracy.
func (r Runner) Fig4() (*Figure, error) {
	p := r.Profile
	y := r.gen(dataset.KindBioText, p.BioTextRows, p.BioTextCols[1])

	sp, err := r.tracedFit(spca.SPCAMapReduce, y)
	if err != nil {
		return nil, err
	}
	mahout, err := r.tracedFit(spca.MahoutPCA, y)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Accuracy vs. time, Bio-Text %dx%d", y.R, y.C),
		XLabel: "simulated seconds",
		YLabel: "% of ideal accuracy",
		Series: []Series{
			accuracyTrace("sPCA-MapReduce", sp),
			accuracyTrace("Mahout-PCA", mahout),
		},
	}, nil
}

// Fig5 reproduces accuracy vs time on Tweets with the smart-guess variant
// sPCA-SG added (log-x in the paper).
func (r Runner) Fig5() (*Figure, error) {
	p := r.Profile
	y := r.gen(dataset.KindTweets, p.TweetsRows, p.TweetsCols[1])

	sg, err := r.fit(spca.SPCAMapReduce, y, 0.999, func(c *spca.Config) { c.SmartGuess = true })
	if err != nil {
		return nil, err
	}
	sp, err := r.tracedFit(spca.SPCAMapReduce, y)
	if err != nil {
		return nil, err
	}
	mahout, err := r.tracedFit(spca.MahoutPCA, y)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig5",
		Title:  fmt.Sprintf("Accuracy vs. time, Tweets %dx%d", y.R, y.C),
		XLabel: "simulated seconds",
		YLabel: "% of ideal accuracy",
		LogX:   true,
		Series: []Series{
			accuracyTrace("sPCA-SG", sg),
			accuracyTrace("sPCA-MapReduce", sp),
			accuracyTrace("Mahout-PCA", mahout),
		},
	}, nil
}

// Fig6 reproduces time-to-95%-accuracy vs the number of input rows on the
// Tweets family (log-log in the paper): sPCA's advantage widens with scale.
func (r Runner) Fig6() (*Figure, error) {
	p := r.Profile
	cols := p.TweetsCols[len(p.TweetsCols)-1]
	sp := Series{Name: "sPCA-MapReduce"}
	mh := Series{Name: "Mahout-PCA"}
	for _, n := range p.RowSweep {
		y := r.gen(dataset.KindTweets, n, cols)
		a, err := r.fit(spca.SPCAMapReduce, y, 0.95)
		if err != nil {
			return nil, fmt.Errorf("fig6 spca n=%d: %w", n, err)
		}
		b, err := r.fit(spca.MahoutPCA, y, 0.95)
		if err != nil {
			return nil, fmt.Errorf("fig6 mahout n=%d: %w", n, err)
		}
		sp.X = append(sp.X, float64(n))
		sp.Y = append(sp.Y, a.Metrics.SimSeconds)
		mh.X = append(mh.X, float64(n))
		mh.Y = append(mh.Y, b.Metrics.SimSeconds)
	}
	return &Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("Time to 95%% of ideal accuracy vs rows (Tweets, D=%d)", cols),
		XLabel: "input rows",
		YLabel: "simulated seconds",
		LogX:   true,
		Series: []Series{sp, mh},
	}, nil
}

// sparkSweep runs the Figures 7-8 column sweep once: sPCA-Spark and
// MLlib-PCA across ColSweep dimensionalities at fixed rows, recording time
// to target accuracy and peak driver memory. MLlib entries past the scaled
// driver-memory threshold record a failure.
func (r Runner) sparkSweep() (spTime, mlTime, spMem, mlMem Series, err error) {
	p := r.Profile
	spTime = Series{Name: "sPCA-Spark"}
	mlTime = Series{Name: "MLlib-PCA"}
	spMem = Series{Name: "sPCA-Spark"}
	mlMem = Series{Name: "MLlib-PCA"}
	for _, cols := range p.ColSweep {
		y := r.gen(dataset.KindTweets, p.TweetsRows, cols)

		a, ferr := r.fit(spca.SPCASpark, y, 0.95)
		if ferr != nil {
			err = fmt.Errorf("fig7 spark D=%d: %w", cols, ferr)
			return
		}
		spTime.X = append(spTime.X, float64(cols))
		spTime.Y = append(spTime.Y, a.Metrics.SimSeconds)
		spTime.Annotations = append(spTime.Annotations, "")
		spMem.X = append(spMem.X, float64(cols))
		spMem.Y = append(spMem.Y, float64(a.Metrics.DriverPeak)/float64(1<<20))
		spMem.Annotations = append(spMem.Annotations, "")

		b, ferr := r.fit(spca.MLlibPCA, y, 0)
		mlTime.X = append(mlTime.X, float64(cols))
		mlMem.X = append(mlMem.X, float64(cols))
		if errors.Is(ferr, cluster.ErrDriverOOM) {
			mlTime.Y = append(mlTime.Y, 0)
			mlTime.Annotations = append(mlTime.Annotations, "FAIL (driver OOM)")
			// The attempted allocation is what blows the driver: 2·D²·8.
			mlMem.Y = append(mlMem.Y, float64(2*cols*cols*8)/float64(1<<20))
			mlMem.Annotations = append(mlMem.Annotations, "FAIL (driver OOM)")
			continue
		}
		if ferr != nil {
			err = fmt.Errorf("fig7 mllib D=%d: %w", cols, ferr)
			return
		}
		mlTime.Y = append(mlTime.Y, b.Metrics.SimSeconds)
		mlTime.Annotations = append(mlTime.Annotations, "")
		mlMem.Y = append(mlMem.Y, float64(b.Metrics.DriverPeak)/float64(1<<20))
		mlMem.Annotations = append(mlMem.Annotations, "")
	}
	return
}

// Fig7 reproduces time to 95% accuracy vs columns on Spark; MLlib-PCA fails
// beyond the scaled dimensionality threshold.
func (r Runner) Fig7() (*Figure, error) {
	spTime, mlTime, _, _, err := r.sparkSweep()
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig7",
		Title:  fmt.Sprintf("Time to 95%% accuracy vs columns (Tweets, N=%d)", r.Profile.TweetsRows),
		XLabel: "columns D",
		YLabel: "simulated seconds",
		Series: []Series{spTime, mlTime},
		Notes: []string{
			fmt.Sprintf("MLlib-PCA fails past D = %d (scaled from the paper's 6,000 on 32 GB drivers)", r.Profile.FailD),
		},
	}, nil
}

// Fig8 reproduces driver memory consumption vs columns: sPCA is ~flat
// (O(D·d) state), MLlib grows quadratically until it fails.
func (r Runner) Fig8() (*Figure, error) {
	_, _, spMem, mlMem, err := r.sparkSweep()
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig8",
		Title:  fmt.Sprintf("Peak driver memory vs columns (Tweets, N=%d)", r.Profile.TweetsRows),
		XLabel: "columns D",
		YLabel: "driver MiB",
		Series: []Series{spMem, mlMem},
	}, nil
}
