package experiments

import (
	"fmt"
	"os"

	"spca"
)

// Checkpoint is the durability experiment: the sPCA EM driver runs under a
// deterministic mid-run driver crash, once per checkpoint interval, and the
// table reports what the crash cost under each policy. The last row is the
// Mahout-style baseline — no usable snapshot, so the job restarts from
// scratch and re-pays every iteration the crash destroyed. Every crashed run
// is verified bit-identical to the uninterrupted fit: durability is pure
// accounting, never a numerical perturbation (the same contract the
// task-fault experiment pins for within-job recovery).
func (r Runner) Checkpoint() (*Table, error) {
	p := r.Profile
	cols := p.TweetsCols[0]
	y := r.gen(spca.Tweets, p.TweetsRows, cols)
	crashIter := p.MaxIter / 2
	if crashIter < 1 {
		crashIter = 1
	}

	// Fixed-length runs (Tol disabled) so the crash iteration is always
	// reached and every policy replays the identical trajectory.
	fixed := func(cfg *spca.Config) { cfg.Tol = -1 }
	ref, err := r.fit(spca.SPCAMapReduce, y, 0, fixed)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reference run: %w", err)
	}

	table := &Table{
		ID: "checkpoint",
		Title: fmt.Sprintf("Checkpoint interval vs. driver-crash recovery cost (Tweets %dx%d, crash at iteration %d of %d, sPCA-MapReduce)",
			p.TweetsRows, cols, crashIter, p.MaxIter),
		Headers: []string{"Policy", "Ckpt(KiB)", "CleanTime(s)", "CrashedTime(s)", "Recovery(s)", "CrashCost%"},
		Notes: []string{
			"CleanTime includes the checkpoint write overhead; CrashedTime is the same run with one driver crash and auto-resume",
			"full-restart is the Mahout-style baseline: no snapshot survives the crash, the job restarts from iteration 0",
			"every crashed run's model is verified bit-identical to the uninterrupted fit",
		},
	}

	type policy struct {
		name     string
		interval int
	}
	policies := []policy{
		{"interval=1", 1},
		{"interval=2", 2},
		{fmt.Sprintf("interval=%d", p.MaxIter), p.MaxIter},
		// An interval past MaxIter never writes a snapshot, so the crash
		// recovery degenerates to a full restart — the Mahout baseline.
		{"full-restart", p.MaxIter + 1},
	}
	for _, pol := range policies {
		dir, err := os.MkdirTemp("", "spca-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		defer os.RemoveAll(dir)
		withCkpt := func(cfg *spca.Config) {
			cfg.Tol = -1
			cfg.Checkpoint = spca.CheckpointSpec{Interval: pol.interval, Dir: dir}
		}
		clean, err := r.fit(spca.SPCAMapReduce, y, 0, withCkpt)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s clean run: %w", pol.name, err)
		}
		crashDir, err := os.MkdirTemp("", "spca-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		defer os.RemoveAll(crashDir)
		crashed, err := r.fit(spca.SPCAMapReduce, y, 0, func(cfg *spca.Config) {
			cfg.Tol = -1
			cfg.Checkpoint = spca.CheckpointSpec{Interval: pol.interval, Dir: crashDir}
			cfg.Faults = &spca.FaultPlan{DriverCrashIters: []int{crashIter}}
		})
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s crashed run: %w", pol.name, err)
		}
		if ref.Components.MaxAbsDiff(crashed.Components) != 0 {
			return nil, fmt.Errorf("checkpoint: %s resumed model not bit-identical to uninterrupted fit", pol.name)
		}
		m := crashed.Metrics
		if m.DriverRestarts != 1 {
			return nil, fmt.Errorf("checkpoint: %s recorded %d driver restarts, want 1", pol.name, m.DriverRestarts)
		}
		crashCost := 100 * (m.SimSeconds + m.RecoverySeconds - clean.Metrics.SimSeconds) / clean.Metrics.SimSeconds
		table.Rows = append(table.Rows, []string{
			pol.name,
			fmt.Sprintf("%.1f", float64(clean.Metrics.CheckpointBytes)/1024),
			simSeconds(clean.Metrics.SimSeconds),
			simSeconds(m.SimSeconds + m.RecoverySeconds),
			simSeconds(m.RecoverySeconds),
			fmt.Sprintf("%.1f", crashCost),
		})
	}
	return table, nil
}
