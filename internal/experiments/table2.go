package experiments

import (
	"fmt"

	"spca"
	"spca/internal/dataset"
)

// Table2 reproduces the headline running-time comparison (Table 2): the four
// algorithms across the four dataset families at three sizes each (one for
// Images). Iterative algorithms run until 95% of ideal accuracy or the
// iteration cap, as in §5.1; MLlib-PCA rows show "Fail" where the D x D
// covariance exceeds the (scaled) driver memory.
func (r Runner) Table2() (*Table, error) {
	p := r.Profile
	type entry struct {
		kind dataset.Kind
		rows int
		cols []int
	}
	entries := []entry{
		{dataset.KindTweets, p.TweetsRows, p.TweetsCols},
		{dataset.KindBioText, p.BioTextRows, p.BioTextCols},
		{dataset.KindDiabetes, p.DiabetesRows, p.DiabetesCols},
		{dataset.KindImages, p.ImagesRows, []int{p.ImagesCols}},
	}

	t := &Table{
		ID:    "table2",
		Title: "Running time (simulated seconds) of the four algorithms",
		Headers: []string{"Dataset", "Size",
			"sPCA-Spark", "MLlib-PCA", "sPCA-MapReduce", "Mahout-PCA"},
		Notes: []string{
			fmt.Sprintf("d = %d (clamped to D); iterative algorithms stop at 95%% of ideal accuracy or %d iterations", p.Components, p.MaxIter),
			fmt.Sprintf("driver memory scaled so MLlib-PCA fails past D = %d (paper: 6,000)", p.FailD),
		},
	}

	for _, e := range entries {
		for _, cols := range e.cols {
			y := r.gen(e.kind, e.rows, cols)
			size := fmt.Sprintf("%dx%d", e.rows, cols)
			// Images keeps the paper's d=50 even in quick mode so d remains
			// comparable to its low dimensionality, as in the original setup.
			setD := func(c *spca.Config) {
				if e.kind == dataset.KindImages {
					c.Components = p.ImagesComponents
				}
			}

			spark, err := r.fit(spca.SPCASpark, y, 0.95, setD)
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s spark: %w", e.kind, size, err)
			}
			mllibCell, err := failOrTime(r.fit(spca.MLlibPCA, y, 0, setD))
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s mllib: %w", e.kind, size, err)
			}
			mr, err := r.fit(spca.SPCAMapReduce, y, 0.95, setD)
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s mapreduce: %w", e.kind, size, err)
			}
			mahout, err := r.fit(spca.MahoutPCA, y, 0.95, setD)
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s mahout: %w", e.kind, size, err)
			}

			t.Rows = append(t.Rows, []string{
				string(e.kind), size,
				simSeconds(spark.Metrics.SimSeconds),
				mllibCell,
				simSeconds(mr.Metrics.SimSeconds),
				simSeconds(mahout.Metrics.SimSeconds),
			})
		}
	}
	return t, nil
}
