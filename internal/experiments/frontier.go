package experiments

import (
	"fmt"

	"spca"
	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/ppca"
)

// Frontier places the randomized-sketch engines on the accuracy/cost
// frontier beside the EM family and Mahout's SSVD, in the same
// intermediate-data configuration as the Intermediate experiment. A single
// sketch round (range finder + one power iteration) is the sketch family's
// whole budget; EM and SSVD run their usual three rounds. The sketch
// engines' pitch is the left edge of the frontier: one shot at near-SSVD
// accuracy for a fraction of the EM iterations' simulated cost, with the
// communication-optimal Spark variant shipping only s small k x D sketches
// through the shuffle.
func (r Runner) Frontier() (*Table, error) {
	p := r.Profile
	rows := p.TweetsRows
	cols := p.TweetsCols[len(p.TweetsCols)-1]
	y := r.gen(dataset.KindTweets, rows, cols)
	d := p.components(cols)

	// The house accuracy yardstick: the sampled reconstruction error of the
	// exact rank-d truncation, shared by every engine's TargetAccuracy
	// machinery.
	iopt := ppca.DefaultOptions(d)
	iopt.Seed = p.Seed
	ideal := ppca.IdealError(y, d, iopt)

	entries := []struct {
		alg    spca.Algorithm
		family string
		rounds int
	}{
		{spca.SPCAMapReduce, "EM", 3},
		{spca.SPCASpark, "EM", 3},
		{spca.MahoutPCA, "SSVD", 3},
		{spca.RSVDMapReduce, "sketch", 1},
		{spca.RSVDSpark, "sketch", 1},
	}

	t := &Table{
		ID:    "frontier",
		Title: fmt.Sprintf("Accuracy/cost frontier: sketch vs EM vs SSVD (Tweets %dx%d, d=%d)", rows, cols, d),
		Headers: []string{"Algorithm", "Family", "Rounds", "Time (s)",
			"Shuffle", "Intermediate", "Accuracy"},
		Notes: []string{
			"sketch engines get one round (range finder + 1 power iteration); EM and SSVD run three",
			"accuracy = ideal rank-d reconstruction error / achieved error, on the shared 256-row sample",
			"rsvd-spark merges one k x D sketch per node (Balcan et al.), so its shuffle column is the communication-optimal floor",
		},
	}
	for _, e := range entries {
		res, err := r.fit(e.alg, y, 0, func(c *spca.Config) { c.MaxIter = e.rounds })
		if err != nil {
			return nil, fmt.Errorf("frontier %s: %w", e.alg, err)
		}
		acc := 0.0
		if res.Err > 0 {
			acc = ideal / res.Err
			if acc > 1 {
				acc = 1
			}
		}
		m := res.Metrics
		t.Rows = append(t.Rows, []string{
			string(e.alg),
			e.family,
			fmt.Sprintf("%d", res.Iterations),
			simSeconds(m.SimSeconds),
			cluster.FormatBytes(m.ShuffleBytes),
			cluster.FormatBytes(m.MaterializedBytes),
			fmt.Sprintf("%.1f%%", accuracyPct(acc)),
		})
	}
	return t, nil
}
