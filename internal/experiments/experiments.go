// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated cluster: Table 1 (complexity
// comparison), Table 2 (running times of the four algorithms across the
// four datasets), Figures 4-5 (accuracy vs time), Figure 6 (time to 95%
// accuracy vs rows), Figures 7-8 (Spark scalability and driver memory vs
// columns), Table 3 (per-optimization ablations) and Table 4 (speedup with
// cluster size), plus the §5.2 intermediate-data comparison whose figures
// the paper omits. See DESIGN.md for the scale substitutions.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Profile scales the experiments. Full is the scale EXPERIMENTS.md records;
// Quick keeps unit tests and benchmarks fast.
type Profile struct {
	Name string
	// Rows used per dataset family (the paper's row counts divided by the
	// documented scale factors).
	TweetsRows, BioTextRows, DiabetesRows, ImagesRows int
	// Column ladders per family for Table 2 (mapping to the paper's 2K /
	// 6K / 71.5K etc. ladders).
	TweetsCols, BioTextCols, DiabetesCols []int
	ImagesCols                            int
	// Components is d (the paper uses 50).
	Components int
	// ImagesComponents is d for the low-dimensional Images family, kept at
	// the paper's 50 so d stays comparable to D as in the original setup.
	ImagesComponents int
	// FailD is the scaled dimensionality at which MLlib-PCA's driver OOMs
	// (the paper's machines failed past D = 6,000). The driver memory is
	// derived from it.
	FailD int
	// MaxIter caps refinement rounds (10 in the paper).
	MaxIter int
	// RowSweep is the Figure 6 ladder of row counts.
	RowSweep []int
	// ColSweep is the Figures 7-8 ladder of column counts.
	ColSweep []int
	// Seed fixes all randomness.
	Seed uint64
}

// Quick is sized for tests and testing.B benchmarks (seconds, not minutes).
var Quick = Profile{
	Name:             "quick",
	TweetsRows:       3000,
	BioTextRows:      1500,
	DiabetesRows:     150,
	ImagesRows:       3000,
	TweetsCols:       []int{100, 280, 600},
	BioTextCols:      []int{150, 350, 500},
	DiabetesCols:     []int{100, 350, 550},
	ImagesCols:       64,
	Components:       10,
	ImagesComponents: 50,
	FailD:            300,
	MaxIter:          6,
	RowSweep:         []int{500, 4000, 32000},
	ColSweep:         []int{100, 200, 400, 700},
	Seed:             42,
}

// Full is the scale EXPERIMENTS.md reports (roughly 10³-10⁵ below the
// paper's testbed sizes; see DESIGN.md).
var Full = Profile{
	Name:             "full",
	TweetsRows:       20000,
	BioTextRows:      8000,
	DiabetesRows:     353,
	ImagesRows:       20000,
	TweetsCols:       []int{200, 600, 1500},
	BioTextCols:      []int{200, 1000, 1400},
	DiabetesCols:     []int{200, 1000, 1600},
	ImagesCols:       128,
	Components:       50,
	ImagesComponents: 50,
	FailD:            1000,
	MaxIter:          10,
	RowSweep:         []int{1000, 8000, 64000},
	ColSweep:         []int{200, 400, 800, 1200, 1600},
	Seed:             42,
}

// driverMemGB derives the simulated driver memory from FailD: two dense
// FailD x FailD float64 buffers must NOT fit (Gramian + covariance).
func (p Profile) driverMemGB() float64 {
	bytes := 2 * float64(p.FailD) * float64(p.FailD) * 8
	return bytes * 0.95 / float64(1<<30)
}

// components clamps d to the dataset dimensionality.
func (p Profile) components(dims int) int {
	d := p.Components
	if d > dims {
		d = dims
	}
	return d
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "table2", "fig7"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one line of a figure.
type Series struct {
	Name string
	X, Y []float64
	// Annotations marks special points, e.g. "FAIL" where MLlib OOMs.
	Annotations []string
}

// Figure is a plotted experiment result, rendered as data columns (the
// repository has no plotting dependency; the series are the figure).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
	Notes  []string
}

// RenderCSV writes the figure as CSV (x, then one column per series; FAIL
// points render as empty cells with the annotation in a trailing column),
// ready for any plotting tool.
func (f *Figure) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	header := f.XLabel
	for _, s := range f.Series {
		header += "," + s.Name
	}
	if _, err := fmt.Fprintln(w, header+",notes"); err != nil {
		return err
	}
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	for _, x := range xs {
		line := fmt.Sprintf("%g", x)
		note := ""
		for _, s := range f.Series {
			cell := ""
			for i := range s.X {
				if s.X[i] != x {
					continue
				}
				ann := ""
				if i < len(s.Annotations) {
					ann = s.Annotations[i]
				}
				if ann != "" {
					note = s.Name + ": " + ann
				} else {
					cell = fmt.Sprintf("%g", s.Y[i])
				}
				break
			}
			line += "," + cell
		}
		if _, err := fmt.Fprintln(w, line+","+note); err != nil {
			return err
		}
	}
	return nil
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Render writes each series as an x/y column pair.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "x = %s, y = %s%s\n", f.XLabel, f.YLabel, map[bool]string{true: " (log-x)", false: ""}[f.LogX]); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "-- %s\n", s.Name); err != nil {
			return err
		}
		for i := range s.X {
			ann := ""
			if i < len(s.Annotations) && s.Annotations[i] != "" {
				ann = "  " + s.Annotations[i]
			}
			if _, err := fmt.Fprintf(w, "   %12.4g  %12.4g%s\n", s.X[i], s.Y[i], ann); err != nil {
				return err
			}
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner executes experiments by ID.
type Runner struct {
	Profile Profile
	// Format selects the rendering: "" or "text" for aligned text, "csv"
	// for comma-separated output.
	Format string
}

// Renderable is what every experiment produces: a Table or a Figure.
type Renderable interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

// IDs lists every experiment in paper order.
func IDs() []string {
	return []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "table3", "table4", "intermediate", "frontier", "scaling", "faults", "checkpoint"}
}

// Produce executes one experiment and returns its result for rendering.
func (r Runner) Produce(id string) (Renderable, error) {
	switch id {
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "fig4":
		return r.Fig4()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "fig8":
		return r.Fig8()
	case "table3":
		return r.Table3()
	case "table4":
		return r.Table4()
	case "intermediate":
		return r.Intermediate()
	case "frontier":
		return r.Frontier()
	case "scaling":
		return r.Scaling()
	case "faults":
		return r.Faults()
	case "checkpoint":
		return r.Checkpoint()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %s, or all)",
			id, strings.Join(IDs(), ", "))
	}
}

// Run executes one experiment (or "all") and writes its rendering to w.
func (r Runner) Run(id string, w io.Writer) error {
	if id == "all" {
		for _, each := range IDs() {
			if err := r.Run(each, w); err != nil {
				return fmt.Errorf("experiments: %s: %w", each, err)
			}
		}
		return nil
	}
	out, err := r.Produce(id)
	if err != nil {
		return err
	}
	if r.Format == "csv" {
		if err := out.RenderCSV(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	return out.Render(w)
}
