package experiments

import (
	"fmt"

	"spca"
	"spca/internal/cluster"
	"spca/internal/dataset"
)

// Intermediate reproduces the §5.2 intermediate-data comparison whose
// figures the paper omits "due to space limitations" but quotes in the
// text: Mahout-PCA generates 8 GB on Bio-Text vs sPCA's 240 MB (35x), and
// 961 GB on Tweets vs sPCA's 131 MB (3,511x) — with sPCA's relative
// footprint shrinking as data grows because its job outputs are O(D·d)
// while Mahout materializes Θ(N·k) matrices.
func (r Runner) Intermediate() (*Table, error) {
	p := r.Profile
	type entry struct {
		kind dataset.Kind
		rows int
		cols int
	}
	entries := []entry{
		{dataset.KindBioText, p.BioTextRows, p.BioTextCols[1]},
		{dataset.KindTweets, p.TweetsRows, p.TweetsCols[len(p.TweetsCols)-1]},
	}

	t := &Table{
		ID:    "intermediate",
		Title: "Intermediate data generated (sPCA-MapReduce vs Mahout-PCA)",
		Headers: []string{"Dataset", "Size", "Input",
			"sPCA-MapReduce", "Mahout-PCA", "Reduction"},
		Notes: []string{
			"paper (§5.2): Bio-Text 240 MB vs 8 GB (35x); Tweets 131 MB vs 961 GB (3,511x)",
			"intermediate data counts inter-job outputs; both algorithms run the same number of rounds for a like-for-like comparison",
		},
	}

	for _, e := range entries {
		y := r.gen(e.kind, e.rows, e.cols)
		inputBytes := y.SizeBytes()

		sp, err := r.fit(spca.SPCAMapReduce, y, 0, func(c *spca.Config) { c.MaxIter = 3 })
		if err != nil {
			return nil, fmt.Errorf("intermediate %s spca: %w", e.kind, err)
		}
		mh, err := r.fit(spca.MahoutPCA, y, 0, func(c *spca.Config) { c.MaxIter = 3 })
		if err != nil {
			return nil, fmt.Errorf("intermediate %s mahout: %w", e.kind, err)
		}
		ratio := float64(mh.Metrics.MaterializedBytes) / float64(sp.Metrics.MaterializedBytes)
		t.Rows = append(t.Rows, []string{
			string(e.kind),
			fmt.Sprintf("%dx%d", e.rows, e.cols),
			cluster.FormatBytes(inputBytes),
			cluster.FormatBytes(sp.Metrics.MaterializedBytes),
			cluster.FormatBytes(mh.Metrics.MaterializedBytes),
			fmt.Sprintf("%.0fx", ratio),
		})
	}
	return t, nil
}
