package experiments

import (
	"fmt"
	"math"

	"spca"
	"spca/internal/dataset"
)

// Scaling validates Table 1's complexity formulas empirically — the content
// of the paper's companion technical report ("Analysis of PCA algorithms in
// distributed environments", [17]). For each method it measures compute ops
// and intermediate data at two scales of N or D and reports the observed
// scaling exponent (log-ratio of measurements over log-ratio of sizes) next
// to the asymptotic prediction.
//
// Sparse inputs make two predictions diverge: on bag-of-words data the
// per-row work is O(z·d) (z = non-zeros), so sPCA's ops are flat in D —
// exactly the sparsity win of §3.1 — while on dense rows the O(NDd) bound
// binds. The table measures both regimes.
func (r Runner) Scaling() (*Table, error) {
	p := r.Profile
	d := 10
	if p.Components < d {
		d = p.Components
	}

	// Two-point sweeps with a 4x ratio.
	nLo, nHi := 2000, 8000
	dLo, dHi := 100, 400
	denseRows := 220 // dense family rows (diabetes), fixed for D sweeps

	fitOnce := func(alg spca.Algorithm, y *spca.Sparse) (*spca.Result, error) {
		return r.fit(alg, y, 0, func(c *spca.Config) {
			c.Components = d
			c.MaxIter = 1
			c.Cluster.DriverMemoryGB = 64 // scaling, not failure, is measured
		})
	}
	tweetsAt := func(n int) *spca.Sparse {
		return dataset.MustGenerate(dataset.Spec{
			Kind: dataset.KindTweets, Rows: n, Cols: dLo, Rank: 4 * d, Seed: p.Seed,
		})
	}
	denseAt := func(cols int) *spca.Sparse {
		return dataset.MustGenerate(dataset.Spec{
			Kind: dataset.KindDiabetes, Rows: denseRows, Cols: cols, Seed: p.Seed,
		})
	}
	exponent := func(lo, hi int64, ratio float64) float64 {
		if lo <= 0 || hi <= 0 {
			return math.NaN()
		}
		return math.Log(float64(hi)/float64(lo)) / math.Log(ratio)
	}

	type row struct {
		method, quantity, sweep, theory string
		measured                        float64
	}
	var rows []row
	add := func(method, quantity, sweep, theory string, lo, hi int64, ratio float64) {
		rows = append(rows, row{method, quantity, sweep, theory, exponent(lo, hi, ratio)})
	}

	// --- sPCA (MapReduce path, one iteration) ---
	spLoN, err := fitOnce(spca.SPCAMapReduce, tweetsAt(nLo))
	if err != nil {
		return nil, fmt.Errorf("scaling spca nLo: %w", err)
	}
	spHiN, err := fitOnce(spca.SPCAMapReduce, tweetsAt(nHi))
	if err != nil {
		return nil, fmt.Errorf("scaling spca nHi: %w", err)
	}
	add("sPCA", "compute ops", "N x4 (sparse)", "1 (O(NDd))",
		spLoN.Metrics.ComputeOps, spHiN.Metrics.ComputeOps, 4)
	add("sPCA", "intermediate", "N x4 (sparse)", "0 (O(Dd))",
		spLoN.Metrics.MaterializedBytes, spHiN.Metrics.MaterializedBytes, 4)

	spLoD, err := fitOnce(spca.SPCAMapReduce, denseAt(dLo))
	if err != nil {
		return nil, fmt.Errorf("scaling spca dLo: %w", err)
	}
	spHiD, err := fitOnce(spca.SPCAMapReduce, denseAt(dHi))
	if err != nil {
		return nil, fmt.Errorf("scaling spca dHi: %w", err)
	}
	add("sPCA", "compute ops", "D x4 (dense)", "1 (O(NDd))",
		spLoD.Metrics.ComputeOps, spHiD.Metrics.ComputeOps, 4)
	add("sPCA", "intermediate", "D x4 (dense)", "1 (O(Dd))",
		spLoD.Metrics.MaterializedBytes, spHiD.Metrics.MaterializedBytes, 4)

	// --- Mahout-PCA (SSVD, one round) ---
	mhLo, err := fitOnce(spca.MahoutPCA, tweetsAt(nLo))
	if err != nil {
		return nil, fmt.Errorf("scaling mahout nLo: %w", err)
	}
	mhHi, err := fitOnce(spca.MahoutPCA, tweetsAt(nHi))
	if err != nil {
		return nil, fmt.Errorf("scaling mahout nHi: %w", err)
	}
	add("Mahout-PCA", "compute ops", "N x4 (sparse)", "1 (O(NDd))",
		mhLo.Metrics.ComputeOps, mhHi.Metrics.ComputeOps, 4)
	add("Mahout-PCA", "intermediate", "N x4 (sparse)", "1 (O(Nd))",
		mhLo.Metrics.MaterializedBytes, mhHi.Metrics.MaterializedBytes, 4)

	// --- MLlib-PCA (covariance + eigendecomposition) ---
	mlLo, err := fitOnce(spca.MLlibPCA, denseAt(dLo))
	if err != nil {
		return nil, fmt.Errorf("scaling mllib dLo: %w", err)
	}
	mlHi, err := fitOnce(spca.MLlibPCA, denseAt(dHi))
	if err != nil {
		return nil, fmt.Errorf("scaling mllib dHi: %w", err)
	}
	add("MLlib-PCA", "compute ops", "D x4 (dense)", "2-3 (O(ND*min(N,D)) + D^3 eig)",
		mlLo.Metrics.ComputeOps, mlHi.Metrics.ComputeOps, 4)
	add("MLlib-PCA", "intermediate", "D x4 (dense)", "2 (O(D^2))",
		mlLo.Metrics.MaterializedBytes, mlHi.Metrics.MaterializedBytes, 4)

	// --- SVD-Bidiag (TSQR pipeline) ---
	// Both sweep points use the same (tall enough) row count so the tall QR
	// is defined and only D varies.
	sbHiData := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: dHi + 20, Cols: dHi, Seed: p.Seed,
	})
	sbLoData := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: dHi + 20, Cols: dLo, Seed: p.Seed,
	})
	sbLo, err := fitOnce(spca.SVDBidiag, sbLoData)
	if err != nil {
		return nil, fmt.Errorf("scaling svdbidiag dLo: %w", err)
	}
	sbHi, err := fitOnce(spca.SVDBidiag, sbHiData)
	if err != nil {
		return nil, fmt.Errorf("scaling svdbidiag dHi: %w", err)
	}
	add("SVD-Bidiag", "compute ops", "D x4 (dense)", "2-3 (O(ND^2+D^3))",
		sbLo.Metrics.ComputeOps, sbHi.Metrics.ComputeOps, 4)

	t := &Table{
		ID:      "scaling",
		Title:   "Measured scaling exponents vs Table 1's complexity formulas",
		Headers: []string{"Method", "Quantity", "Sweep", "Theory exponent", "Measured"},
		Notes: []string{
			fmt.Sprintf("exponent = log(measure_hi/measure_lo)/log(4); one iteration/round per run, d=%d", d),
			"sparse sweeps use the Tweets family (per-row work O(z*d), so ops are ~flat in D); dense sweeps use Diabetes",
		},
	}
	for _, rw := range rows {
		t.Rows = append(t.Rows, []string{
			rw.method, rw.quantity, rw.sweep, rw.theory, fmt.Sprintf("%.2f", rw.measured),
		})
	}
	return t, nil
}
