package experiments

import (
	"fmt"

	"spca"
	"spca/internal/dataset"
)

// Table4 reproduces the speedup study (Table 4): sPCA-Spark on the Tweets
// family with 2, 4 and 8 nodes (16, 32, 64 cores). The same fixed workload
// runs at every size; the per-record scan cost is raised further for this
// experiment so that parallelizable work dominates, as it did in the
// paper's full-scale (94 GB) runs.
func (r Runner) Table4() (*Table, error) {
	p := r.Profile
	y := r.gen(dataset.KindTweets, p.TweetsRows, p.TweetsCols[len(p.TweetsCols)-1])

	var times []float64
	for _, nodes := range []int{2, 4, 8} {
		res, err := r.fit(spca.SPCASpark, y, 0, func(c *spca.Config) {
			c.Cluster.Nodes = nodes
			c.Cluster.CoresPerNode = 8
			c.Cluster.RecordCostSec = 0.2 // compute-dominated regime (see note)
			c.MaxIter = p.MaxIter         // fixed iterations: identical work at each size
		})
		if err != nil {
			return nil, fmt.Errorf("table4 nodes=%d: %w", nodes, err)
		}
		times = append(times, res.Metrics.SimSeconds)
	}

	t := &Table{
		ID:      "table4",
		Title:   fmt.Sprintf("Speedup of sPCA-Spark with cluster size (Tweets %dx%d)", y.R, y.C),
		Headers: []string{"", "16 cores", "32 cores", "64 cores"},
		Rows: [][]string{
			{"Running time (s)", simSeconds(times[0]), simSeconds(times[1]), simSeconds(times[2])},
			{"Speedup", "1.00",
				fmt.Sprintf("%.2f", times[0]/times[1]),
				fmt.Sprintf("%.2f", times[0]/times[2])},
		},
		Notes: []string{
			fmt.Sprintf("fixed %d EM iterations at every cluster size", p.MaxIter),
			"per-record scan cost raised so parallelizable work dominates, matching the paper's full-scale regime (DESIGN.md)",
		},
	}
	return t, nil
}
