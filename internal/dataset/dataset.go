// Package dataset generates the synthetic stand-ins for the paper's four
// evaluation datasets (Tweets, Bio-Text, Diabetes, Images). The originals are
// proprietary or far beyond laptop scale (1.26 billion tweets, 94 GB), so we
// generate matrices with the same statistical skeleton — sparsity pattern,
// column-popularity skew, planted low-rank structure, value types — at
// configurable scale. PCA behaviour (running-time scaling, accuracy curves,
// crossovers) is governed by N, D, d, sparsity and spectral decay, all of
// which these generators control; see DESIGN.md for the substitution note.
package dataset

import (
	"fmt"
	"math"

	"spca/internal/matrix"
)

// Kind identifies one of the paper's dataset families.
type Kind string

// The four dataset families of §5.
const (
	KindTweets   Kind = "tweets"   // sparse binary bag-of-words, very skewed
	KindBioText  Kind = "biotext"  // sparse binary bag-of-words, denser rows
	KindDiabetes Kind = "diabetes" // dense real-valued NMR spectra
	KindImages   Kind = "images"   // dense 128-dim SIFT-like features
)

// Spec describes a dataset instance to generate.
type Spec struct {
	Kind Kind
	Rows int
	Cols int
	// Rank is the planted latent dimensionality (topics / bumps / clusters).
	// Zero selects a family-appropriate default.
	Rank int
	Seed uint64
}

func (s Spec) String() string {
	return fmt.Sprintf("%s %dx%d (rank %d, seed %d)", s.Kind, s.Rows, s.Cols, s.Rank, s.Seed)
}

// Generate builds the dataset as a sparse CSR matrix (dense families are
// stored with all entries present). The result is deterministic in Spec.
func Generate(s Spec) (*matrix.Sparse, error) {
	if s.Rows <= 0 || s.Cols <= 0 {
		return nil, fmt.Errorf("dataset: invalid dims %dx%d", s.Rows, s.Cols)
	}
	switch s.Kind {
	case KindTweets:
		return genBagOfWords(s, 4, 12, 1.1), nil
	case KindBioText:
		return genBagOfWords(s, 20, 80, 1.05), nil
	case KindDiabetes:
		return matrix.FromDense(genSpectra(s)), nil
	case KindImages:
		return matrix.FromDense(genFeatures(s)), nil
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", s.Kind)
	}
}

// MustGenerate is Generate for known-good specs.
func MustGenerate(s Spec) *matrix.Sparse {
	m, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return m
}

func (s Spec) rank(def int) int {
	r := s.Rank
	if r <= 0 {
		r = def
	}
	if r > s.Cols {
		r = s.Cols
	}
	if r > s.Rows {
		r = s.Rows
	}
	if r < 1 {
		r = 1
	}
	return r
}

// genBagOfWords plants a topic mixture: each of `rank` topics is a Zipfian
// distribution over a topic-specific permutation of the vocabulary. A row
// picks a topic, samples between minWords and maxWords distinct words from
// it (with a small uniform background), and stores binary indicators —
// matching the Tweets/Bio-Text matrices whose elements are 0/1 word
// occurrence flags.
func genBagOfWords(s Spec, minWords, maxWords int, zipfExp float64) *matrix.Sparse {
	rng := matrix.NewRNG(s.Seed*2654435761 + 1)
	rank := s.rank(25)

	// Zipfian CDF over vocabulary ranks, shared by all topics.
	cdf := make([]float64, s.Cols)
	var total float64
	for r := 0; r < s.Cols; r++ {
		total += 1 / math.Pow(float64(r+1), zipfExp)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	sampleRank := func(rng *matrix.RNG) int {
		u := rng.Float64()
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Per-topic permutation of the vocabulary.
	perms := make([][]int, rank)
	for t := range perms {
		perms[t] = rng.Perm(s.Cols)
	}

	b := matrix.NewSparseBuilder(s.Cols)
	present := make(map[int]struct{}, maxWords)
	for i := 0; i < s.Rows; i++ {
		topic := rng.Intn(rank)
		words := minWords
		if maxWords > minWords {
			words += rng.Intn(maxWords - minWords + 1)
		}
		// Keep rows sparse and sampling fast even for tiny vocabularies:
		// drawing nearly all of a Zipfian vocabulary without replacement is
		// a heavy-tailed coupon-collector problem.
		if max := s.Cols/4 + 1; words > max {
			words = max
		}
		for k := range present {
			delete(present, k)
		}
		for len(present) < words {
			var col int
			if rng.Float64() < 0.1 {
				col = sampleRank(rng) // background: globally popular words
			} else {
				col = perms[topic][sampleRank(rng)]
			}
			present[col] = struct{}{}
		}
		idx := make([]int, 0, len(present))
		for c := range present {
			idx = append(idx, c)
		}
		sortInts(idx)
		vals := make([]float64, len(idx))
		for j := range vals {
			vals[j] = 1
		}
		b.AddRow(idx, vals)
	}
	return b.Build()
}

// genSpectra builds Diabetes-like NMR spectra: every row is a positive
// combination of `rank` shared Gaussian resonance peaks plus a smooth
// baseline and measurement noise. Rows are dense real-valued vectors.
func genSpectra(s Spec) *matrix.Dense {
	rng := matrix.NewRNG(s.Seed*0x9E3779B9 + 7)
	rank := s.rank(12)

	centers := make([]float64, rank)
	widths := make([]float64, rank)
	for b := 0; b < rank; b++ {
		centers[b] = rng.Float64() * float64(s.Cols)
		widths[b] = (0.01 + 0.03*rng.Float64()) * float64(s.Cols)
	}
	// Precompute each peak's profile across frequencies.
	profiles := matrix.NewDense(rank, s.Cols)
	for b := 0; b < rank; b++ {
		row := profiles.Row(b)
		for j := 0; j < s.Cols; j++ {
			d := (float64(j) - centers[b]) / widths[b]
			row[j] = math.Exp(-0.5 * d * d)
		}
	}

	out := matrix.NewDense(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		row := out.Row(i)
		for b := 0; b < rank; b++ {
			amp := math.Abs(2 + rng.NormFloat64())
			matrix.AXPY(amp, profiles.Row(b), row)
		}
		base := 0.2 + 0.1*rng.Float64()
		for j := range row {
			row[j] += base + 0.05*rng.NormFloat64()
		}
	}
	return out
}

// genFeatures builds Images-like SIFT descriptors: a mixture of `rank`
// Gaussian clusters in Cols dimensions with non-negative values, matching
// the dense 160M x 128 feature matrix of the paper.
func genFeatures(s Spec) *matrix.Dense {
	rng := matrix.NewRNG(s.Seed*0xC2B2AE35 + 11)
	rank := s.rank(16)

	centers := matrix.NewDense(rank, s.Cols)
	for i := range centers.Data {
		centers.Data[i] = math.Abs(rng.NormFloat64() * 4)
	}

	out := matrix.NewDense(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		c := centers.Row(rng.Intn(rank))
		row := out.Row(i)
		for j := range row {
			v := c[j] + rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
	return out
}

// Rows returns the matrix rows as a slice of sparse vectors, the record type
// the engines consume. The vectors alias the matrix storage.
func Rows(m *matrix.Sparse) []matrix.SparseVector {
	out := make([]matrix.SparseVector, m.R)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Stats summarizes a generated dataset.
type Stats struct {
	Rows, Cols int
	NNZ        int
	Density    float64
	SizeBytes  int64
}

// Describe computes summary statistics for m.
func Describe(m *matrix.Sparse) Stats {
	return Stats{
		Rows:      m.R,
		Cols:      m.C,
		NNZ:       m.NNZ(),
		Density:   m.Density(),
		SizeBytes: m.SizeBytes(),
	}
}

func sortInts(a []int) {
	// Insertion sort: word lists are tiny (<= a few hundred entries).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
