package dataset

import (
	"testing"

	"spca/internal/matrix"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Kind: KindTweets, Rows: 0, Cols: 10}); err == nil {
		t.Fatal("expected error for zero rows")
	}
	if _, err := Generate(Spec{Kind: "nope", Rows: 10, Cols: 10}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestTweetsShape(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindTweets, Rows: 500, Cols: 2000, Seed: 1})
	if m.R != 500 || m.C != 2000 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	// Binary values only.
	for _, v := range m.Vals {
		if v != 1 {
			t.Fatalf("non-binary value %v", v)
		}
	}
	// Tweets are short: 4-12 words per row.
	for i := 0; i < m.R; i++ {
		nnz := m.Row(i).NNZ()
		if nnz < 4 || nnz > 12 {
			t.Fatalf("row %d has %d words", i, nnz)
		}
	}
	// Very sparse overall.
	if m.Density() > 0.01 {
		t.Fatalf("density %v too high for tweets", m.Density())
	}
}

func TestBioTextDenserThanTweets(t *testing.T) {
	tw := MustGenerate(Spec{Kind: KindTweets, Rows: 300, Cols: 1000, Seed: 2})
	bt := MustGenerate(Spec{Kind: KindBioText, Rows: 300, Cols: 1000, Seed: 2})
	if bt.Density() <= tw.Density() {
		t.Fatalf("biotext density %v <= tweets %v", bt.Density(), tw.Density())
	}
}

func TestColumnPopularitySkew(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindTweets, Rows: 2000, Cols: 500, Seed: 3})
	counts := make([]int, m.C)
	for _, c := range m.Cols {
		counts[c]++
	}
	// Zipfian skew: the most popular column should dwarf the median.
	max, nonzero := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	if max < 50 {
		t.Fatalf("max column count %d — no popular words?", max)
	}
	if nonzero < 100 {
		t.Fatalf("only %d columns ever used", nonzero)
	}
}

func TestDiabetesDenseAndPositiveStructure(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindDiabetes, Rows: 50, Cols: 400, Seed: 4})
	if m.R != 50 || m.C != 400 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	if m.Density() < 0.99 {
		t.Fatalf("diabetes spectra should be dense, density %v", m.Density())
	}
	// Real values, not binary.
	binary := true
	for _, v := range m.Vals[:100] {
		if v != 0 && v != 1 {
			binary = false
			break
		}
	}
	if binary {
		t.Fatal("diabetes values look binary")
	}
}

func TestDiabetesLowRankStructure(t *testing.T) {
	spec := Spec{Kind: KindDiabetes, Rows: 60, Cols: 300, Rank: 5, Seed: 5}
	m := MustGenerate(spec)
	d := m.Dense()
	centered := d.SubRowVec(d.ColMeans())
	_, s, _ := matrix.SVD(centered)
	// Planted rank 5: the 6th singular value should be far below the 1st.
	if s[5] > 0.25*s[0] {
		t.Fatalf("no low-rank structure: s0=%v s5=%v", s[0], s[5])
	}
}

func TestImagesShape(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindImages, Rows: 200, Cols: 128, Seed: 6})
	if m.R != 200 || m.C != 128 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	// Non-negative (SIFT-like) values.
	for _, v := range m.Vals {
		if v < 0 {
			t.Fatalf("negative feature %v", v)
		}
	}
	if m.Density() < 0.5 {
		t.Fatalf("images should be dense-ish, density %v", m.Density())
	}
}

func TestImagesClusterStructure(t *testing.T) {
	spec := Spec{Kind: KindImages, Rows: 300, Cols: 64, Rank: 4, Seed: 7}
	m := MustGenerate(spec).Dense()
	centered := m.SubRowVec(m.ColMeans())
	_, s, _ := matrix.SVD(centered)
	// 4 clusters -> ~3 dominant directions after centering.
	if s[3] < 2*s[10] {
		// The top few singular values should dominate the bulk.
		t.Logf("spectrum head %v", s[:6])
	}
	if s[0] < 3*s[10] {
		t.Fatalf("no cluster structure: s0=%v s10=%v", s[0], s[10])
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []Kind{KindTweets, KindBioText, KindDiabetes, KindImages} {
		a := MustGenerate(Spec{Kind: kind, Rows: 40, Cols: 60, Seed: 99})
		b := MustGenerate(Spec{Kind: kind, Rows: 40, Cols: 60, Seed: 99})
		if a.Dense().MaxAbsDiff(b.Dense()) != 0 {
			t.Fatalf("%s not deterministic", kind)
		}
		c := MustGenerate(Spec{Kind: kind, Rows: 40, Cols: 60, Seed: 100})
		if a.Dense().MaxAbsDiff(c.Dense()) == 0 {
			t.Fatalf("%s ignores seed", kind)
		}
	}
}

func TestRankClamping(t *testing.T) {
	// Rank larger than dims must not panic.
	m := MustGenerate(Spec{Kind: KindTweets, Rows: 10, Cols: 20, Rank: 500, Seed: 1})
	if m.R != 10 {
		t.Fatal("bad dims")
	}
}

func TestRowsHelper(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindTweets, Rows: 25, Cols: 100, Seed: 8})
	rows := Rows(m)
	if len(rows) != 25 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Len != 100 {
			t.Fatalf("row %d len %d", i, r.Len)
		}
		if r.NNZ() != m.Row(i).NNZ() {
			t.Fatalf("row %d nnz mismatch", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	m := MustGenerate(Spec{Kind: KindTweets, Rows: 30, Cols: 50, Seed: 9})
	st := Describe(m)
	if st.Rows != 30 || st.Cols != 50 || st.NNZ != m.NNZ() {
		t.Fatalf("stats %+v", st)
	}
	if st.Density <= 0 || st.SizeBytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Kind: KindTweets, Rows: 1, Cols: 2, Rank: 3, Seed: 4}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
