package ppca

import (
	"fmt"

	"spca/internal/matrix"
)

// FitStream runs the PPCA EM algorithm over a row source — typically a
// disk-resident matrix streamed one row at a time — so inputs far larger
// than memory can be fitted on a single machine. Each EM iteration makes
// two sequential passes over the source (the consolidated YtX pass and the
// ss3 pass), mirroring sPCA's two distributed jobs; memory use is O(D·d)
// regardless of N.
//
// The reconstruction-error metric is computed on a row sample captured
// during the first pass. TargetAccuracy/IdealError are not supported in
// streaming mode (computing the ideal error needs a Lanczos solver with
// dozens of passes); stopping is by Tol and MaxIter.
func FitStream(src matrix.RowSource, opt Options) (*Result, error) {
	n, dims := src.Dims()
	if err := opt.validate(n, dims); err != nil {
		return nil, err
	}
	if opt.TargetAccuracy > 0 {
		return nil, fmt.Errorf("ppca: TargetAccuracy is not supported in streaming mode (stop by Tol/MaxIter)")
	}

	// Pass 0: column means, Frobenius norm (Algorithm 3 streamed), and the
	// error-metric row sample, all in one scan.
	mean := make([]float64, dims)
	var count float64
	if err := src.Scan(func(i int, row matrix.SparseVector) error {
		for k, j := range row.Indices {
			mean[j] += row.Values[k]
		}
		count++
		return nil
	}); err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("ppca: stream source yielded no rows")
	}
	matrix.VecScale(1/count, mean)

	var msum float64
	for _, mv := range mean {
		msum += mv * mv
	}
	sampleWant := sampleIdx(n, opt.sampleRows(), opt.Seed)
	sampleSet := make(map[int]int, len(sampleWant))
	for k, i := range sampleWant {
		sampleSet[i] = k
	}
	sampleBuilder := matrix.NewSparseBuilder(dims)
	nextSample := 0
	ss1 := msum * count
	if err := src.Scan(func(i int, row matrix.SparseVector) error {
		for k, j := range row.Indices {
			v := row.Values[k]
			d := v - mean[j]
			ss1 += d*d - mean[j]*mean[j]
		}
		if nextSample < len(sampleWant) && sampleWant[nextSample] == i {
			sampleBuilder.AddRow(append([]int(nil), row.Indices...), append([]float64(nil), row.Values...))
			nextSample++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sample := sampleBuilder.Build()
	sampleRows := make([]int, sample.R)
	for i := range sampleRows {
		sampleRows[i] = i
	}

	em := newEMDriver(opt, n, dims, mean, ss1)
	res := &Result{Mean: mean}
	d := em.d
	xi := make([]float64, d)
	ct := make([]float64, d)
	// The pass sums are hoisted out of the iteration loop and zeroed in place
	// each iteration (legacy per-iteration allocation kept for A/B runs).
	var pooled jobSums
	if reuseScratch {
		pooled = newJobSums(dims, d)
	}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		if err := em.prepare(); err != nil {
			return nil, err
		}
		// Pass 1 of the iteration: consolidated YtX/XtX/ΣX.
		var sums jobSums
		if reuseScratch {
			sums = pooled
			sums.ytx.Zero()
			sums.xtx.Zero()
			for k := range sums.sumX {
				sums.sumX[k] = 0
			}
		} else {
			sums = newJobSums(dims, d)
		}
		if err := src.Scan(func(i int, row matrix.SparseVector) error {
			computeLatentRow(row, em, xi)
			for k, j := range row.Indices {
				matrix.AXPY(row.Values[k], xi, sums.ytx.Row(j))
			}
			matrix.OuterAdd(sums.xtx, xi, xi)
			matrix.AXPY(1, xi, sums.sumX)
			return nil
		}); err != nil {
			return nil, err
		}
		cNew, err := em.update(sums)
		if err != nil {
			return nil, err
		}
		// Pass 2: ss3 with the new C.
		var ss3 float64
		if err := src.Scan(func(i int, row matrix.SparseVector) error {
			computeLatentRow(row, em, xi)
			for k := range ct {
				ct[k] = 0
			}
			for k, j := range row.Indices {
				matrix.AXPY(row.Values[k], cNew.Row(j), ct)
			}
			ss3 += matrix.Dot(xi, ct)
			return nil
		}); err != nil {
			return nil, err
		}
		em.finishVariance(ss3)

		e := em.reconError(sample, sampleRows)
		res.History = append(res.History, IterationStat{
			Iter: iter, Err: e, SS: em.ss,
		})
		if opt.converged(res.History) {
			break
		}
	}
	res.Components = em.c
	res.SS = em.ss
	res.Iterations = len(res.History)
	return res, nil
}
