package ppca

import (
	"fmt"

	"spca/internal/cluster"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// FitStream runs the PPCA EM algorithm over a row source — typically a
// disk-resident matrix streamed one row at a time — so inputs far larger
// than memory can be fitted on a single machine. Each EM iteration makes
// two sequential passes over the source (the consolidated YtX pass and the
// ss3 pass), mirroring sPCA's two distributed jobs; memory use is O(D·d)
// regardless of N.
//
// The reconstruction-error metric is computed on a row sample captured
// during the first pass. TargetAccuracy/IdealError are not supported in
// streaming mode (computing the ideal error needs a Lanczos solver with
// dozens of passes); stopping is by Tol and MaxIter.
func FitStream(src matrix.RowSource, opt Options) (*Result, error) {
	n, dims := src.Dims()
	if err := opt.validate(n, dims); err != nil {
		return nil, err
	}
	if opt.TargetAccuracy > 0 {
		return nil, fmt.Errorf("ppca: TargetAccuracy is not supported in streaming mode (stop by Tol/MaxIter)")
	}
	if tr := opt.Tracer; tr != nil {
		// No simulated cluster: the trace carries structure (iterations,
		// events) with all timestamps at zero.
		tr.Begin("FitStream", trace.KindFit,
			trace.I("rows", int64(n)), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}

	// Pass 0: column means, Frobenius norm (Algorithm 3 streamed), and the
	// error-metric row sample, all in one scan.
	mean := make([]float64, dims)
	var count float64
	if err := src.Scan(func(i int, row matrix.SparseVector) error {
		for k, j := range row.Indices {
			mean[j] += row.Values[k]
		}
		count++
		return nil
	}); err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("ppca: stream source yielded no rows")
	}
	matrix.VecScale(1/count, mean)

	var msum float64
	for _, mv := range mean {
		msum += mv * mv
	}
	sampleWant := sampleIdx(n, opt.sampleRows(), opt.Seed)
	sampleSet := make(map[int]int, len(sampleWant))
	for k, i := range sampleWant {
		sampleSet[i] = k
	}
	sampleBuilder := matrix.NewSparseBuilder(dims)
	nextSample := 0
	ss1 := msum * count
	if err := src.Scan(func(i int, row matrix.SparseVector) error {
		for k, j := range row.Indices {
			v := row.Values[k]
			d := v - mean[j]
			ss1 += d*d - mean[j]*mean[j]
		}
		if nextSample < len(sampleWant) && sampleWant[nextSample] == i {
			sampleBuilder.AddRow(append([]int(nil), row.Indices...), append([]float64(nil), row.Values...))
			nextSample++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sample := sampleBuilder.Build()
	sampleRows := make([]int, sample.R)
	for i := range sampleRows {
		sampleRows[i] = i
	}

	em := newEMDriver(opt, n, dims, mean, ss1)
	res := &Result{}
	if snap := opt.Resume; snap != nil {
		// Streaming resume: pass 0 above is re-run (the sample capture needs
		// a scan regardless, and its mean/ss1 are bit-identical to the
		// snapshot's), then the model/guard/history state is restored.
		if err := snap.Validate(n, dims, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		res.Metrics = snap.Metrics
		res.Metrics.DriverRestarts++
		em.restore(snap, res)
	} else if opt.Incarnation > 0 {
		res.Metrics.DriverRestarts++
	}
	res.Mean = mean

	d := em.d
	// The pass sums are hoisted out of the iteration loop and zeroed in place
	// each iteration (legacy per-iteration allocation kept for A/B runs).
	var pooled jobSums
	if reuseScratch {
		pooled = newJobSums(dims, d)
	}
	e := &streamEngine{
		src: src, dims: dims, pooled: pooled,
		sample: sample, sampleRows: sampleRows,
		xi: make([]float64, d), ct: make([]float64, d),
	}
	if err := runEM(em, opt, e, res); err != nil {
		return nil, err
	}
	return res, nil
}

// streamEngine adapts the two streaming passes to the shared guarded EM
// loop. Like the local engine it has no simulated cluster; the error metric
// runs on the row sample captured during pass 0.
type streamEngine struct {
	src        matrix.RowSource
	dims       int
	pooled     jobSums
	sample     *matrix.Sparse
	sampleRows []int
	xi, ct     []float64
}

func (e *streamEngine) cluster() *cluster.Cluster { return nil }
func (e *streamEngine) faultEpoch() int64         { return 0 }
func (e *streamEngine) prepared(*emDriver)        {}

func (e *streamEngine) pass(em *emDriver) (jobSums, error) {
	// Consolidated YtX/XtX/ΣX in one sequential scan.
	var sums jobSums
	if reuseScratch {
		sums = e.pooled
		sums.ytx.Zero()
		sums.xtx.Zero()
		for k := range sums.sumX {
			sums.sumX[k] = 0
		}
	} else {
		sums = newJobSums(e.dims, em.d)
	}
	xi := e.xi
	if err := e.src.Scan(func(i int, row matrix.SparseVector) error {
		computeLatentRow(row, em, xi)
		for k, j := range row.Indices {
			matrix.AXPY(row.Values[k], xi, sums.ytx.Row(j))
		}
		matrix.OuterAdd(sums.xtx, xi, xi)
		matrix.AXPY(1, xi, sums.sumX)
		return nil
	}); err != nil {
		return jobSums{}, err
	}
	return sums, nil
}

func (e *streamEngine) solved(*emDriver, *matrix.Dense) {}

func (e *streamEngine) ss3(em *emDriver, cNew *matrix.Dense) (float64, error) {
	var ss3 float64
	xi, ct := e.xi, e.ct
	if err := e.src.Scan(func(i int, row matrix.SparseVector) error {
		computeLatentRow(row, em, xi)
		for k := range ct {
			ct[k] = 0
		}
		for k, j := range row.Indices {
			matrix.AXPY(row.Values[k], cNew.Row(j), ct)
		}
		ss3 += matrix.Dot(xi, ct)
		return nil
	}); err != nil {
		return 0, err
	}
	return ss3, nil
}

func (e *streamEngine) reconErr(em *emDriver) float64 {
	return em.reconError(e.sample, e.sampleRows)
}
