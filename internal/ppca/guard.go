package ppca

// Durability and numerical guards for the EM driver. This file holds the
// shared guarded iteration loop all four engines run on (runEM + emEngine),
// the non-finite and divergence detectors, the deterministic escalating-ridge
// retry for the d×d SPD solves, and the checkpoint write/restore glue. See
// DESIGN.md "Durability & numerical guards".

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// ErrNumericalBreakdown is the sentinel every numerical-guard failure wraps:
// a non-finite value in the model state, or a solve that stays singular after
// the bounded ridge escalation.
var ErrNumericalBreakdown = errors.New("ppca: numerical breakdown")

// BreakdownError reports which quantity went non-finite and at which EM
// iteration, so a failed long run is diagnosable without a debugger.
type BreakdownError struct {
	Iter     int    // 1-based EM iteration that produced the bad value
	Quantity string // "components" or "noise variance"
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("ppca: non-finite %s after iteration %d", e.Quantity, e.Iter)
}

func (e *BreakdownError) Unwrap() error { return ErrNumericalBreakdown }

// CheckpointSpec configures periodic driver snapshots. The zero value
// disables checkpointing entirely: no files, no simulated charges, and runs
// stay byte-identical to a build without the subsystem.
type CheckpointSpec struct {
	// Interval writes a snapshot after every Interval-th EM iteration.
	Interval int
	// Dir is the directory snapshot files are written to (created if absent).
	Dir string
	// Keep bounds how many snapshot generations are retained after each
	// write: 0 means checkpoint.DefaultKeep, negative means unlimited.
	// Keeping more than one generation is what lets a resume fall back past
	// a corrupt newest snapshot.
	Keep int
}

// Enabled reports whether snapshots will be written.
func (c CheckpointSpec) Enabled() bool { return c.Interval > 0 && c.Dir != "" }

// maxRidgeRetries bounds the reactive ridge escalation on a singular solve.
// Past it the input is genuinely unrecoverable and ErrSingular propagates.
const maxRidgeRetries = 6

// emEngine abstracts the per-iteration distributed work of one engine, so
// the guarded EM loop (runEM) is written once and shared by the MapReduce,
// Spark, local, and streaming fits. Driver-side math stays in emDriver; the
// engine supplies the data passes and the cost-model charges around them.
type emEngine interface {
	// prepared charges broadcasting the iteration's CM to the workers.
	prepared(em *emDriver)
	// pass runs the consolidated YtX/XtX/ΣX pass over the data.
	pass(em *emDriver) (jobSums, error)
	// solved charges the driver-side M-step math and broadcasting the new C.
	solved(em *emDriver, cNew *matrix.Dense)
	// ss3 runs the variance pass with the new C.
	ss3(em *emDriver, cNew *matrix.Dense) (float64, error)
	// reconErr computes the sampled reconstruction error of the current model.
	reconErr(em *emDriver) float64
	// cluster returns the simulated cluster, or nil for single-machine fits.
	cluster() *cluster.Cluster
	// faultEpoch reports the engine's fault-decision cursor (job sequence /
	// action epoch) for checkpoints, so a resumed driver replays the same
	// task-fault draws. Zero for single-machine engines.
	faultEpoch() int64
}

// runEM is the guarded EM iteration loop shared by all four engines. Each
// iteration runs prepare → pass → update → ss3 → finishVariance exactly as
// the per-engine loops used to, then layers on the durability and numerical
// guards: a non-finite scan of the model state, divergence detection with
// rollback to the best snapshot, the periodic checkpoint write, and the
// scheduled driver-crash injection. The convergence check runs at the top of
// the loop so a run resumed from a snapshot taken at its converged iteration
// stops immediately instead of iterating past the uninterrupted run.
func runEM(em *emDriver, opt Options, eng emEngine, res *Result) error {
	cl := eng.cluster()
	for iter := em.startIter; iter <= opt.MaxIter; iter++ {
		if opt.converged(res.History) {
			break
		}
		// Entry poll: a context canceled before (or between) iterations is
		// observed here, with iter-1 iterations completed and the driver
		// state exactly at that boundary.
		if cause := opt.Interrupt.Err(); cause != nil {
			return em.abortRun(iter-1, cause, opt, res, cl, eng.faultEpoch(), true)
		}
		if err := runEMIter(em, opt, eng, res, cl, iter); err != nil {
			if cluster.IsInterrupt(err) {
				// An engine phase caught the interrupt mid-iteration. The
				// current iteration is abandoned — driver state may be
				// mid-update, so no fresh snapshot is written; a resume
				// redoes the abandoned iteration from the last periodic
				// snapshot, deterministically.
				return em.abortRun(iter-1, err, opt, res, cl, eng.faultEpoch(), false)
			}
			return err
		}
		// Boundary poll: the iteration (including its periodic checkpoint and
		// observer callbacks) finished — this is the deterministic abort point
		// the chaos suite cancels at. Checked before Progress so a stall that
		// opened during the iteration's driver-side tail is still observed.
		if cause := opt.Interrupt.Err(); cause != nil {
			return em.abortRun(iter, cause, opt, res, cl, eng.faultEpoch(), true)
		}
		opt.Interrupt.Progress()
	}
	res.Components = em.c
	res.SS = em.ss
	res.Iterations = len(res.History)
	if cl != nil {
		res.Metrics = cl.Metrics()
		res.Phases = cluster.Summarize(cl.PhaseLog(), cl.Config())
	}
	return nil
}

// runEMIter is one guarded EM iteration, factored out so the iteration span
// brackets exactly the work of the iteration (including its checkpoint write)
// on every exit path.
func runEMIter(em *emDriver, opt Options, eng emEngine, res *Result, cl *cluster.Cluster, iter int) (err error) {
	tr := opt.Tracer
	if tr != nil {
		tr.Begin("iteration", trace.KindIteration, trace.I("iter", int64(iter)))
		defer func() {
			if err != nil {
				tr.End(trace.I("aborted", 1))
				return
			}
			last := res.History[len(res.History)-1]
			tr.End(trace.F("err", last.Err), trace.F("ss", last.SS))
		}()
	}
	if err := em.prepare(); err != nil {
		return err
	}
	eng.prepared(em)
	sums, err := eng.pass(em)
	if err != nil {
		return err
	}
	cNew, err := em.update(sums)
	if err != nil {
		return err
	}
	eng.solved(em, cNew)
	ss3raw, err := eng.ss3(em, cNew)
	if err != nil {
		return err
	}
	em.finishVariance(ss3raw)
	if err := em.checkFinite(iter); err != nil {
		return err
	}

	e := eng.reconErr(em)
	stat := IterationStat{
		Iter:         iter,
		Err:          e,
		Accuracy:     opt.accuracyOf(e),
		SS:           em.ss,
		Ridge:        em.lastRidge,
		RidgeRetries: em.iterRidgeRetries,
	}
	em.iterRidgeRetries = 0
	if cl != nil {
		stat.SimSeconds = cl.Metrics().SimSeconds
	}
	em.observeDivergence(&stat, opt, res.History)
	res.History = append(res.History, stat)
	if tr != nil {
		tr.IterationDone(trace.Iteration{
			Iter: stat.Iter, Err: stat.Err, Accuracy: stat.Accuracy, SS: stat.SS,
			SimSeconds: stat.SimSeconds, Ridge: stat.Ridge,
			RidgeRetries: stat.RidgeRetries, Rollback: stat.Rollback,
		})
	}

	if opt.Checkpoint.Enabled() && iter%opt.Checkpoint.Interval == 0 {
		if err := em.writeCheckpoint(iter, opt, res, cl, eng.faultEpoch()); err != nil {
			return err
		}
	}
	if opt.Faults.DriverCrashAt(iter, opt.Incarnation) {
		crash := &cluster.DriverCrashError{Iter: iter, Incarnation: opt.Incarnation}
		if cl != nil {
			crash.SimSeconds = cl.Metrics().SimSeconds
		}
		if tr != nil {
			tr.Event("driver-crash",
				trace.I("iter", int64(iter)), trace.I("incarnation", int64(opt.Incarnation)))
		}
		return crash
	}
	return nil
}

// abortRun converts an observed interrupt into a resumable *cluster.AbortError.
// last is the number of fully completed EM iterations; atBoundary reports
// whether the driver state is exactly the post-iteration-last state (true for
// the runEM boundary polls, false when an engine phase unwound mid-iteration).
// Only a boundary abort may flush a fresh snapshot — mid-iteration state is
// not a valid model — and the flush charges nothing to the simulated cluster,
// so a resumed run's clock and trajectory stay bit-identical to an
// uninterrupted one.
func (em *emDriver) abortRun(last int, cause error, opt Options, res *Result, cl *cluster.Cluster, epoch int64, atBoundary bool) error {
	ab := &cluster.AbortError{Iter: last, Cause: cause, SimSeconds: snapMetrics(cl, res).SimSeconds}
	if errors.Is(cause, cluster.ErrStalled) {
		ab.Diagnostic = cl.StallDiagnostic()
	}
	if opt.Checkpoint.Enabled() {
		switch {
		case last > 0 && last%opt.Checkpoint.Interval == 0:
			// The periodic write at this boundary already covers it (either
			// written this incarnation or the snapshot this run resumed from).
			ab.Checkpointed = true
		case atBoundary && last > 0:
			if err := em.writeFinalCheckpoint(last, opt, res, cl, epoch); err != nil {
				opt.Tracer.Event("final-checkpoint-failed", trace.I("iter", int64(last)))
			} else {
				ab.Checkpointed = true
			}
		default:
			// Abandoned iteration: the newest periodic snapshot (or the one
			// this run resumed from) is the resume point, if any exists.
			ab.Checkpointed = last >= opt.Checkpoint.Interval || opt.Resume != nil
		}
	}
	ck := int64(0)
	if ab.Checkpointed {
		ck = 1
	}
	opt.Tracer.Event(cluster.AbortEventName(cause), trace.I("iter", int64(last)), trace.I("checkpointed", ck))
	return ab
}

// Final-snapshot flush retry bounds. This write is the run's last chance to
// preserve progress before unwinding, so transient real-I/O failures are
// retried with exponential backoff (real time — the simulated clock is
// never involved in abort handling).
const (
	finalSaveRetries = 3
	finalSaveBackoff = 25 * time.Millisecond
)

// writeFinalCheckpoint flushes an out-of-interval snapshot at an abort
// boundary. Unlike the periodic writeCheckpoint it charges NOTHING to the
// simulated cluster: the uninterrupted run never pays for this write, and the
// snapshot's embedded metrics must equal the boundary state exactly so a
// resume continues bit-identically.
func (em *emDriver) writeFinalCheckpoint(iter int, opt Options, res *Result, cl *cluster.Cluster, epoch int64) error {
	snap := em.buildSnapshot(iter, opt, res, epoch)
	snap.Metrics = snapMetrics(cl, res)
	var err error
	backoff := finalSaveBackoff
	for attempt := 0; attempt <= finalSaveRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if _, err = checkpoint.Save(opt.Checkpoint.Dir, snap); err == nil {
			opt.Tracer.Event("final-checkpoint",
				trace.I("iter", int64(iter)), trace.I("retries", int64(attempt)))
			if opt.Checkpoint.Keep >= 0 {
				if perr := checkpoint.Prune(opt.Checkpoint.Dir, opt.Checkpoint.Keep); perr != nil {
					return fmt.Errorf("ppca: pruning checkpoints at abort: %w", perr)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("ppca: final checkpoint at iteration %d failed after %d retries: %w",
		iter, finalSaveRetries, err)
}

// checkFinite scans the model state after an iteration. EM cannot recover
// once NaN/Inf enters C or ss — every later iteration is poisoned — so the
// loop fails fast with iteration context instead of running to MaxIter and
// returning garbage.
func (em *emDriver) checkFinite(iter int) error {
	for _, v := range em.c.Data {
		// v != v catches NaN; the comparisons catch ±Inf without math.Abs.
		if v != v || v > maxFinite || v < -maxFinite {
			return &BreakdownError{Iter: iter, Quantity: "components"}
		}
	}
	if em.ss != em.ss || em.ss > maxFinite || em.ss < 0 {
		return &BreakdownError{Iter: iter, Quantity: "noise variance"}
	}
	return nil
}

const maxFinite = 1.7976931348623157e308 // math.MaxFloat64, inlined for the hot scan

// observeDivergence updates the divergence guard after an iteration: the
// rising-error counter, the best-model snapshot, and — when the error has
// risen DivergeWindow consecutive iterations — the rollback. A rollback
// restores the best components/variance seen so far and escalates the
// standing ridge applied to subsequent M-step solves, damping the update
// that caused the divergence; the iteration's stat keeps the diverged error
// (it is what the run actually produced) with Rollback set.
func (em *emDriver) observeDivergence(stat *IterationStat, opt Options, hist []IterationStat) {
	if opt.DivergeWindow <= 0 {
		return
	}
	if len(hist) > 0 && stat.Err > hist[len(hist)-1].Err {
		em.rising++
	} else {
		em.rising = 0
	}
	if em.haveBest && em.rising >= opt.DivergeWindow {
		copy(em.c.Data, em.bestC.Data)
		em.ss = em.bestSS
		em.ridgeLevel++
		em.rising = 0
		stat.Rollback = true
		return
	}
	if !em.haveBest || stat.Err < em.bestErr {
		em.haveBest = true
		em.bestErr = stat.Err
		em.bestSS = em.ss
		em.bestIter = stat.Iter
		copy(em.bestC.Data, em.c.Data)
	}
}

// ridgeScale is the problem-relative unit of ridge regularization: the mean
// diagonal magnitude of the matrix being stabilized, with a floor of 1 so a
// pathological all-zero matrix still gets a non-zero ridge.
func ridgeScale(a *matrix.Dense) float64 {
	var tr float64
	for i := 0; i < a.R; i++ {
		v := a.Data[i*a.C+i]
		if v < 0 {
			v = -v
		}
		tr += v
	}
	s := tr / float64(a.R)
	if !(s > 0) || s > maxFinite {
		return 1
	}
	return s
}

// pow10 is an exact-loop 10^k for small non-negative k (deterministic, no
// libm dependency in the bit-identity path).
func pow10(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= 10
	}
	return v
}

func addDiag(a *matrix.Dense, lam float64) {
	for i := 0; i < a.R; i++ {
		a.Data[i*a.C+i] += lam
	}
}

// solveGuarded is the guarded M-step solve xtx·Cᵀ = ytxᵀ into dst. The
// standing ridge from divergence rollbacks (level ≥ 1) is applied up front;
// a solve that still returns ErrSingular is retried with a deterministic
// escalating reactive ridge, bounded by maxRidgeRetries, every retry counted
// into the iteration's History entry. xtx is driver-owned scratch and is
// mutated by the ridge additions; SolveSPDInto itself never writes to it.
func (em *emDriver) solveGuarded(xtx, ytx, dst *matrix.Dense, ws *matrix.SPDWorkspace) error {
	em.lastRidge = 0
	if em.ridgeLevel > 0 {
		lam := ridgeScale(xtx) * 1e-6 * pow10(em.ridgeLevel-1)
		addDiag(xtx, lam)
		em.lastRidge = lam
	}
	base := 0.0
	for attempt := 0; ; attempt++ {
		err := matrix.SolveSPDInto(xtx, ytx, dst, ws)
		if err == nil {
			return nil
		}
		if !errors.Is(err, matrix.ErrSingular) || attempt >= maxRidgeRetries {
			return fmt.Errorf("ppca: XtX solve failed after %d ridge retries: %w (%w)", attempt, err, ErrNumericalBreakdown)
		}
		if base == 0 {
			base = ridgeScale(xtx) * 1e-10
		}
		lam := base * pow10(attempt)
		addDiag(xtx, lam)
		em.lastRidge += lam
		em.iterRidgeRetries++
	}
}

// currentMetrics returns the accounting the next checkpoint should embed:
// the cluster's metrics for engine fits, the locally accumulated Result
// metrics for single-machine fits.
func snapMetrics(cl *cluster.Cluster, res *Result) cluster.Metrics {
	if cl != nil {
		return cl.Metrics()
	}
	return res.Metrics
}

// writeCheckpoint charges and writes one driver snapshot. The simulated cost
// uses the modeled binary size (Snapshot.CostBytes), which depends only on
// the state shapes — never on the metric values being serialized — so the
// charge is bit-identical between an uninterrupted run and a crashed+resumed
// one. The charge lands before the snapshot's Metrics are captured: on
// resume the clock restores to the post-write value, exactly what the
// uninterrupted run's clock reads going into the next iteration.
func (em *emDriver) writeCheckpoint(iter int, opt Options, res *Result, cl *cluster.Cluster, epoch int64) error {
	snap := em.buildSnapshot(iter, opt, res, epoch)
	cost := snap.CostBytes()
	if cl != nil {
		cl.ChargeCheckpoint(cost) // emits the checkpoint span itself
	} else {
		res.Metrics.CheckpointBytes += cost
		opt.Tracer.Event("checkpoint", trace.I("checkpoint_bytes", cost))
	}
	snap.Metrics = snapMetrics(cl, res)
	if _, err := checkpoint.Save(opt.Checkpoint.Dir, snap); err != nil {
		return fmt.Errorf("ppca: writing checkpoint at iteration %d: %w", iter, err)
	}
	if err := injectSnapshotFault(opt, iter, snap.Bytes); err != nil {
		return fmt.Errorf("ppca: injecting checkpoint fault at iteration %d: %w", iter, err)
	}
	if opt.Checkpoint.Keep >= 0 {
		if err := checkpoint.Prune(opt.Checkpoint.Dir, opt.Checkpoint.Keep); err != nil {
			return fmt.Errorf("ppca: pruning checkpoints at iteration %d: %w", iter, err)
		}
	}
	return nil
}

// buildSnapshot assembles the driver's current boundary state into a
// checkpoint snapshot (metrics are filled in by the caller, which decides
// whether the write is charged to the simulated cluster first).
func (em *emDriver) buildSnapshot(iter int, opt Options, res *Result, epoch int64) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Iter: iter,
		N:    em.n, Dims: em.dims, D: em.d, Seed: opt.Seed,
		FaultEpoch: epoch,
		SS:         em.ss, SS1: em.ss1,
		Mean: em.mean, C: em.c,
		RidgeLevel: em.ridgeLevel, Rising: em.rising,
	}
	if em.haveBest {
		snap.Best = &checkpoint.BestState{Iter: em.bestIter, Err: em.bestErr, SS: em.bestSS, C: em.bestC}
	}
	snap.History = make([]checkpoint.HistoryEntry, len(res.History))
	for i, h := range res.History {
		snap.History[i] = checkpoint.HistoryEntry{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SS: h.SS,
			SimSeconds: h.SimSeconds, Ridge: h.Ridge,
			RidgeRetries: h.RidgeRetries, Rollback: h.Rollback,
		}
	}
	return snap
}

// injectSnapshotFault damages the just-written snapshot file when the fault
// plan says this generation is the unlucky one: either a torn write
// (truncation, as if the process died mid-flush of a non-atomic writer) or a
// flipped bit at a plan-derived offset. The damage is to the file only — the
// in-memory driver state and simulated clock are untouched, so the run
// continues exactly as if the write had succeeded, and only a later resume
// discovers (and quarantines) the bad generation.
func injectSnapshotFault(opt Options, iter int, size int64) error {
	if !opt.Faults.SnapshotCorrupt(iter) {
		return nil
	}
	path := filepath.Join(opt.Checkpoint.Dir, checkpoint.FileName(iter))
	torn := opt.Faults.SnapshotTorn(iter)
	off := opt.Faults.CorruptOffset("ckpt", iter, size)
	kind := int64(0)
	if torn {
		kind = 1
	}
	opt.Tracer.Event("checkpoint-corrupted",
		trace.I("iter", int64(iter)), trace.I("torn", kind), trace.I("offset", off))
	return checkpoint.Corrupt(path, torn, off)
}

// restore loads a validated snapshot into the driver: model state, guard
// state, and the completed history. The caller is responsible for restoring
// cluster metrics and charging the restore (the engines do it differently).
func (em *emDriver) restore(snap *checkpoint.Snapshot, res *Result) {
	copy(em.c.Data, snap.C.Data)
	em.ss = snap.SS
	em.ridgeLevel = snap.RidgeLevel
	em.rising = snap.Rising
	if snap.Best != nil {
		em.haveBest = true
		em.bestErr = snap.Best.Err
		em.bestSS = snap.Best.SS
		em.bestIter = snap.Best.Iter
		if em.bestC == nil {
			em.bestC = matrix.NewDense(em.dims, em.d)
		}
		copy(em.bestC.Data, snap.Best.C.Data)
	}
	res.History = res.History[:0]
	for _, h := range snap.History {
		res.History = append(res.History, IterationStat{
			Iter: h.Iter, Err: h.Err, Accuracy: h.Accuracy, SS: h.SS,
			SimSeconds: h.SimSeconds, Ridge: h.Ridge,
			RidgeRetries: h.RidgeRetries, Rollback: h.Rollback,
		})
	}
	em.startIter = snap.Iter + 1
}
