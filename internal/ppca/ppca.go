// Package ppca implements the paper's contribution: Probabilistic PCA
// (Tipping & Bishop's EM algorithm, Algorithm 1) and its scalable
// distributed variant sPCA (Algorithm 4/5) with the four optimizations of
// §3 — mean propagation, intermediate-data minimization via redundant
// recomputation of X and job consolidation, broadcast-style in-memory matrix
// multiplication, and the streaming sparse Frobenius norm. Each optimization
// is individually switchable so the Table 3 ablations can be reproduced.
//
// Three fit paths share the same driver-side math:
//
//   - FitLocal:     single-machine reference (Algorithm 1)
//   - FitMapReduce: sPCA on the internal/mapred engine (Algorithm 4)
//   - FitSpark:     sPCA on the internal/rdd engine (Algorithm 5)
package ppca

import (
	"errors"
	"fmt"
	"math"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/matrix"
	"spca/internal/parallel"
	"spca/internal/trace"
)

// Options configures a PPCA/sPCA fit. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// Components is d, the number of principal components to extract.
	Components int
	// MaxIter caps EM iterations (the paper limits runs to 10).
	MaxIter int
	// Tol stops iterating when the relative change in reconstruction error
	// falls below it.
	Tol float64
	// TargetAccuracy, if positive, stops as soon as the fit reaches this
	// fraction (e.g. 0.95) of the ideal accuracy. Requires IdealError.
	TargetAccuracy float64
	// IdealError is the reconstruction error of an exact rank-d PCA on the
	// same sampled rows, used to convert errors into "% of ideal accuracy".
	// Compute it with IdealError(); zero disables accuracy reporting.
	IdealError float64
	// SampleRows bounds how many rows the error metric touches (§5: the
	// error is measured on a random subset of rows). Zero means 256.
	SampleRows int
	// Seed makes the random initialization reproducible.
	Seed uint64

	// Optimization switches (§3). All true = full sPCA; flipping one off
	// reproduces the corresponding row of Table 3.
	MeanPropagation      bool // §3.1: never densify Y - Ym
	MinimizeIntermediate bool // §3.2: recompute X, consolidate XtX+YtX
	EfficientFrobenius   bool // §3.4: Algorithm 3 instead of Algorithm 2
	// StatefulCombiner (§4.1, MapReduce only): accumulate YtX/XtX partials
	// in mapper memory and flush once per task. When false, mappers emit a
	// partial per input row with no combining — the naive behaviour whose
	// mapper-output volume sinks Mahout-PCA in §5.2.
	StatefulCombiner bool
	// AssociativeSS3 (§4.1, Eq. 3): compute Xi·(Cᵀ·Yiᵀ) so the sparse
	// vector is multiplied first. When false, the dense (Xi·Cᵀ)·Yiᵀ order
	// is used, costing O(D·d) per row instead of O(nnz·d).
	AssociativeSS3 bool

	// SmartGuess enables sPCA-SG (§5.2): initialize C and ss by first
	// running the fit on a small sample of rows.
	SmartGuess bool
	// SmartGuessRows is the sample size for SmartGuess (default N/10,
	// clamped to [2d, 2000]).
	SmartGuessRows int

	// DivergeWindow arms the divergence guard: when the reconstruction error
	// rises this many consecutive iterations, the driver rolls back to the
	// best model seen so far and escalates a standing ridge on the M-step
	// solves. Zero disables the guard (and its best-model tracking).
	DivergeWindow int

	// Checkpoint configures periodic durable driver snapshots. The zero
	// value disables them; see CheckpointSpec.
	Checkpoint CheckpointSpec
	// Resume, when non-nil, restarts the fit from a snapshot instead of from
	// the random initialization: the mean/Frobenius jobs and SmartGuess are
	// skipped, the snapshot's model/guard/history/metrics state is restored,
	// and iteration continues at snap.Iter+1 — producing a final model
	// bit-identical to the uninterrupted run.
	Resume *checkpoint.Snapshot
	// Faults carries the fault plan for driver-crash injection (task-level
	// faults are configured on the engines themselves). Incarnation is this
	// driver's 0-based crash-schedule index: the facade increments it on
	// every restart so a resumed driver consults the next scheduled crash.
	Faults      *cluster.FaultPlan
	Incarnation int
	// RecoveredSeconds is the simulated time a previous incarnation wasted
	// on work this run redoes (iterations past the snapshot, or the whole
	// run when restarting from scratch). It is charged to RecoverySeconds at
	// restore time and never touches the simulated clock.
	RecoveredSeconds float64

	// Tracer, when non-nil, receives deterministic spans for the fit, every
	// EM iteration, every engine job/action/phase charge, and fault events,
	// all stamped with the simulated clock. Nil (the default) disables
	// tracing with zero overhead on the steady-state paths.
	Tracer *trace.Tracer

	// Interrupt, when non-nil, is polled at every iteration boundary (and by
	// the engines at phase boundaries via the cluster). On cancel, deadline,
	// or stall the guarded loop stops at the boundary, writes a final
	// checkpoint when configured, and returns a *cluster.AbortError. Nil (the
	// default) makes the fit uninterruptible; the poll is allocation-free so
	// a live handle leaves the steady state and the cost model untouched.
	Interrupt *cluster.Interrupt
}

// DefaultOptions returns the paper's settings: d components, at most 10
// iterations, all optimizations on.
func DefaultOptions(d int) Options {
	return Options{
		Components:           d,
		MaxIter:              10,
		Tol:                  1e-3,
		SampleRows:           256,
		Seed:                 42,
		MeanPropagation:      true,
		MinimizeIntermediate: true,
		EfficientFrobenius:   true,
		StatefulCombiner:     true,
		AssociativeSS3:       true,
	}
}

func (o Options) validate(n, dims int) error {
	if o.Components <= 0 {
		return errors.New("ppca: Components must be positive")
	}
	if o.Components > dims {
		return fmt.Errorf("ppca: Components %d exceeds dimensionality %d", o.Components, dims)
	}
	if n == 0 {
		return errors.New("ppca: empty input")
	}
	if o.MaxIter <= 0 {
		return errors.New("ppca: MaxIter must be positive")
	}
	return nil
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return 256
	}
	return o.SampleRows
}

// IterationStat records the state after one EM iteration.
type IterationStat struct {
	Iter       int
	Err        float64 // sampled relative 1-norm reconstruction error
	Accuracy   float64 // fraction of ideal accuracy (0 when IdealError unset)
	SS         float64 // noise variance estimate
	SimSeconds float64 // cumulative simulated seconds (engine fits only)

	// Numerical-guard trace (all zero on a healthy iteration).
	Ridge        float64 // total ridge applied to this iteration's M-step solve
	RidgeRetries int     // reactive ridge retries the solve needed
	Rollback     bool    // divergence guard rolled back to the best model
}

// Result is the output of a fit.
type Result struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Mean is the column-mean vector the model centers with.
	Mean []float64
	// SS is the fitted noise variance.
	SS float64
	// Iterations is the number of EM iterations executed.
	Iterations int
	// History has one entry per iteration.
	History []IterationStat
	// Metrics holds the simulated-cluster accounting (engine fits only).
	Metrics cluster.Metrics
	// Phases is the per-phase cost breakdown of the run (engine fits only),
	// aggregated from the cluster's phase log. After a crash/resume it covers
	// the final driver incarnation — the phase log is not checkpointed.
	Phases []cluster.PhaseSummary
}

// Transform projects rows of y (sparse, uncentered) onto the fitted
// components: X = (Y - mean) * C * M⁻¹, the posterior-mean latent positions.
func (r *Result) Transform(y *matrix.Sparse) (*matrix.Dense, error) {
	if y.C != r.Components.R {
		return nil, fmt.Errorf("ppca: Transform dims %d vs model %d", y.C, r.Components.R)
	}
	cm, _, err := latentMap(r.Components, r.SS)
	if err != nil {
		return nil, err
	}
	return y.CenteredMulDense(r.Mean, cm), nil
}

// Reconstruct maps latent positions back to data space: X*Cᵀ + mean.
func (r *Result) Reconstruct(x *matrix.Dense) *matrix.Dense {
	out := x.MulBT(r.Components)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += r.Mean[j]
		}
	}
	return out
}

// latentMap returns CM = C*M⁻¹ and M⁻¹ for M = CᵀC + ss·I.
func latentMap(c *matrix.Dense, ss float64) (cm, minv *matrix.Dense, err error) {
	m := c.MulT(c).AddScaledIdentity(ss)
	minv, err = matrix.Inverse(m)
	if err != nil {
		return nil, nil, fmt.Errorf("ppca: M = CᵀC+ss·I singular: %w", err)
	}
	return c.Mul(minv), minv, nil
}

// reuseScratch gates the pooled-scratch steady-state paths. All fits produce
// bit-identical results either way (the in-place kernels share their loop
// bodies with the allocating wrappers); the flag exists so benchmarks can
// measure the legacy allocating behaviour against the pooled one in the same
// process. It is not safe to flip while a fit is running.
var reuseScratch = true

// emDriver holds the driver-side state shared by all three fit paths.
type emDriver struct {
	opt  Options
	n, d int
	dims int

	c    *matrix.Dense // current D x d components
	ss   float64
	mean []float64
	ss1  float64 // ||Yc||²_F, fixed across iterations

	// Per-iteration broadcast state.
	cm   *matrix.Dense // C*M⁻¹ (D x d)
	minv *matrix.Dense // M⁻¹ (d x d)
	xm   []float64     // mean's latent image Ym*CM (1 x d)

	// Carried between update and finishVariance within one iteration.
	pendingSS2  float64
	pendingSumX []float64

	// Reusable driver-side scratch, allocated once in newEMDriver. Every
	// per-iteration product is written in place, so the steady state of the
	// EM loop performs no driver-side allocation (when reuseScratch is on).
	cNext   *matrix.Dense // M-step solve output; swapped with c each iteration
	mWork   *matrix.Dense // d x d: M = CᵀC + ss·I, later XtX + ss·M⁻¹
	invWork *matrix.Dense // d x 2d Gauss-Jordan scratch for InverseInto
	ctc     *matrix.Dense // d x d: CᵀC for the ss2 trace
	ctym    []float64     // d: Cᵀ·Ym
	spdWS   matrix.SPDWorkspace
	errXi   []float64 // d: latent position scratch for the error metric
	errNum  []float64 // dims
	errDen  []float64 // dims

	// Durability and numerical-guard state (see guard.go). startIter is 1
	// for a fresh run and snapshot.Iter+1 after a restore; ridgeLevel is the
	// standing ridge escalation from divergence rollbacks; lastRidge and
	// iterRidgeRetries trace the current iteration's guard activity into its
	// History entry; bestC/bestSS/bestErr/bestIter track the rollback target
	// (bestC preallocated only when the divergence guard is armed).
	startIter        int
	ridgeLevel       int
	rising           int
	lastRidge        float64
	iterRidgeRetries int
	haveBest         bool
	bestErr          float64
	bestSS           float64
	bestIter         int
	bestC            *matrix.Dense
}

func newEMDriver(opt Options, n, dims int, mean []float64, ss1 float64) *emDriver {
	rng := matrix.NewRNG(opt.Seed + 0x5354)
	d := opt.Components
	var bestC *matrix.Dense
	if opt.DivergeWindow > 0 {
		bestC = matrix.NewDense(dims, d) // rollback target, copied into in place
	}
	return &emDriver{
		startIter: 1,
		bestC:     bestC,
		opt:       opt,
		n:         n,
		d:         d,
		dims:      dims,
		c:         matrix.NormRnd(rng, dims, d),
		ss:        math.Abs(matrix.NewRNG(opt.Seed+0x9999).NormFloat64()) + 1,
		mean:      mean,
		ss1:       ss1,
		cNext:     matrix.NewDense(dims, d),
		cm:        matrix.NewDense(dims, d),
		minv:      matrix.NewDense(d, d),
		xm:        make([]float64, d),
		mWork:     matrix.NewDense(d, d),
		invWork:   matrix.NewDense(d, 2*d),
		ctc:       matrix.NewDense(d, d),
		ctym:      make([]float64, d),
		errXi:     make([]float64, d),
		errNum:    make([]float64, dims),
		errDen:    make([]float64, dims),
	}
}

// prepare computes the per-iteration broadcast matrices (CM, M⁻¹, Xm).
// M = CᵀC + ss·I is positive definite whenever C is well conditioned; if the
// inverse still fails, the same bounded escalating ridge as the M-step solve
// is applied to M's diagonal (equivalent to temporarily inflating ss).
func (em *emDriver) prepare() error {
	if !reuseScratch {
		cm, minv, err := latentMap(em.c, em.ss)
		for attempt := 0; err != nil; attempt++ {
			if !errors.Is(err, matrix.ErrSingular) || attempt >= maxRidgeRetries {
				return fmt.Errorf("%w (%w)", err, ErrNumericalBreakdown)
			}
			lam := (1 + em.ss) * 1e-10 * pow10(attempt)
			em.iterRidgeRetries++
			cm, minv, err = latentMap(em.c, em.ss+lam)
		}
		em.cm, em.minv = cm, minv
		em.xm = make([]float64, em.d)
		for j, mj := range em.mean {
			if mj != 0 {
				matrix.AXPY(mj, cm.Row(j), em.xm)
			}
		}
		return nil
	}
	// In-place latentMap: M = CᵀC + ss·I, M⁻¹, CM = C·M⁻¹, all into driver
	// scratch. Same kernels as the allocating path, so same bits.
	em.c.MulTInto(em.c, em.mWork)
	for i := 0; i < em.d; i++ {
		em.mWork.Data[i*em.d+i] += em.ss
	}
	err := matrix.InverseInto(em.mWork, em.minv, em.invWork)
	for attempt := 0; err != nil; attempt++ {
		if !errors.Is(err, matrix.ErrSingular) || attempt >= maxRidgeRetries {
			return fmt.Errorf("ppca: M = CᵀC+ss·I singular: %w (%w)", err, ErrNumericalBreakdown)
		}
		lam := (1 + em.ss) * 1e-10 * pow10(attempt)
		addDiag(em.mWork, lam)
		em.iterRidgeRetries++
		err = matrix.InverseInto(em.mWork, em.minv, em.invWork)
	}
	em.c.MulInto(em.minv, em.cm)
	for k := range em.xm {
		em.xm[k] = 0
	}
	for j, mj := range em.mean {
		if mj != 0 {
			matrix.AXPY(mj, em.cm.Row(j), em.xm)
		}
	}
	return nil
}

// jobSums is what one pass over the data must produce: the consolidated
// YtXJob outputs of Algorithm 4.
type jobSums struct {
	ytx  *matrix.Dense // Σ Yiᵀ·Xi_c (D x d), mean term NOT yet subtracted
	xtx  *matrix.Dense // Σ Xi_cᵀ·Xi_c (d x d), ss·M⁻¹ NOT yet added
	sumX []float64     // Σ Xi_c (d)
}

// update performs the driver-side M-step given the job sums, returning the
// new C. ss is updated after the ss3 pass via finishVariance.
func (em *emDriver) update(s jobSums) (*matrix.Dense, error) {
	if !reuseScratch {
		// Legacy allocating path, kept for A/B benchmarking.
		// YtX = Σ Yiᵀ Xi_c - Ymᵀ (Σ Xi_c)   (mean propagation, §3.1)
		// Rows of ytx are disjoint, so the correction runs on the parallel pool.
		ytx := s.ytx.Clone()
		parallel.For(len(em.mean), 2048/(em.d+1)+1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if mj := em.mean[j]; mj != 0 {
					matrix.AXPY(-mj, s.sumX, ytx.Row(j))
				}
			}
		})
		// XtX = Σ Xi_cᵀ Xi_c + ss·M⁻¹
		xtx := s.xtx.Add(em.minv.Scale(em.ss))
		cNew := matrix.NewDense(ytx.R, ytx.C)
		if err := em.solveGuarded(xtx, ytx, cNew, &matrix.SPDWorkspace{}); err != nil {
			return nil, err
		}
		em.c = cNew

		// ss2 = trace(XtX · Cᵀ·C)
		em.pendingSS2 = xtx.Mul(cNew.MulT(cNew)).Trace()
		em.pendingSumX = s.sumX
		return cNew, nil
	}
	// Pooled path. The caller owns s and rebuilds it from scratch every pass,
	// so the mean correction can run directly on s.ytx instead of a clone.
	ytx := s.ytx
	parallel.For(len(em.mean), 2048/(em.d+1)+1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if mj := em.mean[j]; mj != 0 {
				matrix.AXPY(-mj, s.sumX, ytx.Row(j))
			}
		}
	})
	// XtX = Σ Xi_cᵀ Xi_c + ss·M⁻¹ (the two-statement AddScaledInto rounding
	// matches the Scale-then-Add composition bit for bit).
	xtx := matrix.AddScaledInto(em.mWork, s.xtx, em.ss, em.minv)
	// Solve into the spare components buffer, then swap it in: the previous
	// C's storage becomes next iteration's solve output.
	if err := em.solveGuarded(xtx, ytx, em.cNext, &em.spdWS); err != nil {
		return nil, err
	}
	em.c, em.cNext = em.cNext, em.c
	cNew := em.c

	// ss2 = trace(XtX · Cᵀ·C), without materializing the product.
	cNew.MulTInto(cNew, em.ctc)
	em.pendingSS2 = matrix.TraceMul(xtx, em.ctc)
	em.pendingSumX = s.sumX
	return cNew, nil
}

// finishVariance folds the ss3 job result into the noise variance:
// ss = (ss1 + ss2 - 2·ss3)/(N·D). ss3Raw is Σ Xi_c·(Cᵀ·Yiᵀ); the mean
// correction -(Σ Xi_c)·(Cᵀ·Ym) is applied here.
func (em *emDriver) finishVariance(ss3Raw float64) {
	var ctym []float64 // Cᵀ·Ym (d)
	if reuseScratch {
		ctym = em.c.MulVecTInto(em.mean, em.ctym)
	} else {
		ctym = em.c.MulVecT(em.mean)
	}
	ss3 := ss3Raw - matrix.Dot(em.pendingSumX, ctym)
	ss := (em.ss1 + em.pendingSS2 - 2*ss3) / (float64(em.n) * float64(em.dims))
	if ss < 1e-12 || math.IsNaN(ss) {
		ss = 1e-12 // numerical floor; PPCA's ss is a variance and must stay positive
	}
	em.ss = ss
}

// sampleIdx returns the deterministic row sample used by the error metric.
func sampleIdx(n, want int, seed uint64) []int {
	if want >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	perm := matrix.NewRNG(seed + 0xACC).Perm(n)
	idx := perm[:want]
	sortInts(idx)
	return idx
}

// reconstructionError computes the paper's accuracy metric on the given
// rows: e = ||Yr - reconstruction||₁ / ||Yr||₁, reconstructing each sampled
// row as Xi_c·Cᵀ + Ym without materializing any large matrix.
func reconstructionError(y *matrix.Sparse, mean []float64, c *matrix.Dense, cm *matrix.Dense, xm []float64, rows []int) float64 {
	d := cm.C
	return reconstructionErrorInto(y, mean, c, cm, xm, rows,
		make([]float64, d), make([]float64, y.C), make([]float64, y.C))
}

// reconError is the driver-scratch entry point used by the fit loops.
func (em *emDriver) reconError(y *matrix.Sparse, rows []int) float64 {
	if !reuseScratch {
		return reconstructionError(y, em.mean, em.c, em.cm, em.xm, rows)
	}
	return reconstructionErrorInto(y, em.mean, em.c, em.cm, em.xm, rows, em.errXi, em.errNum, em.errDen)
}

// reconstructionErrorInto is reconstructionError running on caller-provided
// scratch: xi (len d), tNum and tDen (len y.C), all fully overwritten.
func reconstructionErrorInto(y *matrix.Sparse, mean []float64, c *matrix.Dense, cm *matrix.Dense, xm []float64, rows []int, xi, tNum, tDen []float64) float64 {
	var num, den float64
	for _, i := range rows {
		row := y.Row(i)
		// Xi_c = Yi·CM - Xm
		for k := range xi {
			xi[k] = -xm[k]
		}
		for k, j := range row.Indices {
			matrix.AXPY(row.Values[k], cm.Row(j), xi)
		}
		// Reconstruction ŷ = Xi_c·Cᵀ + Ym, compared column by column; the
		// per-column terms fill in parallel and accumulate in ascending j,
		// matching the sequential evaluation bit for bit.
		matrix.ReconTerms(row, mean, c, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// IdealError computes the reconstruction error an exact rank-d PCA achieves
// on the sampled rows — the "ideal accuracy" baseline of §5. It uses Lanczos
// on the mean-propagated operator so the input is never densified.
func IdealError(y *matrix.Sparse, d int, opt Options) float64 {
	mean := y.ColMeans()
	steps := 3*d + 10
	_, _, v := matrix.LanczosSVD(matrix.CenteredOp{M: y, Mean: mean}, d, steps, matrix.NewRNG(opt.Seed+0x1DEA))
	rows := sampleIdx(y.R, opt.sampleRows(), opt.Seed)
	// Exact PCA reconstruction: ŷ = ((Yi-Ym)·V)·Vᵀ + Ym.
	var num, den float64
	k := v.C
	xi := make([]float64, k)
	vm := v.MulVecT(mean) // Ym·V
	tNum := make([]float64, y.C)
	tDen := make([]float64, y.C)
	for _, i := range rows {
		row := y.Row(i)
		for t := range xi {
			xi[t] = -vm[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], v.Row(j), xi)
		}
		matrix.ReconTerms(row, mean, v, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// accuracyOf converts an error into a fraction of ideal accuracy, defined
// as IdealError/err: it approaches 1 as the fit's reconstruction error
// approaches the exact rank-d PCA's, and is well defined for any error
// scale (the sampled 1-norm error exceeds 1 on very sparse binary data,
// where reconstructions smear mass across the zero entries).
func (o Options) accuracyOf(err float64) float64 {
	if o.IdealError <= 0 {
		return 0
	}
	if err <= o.IdealError {
		return 1
	}
	return o.IdealError / err
}

// converged applies the STOP_CONDITION of §5.1.
func (o Options) converged(hist []IterationStat) bool {
	n := len(hist)
	if n == 0 {
		return false
	}
	last := hist[n-1]
	if o.TargetAccuracy > 0 && last.Accuracy >= o.TargetAccuracy {
		return true
	}
	if n >= 2 {
		prev := hist[n-2]
		if prev.Err > 0 && math.Abs(prev.Err-last.Err)/prev.Err < o.Tol {
			return true
		}
	}
	return false
}

// denseXC fills xc[j] = xi · c_j for every row j of c — the dense sweep of
// the non-associative ss3 order (Xi·Cᵀ), O(D·d) per input row. Entries are
// disjoint, so the sweep runs on the parallel pool with values identical to
// the sequential loop.
func denseXC(xi []float64, c *matrix.Dense, xc []float64) {
	parallel.For(c.R, 16384/(2*len(xi)+1)+1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			xc[j] = matrix.Dot(xi, c.Row(j))
		}
	})
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
