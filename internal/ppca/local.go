package ppca

import (
	"fmt"

	"spca/internal/cluster"
	"spca/internal/matrix"
	"spca/internal/parallel"
	"spca/internal/trace"
)

// latentBlock is how many rows the local pass precomputes latent vectors for
// at a time: the expensive per-row Xi_c (and ss3 dot) fills run on the
// parallel pool over the block, while the scatter-accumulation into the
// shared sums stays sequential in the original row order so every float64
// sum is bit-identical to the plain loop.
const latentBlock = 256

// FitLocal runs the PPCA EM algorithm (Algorithm 1) on a single machine.
// It is the reference implementation the distributed variants are tested
// against, and the engine behind SmartGuess initialization. Mean propagation
// is always used here — the input is never densified.
func FitLocal(y *matrix.Sparse, opt Options) (*Result, error) {
	if err := opt.validate(y.R, y.C); err != nil {
		return nil, err
	}
	if tr := opt.Tracer; tr != nil {
		// No simulated cluster: the trace carries structure (iterations,
		// events) with all timestamps at zero.
		tr.Begin("FitLocal", trace.KindFit,
			trace.I("rows", int64(y.R)), trace.I("dims", int64(y.C)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}
	mean := y.ColMeans()
	ss1 := y.CenteredFrobeniusSq(mean)
	em := newEMDriver(opt, y.R, y.C, mean, ss1)
	res := &Result{}

	if snap := opt.Resume; snap != nil {
		// Local fits have no simulated cluster: the restore only counts the
		// snapshot read and the restart in the Result metrics.
		if err := snap.Validate(y.R, y.C, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		res.Metrics = snap.Metrics
		res.Metrics.DriverRestarts++
		em.restore(snap, res)
	} else if opt.SmartGuess {
		if err := smartGuessLocal(y, opt, em); err != nil {
			return nil, fmt.Errorf("ppca: smart guess: %w", err)
		}
	}
	if opt.Resume == nil && opt.Incarnation > 0 {
		res.Metrics.DriverRestarts++
	}
	res.Mean = mean

	// Pass scratch allocated once and recycled every iteration (nil = legacy
	// allocating path kept for A/B benchmarking).
	var scr *localScratch
	if reuseScratch {
		scr = newLocalScratch(y.C, em.d)
	}
	e := &localEngine{y: y, scr: scr, sample: sampleIdx(y.R, opt.sampleRows(), opt.Seed)}
	if err := runEM(em, opt, e, res); err != nil {
		return nil, err
	}
	return res, nil
}

// localEngine adapts the single-machine passes to the shared guarded EM
// loop. There is no simulated cluster, so the broadcast/compute charge hooks
// are no-ops and History.SimSeconds stays zero, as before.
type localEngine struct {
	y      *matrix.Sparse
	scr    *localScratch
	sample []int
}

func (e *localEngine) cluster() *cluster.Cluster { return nil }
func (e *localEngine) faultEpoch() int64         { return 0 }
func (e *localEngine) prepared(*emDriver)        {}
func (e *localEngine) pass(em *emDriver) (jobSums, error) {
	return localPass(e.y, em, e.scr), nil
}
func (e *localEngine) solved(*emDriver, *matrix.Dense) {}
func (e *localEngine) ss3(em *emDriver, cNew *matrix.Dense) (float64, error) {
	return localSS3(e.y, em, cNew, e.scr), nil
}
func (e *localEngine) reconErr(em *emDriver) float64 { return em.reconError(e.y, e.sample) }

// localScratch is FitLocal's per-fit reusable pass state: the job sums, the
// per-block latent rows, the per-block ss3 terms, and per-worker xi/ct
// substitution buffers for the ss3 sweep.
type localScratch struct {
	sums  jobSums
	xis   *matrix.Dense
	terms []float64
	work  [][]float64 // per worker: xi then ct, each length d
}

func newLocalScratch(dims, d int) *localScratch {
	return &localScratch{
		sums:  newJobSums(dims, d),
		xis:   matrix.NewDense(latentBlock, d),
		terms: make([]float64, latentBlock),
	}
}

// ensureWorkers grows the per-worker buffers to the pool's current width.
// Called on the driver before the parallel sweep, so it never races.
func (s *localScratch) ensureWorkers(d int) {
	w := parallel.Workers()
	for len(s.work) < w {
		s.work = append(s.work, nil)
	}
	for i := 0; i < w; i++ {
		if len(s.work[i]) < 2*d {
			s.work[i] = make([]float64, 2*d)
		}
	}
}

// localPass is the consolidated YtX+XtX pass (one scan over the rows).
func localPass(y *matrix.Sparse, em *emDriver, scr *localScratch) jobSums {
	d := em.d
	var sums jobSums
	var xis *matrix.Dense
	if scr != nil {
		sums = scr.sums
		sums.ytx.Zero()
		sums.xtx.Zero()
		for i := range sums.sumX {
			sums.sumX[i] = 0
		}
		xis = scr.xis // fully overwritten block by block
	} else {
		sums = newJobSums(y.C, d)
		xis = matrix.NewDense(latentBlock, d)
	}
	for base := 0; base < y.R; base += latentBlock {
		end := base + latentBlock
		if end > y.R {
			end = y.R
		}
		parallel.For(end-base, 16, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				computeLatentRow(y.Row(base+t), em, xis.Row(t))
			}
		})
		for t := 0; t < end-base; t++ {
			row := y.Row(base + t)
			xi := xis.Row(t)
			for k, j := range row.Indices {
				matrix.AXPY(row.Values[k], xi, sums.ytx.Row(j))
			}
			matrix.OuterAdd(sums.xtx, xi, xi)
			matrix.AXPY(1, xi, sums.sumX)
		}
	}
	return sums
}

// localSS3 recomputes X row by row and accumulates Σ Xi_c·(Cᵀ·Yiᵀ) with the
// associativity trick of §4.1: multiply Cᵀ with the sparse Yiᵀ first.
func localSS3(y *matrix.Sparse, em *emDriver, c *matrix.Dense, scr *localScratch) float64 {
	d := em.d
	var ss3 float64
	// Per-row terms Xi_c·(Cᵀ·Yiᵀ) fill in parallel per block; the final sum
	// runs over rows in their original order, bit-identical to a plain loop.
	var terms []float64
	if scr != nil {
		scr.ensureWorkers(d)
		terms = scr.terms
	} else {
		terms = make([]float64, latentBlock)
	}
	ss3Row := func(t int, row matrix.SparseVector, xi, ct []float64) {
		computeLatentRow(row, em, xi)
		for k := range ct {
			ct[k] = 0
		}
		for k, j := range row.Indices {
			matrix.AXPY(row.Values[k], c.Row(j), ct)
		}
		terms[t] = matrix.Dot(xi, ct)
	}
	for base := 0; base < y.R; base += latentBlock {
		end := base + latentBlock
		if end > y.R {
			end = y.R
		}
		if scr != nil {
			parallel.ForWorker(end-base, 16, func(w, lo, hi int) {
				sub := scr.work[w]
				xi, ct := sub[:d], sub[d:2*d]
				for t := lo; t < hi; t++ {
					ss3Row(t, y.Row(base+t), xi, ct)
				}
			})
		} else {
			parallel.For(end-base, 16, func(lo, hi int) {
				xi := make([]float64, d)
				ct := make([]float64, d)
				for t := lo; t < hi; t++ {
					ss3Row(t, y.Row(base+t), xi, ct)
				}
			})
		}
		for t := 0; t < end-base; t++ {
			ss3 += terms[t]
		}
	}
	return ss3
}

// computeLatentRow fills xi with the centered latent row
// Xi_c = Yi·CM - Xm, touching only the row's non-zero entries.
func computeLatentRow(row matrix.SparseVector, em *emDriver, xi []float64) {
	for k := range xi {
		xi[k] = -em.xm[k]
	}
	for k, j := range row.Indices {
		matrix.AXPY(row.Values[k], em.cm.Row(j), xi)
	}
}

// smartGuessLocal seeds em with the result of a fit on a row sample.
func smartGuessLocal(y *matrix.Sparse, opt Options, em *emDriver) error {
	n := smartGuessSize(opt, y.R)
	if n >= y.R {
		return nil // nothing to gain
	}
	sub := sampleSparseRows(y, n, opt.Seed+0x5A)
	subOpt := opt
	subOpt.SmartGuess = false
	subOpt.TargetAccuracy = 0
	subOpt.IdealError = 0
	subOpt.MaxIter = 5
	res, err := FitLocal(sub, subOpt)
	if err != nil {
		return err
	}
	em.c = res.Components
	em.ss = res.SS
	return nil
}

func smartGuessSize(opt Options, n int) int {
	sz := opt.SmartGuessRows
	if sz <= 0 {
		sz = n / 10
	}
	if min := 2 * opt.Components; sz < min {
		sz = min
	}
	if sz > 2000 {
		sz = 2000
	}
	if sz > n {
		sz = n
	}
	return sz
}

// sampleSparseRows builds a CSR matrix from a deterministic sample of rows.
func sampleSparseRows(y *matrix.Sparse, n int, seed uint64) *matrix.Sparse {
	idx := sampleIdx(y.R, n, seed)
	b := matrix.NewSparseBuilder(y.C)
	for _, i := range idx {
		row := y.Row(i)
		b.AddRow(row.Indices, row.Values)
	}
	return b.Build()
}
