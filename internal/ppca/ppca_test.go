package ppca

import (
	"math"
	"testing"
	"testing/quick"

	"spca/internal/matrix"
)

// Property: the M-step solve satisfies the normal equations,
// C_new · XtX = YtX (with the mean correction applied).
func TestUpdateSolvesNormalEquations(t *testing.T) {
	f := func(seed uint16) bool {
		rng := matrix.NewRNG(uint64(seed) + 31337)
		n, dims, d := 20+int(seed)%30, 6+int(seed)%8, 2+int(seed)%3
		y := randomSparseMat(rng, n, dims, 0.4)
		mean := y.ColMeans()
		em := newEMDriver(DefaultOptions(d), n, dims, mean, y.CenteredFrobeniusSq(mean))
		if err := em.prepare(); err != nil {
			return false
		}
		sums := localPass(y, em, nil)
		cNew, err := em.update(sums)
		if err != nil {
			return false
		}
		// Reconstruct the corrected YtX and XtX the update solved against.
		ytx := sums.ytx.Clone()
		for j, mj := range mean {
			if mj != 0 {
				matrix.AXPY(-mj, sums.sumX, ytx.Row(j))
			}
		}
		xtx := sums.xtx.Add(em.minv.Scale(em.ss))
		return cNew.Mul(xtx).MaxAbsDiff(ytx) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fitted noise variance is always positive and finite.
func TestVarianceAlwaysPositive(t *testing.T) {
	f := func(seed uint16) bool {
		rng := matrix.NewRNG(uint64(seed) + 777)
		n, dims := 15+int(seed)%20, 5+int(seed)%6
		y := randomSparseMat(rng, n, dims, 0.5)
		opt := DefaultOptions(2)
		opt.MaxIter = 4
		opt.Seed = uint64(seed)
		res, err := FitLocal(y, opt)
		if err != nil {
			return false
		}
		return res.SS > 0 && !math.IsNaN(res.SS) && !math.IsInf(res.SS, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reconstruction error metric is non-negative and zero only
// in degenerate cases.
func TestReconstructionErrorNonNegative(t *testing.T) {
	f := func(seed uint16) bool {
		rng := matrix.NewRNG(uint64(seed) + 555)
		n, dims, d := 10+int(seed)%15, 4+int(seed)%8, 2
		y := randomSparseMat(rng, n, dims, 0.5)
		mean := y.ColMeans()
		c := matrix.NormRnd(rng, dims, d)
		cm, _, err := latentMap(c, 0.5)
		if err != nil {
			return false
		}
		xm := make([]float64, d)
		for j, mj := range mean {
			matrix.AXPY(mj, cm.Row(j), xm)
		}
		rows := sampleIdx(n, 8, uint64(seed))
		e := reconstructionError(y, mean, c, cm, xm, rows)
		return e >= 0 && !math.IsNaN(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: sparse and dense paths of the consolidated pass agree — the
// localPass sums on a sparse matrix equal brute-force dense computation.
func TestLocalPassMatchesBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		rng := matrix.NewRNG(uint64(seed) + 4242)
		n, dims, d := 12+int(seed)%10, 5+int(seed)%5, 2
		y := randomSparseMat(rng, n, dims, 0.5)
		mean := y.ColMeans()
		em := newEMDriver(DefaultOptions(d), n, dims, mean, 1)
		if err := em.prepare(); err != nil {
			return false
		}
		sums := localPass(y, em, nil)

		// Brute force with dense matrices: X = Yc·CM, YtXc = Ycᵀ·X.
		yc := y.Dense().SubRowVec(mean)
		x := yc.Mul(em.cm)
		wantYtXc := yc.MulT(x)
		wantXtX := x.MulT(x)

		// localPass returns the mean-uncorrected YtX; correct it here.
		ytx := sums.ytx.Clone()
		for j, mj := range mean {
			if mj != 0 {
				matrix.AXPY(-mj, sums.sumX, ytx.Row(j))
			}
		}
		return ytx.MaxAbsDiff(wantYtXc) < 1e-8 && sums.xtx.MaxAbsDiff(wantXtX) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ss3 computed with and without the associativity trick agree.
func TestSS3OrderInvariance(t *testing.T) {
	f := func(seed uint16) bool {
		rng := matrix.NewRNG(uint64(seed) + 999)
		n, dims, d := 10+int(seed)%12, 5+int(seed)%7, 2
		y := randomSparseMat(rng, n, dims, 0.5)
		mean := y.ColMeans()
		em := newEMDriver(DefaultOptions(d), n, dims, mean, 1)
		if err := em.prepare(); err != nil {
			return false
		}
		c := matrix.NormRnd(rng, dims, d)
		assoc := localSS3(y, em, c, nil)

		// Dense order: Σ (Xi·Cᵀ)·Yiᵀ.
		var direct float64
		xi := make([]float64, d)
		for i := 0; i < y.R; i++ {
			row := y.Row(i)
			computeLatentRow(row, em, xi)
			for k, j := range row.Indices {
				direct += matrix.Dot(xi, c.Row(j)) * row.Values[k]
			}
		}
		return math.Abs(assoc-direct) < 1e-8*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomSparseMat builds a random sparse matrix with at least one non-zero
// per row (empty rows are legal but make the properties vacuous).
func randomSparseMat(rng *matrix.RNG, n, dims int, density float64) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for i := 0; i < n; i++ {
		var idx []int
		var vals []float64
		for j := 0; j < dims; j++ {
			if rng.Float64() < density {
				idx = append(idx, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		if len(idx) == 0 {
			idx = append(idx, rng.Intn(dims))
			vals = append(vals, rng.NormFloat64())
		}
		b.AddRow(idx, vals)
	}
	return b.Build()
}
