package ppca

// Micro-benchmarks for the sPCA kernels and the design-choice ablations
// DESIGN.md calls out. These measure real CPU time of the actual math
// (unlike the simulated-cluster seconds the experiments report), so they
// also demonstrate that the optimizations pay off on real hardware, not
// just in the cost model.

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
)

func benchData(b *testing.B, n, dims int) (*matrix.Sparse, []matrix.SparseVector) {
	b.Helper()
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindTweets, Rows: n, Cols: dims, Seed: 1,
	})
	return y, dataset.Rows(y)
}

func BenchmarkFitLocal(b *testing.B) {
	y, _ := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLocal(y, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitStream exercises the out-of-core engine on the same workload
// as the other fit benchmarks (two sequential passes per EM iteration over a
// RowSource). Feeds BENCH_*.json via `make bench-json`.
func BenchmarkFitStream(b *testing.B) {
	y, _ := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitStream(matrix.SparseSource{M: y}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitMapReduce(b *testing.B) {
	_, rows := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
		if _, err := FitMapReduce(eng, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSpark(b *testing.B) {
	_, rows := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext(cluster.MustNew(cluster.DefaultConfig().WithTaskOverhead(0.05)))
		if _, err := FitSpark(ctx, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAblation measures one EM iteration of FitLocal-equivalent work
// through the Spark path with a single optimization flipped.
func benchAblation(b *testing.B, mutate func(*Options)) {
	_, rows := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 1
	opt.Tol = 0
	mutate(&opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext(cluster.MustNew(cluster.DefaultConfig().WithTaskOverhead(0.05)))
		if _, err := FitSpark(ctx, rows, 500, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(*Options) {})
}

func BenchmarkAblationNoMeanPropagation(b *testing.B) {
	benchAblation(b, func(o *Options) { o.MeanPropagation = false })
}

func BenchmarkAblationNoMinimizeIntermediate(b *testing.B) {
	benchAblation(b, func(o *Options) { o.MinimizeIntermediate = false })
}

func BenchmarkAblationNoEfficientFrobenius(b *testing.B) {
	benchAblation(b, func(o *Options) { o.EfficientFrobenius = false })
}

func BenchmarkAblationNoAssociativeSS3(b *testing.B) {
	benchAblation(b, func(o *Options) { o.AssociativeSS3 = false })
}

func BenchmarkFrobeniusOptimized(b *testing.B) {
	y, _ := benchData(b, 5000, 2000)
	mean := y.ColMeans()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = y.CenteredFrobeniusSq(mean)
	}
}

func BenchmarkFrobeniusSimple(b *testing.B) {
	y, _ := benchData(b, 5000, 2000)
	mean := y.ColMeans()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = y.CenteredFrobeniusSqSimple(mean)
	}
}

func BenchmarkIdealError(b *testing.B) {
	y, _ := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IdealError(y, 10, opt)
	}
}

func BenchmarkFitMissing(b *testing.B) {
	holed, _ := lowRankDenseWithHoles(200, 50, 4, 0.2, 1)
	opt := DefaultOptions(4)
	opt.MaxIter = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitMissing(holed, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitMixture(b *testing.B) {
	y, _ := twoSubspaceData(200, 30, 3, 2)
	opt := DefaultMixtureOptions(2, 3)
	opt.MaxIter = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitMixture(y, opt); err != nil {
			b.Fatal(err)
		}
	}
}
