package ppca

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
)

func testEngineMR() *mapred.Engine {
	return mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
}

func testCtxSpark() *rdd.Context {
	return rdd.NewContext(cluster.MustNew(cluster.DefaultConfig().WithTaskOverhead(0.05)))
}

func testRows(t *testing.T, n, dims, rank int, seed uint64) ([]matrix.SparseVector, *matrix.Sparse) {
	t.Helper()
	y := lowRankSparse(n, dims, rank, seed)
	return dataset.Rows(y), y
}

func TestFitMapReduceMatchesLocal(t *testing.T) {
	rows, y := testRows(t, 150, 40, 3, 11)
	opt := DefaultOptions(3)
	opt.MaxIter = 15
	opt.Tol = 1e-9

	local, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := FitMapReduce(testEngineMR(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Same math, same seed: identical results up to floating-point
	// reassociation in the parallel sums.
	if gap := matrix.SubspaceGap(local.Components, mr.Components); gap > 1e-6 {
		t.Fatalf("MapReduce subspace differs from local: gap %v", gap)
	}
	if diff := local.SS - mr.SS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SS differs: %v vs %v", local.SS, mr.SS)
	}
}

func TestFitSparkMatchesLocal(t *testing.T) {
	rows, y := testRows(t, 150, 40, 3, 12)
	opt := DefaultOptions(3)
	opt.MaxIter = 15
	opt.Tol = 1e-9

	local, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := FitSpark(testCtxSpark(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(local.Components, sp.Components); gap > 1e-6 {
		t.Fatalf("Spark subspace differs from local: gap %v", gap)
	}
}

func TestMapReduceUnoptimizedMatchesOptimized(t *testing.T) {
	rows, _ := testRows(t, 100, 30, 3, 13)
	opt := DefaultOptions(3)
	opt.MaxIter = 5
	opt.Tol = 0

	fast, err := FitMapReduce(testEngineMR(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.MinimizeIntermediate = false
	naive, err := FitMapReduce(testEngineMR(), rows, 30, slow)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-6 {
		t.Fatalf("unoptimized pipeline changed the math: gap %v", gap)
	}
}

func TestMapReduceNoMeanPropagationMatches(t *testing.T) {
	rows, _ := testRows(t, 100, 30, 3, 14)
	opt := DefaultOptions(3)
	opt.MaxIter = 5
	opt.Tol = 0

	fast, err := FitMapReduce(testEngineMR(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	dense := opt
	dense.MeanPropagation = false
	naive, err := FitMapReduce(testEngineMR(), rows, 30, dense)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-6 {
		t.Fatalf("mean propagation changed the math: gap %v", gap)
	}
}

func TestSparkNoMeanPropagationMatches(t *testing.T) {
	rows, _ := testRows(t, 80, 25, 3, 15)
	opt := DefaultOptions(3)
	opt.MaxIter = 4
	opt.Tol = 0

	fast, err := FitSpark(testCtxSpark(), rows, 25, opt)
	if err != nil {
		t.Fatal(err)
	}
	dense := opt
	dense.MeanPropagation = false
	naive, err := FitSpark(testCtxSpark(), rows, 25, dense)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-6 {
		t.Fatalf("spark mean propagation changed the math: gap %v", gap)
	}
}

func TestSparkUnoptimizedMatches(t *testing.T) {
	rows, _ := testRows(t, 80, 25, 3, 16)
	opt := DefaultOptions(3)
	opt.MaxIter = 4
	opt.Tol = 0

	fast, err := FitSpark(testCtxSpark(), rows, 25, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.MinimizeIntermediate = false
	naive, err := FitSpark(testCtxSpark(), rows, 25, slow)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-6 {
		t.Fatalf("spark unoptimized pipeline changed the math: gap %v", gap)
	}
}

// The headline claims: each optimization must reduce the cost the paper says
// it reduces.

func TestMeanPropagationReducesComputeAndShuffle(t *testing.T) {
	// Sparse data: tweets-like.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 400, Cols: 300, Seed: 17})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	opt.Tol = 0

	fastEng := testEngineMR()
	if _, err := FitMapReduce(fastEng, rows, 300, opt); err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.MeanPropagation = false
	slowEng := testEngineMR()
	if _, err := FitMapReduce(slowEng, rows, 300, slow); err != nil {
		t.Fatal(err)
	}
	fm, sm := fastEng.Cluster.Metrics(), slowEng.Cluster.Metrics()
	if fm.ComputeOps*5 > sm.ComputeOps {
		t.Fatalf("mean propagation should slash compute on sparse data: %d vs %d", fm.ComputeOps, sm.ComputeOps)
	}
	if fm.ShuffleBytes*2 > sm.ShuffleBytes {
		t.Fatalf("mean propagation should slash shuffle: %d vs %d", fm.ShuffleBytes, sm.ShuffleBytes)
	}
	if fm.SimSeconds >= sm.SimSeconds {
		t.Fatalf("mean propagation should be faster: %.2fs vs %.2fs", fm.SimSeconds, sm.SimSeconds)
	}
}

func TestMinimizeIntermediateReducesShuffle(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 600, Cols: 200, Seed: 18})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	opt.Tol = 0

	fastEng := testEngineMR()
	if _, err := FitMapReduce(fastEng, rows, 200, opt); err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.MinimizeIntermediate = false
	slowEng := testEngineMR()
	if _, err := FitMapReduce(slowEng, rows, 200, slow); err != nil {
		t.Fatal(err)
	}
	fm, sm := fastEng.Cluster.Metrics(), slowEng.Cluster.Metrics()
	if fm.ShuffleBytes >= sm.ShuffleBytes {
		t.Fatalf("recompute-X should reduce shuffle: %d vs %d", fm.ShuffleBytes, sm.ShuffleBytes)
	}
	if fm.SimSeconds >= sm.SimSeconds {
		t.Fatalf("recompute-X should be faster: %.2fs vs %.2fs", fm.SimSeconds, sm.SimSeconds)
	}
}

func TestEfficientFrobeniusReducesCompute(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 500, Cols: 400, Seed: 19})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 1
	opt.Tol = 0

	fastEng := testEngineMR()
	if _, err := FitMapReduce(fastEng, rows, 400, opt); err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.EfficientFrobenius = false
	slowEng := testEngineMR()
	if _, err := FitMapReduce(slowEng, rows, 400, slow); err != nil {
		t.Fatal(err)
	}
	fnormOps := func(e *mapred.Engine) int64 {
		for _, p := range e.Cluster.PhaseLog() {
			if p.Name == "FnormJob/map" {
				return p.ComputeOps
			}
		}
		t.Fatal("FnormJob phase not found")
		return 0
	}
	fo, so := fnormOps(fastEng), fnormOps(slowEng)
	if fo*5 > so {
		t.Fatalf("Algorithm 3 should slash Frobenius ops: %d vs %d", fo, so)
	}
}

func TestSparkGeneratesLessIntermediateDataThanItWould(t *testing.T) {
	// The Spark path's accumulator traffic per iteration is O(z·d), far
	// below materializing X (N·d) for sparse data.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 800, Cols: 150, Seed: 20})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	opt.Tol = 0

	fastCtx := testCtxSpark()
	if _, err := FitSpark(fastCtx, rows, 150, opt); err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.MinimizeIntermediate = false
	slowCtx := testCtxSpark()
	if _, err := FitSpark(slowCtx, rows, 150, slow); err != nil {
		t.Fatal(err)
	}
	fm, sm := fastCtx.Cluster().Metrics(), slowCtx.Cluster().Metrics()
	if fm.SimSeconds >= sm.SimSeconds {
		t.Fatalf("optimized spark should be faster: %.2f vs %.2f", fm.SimSeconds, sm.SimSeconds)
	}
	if fm.DiskBytes >= sm.DiskBytes {
		t.Fatalf("optimized spark should touch less disk: %d vs %d", fm.DiskBytes, sm.DiskBytes)
	}
}

func TestSparkDriverMemoryStaysSmall(t *testing.T) {
	// sPCA-Spark driver memory is O(D·d), not O(D²) — the Figure 8 claim.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 300, Cols: 500, Seed: 21})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	ctx := testCtxSpark()
	if _, err := FitSpark(ctx, rows, 500, opt); err != nil {
		t.Fatal(err)
	}
	peak := ctx.Cluster().Metrics().DriverPeak
	dd := int64(500 * 500 * 8)
	if peak >= dd {
		t.Fatalf("driver peak %d should be far below D² bytes %d", peak, dd)
	}
}

func TestFitMapReduceWithFailureInjection(t *testing.T) {
	rows, _ := testRows(t, 120, 30, 3, 22)
	opt := DefaultOptions(3)
	opt.MaxIter = 3
	opt.Tol = 0
	eng := testEngineMR()
	eng.FailureRate = 0.2
	eng.SetFailureSeed(7)
	// At 0.2 per attempt a task terminally fails with p = 0.2^12 ≈ 4e-9, so
	// the fit exercises retries without ever hitting ErrTaskFailed.
	eng.MaxAttempts = 12
	res, err := FitMapReduce(eng, rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m := eng.Cluster.Metrics(); m.FailedAttempts == 0 || m.RecoverySeconds <= 0 {
		t.Fatalf("no recovery charged at 20%% failure rate: %+v", m)
	}
	// Failures slow things down but never change the answer.
	clean, err := FitMapReduce(testEngineMR(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(res.Components, clean.Components); gap > 1e-9 {
		t.Fatalf("failure injection changed results: gap %v", gap)
	}
}

func TestSparkSmartGuess(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 1000, Cols: 100, Seed: 23})
	rows := dataset.Rows(y)
	opt := DefaultOptions(4)
	opt.MaxIter = 1
	opt.Tol = 0
	plain, err := FitSpark(testCtxSpark(), rows, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	sg := opt
	sg.SmartGuess = true
	smart, err := FitSpark(testCtxSpark(), rows, 100, sg)
	if err != nil {
		t.Fatal(err)
	}
	if smart.History[0].Err >= plain.History[0].Err {
		t.Fatalf("spark smart guess not better after 1 iter: %v vs %v",
			smart.History[0].Err, plain.History[0].Err)
	}
}

func TestHistorySimSecondsMonotonic(t *testing.T) {
	rows, _ := testRows(t, 100, 30, 3, 24)
	opt := DefaultOptions(3)
	opt.MaxIter = 4
	opt.Tol = 0
	res, err := FitMapReduce(testEngineMR(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].SimSeconds <= res.History[i-1].SimSeconds {
			t.Fatalf("sim time not monotonic: %+v", res.History)
		}
	}
	if res.Metrics.SimSeconds <= 0 {
		t.Fatal("metrics not populated")
	}
}

func TestStatefulCombinerReducesShuffle(t *testing.T) {
	// Enough rows per map task that in-mapper accumulation pays off.
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 6000, Cols: 200, Seed: 25})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	opt.Tol = 0

	withEng := testEngineMR()
	with, err := FitMapReduce(withEng, rows, 200, opt)
	if err != nil {
		t.Fatal(err)
	}
	naive := opt
	naive.StatefulCombiner = false
	withoutEng := testEngineMR()
	without, err := FitMapReduce(withoutEng, rows, 200, naive)
	if err != nil {
		t.Fatal(err)
	}
	// Identical math...
	if gap := matrix.SubspaceGap(with.Components, without.Components); gap > 1e-6 {
		t.Fatalf("stateful combiner changed the math: gap %v", gap)
	}
	// ...but far more mapper output without it.
	ws, ns := withEng.Cluster.Metrics().ShuffleBytes, withoutEng.Cluster.Metrics().ShuffleBytes
	if ws*2 >= ns {
		t.Fatalf("stateful combiner should slash shuffle: %d vs %d", ws, ns)
	}
}

func TestAssociativeSS3ReducesCompute(t *testing.T) {
	y := dataset.MustGenerate(dataset.Spec{Kind: dataset.KindTweets, Rows: 800, Cols: 400, Seed: 26})
	rows := dataset.Rows(y)
	opt := DefaultOptions(5)
	opt.MaxIter = 2
	opt.Tol = 0

	fastEng := testEngineMR()
	fast, err := FitMapReduce(fastEng, rows, 400, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.AssociativeSS3 = false
	slowEng := testEngineMR()
	naive, err := FitMapReduce(slowEng, rows, 400, slow)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-9 {
		t.Fatalf("associativity changed the math: gap %v", gap)
	}
	ss3Ops := func(e *mapred.Engine) int64 {
		var ops int64
		for _, p := range e.Cluster.PhaseLog() {
			if p.Name == "ss3Job/map" {
				ops += p.ComputeOps
			}
		}
		return ops
	}
	fo, so := ss3Ops(fastEng), ss3Ops(slowEng)
	if fo*3 >= so {
		t.Fatalf("associative ss3 should slash compute: %d vs %d", fo, so)
	}
}

func TestSparkAssociativeSS3Matches(t *testing.T) {
	rows, _ := testRows(t, 100, 30, 3, 27)
	opt := DefaultOptions(3)
	opt.MaxIter = 3
	opt.Tol = 0
	fast, err := FitSpark(testCtxSpark(), rows, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow := opt
	slow.AssociativeSS3 = false
	naive, err := FitSpark(testCtxSpark(), rows, 30, slow)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(fast.Components, naive.Components); gap > 1e-9 {
		t.Fatalf("spark associativity changed the math: gap %v", gap)
	}
}
