package ppca

import (
	"fmt"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
	"spca/internal/trace"
)

// FitSpark runs sPCA on the Spark-like engine (Algorithm 5, YtXSparkJob).
// The input matrix is persisted in the cluster's aggregate memory and
// scanned once (YtXJob) plus once more (ss3Job) per iteration; per-row
// partial results are folded into accumulators, and only the sparse entries
// of each YtX partial cross the network (§4.2).
func FitSpark(ctx *rdd.Context, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if err := opt.validate(len(rows), dims); err != nil {
		return nil, err
	}
	cl := ctx.Cluster()
	if tr := opt.Tracer; tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitSpark", trace.KindFit,
			trace.I("rows", int64(len(rows))), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}

	y := rdd.Parallelize(ctx, "Y", rows, mapred.BytesOfSparseVec)
	y.Persist()
	defer y.Unpersist()

	res := &Result{}
	var em *emDriver
	if snap := opt.Resume; snap != nil {
		// Resume: the RDD setup above had to be redone by this incarnation,
		// so its cost (everything charged so far) moves to RecoverySeconds
		// when the clock is rewound to the snapshot's value; the mean and
		// Frobenius jobs are restored, not re-run.
		if err := snap.Validate(len(rows), dims, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		setup := cl.Metrics().SimSeconds
		em = newEMDriver(opt, len(rows), dims, snap.Mean, snap.SS1)
		cl.RestoreMetrics(snap.Metrics)
		cl.ChargeDriverRestore(snap.CostBytes(), opt.RecoveredSeconds+setup)
		ctx.SetEpoch(snap.FaultEpoch)
		em.restore(snap, res)
	} else {
		mean, err := sparkMean(ctx, y, dims)
		if err != nil {
			return nil, err
		}
		ss1, err := sparkFnorm(ctx, y, mean, opt.EfficientFrobenius)
		if err != nil {
			return nil, err
		}
		em = newEMDriver(opt, len(rows), dims, mean, ss1)
		if opt.SmartGuess {
			if err := smartGuessSpark(ctx, rows, dims, opt, em); err != nil {
				return nil, fmt.Errorf("ppca: smart guess: %w", err)
			}
		}
		if opt.Incarnation > 0 {
			cl.ChargeDriverRestore(0, opt.RecoveredSeconds)
		}
	}
	res.Mean = em.mean

	// Per-partition task scratch plus the driver-side sums, allocated once
	// and recycled every iteration (nil = legacy allocating path).
	var scr *sparkScratch
	if reuseScratch {
		scr = newSparkScratch(y.NumPartitions(), dims, em.d)
	}
	e := &sparkEngine{
		ctx: ctx, y: y, dims: dims, opt: opt, scr: scr,
		ymat:   sparseFromRows(rows, dims),
		sample: sampleIdx(len(rows), opt.sampleRows(), opt.Seed),
	}
	if err := runEM(em, opt, e, res); err != nil {
		return nil, err
	}
	return res, nil
}

// sparkEngine adapts the RDD jobs to the shared guarded EM loop.
type sparkEngine struct {
	ctx    *rdd.Context
	y      *rdd.RDD[matrix.SparseVector]
	dims   int
	opt    Options
	scr    *sparkScratch
	ymat   *matrix.Sparse
	sample []int
}

func (e *sparkEngine) cluster() *cluster.Cluster { return e.ctx.Cluster() }
func (e *sparkEngine) faultEpoch() int64         { return e.ctx.Epoch() }

func (e *sparkEngine) prepared(em *emDriver) {
	rdd.Broadcast(e.ctx, "CM", mapred.BytesOfDense(em.cm))
}

func (e *sparkEngine) pass(em *emDriver) (jobSums, error) {
	if e.opt.MinimizeIntermediate {
		return sparkYtXJob(e.ctx, e.y, e.dims, em, e.opt, e.scr)
	}
	return sparkUnoptimized(e.ctx, e.y, e.dims, em, e.opt)
}

func (e *sparkEngine) solved(em *emDriver, cNew *matrix.Dense) {
	d := int64(e.opt.Components)
	e.ctx.Cluster().AddDriverCompute(int64(e.dims)*d*d + d*d*d)
	rdd.Broadcast(e.ctx, "C", mapred.BytesOfDense(cNew))
}

func (e *sparkEngine) ss3(em *emDriver, cNew *matrix.Dense) (float64, error) {
	return sparkSS3Job(e.ctx, e.y, em, cNew, e.opt, e.scr)
}

func (e *sparkEngine) reconErr(em *emDriver) float64 { return em.reconError(e.ymat, e.sample) }

// meanPartial is the per-partition state of the mean computation.
type meanPartial struct {
	sums  map[int]float64
	count float64
}

func meanPartialBytes(p *meanPartial) int64 {
	if p == nil {
		return 8
	}
	return 16 + int64(len(p.sums))*16
}

func sparkMean(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], dims int) ([]float64, error) {
	agg, err := rdd.Aggregate(y, "meanJob",
		func() *meanPartial { return &meanPartial{sums: map[int]float64{}} },
		func(p *meanPartial, row matrix.SparseVector, ops *rdd.TaskOps) *meanPartial {
			for k, j := range row.Indices {
				p.sums[j] += row.Values[k]
			}
			p.count++
			ops.AddOps(int64(row.NNZ()))
			return p
		},
		func(a, b *meanPartial) *meanPartial {
			for j, v := range b.sums {
				a.sums[j] += v
			}
			a.count += b.count
			return a
		},
		meanPartialBytes,
	)
	if err != nil {
		return nil, err
	}
	defer ctx.Cluster().FreeDriver(meanPartialBytes(agg))
	if agg.count == 0 {
		return nil, fmt.Errorf("ppca: sparkMean saw no rows")
	}
	mean := make([]float64, dims)
	for j, v := range agg.sums {
		mean[j] = v / agg.count
	}
	return mean, nil
}

// fnormPart is one partition's Frobenius partial: the scalar that crosses
// the wire plus the task-local densify buffer (Algorithm 2 path) that never
// leaves the task — sized to the widest row seen, not allocated per row.
type fnormPart struct {
	sum   float64
	dense []float64
}

func sparkFnorm(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], mean []float64, efficient bool) (float64, error) {
	var msum float64
	for _, mv := range mean {
		msum += mv * mv
	}
	agg, err := rdd.AggregateInto(y, "FnormJob",
		func(int) *fnormPart { return &fnormPart{} },
		func(acc *fnormPart, row matrix.SparseVector, ops *rdd.TaskOps) *fnormPart {
			if efficient {
				s := msum
				for k, j := range row.Indices {
					v := row.Values[k]
					dv := v - mean[j]
					s += dv*dv - mean[j]*mean[j]
				}
				ops.AddOps(int64(2 * row.NNZ()))
				acc.sum += s
				return acc
			}
			if cap(acc.dense) < row.Len {
				acc.dense = make([]float64, row.Len)
			}
			dense := acc.dense[:row.Len]
			for j := range dense {
				dense[j] = 0
			}
			for k, j := range row.Indices {
				dense[j] = row.Values[k]
			}
			var s float64
			for j, v := range dense {
				dv := v - mean[j]
				s += dv * dv
			}
			ops.AddOps(int64(2 * row.Len))
			acc.sum += s
			return acc
		},
		func(a, b *fnormPart) *fnormPart { a.sum += b.sum; return a },
		func(*fnormPart) int64 { return 8 },
	)
	if err != nil {
		return 0, err
	}
	ctx.Cluster().FreeDriver(8)
	return agg.sum, nil
}

// sparkSums is the per-partition partial of the consolidated YtX job.
type sparkSums struct {
	ytx  map[int][]float64
	xtx  []float64
	sumX []float64
}

func newSparkSums(d int) *sparkSums {
	return &sparkSums{
		ytx:  make(map[int][]float64),
		xtx:  make([]float64, d*d),
		sumX: make([]float64, d),
	}
}

// bytes models the wire size when only sparse YtX entries are shipped.
func (s *sparkSums) bytes(d int) int64 {
	return int64(len(s.ytx))*(8+int64(d)*8) + int64(d*d)*8 + int64(d)*8
}

func (s *sparkSums) merge(o *sparkSums) {
	for j, v := range o.ytx {
		if p := s.ytx[j]; p != nil {
			matrix.AXPY(1, v, p)
		} else {
			s.ytx[j] = v
		}
	}
	matrix.AXPY(1, o.xtx, s.xtx)
	matrix.AXPY(1, o.sumX, s.sumX)
}

// sparkScratch owns the per-fit reusable state of the Spark jobs: one scratch
// per partition (partition count is fixed for the life of the RDD), the
// accumulator zero the per-iteration YtX accumulator folds into, and the
// driver-side jobSums. A nil *sparkScratch (reuseScratch=false) makes every
// accessor allocate fresh, reproducing the legacy behaviour.
//
// Ownership protocol: the accumulator merge steals YtX row vectors from the
// first task partial holding each key, so after Value() the accumulator zero
// aliases task-owned vectors. Those aliases die when resetAccZero clears the
// map at the START of the next YtX pass — before any task scratch is reset —
// so a cleared-and-recycled vector is never reachable through a live map.
type sparkScratch struct {
	d       int
	parts   []*sparkPartScratch
	accZero *sparkSums
	sums    jobSums
}

func newSparkScratch(partitions, dims, d int) *sparkScratch {
	return &sparkScratch{
		d:       d,
		parts:   make([]*sparkPartScratch, partitions),
		accZero: newSparkSums(d),
		sums:    newJobSums(dims, d),
	}
}

// resetAccZero clears the accumulator zero for a new pass. The map values are
// NOT recycled here — they are owned by the task scratches that donated them.
func (sc *sparkScratch) resetAccZero(d int) *sparkSums {
	if sc == nil {
		return newSparkSums(d)
	}
	clear(sc.accZero.ytx)
	for i := range sc.accZero.xtx {
		sc.accZero.xtx[i] = 0
	}
	for i := range sc.accZero.sumX {
		sc.accZero.sumX[i] = 0
	}
	return sc.accZero
}

// sparkPartScratch is one partition's task-local scratch, shared by the YtX
// and ss3 passes (which never run concurrently). Tasks for distinct
// partitions write distinct slots of the pre-sized parts slice, so the
// concurrent partition loop never races.
type sparkPartScratch struct {
	d    int
	sums *sparkSums
	free [][]float64 // recycled YtX partial rows
	xi   []float64
	ct   []float64
	xc   []float64 // D-length scratch for the non-associative ss3 order
	idx  []int     // densify scratch for the no-mean-propagation ablation
	vals []float64
}

func newSparkPartScratch(d int) *sparkPartScratch {
	return &sparkPartScratch{
		d:    d,
		sums: newSparkSums(d),
		xi:   make([]float64, d),
		ct:   make([]float64, d),
	}
}

// ytxPart returns partition task's scratch with its sums reset for a new pass.
func (sc *sparkScratch) ytxPart(task, d int) *sparkPartScratch {
	ps := sc.partScratch(task, d)
	for j, p := range ps.sums.ytx {
		ps.free = append(ps.free, p)
		delete(ps.sums.ytx, j)
	}
	for i := range ps.sums.xtx {
		ps.sums.xtx[i] = 0
	}
	for i := range ps.sums.sumX {
		ps.sums.sumX[i] = 0
	}
	return ps
}

// ss3Part returns partition task's scratch without touching sums (the ss3
// pass only uses the vector buffers, which are overwritten per row).
func (sc *sparkScratch) ss3Part(task, d int) *sparkPartScratch {
	return sc.partScratch(task, d)
}

func (sc *sparkScratch) partScratch(task, d int) *sparkPartScratch {
	if sc == nil {
		return newSparkPartScratch(d)
	}
	ps := sc.parts[task]
	if ps == nil {
		ps = newSparkPartScratch(d)
		sc.parts[task] = ps
	}
	return ps
}

// vec hands out a zeroed d-vector, recycling the freelist when possible.
func (ps *sparkPartScratch) vec() []float64 {
	if n := len(ps.free); n > 0 {
		p := ps.free[n-1]
		ps.free = ps.free[:n-1]
		for i := range p {
			p[i] = 0
		}
		return p
	}
	return make([]float64, ps.d)
}

func (ps *sparkPartScratch) densify(row matrix.SparseVector, mean []float64) matrix.SparseVector {
	if cap(ps.idx) < row.Len {
		ps.idx = make([]int, row.Len)
		ps.vals = make([]float64, row.Len)
	}
	return matrix.DensifyCenteredInto(row, mean, ps.idx[:row.Len], ps.vals[:row.Len])
}

// sparkYtXJob is Algorithm 5: one map pass computing X on demand, folding
// XtX/YtX/ΣX partials into accumulators inside the map (no reduce stage).
func sparkYtXJob(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], dims int, em *emDriver, opt Options, scr *sparkScratch) (jobSums, error) {
	d := em.d
	acc := rdd.NewAccumulator(ctx, "YtXSum", scr.resetAccZero(d),
		func(into, from *sparkSums) *sparkSums { into.merge(from); return into },
		func(s *sparkSums) int64 { return s.bytes(d) },
	)
	err := y.ForeachPartition("YtXJob", func(task int, part []matrix.SparseVector, ops *rdd.TaskOps) {
		ps := scr.ytxPart(task, d)
		local, xi := ps.sums, ps.xi
		for _, row := range part {
			if !opt.MeanPropagation {
				row = ps.densify(row, em.mean)
			}
			computeRowLatent(row, em, opt.MeanPropagation, xi)
			for k, j := range row.Indices {
				p := local.ytx[j]
				if p == nil {
					p = ps.vec()
					local.ytx[j] = p
				}
				matrix.AXPY(row.Values[k], xi, p)
			}
			for a := 0; a < d; a++ {
				va := xi[a]
				base := a * d
				for b := 0; b < d; b++ {
					local.xtx[base+b] += va * xi[b]
				}
			}
			matrix.AXPY(1, xi, local.sumX)
			ops.AddOps(int64(2*row.NNZ()*d + d*d + d))
		}
		acc.Merge(task, local)
	})
	if err != nil {
		return jobSums{}, err
	}
	total := acc.Value()
	var sums jobSums
	if scr != nil {
		sums = scr.sums
		sums.ytx.Zero()
		// Copy, not alias: total.sumX is the pooled accumulator zero, which
		// the next pass clears while the driver still holds these sums.
		copy(sums.sumX, total.sumX)
	} else {
		sums = jobSums{
			ytx:  matrix.NewDense(dims, d),
			xtx:  matrix.NewDense(d, d),
			sumX: total.sumX,
		}
	}
	for j, v := range total.ytx {
		copy(sums.ytx.Row(j), v)
	}
	copy(sums.xtx.Data, total.xtx)
	return sums, nil
}

func sparkSS3Job(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], em *emDriver, cNew *matrix.Dense, opt Options, scr *sparkScratch) (float64, error) {
	d := em.d
	acc := rdd.NewAccumulator(ctx, "ss3", 0.0,
		func(a, b float64) float64 { return a + b },
		func(float64) int64 { return 8 },
	)
	err := y.ForeachPartition("ss3Job", func(task int, part []matrix.SparseVector, ops *rdd.TaskOps) {
		ps := scr.ss3Part(task, d)
		xi, ct := ps.xi, ps.ct
		var local float64
		for _, row := range part {
			if !opt.MeanPropagation {
				row = ps.densify(row, em.mean)
			}
			computeRowLatent(row, em, opt.MeanPropagation, xi)
			if opt.AssociativeSS3 {
				// Eq. 3 with associativity: Cᵀ·Yiᵀ touches only non-zeros.
				for k := range ct {
					ct[k] = 0
				}
				for k, j := range row.Indices {
					matrix.AXPY(row.Values[k], cNew.Row(j), ct)
				}
				local += matrix.Dot(xi, ct)
				ops.AddOps(int64(2*row.NNZ()*d + d))
				continue
			}
			// Dense order (Xi·Cᵀ)·Yiᵀ: O(D·d) per row.
			if ps.xc == nil {
				ps.xc = make([]float64, cNew.R)
			}
			denseXC(xi, cNew, ps.xc)
			var s float64
			for k, j := range row.Indices {
				s += ps.xc[j] * row.Values[k]
			}
			local += s
			ops.AddOps(int64(row.NNZ()*d + cNew.R*d + row.NNZ()))
		}
		acc.Merge(task, local)
	})
	if err != nil {
		return 0, err
	}
	return acc.Value(), nil
}

// sparkUnoptimized materializes X as a (never-cached, so disk-resident) RDD
// and runs separate XtX and YtX passes over it — the baseline of Table 3's
// "intermediate data" row.
func sparkUnoptimized(ctx *rdd.Context, y *rdd.RDD[matrix.SparseVector], dims int, em *emDriver, opt Options) (jobSums, error) {
	d := em.d
	// Materialize X alongside Y so later passes can join them.
	pairs := rdd.Map(y, "XJob", func(row matrix.SparseVector) pairYX {
		r := row
		if !opt.MeanPropagation {
			r = densifyCentered(row, em.mean)
		}
		xi := make([]float64, d)
		computeRowLatent(r, em, opt.MeanPropagation, xi)
		return pairYX{y: row, x: xi}
	}, func(p pairYX) int64 {
		return mapred.BytesOfSparseVec(p.y) + mapred.BytesOfVec(p.x)
	}, int64(d)*8)

	// Pass 1: XtX and ΣX from the stored X.
	xtxAcc := rdd.NewAccumulator(ctx, "XtXSum", newSparkSums(d),
		func(into, from *sparkSums) *sparkSums { into.merge(from); return into },
		func(s *sparkSums) int64 { return s.bytes(d) },
	)
	err := pairs.ForeachPartition("XtXJob", func(task int, part []pairYX, ops *rdd.TaskOps) {
		local := newSparkSums(d)
		for _, p := range part {
			for a := 0; a < d; a++ {
				va := p.x[a]
				base := a * d
				for b := 0; b < d; b++ {
					local.xtx[base+b] += va * p.x[b]
				}
			}
			matrix.AXPY(1, p.x, local.sumX)
			ops.AddOps(int64(d*d + d))
		}
		xtxAcc.Merge(task, local)
	})
	if err != nil {
		return jobSums{}, err
	}

	// Pass 2: YtX from Y joined with the stored X.
	ytxAcc := rdd.NewAccumulator(ctx, "YtXSum", newSparkSums(d),
		func(into, from *sparkSums) *sparkSums { into.merge(from); return into },
		func(s *sparkSums) int64 { return s.bytes(d) },
	)
	err = pairs.ForeachPartition("YtXJoinJob", func(task int, part []pairYX, ops *rdd.TaskOps) {
		local := newSparkSums(d)
		for _, p := range part {
			row := p.y
			if !opt.MeanPropagation {
				row = densifyCentered(row, em.mean)
			}
			for k, j := range row.Indices {
				q := local.ytx[j]
				if q == nil {
					q = make([]float64, d)
					local.ytx[j] = q
				}
				matrix.AXPY(row.Values[k], p.x, q)
			}
			ops.AddOps(int64(row.NNZ() * d))
		}
		ytxAcc.Merge(task, local)
	})
	if err != nil {
		return jobSums{}, err
	}

	xres := xtxAcc.Value()
	yres := ytxAcc.Value()
	sums := jobSums{
		ytx:  matrix.NewDense(dims, d),
		xtx:  matrix.NewDense(d, d),
		sumX: xres.sumX,
	}
	for j, v := range yres.ytx {
		copy(sums.ytx.Row(j), v)
	}
	copy(sums.xtx.Data, xres.xtx)
	return sums, nil
}

func smartGuessSpark(ctx *rdd.Context, rows []matrix.SparseVector, dims int, opt Options, em *emDriver) error {
	n := smartGuessSize(opt, len(rows))
	if n >= len(rows) {
		return nil
	}
	sample := sampleSparseRows(sparseFromRows(rows, dims), n, opt.Seed+0x5A)
	subOpt := opt
	subOpt.SmartGuess = false
	subOpt.TargetAccuracy = 0
	subOpt.IdealError = 0
	subOpt.MaxIter = 5
	res, err := FitLocal(sample, subOpt)
	if err != nil {
		return err
	}
	ctx.Cluster().AddDriverCompute(int64(subOpt.MaxIter) * 2 * int64(sample.NNZ()) * int64(opt.Components))
	em.c = res.Components
	em.ss = res.SS
	return nil
}
