package ppca

import (
	"math"
	"testing"

	"spca/internal/dataset"
	"spca/internal/matrix"
)

// lowRankSparse generates a planted low-rank sparse matrix for fit tests.
func lowRankSparse(n, dims, rank int, seed uint64) *matrix.Sparse {
	return dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: n, Cols: dims, Rank: rank, Seed: seed,
	})
}

func TestFitLocalRecoversPlantedSubspace(t *testing.T) {
	y := lowRankSparse(200, 60, 4, 1)
	opt := DefaultOptions(4)
	opt.MaxIter = 60
	opt.Tol = 1e-9
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Exact PCA subspace from the dense SVD of the centered matrix.
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 4)
	gap := matrix.SubspaceGap(res.Components, v)
	if gap > 0.02 {
		t.Fatalf("PPCA subspace gap vs exact PCA = %v", gap)
	}
}

func TestFitLocalErrorDecreases(t *testing.T) {
	y := lowRankSparse(150, 40, 3, 2)
	opt := DefaultOptions(3)
	opt.MaxIter = 20
	opt.Tol = 0 // run all iterations
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 3 {
		t.Fatalf("history too short: %d", len(res.History))
	}
	first := res.History[0].Err
	last := res.History[len(res.History)-1].Err
	if last >= first {
		t.Fatalf("error did not decrease: %v -> %v", first, last)
	}
	if last > 0.5 {
		t.Fatalf("final error too high: %v", last)
	}
}

func TestFitLocalValidation(t *testing.T) {
	y := lowRankSparse(10, 5, 2, 3)
	if _, err := FitLocal(y, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitLocal(y, DefaultOptions(6)); err == nil {
		t.Fatal("expected error for d > D")
	}
	bad := DefaultOptions(2)
	bad.MaxIter = 0
	if _, err := FitLocal(y, bad); err == nil {
		t.Fatal("expected error for MaxIter 0")
	}
	empty := matrix.NewSparse(0, 5)
	if _, err := FitLocal(empty, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestFitLocalDeterministic(t *testing.T) {
	y := lowRankSparse(80, 30, 3, 4)
	opt := DefaultOptions(3)
	a, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Components.MaxAbsDiff(b.Components) != 0 || a.SS != b.SS {
		t.Fatal("FitLocal not deterministic")
	}
}

func TestFitLocalStopsOnTolerance(t *testing.T) {
	y := lowRankSparse(100, 30, 2, 5)
	opt := DefaultOptions(2)
	opt.MaxIter = 100
	opt.Tol = 0.05
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100 {
		t.Fatalf("tolerance stop never fired (%d iterations)", res.Iterations)
	}
}

func TestFitLocalTargetAccuracyStop(t *testing.T) {
	y := lowRankSparse(120, 30, 3, 6)
	opt := DefaultOptions(3)
	opt.MaxIter = 50
	opt.Tol = 0
	opt.IdealError = IdealError(y, 3, opt)
	opt.TargetAccuracy = 0.95
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if last.Accuracy < 0.95 {
		t.Fatalf("final accuracy %v below target", last.Accuracy)
	}
	if res.Iterations == 50 {
		t.Log("warning: accuracy target only reached at iteration cap")
	}
}

func TestSmartGuessConvergesFaster(t *testing.T) {
	y := lowRankSparse(600, 50, 4, 7)
	base := DefaultOptions(4)
	base.MaxIter = 1
	base.Tol = 0
	plain, err := FitLocal(y, base)
	if err != nil {
		t.Fatal(err)
	}
	sg := base
	sg.SmartGuess = true
	smart, err := FitLocal(y, sg)
	if err != nil {
		t.Fatal(err)
	}
	// After a single iteration on the full data, the smart-guess start must
	// be strictly better than the random start (§5.2, Figure 5).
	if smart.History[0].Err >= plain.History[0].Err {
		t.Fatalf("smart guess not better after 1 iter: %v vs %v",
			smart.History[0].Err, plain.History[0].Err)
	}
}

func TestTransformReconstructRoundTrip(t *testing.T) {
	y := lowRankSparse(100, 40, 3, 8)
	opt := DefaultOptions(3)
	opt.MaxIter = 40
	opt.Tol = 1e-8
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Transform(y)
	if err != nil {
		t.Fatal(err)
	}
	if x.R != 100 || x.C != 3 {
		t.Fatalf("latent dims %dx%d", x.R, x.C)
	}
	recon := res.Reconstruct(x)
	dense := y.Dense()
	// Relative reconstruction error should be small for rank-3 data.
	relErr := recon.Sub(dense).Norm1() / dense.Norm1()
	if relErr > 0.2 {
		t.Fatalf("round-trip relative error %v", relErr)
	}
	// Dim mismatch is reported.
	if _, err := res.Transform(matrix.NewSparse(5, 7)); err == nil {
		t.Fatal("expected dims error")
	}
}

func TestIdealErrorBeatsEMError(t *testing.T) {
	y := lowRankSparse(150, 40, 3, 9)
	opt := DefaultOptions(3)
	ideal := IdealError(y, 3, opt)
	if ideal <= 0 || ideal >= 1 {
		t.Fatalf("ideal error %v out of range", ideal)
	}
	opt.MaxIter = 2
	res, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	// An exact PCA cannot be worse than 2 EM iterations (allow tiny slack
	// for the sampled metric).
	if ideal > res.History[len(res.History)-1].Err+0.02 {
		t.Fatalf("ideal %v worse than EM %v", ideal, res.History[len(res.History)-1].Err)
	}
}

func TestAccuracyOfClamping(t *testing.T) {
	o := Options{IdealError: 0.1}
	if a := o.accuracyOf(0.1); math.Abs(a-1) > 1e-12 {
		t.Fatalf("accuracy at ideal error = %v", a)
	}
	if a := o.accuracyOf(0.05); a != 1 {
		t.Fatalf("better-than-ideal should clamp to 1: %v", a)
	}
	if a := o.accuracyOf(0.2); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("accuracy at double the ideal error = %v, want 0.5", a)
	}
	if a := (Options{}).accuracyOf(0.5); a != 0 {
		t.Fatal("accuracy without ideal error should be 0")
	}
}

func TestSmartGuessSize(t *testing.T) {
	o := DefaultOptions(10)
	if got := smartGuessSize(o, 100000); got != 2000 {
		t.Fatalf("cap: %d", got)
	}
	if got := smartGuessSize(o, 300); got != 30 {
		t.Fatalf("tenth: %d", got)
	}
	if got := smartGuessSize(o, 50); got != 20 {
		t.Fatalf("min 2d: %d", got)
	}
	o.SmartGuessRows = 77
	if got := smartGuessSize(o, 1000); got != 77 {
		t.Fatalf("explicit: %d", got)
	}
}

func TestSampleIdx(t *testing.T) {
	idx := sampleIdx(10, 100, 1)
	if len(idx) != 10 {
		t.Fatalf("want all rows, got %d", len(idx))
	}
	idx = sampleIdx(1000, 50, 1)
	if len(idx) != 50 {
		t.Fatalf("want 50, got %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("sample not sorted/unique")
		}
	}
}
