package ppca

import (
	"errors"
	"fmt"
	"math"

	"spca/internal/matrix"
)

// The paper's §2.4 lists a second desirable PPCA property: "multiple PPCA
// models can be combined as a probabilistic mixture for better accuracy and
// to express complex models" (Tipping & Bishop's MPPCA). This file
// implements that extension: an EM fit of a mixture of local PPCA models,
// each with its own mean, loading matrix and noise variance. All densities
// are evaluated through the Woodbury identity so no D x D matrix is ever
// formed.

// MixtureOptions configures FitMixture.
type MixtureOptions struct {
	// Models is the number of mixture components M.
	Models int
	// Components is the latent dimensionality d of each local model.
	Components int
	// MaxIter caps EM iterations.
	MaxIter int
	// Tol stops when the relative log-likelihood improvement falls below it.
	Tol float64
	// Seed drives the initialization.
	Seed uint64
}

// DefaultMixtureOptions returns sensible defaults for m local models of
// d components each.
func DefaultMixtureOptions(m, d int) MixtureOptions {
	return MixtureOptions{Models: m, Components: d, MaxIter: 50, Tol: 1e-6, Seed: 42}
}

// MixtureResult is the output of FitMixture.
type MixtureResult struct {
	// Weights are the mixing proportions (length M, summing to 1).
	Weights []float64
	// Means holds each model's mean as a row (M x D).
	Means *matrix.Dense
	// Components holds each model's D x d loading matrix.
	Components []*matrix.Dense
	// Variances are the per-model noise variances.
	Variances []float64
	// Responsibilities is the N x M posterior assignment matrix.
	Responsibilities *matrix.Dense
	// LogLikelihood per iteration (must be non-decreasing).
	LogLikelihood []float64
	// Iterations executed.
	Iterations int
}

// Assign returns each row's most responsible mixture component.
func (r *MixtureResult) Assign() []int {
	out := make([]int, r.Responsibilities.R)
	for i := range out {
		row := r.Responsibilities.Row(i)
		best := 0
		for m, v := range row {
			if v > row[best] {
				best = m
			}
		}
		out[i] = best
	}
	return out
}

// mixtureModel is the per-component state during EM.
type mixtureModel struct {
	mean []float64
	c    *matrix.Dense // D x d
	ss   float64

	// Derived per iteration.
	minv   *matrix.Dense // (CᵀC + ss I)⁻¹
	logDet float64       // log |Σ| via Woodbury
}

// refresh recomputes the Woodbury terms. D is the data dimensionality.
func (m *mixtureModel) refresh(dims int) error {
	mm := m.c.MulT(m.c).AddScaledIdentity(m.ss)
	l, err := matrix.Cholesky(mm)
	if err != nil {
		return fmt.Errorf("ppca: mixture M matrix not SPD: %w", err)
	}
	var logDetM float64
	for i := 0; i < l.R; i++ {
		logDetM += 2 * math.Log(l.At(i, i))
	}
	m.minv, err = matrix.Inverse(mm)
	if err != nil {
		return err
	}
	d := m.c.C
	// |Σ| = ss^(D-d) · |M|  (matrix determinant lemma).
	m.logDet = float64(dims-d)*math.Log(m.ss) + logDetM
	return nil
}

// logDensity returns log N(y | mean, C Cᵀ + ss I) using Woodbury:
// quad = (‖r‖² - tᵀ M⁻¹ t)/ss with r = y - mean, t = Cᵀ r.
func (m *mixtureModel) logDensity(y []float64) float64 {
	dims := len(y)
	r := make([]float64, dims)
	var rr float64
	for j, v := range y {
		r[j] = v - m.mean[j]
		rr += r[j] * r[j]
	}
	t := m.c.MulVecT(r)
	quad := (rr - matrix.Dot(t, m.minv.MulVec(t))) / m.ss
	return -0.5 * (float64(dims)*math.Log(2*math.Pi) + m.logDet + quad)
}

// FitMixture fits a mixture of PPCA models to the rows of y (dense, fully
// observed) with EM.
func FitMixture(y *matrix.Dense, opt MixtureOptions) (*MixtureResult, error) {
	n, dims := y.Dims()
	if opt.Models <= 0 {
		return nil, errors.New("ppca: mixture needs at least one model")
	}
	if opt.Components <= 0 || opt.Components >= dims {
		return nil, fmt.Errorf("ppca: mixture components %d must be in (0, %d)", opt.Components, dims)
	}
	if n < opt.Models {
		return nil, errors.New("ppca: fewer rows than mixture models")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	M, d := opt.Models, opt.Components
	rng := matrix.NewRNG(opt.Seed + 0x3C3C)

	globalMean := y.ColMeans()
	var globalVar float64
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j, v := range row {
			dv := v - globalMean[j]
			globalVar += dv * dv
		}
	}
	globalVar /= float64(n * dims)
	if globalVar <= 0 {
		globalVar = 1
	}

	// Initialize from a hard partition (k-means++-style seeding followed by
	// a few Lloyd assignments) so EM starts near a sensible local optimum:
	// each model gets its cluster's mean and spread.
	assign := seedPartition(y, M, rng)
	models := make([]*mixtureModel, M)
	weights := make([]float64, M)
	for m := 0; m < M; m++ {
		mean := make([]float64, dims)
		var count float64
		var spread float64
		for i := 0; i < n; i++ {
			if assign[i] != m {
				continue
			}
			count++
			matrix.AXPY(1, y.Row(i), mean)
		}
		if count == 0 {
			copy(mean, y.Row(rng.Intn(n)))
			count = 1
		} else {
			matrix.VecScale(1/count, mean)
		}
		for i := 0; i < n; i++ {
			if assign[i] != m {
				continue
			}
			row := y.Row(i)
			for j, v := range row {
				dv := v - mean[j]
				spread += dv * dv
			}
		}
		variance := spread / (count * float64(dims))
		if variance <= 0 {
			variance = globalVar
		}
		models[m] = &mixtureModel{
			mean: mean,
			c:    matrix.NormRnd(rng, dims, d).Scale(math.Sqrt(variance)),
			ss:   variance,
		}
		weights[m] = count / float64(n)
	}

	res := &MixtureResult{}
	resp := matrix.NewDense(n, M)
	logp := make([]float64, M)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		for _, m := range models {
			if err := m.refresh(dims); err != nil {
				return nil, err
			}
		}

		// ---- E-step: responsibilities and data log-likelihood.
		var ll float64
		for i := 0; i < n; i++ {
			row := y.Row(i)
			maxLog := math.Inf(-1)
			for m, mod := range models {
				logp[m] = math.Log(weights[m]) + mod.logDensity(row)
				if logp[m] > maxLog {
					maxLog = logp[m]
				}
			}
			var sum float64
			for m := range logp {
				logp[m] = math.Exp(logp[m] - maxLog)
				sum += logp[m]
			}
			r := resp.Row(i)
			for m := range logp {
				r[m] = logp[m] / sum
			}
			ll += maxLog + math.Log(sum)
		}
		res.LogLikelihood = append(res.LogLikelihood, ll)
		res.Iterations = iter

		// ---- M-step: weighted PPCA update per model.
		for m, mod := range models {
			var rsum float64
			newMean := make([]float64, dims)
			for i := 0; i < n; i++ {
				ri := resp.At(i, m)
				rsum += ri
				matrix.AXPY(ri, y.Row(i), newMean)
			}
			if rsum < 1e-10 {
				// Dead component: re-seed at a random row.
				copy(mod.mean, y.Row(rng.Intn(n)))
				weights[m] = 1e-6
				continue
			}
			weights[m] = rsum / float64(n)
			matrix.VecScale(1/rsum, newMean)
			mod.mean = newMean

			// Weighted latent statistics with the CURRENT loading.
			cm := mod.c.Mul(mod.minv) // D x d: maps centered rows to x̂
			sumYX := matrix.NewDense(dims, d)
			sumXX := matrix.NewDense(d, d)
			var sumRR float64
			r := make([]float64, dims)
			for i := 0; i < n; i++ {
				ri := resp.At(i, m)
				if ri == 0 {
					continue
				}
				row := y.Row(i)
				var rr float64
				for j, v := range row {
					r[j] = v - newMean[j]
					rr += r[j] * r[j]
				}
				x := cm.MulVecT(r) // x̂ = M⁻¹Cᵀ(y-µ) = (C·M⁻¹)ᵀ·r
				for j := 0; j < dims; j++ {
					if r[j] != 0 {
						matrix.AXPY(ri*r[j], x, sumYX.Row(j))
					}
				}
				for a := 0; a < d; a++ {
					base := a * d
					wxa := ri * x[a]
					for b := 0; b < d; b++ {
						sumXX.Data[base+b] += wxa * x[b]
					}
				}
				sumRR += ri * rr
			}
			// E[x xᵀ] sum = rsum·ss·M⁻¹ + Σ r_i x̂ x̂ᵀ.
			exx := sumXX.Add(mod.minv.Scale(rsum * mod.ss))
			cNew, err := matrix.SolveSPD(exx, sumYX)
			if err != nil {
				return nil, fmt.Errorf("ppca: mixture M-step solve: %w", err)
			}
			// ss update: (1/(D·rsum))·[Σ r‖y-µ‖² - tr(Cnewᵀ·(ΣYX))].
			var crossTrace float64
			for j := 0; j < dims; j++ {
				crossTrace += matrix.Dot(cNew.Row(j), sumYX.Row(j))
			}
			ssNew := (sumRR - crossTrace) / (float64(dims) * rsum)
			// Floor relative to the data scale: a collapsing variance turns
			// the component into a density spike, the classic mixture-EM
			// degeneracy.
			if floor := 1e-6 * globalVar; ssNew < floor || math.IsNaN(ssNew) {
				ssNew = floor
			}
			mod.c = cNew
			mod.ss = ssNew
		}
		// Renormalize weights (dead-component reseeding may break the sum).
		var wsum float64
		for _, w := range weights {
			wsum += w
		}
		for m := range weights {
			weights[m] /= wsum
		}

		if iter >= 2 {
			prev := res.LogLikelihood[iter-2]
			if math.Abs(ll-prev) < opt.Tol*math.Abs(prev)+1e-12 {
				break
			}
		}
	}

	res.Weights = weights
	res.Means = matrix.NewDense(M, dims)
	res.Components = make([]*matrix.Dense, M)
	res.Variances = make([]float64, M)
	for m, mod := range models {
		copy(res.Means.Row(m), mod.mean)
		res.Components[m] = mod.c
		res.Variances[m] = mod.ss
	}
	res.Responsibilities = resp
	return res, nil
}

// seedPartition produces a hard K-way partition of the rows, used only for
// EM initialization: several k-means++ restarts, keeping the lowest-inertia
// result (single-start Lloyd can land in poor local optima that mixture EM
// then cannot escape).
func seedPartition(y *matrix.Dense, k int, rng *matrix.RNG) []int {
	var best []int
	bestInertia := math.Inf(1)
	for restart := 0; restart < 5; restart++ {
		assign, inertia := seedPartitionOnce(y, k, rng)
		if inertia < bestInertia {
			bestInertia = inertia
			best = assign
		}
	}
	return best
}

func seedPartitionOnce(y *matrix.Dense, k int, rng *matrix.RNG) ([]int, float64) {
	n, dims := y.Dims()
	centers := matrix.NewDense(k, dims)
	copy(centers.Row(0), y.Row(rng.Intn(n)))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(y.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		pick := rng.Intn(n)
		if total > 0 {
			target := rng.Float64() * total
			var cum float64
			for i, d := range dist {
				cum += d
				if cum >= target {
					pick = i
					break
				}
			}
		}
		copy(centers.Row(c), y.Row(pick))
		for i := range dist {
			if d := sqDist(y.Row(i), centers.Row(c)); d < dist[i] {
				dist[i] = d
			}
		}
	}
	assign := make([]int, n)
	var inertia float64
	for pass := 0; pass < 10; pass++ {
		inertia = 0
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(y.Row(i), centers.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		next := matrix.NewDense(k, dims)
		counts := make([]float64, k)
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			matrix.AXPY(1, y.Row(i), next.Row(assign[i]))
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				matrix.VecScale(1/counts[c], next.Row(c))
			} else {
				copy(next.Row(c), y.Row(rng.Intn(n)))
			}
		}
		centers = next
	}
	return assign, inertia
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
