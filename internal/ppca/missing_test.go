package ppca

import (
	"math"
	"testing"

	"spca/internal/matrix"
)

// lowRankDenseWithHoles builds planted low-rank data and hides a fraction of
// entries, returning the holed matrix and the complete ground truth.
func lowRankDenseWithHoles(n, dims, rank int, missFrac float64, seed uint64) (holed, truth *matrix.Dense) {
	rng := matrix.NewRNG(seed)
	basis := matrix.NormRnd(rng, dims, rank)
	coef := matrix.NormRnd(rng, n, rank)
	truth = coef.MulBT(basis)
	for i := range truth.Data {
		truth.Data[i] += 0.05 * rng.NormFloat64()
	}
	holed = truth.Clone()
	for i := range holed.Data {
		if rng.Float64() < missFrac {
			holed.Data[i] = math.NaN()
		}
	}
	return holed, truth
}

func TestFitMissingImputesLowRankData(t *testing.T) {
	holed, truth := lowRankDenseWithHoles(120, 30, 3, 0.25, 1)
	opt := DefaultOptions(3)
	opt.MaxIter = 60
	opt.Tol = 1e-8
	res, err := FitMissing(holed, opt)
	if err != nil {
		t.Fatal(err)
	}
	imputed := res.Impute(holed)

	// Baseline: impute with column means.
	meanBase := holed.Clone()
	for i := 0; i < meanBase.R; i++ {
		row := meanBase.Row(i)
		for j, v := range row {
			if math.IsNaN(v) {
				row[j] = res.Mean[j]
			}
		}
	}
	var ppcaErr, meanErr float64
	var holes int
	for i, v := range holed.Data {
		if !math.IsNaN(v) {
			continue
		}
		holes++
		ppcaErr += math.Abs(imputed.Data[i] - truth.Data[i])
		meanErr += math.Abs(meanBase.Data[i] - truth.Data[i])
	}
	if holes == 0 {
		t.Fatal("no holes generated")
	}
	if ppcaErr >= 0.5*meanErr {
		t.Fatalf("PPCA imputation (%v) should beat mean imputation (%v) decisively", ppcaErr/float64(holes), meanErr/float64(holes))
	}
	// Observed entries untouched.
	for i, v := range holed.Data {
		if !math.IsNaN(v) && imputed.Data[i] != v {
			t.Fatal("Impute modified an observed entry")
		}
	}
}

func TestFitMissingObjectiveMonotone(t *testing.T) {
	holed, _ := lowRankDenseWithHoles(80, 20, 2, 0.2, 2)
	opt := DefaultOptions(2)
	opt.MaxIter = 30
	opt.Tol = 0
	res, err := FitMissing(holed, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LogLikeTrace); i++ {
		if res.LogLikeTrace[i] < res.LogLikeTrace[i-1]-1e-9 {
			t.Fatalf("EM objective decreased at iter %d: %v -> %v",
				i, res.LogLikeTrace[i-1], res.LogLikeTrace[i])
		}
	}
}

func TestFitMissingNoHolesMatchesSubspace(t *testing.T) {
	// With zero missing entries, FitMissing solves the same problem as
	// FitLocal; the recovered subspaces must agree.
	holed, _ := lowRankDenseWithHoles(150, 25, 3, 0, 3)
	opt := DefaultOptions(3)
	opt.MaxIter = 80
	opt.Tol = 1e-10
	dense, err := FitMissing(holed, opt)
	if err != nil {
		t.Fatal(err)
	}
	sp := matrix.FromDense(holed)
	ref, err := FitLocal(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(dense.Components, ref.Components); gap > 0.02 {
		t.Fatalf("subspace gap vs FitLocal: %v", gap)
	}
}

func TestFitMissingFullyUnobservedColumn(t *testing.T) {
	y := matrix.NewDense(5, 3)
	for i := 0; i < 5; i++ {
		y.Set(i, 1, math.NaN())
	}
	if _, err := FitMissing(y, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for unobserved column")
	}
}

func TestFitMissingEmptyRowAllowed(t *testing.T) {
	holed, _ := lowRankDenseWithHoles(40, 10, 2, 0.2, 4)
	for j := 0; j < 10; j++ {
		holed.Set(7, j, math.NaN()) // one fully-missing row
	}
	res, err := FitMissing(holed, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// The empty row's latent position is the prior mean (zero).
	for _, v := range res.Latent.Row(7) {
		if v != 0 {
			t.Fatalf("empty row latent = %v, want zeros", res.Latent.Row(7))
		}
	}
	// And its imputation is finite.
	imp := res.Impute(holed)
	for _, v := range imp.Row(7) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("imputation of empty row not finite")
		}
	}
}

func TestFitMissingValidation(t *testing.T) {
	y := matrix.NewDense(4, 3)
	if _, err := FitMissing(y, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	all := matrix.NewDense(2, 2)
	for i := range all.Data {
		all.Data[i] = math.NaN()
	}
	if _, err := FitMissing(all, DefaultOptions(1)); err == nil {
		t.Fatal("expected error when nothing is observed")
	}
}
