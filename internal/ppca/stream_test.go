package ppca

import (
	"os"
	"path/filepath"
	"testing"

	"spca/internal/matrix"
)

func TestFitStreamMatchesFitLocal(t *testing.T) {
	y := lowRankSparse(200, 40, 3, 61)
	opt := DefaultOptions(3)
	opt.MaxIter = 8
	opt.Tol = 0

	ref, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FitStream(matrix.SparseSource{M: y}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same math, same pass structure: results are identical.
	if got.Components.MaxAbsDiff(ref.Components) > 1e-12 {
		t.Fatalf("stream differs from local: %v", got.Components.MaxAbsDiff(ref.Components))
	}
	if diff := got.SS - ref.SS; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("SS %v vs %v", got.SS, ref.SS)
	}
}

func TestFitStreamFromFile(t *testing.T) {
	y := lowRankSparse(150, 30, 3, 62)
	path := filepath.Join(t.TempDir(), "y.spmx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.WriteSparse(f, y); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := matrix.OpenFileRowSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, d := src.Dims(); n != 150 || d != 30 {
		t.Fatalf("dims %dx%d", n, d)
	}
	opt := DefaultOptions(3)
	opt.MaxIter = 6
	opt.Tol = 0
	got, err := FitStream(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FitStream(matrix.SparseSource{M: y}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// File streaming is bit-identical to in-memory streaming (values round-
	// trip exactly through the text format).
	if got.Components.MaxAbsDiff(ref.Components) != 0 {
		t.Fatal("file-streamed fit differs from in-memory fit")
	}
}

func TestFitStreamRejectsTargetAccuracy(t *testing.T) {
	y := lowRankSparse(30, 10, 2, 63)
	opt := DefaultOptions(2)
	opt.TargetAccuracy = 0.95
	if _, err := FitStream(matrix.SparseSource{M: y}, opt); err == nil {
		t.Fatal("expected error for TargetAccuracy in streaming mode")
	}
}

func TestFileRowSourceErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := matrix.OpenFileRowSource(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := matrix.OpenFileRowSource(bad); err == nil {
		t.Fatal("expected error for bad header")
	}
}

func TestFileRowSourceScanMatchesMatrix(t *testing.T) {
	y := lowRankSparse(40, 12, 2, 64)
	path := filepath.Join(t.TempDir(), "m.spmx")
	f, _ := os.Create(path)
	if err := matrix.WriteSparse(f, y); err != nil {
		t.Fatal(err)
	}
	f.Close()
	src, err := matrix.OpenFileRowSource(path)
	if err != nil {
		t.Fatal(err)
	}
	// Two scans must both visit every row with identical content.
	for pass := 0; pass < 2; pass++ {
		seen := 0
		err := src.Scan(func(i int, row matrix.SparseVector) error {
			want := y.Row(i)
			if row.NNZ() != want.NNZ() {
				t.Fatalf("pass %d row %d nnz %d != %d", pass, i, row.NNZ(), want.NNZ())
			}
			for k := range row.Indices {
				if row.Indices[k] != want.Indices[k] || row.Values[k] != want.Values[k] {
					t.Fatalf("pass %d row %d differs", pass, i)
				}
			}
			seen++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != 40 {
			t.Fatalf("pass %d visited %d rows", pass, seen)
		}
	}
}
