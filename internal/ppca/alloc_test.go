package ppca

import (
	"testing"

	"spca/internal/matrix"
	"spca/internal/parallel"
)

// nopEmitter satisfies mapred.Emitter for steady-state Map measurements —
// the consolidated mappers only emit from Cleanup, so Map sees no emitter
// traffic beyond op accounting.
type nopEmitter[K comparable, V any] struct{}

func (nopEmitter[K, V]) Emit(K, V)    {}
func (nopEmitter[K, V]) AddOps(int64) {}

func allocTestDriver(t *testing.T, n, dims, d int) (*matrix.Sparse, *emDriver) {
	t.Helper()
	rng := matrix.NewRNG(99)
	y := randomSparseMat(rng, n, dims, 0.3)
	mean := y.ColMeans()
	em := newEMDriver(DefaultOptions(d), n, dims, mean, y.CenteredFrobeniusSq(mean))
	if err := em.prepare(); err != nil {
		t.Fatal(err)
	}
	return y, em
}

// TestYtxMapperMapZeroAllocSteadyState: after one warm-up pass has sized the
// freelist, the map buckets, and the latent scratch, an entire iteration's
// worth of Map calls on the consolidated YtX mapper allocates nothing.
func TestYtxMapperMapZeroAllocSteadyState(t *testing.T) {
	parallel.SetSequential(true)
	defer parallel.SetSequential(false)
	y, em := allocTestDriver(t, 60, 24, 4)
	scr := newYtxTaskScratch(em.d)
	m := &ytxMapper{em: em, meanProp: true, d: em.d, scr: scr}
	emit := nopEmitter[int, []float64]{}
	for i := 0; i < y.R; i++ {
		m.Map(y.Row(i), emit)
	}
	allocs := testing.AllocsPerRun(10, func() {
		scr.reset()
		for i := 0; i < y.R; i++ {
			m.Map(y.Row(i), emit)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ytxMapper.Map pass allocated %v times, want 0", allocs)
	}
}

// TestSS3MapperMapZeroAllocSteadyState: same property for the ss3 mapper in
// its optimized (associative) configuration.
func TestSS3MapperMapZeroAllocSteadyState(t *testing.T) {
	parallel.SetSequential(true)
	defer parallel.SetSequential(false)
	y, em := allocTestDriver(t, 60, 24, 4)
	scr := newSS3TaskScratch(em.d)
	m := &ss3Mapper{em: em, c: em.c, meanProp: true, assoc: true, d: em.d, scr: scr}
	emit := nopEmitter[int, float64]{}
	for i := 0; i < y.R; i++ {
		m.Map(y.Row(i), emit)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < y.R; i++ {
			m.Map(y.Row(i), emit)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ss3Mapper.Map pass allocated %v times, want 0", allocs)
	}
}
