package ppca

// Steady-state allocation benchmarks for the pooled-scratch EM paths, plus
// A/B pairs that fit the same model with scratch reuse on (the default) and
// off (the legacy allocating code, kept for exactly this comparison). The
// mapper benchmarks must report ~0 allocs/op; the A/B pairs track the
// wall-clock payoff in BENCH_3.json.

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/rdd"
)

func benchDriver(b *testing.B, n, dims, d int) (*matrix.Sparse, *emDriver) {
	b.Helper()
	rng := matrix.NewRNG(7)
	y := randomSparseMat(rng, n, dims, 0.3)
	mean := y.ColMeans()
	em := newEMDriver(DefaultOptions(d), n, dims, mean, y.CenteredFrobeniusSq(mean))
	if err := em.prepare(); err != nil {
		b.Fatal(err)
	}
	return y, em
}

// BenchmarkSteadyYtxMapperMap measures one row through the consolidated
// YtX/XtX/ΣX mapper on warm scratch. allocs/op must be ~0.
func BenchmarkSteadyYtxMapperMap(b *testing.B) {
	y, em := benchDriver(b, 512, 128, 10)
	scr := newYtxTaskScratch(em.d)
	m := &ytxMapper{em: em, meanProp: true, d: em.d, scr: scr}
	emit := nopEmitter[int, []float64]{}
	for i := 0; i < y.R; i++ { // warm-up: size freelist + map buckets
		m.Map(y.Row(i), emit)
	}
	scr.reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%y.R == 0 {
			scr.reset()
		}
		m.Map(y.Row(i%y.R), emit)
	}
}

// BenchmarkSteadySS3MapperMap measures one row through the associative ss3
// mapper on warm scratch. allocs/op must be ~0.
func BenchmarkSteadySS3MapperMap(b *testing.B) {
	y, em := benchDriver(b, 512, 128, 10)
	scr := newSS3TaskScratch(em.d)
	m := &ss3Mapper{em: em, c: em.c, meanProp: true, assoc: true, d: em.d, scr: scr}
	emit := nopEmitter[int, float64]{}
	for i := 0; i < y.R; i++ {
		m.Map(y.Row(i), emit)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Map(y.Row(i%y.R), emit)
	}
}

// withScratch runs fn with the reuseScratch knob forced to on, restoring the
// previous value afterwards. Benchmarks run sequentially, so flipping the
// package variable is safe here (it must never be flipped mid-fit).
func withScratch(on bool, fn func()) {
	prev := reuseScratch
	reuseScratch = on
	defer func() { reuseScratch = prev }()
	fn()
}

func benchFitLocalAB(b *testing.B, pooled bool) {
	y, _ := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withScratch(pooled, func() {
			if _, err := FitLocal(y, opt); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFitLocalPooled(b *testing.B) { benchFitLocalAB(b, true) }
func BenchmarkFitLocalLegacy(b *testing.B) { benchFitLocalAB(b, false) }

func benchFitMapReduceAB(b *testing.B, pooled bool) {
	_, rows := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withScratch(pooled, func() {
			eng := mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
			if _, err := FitMapReduce(eng, rows, 500, opt); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFitMapReducePooled(b *testing.B) { benchFitMapReduceAB(b, true) }
func BenchmarkFitMapReduceLegacy(b *testing.B) { benchFitMapReduceAB(b, false) }

func benchFitSparkAB(b *testing.B, pooled bool) {
	_, rows := benchData(b, 2000, 500)
	opt := DefaultOptions(10)
	opt.MaxIter = 3
	opt.Tol = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withScratch(pooled, func() {
			ctx := rdd.NewContext(cluster.MustNew(cluster.DefaultConfig().WithTaskOverhead(0.05)))
			if _, err := FitSpark(ctx, rows, 500, opt); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFitSparkPooled(b *testing.B) { benchFitSparkAB(b, true) }
func BenchmarkFitSparkLegacy(b *testing.B) { benchFitSparkAB(b, false) }
