package ppca

import (
	"testing"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
)

// Aliasing audit for sumVec/reduceSumVec against the engine's in-place
// combiner merge:
//
//   - sumVec(a, b) accumulates b INTO a and must never write through b. The
//     combiner holds the first emission for a key by alias and feeds every
//     later emission in as b, so writing through b would corrupt a slice the
//     mapper may still own (the pooled mappers reuse their emission buffers
//     across iterations).
//   - reduceSumVec must return a freshly allocated slice, never an alias of
//     one of its inputs. Job output outlives the shuffle buffers, and the
//     drivers mutate job output in place (em.update scales s.ytx directly).

func TestSumVecDoesNotMutateSecondArgument(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	got := sumVec(a, b)
	if &got[0] != &a[0] {
		t.Fatal("sumVec must accumulate into its first argument")
	}
	for i, want := range []float64{10, 20, 30} {
		if b[i] != want {
			t.Fatalf("sumVec mutated its second argument: %v", b)
		}
	}
}

func TestReduceSumVecReturnsFreshSlice(t *testing.T) {
	vs := [][]float64{{1, 2}, {3, 4}}
	out := reduceSumVec(0, vs, nopOps{})
	if &out[0] == &vs[0][0] || &out[0] == &vs[1][0] {
		t.Fatal("reduceSumVec aliased one of its inputs")
	}
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("reduceSumVec sum wrong: %v", out)
	}
}

type nopOps struct{}

func (nopOps) AddOps(int64) {}

// retainMapper emits one shared accumulator slice per task — the in-mapper
// combining pattern — and keeps a reference to it after Cleanup, modelling a
// pooled mapper that will reuse the buffer next iteration.
type retainMapper struct {
	acc      []float64
	retained *[][]float64
}

func (m *retainMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, []float64]) {
	for k, j := range row.Indices {
		_ = j
		m.acc[0] += row.Values[k]
	}
}

func (m *retainMapper) Cleanup(out mapred.Emitter[int, []float64]) {
	out.Emit(7, m.acc)
	*m.retained = append(*m.retained, m.acc)
}

// TestReducerOutputMutationDoesNotCorruptRetainedEmission runs a real job
// through the engine with sumVec combining and reduceSumVec reducing, then
// mutates the reducer output the way emDriver.update mutates s.ytx — the
// mapper-retained emission buffers must be unaffected.
func TestReducerOutputMutationDoesNotCorruptRetainedEmission(t *testing.T) {
	eng := mapred.NewEngine(cluster.MustNew(cluster.DefaultConfig()))
	var retained [][]float64
	job := mapred.Job[matrix.SparseVector, int, []float64, []float64]{
		Name: "alias-audit",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, []float64] {
			return &retainMapper{acc: make([]float64, 3), retained: &retained}
		},
		Combine:     sumVec,
		Reduce:      reduceSumVec,
		InputBytes:  mapred.BytesOfSparseVec,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	input := make([]matrix.SparseVector, 64)
	for i := range input {
		input[i] = matrix.SparseVector{Indices: []int{i % 3}, Values: []float64{1}, Len: 3}
	}
	out, err := mapred.Run(eng, job, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(retained) == 0 {
		t.Fatal("no emissions retained — job did not run mappers")
	}
	snapshot := make([][]float64, len(retained))
	for i, r := range retained {
		snapshot[i] = append([]float64(nil), r...)
	}
	// Mutate the job output in place, as emDriver.update does with s.ytx.
	for _, v := range out {
		for i := range v {
			v[i] = -1e9
		}
	}
	for i, r := range retained {
		for j := range r {
			if r[j] != snapshot[i][j] {
				t.Fatalf("mutating reducer output corrupted retained mapper emission %d: %v vs %v", i, r, snapshot[i])
			}
		}
	}
}
