package ppca

import (
	"math"
	"testing"

	"spca/internal/matrix"
)

// twoSubspaceData builds rows drawn from two distinct low-rank Gaussian
// clusters, returning the data and the true cluster of each row.
func twoSubspaceData(perCluster, dims, rank int, seed uint64) (*matrix.Dense, []int) {
	rng := matrix.NewRNG(seed)
	y := matrix.NewDense(2*perCluster, dims)
	truth := make([]int, 2*perCluster)
	for c := 0; c < 2; c++ {
		basis := matrix.NormRnd(rng, dims, rank)
		center := make([]float64, dims)
		for j := range center {
			center[j] = float64(10*c) + rng.NormFloat64()
		}
		for i := 0; i < perCluster; i++ {
			r := c*perCluster + i
			truth[r] = c
			row := y.Row(r)
			copy(row, center)
			for b := 0; b < rank; b++ {
				matrix.AXPY(rng.NormFloat64(), basis.Col(b), row)
			}
			for j := range row {
				row[j] += 0.1 * rng.NormFloat64()
			}
		}
	}
	return y, truth
}

func TestFitMixtureSeparatesClusters(t *testing.T) {
	y, truth := twoSubspaceData(80, 20, 3, 1)
	res, err := FitMixture(y, DefaultMixtureOptions(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Assign()
	// Cluster ids are arbitrary: count agreement both ways.
	var same, flip int
	for i := range truth {
		if assign[i] == truth[i] {
			same++
		} else {
			flip++
		}
	}
	agree := same
	if flip > same {
		agree = flip
	}
	if agree < len(truth)*95/100 {
		t.Fatalf("mixture separated only %d/%d rows", agree, len(truth))
	}
	// Weights near 0.5 each.
	if math.Abs(res.Weights[0]-0.5) > 0.1 {
		t.Fatalf("weights = %v", res.Weights)
	}
}

func TestFitMixtureLogLikelihoodMonotone(t *testing.T) {
	y, _ := twoSubspaceData(50, 15, 2, 2)
	opt := DefaultMixtureOptions(2, 2)
	opt.Tol = 0
	opt.MaxIter = 25
	res, err := FitMixture(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LogLikelihood); i++ {
		if res.LogLikelihood[i] < res.LogLikelihood[i-1]-1e-6 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v",
				i, res.LogLikelihood[i-1], res.LogLikelihood[i])
		}
	}
}

func TestFitMixtureSingleModelMatchesPPCASubspace(t *testing.T) {
	// M=1 degenerates to plain PPCA: the subspace must agree with FitLocal.
	y := lowRankSparse(150, 25, 3, 3)
	dense := y.Dense()
	mix, err := FitMixture(dense, DefaultMixtureOptions(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(3)
	opt.MaxIter = 60
	opt.Tol = 1e-10
	ref, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if gap := matrix.SubspaceGap(mix.Components[0], ref.Components); gap > 0.03 {
		t.Fatalf("single-model mixture subspace gap %v", gap)
	}
	if len(mix.Weights) != 1 || math.Abs(mix.Weights[0]-1) > 1e-12 {
		t.Fatalf("weights = %v", mix.Weights)
	}
}

func TestFitMixtureBeatsSinglePPCAOnClusteredData(t *testing.T) {
	// On two well-separated subspace clusters, a 2-model mixture must reach
	// a higher log-likelihood than a 1-model fit of the same total latent
	// capacity.
	y, _ := twoSubspaceData(60, 20, 2, 4)
	one, err := FitMixture(y, DefaultMixtureOptions(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	two, err := FitMixture(y, DefaultMixtureOptions(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	llOne := one.LogLikelihood[len(one.LogLikelihood)-1]
	llTwo := two.LogLikelihood[len(two.LogLikelihood)-1]
	if llTwo <= llOne {
		t.Fatalf("mixture ll %v should beat single-model ll %v", llTwo, llOne)
	}
}

func TestFitMixtureValidation(t *testing.T) {
	y := matrix.NewDense(10, 5)
	if _, err := FitMixture(y, DefaultMixtureOptions(0, 2)); err == nil {
		t.Fatal("expected error for zero models")
	}
	if _, err := FitMixture(y, DefaultMixtureOptions(2, 0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitMixture(y, DefaultMixtureOptions(2, 5)); err == nil {
		t.Fatal("expected error for d >= D")
	}
	if _, err := FitMixture(y, DefaultMixtureOptions(11, 2)); err == nil {
		t.Fatal("expected error for more models than rows")
	}
}

func TestFitMixtureResponsibilitiesNormalized(t *testing.T) {
	y, _ := twoSubspaceData(30, 12, 2, 5)
	res, err := FitMixture(y, DefaultMixtureOptions(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Responsibilities.R; i++ {
		var sum float64
		for _, v := range res.Responsibilities.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("responsibility out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d responsibilities sum to %v", i, sum)
		}
	}
	var wsum float64
	for _, w := range res.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", wsum)
	}
}
