package ppca

import (
	"errors"
	"fmt"
	"math"

	"spca/internal/matrix"
)

// The paper singles out two desirable properties of PPCA over deterministic
// PCA (§2.4); the first is that "since PPCA uses expectation maximization,
// the projections of principal components can be obtained even when some
// data values are missing". This file implements that: EM for PPCA where
// every row may observe only a subset of the dimensions.

// MissingResult is the output of FitMissing.
type MissingResult struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Mean is the per-dimension mean estimated from observed entries.
	Mean []float64
	// SS is the fitted noise variance.
	SS float64
	// Latent holds the posterior-mean latent position of every row (N x d).
	Latent *matrix.Dense
	// Iterations executed.
	Iterations int
	// LogLikeTrace records the (scaled) observed-data objective per
	// iteration; it must be non-decreasing for a correct EM.
	LogLikeTrace []float64
}

// FitMissing runs PPCA EM on a dense matrix where NaN marks missing entries.
// Rows with no observed entries are allowed (their latent position is the
// prior mean, zero). It returns an error if an entire column is unobserved,
// since that dimension's loadings are unidentifiable.
func FitMissing(y *matrix.Dense, opt Options) (*MissingResult, error) {
	n, dims := y.Dims()
	if err := opt.validate(n, dims); err != nil {
		return nil, err
	}
	d := opt.Components

	// Observed-entry mean per column.
	mean := make([]float64, dims)
	counts := make([]int, dims)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j, v := range row {
			if !math.IsNaN(v) {
				mean[j] += v
				counts[j]++
			}
		}
	}
	for j := range mean {
		if counts[j] == 0 {
			return nil, fmt.Errorf("ppca: column %d has no observed entries", j)
		}
		mean[j] /= float64(counts[j])
	}

	rng := matrix.NewRNG(opt.Seed + 0x3155)
	c := matrix.NormRnd(rng, dims, d)
	ss := 1.0

	var totalObs int
	for i := 0; i < n; i++ {
		for _, v := range y.Row(i) {
			if !math.IsNaN(v) {
				totalObs++
			}
		}
	}
	if totalObs == 0 {
		return nil, errors.New("ppca: no observed entries at all")
	}

	res := &MissingResult{Mean: mean}
	x := matrix.NewDense(n, d)
	// Per-row posterior second moments E[x xᵀ] = ss·M_i⁻¹ + x_i·x_iᵀ.
	exx := make([]*matrix.Dense, n)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		// ---- E-step: per-row posterior over the latent variable, using
		// only that row's observed dimensions.
		var rss float64 // residual sum of squares for the objective/ss
		for i := 0; i < n; i++ {
			row := y.Row(i)
			// M_i = C_Oᵀ C_O + ss·I over observed dims O.
			mi := matrix.Identity(d)
			mi.ScaleInPlace(ss)
			rhs := make([]float64, d)
			for j, v := range row {
				if math.IsNaN(v) {
					continue
				}
				cj := c.Row(j)
				matrix.OuterAdd(mi, cj, cj)
				matrix.AXPY(v-mean[j], cj, rhs)
			}
			minv, err := matrix.Inverse(mi)
			if err != nil {
				return nil, fmt.Errorf("ppca: per-row M singular at row %d: %w", i, err)
			}
			xi := minv.MulVec(rhs)
			copy(x.Row(i), xi)
			e := minv.Scale(ss)
			matrix.OuterAdd(e, xi, xi)
			exx[i] = e
		}

		// ---- M-step: per-dimension loading update.
		// C_j = (Σ_{i∋j} (y_ij-µ_j)·x_iᵀ) · (Σ_{i∋j} E[x_i x_iᵀ])⁻¹
		for j := 0; j < dims; j++ {
			num := make([]float64, d)
			den := matrix.NewDense(d, d)
			seen := false
			for i := 0; i < n; i++ {
				v := y.At(i, j)
				if math.IsNaN(v) {
					continue
				}
				seen = true
				matrix.AXPY(v-mean[j], x.Row(i), num)
				den.AddInPlace(exx[i])
			}
			if !seen {
				continue
			}
			sol, err := matrix.SolveSPD(den, matrix.NewDenseFromRows([][]float64{num}))
			if err != nil {
				return nil, fmt.Errorf("ppca: M-step solve failed at dim %d: %w", j, err)
			}
			copy(c.Row(j), sol.Row(0))
		}

		// ---- Noise variance from observed residuals.
		rss = 0
		for i := 0; i < n; i++ {
			row := y.Row(i)
			xi := x.Row(i)
			for j, v := range row {
				if math.IsNaN(v) {
					continue
				}
				cj := c.Row(j)
				r := v - mean[j] - matrix.Dot(cj, xi)
				// E[(y - µ - C x)²] = r² + C_j E[xxᵀ]C_jᵀ - (C_j x)².
				cx := matrix.Dot(cj, xi)
				quad := matrix.Dot(cj, exx[i].MulVec(cj)) - cx*cx
				rss += r*r + quad
			}
		}
		ss = rss / float64(totalObs)
		if ss < 1e-12 {
			ss = 1e-12
		}

		// Objective surrogate: negative mean residual (higher is better);
		// monotone for EM up to the variance floor.
		res.LogLikeTrace = append(res.LogLikeTrace, -rss/float64(totalObs))
		res.Iterations = iter
		if iter >= 2 {
			prev := res.LogLikeTrace[iter-2]
			cur := res.LogLikeTrace[iter-1]
			if math.Abs(cur-prev) < opt.Tol*math.Abs(prev)+1e-15 {
				break
			}
		}
	}
	res.Components = c
	res.SS = ss
	res.Latent = x
	return res, nil
}

// Impute fills the missing entries of y (NaN-marked) with the model's
// reconstruction C·x_i + µ, leaving observed entries untouched.
func (r *MissingResult) Impute(y *matrix.Dense) *matrix.Dense {
	out := y.Clone()
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		xi := r.Latent.Row(i)
		for j, v := range row {
			if math.IsNaN(v) {
				row[j] = r.Mean[j] + matrix.Dot(r.Components.Row(j), xi)
			}
		}
	}
	return out
}
