package ppca

import (
	"errors"
	"math"
	"testing"

	"spca/internal/checkpoint"
	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/matrix"
)

// guardOpt is the shared deterministic fit config for the crash/resume tests:
// fixed seed, fixed iteration count, no early stop.
func guardOpt(interval int, dir string) Options {
	opt := DefaultOptions(3)
	opt.MaxIter = 6
	opt.Tol = 0
	opt.Checkpoint = CheckpointSpec{Interval: interval, Dir: dir}
	return opt
}

type fitFunc func(opt Options) (*Result, error)

// crashResume runs the three-step durability scenario against one engine:
// an uninterrupted baseline with checkpointing on, a run that driver-crashes
// at crashIter, and a resumed incarnation restored the way the spca facade
// does it. The resumed result must be bit-identical to the baseline.
func crashResume(t *testing.T, crashIter, interval int, dir string, fit fitFunc) (*Result, *Result) {
	t.Helper()

	base, err := fit(guardOpt(interval, t.TempDir()))
	if err != nil {
		t.Fatalf("baseline fit: %v", err)
	}

	crashOpt := guardOpt(interval, dir)
	crashOpt.Faults = &cluster.FaultPlan{DriverCrashIters: []int{crashIter}}
	_, err = fit(crashOpt)
	var crash *cluster.DriverCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("crashed fit: want DriverCrashError, got %v", err)
	}
	if crash.Iter != crashIter || crash.Incarnation != 0 {
		t.Fatalf("crash = %+v, want iter %d incarnation 0", crash, crashIter)
	}
	if !errors.Is(err, cluster.ErrDriverCrash) {
		t.Fatal("DriverCrashError must unwrap to ErrDriverCrash")
	}

	resumeOpt := crashOpt
	resumeOpt.Incarnation = 1
	snap, err := checkpoint.Latest(dir)
	switch {
	case err == nil:
		resumeOpt.Resume = snap
		if waste := crash.SimSeconds - snap.Metrics.SimSeconds; waste > 0 {
			resumeOpt.RecoveredSeconds = waste
		}
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		// Crash before the first snapshot: restart from scratch, the whole
		// first incarnation is wasted time.
		resumeOpt.RecoveredSeconds = crash.SimSeconds
	default:
		t.Fatalf("loading latest checkpoint: %v", err)
	}
	res, err := fit(resumeOpt)
	if err != nil {
		t.Fatalf("resumed fit: %v", err)
	}

	if got, want := fingerprint(res), fingerprint(base); got != want {
		t.Errorf("resumed model fingerprint %s != uninterrupted %s (crash at %d, interval %d)", got, want, crashIter, interval)
	}
	if res.Metrics.SimSeconds != base.Metrics.SimSeconds {
		t.Errorf("resumed SimSeconds %v != uninterrupted %v", res.Metrics.SimSeconds, base.Metrics.SimSeconds)
	}
	if res.Metrics.CheckpointBytes != base.Metrics.CheckpointBytes {
		t.Errorf("resumed CheckpointBytes %d != uninterrupted %d", res.Metrics.CheckpointBytes, base.Metrics.CheckpointBytes)
	}
	if res.Metrics.DriverRestarts != 1 {
		t.Errorf("DriverRestarts = %d, want 1", res.Metrics.DriverRestarts)
	}
	return base, res
}

func TestDriverCrashResumeMapReduce(t *testing.T) {
	rows := dataset.Rows(lowRankSparse(150, 40, 3, 11))
	fit := func(opt Options) (*Result, error) {
		return FitMapReduce(testEngineMR(), rows, 40, opt)
	}
	for _, crashIter := range []int{1, 2, 3, 5, 6} {
		_, res := crashResume(t, crashIter, 2, t.TempDir(), fit)
		if res.Metrics.RecoverySeconds <= 0 {
			t.Errorf("crash at %d: RecoverySeconds = %v, want > 0", crashIter, res.Metrics.RecoverySeconds)
		}
	}
}

func TestDriverCrashResumeSpark(t *testing.T) {
	rows := dataset.Rows(lowRankSparse(150, 40, 3, 11))
	fit := func(opt Options) (*Result, error) {
		return FitSpark(testCtxSpark(), rows, 40, opt)
	}
	for _, crashIter := range []int{2, 3, 6} {
		_, res := crashResume(t, crashIter, 2, t.TempDir(), fit)
		if res.Metrics.RecoverySeconds <= 0 {
			t.Errorf("crash at %d: RecoverySeconds = %v, want > 0", crashIter, res.Metrics.RecoverySeconds)
		}
	}
}

func TestDriverCrashResumeLocal(t *testing.T) {
	y := lowRankSparse(150, 40, 3, 11)
	fit := func(opt Options) (*Result, error) { return FitLocal(y, opt) }
	for _, crashIter := range []int{1, 3, 4} {
		crashResume(t, crashIter, 2, t.TempDir(), fit)
	}
}

func TestDriverCrashResumeStream(t *testing.T) {
	y := lowRankSparse(150, 40, 3, 11)
	fit := func(opt Options) (*Result, error) {
		return FitStream(matrix.SparseSource{M: y}, opt)
	}
	crashResume(t, 3, 2, t.TempDir(), fit)
}

// TestCheckpointDisabledZeroMetrics pins the zero-cost property of the
// disabled subsystem: no files, no bytes, no restarts. Bit-identity of the
// model itself is pinned by the golden-fingerprint suite.
func TestCheckpointDisabledZeroMetrics(t *testing.T) {
	rows := dataset.Rows(lowRankSparse(150, 40, 3, 11))
	opt := DefaultOptions(3)
	opt.MaxIter = 4
	opt.Tol = 0
	res, err := FitMapReduce(testEngineMR(), rows, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CheckpointBytes != 0 || m.CheckpointSeconds != 0 || m.DriverRestarts != 0 || m.RecoverySeconds != 0 {
		t.Fatalf("checkpoint-disabled run has durability metrics: %+v", m)
	}
}

func TestCheckFiniteDetectsBreakdown(t *testing.T) {
	opt := DefaultOptions(2)
	em := newEMDriver(opt, 10, 4, make([]float64, 4), 1)
	if err := em.checkFinite(3); err != nil {
		t.Fatalf("fresh driver: %v", err)
	}
	em.c.Data[1] = math.NaN()
	err := em.checkFinite(3)
	var bd *BreakdownError
	if !errors.As(err, &bd) || bd.Iter != 3 || bd.Quantity != "components" {
		t.Fatalf("NaN component: got %v", err)
	}
	if !errors.Is(err, ErrNumericalBreakdown) {
		t.Fatal("BreakdownError must unwrap to ErrNumericalBreakdown")
	}
	em.c.Data[1] = math.Inf(-1)
	if err := em.checkFinite(1); !errors.As(err, &bd) {
		t.Fatalf("-Inf component: got %v", err)
	}
	em.c.Data[1] = 0
	em.ss = -0.5
	if err := em.checkFinite(2); !errors.As(err, &bd) || bd.Quantity != "noise variance" {
		t.Fatalf("negative ss: got %v", err)
	}
}

// TestSolveGuardedRidgeRetry drives the escalating-ridge retry with a
// genuinely singular XtX: the zero matrix fails Cholesky and the general
// inverse, and the first deterministic ridge (1e-10·I at ridgeScale floor 1)
// makes it SPD.
func TestSolveGuardedRidgeRetry(t *testing.T) {
	opt := DefaultOptions(2)
	em := newEMDriver(opt, 10, 3, make([]float64, 3), 1)
	xtx := matrix.NewDense(2, 2)
	ytx := matrix.NewDense(3, 2)
	for i := range ytx.Data {
		ytx.Data[i] = float64(i + 1)
	}
	dst := matrix.NewDense(3, 2)
	if err := em.solveGuarded(xtx, ytx, dst, &matrix.SPDWorkspace{}); err != nil {
		t.Fatalf("guarded solve of singular XtX: %v", err)
	}
	if em.iterRidgeRetries < 1 {
		t.Errorf("iterRidgeRetries = %d, want >= 1", em.iterRidgeRetries)
	}
	if em.lastRidge <= 0 {
		t.Errorf("lastRidge = %v, want > 0", em.lastRidge)
	}
	for _, v := range dst.Data {
		if v != v || math.IsInf(v, 0) {
			t.Fatalf("ridge-recovered solution is non-finite: %v", dst.Data)
		}
	}
}

// TestSolveGuardedStandingRidge checks that a rollback-escalated ridge level
// is applied up front and recorded in lastRidge even when the solve succeeds
// immediately.
func TestSolveGuardedStandingRidge(t *testing.T) {
	opt := DefaultOptions(2)
	em := newEMDriver(opt, 10, 3, make([]float64, 3), 1)
	em.ridgeLevel = 2
	xtx := matrix.NewDense(2, 2)
	xtx.Data[0], xtx.Data[3] = 4, 9
	ytx := matrix.NewDense(3, 2)
	ytx.Data[0] = 1
	dst := matrix.NewDense(3, 2)
	if err := em.solveGuarded(xtx, ytx, dst, &matrix.SPDWorkspace{}); err != nil {
		t.Fatal(err)
	}
	want := (4.0 + 9.0) / 2 * 1e-6 * 10 // ridgeScale · 1e-6 · 10^(level-1)
	if em.lastRidge != want {
		t.Errorf("standing ridge = %v, want %v", em.lastRidge, want)
	}
	if em.iterRidgeRetries != 0 {
		t.Errorf("iterRidgeRetries = %d, want 0 for a clean solve", em.iterRidgeRetries)
	}
}

// TestObserveDivergenceRollback walks the guard through a rising-error run:
// best-model tracking, the rollback after DivergeWindow consecutive rises,
// and the ridge escalation it leaves behind.
func TestObserveDivergenceRollback(t *testing.T) {
	opt := DefaultOptions(2)
	opt.DivergeWindow = 2
	em := newEMDriver(opt, 10, 4, make([]float64, 4), 1)
	em.ss = 0.5
	bestVal := em.c.Data[0]

	var hist []IterationStat
	step := func(iter int, errV float64) *IterationStat {
		s := IterationStat{Iter: iter, Err: errV}
		em.observeDivergence(&s, opt, hist)
		hist = append(hist, s)
		return &hist[len(hist)-1]
	}

	step(1, 1.0) // recorded as best
	if !em.haveBest || em.bestErr != 1.0 {
		t.Fatalf("best not recorded: haveBest=%v bestErr=%v", em.haveBest, em.bestErr)
	}
	em.c.Data[0] = bestVal + 100 // the model drifts while the error rises
	em.ss = 9
	step(2, 2.0)
	if em.rising != 1 {
		t.Fatalf("rising = %d, want 1", em.rising)
	}
	s3 := step(3, 3.0)
	if !s3.Rollback {
		t.Fatal("third consecutive rise did not roll back")
	}
	if em.c.Data[0] != bestVal || em.ss != 0.5 {
		t.Errorf("rollback did not restore best model: c=%v ss=%v", em.c.Data[0], em.ss)
	}
	if em.ridgeLevel != 1 || em.rising != 0 {
		t.Errorf("post-rollback guard state: ridgeLevel=%d rising=%d", em.ridgeLevel, em.rising)
	}

	// A lower error after the rollback becomes the new best.
	em.c.Data[0] = bestVal + 1
	step(4, 0.7)
	if em.bestErr != 0.7 || em.bestC.Data[0] != bestVal+1 {
		t.Errorf("new best not recorded: bestErr=%v", em.bestErr)
	}
}

// TestRollbackIsDeterministic reruns a fit whose guard is armed and asserts
// bit-identical history — the guard must not introduce any run-to-run
// variation.
func TestGuardArmedDeterministic(t *testing.T) {
	y := lowRankSparse(150, 40, 3, 11)
	opt := DefaultOptions(3)
	opt.MaxIter = 8
	opt.Tol = 0
	opt.DivergeWindow = 2
	a, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitLocal(y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("guard-armed fit is not deterministic")
	}
}
