package ppca

import (
	"fmt"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/trace"
)

// Special composite-key values for the consolidated YtXJob (§4.1 uses a
// composite key to route all XtX partials to one reducer while YtX rows
// spread across reducers).
const (
	keyXtX  = -1
	keySumX = -2
	keySS3  = -3
	keyMean = -4
	keyFro  = -5
)

// FitMapReduce runs sPCA on the MapReduce engine (Algorithm 4). rows are the
// input matrix records; dims is D. The optimization switches in opt select
// between the full sPCA jobs and the unoptimized baselines of Table 3.
func FitMapReduce(eng *mapred.Engine, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if err := opt.validate(len(rows), dims); err != nil {
		return nil, err
	}
	cl := eng.Cluster
	if tr := opt.Tracer; tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitMapReduce", trace.KindFit,
			trace.I("rows", int64(len(rows))), trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)), trace.I("incarnation", int64(opt.Incarnation)))
		defer tr.End()
	}
	res := &Result{}

	var em *emDriver
	if snap := opt.Resume; snap != nil {
		// Resume: the mean/Frobenius jobs (and SmartGuess) were already paid
		// for by the crashed incarnation and live in the snapshot; restore
		// its clock wholesale and report the restore out-of-band.
		if err := snap.Validate(len(rows), dims, opt.Components, opt.Seed); err != nil {
			return nil, err
		}
		em = newEMDriver(opt, len(rows), dims, snap.Mean, snap.SS1)
		cl.RestoreMetrics(snap.Metrics)
		cl.ChargeDriverRestore(snap.CostBytes(), opt.RecoveredSeconds)
		eng.SetJobSeq(snap.FaultEpoch)
		em.restore(snap, res)
	} else {
		// meanJob + FnormJob run once before the loop (Algorithm 4 lines 3-4).
		mean, err := meanJob(eng, rows, dims)
		if err != nil {
			return nil, err
		}
		ss1, err := fnormJob(eng, rows, mean, opt.EfficientFrobenius)
		if err != nil {
			return nil, err
		}
		em = newEMDriver(opt, len(rows), dims, mean, ss1)
		if opt.SmartGuess {
			if err := smartGuessMapReduce(eng, rows, dims, opt, em); err != nil {
				return nil, fmt.Errorf("ppca: smart guess: %w", err)
			}
		}
		if opt.Incarnation > 0 {
			// Restarted from scratch after a crash with no usable snapshot:
			// count the restart and the previous incarnation's wasted time.
			cl.ChargeDriverRestore(0, opt.RecoveredSeconds)
		}
	}
	res.Mean = em.mean

	// Per-task mapper scratch plus the driver-side job sums, allocated once
	// and recycled every iteration (nil scratch = legacy allocating path).
	var scr *mrScratch
	var pooledSums jobSums
	if reuseScratch {
		scr = newMRScratch(eng.NumSplits(len(rows)), em.d, dims)
		pooledSums = newJobSums(dims, em.d)
	}
	e := &mrEngine{
		eng: eng, rows: rows, dims: dims, opt: opt,
		scr: scr, pooled: pooledSums,
		y:      sparseFromRows(rows, dims),
		sample: sampleIdx(len(rows), opt.sampleRows(), opt.Seed),
	}
	if err := runEM(em, opt, e, res); err != nil {
		return nil, err
	}
	return res, nil
}

// mrEngine adapts the MapReduce jobs to the shared guarded EM loop.
type mrEngine struct {
	eng    *mapred.Engine
	rows   []matrix.SparseVector
	dims   int
	opt    Options
	scr    *mrScratch
	pooled jobSums
	y      *matrix.Sparse
	sample []int
}

func (e *mrEngine) cluster() *cluster.Cluster { return e.eng.Cluster }
func (e *mrEngine) faultEpoch() int64         { return e.eng.JobSeq() }

func (e *mrEngine) prepared(em *emDriver) {
	// Ship CM (and later C) to every node, like Hadoop's distributed cache.
	broadcast(e.eng.Cluster, "ytx/cache", mapred.BytesOfDense(em.cm))
}

func (e *mrEngine) pass(em *emDriver) (jobSums, error) {
	if e.opt.MinimizeIntermediate {
		return ytxJob(e.eng, e.rows, e.dims, em, e.opt, e.scr, e.pooled)
	}
	return unoptimizedPasses(e.eng, e.rows, e.dims, em, e.opt)
}

func (e *mrEngine) solved(em *emDriver, cNew *matrix.Dense) {
	// Driver-side small-matrix work: M, M⁻¹, the solve, ss2.
	d := int64(e.opt.Components)
	e.eng.Cluster.AddDriverCompute(int64(e.dims)*d*d + d*d*d)
	broadcast(e.eng.Cluster, "ss3/cache", mapred.BytesOfDense(cNew))
}

func (e *mrEngine) ss3(em *emDriver, cNew *matrix.Dense) (float64, error) {
	return ss3Job(e.eng, e.rows, em, cNew, e.opt, e.scr)
}

func (e *mrEngine) reconErr(em *emDriver) float64 { return em.reconError(e.y, e.sample) }

// broadcast charges shipping driver state to every worker node.
func broadcast(cl *cluster.Cluster, name string, bytes int64) {
	cl.RunPhase(cluster.PhaseStats{
		Name:         name,
		ShuffleBytes: bytes * int64(cl.Config().Nodes),
	})
}

// meanJob computes the column means with one MapReduce job. Mappers keep a
// sparse in-memory partial (stateful combiner) and flush it in Cleanup.
func meanJob(eng *mapred.Engine, rows []matrix.SparseVector, dims int) ([]float64, error) {
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "meanJob",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &meanMapper{}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
	}
	if reuseScratch {
		// Keys are the column range plus the keyMean row-count slot below it.
		job.Dense = &mapred.DenseSpec{MinKey: keyMean, Keys: dims - keyMean, Width: 1}
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return nil, err
	}
	count := out[keyMean]
	if count == 0 {
		return nil, fmt.Errorf("ppca: meanJob produced no row count")
	}
	mean := make([]float64, dims)
	for k, v := range out {
		if k >= 0 {
			mean[k] = v / count
		}
	}
	return mean, nil
}

// meanMapper holds its per-column partial sums as a flat array plus a
// first-touch list rather than a hash map: columns hit by any row of the task
// index directly into partial, and Cleanup emits exactly the touched set (so
// the shuffle never carries zero entries for columns the task never saw).
type meanMapper struct {
	partial []float64
	seen    []bool
	touched []int32
	count   float64
}

func (m *meanMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	if len(m.partial) < row.Len {
		p := make([]float64, row.Len)
		copy(p, m.partial)
		s := make([]bool, row.Len)
		copy(s, m.seen)
		t := make([]int32, len(m.touched), row.Len)
		copy(t, m.touched)
		m.partial, m.seen, m.touched = p, s, t
	}
	for k, j := range row.Indices {
		if !m.seen[j] {
			m.seen[j] = true
			m.touched = append(m.touched, int32(j))
		}
		m.partial[j] += row.Values[k]
	}
	m.count++
	out.AddOps(int64(row.NNZ()))
}

func (m *meanMapper) Cleanup(out mapred.Emitter[int, float64]) {
	for _, j := range m.touched {
		out.Emit(int(j), m.partial[j])
	}
	out.Emit(keyMean, m.count)
}

// fnormJob computes ||Y - Ym||²_F. With efficient=true it uses the
// sparsity-preserving Algorithm 3; otherwise the row-densifying Algorithm 2.
func fnormJob(eng *mapred.Engine, rows []matrix.SparseVector, mean []float64, efficient bool) (float64, error) {
	var msum float64
	for _, mv := range mean {
		msum += mv * mv
	}
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "FnormJob",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &fnormMapper{mean: mean, msum: msum, efficient: efficient}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
	}
	if reuseScratch {
		job.Dense = &mapred.DenseSpec{MinKey: keyFro, Keys: 1, Width: 1}
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return 0, err
	}
	return out[keyFro], nil
}

type fnormMapper struct {
	mean      []float64
	msum      float64
	efficient bool
	sum       float64
	dense     []float64 // densify buffer, grown to the widest row seen
}

func (m *fnormMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	if m.efficient {
		// Algorithm 3: msum covers the all-zero row; fix up non-zeros.
		s := m.msum
		for k, j := range row.Indices {
			v := row.Values[k]
			d := v - m.mean[j]
			s += d*d - m.mean[j]*m.mean[j]
		}
		m.sum += s
		out.AddOps(int64(2 * row.NNZ()))
		return
	}
	// Algorithm 2: densify the row, then iterate all D entries. The buffer is
	// mapper state sized to the widest row seen, not a per-row allocation.
	if cap(m.dense) < row.Len {
		m.dense = make([]float64, row.Len)
	}
	dense := m.dense[:row.Len]
	for j := range dense {
		dense[j] = 0
	}
	for k, j := range row.Indices {
		dense[j] = row.Values[k]
	}
	var s float64
	for j, v := range dense {
		dv := v - m.mean[j]
		s += dv * dv
	}
	m.sum += s
	out.AddOps(int64(2 * row.Len))
}

func (m *fnormMapper) Cleanup(out mapred.Emitter[int, float64]) { out.Emit(keyFro, m.sum) }

// ytxJob is the consolidated distributed job of Algorithm 4: it recomputes X
// row by row and produces YtX, XtX, and ΣX in a single pass. Mappers hold
// the partial matrices in memory (the stateful combiner of §4.1) and flush
// them once per task, keyed so all XtX partials meet at one reducer.
func ytxJob(eng *mapred.Engine, rows []matrix.SparseVector, dims int, em *emDriver, opt Options, scr *mrScratch, sums jobSums) (jobSums, error) {
	d := em.d
	job := mapred.Job[matrix.SparseVector, int, []float64, []float64]{
		Name: "YtXJob",
		NewMapper: func(task int) mapred.Mapper[matrix.SparseVector, int, []float64] {
			if opt.StatefulCombiner {
				return &ytxMapper{em: em, meanProp: opt.MeanPropagation, d: d, scr: scr.ytxTask(task, d)}
			}
			return &ytxNaiveMapper{em: em, meanProp: opt.MeanPropagation, d: d}
		},
		Combine:     sumVec,
		Reduce:      reduceSumVec,
		InputBytes:  mapred.BytesOfSparseVec,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	if !opt.StatefulCombiner {
		// Without in-mapper combining every per-row partial is mapper
		// output that must be spilled and shuffled (the §4.1 problem:
		// "each mapper generate[s] an entire dense matrix after processing
		// each sparse row").
		job.Combine = nil
	} else if scr != nil {
		// The pooled path also opts into the flat-slab shuffle: the naive
		// (combiner-less) ablation stays generic because it emits duplicate
		// keys per task, and the legacy A/B path stays generic by design.
		job.Dense = scr.denseYtX(dims, d)
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return jobSums{}, err
	}
	if sums.ytx == nil { // legacy A/B path: no driver-held sums provided
		sums = newJobSums(dims, d)
	}
	return assembleSumsInto(out, sums)
}

// mrScratch owns the per-map-task mapper scratch of one FitMapReduce call,
// indexed by task id and reused across all EM iterations. Distinct tasks
// write distinct slots of a pre-sized slice, so concurrent map tasks never
// race; retried attempts of one task run sequentially in one goroutine and
// start from a reset. A nil *mrScratch (the reuseScratch=false A/B path)
// hands every attempt a fresh allocation, reproducing the legacy behaviour.
type mrScratch struct {
	ytx []*ytxTaskScratch
	ss3 []*ss3TaskScratch
	// DenseSpecs of the per-iteration jobs, built once per fit: a stable
	// spec pointer lets the engine's slab pool take its cheap same-spec
	// reset path on every EM iteration.
	ytxSpec *mapred.DenseSpec
	ss3Spec *mapred.DenseSpec
}

func newMRScratch(tasks, d, dims int) *mrScratch {
	sc := &mrScratch{
		ytx: make([]*ytxTaskScratch, tasks),
		ss3: make([]*ss3TaskScratch, tasks),
	}
	// Batch-carve every task's fixed-size buffers from shared arenas: the
	// whole fit's scratch costs a handful of allocations instead of several
	// per task. The YtX row slabs themselves still grow on demand (bounded by
	// dims·d), since their size depends on the columns a task touches.
	ytxBlock := make([]ytxTaskScratch, tasks)
	ss3Block := make([]ss3TaskScratch, tasks)
	floats := make([]float64, tasks*(d*d+4*d))
	offs := make([]int32, tasks*2*dims)
	carve := func(n int) []float64 {
		v := floats[:n:n]
		floats = floats[n:]
		return v
	}
	for t := 0; t < tasks; t++ {
		y := &ytxBlock[t]
		y.d = d
		y.xtx = carve(d * d)
		y.sumX = carve(d)
		y.xi = carve(d)
		y.off = offs[:dims:dims]
		y.touched = offs[dims : dims : 2*dims]
		offs = offs[2*dims:]
		for i := range y.off {
			y.off[i] = -1
		}
		y.maxData = dims * d
		sc.ytx[t] = y

		s := &ss3Block[t]
		s.xi = carve(d)
		s.ct = carve(d)
		sc.ss3[t] = s
	}
	return sc
}

// denseYtX returns the fit-wide DenseSpec of the consolidated YtXJob: the
// composite key range [keySumX, dims) of d-wide rows, with the single
// d²-wide XtX partial as a wide key.
func (sc *mrScratch) denseYtX(dims, d int) *mapred.DenseSpec {
	if sc.ytxSpec == nil {
		sc.ytxSpec = &mapred.DenseSpec{
			MinKey:   keySumX,
			Keys:     dims - keySumX,
			Width:    d,
			WideKeys: map[int]int{keyXtX: d * d},
		}
	}
	return sc.ytxSpec
}

// denseSS3 returns the single-key scalar spec of the ss3Job.
func (sc *mrScratch) denseSS3() *mapred.DenseSpec {
	if sc.ss3Spec == nil {
		sc.ss3Spec = &mapred.DenseSpec{MinKey: keySS3, Keys: 1, Width: 1}
	}
	return sc.ss3Spec
}

// ytxTask returns task's YtXJob scratch, reset and ready for a new attempt.
func (sc *mrScratch) ytxTask(task, d int) *ytxTaskScratch {
	if sc == nil {
		return newYtxTaskScratch(d)
	}
	s := sc.ytx[task]
	if s == nil {
		s = newYtxTaskScratch(d)
		sc.ytx[task] = s
	}
	s.reset()
	return s
}

// ss3Task returns task's ss3Job scratch (no reset needed; see ss3TaskScratch).
func (sc *mrScratch) ss3Task(task, d int) *ss3TaskScratch {
	if sc == nil {
		return newSS3TaskScratch(d)
	}
	s := sc.ss3[task]
	if s == nil {
		s = newSS3TaskScratch(d)
		sc.ss3[task] = s
	}
	return s
}

// ytxNaiveMapper emits one partial per non-zero per row with no in-mapper
// state — the baseline the stateful-combiner technique replaces.
type ytxNaiveMapper struct {
	em       *emDriver
	meanProp bool
	d        int
	xi       []float64
}

func (m *ytxNaiveMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, []float64]) {
	if m.xi == nil {
		m.xi = make([]float64, m.d)
	}
	if !m.meanProp {
		row = densifyCentered(row, m.em.mean)
	}
	computeRowLatent(row, m.em, m.meanProp, m.xi)
	for k, j := range row.Indices {
		p := make([]float64, m.d)
		matrix.AXPY(row.Values[k], m.xi, p)
		out.Emit(j, p)
	}
	xtx := make([]float64, m.d*m.d)
	for a := 0; a < m.d; a++ {
		va := m.xi[a]
		base := a * m.d
		for b := 0; b < m.d; b++ {
			xtx[base+b] = va * m.xi[b]
		}
	}
	out.Emit(keyXtX, xtx)
	sum := make([]float64, m.d)
	copy(sum, m.xi)
	out.Emit(keySumX, sum)
	out.AddOps(int64(2*row.NNZ()*m.d + m.d*m.d + m.d))
}

func (m *ytxNaiveMapper) Cleanup(out mapred.Emitter[int, []float64]) {}

// newJobSums allocates a zeroed jobSums of the given shape.
func newJobSums(dims, d int) jobSums {
	return jobSums{
		ytx:  matrix.NewDense(dims, d),
		xtx:  matrix.NewDense(d, d),
		sumX: make([]float64, d),
	}
}

// assembleSums rebuilds the jobSums matrices from reducer output.
func assembleSums(out map[int][]float64, dims, d int) (jobSums, error) {
	return assembleSumsInto(out, newJobSums(dims, d))
}

// assembleSumsInto zeroes sums and refills it from reducer output, so a
// driver-held jobSums can be recycled across iterations.
func assembleSumsInto(out map[int][]float64, sums jobSums) (jobSums, error) {
	sums.ytx.Zero()
	sums.xtx.Zero()
	for i := range sums.sumX {
		sums.sumX[i] = 0
	}
	for k, v := range out {
		switch {
		case k >= 0:
			copy(sums.ytx.Row(k), v)
		case k == keyXtX:
			copy(sums.xtx.Data, v)
		case k == keySumX:
			copy(sums.sumX, v)
		default:
			return jobSums{}, fmt.Errorf("ppca: unexpected YtXJob key %d", k)
		}
	}
	return sums, nil
}

func sumVec(a, b []float64) []float64 {
	matrix.AXPY(1, b, a)
	return a
}

func reduceSumVec(k int, vs [][]float64, o mapred.Ops) []float64 {
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		matrix.AXPY(1, v, out)
		o.AddOps(int64(len(v)))
	}
	return out
}

// ytxTaskScratch is the reusable in-mapper state of one YtXJob map task. The
// engine retains emitted slices only until Run returns and the fit loop runs
// jobs strictly sequentially, so the same buffers can back every iteration's
// mapper. YtX partial rows live packed in one flat slab (data + per-column
// offset table) in first-touch order, mirroring the engine's shuffle slabs:
// reset truncates the slab in O(touched) and every iteration after the first
// runs the mapper without a single row allocation.
type ytxTaskScratch struct {
	d       int
	data    []float64 // packed d-wide YtX partial rows, claim order
	off     []int32   // per column: offset into data, -1 while untouched
	touched []int32   // columns claimed this attempt, claim order
	maxData int       // growth bound (dims·d) when the fit's dims are known
	xtx     []float64
	sumX    []float64
	xi      []float64
	idx     []int // densify scratch for the no-mean-propagation ablation
	vals    []float64
}

func newYtxTaskScratch(d int) *ytxTaskScratch {
	return &ytxTaskScratch{
		d:    d,
		xtx:  make([]float64, d*d),
		sumX: make([]float64, d),
		xi:   make([]float64, d),
	}
}

// reset prepares the scratch for a fresh attempt: touched columns revert to
// untouched and the row slab is truncated, keeping its capacity (the offset
// table holds only live keys, so a task's shuffle output — and hence the byte
// accounting — never includes stale zero rows).
func (s *ytxTaskScratch) reset() {
	for _, j := range s.touched {
		s.off[j] = -1
	}
	s.touched = s.touched[:0]
	s.data = s.data[:0]
	for i := range s.xtx {
		s.xtx[i] = 0
	}
	for i := range s.sumX {
		s.sumX[i] = 0
	}
}

// row returns column j's partial row, claiming a zeroed d-vector from the
// slab on first touch. The returned slice is only valid until the next claim
// (growth may move the backing array); use it immediately.
func (s *ytxTaskScratch) row(j int) []float64 {
	if j >= len(s.off) {
		grown := make([]int32, max(2*len(s.off), j+1, 64))
		copy(grown, s.off)
		for i := len(s.off); i < len(grown); i++ {
			grown[i] = -1
		}
		s.off = grown
	}
	if o := s.off[j]; o >= 0 {
		return s.data[o : int(o)+s.d]
	}
	o := len(s.data)
	if o+s.d <= cap(s.data) {
		s.data = s.data[: o+s.d : cap(s.data)]
		clear(s.data[o:])
	} else {
		c := max(4*cap(s.data), o+s.d, 1024)
		if s.maxData > 0 && c > s.maxData {
			c = max(s.maxData, o+s.d)
		}
		grown := make([]float64, o+s.d, c)
		copy(grown, s.data)
		s.data = grown
	}
	s.off[j] = int32(o)
	s.touched = append(s.touched, int32(j))
	return s.data[o:]
}

// densify is densifyCentered on task-held buffers.
func (s *ytxTaskScratch) densify(row matrix.SparseVector, mean []float64) matrix.SparseVector {
	if cap(s.idx) < row.Len {
		s.idx = make([]int, row.Len)
		s.vals = make([]float64, row.Len)
	}
	return matrix.DensifyCenteredInto(row, mean, s.idx[:row.Len], s.vals[:row.Len])
}

type ytxMapper struct {
	em       *emDriver
	meanProp bool
	d        int
	scr      *ytxTaskScratch
}

func (m *ytxMapper) Map(row matrix.SparseVector, out mapred.Emitter[int, []float64]) {
	s := m.scr
	if !m.meanProp {
		row = s.densify(row, m.em.mean)
	}
	computeRowLatent(row, m.em, m.meanProp, s.xi)
	nnz := row.NNZ()
	// YtX partial: only rows of Y's non-zeros are touched (for the
	// mean-propagated path this is what keeps the partial sparse).
	for k, j := range row.Indices {
		matrix.AXPY(row.Values[k], s.xi, s.row(j))
	}
	for a := 0; a < m.d; a++ {
		va := s.xi[a]
		if va == 0 {
			continue
		}
		base := a * m.d
		for b := 0; b < m.d; b++ {
			s.xtx[base+b] += va * s.xi[b]
		}
	}
	matrix.AXPY(1, s.xi, s.sumX)
	out.AddOps(int64(2*nnz*m.d + m.d*m.d + m.d))
}

func (m *ytxMapper) Cleanup(out mapred.Emitter[int, []float64]) {
	// Each key is emitted exactly once per task, so the engine's in-place
	// combiner merge never mutates these pooled slices. No further claims
	// happen after this point, so the slab rows are stable.
	s := m.scr
	for _, j := range s.touched {
		o := s.off[j]
		out.Emit(int(j), s.data[o:int(o)+s.d:int(o)+s.d])
	}
	out.Emit(keyXtX, s.xtx)
	out.Emit(keySumX, s.sumX)
}

// computeRowLatent fills xi with the centered latent row. With mean
// propagation the Xm correction applies; without it the row is already
// centered and dense, so no correction is needed.
func computeRowLatent(row matrix.SparseVector, em *emDriver, meanProp bool, xi []float64) {
	if meanProp {
		for k := range xi {
			xi[k] = -em.xm[k]
		}
	} else {
		for k := range xi {
			xi[k] = 0
		}
	}
	for k, j := range row.Indices {
		matrix.AXPY(row.Values[k], em.cm.Row(j), xi)
	}
}

// densifyCentered materializes Yi - Ym as a fully dense "sparse" vector —
// exactly the cost the mean-propagation optimization avoids.
func densifyCentered(row matrix.SparseVector, mean []float64) matrix.SparseVector {
	idx := make([]int, row.Len)
	vals := make([]float64, row.Len)
	for j := range idx {
		idx[j] = j
		vals[j] = -mean[j]
	}
	for k, j := range row.Indices {
		vals[j] += row.Values[k]
	}
	return matrix.SparseVector{Len: row.Len, Indices: idx, Values: vals}
}

// ss3Job recomputes X on demand and accumulates Σ Xi_c·(Cᵀ·Yiᵀ) using the
// associativity trick: multiply Cᵀ with the sparse Yiᵀ first (§4.1, Eq. 3).
func ss3Job(eng *mapred.Engine, rows []matrix.SparseVector, em *emDriver, cNew *matrix.Dense, opt Options, scr *mrScratch) (float64, error) {
	job := mapred.Job[matrix.SparseVector, int, float64, float64]{
		Name: "ss3Job",
		NewMapper: func(task int) mapred.Mapper[matrix.SparseVector, int, float64] {
			return &ss3Mapper{
				em: em, c: cNew, meanProp: opt.MeanPropagation,
				assoc: opt.AssociativeSS3, d: em.d,
				scr: scr.ss3Task(task, em.d),
			}
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o mapred.Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: mapred.BytesOfSparseVec,
		KeyBytes:   mapred.BytesOfInt,
		ValueBytes: mapred.BytesOfFloat64,
	}
	if scr != nil {
		job.Dense = scr.denseSS3()
	}
	out, err := mapred.Run(eng, job, rows)
	if err != nil {
		return 0, err
	}
	return out[keySS3], nil
}

// ss3TaskScratch is the reusable per-task scratch of the ss3Job mappers. The
// job emits only scalars, so nothing here is ever retained by the engine and
// no reset between attempts is needed: every buffer is fully overwritten per
// row (or, for ct, zeroed in the loop).
type ss3TaskScratch struct {
	xi   []float64
	ct   []float64
	xc   []float64 // D-length scratch for the non-associative order
	idx  []int     // densify scratch for the no-mean-propagation ablation
	vals []float64
}

func newSS3TaskScratch(d int) *ss3TaskScratch {
	return &ss3TaskScratch{xi: make([]float64, d), ct: make([]float64, d)}
}

func (s *ss3TaskScratch) densify(row matrix.SparseVector, mean []float64) matrix.SparseVector {
	if cap(s.idx) < row.Len {
		s.idx = make([]int, row.Len)
		s.vals = make([]float64, row.Len)
	}
	return matrix.DensifyCenteredInto(row, mean, s.idx[:row.Len], s.vals[:row.Len])
}

type ss3Mapper struct {
	em       *emDriver
	c        *matrix.Dense
	meanProp bool
	assoc    bool
	d        int

	sum float64
	scr *ss3TaskScratch
}

func (m *ss3Mapper) Map(row matrix.SparseVector, out mapred.Emitter[int, float64]) {
	s := m.scr
	if !m.meanProp {
		row = s.densify(row, m.em.mean)
	}
	computeRowLatent(row, m.em, m.meanProp, s.xi)
	if m.assoc {
		// Eq. 3 with associativity: ct = Cᵀ·Yiᵀ touches only non-zeros.
		for k := range s.ct {
			s.ct[k] = 0
		}
		for k, j := range row.Indices {
			matrix.AXPY(row.Values[k], m.c.Row(j), s.ct)
		}
		m.sum += matrix.Dot(s.xi, s.ct)
		out.AddOps(int64(row.NNZ()*m.d + row.NNZ()*m.d + m.d))
		return
	}
	// Default order: (Xi·Cᵀ) is a dense D-vector; "most of the work ...
	// will be wasted since most of these elements will be multiplied with
	// zero elements" (§4.1).
	if s.xc == nil {
		s.xc = make([]float64, m.c.R)
	}
	denseXC(s.xi, m.c, s.xc)
	var t float64
	for k, j := range row.Indices {
		t += s.xc[j] * row.Values[k]
	}
	m.sum += t
	out.AddOps(int64(row.NNZ()*m.d + m.c.R*m.d + row.NNZ()))
}

func (m *ss3Mapper) Cleanup(out mapred.Emitter[int, float64]) { out.Emit(keySS3, m.sum) }

// pairYX is the record type of the unoptimized pipeline, where the
// materialized X must be read back alongside Y.
type pairYX struct {
	y matrix.SparseVector
	x []float64
}

// unoptimizedPasses implements the naive job graph of Figure 1: a dedicated
// job materializes X as intermediate data, and separate XtX and YtX jobs
// read it back — tracing the intermediate-data cost sPCA's §3.2 eliminates.
func unoptimizedPasses(eng *mapred.Engine, rows []matrix.SparseVector, dims int, em *emDriver, opt Options) (jobSums, error) {
	d := em.d
	// Job 1: compute and materialize X (one emitted record per input row).
	xJob := mapred.Job[matrix.SparseVector, int, []float64, []float64]{
		Name: "XJob",
		NewMapper: func(int) mapred.Mapper[matrix.SparseVector, int, []float64] {
			i := -1
			return mapred.MapperFunc[matrix.SparseVector, int, []float64](
				func(row matrix.SparseVector, out mapred.Emitter[int, []float64]) {
					i++
					if !opt.MeanPropagation {
						row = densifyCentered(row, em.mean)
					}
					xi := make([]float64, d)
					computeRowLatent(row, em, opt.MeanPropagation, xi)
					out.Emit(i, xi) // not combinable: every row is distinct
					out.AddOps(int64(row.NNZ() * d))
				})
		},
		Reduce:      func(k int, vs [][]float64, _ mapred.Ops) []float64 { return vs[0] },
		InputBytes:  mapred.BytesOfSparseVec,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	// The per-task row counter above is only unique within a task, so key
	// collisions across tasks would corrupt X. Run the job with one split,
	// which also mirrors how expensive the naive pipeline is to coordinate.
	savedSplits := eng.Splits
	eng.Splits = 1
	xOut, err := mapred.Run(eng, xJob, rows)
	eng.Splits = savedSplits
	if err != nil {
		return jobSums{}, err
	}

	pairs := make([]pairYX, len(rows))
	for i, row := range rows {
		pairs[i] = pairYX{y: row, x: xOut[i]}
	}
	pairBytes := func(p pairYX) int64 {
		return mapred.BytesOfSparseVec(p.y) + mapred.BytesOfVec(p.x)
	}

	// Job 2: XtX (+ ΣX) from the stored X.
	xtxJob := mapred.Job[pairYX, int, []float64, []float64]{
		Name: "XtXJob",
		NewMapper: func(int) mapred.Mapper[pairYX, int, []float64] {
			return &xtxMapper{d: d}
		},
		Combine:     sumVec,
		Reduce:      reduceSumVec,
		InputBytes:  pairBytes,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	xtxOut, err := mapred.Run(eng, xtxJob, pairs)
	if err != nil {
		return jobSums{}, err
	}

	// Job 3: YtX from Y joined with the stored X.
	ytxJob := mapred.Job[pairYX, int, []float64, []float64]{
		Name: "YtXJoinJob",
		NewMapper: func(int) mapred.Mapper[pairYX, int, []float64] {
			return &ytxJoinMapper{d: d, meanProp: opt.MeanPropagation, mean: em.mean}
		},
		Combine:     sumVec,
		Reduce:      reduceSumVec,
		InputBytes:  pairBytes,
		KeyBytes:    mapred.BytesOfInt,
		ValueBytes:  mapred.BytesOfVec,
		ResultBytes: mapred.BytesOfVec,
	}
	ytxOut, err := mapred.Run(eng, ytxJob, pairs)
	if err != nil {
		return jobSums{}, err
	}
	for k, v := range xtxOut {
		ytxOut[k] = v
	}
	return assembleSums(ytxOut, dims, d)
}

type xtxMapper struct {
	d    int
	xtx  []float64
	sumX []float64
}

func (m *xtxMapper) Map(p pairYX, out mapred.Emitter[int, []float64]) {
	if m.xtx == nil {
		m.xtx = make([]float64, m.d*m.d)
		m.sumX = make([]float64, m.d)
	}
	for a := 0; a < m.d; a++ {
		va := p.x[a]
		base := a * m.d
		for b := 0; b < m.d; b++ {
			m.xtx[base+b] += va * p.x[b]
		}
	}
	matrix.AXPY(1, p.x, m.sumX)
	out.AddOps(int64(m.d*m.d + m.d))
}

func (m *xtxMapper) Cleanup(out mapred.Emitter[int, []float64]) {
	if m.xtx == nil {
		return
	}
	out.Emit(keyXtX, m.xtx)
	out.Emit(keySumX, m.sumX)
}

type ytxJoinMapper struct {
	d        int
	meanProp bool
	mean     []float64
	ytx      map[int][]float64
}

func (m *ytxJoinMapper) Map(p pairYX, out mapred.Emitter[int, []float64]) {
	if m.ytx == nil {
		m.ytx = make(map[int][]float64)
	}
	row := p.y
	if !m.meanProp {
		row = densifyCentered(row, m.mean)
	}
	for k, j := range row.Indices {
		part := m.ytx[j]
		if part == nil {
			part = make([]float64, m.d)
			m.ytx[j] = part
		}
		matrix.AXPY(row.Values[k], p.x, part)
	}
	out.AddOps(int64(row.NNZ() * m.d))
}

func (m *ytxJoinMapper) Cleanup(out mapred.Emitter[int, []float64]) {
	for j, p := range m.ytx {
		out.Emit(j, p)
	}
}

// smartGuessMapReduce seeds em from a local fit on a row sample; the sample
// fit's cost is charged to the driver (it is small by construction).
func smartGuessMapReduce(eng *mapred.Engine, rows []matrix.SparseVector, dims int, opt Options, em *emDriver) error {
	n := smartGuessSize(opt, len(rows))
	if n >= len(rows) {
		return nil
	}
	sub := sparseFromRows(rows, dims)
	sample := sampleSparseRows(sub, n, opt.Seed+0x5A)
	subOpt := opt
	subOpt.SmartGuess = false
	subOpt.TargetAccuracy = 0
	subOpt.IdealError = 0
	subOpt.MaxIter = 5
	res, err := FitLocal(sample, subOpt)
	if err != nil {
		return err
	}
	// Charge the sample fit: ~5 iterations x (2·nnz·d) on one driver core.
	eng.Cluster.AddDriverCompute(int64(subOpt.MaxIter) * 2 * int64(sample.NNZ()) * int64(opt.Components))
	em.c = res.Components
	em.ss = res.SS
	return nil
}

// sparseFromRows reassembles a CSR matrix from engine records.
func sparseFromRows(rows []matrix.SparseVector, dims int) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for _, r := range rows {
		b.AddRow(r.Indices, r.Values)
	}
	return b.Build()
}
