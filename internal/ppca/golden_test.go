package ppca

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"spca/internal/dataset"
	"spca/internal/matrix"
)

// fingerprint hashes the exact float64 bit patterns of a fitted model —
// components, mean, noise variance, and the per-iteration history including
// the simulated-time accounting — so any change to results OR metrics flips
// the hash. The golden values below were captured on the tree before the
// scratch-reuse refactor; the refactor must keep every fit bit-identical.
func fingerprint(res *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range res.Components.Data {
		put(v)
	}
	for _, v := range res.Mean {
		put(v)
	}
	put(res.SS)
	put(float64(res.Iterations))
	for _, st := range res.History {
		put(float64(st.Iter))
		put(st.Err)
		put(st.SS)
		put(st.SimSeconds)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenFits enumerates every fit path and ablation we pin. Each case must
// be deterministic: fixed seeds, fixed MaxIter, Tol=0 so no early stop.
func goldenFits() map[string]func() (*Result, error) {
	mk := func(d, iters int) Options {
		opt := DefaultOptions(d)
		opt.MaxIter = iters
		opt.Tol = 0
		return opt
	}
	return map[string]func() (*Result, error){
		"local": func() (*Result, error) {
			return FitLocal(lowRankSparse(150, 40, 3, 11), mk(3, 6))
		},
		"local-smartguess": func() (*Result, error) {
			opt := mk(3, 4)
			opt.SmartGuess = true
			opt.SmartGuessRows = 30
			return FitLocal(lowRankSparse(300, 40, 3, 11), opt)
		},
		"stream": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			return FitStream(matrix.SparseSource{M: y}, mk(3, 5))
		},
		"mr-default": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 40, mk(3, 4))
		},
		"mr-no-meanprop": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			opt := mk(3, 3)
			opt.MeanPropagation = false
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 40, opt)
		},
		"mr-unoptimized": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.MinimizeIntermediate = false
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 30, opt)
		},
		"mr-naive-combiner": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.StatefulCombiner = false
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 30, opt)
		},
		"mr-frobenius2": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.EfficientFrobenius = false
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 30, opt)
		},
		"mr-nonassoc-ss3": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.AssociativeSS3 = false
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 30, opt)
		},
		"mr-smartguess": func() (*Result, error) {
			y := lowRankSparse(300, 40, 3, 11)
			opt := mk(3, 3)
			opt.SmartGuess = true
			opt.SmartGuessRows = 30
			return FitMapReduce(testEngineMR(), dataset.Rows(y), 40, opt)
		},
		"mr-faults": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			eng := testEngineMR()
			eng.FailureRate = 0.2
			eng.MaxAttempts = 12
			eng.SetFailureSeed(7)
			return FitMapReduce(eng, dataset.Rows(y), 40, mk(3, 4))
		},
		"spark-default": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			return FitSpark(testCtxSpark(), dataset.Rows(y), 40, mk(3, 4))
		},
		"spark-no-meanprop": func() (*Result, error) {
			y := lowRankSparse(150, 40, 3, 11)
			opt := mk(3, 3)
			opt.MeanPropagation = false
			return FitSpark(testCtxSpark(), dataset.Rows(y), 40, opt)
		},
		"spark-unoptimized": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.MinimizeIntermediate = false
			return FitSpark(testCtxSpark(), dataset.Rows(y), 30, opt)
		},
		"spark-frobenius2": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.EfficientFrobenius = false
			return FitSpark(testCtxSpark(), dataset.Rows(y), 30, opt)
		},
		"spark-nonassoc-ss3": func() (*Result, error) {
			y := lowRankSparse(120, 30, 3, 7)
			opt := mk(3, 3)
			opt.AssociativeSS3 = false
			return FitSpark(testCtxSpark(), dataset.Rows(y), 30, opt)
		},
	}
}

// goldenHashes pins the pre-refactor fingerprints, captured by running the
// exact same fits on the tree before any scratch-reuse change. If a case is
// missing here the test prints the observed hash so it can be pinned.
var goldenHashes = map[string]string{
	"local":              "1030590f2d0d73a4",
	"local-smartguess":   "61f839be9a342c6b",
	"stream":             "69153874556653b5",
	"mr-default":         "52bf97f732796732",
	"mr-no-meanprop":     "05e0cd1d9783c550",
	"mr-unoptimized":     "eb0eb40f748eadf0",
	"mr-naive-combiner":  "5ba72049c980d66a",
	"mr-frobenius2":      "1631be67d97869d5",
	"mr-nonassoc-ss3":    "858e86f51550e5a5",
	"mr-smartguess":      "64411d5a5a4f485d",
	"mr-faults":          "10677244a786c6a9",
	"spark-default":      "80e65a0bcf6a3747",
	"spark-no-meanprop":  "bddb40d4a17ebaf2",
	"spark-unoptimized":  "79c498fb6ae3db81",
	"spark-frobenius2":   "d1cf0f8ce63d5f8a",
	"spark-nonassoc-ss3": "5706344463f8ad7d",
}

func TestGoldenFitsBitIdentical(t *testing.T) {
	for name, fit := range goldenFits() {
		t.Run(name, func(t *testing.T) {
			res, err := fit()
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(res)
			want, ok := goldenHashes[name]
			if !ok {
				t.Fatalf("no golden hash for %q; captured %s", name, got)
			}
			if got != want {
				t.Fatalf("fit %q changed: fingerprint %s, golden %s", name, got, want)
			}
		})
	}
}
