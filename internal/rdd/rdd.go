// Package rdd implements a miniature Spark-like engine: partitioned resilient
// distributed datasets with in-memory persistence, parallel actions,
// broadcast variables and accumulators — the abstractions Algorithm 5 of the
// paper (YtXSparkJob) is written against.
//
// As with internal/mapred, the computation is real (partitions are processed
// concurrently) while time and memory are simulated: caching charges the
// cluster's aggregate worker memory with spill-to-disk beyond it, actions are
// charged as phases to the cost model, and accumulator merges and broadcasts
// are charged as network traffic. Driver-side allocations go through the
// cluster's driver-memory accounting, which is what makes the MLlib-PCA
// out-of-memory failure reproducible.
package rdd

import (
	"fmt"
	"sort"
	"sync"

	"spca/internal/cluster"
)

// Context owns the simulated cluster state shared by all RDDs of a session.
type Context struct {
	cl         *cluster.Cluster
	partitions int
	state      *ctxState
}

// ctxState is the mutable session state shared by a context and every
// context derived from it via WithPartitions: the cache-memory pool, and the
// mutex that also guards each RDD's persistence fields (Persist/Unpersist
// may race with concurrent scans from another fit on the same session).
type ctxState struct {
	mu          sync.Mutex
	cachedBytes int64 // aggregate worker memory currently used for caching
}

// NewContext returns a Spark-like context over cl. Actions schedule one task
// per partition; the default partition count is 2x the total cores.
func NewContext(cl *cluster.Cluster) *Context {
	return &Context{cl: cl, partitions: 2 * cl.TotalCores(), state: &ctxState{}}
}

// WithPartitions returns a derived context whose new RDDs default to n
// partitions. The receiver is left untouched (so concurrent fits sharing a
// session are unaffected); both contexts share the same cluster and cache
// accounting.
func (c *Context) WithPartitions(n int) *Context {
	if n <= 0 {
		panic("rdd: partitions must be positive")
	}
	derived := *c
	derived.partitions = n
	return &derived
}

// Cluster returns the underlying simulated cluster.
func (c *Context) Cluster() *cluster.Cluster { return c.cl }

// aggregateMemory is the total worker memory available for caching.
func (c *Context) aggregateMemory() int64 {
	cfg := c.cl.Config()
	return int64(cfg.Nodes) * cfg.NodeMemory
}

// reserveCacheLocked claims up to want bytes of aggregate cache memory,
// returning the number of bytes actually granted (the rest spills to disk).
// The caller must hold c.state.mu.
func (c *Context) reserveCacheLocked(want int64) int64 {
	free := c.aggregateMemory() - c.state.cachedBytes
	if free <= 0 {
		return 0
	}
	granted := want
	if granted > free {
		granted = free
	}
	c.state.cachedBytes += granted
	return granted
}

// releaseCacheLocked returns bytes to the cache pool. The caller must hold
// c.state.mu.
func (c *Context) releaseCacheLocked(bytes int64) {
	c.state.cachedBytes -= bytes
	if c.state.cachedBytes < 0 {
		c.state.cachedBytes = 0
	}
}

// CachedBytes reports the aggregate memory currently used for cached RDDs.
func (c *Context) CachedBytes() int64 {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	return c.state.cachedBytes
}

// TaskOps is handed to task functions so they can charge arithmetic work.
type TaskOps struct{ ops int64 }

// AddOps charges n arithmetic operations to the running phase.
func (t *TaskOps) AddOps(n int64) { t.ops += n }

// RDD is a partitioned dataset of T records.
type RDD[T any] struct {
	ctx    *Context
	name   string
	parts  [][]T
	sizeOf func(T) int64

	persisted  bool
	memBytes   int64 // resident in aggregate cluster memory
	spillBytes int64 // overflow that re-reads from disk on every scan
}

// Parallelize distributes data across the context's partitions. sizeOf gives
// the serialized size of a record and drives all byte accounting. Loading is
// charged as one disk-read phase (the paper's datasets start in HDFS).
func Parallelize[T any](ctx *Context, name string, data []T, sizeOf func(T) int64) *RDD[T] {
	n := ctx.partitions
	if n > len(data) {
		n = len(data)
	}
	if n == 0 {
		n = 1
	}
	parts := make([][]T, n)
	for p := 0; p < n; p++ {
		lo := p * len(data) / n
		hi := (p + 1) * len(data) / n
		parts[p] = data[lo:hi]
	}
	r := &RDD[T]{ctx: ctx, name: name, parts: parts, sizeOf: sizeOf}
	ctx.cl.RunPhase(cluster.PhaseStats{
		Name:      name + "/load",
		DiskBytes: r.totalBytes(),
		Tasks:     int64(n),
	})
	return r
}

func (r *RDD[T]) totalBytes() int64 {
	var b int64
	for _, part := range r.parts {
		for _, rec := range part {
			b += r.sizeOf(rec)
		}
	}
	return b
}

// Count returns the number of records.
func (r *RDD[T]) Count() int {
	var n int
	for _, p := range r.parts {
		n += len(p)
	}
	return n
}

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return len(r.parts) }

// Persist pins the RDD in the cluster's aggregate memory. Bytes that do not
// fit spill to disk and are re-read (and charged) on every subsequent scan,
// matching Spark's MEMORY_AND_DISK behaviour the paper relies on ("the disk
// I/O is limited to the amount of data that does not fit in the aggregate
// memory of the cluster").
func (r *RDD[T]) Persist() *RDD[T] {
	total := r.totalBytes()
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.persisted {
		return r
	}
	r.memBytes = r.ctx.reserveCacheLocked(total)
	r.spillBytes = total - r.memBytes
	r.persisted = true
	return r
}

// Unpersist releases the cached memory.
func (r *RDD[T]) Unpersist() {
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if !r.persisted {
		return
	}
	r.ctx.releaseCacheLocked(r.memBytes)
	r.persisted = false
	r.memBytes, r.spillBytes = 0, 0
}

// scanDiskBytes is the disk traffic charged per full scan of this RDD.
func (r *RDD[T]) scanDiskBytes() int64 {
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if !r.persisted {
		return r.totalBytes() // uncached RDDs re-read everything
	}
	return r.spillBytes
}

// ForeachPartition runs f once per partition in parallel and charges one
// phase: the tasks' arithmetic, a scan's disk traffic, and task overheads.
// It is the engine primitive behind every distributed job in this repo.
func (r *RDD[T]) ForeachPartition(name string, f func(task int, part []T, ops *TaskOps)) {
	opsPer := make([]TaskOps, len(r.parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(p, r.parts[p], &opsPer[p])
		}(p)
	}
	wg.Wait()
	var totalOps int64
	for i := range opsPer {
		totalOps += opsPer[i].ops
	}
	r.ctx.cl.RunPhase(cluster.PhaseStats{
		Name:       name,
		ComputeOps: totalOps,
		DiskBytes:  r.scanDiskBytes(),
		Tasks:      int64(len(r.parts)),
		Records:    int64(r.Count()),
	})
}

// Map transforms every record, returning a new (uncached) RDD. The
// transformation is charged as one phase; opsPerRec charges arithmetic.
func Map[T, U any](r *RDD[T], name string, f func(T) U, sizeOf func(U) int64, opsPerRec int64) *RDD[U] {
	out := &RDD[U]{ctx: r.ctx, name: name, sizeOf: sizeOf, parts: make([][]U, len(r.parts))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dst := make([]U, len(r.parts[p]))
			for i, rec := range r.parts[p] {
				dst[i] = f(rec)
			}
			out.parts[p] = dst
		}(p)
	}
	wg.Wait()
	outBytes := out.totalBytes()
	r.ctx.cl.RunPhase(cluster.PhaseStats{
		Name:       name,
		ComputeOps: int64(r.Count()) * opsPerRec,
		// The derived RDD is materialized for later passes (it is not
		// cached, so it lives on disk) — intermediate data in the paper's
		// sense.
		DiskBytes:         r.scanDiskBytes() + outBytes,
		MaterializedBytes: outBytes,
		Tasks:             int64(len(r.parts)),
		Records:           int64(r.Count()),
	})
	return out
}

// Collect gathers all records at the driver, charging their network transfer
// and driver memory. It returns cluster.ErrDriverOOM (wrapped) if the driver
// cannot hold the result. The caller owns the driver allocation (the RDD's
// total byte size) and must release it with Cluster().FreeDriver once the
// collected data is no longer held — a leaked allocation skews DriverPeak
// and can trigger spurious OOMs in long multi-fit runs.
func (r *RDD[T]) Collect() ([]T, error) {
	bytes := r.totalBytes()
	if err := r.ctx.cl.AllocDriver(bytes); err != nil {
		return nil, fmt.Errorf("rdd: collect %s: %w", r.name, err)
	}
	r.ctx.cl.RunPhase(cluster.PhaseStats{
		Name:         r.name + "/collect",
		ShuffleBytes: bytes,
		DiskBytes:    r.scanDiskBytes(),
		Tasks:        int64(len(r.parts)),
		Records:      int64(r.Count()),
	})
	out := make([]T, 0, r.Count())
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out, nil
}

// Aggregate computes a per-partition partial with seq and merges partials
// with comb, Spark treeAggregate-style. Each partial's bytes are charged as
// shuffle traffic and the final result is allocated on the driver; the
// caller must free that allocation via Cluster().FreeDriver(sizeOf(result))
// when the result is no longer needed.
// This is the communication pattern of MLlib's Gramian computation.
func Aggregate[T, U any](r *RDD[T], name string, zero func() U, seq func(U, T, *TaskOps) U, comb func(U, U) U, sizeOf func(U) int64) (U, error) {
	partials := make([]U, len(r.parts))
	opsPer := make([]TaskOps, len(r.parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			acc := zero()
			for _, rec := range r.parts[p] {
				acc = seq(acc, rec, &opsPer[p])
			}
			partials[p] = acc
		}(p)
	}
	wg.Wait()

	var totalOps, shuffle int64
	for i := range opsPer {
		totalOps += opsPer[i].ops
	}
	result := zero()
	for _, part := range partials {
		shuffle += sizeOf(part)
		result = comb(result, part)
	}
	stats := cluster.PhaseStats{
		Name:         name,
		ComputeOps:   totalOps,
		ShuffleBytes: shuffle,
		DiskBytes:    r.scanDiskBytes(),
		Tasks:        int64(len(r.parts)),
		Records:      int64(r.Count()),
	}
	resBytes := sizeOf(result)
	if err := r.ctx.cl.AllocDriver(resBytes); err != nil {
		var zeroU U
		// The phase still ran before the driver fell over.
		r.ctx.cl.RunPhase(stats)
		return zeroU, fmt.Errorf("rdd: aggregate %s: %w", name, err)
	}
	stats.MaterializedBytes = resBytes
	r.ctx.cl.RunPhase(stats)
	return result, nil
}

// Broadcast charges shipping bytes of driver state to every worker node
// (e.g. the small CM = C*M⁻¹ matrix sPCA broadcasts each iteration).
func Broadcast(ctx *Context, name string, bytes int64) {
	ctx.cl.RunPhase(cluster.PhaseStats{
		Name:         name + "/broadcast",
		ShuffleBytes: bytes * int64(ctx.cl.Config().Nodes),
	})
}

// Accumulator is a write-only-from-workers, read-from-driver variable with an
// associative merge, mirroring Spark accumulators (§4.2 of the paper). Tasks
// build a local value and publish it with Merge, which charges the value's
// serialized size as network traffic to the driver.
//
// Partials are buffered per task and folded in ascending task order when the
// driver reads Value. Folding on arrival would sum floats in goroutine
// scheduling order, making repeated runs differ in the last bits.
type Accumulator[T any] struct {
	ctx   *Context
	name  string
	merge func(into, from T) T
	size  func(T) int64

	mu      sync.Mutex
	value   T
	parts   map[int]T
	pending int64 // shuffle bytes accumulated since last Value() read
}

// NewAccumulator creates an accumulator with initial value zero.
func NewAccumulator[T any](ctx *Context, name string, zero T, merge func(into, from T) T, size func(T) int64) *Accumulator[T] {
	return &Accumulator[T]{ctx: ctx, name: name, merge: merge, size: size, value: zero, parts: make(map[int]T)}
}

// Merge folds a task-local partial into the accumulator. The task index
// (from ForeachPartition) fixes the fold order at the driver.
func (a *Accumulator[T]) Merge(task int, local T) {
	b := a.size(local)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.parts[task]; ok {
		a.parts[task] = a.merge(prev, local)
	} else {
		a.parts[task] = local
	}
	a.pending += b
}

// Value reads the accumulated value at the driver, charging the pending
// network traffic of all merges since the previous read.
func (a *Accumulator[T]) Value() T {
	a.mu.Lock()
	tasks := make([]int, 0, len(a.parts))
	for t := range a.parts {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	for _, t := range tasks {
		a.value = a.merge(a.value, a.parts[t])
	}
	clear(a.parts)
	pending := a.pending
	a.pending = 0
	v := a.value
	a.mu.Unlock()
	if pending > 0 {
		a.ctx.cl.RunPhase(cluster.PhaseStats{
			Name:         a.name + "/acc",
			ShuffleBytes: pending,
			// The aggregated value is this job's output, handed to the
			// driver for the next phase.
			MaterializedBytes: a.size(v),
		})
	}
	return v
}
