// Package rdd implements a miniature Spark-like engine: partitioned resilient
// distributed datasets with in-memory persistence, parallel actions,
// broadcast variables and accumulators — the abstractions Algorithm 5 of the
// paper (YtXSparkJob) is written against.
//
// As with internal/mapred, the computation is real (partitions are processed
// concurrently) while time and memory are simulated: caching charges the
// cluster's aggregate worker memory with spill-to-disk beyond it, actions are
// charged as phases to the cost model, and accumulator merges and broadcasts
// are charged as network traffic. Driver-side allocations go through the
// cluster's driver-memory accounting, which is what makes the MLlib-PCA
// out-of-memory failure reproducible.
//
// Fault tolerance is Spark's lineage model: arm it with Context.SetFaultPlan.
// Each RDD records its parent and recompute closure; cached partitions lost
// with a dead node are recomputed transitively from lineage (or re-read, if
// Checkpoint cut the lineage), failed task attempts are re-executed until
// they succeed, and all of it is charged to the cluster's recovery metrics
// while results stay bit-identical to a fault-free run.
package rdd

import (
	"fmt"
	"sort"
	"sync"

	"spca/internal/cluster"
	"spca/internal/trace"
)

// Context owns the simulated cluster state shared by all RDDs of a session.
type Context struct {
	cl         *cluster.Cluster
	partitions int
	state      *ctxState
}

// ctxState is the mutable session state shared by a context and every
// context derived from it via WithPartitions: the cache-memory pool, the
// fault plan, and the mutex that also guards each RDD's persistence and
// lineage fields (Persist/Unpersist may race with concurrent scans from
// another fit on the same session).
type ctxState struct {
	mu          sync.Mutex
	cachedBytes int64 // aggregate worker memory currently used for caching
	faults      *cluster.FaultPlan
	epoch       int64 // action counter, salts fault decisions per action
}

// NewContext returns a Spark-like context over cl. Actions schedule one task
// per partition; the default partition count is 2x the total cores.
func NewContext(cl *cluster.Cluster) *Context {
	return &Context{cl: cl, partitions: 2 * cl.TotalCores(), state: &ctxState{}}
}

// WithPartitions returns a derived context whose new RDDs default to n
// partitions. The receiver is left untouched (so concurrent fits sharing a
// session are unaffected); both contexts share the same cluster and cache
// accounting.
func (c *Context) WithPartitions(n int) *Context {
	if n <= 0 {
		panic("rdd: partitions must be positive")
	}
	derived := *c
	derived.partitions = n
	return &derived
}

// Cluster returns the underlying simulated cluster.
func (c *Context) Cluster() *cluster.Cluster { return c.cl }

// SetFaultPlan arms (or, with nil, disarms) deterministic fault injection for
// every action on this context and the contexts derived from it. Faults are
// simulated Spark-style: lost cached partitions are recovered through lineage
// (transitive recomputation, charged to the recovery metrics), failed task
// attempts are re-executed until they succeed, and results are bit-identical
// to a fault-free run by construction — only the cost accounting changes.
func (c *Context) SetFaultPlan(p *cluster.FaultPlan) {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	c.state.faults = p
}

// actionPlan returns the active fault plan and a salted phase key for one
// action, or (nil, "") when fault injection is off. Each action gets a fresh
// epoch so repeated same-named actions (one per EM iteration) draw distinct
// faults; driver code issues actions sequentially, so epoch assignment — and
// with it every fault decision — is deterministic for a given program.
func (c *Context) actionPlan(name string) (*cluster.FaultPlan, string) {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	if !c.state.faults.Enabled() {
		return nil, ""
	}
	c.state.epoch++
	return c.state.faults, fmt.Sprintf("%s#%d", name, c.state.epoch)
}

// aggregateMemory is the total worker memory available for caching.
func (c *Context) aggregateMemory() int64 {
	cfg := c.cl.Config()
	return int64(cfg.Nodes) * cfg.NodeMemory
}

// reserveCacheLocked claims up to want bytes of aggregate cache memory,
// returning the number of bytes actually granted (the rest spills to disk).
// The caller must hold c.state.mu.
func (c *Context) reserveCacheLocked(want int64) int64 {
	free := c.aggregateMemory() - c.state.cachedBytes
	if free <= 0 {
		return 0
	}
	granted := want
	if granted > free {
		granted = free
	}
	c.state.cachedBytes += granted
	return granted
}

// releaseCacheLocked returns bytes to the cache pool. The caller must hold
// c.state.mu.
func (c *Context) releaseCacheLocked(bytes int64) {
	c.state.cachedBytes -= bytes
	if c.state.cachedBytes < 0 {
		c.state.cachedBytes = 0
	}
}

// CachedBytes reports the aggregate memory currently used for cached RDDs.
func (c *Context) CachedBytes() int64 {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	return c.state.cachedBytes
}

// Epoch reports the action counter that salts per-action fault decisions.
// Checkpoints capture it so a resumed driver draws the exact same faults an
// uninterrupted run would for the remaining actions.
func (c *Context) Epoch() int64 {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	return c.state.epoch
}

// SetEpoch restores the action counter from a checkpoint.
func (c *Context) SetEpoch(epoch int64) {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	c.state.epoch = epoch
}

// TaskOps is handed to task functions so they can charge arithmetic work.
type TaskOps struct{ ops int64 }

// AddOps charges n arithmetic operations to the running phase.
func (t *TaskOps) AddOps(n int64) { t.ops += n }

// RDD is a partitioned dataset of T records.
type RDD[T any] struct {
	ctx    *Context
	name   string
	parts  [][]T
	sizeOf func(T) int64

	persisted  bool
	memBytes   int64 // resident in aggregate cluster memory
	spillBytes int64 // overflow that re-reads from disk on every scan
	// digests holds one FNV-64 checksum per partition, stamped when the
	// partition is materialized into the cache (Persist). Scans under an
	// armed fault plan re-verify them, so a caller mutating records it handed
	// to Persist — real, silent cache corruption — is caught instead of
	// poisoning later iterations.
	digests []uint64

	// Lineage, for Spark-style fault recovery. parent is the RDD this one was
	// derived from (nil for a root) and recomputeOpsPerRec the arithmetic to
	// re-derive one record from the parent; together they form the recompute
	// closure. checkpointed RDDs are durably on simulated disk (HDFS), so
	// recovery is a re-read and the lineage walk stops. lost marks cached
	// partitions that died with their node and must be recomputed before the
	// next scan. All guarded by ctx.state.mu.
	parent             lineageNode
	recomputeOpsPerRec int64
	checkpointed       bool
	lost               []bool
}

// lineageNode is the type-erased view of an RDD seen by its children during
// a lineage walk (parent and child generally hold different record types).
type lineageNode interface {
	// recoverLocked charges the cost of making partition p readable again,
	// recursing into the parent when this node must recompute. Caller holds
	// ctx.state.mu.
	recoverLocked(p int, rc *recovery)
	// markNodeLostLocked records that worker node (of nodes total) died,
	// invalidating the cached partitions it hosted, here and transitively up
	// the lineage. Caller holds ctx.state.mu.
	markNodeLostLocked(node, nodes int)
}

// recovery accumulates the charges of one action's fault handling.
type recovery struct {
	failed       int64 // failed attempts + lost partitions recovered
	ops          int64 // re-executed arithmetic
	disk         int64 // re-read bytes (checkpoint / root re-loads)
	spec         int64 // speculative backup copies
	stragglerOps int64 // serial op-time of unmitigated stragglers
	corrupt      int64 // cached/broadcast payloads that failed checksum verification
	reverify     int64 // bytes re-shipped to replace corrupt payloads
}

// maxLineageRetries bounds per-task retries purely as a safeguard against
// degenerate plans (TaskFailureRate = 1 would otherwise loop forever). Unlike
// the MapReduce engine, lineage recovery has no terminal failure: Spark
// resubmits until the task lands.
const maxLineageRetries = 1000

// partBytes is the serialized size of partition p.
func (r *RDD[T]) partBytes(p int) int64 {
	var b int64
	for _, rec := range r.parts[p] {
		b += r.sizeOf(rec)
	}
	return b
}

// partDigest checksums partition p: each record's position and modeled size
// is folded into an FNV-64 payload digest. Stamped at Persist time, verified
// on scans under an armed fault plan.
func (r *RDD[T]) partDigest(p int) uint64 {
	var dig cluster.PayloadDigest
	for i, rec := range r.parts[p] {
		dig.Add(int64(i), r.sizeOf(rec))
	}
	return dig.Sum()
}

// verifyCachedLocked re-verifies the checksums of this RDD's cached
// partitions. A mismatch means the records handed to Persist were mutated
// afterwards — real cache corruption the simulation cannot recover from, and
// a caller bug — so it panics with the typed sentinel in the message. Caller
// holds ctx.state.mu.
func (r *RDD[T]) verifyCachedLocked() {
	if !r.persisted || r.digests == nil {
		return
	}
	for p := range r.parts {
		if r.lost != nil && r.lost[p] {
			continue // lost partitions are recomputed, not read
		}
		if r.partDigest(p) != r.digests[p] {
			panic(fmt.Sprintf("rdd: %s partition %d: %v (cached records mutated after Persist)",
				r.name, p, cluster.ErrCorruptPayload))
		}
	}
}

func (r *RDD[T]) recoverLocked(p int, rc *recovery) {
	if r.checkpointed {
		rc.disk += r.partBytes(p) // durable copy: re-read, lineage cut
		return
	}
	if r.persisted && (r.lost == nil || !r.lost[p]) {
		return // cached copy (memory or local spill) still available
	}
	if r.parent != nil {
		r.parent.recoverLocked(p, rc)
	}
	rc.ops += int64(len(r.parts[p])) * r.recomputeOpsPerRec
	if r.persisted {
		r.lost[p] = false // the recomputed partition re-enters the cache
	}
}

func (r *RDD[T]) markNodeLostLocked(node, nodes int) {
	if r.persisted && !r.checkpointed {
		if r.lost == nil {
			r.lost = make([]bool, len(r.parts))
		}
		for p := node; p < len(r.parts); p += nodes {
			r.lost[p] = true
		}
	}
	if r.parent != nil {
		r.parent.markNodeLostLocked(node, nodes)
	}
}

// applyActionFaults rolls this action's fault decisions and folds the
// recovery charges into stats. Node losses invalidate cached partitions up
// the lineage and the lost partitions this action reads are recovered
// (recomputed transitively, or re-read if checkpointed); per-task attempt
// failures charge their re-execution; a straggling committing attempt either
// races a speculative copy or delays the phase. taskOps[p] is the real
// arithmetic of task p (nil for pure data-movement actions). Results are
// never touched — the engine charges re-execution instead of re-running
// closures, so actions with side effects (accumulator merges) stay exact.
func applyActionFaults[T any](r *RDD[T], plan *cluster.FaultPlan, phase string, stats *cluster.PhaseStats, taskOps []int64) {
	if !plan.Enabled() {
		return
	}
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	// Scanning under an armed plan re-verifies the cached partitions'
	// checksums first: injected corruption below is accounting-only, but a
	// real digest mismatch means the cache itself was clobbered.
	r.verifyCachedLocked()
	var rc recovery
	nodes := r.ctx.cl.Config().Nodes
	for n := 0; n < nodes; n++ {
		if plan.NodeLost(phase, n) {
			r.markNodeLostLocked(n, nodes)
		}
	}
	for p := range r.parts {
		if r.lost != nil && r.lost[p] {
			rc.failed++
			r.recoverLocked(p, &rc)
		}
	}
	// Payload corruption on the partitions this scan reads: a corrupted block
	// is discarded like a lost one — recomputed from lineage, or re-read when
	// a durable copy exists — and the replacement is re-shipped to the reader.
	if plan.CorruptionRate > 0 {
		for p := range r.parts {
			for att := 1; att <= maxLineageRetries && plan.PayloadCorrupt(phase, p, att); att++ {
				rc.corrupt++
				rc.reverify += r.partBytes(p)
				if r.persisted && !r.checkpointed {
					if r.lost == nil {
						r.lost = make([]bool, len(r.parts))
					}
					r.lost[p] = true
				}
				r.recoverLocked(p, &rc)
			}
		}
	}
	for p, ops := range taskOps {
		att := 1
		for ; att <= maxLineageRetries && plan.AttemptFails(phase, p, att); att++ {
			rc.failed++
			rc.ops += ops // the failed attempt's work, re-executed
		}
		if plan.Straggles(phase, p, att) {
			if plan.SpeculativeExecution {
				rc.spec++
				rc.ops += ops
			} else {
				rc.stragglerOps += int64(float64(ops) * (plan.SlowFactor() - 1))
			}
		}
	}
	stats.FailedAttempts += rc.failed
	stats.RecomputedOps += rc.ops
	stats.RecoveryDiskBytes += rc.disk
	stats.SpeculativeTasks += rc.spec
	stats.StragglerOps += rc.stragglerOps
	stats.CorruptPayloads += rc.corrupt
	stats.ReverifyBytes += rc.reverify
}

// Checkpoint materializes the RDD to simulated durable storage (HDFS),
// cutting its lineage: recovery of a checkpointed partition is a disk
// re-read rather than a recomputation chain. The write is charged as one
// phase, like Spark's checkpoint job.
func (r *RDD[T]) Checkpoint() *RDD[T] {
	bytes := r.totalBytes()
	tr := r.ctx.cl.Tracer()
	if tr != nil {
		tr.Begin(r.name+"/checkpoint", trace.KindAction,
			trace.I("partitions", int64(len(r.parts))), trace.I("bytes", bytes))
		defer tr.End()
	}
	r.ctx.cl.RunPhase(cluster.PhaseStats{
		Name:              r.name + "/checkpoint",
		DiskBytes:         bytes,
		MaterializedBytes: bytes,
		Tasks:             int64(len(r.parts)),
	})
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	r.checkpointed = true
	r.parent = nil
	r.lost = nil
	return r
}

// Parallelize distributes data across the context's partitions. sizeOf gives
// the serialized size of a record and drives all byte accounting. Loading is
// charged as one disk-read phase (the paper's datasets start in HDFS).
func Parallelize[T any](ctx *Context, name string, data []T, sizeOf func(T) int64) *RDD[T] {
	n := ctx.partitions
	if n > len(data) {
		n = len(data)
	}
	if n == 0 {
		n = 1
	}
	parts := make([][]T, n)
	for p := 0; p < n; p++ {
		lo := p * len(data) / n
		hi := (p + 1) * len(data) / n
		parts[p] = data[lo:hi]
	}
	// A root RDD's data lives durably in HDFS, so it is born checkpointed:
	// losing a cached copy of an input partition costs a re-read, never a
	// recomputation.
	r := &RDD[T]{ctx: ctx, name: name, parts: parts, sizeOf: sizeOf, checkpointed: true}
	ctx.cl.RunPhase(cluster.PhaseStats{
		Name:      name + "/load",
		DiskBytes: r.totalBytes(),
		Tasks:     int64(n),
	})
	return r
}

func (r *RDD[T]) totalBytes() int64 {
	var b int64
	for _, part := range r.parts {
		for _, rec := range part {
			b += r.sizeOf(rec)
		}
	}
	return b
}

// Count returns the number of records.
func (r *RDD[T]) Count() int {
	var n int
	for _, p := range r.parts {
		n += len(p)
	}
	return n
}

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return len(r.parts) }

// Persist pins the RDD in the cluster's aggregate memory. Bytes that do not
// fit spill to disk and are re-read (and charged) on every subsequent scan,
// matching Spark's MEMORY_AND_DISK behaviour the paper relies on ("the disk
// I/O is limited to the amount of data that does not fit in the aggregate
// memory of the cluster").
func (r *RDD[T]) Persist() *RDD[T] {
	total := r.totalBytes()
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.persisted {
		return r
	}
	r.memBytes = r.ctx.reserveCacheLocked(total)
	r.spillBytes = total - r.memBytes
	r.persisted = true
	// Stamp per-partition checksums at materialization time; scans under an
	// armed fault plan re-verify them.
	r.digests = make([]uint64, len(r.parts))
	for p := range r.parts {
		r.digests[p] = r.partDigest(p)
	}
	return r
}

// Unpersist releases the cached memory.
func (r *RDD[T]) Unpersist() {
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if !r.persisted {
		return
	}
	r.ctx.releaseCacheLocked(r.memBytes)
	r.persisted = false
	r.memBytes, r.spillBytes = 0, 0
	r.digests = nil
}

// scanDiskBytes is the disk traffic charged per full scan of this RDD.
func (r *RDD[T]) scanDiskBytes() int64 {
	st := r.ctx.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if !r.persisted {
		return r.totalBytes() // uncached RDDs re-read everything
	}
	return r.spillBytes
}

// ForeachPartition runs f once per partition in parallel and charges one
// phase: the tasks' arithmetic, a scan's disk traffic, and task overheads.
// It is the engine primitive behind every distributed job in this repo.
// It returns a typed interruption sentinel (wrapped) when the cluster's
// interrupt handle fired; the action's phase charge still commits first, so
// metrics and trace stay consistent at the abort boundary.
func (r *RDD[T]) ForeachPartition(name string, f func(task int, part []T, ops *TaskOps)) error {
	// Entry poll, before the action draws its fault epoch: an interrupted
	// run must not advance the fault cursor for an action it never starts.
	if err := r.ctx.cl.Interrupted(); err != nil {
		return fmt.Errorf("rdd: action %q: %w", name, err)
	}
	plan, phase := r.ctx.actionPlan(name)
	tr := r.ctx.cl.Tracer()
	if tr != nil {
		tr.Begin(name, trace.KindAction, trace.I("partitions", int64(len(r.parts))))
	}
	opsPer := make([]TaskOps, len(r.parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(p, r.parts[p], &opsPer[p])
		}(p)
	}
	wg.Wait()
	var totalOps int64
	taskOps := make([]int64, len(opsPer))
	for i := range opsPer {
		totalOps += opsPer[i].ops
		taskOps[i] = opsPer[i].ops
	}
	stats := cluster.PhaseStats{
		Name:       name,
		ComputeOps: totalOps,
		DiskBytes:  r.scanDiskBytes(),
		Tasks:      int64(len(r.parts)),
		Records:    int64(r.Count()),
	}
	applyActionFaults(r, plan, phase, &stats, taskOps)
	r.ctx.cl.RunPhase(stats)
	// Boundary poll after the fully charged action: the partitions' work is
	// done and committed, so a caller that unwinds here resumes bit-identically.
	if err := r.ctx.cl.Interrupted(); err != nil {
		if tr != nil {
			tr.End(trace.I("failed", 1))
		}
		return fmt.Errorf("rdd: action %q: %w", name, err)
	}
	if tr != nil {
		tr.End()
	}
	return nil
}

// Map transforms every record, returning a new (uncached) RDD. The
// transformation is charged as one phase; opsPerRec charges arithmetic.
func Map[T, U any](r *RDD[T], name string, f func(T) U, sizeOf func(U) int64, opsPerRec int64) *RDD[U] {
	plan, phase := r.ctx.actionPlan(name)
	tr := r.ctx.cl.Tracer()
	if tr != nil {
		tr.Begin(name, trace.KindAction, trace.I("partitions", int64(len(r.parts))))
		defer tr.End()
	}
	out := &RDD[U]{
		ctx: r.ctx, name: name, sizeOf: sizeOf, parts: make([][]U, len(r.parts)),
		// Lineage: the child re-derives a lost partition by re-applying f to
		// the parent's partition.
		parent: r, recomputeOpsPerRec: opsPerRec,
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dst := make([]U, len(r.parts[p]))
			for i, rec := range r.parts[p] {
				dst[i] = f(rec)
			}
			out.parts[p] = dst
		}(p)
	}
	wg.Wait()
	outBytes := out.totalBytes()
	taskOps := make([]int64, len(r.parts))
	for p := range r.parts {
		taskOps[p] = int64(len(r.parts[p])) * opsPerRec
	}
	stats := cluster.PhaseStats{
		Name:       name,
		ComputeOps: int64(r.Count()) * opsPerRec,
		// The derived RDD is materialized for later passes (it is not
		// cached, so it lives on disk) — intermediate data in the paper's
		// sense.
		DiskBytes:         r.scanDiskBytes() + outBytes,
		MaterializedBytes: outBytes,
		Tasks:             int64(len(r.parts)),
		Records:           int64(r.Count()),
	}
	applyActionFaults(r, plan, phase, &stats, taskOps)
	r.ctx.cl.RunPhase(stats)
	return out
}

// Collect gathers all records at the driver, charging their network transfer
// and driver memory. It returns cluster.ErrDriverOOM (wrapped) if the driver
// cannot hold the result. The caller owns the driver allocation (the RDD's
// total byte size) and must release it with Cluster().FreeDriver once the
// collected data is no longer held — a leaked allocation skews DriverPeak
// and can trigger spurious OOMs in long multi-fit runs.
func (r *RDD[T]) Collect() ([]T, error) {
	if err := r.ctx.cl.Interrupted(); err != nil {
		return nil, fmt.Errorf("rdd: collect %s: %w", r.name, err)
	}
	plan, phase := r.ctx.actionPlan(r.name + "/collect")
	bytes := r.totalBytes()
	tr := r.ctx.cl.Tracer()
	if tr != nil {
		tr.Begin(r.name+"/collect", trace.KindAction,
			trace.I("partitions", int64(len(r.parts))), trace.I("bytes", bytes))
	}
	if err := r.ctx.cl.AllocDriver(bytes); err != nil {
		if tr != nil {
			tr.End(trace.I("driver_oom", 1))
		}
		return nil, fmt.Errorf("rdd: collect %s: %w", r.name, err)
	}
	stats := cluster.PhaseStats{
		Name:         r.name + "/collect",
		ShuffleBytes: bytes,
		DiskBytes:    r.scanDiskBytes(),
		Tasks:        int64(len(r.parts)),
		Records:      int64(r.Count()),
	}
	// Collect moves data rather than computing, so only node-loss recovery
	// applies (nil taskOps: no per-task arithmetic to re-execute).
	applyActionFaults(r, plan, phase, &stats, nil)
	r.ctx.cl.RunPhase(stats)
	if tr != nil {
		tr.End()
	}
	out := make([]T, 0, r.Count())
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out, nil
}

// Aggregate computes a per-partition partial with seq and merges partials
// with comb, Spark treeAggregate-style. Each partial's bytes are charged as
// shuffle traffic and the final result is allocated on the driver; the
// caller must free that allocation via Cluster().FreeDriver(sizeOf(result))
// when the result is no longer needed.
// This is the communication pattern of MLlib's Gramian computation.
func Aggregate[T, U any](r *RDD[T], name string, zero func() U, seq func(U, T, *TaskOps) U, comb func(U, U) U, sizeOf func(U) int64) (U, error) {
	return AggregateInto(r, name, func(int) U { return zero() }, seq, comb, sizeOf)
}

// AggregateInto is Aggregate with a task-indexed zero: zero(p) builds the
// fold target of partition p and zero(-1) the driver-side result, letting
// callers hand out pooled per-task accumulators (reused across repeated
// actions) instead of allocating fresh ones per call. Partition indices are
// stable for the life of the RDD and each partition's fold runs on a single
// goroutine, so a caller-owned zero value is touched by exactly one task per
// action.
func AggregateInto[T, U any](r *RDD[T], name string, zero func(task int) U, seq func(U, T, *TaskOps) U, comb func(U, U) U, sizeOf func(U) int64) (U, error) {
	// Entry poll, before the action draws its fault epoch (see
	// ForeachPartition).
	if err := r.ctx.cl.Interrupted(); err != nil {
		var zeroU U
		return zeroU, fmt.Errorf("rdd: aggregate %q: %w", name, err)
	}
	plan, phase := r.ctx.actionPlan(name)
	tr := r.ctx.cl.Tracer()
	if tr != nil {
		tr.Begin(name, trace.KindAction, trace.I("partitions", int64(len(r.parts))))
	}
	partials := make([]U, len(r.parts))
	opsPer := make([]TaskOps, len(r.parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.cl.TotalCores())
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			acc := zero(p)
			for _, rec := range r.parts[p] {
				acc = seq(acc, rec, &opsPer[p])
			}
			partials[p] = acc
		}(p)
	}
	wg.Wait()

	var totalOps, shuffle int64
	taskOps := make([]int64, len(opsPer))
	for i := range opsPer {
		totalOps += opsPer[i].ops
		taskOps[i] = opsPer[i].ops
	}
	result := zero(-1)
	for _, part := range partials {
		shuffle += sizeOf(part)
		result = comb(result, part)
	}
	stats := cluster.PhaseStats{
		Name:         name,
		ComputeOps:   totalOps,
		ShuffleBytes: shuffle,
		DiskBytes:    r.scanDiskBytes(),
		Tasks:        int64(len(r.parts)),
		Records:      int64(r.Count()),
	}
	applyActionFaults(r, plan, phase, &stats, taskOps)
	// Boundary poll before the result lands on the driver: the phase charge
	// below commits (the work ran), but no driver allocation is made that the
	// unwinding caller would never free.
	if err := r.ctx.cl.Interrupted(); err != nil {
		var zeroU U
		r.ctx.cl.RunPhase(stats)
		if tr != nil {
			tr.End(trace.I("failed", 1))
		}
		return zeroU, fmt.Errorf("rdd: aggregate %q: %w", name, err)
	}
	resBytes := sizeOf(result)
	if err := r.ctx.cl.AllocDriver(resBytes); err != nil {
		var zeroU U
		// The phase still ran before the driver fell over.
		r.ctx.cl.RunPhase(stats)
		if tr != nil {
			tr.End(trace.I("driver_oom", 1))
		}
		return zeroU, fmt.Errorf("rdd: aggregate %s: %w", name, err)
	}
	stats.MaterializedBytes = resBytes
	r.ctx.cl.RunPhase(stats)
	if tr != nil {
		tr.End(trace.I("result_bytes", resBytes))
	}
	return result, nil
}

// Broadcast charges shipping bytes of driver state to every worker node
// (e.g. the small CM = C*M⁻¹ matrix sPCA broadcasts each iteration). Under a
// fault plan with payload corruption armed, each node's block may arrive
// corrupted (detected by its checksum) and is re-shipped until a clean copy
// lands. Unlike actions, broadcasts never bump the fault epoch — the
// corruption draws are keyed off the current epoch plus the broadcast name,
// which the sequential driver makes deterministic and which checkpoint/resume
// restores exactly.
func Broadcast(ctx *Context, name string, bytes int64) {
	stats := cluster.PhaseStats{
		Name:         name + "/broadcast",
		ShuffleBytes: bytes * int64(ctx.cl.Config().Nodes),
	}
	ctx.state.mu.Lock()
	plan := ctx.state.faults
	epoch := ctx.state.epoch
	ctx.state.mu.Unlock()
	if plan != nil && plan.CorruptionRate > 0 {
		phase := fmt.Sprintf("%s@%d/bcast", name, epoch)
		nodes := ctx.cl.Config().Nodes
		for n := 0; n < nodes; n++ {
			for att := 1; att <= maxLineageRetries && plan.PayloadCorrupt(phase, n, att); att++ {
				stats.CorruptPayloads++
				stats.ReverifyBytes += bytes
			}
		}
	}
	ctx.cl.RunPhase(stats)
}

// Accumulator is a write-only-from-workers, read-from-driver variable with an
// associative merge, mirroring Spark accumulators (§4.2 of the paper). Tasks
// build a local value and publish it with Merge, which charges the value's
// serialized size as network traffic to the driver.
//
// Partials are buffered per task and folded in ascending task order when the
// driver reads Value. Folding on arrival would sum floats in goroutine
// scheduling order, making repeated runs differ in the last bits.
type Accumulator[T any] struct {
	ctx   *Context
	name  string
	merge func(into, from T) T
	size  func(T) int64

	mu      sync.Mutex
	value   T
	parts   map[int]T
	pending int64 // shuffle bytes accumulated since last Value() read
}

// NewAccumulator creates an accumulator with initial value zero.
func NewAccumulator[T any](ctx *Context, name string, zero T, merge func(into, from T) T, size func(T) int64) *Accumulator[T] {
	return &Accumulator[T]{ctx: ctx, name: name, merge: merge, size: size, value: zero, parts: make(map[int]T)}
}

// Merge folds a task-local partial into the accumulator. The task index
// (from ForeachPartition) fixes the fold order at the driver.
func (a *Accumulator[T]) Merge(task int, local T) {
	b := a.size(local)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.parts[task]; ok {
		a.parts[task] = a.merge(prev, local)
	} else {
		a.parts[task] = local
	}
	a.pending += b
}

// Value reads the accumulated value at the driver, charging the pending
// network traffic of all merges since the previous read.
func (a *Accumulator[T]) Value() T {
	a.mu.Lock()
	tasks := make([]int, 0, len(a.parts))
	for t := range a.parts {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	for _, t := range tasks {
		a.value = a.merge(a.value, a.parts[t])
	}
	clear(a.parts)
	pending := a.pending
	a.pending = 0
	v := a.value
	a.mu.Unlock()
	if pending > 0 {
		a.ctx.cl.RunPhase(cluster.PhaseStats{
			Name:         a.name + "/acc",
			ShuffleBytes: pending,
			// The aggregated value is this job's output, handed to the
			// driver for the next phase.
			MaterializedBytes: a.size(v),
		})
	}
	return v
}
