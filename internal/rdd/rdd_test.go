package rdd

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spca/internal/cluster"
)

func newTestContext(mutate ...func(*cluster.Config)) *Context {
	cfg := cluster.DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	return NewContext(cluster.MustNew(cfg))
}

func intSize(int) int64 { return 8 }

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeAndCount(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(1000), intSize)
	if r.Count() != 1000 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.NumPartitions() != 2*64 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	// Loading charged one disk phase of 8000 bytes.
	m := ctx.Cluster().Metrics()
	if m.DiskBytes != 8000 || m.Phases != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestParallelizeSmallInput(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "tiny", rangeInts(3), intSize)
	if r.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	empty := Parallelize(ctx, "empty", nil, intSize)
	if empty.Count() != 0 || empty.NumPartitions() != 1 {
		t.Fatal("empty rdd malformed")
	}
}

func TestForeachPartitionVisitsEverything(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(500), intSize)
	var sum int64
	r.ForeachPartition("sum", func(task int, part []int, ops *TaskOps) {
		var local int64
		for _, v := range part {
			local += int64(v)
			ops.AddOps(1)
		}
		atomic.AddInt64(&sum, local)
	})
	if sum != 500*499/2 {
		t.Fatalf("sum = %d", sum)
	}
	m := ctx.Cluster().Metrics()
	if m.ComputeOps != 500 {
		t.Fatalf("ops = %d", m.ComputeOps)
	}
}

func TestUncachedScanChargesDisk(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	before := ctx.Cluster().Metrics().DiskBytes
	r.ForeachPartition("scan", func(int, []int, *TaskOps) {})
	after := ctx.Cluster().Metrics().DiskBytes
	if after-before != 800 {
		t.Fatalf("uncached scan charged %d disk bytes", after-before)
	}
}

func TestPersistEliminatesScanDisk(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize).Persist()
	before := ctx.Cluster().Metrics().DiskBytes
	r.ForeachPartition("scan", func(int, []int, *TaskOps) {})
	after := ctx.Cluster().Metrics().DiskBytes
	if after != before {
		t.Fatalf("cached scan charged %d disk bytes", after-before)
	}
	if ctx.CachedBytes() != 800 {
		t.Fatalf("cached bytes = %d", ctx.CachedBytes())
	}
	r.Unpersist()
	if ctx.CachedBytes() != 0 {
		t.Fatal("unpersist did not release memory")
	}
}

func TestPersistSpillsBeyondAggregateMemory(t *testing.T) {
	ctx := newTestContext(func(c *cluster.Config) {
		c.Nodes = 2
		c.NodeMemory = 100 // aggregate 200 bytes
	})
	r := Parallelize(ctx, "big", rangeInts(100), intSize).Persist() // 800 bytes
	if r.memBytes != 200 || r.spillBytes != 600 {
		t.Fatalf("mem=%d spill=%d", r.memBytes, r.spillBytes)
	}
	before := ctx.Cluster().Metrics().DiskBytes
	r.ForeachPartition("scan", func(int, []int, *TaskOps) {})
	if got := ctx.Cluster().Metrics().DiskBytes - before; got != 600 {
		t.Fatalf("spilled scan charged %d", got)
	}
}

func TestMapTransforms(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(10), intSize)
	doubled := Map(r, "double", func(v int) int { return 2 * v }, intSize, 1)
	got, err := doubled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Cluster().FreeDriver(doubled.totalBytes())
	if len(got) != 10 || got[3] != 6 || got[9] != 18 {
		t.Fatalf("collect = %v", got)
	}
}

func TestCollectFreePairsWithAlloc(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	bytes := r.totalBytes()
	if got := ctx.Cluster().DriverUsed(); got != bytes {
		t.Fatalf("driver holds %d bytes after collect, want %d", got, bytes)
	}
	ctx.Cluster().FreeDriver(bytes)
	if got := ctx.Cluster().DriverUsed(); got != 0 {
		t.Fatalf("driver holds %d bytes after paired free", got)
	}
}

func TestCollectDriverOOM(t *testing.T) {
	ctx := newTestContext(func(c *cluster.Config) { c.DriverMemory = 100 })
	r := Parallelize(ctx, "ints", rangeInts(1000), intSize)
	if _, err := r.Collect(); !errors.Is(err, cluster.ErrDriverOOM) {
		t.Fatalf("expected driver OOM, got %v", err)
	}
}

func TestAggregateSums(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	got, err := Aggregate(r, "sum",
		func() int { return 0 },
		func(acc, v int, ops *TaskOps) int { ops.AddOps(1); return acc + v },
		func(a, b int) int { return a + b },
		intSize,
	)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4950 {
		t.Fatalf("aggregate = %d", got)
	}
	// Each partition shipped an 8-byte partial.
	phases := ctx.Cluster().PhaseLog()
	last := phases[len(phases)-1]
	if last.ShuffleBytes != int64(r.NumPartitions())*8 {
		t.Fatalf("shuffle = %d, partitions = %d", last.ShuffleBytes, r.NumPartitions())
	}
}

func TestAggregateDriverOOM(t *testing.T) {
	ctx := newTestContext(func(c *cluster.Config) { c.DriverMemory = 4 })
	r := Parallelize(ctx, "ints", rangeInts(10), intSize)
	_, err := Aggregate(r, "sum",
		func() int { return 0 },
		func(acc, v int, _ *TaskOps) int { return acc + v },
		func(a, b int) int { return a + b },
		intSize,
	)
	if !errors.Is(err, cluster.ErrDriverOOM) {
		t.Fatalf("expected driver OOM, got %v", err)
	}
	if !strings.Contains(err.Error(), "sum") {
		t.Fatalf("error should name the phase: %v", err)
	}
}

func TestBroadcastChargesPerNode(t *testing.T) {
	ctx := newTestContext()
	Broadcast(ctx, "cm", 1000)
	m := ctx.Cluster().Metrics()
	if m.ShuffleBytes != 8000 { // 8 nodes
		t.Fatalf("broadcast shuffle = %d", m.ShuffleBytes)
	}
}

func TestAccumulator(t *testing.T) {
	ctx := newTestContext()
	acc := NewAccumulator(ctx, "total", 0.0,
		func(a, b float64) float64 { return a + b },
		func(float64) int64 { return 8 })
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	r.ForeachPartition("accumulate", func(task int, part []int, ops *TaskOps) {
		var local float64
		for _, v := range part {
			local += float64(v)
		}
		acc.Merge(task, local)
	})
	if got := acc.Value(); got != 4950 {
		t.Fatalf("accumulator = %v", got)
	}
	// Reading the value charged one phase with partitions x 8 bytes.
	phases := ctx.Cluster().PhaseLog()
	last := phases[len(phases)-1]
	if last.Name != "total/acc" || last.ShuffleBytes != int64(r.NumPartitions())*8 {
		t.Fatalf("acc phase = %+v", last)
	}
	// Second read with no new merges charges nothing.
	n := ctx.Cluster().Metrics().Phases
	_ = acc.Value()
	if ctx.Cluster().Metrics().Phases != n {
		t.Fatal("idle Value() charged a phase")
	}
}

func TestWithPartitions(t *testing.T) {
	ctx := newTestContext().WithPartitions(4)
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	if r.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive partitions")
		}
	}()
	ctx.WithPartitions(0)
}

func TestWithPartitionsReturnsDerivedContext(t *testing.T) {
	ctx := newTestContext()
	base := ctx.partitions
	derived := ctx.WithPartitions(4)
	if ctx.partitions != base {
		t.Fatalf("WithPartitions mutated the parent context: %d", ctx.partitions)
	}
	if derived.partitions != 4 {
		t.Fatalf("derived partitions = %d", derived.partitions)
	}
	// Cache accounting is shared: a persist through the derived context is
	// visible through the parent.
	r := Parallelize(derived, "ints", rangeInts(10), intSize).Persist()
	if ctx.CachedBytes() != 80 || derived.CachedBytes() != 80 {
		t.Fatalf("cache pool not shared: parent=%d derived=%d",
			ctx.CachedBytes(), derived.CachedBytes())
	}
	r.Unpersist()
	if ctx.CachedBytes() != 0 {
		t.Fatal("unpersist not visible through parent context")
	}
}

// TestConcurrentPersistForeach is the -race regression test for the unlocked
// persisted/memBytes/spillBytes mutation: one fit's Persist/Unpersist cycle
// must not race with another fit scanning its own RDD on the same session.
func TestConcurrentPersistForeach(t *testing.T) {
	ctx := newTestContext()
	a := Parallelize(ctx, "a", rangeInts(200), intSize)
	b := Parallelize(ctx, "b", rangeInts(200), intSize)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			a.Persist()
			a.ForeachPartition("scan-a", func(int, []int, *TaskOps) {})
			a.Unpersist()
		}
	}()
	for i := 0; i < 50; i++ {
		b.Persist()
		b.ForeachPartition("scan-b", func(int, []int, *TaskOps) {})
		b.Unpersist()
	}
	<-done
	if ctx.CachedBytes() != 0 {
		t.Fatalf("cache accounting drifted: %d bytes still reserved", ctx.CachedBytes())
	}
}

func TestPersistIdempotent(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(10), intSize)
	r.Persist()
	r.Persist()
	if ctx.CachedBytes() != 80 {
		t.Fatalf("double persist double-charged: %d", ctx.CachedBytes())
	}
	r.Unpersist()
	r.Unpersist()
	if ctx.CachedBytes() != 0 {
		t.Fatal("double unpersist corrupted accounting")
	}
}

// Property: Aggregate equals a sequential fold for random data and
// partition counts.
func TestAggregateProperty(t *testing.T) {
	f := func(seed uint16, n uint8, parts uint8) bool {
		data := make([]int, int(n)+1)
		var want int
		for i := range data {
			data[i] = (int(seed)*31 + i*7) % 100
			want += data[i]
		}
		ctx := newTestContext().WithPartitions(int(parts%20) + 1)
		r := Parallelize(ctx, "p", data, intSize)
		got, err := Aggregate(r, "sum",
			func() int { return 0 },
			func(acc, v int, _ *TaskOps) int { return acc + v },
			func(a, b int) int { return a + b },
			intSize,
		)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForeachRecordsCharged(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(42), intSize)
	r.ForeachPartition("scan", func(int, []int, *TaskOps) {})
	log := ctx.Cluster().PhaseLog()
	last := log[len(log)-1]
	if last.Records != 42 {
		t.Fatalf("records = %d, want 42", last.Records)
	}
}

// TestAggregateIntoReusesCallerZeroValues: AggregateInto hands each partition
// the caller's zero(task) value and uses zero(-1) as the driver-side result
// seed, so a caller can pool per-partition accumulators across repeated
// aggregations (what the ppca engines do every EM iteration) and observe the
// fold results in the buffers it provided.
func TestAggregateIntoReusesCallerZeroValues(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	parts := r.NumPartitions()
	pooled := make([]*[]int, parts)
	for i := range pooled {
		s := []int{}
		pooled[i] = &s
	}
	driverZero := []int{}
	sliceSize := func(*[]int) int64 { return 8 }
	for pass := 0; pass < 3; pass++ {
		for _, p := range pooled {
			*p = (*p)[:0] // recycle capacity, as pooled scratch does
		}
		driverZero = driverZero[:0]
		got, err := AggregateInto(r, "gather",
			func(task int) *[]int {
				if task < 0 {
					return &driverZero
				}
				return pooled[task]
			},
			func(acc *[]int, v int, _ *TaskOps) *[]int { *acc = append(*acc, v); return acc },
			func(a, b *[]int) *[]int { *a = append(*a, *b...); return a },
			sliceSize,
		)
		if err != nil {
			t.Fatal(err)
		}
		if got != &driverZero {
			t.Fatal("AggregateInto did not seed the driver result with zero(-1)")
		}
		if len(*got) != 100 {
			t.Fatalf("pass %d gathered %d values, want 100", pass, len(*got))
		}
		total := 0
		seen := 0
		for _, p := range pooled {
			seen += len(*p)
			for _, v := range *p {
				total += v
			}
		}
		if seen != 100 || total != 4950 {
			t.Fatalf("pass %d: pooled accumulators hold %d values summing %d", pass, seen, total)
		}
	}
}
