package rdd

import (
	"sync/atomic"
	"testing"

	"spca/internal/cluster"
)

// sumAction folds the RDD through an accumulator-style ForeachPartition and
// returns the total, charging one op per record.
func sumAction(r *RDD[int], name string) int64 {
	var total int64
	r.ForeachPartition(name, func(task int, part []int, ops *TaskOps) {
		var s int64
		for _, v := range part {
			s += int64(v)
			ops.AddOps(1)
		}
		atomic.AddInt64(&total, s)
	})
	return total
}

// TestAttemptFailuresChargedAndExact: failed task attempts are re-executed
// (charged, never re-run — side effects stay exact) and the result matches a
// fault-free run.
func TestAttemptFailuresChargedAndExact(t *testing.T) {
	clean := newTestContext()
	want := sumAction(Parallelize(clean, "ints", rangeInts(512), intSize), "sum")

	ctx := newTestContext()
	ctx.SetFaultPlan(&cluster.FaultPlan{Seed: 3, TaskFailureRate: 0.5})
	got := sumAction(Parallelize(ctx, "ints", rangeInts(512), intSize), "sum")
	if got != want {
		t.Fatalf("sum = %d under faults, want %d", got, want)
	}
	m := ctx.Cluster().Metrics()
	if m.FailedAttempts == 0 || m.RecomputedOps == 0 || m.RecoverySeconds <= 0 {
		t.Fatalf("no recovery charged at 50%% failure rate: %+v", m)
	}
}

// TestSameSeedSameFaults: fault charges are a pure function of the plan
// seed, independent of goroutine scheduling.
func TestSameSeedSameFaults(t *testing.T) {
	run := func(seed uint64) cluster.Metrics {
		ctx := newTestContext()
		ctx.SetFaultPlan(&cluster.FaultPlan{Seed: seed, TaskFailureRate: 0.3, NodeLossRate: 0.2, StragglerRate: 0.2, SpeculativeExecution: true})
		r := Parallelize(ctx, "ints", rangeInts(1024), intSize).Persist()
		sumAction(r, "pass1")
		sumAction(r, "pass2")
		return ctx.Cluster().Metrics()
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
	if a.FailedAttempts == 0 {
		t.Fatal("seed 11 injected nothing; test proves nothing")
	}
	if c := run(12); a == c {
		t.Fatal("different seeds produced identical metrics")
	}
}

// TestLineageRecoveryTransitive: losing the cached partitions of a persisted
// RDD chain recomputes them transitively — child from parent from the
// durable root (a re-read, since roots are born checkpointed).
func TestLineageRecoveryTransitive(t *testing.T) {
	ctx := newTestContext()
	root := Parallelize(ctx, "root", rangeInts(256), intSize)
	a := Map(root, "a", func(v int) int { return v + 1 }, intSize, 2).Persist()
	b := Map(a, "b", func(v int) int { return v * 2 }, intSize, 3).Persist()
	preLoss := ctx.Cluster().Metrics()

	// Every node dies: all cached partitions of a and b are lost. The next
	// action on b must rebuild b from a and a from the root's durable copy.
	ctx.SetFaultPlan(&cluster.FaultPlan{Seed: 1, NodeLossRate: 1})
	want := sumAction(b, "sum")
	m := ctx.Cluster().Metrics()

	var clean int64
	for _, v := range rangeInts(256) {
		clean += int64((v + 1) * 2)
	}
	if want != clean {
		t.Fatalf("sum = %d after node loss, want %d", want, clean)
	}
	// 256 records re-derived through both map closures: 2 + 3 ops each.
	if rec := m.RecomputedOps - preLoss.RecomputedOps; rec != 256*(2+3) {
		t.Fatalf("recomputed ops = %d, want %d", rec, 256*(2+3))
	}
	// The root's partitions were re-read from durable storage: 8 bytes/rec.
	if disk := m.DiskBytes - preLoss.DiskBytes; disk < 256*8 {
		t.Fatalf("recovery disk = %d, want at least the root re-read", disk)
	}
	if m.FailedAttempts == 0 || m.RecoverySeconds <= 0 {
		t.Fatalf("lost partitions not accounted: %+v", m)
	}

	// Recovery restored the cache: a fault-free action recomputes nothing.
	ctx.SetFaultPlan(nil)
	after := ctx.Cluster().Metrics()
	sumAction(b, "sum2")
	if got := ctx.Cluster().Metrics().RecomputedOps; got != after.RecomputedOps {
		t.Fatalf("cache not restored after recovery: %d new recomputed ops", got-after.RecomputedOps)
	}
}

// TestCheckpointCutsLineage: after Checkpoint, recovering a descendant stops
// at the checkpointed ancestor (disk re-read) instead of recomputing the
// whole chain.
func TestCheckpointCutsLineage(t *testing.T) {
	run := func(checkpoint bool) int64 {
		ctx := newTestContext()
		root := Parallelize(ctx, "root", rangeInts(256), intSize)
		a := Map(root, "a", func(v int) int { return v + 1 }, intSize, 7)
		if checkpoint {
			a.Checkpoint()
		}
		c := Map(a, "c", func(v int) int { return v * 2 }, intSize, 3).Persist()
		ctx.SetFaultPlan(&cluster.FaultPlan{Seed: 1, NodeLossRate: 1})
		sumAction(c, "sum")
		return ctx.Cluster().Metrics().RecomputedOps
	}
	withCut, withoutCut := run(true), run(false)
	// Cut lineage: only c's own closure re-runs (3 ops/rec). Uncut: a's
	// closure (7 ops/rec) re-runs too.
	if withCut != 256*3 {
		t.Fatalf("checkpointed chain recomputed %d ops, want %d", withCut, 256*3)
	}
	if withoutCut != 256*(7+3) {
		t.Fatalf("uncut chain recomputed %d ops, want %d", withoutCut, 256*(7+3))
	}
}

// TestCheckpointCharged: Checkpoint materializes the RDD to simulated disk
// as its own phase.
func TestCheckpointCharged(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(100), intSize)
	before := ctx.Cluster().Metrics()
	r.Checkpoint()
	m := ctx.Cluster().Metrics()
	if m.Phases != before.Phases+1 {
		t.Fatal("checkpoint did not run as a phase")
	}
	if m.DiskBytes-before.DiskBytes != 800 || m.MaterializedBytes-before.MaterializedBytes != 800 {
		t.Fatalf("checkpoint bytes wrong: %+v", m)
	}
}

// TestStragglersAndSpeculation: a straggling committing attempt either
// launches a charged backup copy or delays the phase serially.
func TestStragglersAndSpeculation(t *testing.T) {
	spec := newTestContext()
	spec.SetFaultPlan(&cluster.FaultPlan{Seed: 2, StragglerRate: 1, SpeculativeExecution: true})
	r := Parallelize(spec, "ints", rangeInts(512), intSize)
	sumAction(r, "sum")
	m := spec.Cluster().Metrics()
	if m.SpeculativeTasks != int64(r.NumPartitions()) {
		t.Fatalf("speculative tasks = %d, want one per partition (%d)", m.SpeculativeTasks, r.NumPartitions())
	}

	slow := newTestContext()
	slow.SetFaultPlan(&cluster.FaultPlan{Seed: 2, StragglerRate: 1, StragglerFactor: 5})
	sumAction(Parallelize(slow, "ints", rangeInts(512), intSize), "sum")
	sm := slow.Cluster().Metrics()
	if sm.SpeculativeTasks != 0 {
		t.Fatal("speculation off but backups launched")
	}
	if sm.RecoverySeconds <= 0 {
		t.Fatal("unmitigated stragglers cost nothing")
	}
}

// TestFaultFreeRunsUnchanged: without a plan the recovery metrics stay zero
// and the action sequence charges exactly what it did before the fault layer
// existed.
func TestFaultFreeRunsUnchanged(t *testing.T) {
	ctx := newTestContext()
	r := Parallelize(ctx, "ints", rangeInts(300), intSize).Persist()
	sumAction(r, "sum")
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Cluster().Metrics()
	if m.FailedAttempts != 0 || m.RecomputedOps != 0 || m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 {
		t.Fatalf("fault-free run charged recovery: %+v", m)
	}
}

// TestCollectRecoversLostPartitions: pure data-movement actions still
// recover lost cached partitions before shipping them.
func TestCollectRecoversLostPartitions(t *testing.T) {
	ctx := newTestContext()
	root := Parallelize(ctx, "root", rangeInts(128), intSize)
	r := Map(root, "m", func(v int) int { return v + 1 }, intSize, 1).Persist()
	ctx.SetFaultPlan(&cluster.FaultPlan{Seed: 4, NodeLossRate: 1})
	before := ctx.Cluster().Metrics()
	out, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 128 || out[0] != 1 {
		t.Fatalf("collect corrupted by recovery: len=%d", len(out))
	}
	m := ctx.Cluster().Metrics()
	if m.RecomputedOps-before.RecomputedOps != 128 {
		t.Fatalf("recomputed ops = %d, want 128", m.RecomputedOps-before.RecomputedOps)
	}
}
