package rdd

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"spca/internal/cluster"
)

// interruptedContext returns a test Context whose cluster polls ctx.
func interruptedContext(ctx context.Context) *Context {
	c := newTestContext()
	c.Cluster().SetInterrupt(cluster.NewInterrupt(ctx, 0))
	return c
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestAggregateCanceledMidAction cancels the context from inside a seq
// function. The action's phase charge stays on the books (the work ran), the
// returned value is the zero U, and the error matches both sentinel families.
func TestAggregateCanceledMidAction(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := interruptedContext(ctx)
	r := Parallelize(c, "ints", rangeInts(500), intSize)
	var once sync.Once
	sum, err := Aggregate(r, "cancel-sum",
		func() int64 { return 0 },
		func(acc int64, v int, ops *TaskOps) int64 {
			once.Do(cancel)
			ops.AddOps(1)
			return acc + int64(v)
		},
		func(a, b int64) int64 { return a + b },
		func(int64) int64 { return 8 })
	if !errors.Is(err, cluster.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if sum != 0 {
		t.Fatalf("canceled aggregate returned a partial result: %d", sum)
	}
	m := c.Cluster().Metrics()
	if m.Phases < 2 || m.ComputeOps == 0 { // parallelize + the aborted action
		t.Fatalf("aborted action not charged: %+v", m)
	}
	waitGoroutines(t, base)
}

// TestAggregateDeadlineMidAction is the deadline flavor: the seq functions
// outlive the context deadline, and the boundary poll reports it as such.
func TestAggregateDeadlineMidAction(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	c := interruptedContext(ctx)
	r := Parallelize(c, "ints", rangeInts(4), intSize)
	_, err := Aggregate(r, "slow-sum",
		func() int64 { return 0 },
		func(acc int64, v int, ops *TaskOps) int64 {
			time.Sleep(30 * time.Millisecond) // guarantees expiry mid-action
			return acc + int64(v)
		},
		func(a, b int64) int64 { return a + b },
		func(int64) int64 { return 8 })
	if !errors.Is(err, cluster.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded wrapping context.DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("deadline expiry misreported as cancel: %v", err)
	}
}

// TestActionEntryPollPreservesEpoch pins the resume invariant on the rdd
// side: an action refused at the entry poll must not advance the fault epoch.
func TestActionEntryPollPreservesEpoch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := interruptedContext(ctx)
	r := Parallelize(c, "ints", rangeInts(100), intSize)
	cancel()
	epoch := c.Epoch()
	phases := c.Cluster().Metrics().Phases

	if err := r.ForeachPartition("refused", func(int, []int, *TaskOps) {}); !errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("ForeachPartition: want ErrCanceled, got %v", err)
	}
	if _, err := Aggregate(r, "refused-agg",
		func() int64 { return 0 },
		func(acc int64, v int, _ *TaskOps) int64 { return acc + int64(v) },
		func(a, b int64) int64 { return a + b },
		func(int64) int64 { return 8 }); !errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("Aggregate: want ErrCanceled, got %v", err)
	}
	if _, err := r.Collect(); !errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("Collect: want ErrCanceled, got %v", err)
	}

	if got := c.Epoch(); got != epoch {
		t.Fatalf("entry poll advanced the fault epoch: %d -> %d", epoch, got)
	}
	if got := c.Cluster().Metrics().Phases; got != phases {
		t.Fatalf("refused actions charged phases: %d -> %d", phases, got)
	}
}

// TestForeachPartitionCanceledMidAction covers the ForeachPartition boundary
// poll (the path the Spark engines' per-iteration jobs ride on).
func TestForeachPartitionCanceledMidAction(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := interruptedContext(ctx)
	r := Parallelize(c, "ints", rangeInts(300), intSize)
	var once sync.Once
	err := r.ForeachPartition("cancel-walk", func(task int, part []int, ops *TaskOps) {
		once.Do(cancel)
		ops.AddOps(int64(len(part)))
	})
	if !errors.Is(err, cluster.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if m := c.Cluster().Metrics(); m.Phases < 2 {
		t.Fatalf("aborted action not charged: %+v", m)
	}
	waitGoroutines(t, base)
}
