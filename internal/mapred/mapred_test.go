package mapred

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

func testEngine() *Engine {
	cfg := cluster.DefaultConfig()
	return NewEngine(cluster.MustNew(cfg))
}

// wordCount is the canonical MapReduce smoke test.
func wordCountJob() Job[string, string, int64, int64] {
	return Job[string, string, int64, int64]{
		Name: "wordcount",
		NewMapper: func(task int) Mapper[string, string, int64] {
			return MapperFunc[string, string, int64](func(line string, out Emitter[string, int64]) {
				for _, w := range strings.Fields(line) {
					out.Emit(w, 1)
				}
			})
		},
		Combine: func(a, b int64) int64 { return a + b },
		Reduce: func(k string, vs []int64, _ Ops) int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return s
		},
		InputBytes:  func(s string) int64 { return int64(len(s)) },
		KeyBytes:    BytesOfString,
		ValueBytes:  func(int64) int64 { return 8 },
		ResultBytes: func(int64) int64 { return 8 },
	}
}

func TestWordCount(t *testing.T) {
	e := testEngine()
	input := []string{"a b a", "b c", "a"}
	got, err := Run(e, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d want %d", k, got[k], v)
		}
	}
}

// TestReducersGovernScheduling pins the fix for Engine.Reducers being pure
// accounting: keys must be partitioned into Reducers reduce tasks, so no
// more than Reducers Reduce calls run concurrently.
func TestReducersGovernScheduling(t *testing.T) {
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	job := Job[int, int, int64, int64]{
		Name: "width",
		NewMapper: func(int) Mapper[int, int, int64] {
			return MapperFunc[int, int, int64](func(v int, out Emitter[int, int64]) {
				out.Emit(v, int64(v))
			})
		},
		Reduce: func(k int, vs []int64, _ Ops) int64 {
			cur := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if cur > maxInFlight {
				maxInFlight = cur
			}
			mu.Unlock()
			var s int64
			for _, v := range vs {
				s += v
			}
			atomic.AddInt64(&inFlight, -1)
			return s
		},
	}
	input := make([]int, 64)
	for i := range input {
		input[i] = i
	}
	e := testEngine()
	e.Reducers = 2
	got, err := Run(e, job, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("got %d keys", len(got))
	}
	for k, v := range got {
		if v != int64(k) {
			t.Fatalf("result[%d] = %d", k, v)
		}
	}
	if maxInFlight > 2 {
		t.Fatalf("observed %d concurrent reducers, configured 2", maxInFlight)
	}
	log := e.Cluster.PhaseLog()
	if reduce := log[len(log)-1]; reduce.Tasks != 2 {
		t.Fatalf("reduce phase charged %d tasks, want 2", reduce.Tasks)
	}
}

func TestRunChargesPhases(t *testing.T) {
	e := testEngine()
	if _, err := Run(e, wordCountJob(), []string{"x y z"}); err != nil {
		t.Fatal(err)
	}
	m := e.Cluster.Metrics()
	if m.Phases != 2 {
		t.Fatalf("phases = %d, want map+reduce", m.Phases)
	}
	if m.ShuffleBytes == 0 || m.DiskBytes == 0 || m.SimSeconds <= 0 {
		t.Fatalf("metrics not charged: %+v", m)
	}
	log := e.Cluster.PhaseLog()
	if log[0].Name != "wordcount/map" || log[1].Name != "wordcount/reduce" {
		t.Fatalf("phase names %q %q", log[0].Name, log[1].Name)
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	input := []string{"a a a a a a a a", "a a a a a a a a"}
	withJob := wordCountJob()

	e1 := testEngine()
	e1.Splits = 2
	if _, err := Run(e1, withJob, input); err != nil {
		t.Fatal(err)
	}
	withCombiner := e1.Cluster.Metrics().ShuffleBytes

	noJob := wordCountJob()
	noJob.Combine = nil
	e2 := testEngine()
	e2.Splits = 2
	if _, err := Run(e2, noJob, input); err != nil {
		t.Fatal(err)
	}
	without := e2.Cluster.Metrics().ShuffleBytes

	if withCombiner >= without {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", withCombiner, without)
	}
	// 2 map tasks, each emits one combined pair for "a": 2*(1+8) bytes.
	if withCombiner != 2*(1+8) {
		t.Fatalf("combined shuffle bytes = %d", withCombiner)
	}
	// 16 raw pairs without combiner.
	if without != 16*(1+8) {
		t.Fatalf("raw shuffle bytes = %d", without)
	}
}

// statefulMapper accumulates a per-task sum and emits once in Cleanup,
// exercising the paper's stateful in-mapper combiner pattern.
type statefulMapper struct{ sum int64 }

func (m *statefulMapper) Map(rec int64, out Emitter[string, int64]) {
	m.sum += rec
	out.AddOps(1)
}

func (m *statefulMapper) Cleanup(out Emitter[string, int64]) {
	out.Emit("total", m.sum)
}

func statefulJob() Job[int64, string, int64, int64] {
	return Job[int64, string, int64, int64]{
		Name:      "stateful",
		NewMapper: func(task int) Mapper[int64, string, int64] { return &statefulMapper{} },
		Reduce: func(k string, vs []int64, o Ops) int64 {
			var s int64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		KeyBytes:   BytesOfString,
		ValueBytes: func(int64) int64 { return 8 },
	}
}

func TestStatefulMapperEmitsOncePerTask(t *testing.T) {
	e := testEngine()
	e.Splits = 4
	input := make([]int64, 100)
	for i := range input {
		input[i] = int64(i + 1)
	}
	got, err := Run(e, statefulJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	if got["total"] != 5050 {
		t.Fatalf("total = %d", got["total"])
	}
	// 4 tasks x 1 pair x (5 key bytes + 8 value bytes).
	if sh := e.Cluster.Metrics().ShuffleBytes; sh != 4*13 {
		t.Fatalf("shuffle bytes = %d", sh)
	}
	// Ops charged: 100 map ops + 4 reduce ops.
	if ops := e.Cluster.Metrics().ComputeOps; ops != 104 {
		t.Fatalf("compute ops = %d", ops)
	}
}

// TestFailureInjectionRetriesAndStillCorrect covers the legacy FailureRate
// knob: failed attempts are retried, the result is exact, Tasks stays the
// useful task count, and the retries land in the recovery accounting.
func TestFailureInjectionRetriesAndStillCorrect(t *testing.T) {
	e := testEngine()
	e.FailureRate = 0.5
	e.SetFailureSeed(1234)
	e.Splits = 8
	e.MaxAttempts = 12 // 0.5^12 per task: terminal failure effectively off
	input := make([]int64, 64)
	for i := range input {
		input[i] = 1
	}
	got, err := Run(e, statefulJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	if got["total"] != 64 {
		t.Fatalf("total = %d with failures", got["total"])
	}
	log := e.Cluster.PhaseLog()
	if log[0].Tasks != 8 {
		t.Fatalf("map tasks = %d, want the 8 useful tasks", log[0].Tasks)
	}
	if log[0].FailedAttempts == 0 {
		t.Fatal("expected retried attempts at 50% failure rate")
	}
	if log[0].RecomputedOps == 0 {
		t.Fatal("failed attempts did not charge recomputed ops")
	}
	m := e.Cluster.Metrics()
	if m.FailedAttempts != log[0].FailedAttempts+log[1].FailedAttempts {
		t.Fatalf("metrics failed=%d, phases %d+%d",
			m.FailedAttempts, log[0].FailedAttempts, log[1].FailedAttempts)
	}
	if m.RecoverySeconds <= 0 {
		t.Fatal("recovery time not charged")
	}
}

// TestTerminalFailureReturnsError pins the silent-success fix: when every
// attempt of a task fails, Run must surface ErrTaskFailed instead of keeping
// the last attempt's output.
func TestTerminalFailureReturnsError(t *testing.T) {
	e := testEngine()
	e.FailureRate = 1.0
	e.MaxAttempts = 3
	e.Splits = 2
	_, err := Run(e, statefulJob(), []int64{5, 7})
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	// The doomed attempts still burned cluster resources.
	log := e.Cluster.PhaseLog()
	if len(log) != 1 {
		t.Fatalf("aborted job charged %d phases, want the map phase only", len(log))
	}
	if log[0].FailedAttempts != 2*3 {
		t.Fatalf("failed attempts = %d, want 2 tasks x 3 attempts", log[0].FailedAttempts)
	}
}

// TestReducePhaseRetries verifies fault injection reaches reduce tasks,
// which the original implementation never failed.
func TestReducePhaseRetries(t *testing.T) {
	e := testEngine()
	e.Faults = &cluster.FaultPlan{Seed: 5, TaskFailureRate: 0.6, MaxAttempts: 20}
	e.Reducers = 8
	input := []string{"a b c d e f g h", "a b c d", "e f g h"}
	got, err := Run(e, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 2 || got["h"] != 2 {
		t.Fatalf("wrong counts under reduce failures: %v", got)
	}
	log := e.Cluster.PhaseLog()
	reduce := log[len(log)-1]
	if reduce.FailedAttempts == 0 {
		t.Fatal("no reduce attempt failed at 60% failure rate")
	}
	if reduce.Tasks != 8 {
		t.Fatalf("reduce tasks = %d, want 8 useful tasks", reduce.Tasks)
	}
}

// TestNodeLossRerunsCompletedMaps pins the Hadoop semantics: map outputs on
// a dead node are gone, so the completed map tasks it hosted re-run.
func TestNodeLossRerunsCompletedMaps(t *testing.T) {
	e := testEngine()
	e.Faults = &cluster.FaultPlan{Seed: 1, NodeLossRate: 1} // every node dies
	e.Splits = 8
	input := make([]int64, 32)
	for i := range input {
		input[i] = 1
	}
	got, err := Run(e, statefulJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	if got["total"] != 32 {
		t.Fatalf("total = %d after node loss", got["total"])
	}
	log := e.Cluster.PhaseLog()
	if log[0].FailedAttempts != 8 {
		t.Fatalf("failed attempts = %d, want all 8 map outputs lost", log[0].FailedAttempts)
	}
	// The re-run repeats the full map work: one op per record.
	if log[0].RecomputedOps != 32 {
		t.Fatalf("recomputed ops = %d, want 32", log[0].RecomputedOps)
	}
}

// TestSpeculativeExecution covers straggler handling both ways: speculative
// backup copies are counted and charged, and without speculation the
// straggler's serial slack is charged instead.
func TestSpeculativeExecution(t *testing.T) {
	input := make([]int64, 32)
	for i := range input {
		input[i] = 1
	}

	spec := testEngine()
	spec.Faults = &cluster.FaultPlan{Seed: 9, StragglerRate: 1, SpeculativeExecution: true}
	spec.Splits = 4
	if _, err := Run(spec, statefulJob(), input); err != nil {
		t.Fatal(err)
	}
	log := spec.Cluster.PhaseLog()
	if log[0].SpeculativeTasks != 4 {
		t.Fatalf("speculative tasks = %d, want one backup per map task", log[0].SpeculativeTasks)
	}
	if log[0].StragglerOps != 0 {
		t.Fatal("speculation must absorb straggler slack")
	}

	slow := testEngine()
	slow.Faults = &cluster.FaultPlan{Seed: 9, StragglerRate: 1, StragglerFactor: 4}
	slow.Splits = 4
	if _, err := Run(slow, statefulJob(), input); err != nil {
		t.Fatal(err)
	}
	log = slow.Cluster.PhaseLog()
	if log[0].SpeculativeTasks != 0 {
		t.Fatal("speculation off but backups launched")
	}
	// 32 map ops, each task straggling 4x slower: 3 extra op-times of slack.
	if log[0].StragglerOps != 3*32 {
		t.Fatalf("straggler ops = %d, want %d", log[0].StragglerOps, 3*32)
	}
	if slow.Cluster.Metrics().RecoverySeconds <= 0 {
		t.Fatal("straggler slack not priced")
	}
}

// mapExecCounts runs the stateful job and returns how many times the mapper
// of each task executed (attempts = failures + 1), which identifies the
// exact attempt set that failed.
func mapExecCounts(t *testing.T, seed uint64) []int64 {
	t.Helper()
	const splits = 8
	counts := make([]int64, splits)
	e := testEngine()
	e.FailureRate = 0.4
	e.SetFailureSeed(seed)
	e.Splits = splits
	e.MaxAttempts = 16
	job := statefulJob()
	base := job.NewMapper
	job.NewMapper = func(task int) Mapper[int64, string, int64] {
		atomic.AddInt64(&counts[task], 1)
		return base(task)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = 1
	}
	if _, err := Run(e, job, input); err != nil {
		t.Fatal(err)
	}
	return counts
}

// TestFailureSeedReproducible pins the SetFailureSeed fix: the same seed
// must fail the identical per-task attempt set on every run, regardless of
// goroutine scheduling.
func TestFailureSeedReproducible(t *testing.T) {
	a := mapExecCounts(t, 77)
	b := mapExecCounts(t, 77)
	var retried bool
	for task := range a {
		if a[task] != b[task] {
			t.Fatalf("task %d ran %d vs %d attempts with the same seed", task, a[task], b[task])
		}
		if a[task] > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("seed 77 injected no failures; test proves nothing")
	}
	c := mapExecCounts(t, 78)
	same := true
	for task := range a {
		if a[task] != c[task] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical attempt set")
	}
}

// TestFaultFreeRunsChargeNoRecovery guards the cost model: without a fault
// plan, every recovery metric stays exactly zero.
func TestFaultFreeRunsChargeNoRecovery(t *testing.T) {
	e := testEngine()
	if _, err := Run(e, wordCountJob(), []string{"a b", "c"}); err != nil {
		t.Fatal(err)
	}
	m := e.Cluster.Metrics()
	if m.FailedAttempts != 0 || m.RecomputedOps != 0 || m.SpeculativeTasks != 0 || m.RecoverySeconds != 0 {
		t.Fatalf("fault-free run charged recovery: %+v", m)
	}
}

func TestEmptyInput(t *testing.T) {
	e := testEngine()
	got, err := Run(e, wordCountJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestMissingMapperOrReducer(t *testing.T) {
	e := testEngine()
	bad := wordCountJob()
	bad.NewMapper = nil
	if _, err := Run(e, bad, []string{"x"}); err == nil {
		t.Fatal("expected error for nil mapper")
	}
	bad2 := wordCountJob()
	bad2.Reduce = nil
	if _, err := Run(e, bad2, []string{"x"}); err == nil {
		t.Fatal("expected error for nil reducer")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	input := []string{"q w e r t y", "q w e", "q"}
	r1, err := Run(testEngine(), wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testEngine(), wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r1 {
		if r2[k] != v {
			t.Fatalf("nondeterministic result for %q", k)
		}
	}
}

// Matrix-valued job: emit per-row outer products, reduce by summation —
// the shape of the paper's YtX job.
func TestMatrixValuedJob(t *testing.T) {
	rows := []matrix.SparseVector{
		{Len: 3, Indices: []int{0, 2}, Values: []float64{1, 2}},
		{Len: 3, Indices: []int{1}, Values: []float64{3}},
	}
	job := Job[matrix.SparseVector, string, *matrix.Dense, *matrix.Dense]{
		Name: "gram",
		NewMapper: func(task int) Mapper[matrix.SparseVector, string, *matrix.Dense] {
			return MapperFunc[matrix.SparseVector, string, *matrix.Dense](
				func(r matrix.SparseVector, out Emitter[string, *matrix.Dense]) {
					p := matrix.NewDense(3, 3)
					d := r.Dense()
					matrix.OuterAdd(p, d, d)
					out.Emit("gram", p)
					out.AddOps(int64(r.NNZ() * r.NNZ()))
				})
		},
		Combine: func(a, b *matrix.Dense) *matrix.Dense {
			a.AddInPlace(b)
			return a
		},
		Reduce: func(k string, vs []*matrix.Dense, _ Ops) *matrix.Dense {
			sum := matrix.NewDense(3, 3)
			for _, v := range vs {
				sum.AddInPlace(v)
			}
			return sum
		},
		KeyBytes:    BytesOfString,
		ValueBytes:  BytesOfDense,
		ResultBytes: BytesOfDense,
	}
	e := testEngine()
	got, err := Run(e, job, rows)
	if err != nil {
		t.Fatal(err)
	}
	g := got["gram"]
	want := matrix.NewDenseFromRows([][]float64{{1, 0, 2}, {0, 9, 0}, {2, 0, 4}})
	if g.MaxAbsDiff(want) != 0 {
		t.Fatalf("gram = %v", g)
	}
}

func TestSizeHelpers(t *testing.T) {
	if BytesOfVec(make([]float64, 3)) != 8+24 {
		t.Fatal("BytesOfVec")
	}
	if BytesOfDense(matrix.NewDense(2, 2)) != 16+32 {
		t.Fatal("BytesOfDense")
	}
	if BytesOfDense(nil) != 8 {
		t.Fatal("BytesOfDense nil")
	}
	sv := matrix.SparseVector{Len: 10, Indices: []int{1, 2}, Values: []float64{1, 1}}
	if BytesOfSparseVec(sv) != 16+32 {
		t.Fatal("BytesOfSparseVec")
	}
	if BytesOfString("abc") != 3 || BytesOfInt(7) != 8 || BytesOfFloat64(1) != 8 {
		t.Fatal("scalar sizes")
	}
	sp := matrix.NewSparse(2, 2)
	if BytesOfSparse(sp) != 24+sp.SizeBytes() {
		t.Fatal("BytesOfSparse")
	}
	if BytesOfSparse(nil) != 8 {
		t.Fatal("BytesOfSparse nil")
	}
}

// Property: the engine computes the same word counts as a sequential
// reference, for random inputs, split counts, and failure rates.
func TestWordCountProperty(t *testing.T) {
	f := func(seed uint16, nLines uint8, splits uint8, chaos bool) bool {
		rng := matrix.NewRNG(uint64(seed))
		words := []string{"a", "b", "c", "d", "e"}
		var lines []string
		want := map[string]int64{}
		for i := 0; i < int(nLines%40)+1; i++ {
			var line string
			for w := 0; w < rng.Intn(6)+1; w++ {
				word := words[rng.Intn(len(words))]
				want[word]++
				line += word + " "
			}
			lines = append(lines, line)
		}
		e := testEngine()
		e.Splits = int(splits%16) + 1
		if chaos {
			e.FailureRate = 0.3
			e.SetFailureSeed(uint64(seed) * 3)
			// Bound terminal failures out of existence (0.3^12 per task) so
			// the property stays about correctness under retries.
			e.MaxAttempts = 12
		}
		got, err := Run(e, wordCountJob(), lines)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordsCharged(t *testing.T) {
	e := testEngine()
	if _, err := Run(e, wordCountJob(), []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	log := e.Cluster.PhaseLog()
	if log[0].Records != 3 {
		t.Fatalf("map phase records = %d, want 3", log[0].Records)
	}
}
