package mapred

import "spca/internal/matrix"

// Serialized-size helpers shared by the jobs in this repository. Sizes model
// a straightforward binary wire format: 8 bytes per float64/int64, plus 8
// bytes of length prefix for variable-length payloads.

// BytesOfFloat64 is the wire size of a float64 value.
func BytesOfFloat64(float64) int64 { return 8 }

// BytesOfString approximates the wire size of a string key.
func BytesOfString(s string) int64 { return int64(len(s)) }

// BytesOfInt is the wire size of an integer key.
func BytesOfInt(int) int64 { return 8 }

// BytesOfVec is the wire size of a dense vector.
func BytesOfVec(v []float64) int64 { return 8 + int64(len(v))*8 }

// BytesOfDense is the wire size of a dense matrix.
func BytesOfDense(m *matrix.Dense) int64 {
	if m == nil {
		return 8
	}
	return 16 + int64(len(m.Data))*8
}

// BytesOfSparseVec is the wire size of a sparse vector (index+value pairs).
func BytesOfSparseVec(v matrix.SparseVector) int64 {
	return 16 + int64(v.NNZ())*16
}

// BytesOfSparse is the wire size of a CSR matrix.
func BytesOfSparse(m *matrix.Sparse) int64 {
	if m == nil {
		return 8
	}
	return 24 + m.SizeBytes()
}
