// Package mapred implements a miniature MapReduce engine in the spirit of
// Hadoop, sufficient to express the paper's sPCA-MapReduce and Mahout-PCA
// jobs: user-defined mappers with setup/cleanup (enabling the paper's
// "stateful combiner" technique), optional associative combiners, reducers,
// composite keys, and exact accounting of map-output/shuffle bytes through
// the simulated cluster.
//
// Execution is real (mappers and reducers run concurrently on a worker pool)
// while time is simulated: the engine charges each phase's compute, shuffle
// and disk traffic to the cluster cost model. Like Hadoop, map output is
// written to disk before being shuffled, so every shuffle byte is also a
// disk byte — this is what gives sPCA its "low disk footprint" advantage.
//
// Fault tolerance follows Hadoop's model, driven by a deterministic
// cluster.FaultPlan: map and reduce attempts that fail are retried up to
// MaxAttempts (then the job fails with ErrTaskFailed), completed map outputs
// on a node that dies before the shuffle are re-executed, and straggling
// attempts either delay their phase or are raced by speculative backup
// copies. Every failure decision is a pure function of the plan's seed and
// the (job, phase, task, attempt) coordinates, so a given seed fails the
// identical attempt set on every run — and because mappers and reducers are
// deterministic, recovery reproduces bit-identical job output.
package mapred

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"spca/internal/cluster"
	"spca/internal/trace"
)

// Emitter receives key/value pairs from mappers, and lets tasks charge
// arithmetic work to the simulated cluster.
type Emitter[K comparable, V any] interface {
	Emit(key K, value V)
	// AddOps charges n arithmetic operations to the current phase.
	AddOps(n int64)
}

// Mapper processes input records. NewMapper is called once per map task, so
// implementations can keep per-task state (the stateful in-mapper combiner of
// §4.1) and flush it in Cleanup.
type Mapper[I any, K comparable, V any] interface {
	Map(rec I, out Emitter[K, V])
	Cleanup(out Emitter[K, V])
}

// MapperFunc adapts a plain function to a stateless Mapper.
type MapperFunc[I any, K comparable, V any] func(rec I, out Emitter[K, V])

// Map implements Mapper.
func (f MapperFunc[I, K, V]) Map(rec I, out Emitter[K, V]) { f(rec, out) }

// Cleanup implements Mapper (no-op).
func (f MapperFunc[I, K, V]) Cleanup(out Emitter[K, V]) {}

// Job describes one MapReduce job. The byte-size callbacks drive the
// intermediate-data accounting; they must reflect the serialized size of the
// corresponding records.
type Job[I any, K comparable, V any, R any] struct {
	Name      string
	NewMapper func(task int) Mapper[I, K, V]
	// Combine optionally merges two values for the same key before the
	// shuffle (a Hadoop combiner). It must be associative and commutative.
	Combine func(a, b V) V
	// Reduce folds all values for a key into the job output for that key.
	Reduce func(key K, values []V, out Ops) R

	InputBytes  func(I) int64
	KeyBytes    func(K) int64
	ValueBytes  func(V) int64
	ResultBytes func(R) int64

	// Dense opts the job into the flat-slab shuffle fast path (see
	// DenseSpec). It only takes effect for jobs keyed by int whose value and
	// result types are []float64 (or float64); any other instantiation runs
	// the generic path regardless.
	Dense *DenseSpec
}

// Ops lets reducers charge arithmetic work.
type Ops interface{ AddOps(n int64) }

// ErrTaskFailed is returned by Run when some task fails all of its
// MaxAttempts attempts — the terminal job failure Hadoop reports after
// mapred.map.max.attempts is exhausted.
var ErrTaskFailed = errors.New("mapred: task failed after max attempts")

// ErrCorruptPayload re-exports the cluster sentinel for checksum failures on
// this engine's shuffle and reduce-output payloads.
var ErrCorruptPayload = cluster.ErrCorruptPayload

// Engine runs jobs against a simulated cluster.
type Engine struct {
	Cluster *cluster.Cluster
	// Splits is the number of map tasks per job (default: 2x total cores).
	Splits int
	// Reducers is the number of reduce tasks per job (default: total cores).
	Reducers int
	// Faults injects deterministic failures (task attempts, node losses,
	// stragglers) into every job. Nil runs fault-free.
	Faults *cluster.FaultPlan
	// FailureRate is the legacy chaos knob: when set (and Faults is nil) it
	// builds an implicit FaultPlan injecting task-attempt failures with this
	// probability, seeded by SetFailureSeed.
	FailureRate float64
	// MaxAttempts bounds retries per task (default 4, like Hadoop). A
	// FaultPlan's own MaxAttempts takes precedence when set.
	MaxAttempts int
	// DisableDense forces jobs carrying a DenseSpec through the generic
	// map-based shuffle — the A/B switch of the differential tests.
	DisableDense bool

	mu       sync.Mutex
	failSeed uint64
	jobSeq   int64
	slabs    map[slabKey][]*denseSlab
}

// NewEngine returns an engine with Hadoop-like defaults on cl.
func NewEngine(cl *cluster.Cluster) *Engine {
	return &Engine{
		Cluster:     cl,
		Splits:      2 * cl.TotalCores(),
		Reducers:    cl.TotalCores(),
		MaxAttempts: 4,
		failSeed:    0x4D52, // "MR"
	}
}

// SetFailureSeed reseeds the legacy FailureRate fault injection. Failure
// decisions are derived per (job, phase, task, attempt) from this seed — not
// drawn from a shared RNG stream — so the same seed fails the identical
// attempt set on every run, independent of goroutine scheduling.
func (e *Engine) SetFailureSeed(seed uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failSeed = seed
}

// NumSplits reports how many map tasks Run will use for n input records: the
// configured Splits, clamped to n (at least 1). Callers sizing per-task
// scratch (mapper state reused across jobs) rely on this matching Run's own
// split computation, so both share this function.
func (e *Engine) NumSplits(n int) int {
	splits := e.Splits
	if splits <= 0 {
		splits = 2 * e.Cluster.TotalCores()
	}
	if splits > n && n > 0 {
		splits = n
	}
	if splits == 0 {
		splits = 1
	}
	return splits
}

// JobSeq reports the engine's job sequence counter, which salts per-job
// fault decisions. Checkpoints capture it so a resumed driver draws the
// exact same faults an uninterrupted run would for the remaining jobs.
func (e *Engine) JobSeq() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobSeq
}

// SetJobSeq restores the job sequence counter from a checkpoint.
func (e *Engine) SetJobSeq(seq int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.jobSeq = seq
}

// plan resolves the effective fault plan for the next job (nil = fault-free)
// and assigns the job its sequence number, which salts the per-job fault
// decisions so repeated jobs with the same name (one per EM iteration) draw
// distinct faults.
func (e *Engine) plan() (*cluster.FaultPlan, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	seq := e.jobSeq
	e.jobSeq++
	if e.Faults != nil {
		if !e.Faults.Enabled() {
			return nil, seq
		}
		return e.Faults, seq
	}
	if e.FailureRate > 0 {
		return &cluster.FaultPlan{Seed: e.failSeed, TaskFailureRate: e.FailureRate}, seq
	}
	return nil, seq
}

type emitter[K comparable, V any] struct {
	pairs map[K][]V      // non-combiner path: values per key in emission order
	vals  map[K]V        // combiner path: one merged value per key, no slice boxing
	merge func(a, b V) V // nil: append values
	ops   int64
}

func newEmitter[K comparable, V any](merge func(a, b V) V) *emitter[K, V] {
	em := &emitter[K, V]{merge: merge}
	if merge != nil {
		em.vals = make(map[K]V)
	} else {
		em.pairs = make(map[K][]V)
	}
	return em
}

func (em *emitter[K, V]) Emit(k K, v V) {
	if em.merge != nil {
		// Combiner path: keep a single merged value per key, rather than
		// allocating a one-element slice per key just to box it.
		if cur, ok := em.vals[k]; ok {
			em.vals[k] = em.merge(cur, v)
			return
		}
		em.vals[k] = v
		return
	}
	em.pairs[k] = append(em.pairs[k], v)
}

// reset clears a failed attempt's output so the retry can reuse the emitter's
// maps instead of reallocating them.
func (em *emitter[K, V]) reset() {
	clear(em.pairs)
	clear(em.vals)
	em.ops = 0
}

func (em *emitter[K, V]) AddOps(n int64) { em.ops += n }

type opsCounter struct{ n int64 }

func (o *opsCounter) AddOps(n int64) { o.n += n }

// taskFaults is the per-task fault accounting of one phase.
type taskFaults struct {
	failed       int64 // failed attempts (including node-loss re-runs)
	wasted       int64 // ops spent by failed attempts and backup copies
	spec         int64 // speculative backup copies launched
	stragglerOps int64 // extra serial op-time of an unmitigated straggler
	exhausted    bool  // every attempt failed: terminal task failure
}

// chargeStraggler applies the plan's straggler decision to a committing
// attempt that cost ops: with speculative execution the engine launches a
// backup copy (duplicated work, no tail latency); without it the slow
// attempt's extra serial time delays the phase.
func (tf *taskFaults) chargeStraggler(plan *cluster.FaultPlan, phase string, task, att int, ops int64) {
	if !plan.Straggles(phase, task, att) {
		return
	}
	if plan.SpeculativeExecution {
		tf.spec++
		tf.wasted += ops
		return
	}
	tf.stragglerOps += int64(float64(ops) * (plan.SlowFactor() - 1))
}

// sum folds per-task fault accounting into phase stats.
func sumFaults(stats *cluster.PhaseStats, faults []taskFaults) {
	for i := range faults {
		stats.FailedAttempts += faults[i].failed
		stats.RecomputedOps += faults[i].wasted
		stats.SpeculativeTasks += faults[i].spec
		stats.StragglerOps += faults[i].stragglerOps
	}
}

// sizeFns resolves the job's optional key/value size callbacks once per Run,
// so the per-entry accounting loops carry no nil checks. The 8-byte fallbacks
// are capture-free closures, so resolving them allocates nothing.
func (job *Job[I, K, V, R]) sizeFns() (kb func(K) int64, vb func(V) int64) {
	kb, vb = job.KeyBytes, job.ValueBytes
	if kb == nil {
		kb = func(K) int64 { return 8 }
	}
	if vb == nil {
		vb = func(V) int64 { return 8 }
	}
	return kb, vb
}

// resultFn resolves ResultBytes the same way sizeFns resolves the others.
func (job *Job[I, K, V, R]) resultFn() func(R) int64 {
	if job.ResultBytes == nil {
		return func(R) int64 { return 8 }
	}
	return job.ResultBytes
}

// payloadSize walks one task's map output, returning its total modeled wire
// size and its order-independent checksum. The producing attempt stamps the
// digest at commit time; the shuffle recomputes it at consume time and the
// two must match — the simulated equivalent of checksumming a payload before
// and after it crosses the wire.
func payloadSize[K comparable, V any](kbf func(K) int64, vbf func(V) int64, pairs map[K][]V, vals map[K]V) (int64, uint64) {
	var total int64
	var dig cluster.PayloadDigest
	for k, vs := range pairs {
		kb := kbf(k)
		for _, v := range vs {
			vb := vbf(v)
			total += kb + vb
			dig.Add(kb, vb)
		}
	}
	for k, v := range vals {
		kb, vb := kbf(k), vbf(v)
		total += kb + vb
		dig.Add(kb, vb)
	}
	return total, dig.Sum()
}

// chargeCorruptFetches applies the plan's payload-corruption decisions to one
// committed task payload: each corrupted fetch re-executes the producing
// attempt (ops re-charged) and re-ships the payload (bytes re-charged),
// bounded by maxAtt re-fetches. It returns false when every re-fetch came
// back corrupted — the terminal, unrecoverable case.
func chargeCorruptFetches(stats *cluster.PhaseStats, plan *cluster.FaultPlan, phase string, task, att, maxAtt int, ops, bytes int64) bool {
	if plan == nil || plan.CorruptionRate <= 0 {
		return true
	}
	for re := 0; re < maxAtt; re++ {
		if !plan.PayloadCorrupt(phase, task, att+re) {
			return true
		}
		stats.CorruptPayloads++
		stats.ReverifyBytes += bytes
		stats.RecomputedOps += ops
	}
	return false
}

// Run executes the job over the input records and returns the reduce output
// per key. It is the moral equivalent of submitting a job to a Hadoop
// cluster and reading its part files back. Under an active FaultPlan, failed
// map and reduce attempts are retried up to MaxAttempts — re-executed work is
// charged to the recovery metrics — and Run returns ErrTaskFailed if any
// task exhausts its attempts.
func Run[I any, K comparable, V any, R any](e *Engine, job Job[I, K, V, R], input []I) (map[K]R, error) {
	if job.NewMapper == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapred: job %q missing mapper or reducer", job.Name)
	}
	// Flat-slab fast path: a whole-job type assertion dispatches the hot
	// (int, []float64) and (int, float64) shapes without any per-emit boxing;
	// every other instantiation falls through to the generic shuffle below.
	if job.Dense != nil && !e.DisableDense {
		if dj, ok := any(&job).(*Job[I, int, []float64, []float64]); ok {
			out, err := runDense(e, dj, input, vecCodec)
			res, _ := any(out).(map[K]R)
			return res, err
		}
		if dj, ok := any(&job).(*Job[I, int, float64, float64]); ok {
			out, err := runDense(e, dj, input, scalarCodec)
			res, _ := any(out).(map[K]R)
			return res, err
		}
	}
	// Entry poll, before the job draws its sequence number: an interrupted
	// run must not advance the fault cursor for a job it never starts.
	if err := e.Cluster.Interrupted(); err != nil {
		return nil, fmt.Errorf("mapred: job %q: %w", job.Name, err)
	}
	splits := e.NumSplits(len(input))
	plan, seq := e.plan()
	mapPhase := fmt.Sprintf("%s#%d/map", job.Name, seq)
	maxAtt := plan.Attempts(e.MaxAttempts)
	kbf, vbf := job.sizeFns()
	rbf := job.resultFn()

	// Job span: wraps the map and reduce phase charges so they nest under
	// one node per submitted job in the trace.
	tr := e.Cluster.Tracer()
	if tr != nil {
		tr.Begin(job.Name, trace.KindJob,
			trace.I("seq", int64(seq)), trace.I("splits", int64(splits)))
	}

	// ---- Map phase ----
	type taskOut struct {
		pairs  map[K][]V
		vals   map[K]V
		ops    int64
		att    int    // 1-based attempt that committed this output
		bytes  int64  // modeled wire size of the output
		digest uint64 // checksum stamped by the committing attempt
	}
	outs := make([]taskOut, splits)
	mapFaults := make([]taskFaults, splits)
	var inputBytes int64
	if job.InputBytes != nil {
		for _, rec := range input {
			inputBytes += job.InputBytes(rec)
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.Cluster.TotalCores())
	for t := 0; t < splits; t++ {
		lo := t * len(input) / splits
		hi := (t + 1) * len(input) / splits
		wg.Add(1)
		go func(task, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tf := &mapFaults[task]
			em := newEmitter[K, V](job.Combine)
			for att := 1; att <= maxAtt; att++ {
				if att > 1 {
					em.reset() // retries reuse the failed attempt's maps
				}
				m := job.NewMapper(task)
				for i := lo; i < hi; i++ {
					m.Map(input[i], em)
				}
				m.Cleanup(em)
				if plan.AttemptFails(mapPhase, task, att) {
					// Attempt lost: the cluster really spent the cycles, but
					// the output is discarded and the task retries.
					tf.failed++
					tf.wasted += em.ops
					continue
				}
				outs[task].pairs = em.pairs
				outs[task].vals = em.vals
				outs[task].ops = em.ops
				outs[task].att = att
				outs[task].bytes, outs[task].digest = payloadSize(kbf, vbf, em.pairs, em.vals)
				tf.chargeStraggler(plan, mapPhase, task, att, em.ops)
				return
			}
			tf.exhausted = true
		}(t, lo, hi)
	}
	wg.Wait()

	// Hadoop node-loss semantics: map output lives on the mapper's local
	// disk until the shuffle reads it, so losing a node loses the completed
	// map outputs it hosted and those tasks must be re-executed. Mappers are
	// deterministic, so the re-run reproduces the same output; the engine
	// charges the re-execution without repeating it.
	if plan.Enabled() {
		nodes := e.Cluster.Config().Nodes
		for n := 0; n < nodes; n++ {
			if !plan.NodeLost(mapPhase, n) {
				continue
			}
			for t := n; t < splits; t += nodes {
				if mapFaults[t].exhausted {
					continue
				}
				mapFaults[t].failed++
				mapFaults[t].wasted += outs[t].ops
			}
		}
	}

	var mapOps int64
	mapStats := cluster.PhaseStats{
		Name:    job.Name + "/map",
		Tasks:   int64(splits),
		Records: int64(len(input)),
	}
	sumFaults(&mapStats, mapFaults)
	for t := range outs {
		mapOps += outs[t].ops
	}
	for t := range mapFaults {
		if mapFaults[t].exhausted {
			// Charge the work the failed job still performed, then surface
			// the terminal failure (no shuffle happens for an aborted job).
			mapStats.ComputeOps = mapOps
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d (%d attempts)",
				ErrTaskFailed, job.Name, t, maxAtt)
		}
	}

	// ---- Shuffle: verify each task's payload checksum, group map output by
	// key, counting bytes ----
	var shuffleBytes int64
	grouped := make(map[K][]V)
	for t := range outs {
		o := &outs[t]
		// Consume-side verification: recompute the digest the committing
		// attempt stamped. A mismatch means the output was damaged between
		// commit and shuffle — a real integrity violation, not an injected
		// one — and fails the job with the typed sentinel.
		tb, sum := payloadSize(kbf, vbf, o.pairs, o.vals)
		if tb != o.bytes || sum != o.digest {
			mapStats.ComputeOps = mapOps
			mapStats.CorruptPayloads++
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d shuffle payload",
				ErrCorruptPayload, job.Name, t)
		}
		// Injected corruption: the plan decides whether this payload arrives
		// corrupted; each detected corruption re-executes the mapper and
		// re-ships the payload, up to maxAtt re-fetches.
		if !chargeCorruptFetches(&mapStats, plan, mapPhase, t, o.att, maxAtt, o.ops, tb) {
			mapStats.ComputeOps = mapOps
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d payload corrupt after %d re-fetches",
				ErrCorruptPayload, job.Name, t, maxAtt)
		}
		shuffleBytes += tb
		for k, vs := range o.pairs {
			grouped[k] = append(grouped[k], vs...)
		}
		for k, v := range o.vals {
			grouped[k] = append(grouped[k], v)
		}
	}
	mapStats.ComputeOps = mapOps
	mapStats.ShuffleBytes = shuffleBytes
	// Hadoop spills map output to local disk and reads the input split from
	// HDFS.
	mapStats.DiskBytes = inputBytes + shuffleBytes
	e.Cluster.RunPhase(mapStats)

	// Cooperative cancellation boundary: the map phase (and its shuffle) is
	// fully charged, so metrics and trace stay consistent; the reduce phase
	// never starts and the job unwinds with the typed interrupt sentinel.
	if err := e.Cluster.Interrupted(); err != nil {
		if tr != nil {
			tr.End(trace.I("failed", 1))
		}
		return nil, fmt.Errorf("mapred: job %q: %w", job.Name, err)
	}

	// ---- Reduce phase ----
	reducers := e.Reducers
	if reducers <= 0 {
		reducers = e.Cluster.TotalCores()
	}
	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	// Stable key order so runs are deterministic regardless of map iteration.
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})

	// Keys are partitioned into the configured number of reduce tasks (like
	// Hadoop's partitioner), so Engine.Reducers governs scheduling, not just
	// the charged task overhead. Task concurrency is bounded by the reduce
	// slots and the cluster's cores, whichever is smaller.
	redTasks := reducers
	if len(keys) < redTasks {
		redTasks = len(keys)
	}
	if redTasks == 0 {
		redTasks = 1
	}
	redPhase := fmt.Sprintf("%s#%d/reduce", job.Name, seq)
	result := make(map[K]R, len(keys))
	var resMu sync.Mutex
	var redOps, outBytes int64
	// Per-task commit records: the committing attempt, its modeled output
	// size and ops (for corrupt-fetch re-execution charges), and the checksum
	// it stamped over its part file.
	type redOut struct {
		att    int
		ops    int64
		bytes  int64
		digest uint64
	}
	redOuts := make([]redOut, redTasks)
	redFaults := make([]taskFaults, redTasks)
	var redWg sync.WaitGroup
	slots := reducers
	if tc := e.Cluster.TotalCores(); tc < slots {
		slots = tc
	}
	redSem := make(chan struct{}, slots)
	for t := 0; t < redTasks; t++ {
		lo := t * len(keys) / redTasks
		hi := (t + 1) * len(keys) / redTasks
		redWg.Add(1)
		go func(task int, taskKeys []K) {
			defer redWg.Done()
			redSem <- struct{}{}
			defer func() { <-redSem }()
			tf := &redFaults[task]
			for att := 1; att <= maxAtt; att++ {
				oc := &opsCounter{}
				var taskBytes int64
				var dig cluster.PayloadDigest
				partial := make(map[K]R, len(taskKeys))
				for _, k := range taskKeys {
					r := job.Reduce(k, grouped[k], oc)
					kb, rb := kbf(k), rbf(r)
					taskBytes += rb
					dig.Add(kb, rb)
					partial[k] = r
				}
				if plan.AttemptFails(redPhase, task, att) {
					tf.failed++
					tf.wasted += oc.n
					continue
				}
				tf.chargeStraggler(plan, redPhase, task, att, oc.n)
				resMu.Lock()
				for k, r := range partial {
					result[k] = r
				}
				redOps += oc.n
				outBytes += taskBytes
				resMu.Unlock()
				redOuts[task] = redOut{att: att, ops: oc.n, bytes: taskBytes, digest: dig.Sum()}
				return
			}
			tf.exhausted = true
		}(t, keys[lo:hi])
	}
	redWg.Wait()
	redStats := cluster.PhaseStats{
		Name:       job.Name + "/reduce",
		ComputeOps: redOps,
		DiskBytes:  outBytes, // reducers write results to HDFS
		Tasks:      int64(redTasks),
		// Job output is inter-job intermediate data: the next job (or the
		// driver) reads it back. This is the paper's intermediate-data
		// metric.
		MaterializedBytes: outBytes,
	}
	sumFaults(&redStats, redFaults)
	for t := range redFaults {
		if redFaults[t].exhausted {
			redStats.DiskBytes = 0 // aborted job commits no output
			redStats.MaterializedBytes = 0
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d (%d attempts)",
				ErrTaskFailed, job.Name, t, maxAtt)
		}
	}
	// The driver consumes the reduce part files: re-verify each task's
	// checksum against the committed results, then apply the plan's
	// corruption decisions (a corrupted part file re-runs its reduce task and
	// is re-read).
	for t := 0; t < redTasks; t++ {
		lo := t * len(keys) / redTasks
		hi := (t + 1) * len(keys) / redTasks
		var tb int64
		var dig cluster.PayloadDigest
		for _, k := range keys[lo:hi] {
			kb, rb := kbf(k), rbf(result[k])
			tb += rb
			dig.Add(kb, rb)
		}
		if tb != redOuts[t].bytes || dig.Sum() != redOuts[t].digest {
			redStats.CorruptPayloads++
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d output",
				ErrCorruptPayload, job.Name, t)
		}
		if !chargeCorruptFetches(&redStats, plan, redPhase, t, redOuts[t].att, maxAtt, redOuts[t].ops, tb) {
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d output corrupt after %d re-fetches",
				ErrCorruptPayload, job.Name, t, maxAtt)
		}
	}
	e.Cluster.RunPhase(redStats)
	if tr != nil {
		tr.End(trace.I("reducers", int64(redTasks)), trace.I("shuffle_bytes", shuffleBytes))
	}
	return result, nil
}
